// Table I, rows "ResNet56 (CIFAR10)": the paper prunes fewer channels
// (ResNet56 layers are narrow, max 64 filters) but many spatial columns
// (feature maps run 32x32 down to 8x8): channel ratios [0.3, 0.3, 0.6] per
// group, spatial ratios [0.6, 0.6, 0.6]. Gates sit on the first conv of
// each basic block only ("odd layers"), keeping the skip-connection widths.
#include "common.h"

int main() {
  using namespace antidote;
  using bench::ProposedSetting;

  bench::Table1Spec spec;
  spec.experiment_name = "Table I: ResNet56 (CIFAR10)";
  spec.csv_name = "table1_resnet56_cifar10.csv";
  spec.model_name = "resnet56";
  spec.dataset = "cifar10";
  spec.num_classes = 10;
  spec.static_baselines = {baselines::StaticCriterion::kL1,
                           baselines::StaticCriterion::kTaylor,
                           baselines::StaticCriterion::kActivation};
  spec.static_drop_per_block = {0.2f, 0.3f, 0.4f};

  core::PruneSettings paper;
  paper.channel_drop = {0.3f, 0.3f, 0.6f};
  paper.spatial_drop = {0.6f, 0.6f, 0.6f};
  // Width-0.25 groups have 4/8/16 filters; keep the same spatial ratios
  // but soften the channel ratios to the reduced model's boundary.
  core::PruneSettings adjusted;
  adjusted.channel_drop = {0.25f, 0.25f, 0.5f};
  adjusted.spatial_drop = {0.5f, 0.5f, 0.5f};
  spec.proposed = {
      ProposedSetting{"Proposed", bench::pick_settings(paper, adjusted)}};

  bench::run_table1(spec);
  return 0;
}
