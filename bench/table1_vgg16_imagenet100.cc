// Table I, rows "VGG16 (ImageNet100)": on large inputs the redundancy
// flips into the spatial dimension — Setting-1 prunes channels
// [0.1, 0, 0, 0, 0.2] but spatial columns [0.5 x5]; Setting-2 raises the
// late-block spatial ratios to [0.5, 0.5, 0.5, 0.6, 0.6].
//
// Resolution: at full scale this bench synthesizes real 224x224 inputs
// (ScaleConfig::resolution; spatially-tiled lowering keeps the arena
// bounded). Reduced scales substitute a 64x64 synthetic 100-class set
// (DESIGN.md §2) — still large enough that class features occupy a small
// fraction of the area, which is what makes spatial-column pruning
// profitable (Fig. 4). Override either with ANTIDOTE_BENCH_RESOLUTION.
#include "common.h"

int main() {
  using namespace antidote;
  using bench::ProposedSetting;

  bench::Table1Spec spec;
  spec.experiment_name = "Table I: VGG16 (ImageNet100)";
  spec.csv_name = "table1_vgg16_imagenet100.csv";
  spec.model_name = "vgg16";
  spec.dataset = "imagenet100";
  spec.num_classes = 100;
  spec.static_baselines = {baselines::StaticCriterion::kL1,
                           baselines::StaticCriterion::kTaylor,
                           baselines::StaticCriterion::kActivation};
  spec.static_drop_per_block = {0.2f, 0.2f, 0.3f, 0.4f, 0.5f};

  // Channel ratios are already mild here; the spatial ratios transfer to
  // the reduced model unchanged (spatial redundancy is a property of the
  // input scale, not the width), so paper and adjusted coincide.
  core::PruneSettings s1;
  s1.channel_drop = {0.1f, 0.f, 0.f, 0.f, 0.2f};
  s1.spatial_drop = {0.5f, 0.5f, 0.5f, 0.5f, 0.5f};
  core::PruneSettings s2;
  s2.channel_drop = {0.1f, 0.f, 0.f, 0.f, 0.2f};
  s2.spatial_drop = {0.5f, 0.5f, 0.5f, 0.6f, 0.6f};
  spec.proposed = {ProposedSetting{"Proposed: Setting-1", s1},
                   ProposedSetting{"Proposed: Setting-2", s2}};

  bench::run_table1(spec);
  return 0;
}
