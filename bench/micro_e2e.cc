// End-to-end inference latency (google-benchmark): dense VGG16/ResNet56
// forward vs dynamically pruned forward at the paper's Table-I settings.
// The ratio of the two medians is the practical speedup the FLOPs
// reduction buys on this (im2col+GEMM, single-core) backend.
#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "core/engine.h"
#include "models/factory.h"

namespace {

using namespace antidote;

constexpr float kWidth = 0.25f;  // keep each iteration in the ms range

std::unique_ptr<models::ConvNet> build(const std::string& name) {
  Rng rng(9);
  auto net = models::make_model(name, 10, kWidth, rng);
  net->set_training(false);
  return net;
}

void BM_Vgg16Dense(benchmark::State& state) {
  auto net = build("vgg16");
  Rng rng(1);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = net->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * net->last_macs());
}
BENCHMARK(BM_Vgg16Dense);

void BM_Vgg16DynamicPruned(benchmark::State& state) {
  auto net = build("vgg16");
  core::PruneSettings settings;
  settings.channel_drop = {0.2f, 0.2f, 0.6f, 0.9f, 0.9f};
  settings.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};
  core::DynamicPruningEngine engine(*net, settings);
  Rng rng(1);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = net->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * net->last_macs());
}
BENCHMARK(BM_Vgg16DynamicPruned);

void BM_Resnet56Dense(benchmark::State& state) {
  auto net = build("resnet56");
  Rng rng(2);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = net->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * net->last_macs());
}
BENCHMARK(BM_Resnet56Dense);

void BM_Resnet56DynamicPruned(benchmark::State& state) {
  auto net = build("resnet56");
  core::PruneSettings settings;
  settings.channel_drop = {0.3f, 0.3f, 0.6f};
  settings.spatial_drop = {0.6f, 0.6f, 0.6f};
  core::DynamicPruningEngine engine(*net, settings);
  Rng rng(2);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = net->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * net->last_macs());
}
BENCHMARK(BM_Resnet56DynamicPruned);

}  // namespace
