// End-to-end inference latency (google-benchmark): dense VGG16/ResNet56
// forward vs dynamically pruned forward at the paper's Table-I settings,
// plus serving-worker steady-state benchmarks running the allocation-free
// ExecutionContext hot path.
//
// Before the benchmarks run, main() executes a hard verification of the
// serving-path contract and exits non-zero on violation:
//   - context forwards are bitwise-identical to plain eval forwards
//     (dense AND masked), pass after pass;
//   - after warm-up, a serving-style pass (begin_pass + batch stage +
//     forward) performs ZERO heap allocations (global operator new/delete
//     are instrumented in this binary).
//
// Results are also written as machine-readable JSON (BENCH_e2e.json by
// default; pass --benchmark_out=... to override) so the perf trajectory is
// tracked across PRs. The verification block prints logits checksums that
// future PRs can diff against.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "base/parallel.h"
#include "base/rng.h"
#include "base/timer.h"
#include "bench_main.h"
#include "core/engine.h"
#include "models/factory.h"
#include "nn/conv_kernels.h"
#include "nn/execution_context.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "serving/serving.h"

// --- global allocation counter (this binary only) --------------------------

namespace {
std::atomic<int64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, n ? n : align) != 0) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace antidote;

constexpr float kWidth = 0.25f;  // keep each iteration in the ms range

std::unique_ptr<models::ConvNet> build(const std::string& name) {
  Rng rng(9);
  auto net = models::make_model(name, 10, kWidth, rng);
  net->set_training(false);
  return net;
}

core::PruneSettings vgg_settings() {
  core::PruneSettings settings;
  settings.channel_drop = {0.2f, 0.2f, 0.6f, 0.9f, 0.9f};
  settings.spatial_drop = {0.3f, 0.3f, 0.3f, 0.3f, 0.3f};
  return settings;
}

// --- original single-sample latency benchmarks -----------------------------

void BM_Vgg16Dense(benchmark::State& state) {
  auto net = build("vgg16");
  Rng rng(1);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = net->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * net->last_macs());
}
BENCHMARK(BM_Vgg16Dense);

void BM_Vgg16DynamicPruned(benchmark::State& state) {
  auto net = build("vgg16");
  core::PruneSettings settings;
  settings.channel_drop = {0.2f, 0.2f, 0.6f, 0.9f, 0.9f};
  settings.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};
  core::DynamicPruningEngine engine(*net, settings);
  Rng rng(1);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = net->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * net->last_macs());
}
BENCHMARK(BM_Vgg16DynamicPruned);

void BM_Resnet56Dense(benchmark::State& state) {
  auto net = build("resnet56");
  Rng rng(2);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = net->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * net->last_macs());
}
BENCHMARK(BM_Resnet56Dense);

void BM_Resnet56DynamicPruned(benchmark::State& state) {
  auto net = build("resnet56");
  core::PruneSettings settings;
  settings.channel_drop = {0.3f, 0.3f, 0.6f};
  settings.spatial_drop = {0.6f, 0.6f, 0.6f};
  core::DynamicPruningEngine engine(*net, settings);
  Rng rng(2);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = net->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * net->last_macs());
}
BENCHMARK(BM_Resnet56DynamicPruned);

// --- serving-worker steady state: ExecutionContext hot path ----------------
//
// Mirrors BatchScheduler::run_batch: per pass, rewind the arena, stage the
// batch into it, run the context forward. heap_allocs_per_pass counts
// global operator new calls inside the timed loop — 0 once warm.

void serving_steady_state(benchmark::State& state,
                          const std::string& model_name, bool pruned) {
  const int batch = 8;
  auto net = build(model_name);
  std::unique_ptr<core::DynamicPruningEngine> engine;
  if (pruned) {
    engine = std::make_unique<core::DynamicPruningEngine>(*net,
                                                          vgg_settings());
  }
  Rng rng(3);
  std::vector<Tensor> requests;
  for (int i = 0; i < batch; ++i) {
    requests.push_back(Tensor::randn({3, 32, 32}, rng));
  }
  nn::ExecutionContext ctx;
  const int64_t sample = requests[0].size();
  auto run_pass = [&] {
    ctx.begin_pass();
    Tensor stacked = ctx.alloc({batch, 3, 32, 32});
    for (int i = 0; i < batch; ++i) {
      std::memcpy(stacked.data() + i * sample,
                  requests[static_cast<size_t>(i)].data(),
                  static_cast<size_t>(sample) * sizeof(float));
    }
    Tensor logits = net->forward(stacked, ctx);
    benchmark::DoNotOptimize(logits.data());
  };
  for (int i = 0; i < 3; ++i) run_pass();  // warm the arena + capacities

  const int64_t allocs_before = g_heap_allocs.load();
  for (auto _ : state) run_pass();
  const int64_t allocs = g_heap_allocs.load() - allocs_before;
  state.counters["heap_allocs_per_pass"] = benchmark::Counter(
      static_cast<double>(allocs) /
      static_cast<double>(std::max<int64_t>(1, state.iterations())));
  state.SetItemsProcessed(state.iterations() * net->last_macs());
}

void BM_ServingSteadyVgg16Dense(benchmark::State& state) {
  serving_steady_state(state, "vgg16", /*pruned=*/false);
}
BENCHMARK(BM_ServingSteadyVgg16Dense);

void BM_ServingSteadyVgg16Pruned(benchmark::State& state) {
  serving_steady_state(state, "vgg16", /*pruned=*/true);
}
BENCHMARK(BM_ServingSteadyVgg16Pruned);

// --- compiled-plan single-sample latency (vs the module-walk BM_*Dense) ----

void plan_single_sample(benchmark::State& state,
                        const std::string& model_name) {
  auto net = build(model_name);
  Rng rng(1);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  nn::ExecutionContext ctx;
  net->inference_plan(3, 32, 32).reserve(ctx.workspace(), 1);
  for (auto _ : state) {
    ctx.begin_pass();
    Tensor staged = ctx.alloc(x.shape());
    std::memcpy(staged.data(), x.data(),
                static_cast<size_t>(x.size()) * sizeof(float));
    Tensor y = net->forward(staged, ctx);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * net->last_macs());
}

void BM_PlanVgg16Dense(benchmark::State& state) {
  plan_single_sample(state, "vgg16");
}
BENCHMARK(BM_PlanVgg16Dense);

void BM_PlanResnet56Dense(benchmark::State& state) {
  plan_single_sample(state, "resnet56");
}
BENCHMARK(BM_PlanResnet56Dense);

// --- hard verification of the hot-path contract ----------------------------

double checksum(const Tensor& t) {
  double acc = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) {
    acc += double(t.data()[i]) * ((i % 7) + 1);
  }
  return acc;
}

bool verify_path(const std::string& model_name, bool pruned, int batch) {
  auto net = build(model_name);
  std::unique_ptr<core::DynamicPruningEngine> engine;
  if (pruned) {
    engine = std::make_unique<core::DynamicPruningEngine>(*net,
                                                          vgg_settings());
  }
  Rng rng(4);
  Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);

  Tensor plain = net->forward(x);
  const double plain_checksum = checksum(plain);

  nn::ExecutionContext ctx;
  auto run_pass = [&] {
    ctx.begin_pass();
    Tensor staged = ctx.alloc(x.shape());
    std::memcpy(staged.data(), x.data(),
                static_cast<size_t>(x.size()) * sizeof(float));
    return net->forward(staged, ctx);
  };

  bool ok = true;
  for (int i = 0; i < 3; ++i) {  // warm-up, checking outputs throughout
    Tensor y = run_pass();
    if (std::memcmp(plain.data(), y.data(),
                    static_cast<size_t>(plain.size()) * sizeof(float)) != 0) {
      std::fprintf(stderr,
                   "FAIL [%s %s]: context forward output differs from plain "
                   "eval forward (pass %d)\n",
                   model_name.c_str(), pruned ? "pruned" : "dense", i);
      ok = false;
    }
  }
  const int64_t grows_before = ctx.workspace().grow_count();
  const int64_t allocs_before = g_heap_allocs.load();
  const int passes = 5;
  for (int i = 0; i < passes; ++i) {
    Tensor y = run_pass();
    benchmark::DoNotOptimize(y.data());
  }
  const int64_t allocs = g_heap_allocs.load() - allocs_before;
  const int64_t grows = ctx.workspace().grow_count() - grows_before;
  std::printf(
      "serving-path %-8s %-6s: %2d passes, %3d heap allocs, %d arena "
      "growths, logits checksum %.6f\n",
      model_name.c_str(), pruned ? "pruned" : "dense", passes,
      static_cast<int>(allocs), static_cast<int>(grows), plain_checksum);
  if (allocs != 0 || grows != 0) {
    std::fprintf(stderr,
                 "FAIL [%s %s]: steady-state serving pass allocated "
                 "(allocs=%d growths=%d, expected 0)\n",
                 model_name.c_str(), pruned ? "pruned" : "dense",
                 static_cast<int>(allocs), static_cast<int>(grows));
    ok = false;
  }
  return ok;
}

bool run_verification() {
  std::printf("--- serving hot-path verification ---\n");
  bool ok = true;
  ok &= verify_path("vgg16", /*pruned=*/false, /*batch=*/4);
  ok &= verify_path("vgg16", /*pruned=*/true, /*batch=*/4);
  ok &= verify_path("resnet56", /*pruned=*/false, /*batch=*/2);
  std::printf("--- verification %s ---\n", ok ? "PASSED" : "FAILED");
  return ok;
}

// --- plan equivalence gate + BENCH_plan.json --------------------------------
//
// For every model family: the compiled InferencePlan must be
// dense-bitwise-identical to the module walk, masked-equal within 1e-5
// (bitwise in the current exact-epilogue fold), and must perform zero
// arena growths starting with the VERY FIRST forward after an explicit
// compile + reserve. The plan-vs-module timing comparison rides along and
// is reported (not gated — machines vary), so the fusion win is tracked
// across PRs in BENCH_plan.json.

core::PruneSettings settings_for(models::ConvNet& net) {
  if (net.model_name() == "vgg16") return vgg_settings();
  core::PruneSettings s;
  s.channel_drop.assign(static_cast<size_t>(net.num_blocks()), 0.3f);
  s.spatial_drop.assign(static_cast<size_t>(net.num_blocks()), 0.3f);
  return s;
}

struct PlanReport {
  std::string model;
  bool dense_bitwise = false;
  double masked_max_abs_diff = 0.0;
  int64_t first_pass_growths = -1;
  int64_t first_pass_heap_allocs = -1;  // dense plan path, reserved arena
  double module_walk_ms = 0.0;
  double plan_ms = 0.0;
  bool pass = false;
};

PlanReport verify_plan(const std::string& model_name, int batch) {
  PlanReport r;
  r.model = model_name;
  Rng rng(6);
  Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);

  // 1) Dense: bitwise identity + zero growths/allocs from the first pass.
  {
    auto net = build(model_name);
    const Tensor plain = net->forward(x);
    nn::ExecutionContext ctx;
    plan::InferencePlan& plan = net->inference_plan(3, 32, 32);
    plan.reserve(ctx.workspace(), batch);
    const int64_t grows_before = ctx.workspace().grow_count();
    const int64_t allocs_before = g_heap_allocs.load();
    ctx.begin_pass();
    Tensor staged = ctx.alloc(x.shape());
    std::memcpy(staged.data(), x.data(),
                static_cast<size_t>(x.size()) * sizeof(float));
    const Tensor fused = net->forward(staged, ctx);
    r.first_pass_heap_allocs = g_heap_allocs.load() - allocs_before;
    r.first_pass_growths = ctx.workspace().grow_count() - grows_before;
    r.dense_bitwise =
        plain.same_shape(fused) &&
        std::memcmp(plain.data(), fused.data(),
                    static_cast<size_t>(plain.size()) * sizeof(float)) == 0;

    // Timing: module walk (plain eval forward) vs compiled plan.
    const int reps = 6;
    for (int i = 0; i < 2; ++i) net->forward(x);  // warm
    WallTimer module_timer;
    for (int i = 0; i < reps; ++i) {
      Tensor y = net->forward(x);
      benchmark::DoNotOptimize(y.data());
    }
    r.module_walk_ms = module_timer.millis() / reps;
    for (int i = 0; i < 2; ++i) {
      ctx.begin_pass();
      Tensor y = net->forward(x, ctx);
      benchmark::DoNotOptimize(y.data());
    }
    WallTimer plan_timer;
    for (int i = 0; i < reps; ++i) {
      ctx.begin_pass();
      Tensor y = net->forward(x, ctx);
      benchmark::DoNotOptimize(y.data());
    }
    r.plan_ms = plan_timer.millis() / reps;
  }

  // 2) Masked: dynamic pruning through the fused steps, within 1e-5.
  {
    auto net = build(model_name);
    core::DynamicPruningEngine engine(*net, settings_for(*net));
    const Tensor plain = net->forward(x);
    nn::ExecutionContext ctx;
    ctx.begin_pass();
    const Tensor fused = net->forward(x, ctx);
    for (int64_t i = 0; i < plain.size(); ++i) {
      r.masked_max_abs_diff =
          std::max(r.masked_max_abs_diff,
                   std::abs(double(plain.data()[i]) - fused.data()[i]));
    }
    engine.remove();
  }

  r.pass = r.dense_bitwise && r.masked_max_abs_diff <= 1e-5 &&
           r.first_pass_growths == 0 && r.first_pass_heap_allocs == 0;
  std::printf(
      "plan %-8s: dense %s, masked |diff| %.2e, first pass %lld growths / "
      "%lld allocs, module %.3f ms vs plan %.3f ms (%.2fx)%s\n",
      r.model.c_str(), r.dense_bitwise ? "bitwise" : "DIFFERS",
      r.masked_max_abs_diff, static_cast<long long>(r.first_pass_growths),
      static_cast<long long>(r.first_pass_heap_allocs), r.module_walk_ms,
      r.plan_ms, r.plan_ms > 0 ? r.module_walk_ms / r.plan_ms : 0.0,
      r.pass ? "" : "  <-- FAIL");
  return r;
}

// --- grouped-vs-per-sample masked comparison --------------------------------
//
// Batch 8 built from 4 unique images duplicated twice: every gate computes
// identical attention — hence identical masks — for duplicated samples, so
// the batch quantizes into <= 4 distinct kept sets. The mask-grouped plan
// executor buckets them into compacted multi-sample GEMMs; the baseline is
// the module walk's per-sample masked kernels (per-sample weight
// gathering, per-sample GEMM dispatch — the pre-grouping execution
// strategy). Correctness is gated (<= 1e-5 vs the module walk and the
// grouping must actually trigger); the timing is reported in
// BENCH_plan.json so the grouped win is tracked across PRs.

struct GroupedReport {
  std::string model;
  int batch = 8;
  int distinct = 4;
  int observed_groups = 0;
  double max_abs_diff = 0.0;
  int64_t pack_hits = 0;
  int64_t pack_misses = 0;
  double per_sample_ms = 0.0;  // masked module walk
  double grouped_ms = 0.0;     // masked mask-grouped plan
  bool pass = false;
};

GroupedReport verify_grouped(const std::string& model_name, int distinct) {
  GroupedReport r;
  r.model = model_name;
  r.distinct = distinct;
  auto net = build(model_name);
  core::DynamicPruningEngine engine(*net, settings_for(*net));
  Rng rng(8);
  Tensor uniq = Tensor::randn({r.distinct, 3, 32, 32}, rng);
  Tensor x({r.batch, 3, 32, 32});
  const int64_t sample = uniq.size() / r.distinct;
  for (int i = 0; i < r.batch; ++i) {
    std::memcpy(x.data() + i * sample,
                uniq.data() + (i % r.distinct) * sample,
                static_cast<size_t>(sample) * sizeof(float));
  }

  const Tensor plain = net->forward(x);
  nn::ExecutionContext ctx;
  plan::InferencePlan& plan = net->inference_plan(3, 32, 32);
  plan.reserve(ctx.workspace(), r.batch);
  auto run_plan = [&] {
    ctx.begin_pass();
    Tensor staged = ctx.alloc(x.shape());
    std::memcpy(staged.data(), x.data(),
                static_cast<size_t>(x.size()) * sizeof(float));
    return net->forward(staged, ctx);
  };
  const Tensor fused = run_plan();
  for (int64_t i = 0; i < plain.size(); ++i) {
    r.max_abs_diff = std::max(
        r.max_abs_diff, std::abs(double(plain.data()[i]) - fused.data()[i]));
  }
  r.observed_groups = plan.last_mask_groups();

  // Interleaved repetitions: alternating the two paths spreads load
  // spikes across both measurements instead of biasing one.
  const int reps = 10;
  for (int i = 0; i < 3; ++i) {
    Tensor y = net->forward(x);
    benchmark::DoNotOptimize(y.data());
    run_plan();
  }
  double per_sample_total = 0.0, grouped_total = 0.0;
  for (int i = 0; i < reps; ++i) {
    WallTimer per_sample_timer;
    Tensor y = net->forward(x);
    benchmark::DoNotOptimize(y.data());
    per_sample_total += per_sample_timer.millis();
    WallTimer grouped_timer;
    Tensor z = run_plan();
    benchmark::DoNotOptimize(z.data());
    grouped_total += grouped_timer.millis();
  }
  r.per_sample_ms = per_sample_total / reps;
  r.grouped_ms = grouped_total / reps;
  r.pack_hits = plan.pack_cache_hits();
  r.pack_misses = plan.pack_cache_misses();

  r.pass = r.max_abs_diff <= 1e-5 && r.observed_groups >= 1 &&
           r.observed_groups <= r.distinct;
  std::printf(
      "grouped %-8s: batch %d, %d distinct masks -> %d groups, |diff| "
      "%.2e, per-sample %.3f ms vs grouped %.3f ms (%.2fx), pack cache "
      "%lld/%lld hit/miss%s\n",
      r.model.c_str(), r.batch, r.distinct, r.observed_groups,
      r.max_abs_diff, r.per_sample_ms, r.grouped_ms,
      r.grouped_ms > 0 ? r.per_sample_ms / r.grouped_ms : 0.0,
      static_cast<long long>(r.pack_hits),
      static_cast<long long>(r.pack_misses), r.pass ? "" : "  <-- FAIL");
  engine.remove();
  return r;
}

// --- similar-mask union coarsening gate --------------------------------------
//
// High-entropy batch: one base image plus small per-sample noise. The
// attention gates then emit pairwise-distinct but heavily overlapping
// kept sets — the exact-identity bucketing worst case (all-singleton
// groups) that union coarsening exists to collapse. Gated:
//   * the coarsened grouped pass stays BITWISE identical to the
//     per-sample module walk (union supersets only insert products of
//     explicitly zeroed activations);
//   * on a real pool (>= 4 threads on >= 4 physical cores) the
//     coarsened schedule beats exact-identity grouping by >= 1.25x;
//   * the 4-distinct batch (genuinely dissimilar masks) shows no
//     regression under auto — the cost model must decline merges it
//     predicts as losses. Timing gates self-skip on small or
//     oversubscribed hosts; parity and bookkeeping always run.
constexpr double kMaskUnionSpeedupFloor = 1.25;
constexpr double kMaskUnionNoRegressionBudget = 1.10;

struct MaskUnionReport {
  int batch = 8;
  int raw_groups = 0;        // exact-identity buckets
  int coarsened_groups = 0;  // clusters actually executed under auto
  double extra_mac_frac = 0.0;
  bool bitwise = false;
  int64_t steady_growths = 0;
  double off_ms = 0.0;   // exact-identity grouping (coarsen off)
  double auto_ms = 0.0;  // latency-aware union coarsening
  double speedup = 0.0;  // off_ms / auto_ms on the near-identical batch
  double distinct4_off_ms = 0.0;
  double distinct4_auto_ms = 0.0;
  double distinct4_ratio = 0.0;  // auto / off: must not regress
  bool gate_enforced = false;
  bool pass = false;
};

MaskUnionReport verify_mask_union() {
  MaskUnionReport r;
  auto net = build("vgg16");
  core::DynamicPruningEngine engine(*net, settings_for(*net));
  Rng rng(41);
  Tensor base = Tensor::randn({1, 3, 32, 32}, rng);
  Tensor noise = Tensor::randn({r.batch, 3, 32, 32}, rng);
  Tensor x({r.batch, 3, 32, 32});
  const int64_t sample = base.size();
  for (int i = 0; i < r.batch; ++i) {
    for (int64_t j = 0; j < sample; ++j) {
      x.data()[i * sample + j] =
          base.data()[j] + 0.02f * noise.data()[i * sample + j];
    }
  }

  // Per-sample module walk: the bitwise reference for BOTH policies.
  const Tensor plain = net->forward(x);

  nn::ExecutionContext ctx;
  plan::InferencePlan& plan = net->inference_plan(3, 32, 32);
  plan.reserve(ctx.workspace(), r.batch);
  auto run_plan = [&](const Tensor& in) {
    ctx.begin_pass();
    Tensor staged = ctx.alloc(in.shape());
    std::memcpy(staged.data(), in.data(),
                static_cast<size_t>(in.size()) * sizeof(float));
    return net->forward(staged, ctx);
  };

  net->set_coarsen_policy({plan::CoarsenMode::kAuto, 1.0});
  const Tensor fused = run_plan(x);
  r.bitwise = plain.same_shape(fused) &&
              std::memcmp(plain.data(), fused.data(),
                          static_cast<size_t>(plain.size()) *
                              sizeof(float)) == 0;
  r.raw_groups = plan.last_mask_groups_raw();
  r.coarsened_groups = plan.last_mask_groups();
  r.extra_mac_frac = plan.last_coarsen_extra_mac_frac();

  // Timed in separate blocks (not interleaved): the two policies carry
  // different weight-panel working sets, and alternating them would
  // thrash the pack cache in a way neither production path sees.
  const int reps = 10;
  auto time_policy = [&](plan::CoarsenMode mode, const Tensor& in) {
    net->set_coarsen_policy({mode, 1.0});
    for (int i = 0; i < 3; ++i) run_plan(in);  // warm packs + arena
    const int64_t grows = ctx.workspace().grow_count();
    double total = 0.0;
    for (int i = 0; i < reps; ++i) {
      WallTimer timer;
      Tensor y = run_plan(in);
      benchmark::DoNotOptimize(y.data());
      total += timer.millis();
    }
    r.steady_growths += ctx.workspace().grow_count() - grows;
    return total / reps;
  };
  r.off_ms = time_policy(plan::CoarsenMode::kOff, x);
  r.auto_ms = time_policy(plan::CoarsenMode::kAuto, x);
  r.speedup = r.auto_ms > 0.0 ? r.off_ms / r.auto_ms : 0.0;

  // No-regression batch: 4 genuinely distinct images duplicated to
  // batch 8. Dissimilar kept sets make most merges cost-model losses;
  // auto must track off within noise.
  Tensor uniq = Tensor::randn({4, 3, 32, 32}, rng);
  Tensor x4({r.batch, 3, 32, 32});
  for (int i = 0; i < r.batch; ++i) {
    std::memcpy(x4.data() + i * sample, uniq.data() + (i % 4) * sample,
                static_cast<size_t>(sample) * sizeof(float));
  }
  r.distinct4_off_ms = time_policy(plan::CoarsenMode::kOff, x4);
  r.distinct4_auto_ms = time_policy(plan::CoarsenMode::kAuto, x4);
  r.distinct4_ratio = r.distinct4_off_ms > 0.0
                          ? r.distinct4_auto_ms / r.distinct4_off_ms
                          : 0.0;

  const int threads = 1 + antidote::global_pool().size();
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  r.gate_enforced = threads >= 4 && cores >= threads;
  const bool timing_ok =
      !r.gate_enforced ||
      (r.speedup >= kMaskUnionSpeedupFloor &&
       r.distinct4_ratio <= kMaskUnionNoRegressionBudget);
  r.pass = r.bitwise && r.steady_growths == 0 && r.raw_groups >= 2 &&
           r.coarsened_groups >= 1 &&
           r.coarsened_groups <= r.raw_groups && timing_ok;
  std::printf(
      "mask union   vgg16: batch %d, %d raw -> %d coarsened groups "
      "(+%.1f%% MACs), bitwise %s, off %.3f ms vs auto %.3f ms (%.2fx, "
      "floor %.2f), 4-distinct auto/off %.3f (budget %.2f)%s -> %s\n",
      r.batch, r.raw_groups, r.coarsened_groups, 100.0 * r.extra_mac_frac,
      r.bitwise ? "yes" : "NO", r.off_ms, r.auto_ms, r.speedup,
      kMaskUnionSpeedupFloor, r.distinct4_ratio,
      kMaskUnionNoRegressionBudget,
      r.gate_enforced ? "" : " (timing skipped: <4 threads or oversubscribed)",
      r.pass ? "PASSED" : "FAILED");
  engine.remove();
  return r;
}

// --- int8 regime gates -------------------------------------------------------
//
// Accuracy gate: the int8 regime's dense logits vs the f32 reference on
// every tier-1 model (max logit deviation + top-1 agreement). The
// deviation is measured RELATIVE to the largest f32 logit magnitude —
// logit scale varies by orders of magnitude across the tier-1 models
// (random-init resnet56's residual stacking produces ~1e4-scale logits
// where vgg16 sits near 1), so an absolute budget cannot cover all three.
// Measured: <= 1.2e-2 relative deviation on every tier-1 model, top-1
// agreement 15/16..16/16 (the flips are sub-percent near-ties of a
// random-init head). The budgets carry ~4x headroom; a real int8 kernel
// defect (wrong accumulator quad, bad wsum correction) lands orders of
// magnitude outside them and near-chance agreement.
constexpr double kInt8MaxRelLogitDiff = 0.05;
constexpr double kInt8MinTop1Agreement = 0.85;

struct Int8AccuracyReport {
  std::string model;
  int batch = 16;
  double max_abs_diff = 0.0;
  double max_rel_diff = 0.0;  // max |diff| / max |f32 logit|
  double top1_agreement = 0.0;
  bool pass = false;
};

Int8AccuracyReport verify_int8_accuracy(const std::string& model_name) {
  Int8AccuracyReport r;
  r.model = model_name;
  auto net = build(model_name);
  Rng rng(14);
  Tensor x = Tensor::randn({r.batch, 3, 32, 32}, rng);
  nn::ExecutionContext ctx;
  auto run_plan = [&] {
    ctx.begin_pass();
    Tensor staged = ctx.alloc(x.shape());
    std::memcpy(staged.data(), x.data(),
                static_cast<size_t>(x.size()) * sizeof(float));
    return net->forward(staged, ctx);
  };
  // The returned logits borrow arena memory the int8 pass will reuse:
  // copy the f32 reference out before switching regimes.
  const Tensor f32_logits = run_plan();
  std::vector<float> ref(f32_logits.data(),
                         f32_logits.data() + f32_logits.size());
  const int classes = f32_logits.dim(1);
  net->set_numeric_regime(plan::NumericRegime::kInt8);
  const Tensor q_logits = run_plan();
  int agree = 0;
  double max_ref = 0.0;
  for (int b = 0; b < r.batch; ++b) {
    const float* fr = ref.data() + static_cast<int64_t>(b) * classes;
    const float* qr = q_logits.data() + static_cast<int64_t>(b) * classes;
    int f_arg = 0, q_arg = 0;
    for (int c = 0; c < classes; ++c) {
      r.max_abs_diff =
          std::max(r.max_abs_diff, std::abs(double(fr[c]) - qr[c]));
      max_ref = std::max(max_ref, std::abs(double(fr[c])));
      if (fr[c] > fr[f_arg]) f_arg = c;
      if (qr[c] > qr[q_arg]) q_arg = c;
    }
    agree += f_arg == q_arg ? 1 : 0;
  }
  r.max_rel_diff = r.max_abs_diff / std::max(1e-12, max_ref);
  r.top1_agreement = static_cast<double>(agree) / r.batch;
  r.pass = std::isfinite(r.max_abs_diff) &&
           r.max_rel_diff <= kInt8MaxRelLogitDiff &&
           r.top1_agreement >= kInt8MinTop1Agreement;
  std::printf(
      "int8 accuracy %-8s: batch %d, max |logit diff| %.3e (%.3e relative, "
      "budget %.2e), top-1 agreement %.2f (floor %.2f)%s\n",
      r.model.c_str(), r.batch, r.max_abs_diff, r.max_rel_diff,
      kInt8MaxRelLogitDiff, r.top1_agreement, kInt8MinTop1Agreement,
      r.pass ? "" : "  <-- FAIL");
  return r;
}

// Int8 grouped-masked gate: the tentpole's end-to-end claim. vgg16 batch 8
// under 4 distinct CHANNEL-only masks (spatial drops would route groups to
// the f32 shift-GEMM fallback and measure the wrong thing): the int8
// grouped path must preserve the zero-alloc/zero-growth steady state and
// — when the igemm dispatch lands on AVX-512 VNNI — beat the f32 grouped
// path by >= 1.3x. Without VNNI the speedup is reported but not enforced
// (the AVX2 dpbusd emulation spends 4 multiplies per quad where vpdpbusd
// spends 1, so the floor is a VNNI property).
constexpr double kInt8MaskedSpeedupFloor = 1.3;

// Numerics budget for the masked gate is ABSOLUTE, not relative: with 90%
// of late-block channels dropped the surviving logits sit near zero
// (max |logit| ~0.1 on random init), so any relative metric explodes on
// noise. Real accuracy is gated by the dense int8 accuracy checks above;
// this bound (measured max |diff| ~2.1e-1) only catches gross breakage
// like a wrong scale or a misrouted group.
constexpr double kInt8MaskedAbsDiffBudget = 1.0;

struct Int8MaskedReport {
  std::string model = "vgg16";
  int batch = 8;
  int distinct = 4;
  int observed_groups = 0;
  double max_abs_diff = 0.0;  // int8 grouped vs f32 grouped logits
  double max_rel_diff = 0.0;  // relative to the largest f32 logit
  double f32_ms = 0.0;
  double int8_ms = 0.0;
  int64_t int8_allocs = -1;
  int64_t int8_growths = -1;
  bool vnni = false;
  bool gate_enforced = false;
  bool pass = false;
};

Int8MaskedReport verify_int8_grouped(int distinct) {
  Int8MaskedReport r;
  r.distinct = distinct;
  auto net = build(r.model);
  core::PruneSettings settings;
  settings.channel_drop = {0.2f, 0.2f, 0.6f, 0.9f, 0.9f};
  settings.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};
  core::DynamicPruningEngine engine(*net, settings);
  Rng rng(15);
  Tensor uniq = Tensor::randn({r.distinct, 3, 32, 32}, rng);
  Tensor x({r.batch, 3, 32, 32});
  const int64_t sample = uniq.size() / r.distinct;
  for (int i = 0; i < r.batch; ++i) {
    std::memcpy(x.data() + i * sample,
                uniq.data() + (i % r.distinct) * sample,
                static_cast<size_t>(sample) * sizeof(float));
  }
  nn::ExecutionContext ctx;
  plan::InferencePlan& plan = net->inference_plan(3, 32, 32);
  plan.reserve(ctx.workspace(), r.batch);
  auto run_plan = [&] {
    ctx.begin_pass();
    Tensor staged = ctx.alloc(x.shape());
    std::memcpy(staged.data(), x.data(),
                static_cast<size_t>(x.size()) * sizeof(float));
    return net->forward(staged, ctx);
  };
  const int reps = 10;
  for (int i = 0; i < 3; ++i) run_plan();  // warm f32 caches + arena
  const Tensor f32_logits = run_plan();
  std::vector<float> ref(f32_logits.data(),
                         f32_logits.data() + f32_logits.size());
  WallTimer f32_timer;
  for (int i = 0; i < reps; ++i) {
    Tensor y = run_plan();
    benchmark::DoNotOptimize(y.data());
  }
  r.f32_ms = f32_timer.millis() / reps;

  // Regime switch mid-flight: the same plan re-reserves for the int8
  // scratch (quantized column panels) and re-prepares the pack caches
  // with int8 ways; the steady state after that must be as allocation-
  // free as f32's.
  net->set_numeric_regime(plan::NumericRegime::kInt8);
  plan.reserve(ctx.workspace(), r.batch);
  for (int i = 0; i < 3; ++i) run_plan();  // warm int8 panels
  const Tensor q_logits = run_plan();
  double max_ref = 0.0;
  for (int64_t i = 0; i < q_logits.size(); ++i) {
    r.max_abs_diff = std::max(
        r.max_abs_diff, std::abs(double(ref[static_cast<size_t>(i)]) -
                                 q_logits.data()[i]));
    max_ref =
        std::max(max_ref, std::abs(double(ref[static_cast<size_t>(i)])));
  }
  r.max_rel_diff = r.max_abs_diff / std::max(1e-12, max_ref);
  r.observed_groups = plan.last_mask_groups();
  const int64_t grows_before = ctx.workspace().grow_count();
  const int64_t allocs_before = g_heap_allocs.load();
  WallTimer int8_timer;
  for (int i = 0; i < reps; ++i) {
    Tensor y = run_plan();
    benchmark::DoNotOptimize(y.data());
  }
  r.int8_ms = int8_timer.millis() / reps;
  r.int8_allocs = g_heap_allocs.load() - allocs_before;
  r.int8_growths = ctx.workspace().grow_count() - grows_before;

  r.vnni = nn::cpu_supports_vnni();
  r.gate_enforced = r.vnni;
  const double speedup = r.int8_ms > 0.0 ? r.f32_ms / r.int8_ms : 0.0;
  const bool numerics_ok = std::isfinite(r.max_abs_diff) &&
                           r.max_abs_diff <= kInt8MaskedAbsDiffBudget;
  const bool steady_ok = r.int8_allocs == 0 && r.int8_growths == 0;
  const bool groups_ok =
      r.observed_groups >= 1 && r.observed_groups <= r.distinct;
  const bool speed_ok =
      !r.gate_enforced || speedup >= kInt8MaskedSpeedupFloor;
  r.pass = numerics_ok && steady_ok && groups_ok && speed_ok;
  std::printf(
      "int8 masked %-8s: batch %d, %d distinct channel masks -> %d groups, "
      "|diff| %.3e (rel %.3e), f32 %.3f ms vs int8 %.3f ms "
      "(%.2fx, floor %.2f %s), steady %lld allocs / %lld growths%s\n",
      r.model.c_str(), r.batch, r.distinct, r.observed_groups,
      r.max_abs_diff, r.max_rel_diff, r.f32_ms, r.int8_ms, speedup,
      kInt8MaskedSpeedupFloor,
      r.gate_enforced ? "enforced" : "report-only: no VNNI",
      static_cast<long long>(r.int8_allocs),
      static_cast<long long>(r.int8_growths), r.pass ? "" : "  <-- FAIL");
  engine.remove();
  return r;
}

// --- tracing-enabled hot-path gate ------------------------------------------
//
// The obs tracer's core promise: the serving hot path stays allocation-
// and growth-free WITH tracing armed. Rings are preallocated by enable()
// and thread slots are claimed with a lock-free fetch_add, so warmed
// passes must stay at zero even while every phase span is being recorded.
// Also checks that the recorded timeline actually shows cross-worker
// group execution (>= 2 trace slots carrying kGroup spans) when the pool
// is wide enough for the parallel group regime.

struct TracingReport {
  bool compiled_in = false;
  int64_t traced_pass_allocs = -1;
  int64_t traced_pass_growths = -1;
  uint64_t events = 0;
  uint64_t dropped = 0;
  int slots_with_groups = 0;
  bool spread_gated = false;  // only with >= 4 threads (parallel regime)
  bool pass = true;
};

TracingReport verify_tracing() {
  TracingReport r;
  obs::Tracer& tracer = obs::Tracer::instance();
  r.compiled_in = tracer.enable(size_t{1} << 14, /*with_counters=*/false);
  if (!r.compiled_in) {
    std::printf(
        "tracing gate: profiling compiled out (ANTIDOTE_PROFILE=0); "
        "skipped\n");
    return r;
  }
  const int batch = 8, distinct = 4;
  auto net = build("vgg16");
  core::DynamicPruningEngine engine(*net, settings_for(*net));
  Rng rng(12);
  Tensor uniq = Tensor::randn({distinct, 3, 32, 32}, rng);
  Tensor x({batch, 3, 32, 32});
  const int64_t sample = uniq.size() / distinct;
  for (int i = 0; i < batch; ++i) {
    std::memcpy(x.data() + i * sample, uniq.data() + (i % distinct) * sample,
                static_cast<size_t>(sample) * sizeof(float));
  }
  nn::ExecutionContext ctx;
  plan::InferencePlan& plan = net->inference_plan(3, 32, 32);
  plan.reserve(ctx.workspace(), batch);
  auto run_pass = [&] {
    ctx.begin_pass();
    Tensor staged = ctx.alloc(x.shape());
    std::memcpy(staged.data(), x.data(),
                static_cast<size_t>(x.size()) * sizeof(float));
    Tensor y = net->forward(staged, ctx);
    benchmark::DoNotOptimize(y.data());
  };
  for (int i = 0; i < 3; ++i) run_pass();  // warm arena, claim trace slots
  tracer.clear();                          // keep slots, drop warmup spans
  const int64_t grows_before = ctx.workspace().grow_count();
  const int64_t allocs_before = g_heap_allocs.load();
  const int passes = 5;
  for (int i = 0; i < passes; ++i) run_pass();
  r.traced_pass_allocs = g_heap_allocs.load() - allocs_before;
  r.traced_pass_growths = ctx.workspace().grow_count() - grows_before;
  r.events = tracer.total_events();
  r.dropped = tracer.dropped_events();
  for (int s = 0; s < tracer.slots_in_use(); ++s) {
    const obs::TraceRing& ring = tracer.ring(s);
    for (size_t i = 0; i < ring.size(); ++i) {
      if (ring.chronological(i).phase ==
          static_cast<uint8_t>(obs::Phase::kGroup)) {
        ++r.slots_with_groups;
        break;
      }
    }
  }
  tracer.disable();
  engine.remove();

  const int threads = 1 + antidote::global_pool().size();
  r.spread_gated = threads >= 4;
  const bool alloc_ok =
      r.traced_pass_allocs == 0 && r.traced_pass_growths == 0;
  const bool spread_ok = !r.spread_gated || r.slots_with_groups >= 2;
  r.pass = alloc_ok && spread_ok && r.events > 0;
  std::printf(
      "tracing gate: %d traced passes, %lld heap allocs / %lld growths "
      "(want 0/0), %llu spans (%llu dropped), %d worker lanes with group "
      "spans%s -> %s\n",
      passes, static_cast<long long>(r.traced_pass_allocs),
      static_cast<long long>(r.traced_pass_growths),
      static_cast<unsigned long long>(r.events),
      static_cast<unsigned long long>(r.dropped), r.slots_with_groups,
      r.spread_gated ? " (>= 2 required)" : " (spread check skipped: <4 threads)",
      r.pass ? "PASSED" : "FAILED");
  return r;
}

// --- resolution sweep: spatially-tiled lowering gate -------------------------
//
// small_cnn forwards at 32..224 px (batch 2), --tile=auto vs --tile=off.
// Gated:
//   * tiled f32 logits stay BITWISE identical to untiled at every
//     resolution — tiling splits independent output columns only, and
//     each column's accumulation order is unchanged;
//   * warm tiled passes perform zero arena growths (the tile-aware
//     arena_bytes sizing is exact at 224x224 too);
//   * the tiled arena grows SUB-LINEARLY in output positions: the
//     32->224 arena ratio must stay under half the position ratio
//     (49x positions; measured ~13x arena, the residual being the
//     activations themselves);
//   * on a real pool (>= 4 threads on >= 4 physical cores) tiled beats
//     untiled at 224 by >= 1.2x — cache-resident column panels instead
//     of a ~30 MB im2col round trip — and costs <= 1.05x at 32, where
//     auto declines to tile and the code path is identical (the budget
//     only covers timer noise). Timing gates self-skip on small or
//     oversubscribed hosts; parity, growth and arena gates always run.
constexpr double kTiledSpeedupFloor = 1.2;
constexpr double kTiledLowResBudget = 1.05;
constexpr double kTiledSublinearFactor = 0.5;

struct ResolutionPoint {
  int resolution = 0;
  int64_t positions = 0;  // resolution^2: small_cnn convs preserve the grid
  size_t tiled_arena = 0;
  size_t untiled_arena = 0;
  int64_t max_tile = 0;    // widest tile chosen by auto (0 = declined)
  double tiled_ms = 0.0;   // 0 when the point is untimed
  double untiled_ms = 0.0;
  int64_t warm_growths = 0;
  bool bitwise = false;
};

ResolutionPoint measure_resolution(int res, bool timed) {
  ResolutionPoint p;
  p.resolution = res;
  p.positions = static_cast<int64_t>(res) * res;
  const int batch = 2;
  const int reps = res >= 128 ? 5 : 20;
  Rng rng(21);
  Tensor x = Tensor::randn({batch, 3, res, res}, rng);

  // Min-of-reps: robust against scheduler noise, which matters for the
  // tight 1.05x no-regression budget at 32 px.
  auto min_ms = [&](auto&& run) {
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
      WallTimer timer;
      run();
      const double ms = timer.millis();
      if (i == 0 || ms < best) best = ms;
    }
    return best;
  };

  std::vector<float> ref;
  {
    auto net = build("small_cnn");
    net->set_tile_policy({plan::TileMode::kOff, 0});
    nn::ExecutionContext ctx;
    plan::InferencePlan& plan = net->inference_plan(3, res, res);
    p.untiled_arena = plan.arena_bytes(batch);
    plan.reserve(ctx.workspace(), batch);
    auto run_pass = [&] {
      ctx.begin_pass();
      Tensor staged = ctx.alloc(x.shape());
      std::memcpy(staged.data(), x.data(),
                  static_cast<size_t>(x.size()) * sizeof(float));
      return net->forward(staged, ctx);
    };
    Tensor y = run_pass();
    ref.assign(y.data(), y.data() + y.size());
    if (timed) {
      run_pass();  // warm
      p.untiled_ms = min_ms([&] {
        Tensor z = run_pass();
        benchmark::DoNotOptimize(z.data());
      });
    }
  }
  {
    auto net = build("small_cnn");
    net->set_tile_policy({plan::TileMode::kAuto, 0});
    nn::ExecutionContext ctx;
    plan::InferencePlan& plan = net->inference_plan(3, res, res);
    p.tiled_arena = plan.arena_bytes(batch);
    for (const plan::PlanOp& op : plan.ops()) {
      p.max_tile = std::max<int64_t>(p.max_tile, op.tile_pos);
    }
    plan.reserve(ctx.workspace(), batch);
    auto run_pass = [&] {
      ctx.begin_pass();
      Tensor staged = ctx.alloc(x.shape());
      std::memcpy(staged.data(), x.data(),
                  static_cast<size_t>(x.size()) * sizeof(float));
      return net->forward(staged, ctx);
    };
    Tensor y = run_pass();
    p.bitwise = static_cast<size_t>(y.size()) == ref.size() &&
                std::memcmp(ref.data(), y.data(),
                            ref.size() * sizeof(float)) == 0;
    run_pass();  // warm
    const int64_t grows = ctx.workspace().grow_count();
    if (timed) {
      p.tiled_ms = min_ms([&] {
        Tensor z = run_pass();
        benchmark::DoNotOptimize(z.data());
      });
    } else {
      run_pass();
    }
    p.warm_growths = ctx.workspace().grow_count() - grows;
  }
  return p;
}

struct ResolutionSweepReport {
  std::vector<ResolutionPoint> points;
  double position_ratio = 0.0;  // 224 vs 32
  double arena_ratio = 0.0;     // tiled arena, 224 vs 32
  double speedup_224 = 0.0;     // untiled / tiled
  double low_res_ratio = 0.0;   // tiled / untiled at 32
  bool gate_enforced = false;
  bool pass = false;
};

ResolutionSweepReport verify_resolution_sweep() {
  ResolutionSweepReport r;
  for (int res : {32, 64, 128, 224}) {
    r.points.push_back(measure_resolution(res, res == 32 || res == 224));
  }
  const ResolutionPoint& lo = r.points.front();
  const ResolutionPoint& hi = r.points.back();
  r.position_ratio =
      static_cast<double>(hi.positions) / static_cast<double>(lo.positions);
  r.arena_ratio = static_cast<double>(hi.tiled_arena) /
                  static_cast<double>(std::max<size_t>(1, lo.tiled_arena));
  r.speedup_224 = hi.tiled_ms > 0.0 ? hi.untiled_ms / hi.tiled_ms : 0.0;
  r.low_res_ratio = lo.untiled_ms > 0.0 ? lo.tiled_ms / lo.untiled_ms : 0.0;

  bool bitwise = true;
  int64_t growths = 0;
  for (const ResolutionPoint& p : r.points) {
    bitwise &= p.bitwise;
    growths += p.warm_growths;
    std::printf(
        "resolution %3d: arena tiled %zu B vs untiled %zu B, max tile "
        "%lld, bitwise %s, warm growths %lld%s\n",
        p.resolution, p.tiled_arena, p.untiled_arena,
        static_cast<long long>(p.max_tile), p.bitwise ? "yes" : "NO",
        static_cast<long long>(p.warm_growths),
        p.tiled_ms > 0.0
            ? (", untiled " + std::to_string(p.untiled_ms) + " ms vs tiled " +
               std::to_string(p.tiled_ms) + " ms")
                  .c_str()
            : "");
  }
  const bool tiled_at_224 = hi.max_tile > 0;
  const bool sublinear =
      r.arena_ratio <= kTiledSublinearFactor * r.position_ratio;
  const int threads = 1 + antidote::global_pool().size();
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  r.gate_enforced = threads >= 4 && cores >= threads;
  const bool timing_ok = !r.gate_enforced ||
                         (r.speedup_224 >= kTiledSpeedupFloor &&
                          r.low_res_ratio <= kTiledLowResBudget);
  r.pass = bitwise && growths == 0 && tiled_at_224 && sublinear && timing_ok;
  std::printf(
      "resolution sweep small_cnn: 32->224 positions %.0fx, tiled arena "
      "%.1fx (sub-linear budget %.1fx), 224 speedup %.2fx (floor %.2f), "
      "32 ratio %.3f (budget %.2f)%s -> %s\n",
      r.position_ratio, r.arena_ratio,
      kTiledSublinearFactor * r.position_ratio, r.speedup_224,
      kTiledSpeedupFloor, r.low_res_ratio, kTiledLowResBudget,
      r.gate_enforced ? "" : " (timing skipped: <4 threads or oversubscribed)",
      r.pass ? "PASSED" : "FAILED");
  return r;
}

// --- adversarial-load hardening gate -----------------------------------------
//
// The serving stack under hostile traffic (serving/adversarial.h). Gated:
//   * per-request compute-cap semantics, deterministically: a NON-binding
//     cap is bitwise identical to the uncapped plan (the executor returns
//     the original masks untouched) and counts zero capped samples; a
//     binding cap clamps every masked sample and stays zero-alloc /
//     zero-growth across warm passes (capped_masks are pre-sized by
//     reserve());
//   * under a mixed-profile attack at sustained overload against a server
//     running cost-aware admission control plus the cap, the hardening
//     actually fires: shed > 0 and capped > 0;
//   * on a real pool (>= 4 threads on >= 4 physical cores) the admitted
//     requests' e2e p99 under attack stays within 3x the friendly
//     closed-loop p99 — admission keeps the queue drainable instead of
//     letting hostile load poison every admitted request. The timing
//     ratio self-skips like the other gates; cap semantics and counter
//     checks always run.
constexpr double kAdversarialP99Factor = 3.0;

struct AdversarialReport {
  bool cap_noop_bitwise = false;
  int cap_noop_samples = -1;    // must be 0: the 0.9 cap never binds
  int cap_binding_samples = 0;  // must cover the batch: 0.4 always binds
  int64_t cap_warm_allocs = -1;
  int64_t cap_warm_growths = -1;
  double friendly_p99_ms = 0.0;
  uint64_t attack_offered = 0;
  uint64_t attack_completed = 0;
  uint64_t shed = 0;
  uint64_t rejected = 0;
  uint64_t capped = 0;
  uint64_t expired = 0;
  double attack_p99_ms = 0.0;
  double attack_queue_p99_ms = 0.0;
  double attack_forward_p99_ms = 0.0;
  double p99_ratio = 0.0;
  bool gate_enforced = false;
  bool pass = false;
};

AdversarialReport verify_adversarial() {
  AdversarialReport r;
  const int batch = 4;

  // 1) Cap semantics on the plan executor (deterministic, no serving).
  // Channel-only drops of 0.3: every masked sample demands keep 0.7 of
  // some conv step, so a 0.9 ceiling never binds and a 0.4 always does.
  {
    auto net = build("small_cnn");
    core::PruneSettings s;
    s.channel_drop.assign(static_cast<size_t>(net->num_blocks()), 0.3f);
    s.spatial_drop.assign(static_cast<size_t>(net->num_blocks()), 0.f);
    core::DynamicPruningEngine engine(*net, s);
    Rng rng(33);
    Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);
    nn::ExecutionContext ctx;
    plan::InferencePlan& plan = net->inference_plan(3, 32, 32);
    plan.reserve(ctx.workspace(), batch);
    auto run_pass = [&] {
      ctx.begin_pass();
      Tensor staged = ctx.alloc(x.shape());
      std::memcpy(staged.data(), x.data(),
                  static_cast<size_t>(x.size()) * sizeof(float));
      return net->forward(staged, ctx);
    };
    const Tensor uncapped = run_pass();
    std::vector<float> ref(uncapped.data(),
                           uncapped.data() + uncapped.size());
    net->set_compute_cap(0.9);
    const Tensor noop = run_pass();
    r.cap_noop_bitwise =
        static_cast<size_t>(noop.size()) == ref.size() &&
        std::memcmp(ref.data(), noop.data(),
                    ref.size() * sizeof(float)) == 0;
    r.cap_noop_samples = plan.last_capped_samples();
    net->set_compute_cap(0.4);
    for (int i = 0; i < 3; ++i) run_pass();  // warm the capped path
    r.cap_binding_samples = plan.last_capped_samples();
    const int64_t grows_before = ctx.workspace().grow_count();
    const int64_t allocs_before = g_heap_allocs.load();
    for (int i = 0; i < 5; ++i) {
      Tensor y = run_pass();
      benchmark::DoNotOptimize(y.data());
    }
    r.cap_warm_allocs = g_heap_allocs.load() - allocs_before;
    r.cap_warm_growths = ctx.workspace().grow_count() - grows_before;
    engine.remove();
  }

  // Shared serving pieces: channel-only pruning so the compute cap has a
  // well-defined per-request kept fraction to clamp.
  auto make_prune = [] {
    auto probe = build("small_cnn");
    core::PruneSettings s;
    s.channel_drop.assign(static_cast<size_t>(probe->num_blocks()), 0.3f);
    s.spatial_drop.assign(static_cast<size_t>(probe->num_blocks()), 0.f);
    return s;
  };
  auto closed_loop = [](serving::InferenceServer& server, int clients,
                        int per_client, uint64_t seed0) {
    std::vector<std::thread> ts;
    ts.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      ts.emplace_back([&server, per_client, seed0, c] {
        Rng rng(seed0 + static_cast<uint64_t>(c));
        for (int i = 0; i < per_client; ++i) {
          auto f = server.submit(Tensor::randn({3, 32, 32}, rng));
          if (!f.valid()) return;
          f.get();
        }
      });
    }
    for (std::thread& t : ts) t.join();
  };

  // 2) Friendly baseline: closed-loop clients against a plain pruned
  // server fix the reference p99.
  {
    serving::ServerConfig config;
    config.policy.max_batch = 8;
    config.policy.max_wait = std::chrono::microseconds(500);
    config.policy.num_workers = 2;
    config.prune = make_prune();
    serving::InferenceServer server(
        [](int) { return build("small_cnn"); }, config);
    closed_loop(server, 4, 8, 55);  // warm-up
    server.stats().reset();
    closed_loop(server, 4, 24, 56);
    r.friendly_p99_ms = server.stats().snapshot().e2e_p99_ms;
    server.shutdown();
  }

  // 3) Mixed attack against the hardened server. The generous latency
  // budget keeps the controller relaxed — i.e. near keep-everything, the
  // worst case the cap exists for — while the tight admission budget
  // prices the burst volleys out of the queue.
  {
    serving::ServerConfig config;
    config.policy.max_batch = 8;
    config.policy.max_wait = std::chrono::microseconds(500);
    config.policy.num_workers = 2;
    config.queue_capacity = 64;
    config.prune = make_prune();
    serving::LatencyController::Config lc;
    lc.target_p95_ms = 20.0;
    config.latency = lc;
    config.admission.enabled = true;
    config.admission.max_queue_ms = 0.1;
    config.compute_cap = 0.5;
    serving::InferenceServer server(
        [](int) { return build("small_cnn"); }, config);
    // Friendly warm-up first: the controller needs a latency window
    // before the admission cost estimate is live.
    closed_loop(server, 4, 8, 57);
    server.stats().reset();

    constexpr int kAttackers = 4;
    constexpr int kPerAttacker = 128;
    std::vector<std::thread> attackers;
    attackers.reserve(kAttackers);
    for (int c = 0; c < kAttackers; ++c) {
      attackers.emplace_back([&server, c] {
        serving::AdversarialGenerator gen(
            3, 32, 32, serving::AdversarialProfile::kMixed,
            77 + static_cast<uint64_t>(c));
        std::vector<std::future<serving::InferenceResult>> volley;
        for (int i = 0; i < kPerAttacker;) {
          const serving::AdversarialPacing pacing =
              gen.pacing(server.queue().capacity());
          const int n =
              pacing.open_loop
                  ? std::min(pacing.burst, kPerAttacker - i)
                  : 1;
          for (int b = 0; b < n; ++b) {
            const auto deadline =
                serving::Clock::now() + std::chrono::milliseconds(50);
            auto f = pacing.open_loop
                         ? server.try_submit(gen.next_input(), deadline)
                         : server.submit(gen.next_input(), deadline);
            if (f.valid()) volley.push_back(std::move(f));
          }
          i += n;
          for (auto& f : volley) f.get();
          volley.clear();
          if (pacing.gap.count() > 0) {
            std::this_thread::sleep_for(pacing.gap);
          }
        }
      });
    }
    for (std::thread& t : attackers) t.join();
    const serving::ServerStats::Snapshot s = server.stats().snapshot();
    server.shutdown();
    r.attack_offered = s.offered_requests;
    r.attack_completed = s.completed_requests;
    r.shed = s.shed;
    r.rejected = s.rejected;
    r.capped = s.capped_requests;
    r.expired = s.expired_unexecuted;
    r.attack_p99_ms = s.e2e_p99_ms;
    r.attack_queue_p99_ms = s.queue_wait_p99_ms;
    r.attack_forward_p99_ms = s.forward_p99_ms;
  }
  r.p99_ratio = r.friendly_p99_ms > 0.0
                    ? r.attack_p99_ms / r.friendly_p99_ms
                    : 0.0;

  const int threads = 1 + antidote::global_pool().size();
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  r.gate_enforced = threads >= 4 && cores >= threads;
  const bool cap_ok = r.cap_noop_bitwise && r.cap_noop_samples == 0 &&
                      r.cap_binding_samples == batch &&
                      r.cap_warm_allocs == 0 && r.cap_warm_growths == 0;
  const bool fired_ok = r.shed > 0 && r.capped > 0;
  const bool timing_ok =
      !r.gate_enforced || r.p99_ratio <= kAdversarialP99Factor;
  r.pass = cap_ok && fired_ok && timing_ok;
  std::printf(
      "adversarial small_cnn: cap noop bitwise %s (%d capped), binding cap "
      "%d/%d samples, warm %lld allocs / %lld growths; mixed attack "
      "%llu offered -> %llu completed, shed %llu, rejected %llu, capped "
      "%llu, expired %llu; p99 %.3f ms (queue %.3f, forward %.3f) vs "
      "friendly %.3f ms (%.2fx, budget %.1f)%s -> %s\n",
      r.cap_noop_bitwise ? "yes" : "NO", r.cap_noop_samples,
      r.cap_binding_samples, batch,
      static_cast<long long>(r.cap_warm_allocs),
      static_cast<long long>(r.cap_warm_growths),
      static_cast<unsigned long long>(r.attack_offered),
      static_cast<unsigned long long>(r.attack_completed),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.capped),
      static_cast<unsigned long long>(r.expired), r.attack_p99_ms,
      r.attack_queue_p99_ms, r.attack_forward_p99_ms, r.friendly_p99_ms,
      r.p99_ratio, kAdversarialP99Factor,
      r.gate_enforced ? "" : " (timing skipped: <4 threads or oversubscribed)",
      r.pass ? "PASSED" : "FAILED");
  return r;
}

// --- serving latency-distribution smoke -------------------------------------
//
// A small in-process InferenceServer run whose percentile snapshot rides
// into BENCH_e2e.json (top-level "serving_smoke"), so queue-wait/e2e
// tails are tracked across PRs next to the forward-latency curves.
// Reported, not gated: absolute latencies are machine-dependent.
std::string serving_percentile_smoke() {
  serving::ServerConfig config;
  config.policy.max_batch = 8;
  config.policy.max_wait = std::chrono::microseconds(500);
  config.policy.num_workers = 2;
  config.prune = settings_for(*build("small_cnn"));
  serving::InferenceServer server(
      [](int) { return build("small_cnn"); }, config);
  Rng rng(13);
  const int warmup = 16, measured = 96;
  std::vector<std::future<serving::InferenceResult>> futures;
  futures.reserve(static_cast<size_t>(warmup + measured));
  for (int i = 0; i < warmup; ++i) {
    futures.push_back(server.submit(Tensor::randn({3, 32, 32}, rng)));
  }
  for (auto& f : futures) f.get();
  futures.clear();
  server.stats().reset();
  for (int i = 0; i < measured; ++i) {
    futures.push_back(server.submit(Tensor::randn({3, 32, 32}, rng)));
  }
  for (auto& f : futures) f.get();
  const serving::ServerStats::Snapshot s = server.stats().snapshot();
  server.shutdown();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\"serving_smoke\": {\"model\": \"small_cnn\", \"requests\": %llu, "
      "\"queue_wait_ms\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f}, "
      "\"e2e_ms\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f}, "
      "\"deadline_miss_rate_pct\": %.2f}",
      static_cast<unsigned long long>(s.completed_requests),
      s.queue_wait_p50_ms, s.queue_wait_p95_ms, s.queue_wait_p99_ms,
      s.e2e_p50_ms, s.e2e_p95_ms, s.e2e_p99_ms, s.deadline_miss_rate_pct);
  std::printf(
      "serving smoke: %llu requests, e2e p50/p95/p99 %.3f/%.3f/%.3f ms\n",
      static_cast<unsigned long long>(s.completed_requests), s.e2e_p50_ms,
      s.e2e_p95_ms, s.e2e_p99_ms);
  return buf;
}

bool run_plan_verification(const char* json_path) {
  std::printf("--- plan equivalence gate ---\n");
  std::vector<PlanReport> reports;
  reports.push_back(verify_plan("vgg16", /*batch=*/4));
  reports.push_back(verify_plan("resnet56", /*batch=*/2));
  reports.push_back(verify_plan("small_cnn", /*batch=*/4));
  std::printf("--- grouped masked execution ---\n");
  std::vector<GroupedReport> grouped;
  grouped.push_back(verify_grouped("vgg16", /*distinct=*/2));
  grouped.push_back(verify_grouped("vgg16", /*distinct=*/4));
  grouped.push_back(verify_grouped("vgg16", /*distinct=*/8));  // all-distinct
  grouped.push_back(verify_grouped("resnet56", /*distinct=*/4));
  bool ok = true;
  for (const PlanReport& r : reports) ok &= r.pass;
  for (const GroupedReport& r : grouped) ok &= r.pass;

  // Cross-group parallelism gate: with a real pool, the batch-8
  // all-distinct case (8 singleton groups, the former serialize-per-
  // sample worst case) must be no slower than the 4-group case by more
  // than 1.15x — concurrent groups, not serial dispatch. Skipped below 4
  // compute threads (groups necessarily serialize) and on oversubscribed
  // pools (more threads than cores: concurrency without parallelism only
  // adds dispatch work, which is not what the gate measures).
  const int threads = 1 + antidote::global_pool().size();
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  double ms4 = 0.0, ms8 = 0.0;
  for (const GroupedReport& r : grouped) {
    if (r.model != "vgg16") continue;
    if (r.distinct == 4) ms4 = r.grouped_ms;
    if (r.distinct == 8) ms8 = r.grouped_ms;
  }
  const double ratio = ms4 > 0.0 ? ms8 / ms4 : 0.0;
  const bool gate_active =
      threads >= 4 && cores >= threads && ms4 > 0.0 && ms8 > 0.0;
  const bool all_distinct_ok = !gate_active || ratio <= 1.15;
  ok &= all_distinct_ok;
  std::printf(
      "all-distinct gate: %d threads, simd %d-lane (%s), 8-group %.3f ms "
      "vs 4-group %.3f ms (ratio %.3f, budget 1.15) -> %s\n",
      threads, antidote::nn::simd_lane_width(),
      antidote::nn::simd_isa_name(), ms8, ms4, ratio,
      !gate_active ? "SKIPPED (<4 threads or oversubscribed)"
                   : (all_distinct_ok ? "PASSED" : "FAILED"));

  std::printf("--- similar-mask union coarsening ---\n");
  const MaskUnionReport mask_union = verify_mask_union();
  ok &= mask_union.pass;

  std::printf("--- int8 regime ---\n");
  std::vector<Int8AccuracyReport> int8_acc;
  int8_acc.push_back(verify_int8_accuracy("vgg16"));
  int8_acc.push_back(verify_int8_accuracy("resnet56"));
  int8_acc.push_back(verify_int8_accuracy("small_cnn"));
  for (const Int8AccuracyReport& r : int8_acc) ok &= r.pass;
  const Int8MaskedReport int8_masked = verify_int8_grouped(/*distinct=*/4);
  ok &= int8_masked.pass;

  std::printf("--- tracing-enabled hot path ---\n");
  const TracingReport tracing = verify_tracing();
  ok &= tracing.pass;

  std::printf("--- resolution sweep (spatially-tiled lowering) ---\n");
  const ResolutionSweepReport sweep = verify_resolution_sweep();
  ok &= sweep.pass;

  std::printf("--- adversarial-load hardening ---\n");
  const AdversarialReport adversarial = verify_adversarial();
  ok &= adversarial.pass;

  // Written to a temp file and published atomically: the tracked
  // BENCH_plan.json must never be observable empty or half-written.
  const std::string tmp_path = std::string(json_path) + ".tmp";
  if (FILE* f = std::fopen(tmp_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"meta\": %s,\n  \"plan_equivalence\": [\n",
                 antidote::bench::bench_meta_json().c_str());
    for (size_t i = 0; i < reports.size(); ++i) {
      const PlanReport& r = reports[i];
      std::fprintf(
          f,
          "    {\"model\": \"%s\", \"dense_bitwise\": %s, "
          "\"masked_max_abs_diff\": %.3e, \"first_pass_arena_growths\": %lld, "
          "\"first_pass_heap_allocs\": %lld, \"module_walk_ms\": %.4f, "
          "\"plan_ms\": %.4f, \"speedup\": %.3f, \"pass\": %s}%s\n",
          r.model.c_str(), r.dense_bitwise ? "true" : "false",
          r.masked_max_abs_diff, static_cast<long long>(r.first_pass_growths),
          static_cast<long long>(r.first_pass_heap_allocs), r.module_walk_ms,
          r.plan_ms, r.plan_ms > 0 ? r.module_walk_ms / r.plan_ms : 0.0,
          r.pass ? "true" : "false", i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"masked_grouped\": [\n");
    for (size_t i = 0; i < grouped.size(); ++i) {
      const GroupedReport& r = grouped[i];
      std::fprintf(
          f,
          "    {\"model\": \"%s\", \"batch\": %d, \"distinct_masks\": %d, "
          "\"observed_groups\": %d, \"max_abs_diff\": %.3e, "
          "\"per_sample_masked_ms\": %.4f, \"grouped_masked_ms\": %.4f, "
          "\"speedup\": %.3f, \"pack_cache_hits\": %lld, "
          "\"pack_cache_misses\": %lld, \"pass\": %s}%s\n",
          r.model.c_str(), r.batch, r.distinct, r.observed_groups,
          r.max_abs_diff, r.per_sample_ms, r.grouped_ms,
          r.grouped_ms > 0 ? r.per_sample_ms / r.grouped_ms : 0.0,
          static_cast<long long>(r.pack_hits),
          static_cast<long long>(r.pack_misses), r.pass ? "true" : "false",
          i + 1 < grouped.size() ? "," : "");
    }
    std::fprintf(
        f,
        "  ],\n  \"all_distinct\": {\"threads\": %d, \"simd_lanes\": %d, "
        "\"isa\": \"%s\", \"grouped8_ms\": %.4f, \"grouped4_ms\": %.4f, "
        "\"ratio\": %.3f, \"budget\": 1.15, \"gated\": %s, \"pass\": %s},\n",
        threads, antidote::nn::simd_lane_width(),
        antidote::nn::simd_isa_name(), ms8, ms4, ratio,
        gate_active ? "true" : "false", all_distinct_ok ? "true" : "false");
    std::fprintf(
        f,
        "  \"mask_union\": {\"model\": \"vgg16\", \"batch\": %d, "
        "\"raw_groups\": %d, \"coarsened_groups\": %d, "
        "\"extra_mac_frac\": %.4f, \"bitwise\": %s, "
        "\"steady_arena_growths\": %lld, \"off_ms\": %.4f, "
        "\"auto_ms\": %.4f, \"speedup\": %.3f, \"speedup_floor\": %.2f, "
        "\"distinct4_off_ms\": %.4f, \"distinct4_auto_ms\": %.4f, "
        "\"distinct4_ratio\": %.3f, \"distinct4_budget\": %.2f, "
        "\"gate_enforced\": %s, \"pass\": %s},\n",
        mask_union.batch, mask_union.raw_groups,
        mask_union.coarsened_groups, mask_union.extra_mac_frac,
        mask_union.bitwise ? "true" : "false",
        static_cast<long long>(mask_union.steady_growths),
        mask_union.off_ms, mask_union.auto_ms, mask_union.speedup,
        kMaskUnionSpeedupFloor, mask_union.distinct4_off_ms,
        mask_union.distinct4_auto_ms, mask_union.distinct4_ratio,
        kMaskUnionNoRegressionBudget,
        mask_union.gate_enforced ? "true" : "false",
        mask_union.pass ? "true" : "false");
    std::fprintf(f, "  \"int8_accuracy\": [\n");
    for (size_t i = 0; i < int8_acc.size(); ++i) {
      const Int8AccuracyReport& r = int8_acc[i];
      std::fprintf(
          f,
          "    {\"model\": \"%s\", \"batch\": %d, \"max_logit_diff\": "
          "%.3e, \"max_rel_diff\": %.3e, \"rel_budget\": %.3e, "
          "\"top1_agreement\": %.3f, "
          "\"agreement_floor\": %.2f, \"pass\": %s}%s\n",
          r.model.c_str(), r.batch, r.max_abs_diff, r.max_rel_diff,
          kInt8MaxRelLogitDiff,
          r.top1_agreement, kInt8MinTop1Agreement, r.pass ? "true" : "false",
          i + 1 < int8_acc.size() ? "," : "");
    }
    std::fprintf(
        f,
        "  ],\n  \"int8_masked\": {\"model\": \"%s\", \"batch\": %d, "
        "\"distinct_masks\": %d, \"observed_groups\": %d, "
        "\"max_abs_diff\": %.3e, \"abs_diff_budget\": %.3e, "
        "\"f32_grouped_ms\": %.4f, "
        "\"int8_grouped_ms\": %.4f, \"speedup\": %.3f, "
        "\"speedup_floor\": %.2f, \"steady_heap_allocs\": %lld, "
        "\"steady_arena_growths\": %lld, \"avx512_vnni\": %s, "
        "\"gate_enforced\": %s, \"pass\": %s},\n",
        int8_masked.model.c_str(), int8_masked.batch, int8_masked.distinct,
        int8_masked.observed_groups, int8_masked.max_abs_diff,
        kInt8MaskedAbsDiffBudget,
        int8_masked.f32_ms, int8_masked.int8_ms,
        int8_masked.int8_ms > 0.0 ? int8_masked.f32_ms / int8_masked.int8_ms
                                  : 0.0,
        kInt8MaskedSpeedupFloor,
        static_cast<long long>(int8_masked.int8_allocs),
        static_cast<long long>(int8_masked.int8_growths),
        int8_masked.vnni ? "true" : "false",
        int8_masked.gate_enforced ? "true" : "false",
        int8_masked.pass ? "true" : "false");
    std::fprintf(
        f,
        "  \"tracing\": {\"compiled_in\": %s, \"traced_pass_heap_allocs\": "
        "%lld, \"traced_pass_arena_growths\": %lld, \"events\": %llu, "
        "\"dropped\": %llu, \"slots_with_group_spans\": %d, "
        "\"spread_gated\": %s, \"pass\": %s},\n",
        tracing.compiled_in ? "true" : "false",
        static_cast<long long>(tracing.traced_pass_allocs),
        static_cast<long long>(tracing.traced_pass_growths),
        static_cast<unsigned long long>(tracing.events),
        static_cast<unsigned long long>(tracing.dropped),
        tracing.slots_with_groups, tracing.spread_gated ? "true" : "false",
        tracing.pass ? "true" : "false");
    std::fprintf(f, "  \"resolution_sweep\": {\"model\": \"small_cnn\", "
                    "\"batch\": 2, \"points\": [\n");
    for (size_t i = 0; i < sweep.points.size(); ++i) {
      const ResolutionPoint& p = sweep.points[i];
      std::fprintf(
          f,
          "    {\"resolution\": %d, \"positions\": %lld, "
          "\"tiled_arena_bytes\": %zu, \"untiled_arena_bytes\": %zu, "
          "\"max_tile\": %lld, \"tiled_ms\": %.4f, \"untiled_ms\": %.4f, "
          "\"warm_arena_growths\": %lld, \"bitwise\": %s}%s\n",
          p.resolution, static_cast<long long>(p.positions), p.tiled_arena,
          p.untiled_arena, static_cast<long long>(p.max_tile), p.tiled_ms,
          p.untiled_ms, static_cast<long long>(p.warm_growths),
          p.bitwise ? "true" : "false",
          i + 1 < sweep.points.size() ? "," : "");
    }
    std::fprintf(
        f,
        "  ], \"position_ratio\": %.1f, \"tiled_arena_ratio\": %.2f, "
        "\"sublinear_factor\": %.2f, \"speedup_224\": %.3f, "
        "\"speedup_floor\": %.2f, \"low_res_ratio\": %.3f, "
        "\"low_res_budget\": %.2f, \"gate_enforced\": %s, \"pass\": %s},\n",
        sweep.position_ratio, sweep.arena_ratio, kTiledSublinearFactor,
        sweep.speedup_224, kTiledSpeedupFloor, sweep.low_res_ratio,
        kTiledLowResBudget, sweep.gate_enforced ? "true" : "false",
        sweep.pass ? "true" : "false");
    std::fprintf(
        f,
        "  \"adversarial\": {\"model\": \"small_cnn\", "
        "\"cap_noop_bitwise\": %s, \"cap_noop_samples\": %d, "
        "\"cap_binding_samples\": %d, \"cap_warm_heap_allocs\": %lld, "
        "\"cap_warm_arena_growths\": %lld, \"attack_offered\": %llu, "
        "\"attack_completed\": %llu, \"shed\": %llu, \"rejected\": %llu, "
        "\"capped\": %llu, \"expired_unexecuted\": %llu, "
        "\"friendly_p99_ms\": %.4f, \"attack_p99_ms\": %.4f, "
        "\"p99_ratio\": %.3f, \"p99_budget\": %.1f, \"gate_enforced\": %s, "
        "\"pass\": %s},\n",
        adversarial.cap_noop_bitwise ? "true" : "false",
        adversarial.cap_noop_samples, adversarial.cap_binding_samples,
        static_cast<long long>(adversarial.cap_warm_allocs),
        static_cast<long long>(adversarial.cap_warm_growths),
        static_cast<unsigned long long>(adversarial.attack_offered),
        static_cast<unsigned long long>(adversarial.attack_completed),
        static_cast<unsigned long long>(adversarial.shed),
        static_cast<unsigned long long>(adversarial.rejected),
        static_cast<unsigned long long>(adversarial.capped),
        static_cast<unsigned long long>(adversarial.expired),
        adversarial.friendly_p99_ms, adversarial.attack_p99_ms,
        adversarial.p99_ratio, kAdversarialP99Factor,
        adversarial.gate_enforced ? "true" : "false",
        adversarial.pass ? "true" : "false");
    std::fprintf(f, "  \"gate\": \"%s\"\n}\n",
                 ok ? "PASSED" : "FAILED");
    std::fclose(f);
  }
  ok &= antidote::bench::publish_json_atomically(tmp_path, json_path);
  std::printf("--- plan gate %s (%s written) ---\n",
              ok ? "PASSED" : "FAILED", json_path);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool skip_verify =
      std::getenv("ANTIDOTE_SKIP_VERIFY") != nullptr;
  if (!skip_verify && !run_verification()) return 1;
  if (!skip_verify && !run_plan_verification("BENCH_plan.json")) return 1;
  const std::string serving_fragment =
      skip_verify ? std::string() : serving_percentile_smoke();
  return antidote::bench::run_benchmarks(argc, argv, "BENCH_e2e.json",
                                         serving_fragment);
}
