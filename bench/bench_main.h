// Shared main() body for the google-benchmark micro benches: defaults the
// run to machine-readable JSON output (BENCH_*.json) unless the caller
// already passed --benchmark_out, so the perf trajectory is tracked
// across PRs without extra flags.
//
// The JSON is published ATOMICALLY: the run writes to <out>.tmp and only
// renames it over the final path after verifying the file is non-empty
// and terminates like a JSON document. A crashed or OOM-killed bench can
// therefore never leave a 0-byte or half-written BENCH_*.json behind, and
// an empty/partial emission fails the run (non-zero exit) instead of
// silently shipping garbage.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "base/build_info.h"
#include "base/parallel.h"
#include "nn/conv_kernels.h"

namespace antidote::bench {

// Run-metadata JSON object shared by every BENCH_*.json: schema version
// (bump kBenchSchemaVersion when a bench's fields change meaning), the
// build's `git describe`, the thread count the pool actually uses and the
// SIMD ISA the kernels were compiled for. Downstream tooling can refuse
// to diff runs whose meta blocks disagree.
inline std::string bench_meta_json() {
  std::ostringstream os;
  os << "{\"schema_version\": " << kBenchSchemaVersion << ", \"git\": \""
     << build_git_describe() << "\", \"threads\": " << (global_pool().size() + 1)
     << ", \"simd_isa\": \"" << nn::simd_isa_name()
     << "\", \"simd_lanes\": " << nn::simd_lane_width()
     << ", \"int8_isa\": \"" << nn::int8_isa_name()
     << "\", \"avx512_vnni\": "
     << (nn::cpu_supports_vnni() ? "true" : "false") << "}";
  return os.str();
}

// Splices `"meta": {...}` (plus an optional extra top-level fragment,
// e.g. "\"serving\": {...}") immediately after the opening `{` of the
// google-benchmark JSON document at `path`. Returns false when the file
// can't be read back or doesn't open with `{`.
inline bool inject_meta_json(const std::string& path,
                             const std::string& extra_fragment) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string doc = buf.str();
  in.close();
  const size_t brace = doc.find('{');
  if (brace == std::string::npos) return false;
  std::string insert = "\n  \"meta\": " + bench_meta_json() + ",";
  if (!extra_fragment.empty()) insert += "\n  " + extra_fragment + ",";
  doc.insert(brace + 1, insert);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << doc;
  return out.good();
}

// True when the file is non-empty and its last non-whitespace byte closes
// a JSON object — the cheap structural check that catches truncation.
inline bool looks_like_complete_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char tail[64];
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size <= 0) {
    std::fclose(f);
    return false;
  }
  const long take = size < static_cast<long>(sizeof(tail)) ? size : static_cast<long>(sizeof(tail));
  std::fseek(f, -take, SEEK_END);
  const size_t got = std::fread(tail, 1, static_cast<size_t>(take), f);
  std::fclose(f);
  for (size_t i = got; i-- > 0;) {
    const char c = tail[i];
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t') continue;
    return c == '}';
  }
  return false;
}

// Atomically publishes tmp_path over final_path after validating it.
// Returns false (and removes the temp file) on empty/partial output.
inline bool publish_json_atomically(const std::string& tmp_path,
                                    const std::string& final_path) {
  std::error_code ec;
  if (!looks_like_complete_json(tmp_path)) {
    std::fprintf(stderr,
                 "ERROR: bench JSON emission empty or truncated (%s); "
                 "refusing to publish %s\n",
                 tmp_path.c_str(), final_path.c_str());
    std::filesystem::remove(tmp_path, ec);
    return false;
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::fprintf(stderr, "ERROR: failed to publish %s: %s\n",
                 final_path.c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

// `extra_json_fragment`, when non-empty, is a `"key": {...}` fragment
// spliced into the document top level next to the "meta" block (used by
// micro_e2e to attach the serving-percentile smoke results).
inline int run_benchmarks(int argc, char** argv, const char* default_out,
                          const std::string& extra_json_fragment = "") {
  std::vector<char*> args(argv, argv + argc);
  const std::string tmp_path = std::string(default_out) + ".tmp";
  std::string out_flag = "--benchmark_out=" + tmp_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) {
    if (!inject_meta_json(tmp_path, extra_json_fragment)) {
      std::fprintf(stderr,
                   "ERROR: could not inject run metadata into %s\n",
                   tmp_path.c_str());
      return 1;
    }
    if (!publish_json_atomically(tmp_path, default_out)) return 1;
  }
  return 0;
}

}  // namespace antidote::bench
