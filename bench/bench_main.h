// Shared main() body for the google-benchmark micro benches: defaults the
// run to machine-readable JSON output (BENCH_*.json) unless the caller
// already passed --benchmark_out, so the perf trajectory is tracked
// across PRs without extra flags.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace antidote::bench {

inline int run_benchmarks(int argc, char** argv, const char* default_out) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = std::string("--benchmark_out=") + default_out;
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace antidote::bench
