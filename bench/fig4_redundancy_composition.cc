// Fig. 4: feature-map redundancy composition. For each Table-I setting,
// decompose the measured FLOPs reduction into its channel-wise and
// spatial-wise components by re-measuring with one dimension switched off.
// Expected shape: VGG16/ImageNet100 is dominated by spatial redundancy
// (paper: 52.1% spatial vs 2.4% channel), CIFAR VGG16 is channel-only, and
// ResNet56 removes a moderate amount of both.
//
// FLOPs composition depends only on the mask sizes (k is fixed by the
// ratio), not on trained weights, so this bench measures on initialized
// models and runs in seconds at every scale.
#include "common.h"

#include "core/evaluate.h"
#include "models/factory.h"
#include "models/flops.h"

namespace {

struct Config {
  std::string label;
  std::string model;
  std::string dataset;
  int classes;
  std::string family;
  antidote::core::PruneSettings settings;
};

void measure(const Config& cfg, antidote::Table& table) {
  using namespace antidote;
  const auto scale = bench::resolve_scale(bench_scale(), cfg.family);
  bench::ScaleConfig data_scale = scale;
  data_scale.test_size = std::min(scale.test_size, 64);
  data_scale.train_size = 8;  // unused, keep generation cheap
  auto pair = bench::load_dataset(cfg.dataset, data_scale);

  Rng rng(5);
  auto net = models::make_model(cfg.model, cfg.classes, scale.width_mult, rng);
  const auto shape = pair.test->sample_shape();
  const double dense = static_cast<double>(
      models::measure_dense_flops(*net, shape[0], shape[1], shape[2])
          .total_macs);

  core::DynamicPruningEngine engine(*net, cfg.settings);
  auto reduction_with = [&](const core::PruneSettings& s) {
    engine.apply_settings(s);
    const core::EvalResult r =
        core::evaluate(*net, *pair.test, scale.eval_batch);
    return bench::flops_reduction_percent(dense, r.mean_macs_per_sample);
  };

  const double both = reduction_with(cfg.settings);
  const double channel_only = reduction_with(cfg.settings.channel_only());
  const double spatial_only = reduction_with(cfg.settings.spatial_only());
  engine.remove();

  table.add_row({cfg.label, Table::fmt(channel_only, 1),
                 Table::fmt(spatial_only, 1), Table::fmt(both, 1)});
}

}  // namespace

int main() {
  using namespace antidote;
  core::PruneSettings vgg_c10;
  vgg_c10.channel_drop = {0.2f, 0.2f, 0.6f, 0.9f, 0.9f};
  vgg_c10.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};
  core::PruneSettings vgg_c100;
  vgg_c100.channel_drop = {0.3f, 0.2f, 0.2f, 0.9f, 0.9f};
  vgg_c100.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};
  core::PruneSettings resnet_c10;
  resnet_c10.channel_drop = {0.3f, 0.3f, 0.6f};
  resnet_c10.spatial_drop = {0.6f, 0.6f, 0.6f};
  core::PruneSettings vgg_img;
  vgg_img.channel_drop = {0.1f, 0.f, 0.f, 0.f, 0.2f};
  vgg_img.spatial_drop = {0.5f, 0.5f, 0.5f, 0.6f, 0.6f};

  const std::vector<Config> configs = {
      {"VGG16-CIFAR10", "vgg16", "cifar10", 10, "vgg_cifar", vgg_c10},
      {"VGG16-CIFAR100", "vgg16", "cifar100", 100, "vgg_cifar", vgg_c100},
      {"ResNet56-CIFAR10", "resnet56", "cifar10", 10, "resnet_cifar",
       resnet_c10},
      {"VGG16-IMGNET100", "vgg16", "imagenet100", 100, "vgg_imagenet",
       vgg_img},
  };

  Table table({"Configuration", "Channel Redundancy(%)",
               "Spatial Redundancy(%)", "Combined(%)"});
  for (const Config& cfg : configs) measure(cfg, table);
  table.emit("Fig. 4: redundancy composition (FLOPs reduction share)",
             "fig4_redundancy_composition.csv");
  return 0;
}
