// Ablation (Sec. IV claims): how much of the paper's accuracy retention
// comes from (a) TTD itself and (b) the dropout-ratio *ascent* schedule?
// Three identically initialized VGG16 models on the same data:
//   1. plain training, dynamic pruning applied only at test time;
//   2. TTD with the paper's ratio ascent (warm-up 0.1, step +0.05...);
//   3. TTD jumping directly to the target ratios (no ascent).
// The paper predicts 2 > 3 > 1 in accuracy under the target pruning.
#include "common.h"

#include "base/logging.h"
#include "core/evaluate.h"
#include "models/factory.h"
#include "models/flops.h"
#include "nn/checkpoint.h"

int main() {
  using namespace antidote;
  const auto scale = bench::resolve_scale(bench_scale(), "vgg_cifar");
  auto pair = bench::load_dataset("cifar10", scale);

  core::PruneSettings target;
  target.channel_drop = {0.2f, 0.2f, 0.6f, 0.9f, 0.9f};
  target.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};

  Rng rng(7);
  auto net = models::make_model("vgg16", 10, scale.width_mult, rng);
  const auto init_snapshot = nn::snapshot_state(*net);
  const auto shape = pair.test->sample_shape();
  const double dense = static_cast<double>(
      models::measure_dense_flops(*net, shape[0], shape[1], shape[2])
          .total_macs);

  core::TrainConfig tc;
  tc.epochs = scale.base_epochs;
  tc.batch_size = scale.batch_size;
  tc.base_lr = scale.base_lr;
  tc.augment = scale.using_real_data;
  tc.verbose = true;

  auto eval_under_pruning = [&](const char* label) {
    core::DynamicPruningEngine engine(*net, target);
    const core::EvalResult r =
        core::evaluate(*net, *pair.test, scale.eval_batch);
    engine.remove();
    AD_LOG(Info) << label << ": pruned acc " << r.accuracy;
    return r;
  };

  Table table({"Training scheme", "Accuracy under pruning(%)",
               "Dense accuracy(%)", "FLOPs Reduction(%)"});
  auto add_row = [&](const std::string& label, const core::EvalResult& pruned) {
    const core::EvalResult dense_eval =
        core::evaluate(*net, *pair.test, scale.eval_batch);
    table.add_row(
        {label, Table::fmt(100 * pruned.accuracy, 1),
         Table::fmt(100 * dense_eval.accuracy, 1),
         Table::fmt(bench::flops_reduction_percent(
                        dense, pruned.mean_macs_per_sample),
                    1)});
  };

  // 1. Plain training.
  {
    core::Trainer trainer(*net, *pair.train, tc);
    trainer.fit();
    add_row("Plain training + test-time pruning",
            eval_under_pruning("plain"));
  }

  // 2. TTD with ratio ascent (the paper's scheme).
  {
    nn::restore_state(*net, init_snapshot);
    core::TtdConfig cfg;
    cfg.target = target;
    cfg.warmup_ratio = 0.1f;
    cfg.step = 0.1f;
    cfg.max_epochs_per_level = scale.ttd_max_epochs_per_level;
    cfg.final_epochs = scale.ttd_final_epochs + scale.base_epochs - 1;
    cfg.train = tc;
    cfg.train.epochs = 1;
    core::TtdTrainer ttd(*net, *pair.train, cfg);
    ttd.run();
    ttd.engine().remove();
    add_row("TTD with ratio ascent", eval_under_pruning("ttd-ascent"));
  }

  // 3. TTD straight at the target ratios (ablated ascent).
  {
    nn::restore_state(*net, init_snapshot);
    core::TtdConfig cfg;
    cfg.target = target;
    cfg.warmup_ratio = 1.0f;  // start at the target cap immediately
    cfg.step = 1.0f;
    cfg.max_epochs_per_level = scale.ttd_max_epochs_per_level;
    cfg.final_epochs = scale.ttd_final_epochs + scale.base_epochs - 1;
    cfg.train = tc;
    cfg.train.epochs = 1;
    core::TtdTrainer ttd(*net, *pair.train, cfg);
    ttd.run();
    ttd.engine().remove();
    add_row("TTD direct-to-target (no ascent)",
            eval_under_pruning("ttd-direct"));
  }

  // 4. SENet-style soft attention (Sec. III-A contrast): sigmoid
  //    reweighting with the same gates — accuracy is fine but no FLOPs
  //    are removed, which is why the paper binarizes.
  {
    nn::restore_state(*net, init_snapshot);
    core::Trainer trainer(*net, *pair.train, tc);
    trainer.fit();
    core::PruneSettings soft = target;
    soft.mode = core::GateMode::kSoftSigmoid;
    core::DynamicPruningEngine engine(*net, soft);
    const core::EvalResult r =
        core::evaluate(*net, *pair.test, scale.eval_batch);
    engine.remove();
    add_row("Soft sigmoid attention, post hoc (SENet-style)", r);
  }

  table.emit("Ablation: TTD and ratio ascent (VGG16, CIFAR10 settings)",
             "ablation_ttd.csv");
  return 0;
}
