// Serving-runtime throughput/latency sweep: batch policy x latency budget.
//
// Rows:
//   serial            — direct net.forward per request, no server (the
//                       single-request-at-a-time reference),
//   batch=N dense     — InferenceServer, fixed dense replicas, micro-batch
//                       up to N (isolates the batching win),
//   batch=N budget    — same policy plus the LatencyController holding a
//                       p95 batch-latency budget by adapting drop ratios.
//
// Budgets are self-calibrating: each budgeted row measures its policy's
// dense batch latency L and targets 0.75 * L, so the controller must prune
// to hold the budget regardless of machine speed. The final PASS/FAIL
// lines check the acceptance bar: with batch >= 4 the controller holds the
// budget (p95 within +/-25%) while sustaining >= 2x the serial throughput.
//
// Runs without arguments; ANTIDOTE_BENCH_SCALE=smoke|default|full sizes
// the model and request counts. Emits serving_throughput.csv.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "base/env.h"
#include "base/rng.h"
#include "base/table.h"
#include "base/timer.h"
#include "models/factory.h"
#include "serving/serving.h"

namespace {

using namespace antidote;

// The model must be compute-dominated for the sweep to mean anything: on
// tiny nets the gates' attention overhead exceeds the pruned MACs and
// per-request serving overhead swamps the forward pass. vgg16 at reduced
// width is the smallest config where dynamic pruning buys a ~3x forward
// speedup on this backend (cf. bench/micro_e2e.cc).
struct SweepScale {
  std::string model = "vgg16";
  float width = 0.25f;
  int image_size = 32;
  int num_classes = 10;
  int serial_requests = 120;
  int measured_requests = 256;
  // The warm-up phase also gives the latency controller time to converge
  // before the measured window starts.
  int warmup_requests = 256;
};

SweepScale resolve_sweep_scale(BenchScale scale) {
  SweepScale s;
  switch (scale) {
    case BenchScale::kSmoke:
      break;  // defaults above
    case BenchScale::kDefault:
      s.serial_requests = 300;
      s.measured_requests = 1024;
      s.warmup_requests = 512;
      break;
    case BenchScale::kFull:
      s.width = 1.0f;
      s.serial_requests = 60;
      s.measured_requests = 512;
      s.warmup_requests = 256;
      break;
  }
  return s;
}

std::unique_ptr<models::ConvNet> build_model(const SweepScale& s) {
  Rng rng(41);
  auto net = models::make_model(s.model, s.num_classes, s.width, rng);
  net->set_training(false);
  return net;
}

// Single-request-at-a-time reference: one dense forward per request.
double serial_throughput_rps(const SweepScale& s) {
  auto net = build_model(s);
  Rng rng(5);
  Tensor x = Tensor::randn({1, 3, s.image_size, s.image_size}, rng);
  net->forward(x);  // touch caches before timing
  WallTimer timer;
  for (int i = 0; i < s.serial_requests; ++i) net->forward(x);
  return s.serial_requests / timer.seconds();
}

// Median dense forward latency of a [batch, ...] input, for budget
// calibration.
double dense_batch_latency_ms(const SweepScale& s, int batch) {
  auto net = build_model(s);
  Rng rng(6);
  Tensor x = Tensor::randn({batch, 3, s.image_size, s.image_size}, rng);
  net->forward(x);
  std::vector<double> samples;
  for (int i = 0; i < 9; ++i) {
    WallTimer timer;
    net->forward(x);
    samples.push_back(timer.millis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct RowResult {
  double throughput_rps = 0.0;
  double p95_ms = 0.0;
  double mean_batch = 0.0;
  double channel_keep = 1.0;
  double spatial_keep = 1.0;
  double budget_ms = 0.0;
  double shed_rate_pct = 0.0;
  double capped_rate_pct = 0.0;
};

// Closed-loop run against one server configuration. `hardened` adds the
// overload defenses on top of the budget row's controller: cost-aware
// admission (shed when the predicted queue drain exceeds the latency
// budget) and a per-request compute cap. Friendly closed-loop traffic
// should pay ~nothing for them — the row exists to show that.
RowResult run_server_row(const SweepScale& s, int max_batch,
                         double budget_ms, bool hardened = false) {
  serving::ServerConfig config;
  config.policy.max_batch = max_batch;
  config.policy.num_workers = 1;
  config.policy.max_wait = std::chrono::microseconds(2000);
  config.queue_capacity = static_cast<size_t>(4 * max_batch);
  if (budget_ms > 0.0) {
    config.prune = core::PruneSettings::uniform(
        build_model(s)->num_blocks(), 0.1f, 0.1f);
    serving::LatencyController::Config lc;
    lc.target_p95_ms = budget_ms;
    lc.window = 6;
    lc.step = 0.2f;  // converge within the warm-up phase
    config.latency = lc;
    if (hardened) {
      config.admission.enabled = true;
      config.admission.max_queue_ms = budget_ms;
      config.compute_cap = 0.6;
    }
  }
  serving::InferenceServer server([&](int) { return build_model(s); },
                                  config);

  // Two fully separated phases: warm-up (also lets the controller
  // converge), then a stats reset at a quiet point, then the measured
  // window — so the measured counters never mix with warm-up requests.
  const int clients = std::max(2, 2 * max_batch);
  auto run_phase = [&](int request_count, uint64_t seed_base) {
    std::atomic<int> issued{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        Rng rng(seed_base + static_cast<uint64_t>(c));
        while (issued.fetch_add(1) < request_count) {
          Tensor x = Tensor::randn({3, s.image_size, s.image_size}, rng);
          auto future = server.submit(std::move(x));
          if (!future.valid()) break;
          future.get();
        }
      });
    }
    for (std::thread& t : threads) t.join();
  };
  run_phase(s.warmup_requests, 900);
  server.stats().reset();
  if (serving::LatencyController* lc = server.controller()) {
    lc->reset_keep_summary();
  }
  run_phase(s.measured_requests, 7900);
  server.shutdown();

  const serving::ServerStats::Snapshot snap = server.stats().snapshot();
  RowResult row;
  row.throughput_rps = snap.throughput_rps;
  row.mean_batch = snap.mean_batch_size;
  row.budget_ms = budget_ms;
  row.shed_rate_pct = snap.shed_rate_pct;
  row.capped_rate_pct = snap.capped_rate_pct;
  if (serving::LatencyController* lc = server.controller()) {
    row.p95_ms = lc->smoothed_p95_ms();
    const auto keep = lc->keep_summary();
    row.channel_keep = keep.mean_channel_keep;
    row.spatial_keep = keep.mean_spatial_keep;
  } else {
    // Dense rows report the mean batch processing time as their latency
    // figure (no controller window to take a p95 over).
    row.p95_ms =
        snap.mean_assemble_ms + snap.mean_forward_ms + snap.mean_scatter_ms;
  }
  return row;
}

}  // namespace

int main() {
  const BenchScale scale = bench_scale();
  const SweepScale s = resolve_sweep_scale(scale);
  std::printf("serving throughput sweep (%s scale): %s width %.2f, %dx%d\n",
              bench_scale_name(scale).c_str(), s.model.c_str(), s.width,
              s.image_size, s.image_size);

  const double serial_rps = serial_throughput_rps(s);
  std::printf("serial reference: %.1f req/s\n\n", serial_rps);

  Table table({"config", "budget_ms", "throughput_rps", "p95_ms",
               "mean_batch", "channel_keep", "spatial_keep",
               "speedup_vs_serial"});
  table.add_row({"serial", "-", Table::fmt(serial_rps, 1), "-", "1.00",
                 "1.00", "1.00", "1.00"});

  struct Acceptance {
    int max_batch = 0;
    bool budget_held = false;
    bool speedup_ok = false;
  };
  std::vector<Acceptance> acceptance;

  const std::vector<int> batches =
      scale == BenchScale::kSmoke ? std::vector<int>{1, 4, 8}
                                  : std::vector<int>{1, 2, 4, 8, 16};
  for (const int max_batch : batches) {
    const RowResult dense = run_server_row(s, max_batch, 0.0);
    table.add_row({"batch=" + std::to_string(max_batch) + " dense", "-",
                   Table::fmt(dense.throughput_rps, 1),
                   Table::fmt(dense.p95_ms, 3),
                   Table::fmt(dense.mean_batch, 2), "1.00", "1.00",
                   Table::fmt(dense.throughput_rps / serial_rps, 2)});
    if (max_batch < 4) continue;

    // 0.4x the dense batch latency: holding it requires a ~2.5x forward
    // speedup, which only adaptive pruning can deliver on this backend.
    const double budget = 0.4 * dense_batch_latency_ms(s, max_batch);
    const RowResult held = run_server_row(s, max_batch, budget);
    table.add_row({"batch=" + std::to_string(max_batch) + " budget",
                   Table::fmt(budget, 3), Table::fmt(held.throughput_rps, 1),
                   Table::fmt(held.p95_ms, 3), Table::fmt(held.mean_batch, 2),
                   Table::fmt(held.channel_keep, 2),
                   Table::fmt(held.spatial_keep, 2),
                   Table::fmt(held.throughput_rps / serial_rps, 2)});
    Acceptance a;
    a.max_batch = max_batch;
    a.budget_held = held.p95_ms > 0.75 * budget && held.p95_ms < 1.25 * budget;
    a.speedup_ok = held.throughput_rps >= 2.0 * serial_rps;
    acceptance.push_back(a);

    // Hardened row (largest batch only): the same budgeted policy plus
    // admission control and a 0.6 compute cap. Reported, not gated —
    // friendly closed-loop traffic should see ~zero shed and near-identical
    // throughput, so a divergence here flags hardening overhead.
    if (max_batch == batches.back()) {
      const RowResult hard =
          run_server_row(s, max_batch, budget, /*hardened=*/true);
      table.add_row({"batch=" + std::to_string(max_batch) + " hardened",
                     Table::fmt(budget, 3),
                     Table::fmt(hard.throughput_rps, 1),
                     Table::fmt(hard.p95_ms, 3),
                     Table::fmt(hard.mean_batch, 2),
                     Table::fmt(hard.channel_keep, 2),
                     Table::fmt(hard.spatial_keep, 2),
                     Table::fmt(hard.throughput_rps / serial_rps, 2)});
      std::printf(
          "hardened batch=%d: shed rate %.2f%%, capped rate %.2f%% under "
          "friendly closed-loop load (admission %.3f ms, cap 0.6)\n",
          max_batch, hard.shed_rate_pct, hard.capped_rate_pct, budget);
    }
  }

  table.emit("Serving throughput: batch policy x latency budget",
             "serving_throughput.csv");

  bool any_pass = false;
  for (const Acceptance& a : acceptance) {
    const bool pass = a.budget_held && a.speedup_ok;
    any_pass = any_pass || pass;
    std::printf("[%s] batch=%d: budget %s, >=2x serial throughput %s\n",
                pass ? "PASS" : "FAIL", a.max_batch,
                a.budget_held ? "held (p95 within +/-25%)" : "missed",
                a.speedup_ok ? "yes" : "no");
  }
  return any_pass ? 0 : 1;
}
