// Table I, rows "VGG16 (CIFAR100)": two proposed settings —
// Setting-1 (conservative) channel ratios [0.2, 0.2, 0.2, 0.8, 0.9] and
// Setting-2 (aggressive) [0.3, 0.2, 0.2, 0.9, 0.9]; spatial ratios zero for
// the same small-feature-map reason as CIFAR10.
#include "common.h"

int main() {
  using namespace antidote;
  using bench::ProposedSetting;

  bench::Table1Spec spec;
  spec.experiment_name = "Table I: VGG16 (CIFAR100)";
  spec.csv_name = "table1_vgg16_cifar100.csv";
  spec.model_name = "vgg16";
  spec.dataset = "cifar100";
  spec.num_classes = 100;
  spec.static_baselines = {baselines::StaticCriterion::kL1,
                           baselines::StaticCriterion::kTaylor,
                           baselines::StaticCriterion::kActivation};
  spec.static_drop_per_block = {0.15f, 0.1f, 0.1f, 0.4f, 0.6f};

  core::PruneSettings s1_paper;
  s1_paper.channel_drop = {0.2f, 0.2f, 0.2f, 0.8f, 0.9f};
  s1_paper.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};
  core::PruneSettings s2_paper;
  s2_paper.channel_drop = {0.3f, 0.2f, 0.2f, 0.9f, 0.9f};
  s2_paper.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};
  // Width-adjusted for the reduced default-scale model (see the VGG16
  // CIFAR10 bench for the rationale).
  core::PruneSettings s1_adj;
  s1_adj.channel_drop = {0.2f, 0.2f, 0.4f, 0.7f, 0.7f};
  s1_adj.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};
  core::PruneSettings s2_adj;
  s2_adj.channel_drop = {0.3f, 0.3f, 0.5f, 0.75f, 0.75f};
  s2_adj.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};
  spec.proposed = {
      ProposedSetting{"Proposed: Setting-1",
                      bench::pick_settings(s1_paper, s1_adj)},
      ProposedSetting{"Proposed: Setting-2",
                      bench::pick_settings(s2_paper, s2_adj)}};

  bench::run_table1(spec);
  return 0;
}
