#include "common.h"

#include "base/error.h"
#include "base/logging.h"
#include "base/timer.h"
#include "core/evaluate.h"
#include "data/cifar.h"
#include "models/factory.h"
#include "models/flops.h"
#include "nn/checkpoint.h"

namespace antidote::bench {

ScaleConfig resolve_scale(BenchScale scale, const std::string& family) {
  ScaleConfig cfg;
  const bool imagenet = family == "vgg_imagenet";
  const bool resnet = family == "resnet_cifar";
  switch (scale) {
    case BenchScale::kSmoke:
      cfg.width_mult = 0.125f;
      cfg.train_size = 120;
      cfg.test_size = 60;
      cfg.base_epochs = 1;
      cfg.finetune_epochs = 1;
      cfg.ttd_max_epochs_per_level = 1;
      cfg.ttd_final_epochs = 1;
      cfg.eval_batch = 32;
      cfg.calibration_batches = 1;
      cfg.max_classes = 10;
      break;
    case BenchScale::kDefault:
      cfg.width_mult = resnet ? 0.25f : 0.125f;
      cfg.train_size = imagenet ? 600 : 800;
      cfg.test_size = imagenet ? 200 : 240;
      cfg.base_epochs = 6;
      cfg.finetune_epochs = 3;
      cfg.ttd_max_epochs_per_level = 1;
      cfg.ttd_final_epochs = 3;
      cfg.max_classes = 20;
      break;
    case BenchScale::kFull:
      cfg.width_mult = 1.0f;
      cfg.train_size = imagenet ? 50000 : 50000;
      cfg.test_size = 10000;
      cfg.base_epochs = 120;
      cfg.finetune_epochs = 20;
      cfg.ttd_max_epochs_per_level = 4;
      cfg.ttd_final_epochs = 20;
      cfg.ttd_step = 0.05f;  // the paper's ascent step
      cfg.base_lr = 0.1;
      cfg.batch_size = 128;
      cfg.eval_batch = 128;
      cfg.calibration_batches = 10;
      // Paper-scale ImageNet100 means real 224x224 inputs, not the 64x64
      // reduced-scale substitute (spatially-tiled lowering keeps the
      // arena bounded there).
      if (imagenet) cfg.resolution = 224;
      break;
  }
  cfg.resolution = env_int("ANTIDOTE_BENCH_RESOLUTION", cfg.resolution);
  return cfg;
}

data::DatasetPair load_dataset(const std::string& which,
                               const ScaleConfig& scale, uint64_t seed) {
  if (which == "cifar10" && data::cifar10_available("data/cifar-10-batches-bin")) {
    AD_LOG(Info) << "using real CIFAR-10 archive";
    return data::load_cifar10("data/cifar-10-batches-bin");
  }
  if (which == "cifar100" &&
      data::cifar100_available("data/cifar-100-binary")) {
    AD_LOG(Info) << "using real CIFAR-100 archive";
    return data::load_cifar100("data/cifar-100-binary");
  }
  data::SyntheticSpec spec;
  if (which == "cifar10") {
    spec = data::SyntheticSpec::cifar10_like();
  } else if (which == "cifar100") {
    spec = data::SyntheticSpec::cifar100_like();
  } else if (which == "imagenet100") {
    spec = data::SyntheticSpec::imagenet100_like();
  } else {
    AD_CHECK(false) << " unknown dataset " << which;
  }
  if (scale.max_classes > 0 && spec.num_classes > scale.max_classes) {
    AD_LOG(Info) << "scale substitution: " << spec.name << " capped to "
                 << scale.max_classes << " classes (per-class sample budget)";
    spec.num_classes = scale.max_classes;
  }
  if (scale.resolution > 0 && (spec.height != scale.resolution ||
                               spec.width != scale.resolution)) {
    AD_LOG(Info) << "resolution override: " << spec.name << " synthesized at "
                 << scale.resolution << "x" << scale.resolution;
    spec.height = scale.resolution;
    spec.width = scale.resolution;
  }
  spec.train_size = scale.train_size;
  spec.test_size = scale.test_size;
  spec.seed = seed;
  AD_LOG(Info) << "synthesizing " << spec.name << " (" << spec.train_size
               << " train / " << spec.test_size << " test, "
               << spec.num_classes << " classes)";
  return data::make_synthetic_pair(spec);
}

core::PruneSettings pick_settings(const core::PruneSettings& paper_ratios,
                                  const core::PruneSettings& adjusted_ratios) {
  return bench_scale() == BenchScale::kFull ? paper_ratios : adjusted_ratios;
}

double percent(double x) { return 100.0 * x; }

double flops_reduction_percent(double dense_macs, double dynamic_macs) {
  if (dense_macs <= 0) return 0.0;
  return 100.0 * (1.0 - dynamic_macs / dense_macs);
}

namespace {

core::TrainConfig make_train_config(const ScaleConfig& scale, int epochs,
                                    bool using_real_data) {
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = scale.batch_size;
  tc.base_lr = scale.base_lr;
  // Synthetic blobs are near-centered; the paper's crop/flip pipeline only
  // helps on real images.
  tc.augment = using_real_data;
  tc.verbose = true;
  return tc;
}

}  // namespace

TrainedModel train_base_model(const std::string& model_name,
                              const std::string& dataset, int num_classes,
                              const std::string& family, uint64_t seed) {
  const BenchScale scale_kind = bench_scale();
  TrainedModel out;
  out.scale = resolve_scale(scale_kind, family);
  AD_LOG(Info) << "scale=" << bench_scale_name(scale_kind) << " model="
               << model_name << " width=" << out.scale.width_mult;

  out.data = load_dataset(dataset, out.scale, seed * 977 + 13);
  // The dataset's class count wins: reduced scales may cap it.
  const int classes = out.data.train->num_classes();
  AD_CHECK_LE(classes, num_classes);
  Rng rng(seed);
  out.net = models::make_model(model_name, classes, out.scale.width_mult,
                               rng);

  WallTimer timer;
  core::Trainer trainer(
      *out.net, *out.data.train,
      make_train_config(out.scale, out.scale.base_epochs,
                        out.scale.using_real_data));
  trainer.fit();
  AD_LOG(Info) << "base training took " << timer.seconds() << "s";

  const auto shape = out.data.train->sample_shape();
  out.dense_macs =
      models::measure_dense_flops(*out.net, shape[0], shape[1], shape[2])
          .total_macs;
  out.baseline_accuracy =
      core::evaluate(*out.net, *out.data.test, out.scale.eval_batch).accuracy;
  AD_LOG(Info) << "baseline accuracy " << out.baseline_accuracy
               << ", dense MACs " << out.dense_macs;
  return out;
}

void run_table1(const Table1Spec& spec) {
  WallTimer total_timer;
  const std::string family =
      spec.model_name == "resnet56" || spec.model_name == "resnet20"
          ? "resnet_cifar"
          : (spec.dataset == "imagenet100" ? "vgg_imagenet" : "vgg_cifar");
  TrainedModel base = train_base_model(spec.model_name, spec.dataset,
                                       spec.num_classes, family, spec.seed);
  models::ConvNet& net = *base.net;
  const ScaleConfig& scale = base.scale;
  const auto snapshot = nn::snapshot_state(net);

  Table table({"Pruning Method", "Baseline Accuracy(%)", "Baseline FLOPs",
               "Final FLOPs", "FLOPs Reduction(%)", "Final Accuracy(%)",
               "Accuracy Drop(%)"});
  const double base_acc_pct = percent(base.baseline_accuracy);
  const double dense_macs = static_cast<double>(base.dense_macs);

  auto add_row = [&](const std::string& method, double final_macs,
                     double final_acc_pct) {
    table.add_row({method, Table::fmt(base_acc_pct, 1),
                   Table::fmt_sci(dense_macs, 2), Table::fmt_sci(final_macs, 2),
                   Table::fmt(flops_reduction_percent(dense_macs, final_macs),
                              1),
                   Table::fmt(final_acc_pct, 1),
                   Table::fmt_signed(base_acc_pct - final_acc_pct, 1)});
  };

  // --- static baselines, each branched from the same trained weights ---
  for (baselines::StaticCriterion criterion : spec.static_baselines) {
    WallTimer timer;
    nn::restore_state(net, snapshot);
    baselines::StaticPruneConfig cfg;
    cfg.criterion = criterion;
    cfg.drop_per_block = spec.static_drop_per_block;
    cfg.calibration_batches = scale.calibration_batches;
    cfg.calibration_batch_size = scale.batch_size;
    cfg.seed = spec.seed + 101;
    baselines::StaticPruner pruner(net, cfg);
    pruner.prune(*base.data.train);
    core::TrainConfig finetune_cfg = make_train_config(
        scale, scale.finetune_epochs, scale.using_real_data);
    finetune_cfg.base_lr *= scale.finetune_lr_scale;
    pruner.finetune(*base.data.train, finetune_cfg);
    const core::EvalResult result =
        pruner.evaluate_pruned(*base.data.test, scale.eval_batch);
    add_row(std::string(baselines::criterion_name(criterion)) + " Pruning",
            result.mean_macs_per_sample, percent(result.accuracy));
    AD_LOG(Info) << baselines::criterion_name(criterion) << " baseline took "
                 << timer.seconds() << "s";
  }

  // --- proposed dynamic settings: TTD + attention pruning ---
  for (const ProposedSetting& setting : spec.proposed) {
    WallTimer timer;
    nn::restore_state(net, snapshot);
    core::TtdConfig ttd_cfg;
    ttd_cfg.target = setting.settings;
    ttd_cfg.warmup_ratio = scale.ttd_warmup;
    ttd_cfg.step = scale.ttd_step;
    ttd_cfg.max_epochs_per_level = scale.ttd_max_epochs_per_level;
    ttd_cfg.final_epochs = scale.ttd_final_epochs;
    ttd_cfg.train = make_train_config(scale, 1, scale.using_real_data);
    ttd_cfg.train.base_lr *= scale.ttd_lr_scale;
    core::TtdTrainer ttd(net, *base.data.train, ttd_cfg);
    ttd.run();
    const core::EvalResult result =
        core::evaluate(net, *base.data.test, scale.eval_batch);
    ttd.engine().remove();
    add_row(setting.label, result.mean_macs_per_sample,
            percent(result.accuracy));
    AD_LOG(Info) << setting.label << " took " << timer.seconds() << "s";
  }

  table.emit(spec.experiment_name, spec.csv_name);
  AD_LOG(Info) << spec.experiment_name << " total " << total_timer.seconds()
               << "s";
}

}  // namespace antidote::bench
