// Table I, rows "VGG16 (CIFAR10)": static baselines (L1, Taylor, GM, FO)
// vs the proposed TTD + attention-based dynamic pruning with the paper's
// per-block channel ratios [0.2, 0.2, 0.6, 0.9, 0.9] and zero spatial
// ratios (32x32 feature maps are too small for column pruning — Sec. V-B).
#include "common.h"

int main() {
  using namespace antidote;
  using bench::ProposedSetting;

  bench::Table1Spec spec;
  spec.experiment_name = "Table I: VGG16 (CIFAR10)";
  spec.csv_name = "table1_vgg16_cifar10.csv";
  spec.model_name = "vgg16";
  spec.dataset = "cifar10";
  spec.num_classes = 10;
  spec.static_baselines = {
      baselines::StaticCriterion::kL1, baselines::StaticCriterion::kTaylor,
      baselines::StaticCriterion::kGeometricMedian,
      baselines::StaticCriterion::kActivation};
  // The best static ratios the paper quotes (FO pruning [21]).
  spec.static_drop_per_block = {0.17f, 0.1f, 0.1f, 0.45f, 0.65f};

  // Paper ratios (width 1.0) vs width-adjusted ratios for the reduced
  // default-scale model, whose narrower late blocks (64 filters instead of
  // 512) tolerate less than 0.9 (see the Fig. 3 bench for the boundary).
  core::PruneSettings paper;
  paper.channel_drop = {0.2f, 0.2f, 0.6f, 0.9f, 0.9f};
  paper.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};
  core::PruneSettings adjusted;
  adjusted.channel_drop = {0.2f, 0.2f, 0.5f, 0.7f, 0.7f};
  adjusted.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};
  spec.proposed = {
      ProposedSetting{"Proposed", bench::pick_settings(paper, adjusted)}};

  bench::run_table1(spec);
  return 0;
}
