// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary runs without arguments. Scale is selected via
// ANTIDOTE_BENCH_SCALE:
//   smoke   — seconds-long CI sanity run,
//   default — single-core-friendly reduced widths/datasets (the shapes of
//             the paper's results reproduce; absolute accuracies differ),
//   full    — paper-width models and dataset sizes (requires real CIFAR
//             archives under data/ and a lot of CPU time).
// Each binary prints paper-formatted tables and writes a CSV next to the
// working directory.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/env.h"
#include "base/table.h"
#include "baselines/static_pruner.h"
#include "core/engine.h"
#include "core/trainer.h"
#include "core/ttd.h"
#include "data/synthetic.h"
#include "models/convnet.h"

namespace antidote::bench {

// Scale knobs resolved from ANTIDOTE_BENCH_SCALE for one experiment family.
struct ScaleConfig {
  float width_mult = 0.125f;
  int train_size = 800;
  int test_size = 240;
  int base_epochs = 4;        // plain training of the base model
  int finetune_epochs = 2;    // static baselines' recovery
  int ttd_max_epochs_per_level = 1;
  int ttd_final_epochs = 2;
  int eval_batch = 32;
  int calibration_batches = 3;
  double base_lr = 0.06;
  // TTD continues from the trained base weights, so it restarts the cosine
  // schedule at a reduced peak; static baselines finetune likewise.
  double ttd_lr_scale = 0.5;
  double finetune_lr_scale = 0.5;
  float ttd_warmup = 0.1f;
  float ttd_step = 0.1f;  // paper: 0.05; default scale halves the levels
  int batch_size = 32;
  // Caps the class count of 100-class datasets at reduced scales so the
  // per-class sample budget stays learnable (0 = no cap). Documented as
  // part of the scaling substitution in EXPERIMENTS.md.
  int max_classes = 0;
  // Synthetic image side length override (0 = dataset default). The
  // imagenet family resolves to 224 at full scale — the paper's actual
  // input size — instead of the reduced-scale substitute; any family can
  // be forced via ANTIDOTE_BENCH_RESOLUTION.
  int resolution = 0;
  bool using_real_data = false;
};

// family: "vgg_cifar" | "resnet_cifar" | "vgg_imagenet".
ScaleConfig resolve_scale(BenchScale scale, const std::string& family);

// which: "cifar10" | "cifar100" | "imagenet100". Uses the real archive
// under data/ when present *and* the scale is full; otherwise synthesizes.
data::DatasetPair load_dataset(const std::string& which,
                               const ScaleConfig& scale, uint64_t seed = 1234);

// A named dynamic-pruning configuration ("Proposed: Setting-1" etc).
struct ProposedSetting {
  std::string label;
  core::PruneSettings settings;
};

// One full Table-I experiment: train a base model, run every static
// baseline from the same weights, then TTD + dynamic pruning for every
// proposed setting; print/CSV the paper's columns.
struct Table1Spec {
  std::string experiment_name;  // e.g. "Table I: VGG16 (CIFAR10)"
  std::string csv_name;         // e.g. "table1_vgg16_cifar10.csv"
  std::string model_name;       // "vgg16" | "resnet56"
  std::string dataset;          // "cifar10" | "cifar100" | "imagenet100"
  int num_classes = 10;
  std::vector<baselines::StaticCriterion> static_baselines;
  // Per-block drop ratios used by the static baselines (one shared
  // setting, mirroring the matched-FLOPs rows of the paper).
  std::vector<float> static_drop_per_block;
  std::vector<ProposedSetting> proposed;
  uint64_t seed = 7;
};

void run_table1(const Table1Spec& spec);

// Reduced-width models have less redundancy than the paper's width-1.0
// networks, so the paper's per-block ratios exceed their sensitivity
// boundary. Experiments therefore carry two ratio sets: the paper's exact
// ratios (used at full scale) and width-adjusted ones (smoke/default).
// EXPERIMENTS.md documents the mapping per experiment.
core::PruneSettings pick_settings(const core::PruneSettings& paper_ratios,
                                  const core::PruneSettings& adjusted_ratios);

// Utility shared by the figure benches: train a plain base model of the
// given architecture on the given dataset and return it with the test set.
struct TrainedModel {
  std::unique_ptr<models::ConvNet> net;
  data::DatasetPair data;
  double baseline_accuracy = 0.0;
  int64_t dense_macs = 0;
  ScaleConfig scale;
};
TrainedModel train_base_model(const std::string& model_name,
                              const std::string& dataset, int num_classes,
                              const std::string& family, uint64_t seed = 7);

double percent(double x);
double flops_reduction_percent(double dense_macs, double dynamic_macs);

}  // namespace antidote::bench
