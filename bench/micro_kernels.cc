// Kernel-level microbenchmarks (google-benchmark): GEMM variants, im2col,
// dense vs masked convolution across drop ratios, and the attention+top-k
// overhead of a gate — quantifying that the runtime saving of dynamic
// pruning exceeds its bookkeeping cost.
//
// Results are also written as machine-readable JSON (BENCH_kernels.json by
// default; pass --benchmark_out=... to override) so the perf trajectory is
// tracked across PRs.
#include <benchmark/benchmark.h>

#include <numeric>

#include "base/rng.h"
#include "bench_main.h"
#include "core/gate.h"
#include "nn/conv2d.h"
#include "nn/conv_kernels.h"
#include "nn/execution_context.h"
#include "nn/init.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"

namespace {

using namespace antidote;

void BM_GemmNN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm_nn(n, n, n, 1.f, a.data(), b.data(), 0.f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmNT(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm_nt(n, n, n, 1.f, a.data(), b.data(), 0.f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(256);

// The weight-gradient layout (now parallelized like the other variants).
void BM_GemmTN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(12);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm_tn(n, n, n, 1.f, a.data(), b.data(), 0.f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmTN)->Arg(64)->Arg(256);

void BM_Im2col(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  Rng rng(2);
  Tensor x = Tensor::randn({c, 32, 32}, rng);
  ConvGeom g{c, 32, 32, 3, 3, 1, 1};
  Tensor cols({static_cast<int>(g.patch_rows()),
               static_cast<int>(g.out_positions())});
  for (auto _ : state) {
    im2col(x.data(), g, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col)->Arg(16)->Arg(64);

// Dense conv forward at VGG-like geometry.
void BM_ConvDense(benchmark::State& state) {
  const int ch = static_cast<int>(state.range(0));
  Rng rng(3);
  nn::Conv2d conv(ch, ch, 3, 1, 1, false);
  nn::init_module(conv, rng);
  Tensor x = Tensor::randn({1, ch, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.last_macs());
}
BENCHMARK(BM_ConvDense)->Arg(32)->Arg(64)->Arg(128);

// Masked conv forward: drop `range(1)` percent of input channels. The
// wall-clock time should fall with the drop ratio — the FLOPs saving is
// real computation skipped, not accounting.
void BM_ConvChannelMasked(benchmark::State& state) {
  const int ch = static_cast<int>(state.range(0));
  const int drop_pct = static_cast<int>(state.range(1));
  Rng rng(4);
  nn::Conv2d conv(ch, ch, 3, 1, 1, false);
  nn::init_module(conv, rng);
  Tensor x = Tensor::randn({1, ch, 16, 16}, rng);
  const int kept = std::max(1, ch - ch * drop_pct / 100);
  std::vector<int> kept_ch(static_cast<size_t>(kept));
  std::iota(kept_ch.begin(), kept_ch.end(), 0);
  for (auto _ : state) {
    nn::ConvRuntimeMask mask;
    mask.channels = kept_ch;
    conv.set_runtime_masks({mask});
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.last_macs());
}
BENCHMARK(BM_ConvChannelMasked)
    ->Args({128, 0})
    ->Args({128, 30})
    ->Args({128, 60})
    ->Args({128, 90});

// Masked conv forward: drop `range(1)` percent of spatial columns.
void BM_ConvSpatialMasked(benchmark::State& state) {
  const int ch = static_cast<int>(state.range(0));
  const int drop_pct = static_cast<int>(state.range(1));
  Rng rng(5);
  nn::Conv2d conv(ch, ch, 3, 1, 1, false);
  nn::init_module(conv, rng);
  Tensor x = Tensor::randn({1, ch, 16, 16}, rng);
  const int pos = 256;
  const int kept = std::max(1, pos - pos * drop_pct / 100);
  std::vector<int> kept_pos(static_cast<size_t>(kept));
  std::iota(kept_pos.begin(), kept_pos.end(), 0);
  for (auto _ : state) {
    nn::ConvRuntimeMask mask;
    mask.positions = kept_pos;
    conv.set_runtime_masks({mask});
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.last_macs());
}
BENCHMARK(BM_ConvSpatialMasked)
    ->Args({64, 0})
    ->Args({64, 50})
    ->Args({64, 80});

// Full gate forward (attention + top-k + masking): the bookkeeping cost
// dynamic pruning pays per layer. Compare against BM_ConvDense to see it
// is orders of magnitude below the conv it gates.
void BM_GateForward(benchmark::State& state) {
  const int ch = static_cast<int>(state.range(0));
  Rng rng(6);
  core::AttentionGate gate({.channel_drop = 0.5f, .spatial_drop = 0.5f},
                           nullptr, true);
  gate.set_training(false);
  Tensor x = Tensor::randn({1, ch, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = gate.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GateForward)->Arg(64)->Arg(128);

// --- SIMD vs scalar: the non-GEMM hot-path primitives ----------------------
//
// Each pair benches the vectorized kernel against its genuinely-scalar
// reference (autovectorization suppressed) on identical data, so the
// recorded ratio is the lane-width win of the epilogue / gather / scatter
// stages. The two legs are bitwise identical (asserted by
// simd_parity_test); BENCH_kernels.json tracks the ratio across PRs.

constexpr int kEpilogueC = 128;
constexpr int64_t kEpiloguePos = 1024;  // 16x16-ish fused conv output

// Full BN + residual + ReLU epilogue, applied in place per iteration (the
// serving shape: cache-hot GEMM output).
template <bool kSimd>
void epilogue_bench(benchmark::State& state) {
  Rng rng(51);
  Tensor y = Tensor::randn({kEpilogueC, static_cast<int>(kEpiloguePos)}, rng);
  Tensor res = Tensor::randn({kEpilogueC, static_cast<int>(kEpiloguePos)}, rng);
  Tensor mean = Tensor::randn({kEpilogueC}, rng);
  Tensor gamma = Tensor::randn({kEpilogueC}, rng);
  Tensor beta = Tensor::randn({kEpilogueC}, rng);
  std::vector<float> inv_std(kEpilogueC, 1.01f);
  nn::FusedEpilogueParams p;
  p.bn = true;
  p.relu = true;
  p.mean = mean.data();
  p.inv_std = inv_std.data();
  p.gamma = gamma.data();
  p.beta = beta.data();
  for (auto _ : state) {
    if (kSimd) {
      nn::fused_epilogue(y.data(), res.data(), kEpilogueC, kEpiloguePos, p);
    } else {
      nn::fused_epilogue_scalar(y.data(), res.data(), kEpilogueC,
                                kEpiloguePos, p);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kEpilogueC * kEpiloguePos);
}
void BM_EpilogueSimd(benchmark::State& state) { epilogue_bench<true>(state); }
void BM_EpilogueScalar(benchmark::State& state) {
  epilogue_bench<false>(state);
}
BENCHMARK(BM_EpilogueSimd);
BENCHMARK(BM_EpilogueScalar);

// Kept-position gather (the spatial-mask lowering): 64 channel planes,
// half the 32x32 positions kept.
template <bool kSimd>
void gather_bench(benchmark::State& state) {
  Rng rng(52);
  const int planes = 64, hw = 32 * 32, kept = hw / 2;
  Tensor x = Tensor::randn({planes, 32, 32}, rng);
  std::vector<int> idx(static_cast<size_t>(kept));
  for (int j = 0; j < kept; ++j) idx[static_cast<size_t>(j)] = 2 * j;
  std::vector<float> out(static_cast<size_t>(planes) * kept);
  for (auto _ : state) {
    for (int c = 0; c < planes; ++c) {
      const float* plane = x.data() + static_cast<int64_t>(c) * hw;
      float* dst = out.data() + static_cast<int64_t>(c) * kept;
      if (kSimd) {
        nn::gather_positions(plane, idx.data(), kept, dst);
      } else {
        nn::gather_positions_scalar(plane, idx.data(), kept, dst);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * planes * kept);
}
void BM_GatherSimd(benchmark::State& state) { gather_bench<true>(state); }
void BM_GatherScalar(benchmark::State& state) { gather_bench<false>(state); }
BENCHMARK(BM_GatherSimd);
BENCHMARK(BM_GatherScalar);

// Compacted-group output scatter (copy + fused bias) over 64 filter rows.
template <bool kSimd>
void scatter_bench(benchmark::State& state) {
  Rng rng(53);
  const int rows = 64;
  const int64_t pos = 1024;
  Tensor src = Tensor::randn({rows, static_cast<int>(pos)}, rng);
  std::vector<float> dst(static_cast<size_t>(rows) * pos);
  for (auto _ : state) {
    for (int r = 0; r < rows; ++r) {
      const float* s = src.data() + static_cast<int64_t>(r) * pos;
      float* d = dst.data() + static_cast<int64_t>(r) * pos;
      if (kSimd) {
        nn::scatter_bias_row(s, d, pos, 0.31f);
      } else {
        nn::scatter_bias_row_scalar(s, d, pos, 0.31f);
      }
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * pos);
}
void BM_ScatterSimd(benchmark::State& state) { scatter_bench<true>(state); }
void BM_ScatterScalar(benchmark::State& state) {
  scatter_bench<false>(state);
}
BENCHMARK(BM_ScatterSimd);
BENCHMARK(BM_ScatterScalar);

// --- int8 regime kernels ---------------------------------------------------
//
// The quantized hot path's three stages at VGG-like geometry: dynamic
// activation quantization into the VNNI byte layout, and the u8xs8->s32
// igemm with dequant folded into the store (runtime-dispatched AVX-512
// VNNI / AVX2 / scalar vs the bitwise-identical scalar reference). The
// igemm pair's ratio is the int8 raw-speed win BENCH_kernels.json tracks.

constexpr int kI8OutC = 128;            // VGG-ish filter count
constexpr int64_t kI8Patch = 128 * 9;   // in_c * k_h * k_w
constexpr int64_t kI8Pos = 256;         // 16x16 output positions

template <bool kSimd>
void quantize_activations_bench(benchmark::State& state) {
  Rng rng(54);
  Tensor cols = Tensor::randn(
      {static_cast<int>(kI8Patch), static_cast<int>(kI8Pos)}, rng);
  std::vector<uint8_t> qb(
      static_cast<size_t>(nn::int8_align4(kI8Patch)) * kI8Pos);
  for (auto _ : state) {
    float scale;
    if (kSimd) {
      scale = nn::quantize_activations(cols.data(), kI8Patch, kI8Pos,
                                       qb.data());
    } else {
      scale = nn::quantize_activations_scalar(cols.data(), kI8Patch, kI8Pos,
                                              qb.data());
    }
    benchmark::DoNotOptimize(scale);
    benchmark::DoNotOptimize(qb.data());
  }
  state.SetItemsProcessed(state.iterations() * kI8Patch * kI8Pos);
}
void BM_Int8QuantizeActs(benchmark::State& state) {
  quantize_activations_bench<true>(state);
}
void BM_Int8QuantizeActsScalar(benchmark::State& state) {
  quantize_activations_bench<false>(state);
}
BENCHMARK(BM_Int8QuantizeActs);
BENCHMARK(BM_Int8QuantizeActsScalar);

template <bool kSimd>
void int8_igemm_bench(benchmark::State& state) {
  Rng rng(55);
  const int64_t k4 = nn::int8_align4(kI8Patch);
  Tensor w = Tensor::randn({kI8OutC, static_cast<int>(kI8Patch)}, rng);
  Tensor cols = Tensor::randn(
      {static_cast<int>(kI8Patch), static_cast<int>(kI8Pos)}, rng);
  std::vector<int8_t> qw(static_cast<size_t>(kI8OutC) * k4);
  std::vector<float> wscale(kI8OutC);
  std::vector<int32_t> wsum(kI8OutC);
  nn::quantize_weights_rowwise(w.data(), kI8OutC, kI8Patch, qw.data(), k4,
                               wscale.data(), wsum.data());
  std::vector<uint8_t> qb(static_cast<size_t>(k4) * kI8Pos);
  const float sa =
      nn::quantize_activations(cols.data(), kI8Patch, kI8Pos, qb.data());
  std::vector<float> y(static_cast<size_t>(kI8OutC) * kI8Pos);
  for (auto _ : state) {
    if (kSimd) {
      nn::igemm_u8s8_dequant(kI8OutC, kI8Pos, k4, qw.data(), k4, qb.data(),
                             wsum.data(), wscale.data(), sa, y.data(),
                             kI8Pos);
    } else {
      nn::igemm_u8s8_dequant_scalar(kI8OutC, kI8Pos, k4, qw.data(), k4,
                                    qb.data(), wsum.data(), wscale.data(),
                                    sa, y.data(), kI8Pos);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * kI8OutC * kI8Patch *
                          kI8Pos);
}
void BM_Int8Igemm(benchmark::State& state) { int8_igemm_bench<true>(state); }
void BM_Int8IgemmScalar(benchmark::State& state) {
  int8_igemm_bench<false>(state);
}
BENCHMARK(BM_Int8Igemm);
BENCHMARK(BM_Int8IgemmScalar);

// The f32 GEMM at the same shape, so the igemm's win over the f32 dense
// path is read directly off adjacent BENCH_kernels.json entries.
void BM_Int8GemmF32Baseline(benchmark::State& state) {
  Rng rng(56);
  Tensor w = Tensor::randn({kI8OutC, static_cast<int>(kI8Patch)}, rng);
  Tensor cols = Tensor::randn(
      {static_cast<int>(kI8Patch), static_cast<int>(kI8Pos)}, rng);
  std::vector<float> y(static_cast<size_t>(kI8OutC) * kI8Pos);
  for (auto _ : state) {
    gemm_nn(kI8OutC, kI8Pos, kI8Patch, 1.f, w.data(), cols.data(), 0.f,
            y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * kI8OutC * kI8Patch *
                          kI8Pos);
}
BENCHMARK(BM_Int8GemmF32Baseline);

// Dense conv through the allocation-free ExecutionContext hot path —
// compare with BM_ConvDense to see the workspace/arena saving at layer
// granularity.
void BM_ConvDenseCtx(benchmark::State& state) {
  const int ch = static_cast<int>(state.range(0));
  Rng rng(7);
  nn::Conv2d conv(ch, ch, 3, 1, 1, false);
  nn::init_module(conv, rng);
  conv.set_training(false);
  Tensor x = Tensor::randn({1, ch, 16, 16}, rng);
  nn::ExecutionContext ctx;
  for (auto _ : state) {
    ctx.begin_pass();
    Tensor y = conv.forward(x, ctx);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.last_macs());
}
BENCHMARK(BM_ConvDenseCtx)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  return antidote::bench::run_benchmarks(argc, argv, "BENCH_kernels.json");
}
