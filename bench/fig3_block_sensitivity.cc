// Fig. 3: block sensitivity analysis. For each block of VGG16 (5 blocks)
// and ResNet56 (3 groups), sweep the dynamic channel pruning ratio
// 0.1..1.0 on that block alone and record test accuracy. The per-block
// tolerance read off these curves is what selects the per-block ratios of
// Table I ("set this threshold as the upper bound pruning ratio").
#include "common.h"

#include "core/sensitivity.h"

namespace {

void run_for_model(const std::string& model_name, const std::string& family) {
  using namespace antidote;
  bench::TrainedModel base =
      bench::train_base_model(model_name, "cifar10", 10, family);

  core::SensitivitySweep sweep;
  sweep.batch_size = base.scale.eval_batch;
  const auto curves = core::block_sensitivity(*base.net, *base.data.test,
                                              sweep);

  std::vector<std::string> headers = {"pruning_ratio"};
  for (const auto& c : curves) {
    headers.push_back("block" + std::to_string(c.block + 1) + "_acc");
  }
  Table table(headers);
  for (size_t i = 0; i < sweep.ratios.size(); ++i) {
    std::vector<std::string> row = {Table::fmt(sweep.ratios[i], 1)};
    for (const auto& c : curves) row.push_back(Table::fmt(c.accuracy[i], 4));
    table.add_row(std::move(row));
  }
  table.emit("Fig. 3: " + model_name + " block sensitivity (baseline acc " +
                 Table::fmt(base.baseline_accuracy, 4) + ")",
             "fig3_" + model_name + ".csv");

  // The paper's accuracy-drop tolerance line: report the largest ratio per
  // block that keeps accuracy within 70% of baseline.
  Table tolerance({"block", "max_ratio_within_tolerance"});
  for (const auto& c : curves) {
    float best = 0.f;
    for (size_t i = 0; i < c.ratios.size(); ++i) {
      if (c.accuracy[i] >= 0.7 * base.baseline_accuracy) {
        best = std::max(best, c.ratios[i]);
      }
    }
    tolerance.add_row({"block" + std::to_string(c.block + 1),
                       Table::fmt(best, 1)});
  }
  tolerance.emit("Fig. 3: " + model_name + " per-block tolerance");
}

}  // namespace

int main() {
  run_for_model("vgg16", "vgg_cifar");
  run_for_model("resnet56", "resnet_cifar");
  return 0;
}
