// Fig. 2: attention-based vs random vs inverse-attention dynamic channel
// pruning on the LAST block of VGG16 and ResNet56, accuracy across the
// pruning-ratio sweep 0.1..1.0. The expected shape: attention stays near
// the baseline far into the sweep, random degrades steadily, inverse
// collapses almost immediately (top-attention channels are the essential
// ones).
#include "common.h"

#include "core/sensitivity.h"

namespace {

void run_for_model(const std::string& model_name, const std::string& family) {
  using namespace antidote;
  bench::TrainedModel base =
      bench::train_base_model(model_name, "cifar10", 10, family);

  core::SensitivitySweep sweep;
  sweep.batch_size = base.scale.eval_batch;
  const int last_block = base.net->num_blocks() - 1;
  const auto curves =
      core::order_comparison(*base.net, *base.data.test, last_block, sweep);

  Table table({"pruning_ratio", "attention_acc", "random_acc",
               "inverse_attention_acc"});
  for (size_t i = 0; i < curves[0].ratios.size(); ++i) {
    table.add_row({Table::fmt(curves[0].ratios[i], 1),
                   Table::fmt(curves[0].accuracy[i], 4),
                   Table::fmt(curves[1].accuracy[i], 4),
                   Table::fmt(curves[2].accuracy[i], 4)});
  }
  table.emit("Fig. 2: " + model_name + " last-block pruning (baseline acc " +
                 Table::fmt(base.baseline_accuracy, 4) + ")",
             "fig2_" + model_name + ".csv");
}

}  // namespace

int main() {
  run_for_model("vgg16", "vgg_cifar");
  run_for_model("resnet56", "resnet_cifar");
  return 0;
}
