// Attention visualization: render the per-input channel attention vector
// and the spatial attention heat map (paper Eq. 1 / Eq. 2) of a gated layer
// as ASCII art, for two different inputs — making the *dynamic* part of
// dynamic pruning visible: the kept sets differ per input.
#include <cstdio>
#include <span>

#include "base/rng.h"
#include "core/attention.h"
#include "core/engine.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/factory.h"

namespace {

using namespace antidote;

// Maps a value in [lo, hi] to a density character.
char shade(float v, float lo, float hi) {
  static const char* kRamp = " .:-=+*#%@";
  if (hi <= lo) return kRamp[0];
  const float t = (v - lo) / (hi - lo);
  const int idx = std::min(9, std::max(0, static_cast<int>(t * 9.99f)));
  return kRamp[idx];
}

void show_sample(models::ConvNet& net, core::DynamicPruningEngine& engine,
                 const data::Sample& sample, int index) {
  const auto shape = sample.image.shape();
  Tensor batch = sample.image.reshape({1, shape[0], shape[1], shape[2]});
  net.set_training(false);
  net.forward(batch);

  const core::AttentionGate& gate = *engine.gate(0);
  const Tensor& ch_att = gate.last_channel_attention();
  const Tensor& sp_att = gate.last_spatial_attention();
  const auto& mask = gate.last_masks()[0];

  std::printf("--- input %d (class %d) ---\n", index, sample.label);
  std::printf("channel attention (A_channel, Eq. 1), * = kept:\n  ");
  float lo = ch_att[0], hi = ch_att[0];
  for (int c = 0; c < ch_att.dim(1); ++c) {
    lo = std::min(lo, ch_att.at({0, c}));
    hi = std::max(hi, ch_att.at({0, c}));
  }
  std::vector<bool> kept(static_cast<size_t>(ch_att.dim(1)), false);
  for (int c : mask.channels) kept[static_cast<size_t>(c)] = true;
  for (int c = 0; c < ch_att.dim(1); ++c) {
    std::printf("[%c%c]", shade(ch_att.at({0, c}), lo, hi),
                kept[static_cast<size_t>(c)] ? '*' : ' ');
  }
  std::printf("\n\nspatial attention heat map (A_spatial, Eq. 2):\n");
  const int h = sp_att.dim(1), w = sp_att.dim(2);
  float slo = sp_att[0], shi = sp_att[0];
  for (int64_t i = 0; i < sp_att.size(); ++i) {
    slo = std::min(slo, sp_att[i]);
    shi = std::max(shi, sp_att[i]);
  }
  for (int y = 0; y < h; ++y) {
    std::printf("  ");
    for (int x = 0; x < w; ++x) {
      const char c = shade(sp_att.at({0, y, x}), slo, shi);
      std::printf("%c%c", c, c);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 16;
  spec.train_size = 128;
  spec.test_size = 32;
  const data::DatasetPair data = data::make_synthetic_pair(spec);

  Rng rng(5);
  auto net = models::make_model("small_cnn", spec.num_classes, 1.0f, rng);
  core::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 32;
  tc.base_lr = 0.08;
  tc.augment = false;
  core::Trainer(*net, *data.train, tc).fit();

  // Gate everything at 50% channel + 50% spatial drop so the masks are
  // interesting; site 0 is the visualized layer.
  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.5f, 0.5f));

  // Two inputs of different classes -> visibly different attention and
  // different kept sets (per-input recovery, the paper's key property).
  show_sample(*net, engine, data.test->get(0), 0);
  show_sample(*net, engine, data.test->get(1), 1);

  engine.remove();
  return 0;
}
