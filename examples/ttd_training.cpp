// TTD (Training with Targeted Dropout) end to end — the paper's Sec. IV
// workflow on a reduced-width VGG16:
//
//   1. train a VGG16 with targeted dropout whose ratio ascends from the
//      warm-up value toward per-block targets (here the paper's CIFAR-10
//      setting [0.2, 0.2, 0.6, 0.9, 0.9]),
//   2. evaluate dynamic pruning at the very same ratios with no further
//      fine-tuning,
//   3. contrast with a plain-trained twin under the same pruning.
#include <cstdio>

#include "base/rng.h"
#include "core/engine.h"
#include "core/evaluate.h"
#include "core/trainer.h"
#include "core/ttd.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "models/flops.h"

int main() {
  using namespace antidote;

  data::SyntheticSpec spec = data::SyntheticSpec::cifar10_like();
  spec.train_size = 400;
  spec.test_size = 160;
  const data::DatasetPair data = data::make_synthetic_pair(spec);

  core::PruneSettings target;
  target.channel_drop = {0.2f, 0.2f, 0.6f, 0.9f, 0.9f};
  target.spatial_drop = {0.f, 0.f, 0.f, 0.f, 0.f};

  const float width = 0.125f;  // CPU-budget width; raise on a big machine
  core::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 32;
  tc.base_lr = 0.06;
  tc.augment = false;
  tc.verbose = true;

  // --- plain twin ---
  Rng rng_plain(11);
  auto plain = models::make_model("vgg16", 10, width, rng_plain);
  core::Trainer(*plain, *data.train, tc).fit();
  core::DynamicPruningEngine plain_engine(*plain, target);
  const double plain_pruned = core::evaluate(*plain, *data.test).accuracy;
  plain_engine.remove();

  // --- TTD twin (identical initialization) ---
  Rng rng_ttd(11);
  auto ttd_net = models::make_model("vgg16", 10, width, rng_ttd);
  core::TtdConfig cfg;
  cfg.target = target;
  cfg.warmup_ratio = 0.1f;
  cfg.step = 0.2f;  // coarse ascent to keep the example fast
  cfg.max_epochs_per_level = 1;
  cfg.final_epochs = 2;
  cfg.train = tc;
  cfg.train.epochs = 1;
  cfg.train.verbose = false;
  core::TtdTrainer ttd(*ttd_net, *data.train, cfg);
  const core::TtdResult result = ttd.run();
  std::printf("TTD ran %d epochs over %zu ratio levels\n", result.total_epochs,
              result.levels.size());

  const int64_t dense_macs =
      models::measure_dense_flops(*ttd_net, 3, 32, 32).total_macs;
  const core::EvalResult ttd_pruned = core::evaluate(*ttd_net, *data.test);
  ttd.engine().set_enabled(false);
  const core::EvalResult ttd_dense = core::evaluate(*ttd_net, *data.test);
  ttd.engine().set_enabled(true);

  std::printf("\n                       accuracy   FLOPs/image\n");
  std::printf("TTD model, dense:        %.3f    %lld\n", ttd_dense.accuracy,
              static_cast<long long>(dense_macs));
  std::printf("TTD model, pruned:       %.3f    %.0f  (%.1f%% reduction)\n",
              ttd_pruned.accuracy, ttd_pruned.mean_macs_per_sample,
              100.0 * (1.0 - ttd_pruned.mean_macs_per_sample /
                                 static_cast<double>(dense_macs)));
  std::printf("plain model, pruned:     %.3f    (same ratios, no TTD)\n",
              plain_pruned);
  return 0;
}
