// Quickstart: the smallest complete AntiDote workflow.
//
//   1. build a small CNN and a synthetic dataset,
//   2. train it for a few epochs,
//   3. install attention gates (DynamicPruningEngine) and compare
//      accuracy / measured FLOPs with and without dynamic pruning.
//
// Runs in well under a minute on one CPU core.
#include <cstdio>

#include "base/rng.h"
#include "core/engine.h"
#include "core/evaluate.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "models/flops.h"
#include "models/summary.h"

int main() {
  using namespace antidote;

  // 1. Data: a 4-class, 16x16 synthetic image problem.
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 16;
  spec.train_size = 256;
  spec.test_size = 128;
  const data::DatasetPair data = data::make_synthetic_pair(spec);

  // 2. Model + training.
  Rng rng(7);
  auto net = models::make_model("small_cnn", spec.num_classes, 1.0f, rng);
  std::printf("%s\n", models::summarize(*net, 3, 16, 16).to_string().c_str());
  core::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 32;
  tc.base_lr = 0.08;
  tc.augment = false;
  core::Trainer trainer(*net, *data.train, tc);
  for (int e = 0; e < tc.epochs; ++e) {
    const core::EpochStats s = trainer.run_epoch();
    std::printf("epoch %d  loss %.4f  train-acc %.3f\n", s.epoch, s.loss,
                s.accuracy);
  }

  // 3. Dense evaluation.
  const int64_t dense_macs =
      models::measure_dense_flops(*net, 3, 16, 16).total_macs;
  const core::EvalResult dense = core::evaluate(*net, *data.test);
  std::printf("\ndense:   accuracy %.3f   %lld MACs/image\n", dense.accuracy,
              static_cast<long long>(dense_macs));

  // 4. Dynamic pruning: drop the 50% least-attended channels per input.
  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.5f, 0.f));
  const core::EvalResult pruned = core::evaluate(*net, *data.test);
  std::printf("pruned:  accuracy %.3f   %.0f MACs/image  (%.1f%% reduction)\n",
              pruned.accuracy, pruned.mean_macs_per_sample,
              100.0 * (1.0 - pruned.mean_macs_per_sample /
                                 static_cast<double>(dense_macs)));
  engine.remove();
  return 0;
}
