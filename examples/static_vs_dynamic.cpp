// Static vs dynamic pruning, side by side — the paper's central comparison
// as a minimal program:
//
//   * static (L1):   one fixed kept set for the whole dataset, chosen from
//                    weight norms, weights physically zeroed + finetuned;
//   * dynamic:       per-input kept sets from attention, nothing removed
//                    from the model, a channel pruned for one image is
//                    recovered for the next.
//
// Both execute through the same masked-convolution path, so the FLOPs
// numbers are measured identically.
#include <algorithm>
#include <cstdio>

#include "base/rng.h"
#include "baselines/static_pruner.h"
#include "core/engine.h"
#include "core/evaluate.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "models/flops.h"
#include "nn/checkpoint.h"

int main() {
  using namespace antidote;

  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 16;
  spec.train_size = 256;
  spec.test_size = 128;
  const data::DatasetPair data = data::make_synthetic_pair(spec);

  Rng rng(13);
  auto net = models::make_model("small_cnn", spec.num_classes, 1.0f, rng);
  core::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 32;
  tc.base_lr = 0.08;
  tc.augment = false;
  core::Trainer(*net, *data.train, tc).fit();
  const auto trained = nn::snapshot_state(*net);

  const int64_t dense_macs =
      models::measure_dense_flops(*net, 3, 16, 16).total_macs;
  const double baseline = core::evaluate(*net, *data.test).accuracy;
  std::printf("baseline: accuracy %.3f, %lld MACs/image\n\n", baseline,
              static_cast<long long>(dense_macs));

  const std::vector<float> drop = {0.5f, 0.5f};

  // --- static L1 pruning ---
  baselines::StaticPruneConfig sp;
  sp.criterion = baselines::StaticCriterion::kL1;
  sp.drop_per_block = drop;
  baselines::StaticPruner pruner(*net, sp);
  pruner.prune(*data.train);
  core::TrainConfig ft = tc;
  ft.epochs = 2;
  ft.base_lr = 0.04;
  pruner.finetune(*data.train, ft);
  const core::EvalResult st = pruner.evaluate_pruned(*data.test);
  std::printf("static L1 (fixed kept set):    acc %.3f  %.0f MACs  (%.1f%%)\n",
              st.accuracy, st.mean_macs_per_sample,
              100.0 * (1.0 - st.mean_macs_per_sample /
                                 static_cast<double>(dense_macs)));

  // --- dynamic attention pruning, from the same trained weights ---
  nn::restore_state(*net, trained);
  core::PruneSettings settings;
  settings.channel_drop = drop;
  settings.spatial_drop = {0.f, 0.f};
  core::DynamicPruningEngine engine(*net, settings);
  const core::EvalResult dyn = core::evaluate(*net, *data.test);
  std::printf("dynamic attention (per input): acc %.3f  %.0f MACs  (%.1f%%)\n",
              dyn.accuracy, dyn.mean_macs_per_sample,
              100.0 * (1.0 - dyn.mean_macs_per_sample /
                                 static_cast<double>(dense_macs)));

  // Show per-input mask variation: how many distinct kept sets appear at
  // the first gate across the test set?
  net->set_training(false);
  std::vector<std::vector<int>> seen;
  for (int i = 0; i < 32; ++i) {
    const data::Sample s = data.test->get(i);
    net->forward(s.image.reshape({1, 3, 16, 16}));
    const auto& kept = engine.gate(0)->last_masks()[0].channels;
    if (std::find(seen.begin(), seen.end(), kept) == seen.end()) {
      seen.push_back(kept);
    }
  }
  std::printf("\ndistinct kept-channel sets at gate 0 over 32 inputs: %zu\n",
              seen.size());
  std::printf("(static pruning always uses exactly 1)\n");
  engine.remove();
  return 0;
}
