// Block sensitivity analysis (the paper's Fig. 3 methodology) on a small
// trained CNN: sweep the dynamic channel-pruning ratio one block at a time
// and print accuracy-vs-ratio curves, then derive per-block ratio upper
// bounds at an accuracy-drop tolerance — exactly how the paper picks the
// Table-I per-block settings.
#include <algorithm>
#include <cstdio>

#include "base/rng.h"
#include "core/sensitivity.h"
#include "core/trainer.h"
#include "core/evaluate.h"
#include "data/synthetic.h"
#include "models/factory.h"

int main() {
  using namespace antidote;

  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 16;
  spec.train_size = 256;
  spec.test_size = 128;
  const data::DatasetPair data = data::make_synthetic_pair(spec);

  Rng rng(3);
  auto net = models::make_model("small_cnn", spec.num_classes, 1.0f, rng);
  core::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 32;
  tc.base_lr = 0.08;
  tc.augment = false;
  core::Trainer(*net, *data.train, tc).fit();
  const double baseline = core::evaluate(*net, *data.test).accuracy;
  std::printf("baseline accuracy: %.3f\n\n", baseline);

  core::SensitivitySweep sweep;
  sweep.ratios = {0.1f, 0.3f, 0.5f, 0.7f, 0.9f};
  const auto curves = core::block_sensitivity(*net, *data.test, sweep);

  std::printf("%-8s", "ratio");
  for (const auto& c : curves) std::printf("  block%d", c.block + 1);
  std::printf("\n");
  for (size_t i = 0; i < sweep.ratios.size(); ++i) {
    std::printf("%-8.1f", sweep.ratios[i]);
    for (const auto& c : curves) std::printf("  %6.3f", c.accuracy[i]);
    std::printf("\n");
  }

  // Per-block upper bound at a 5%-absolute-drop tolerance.
  std::printf("\nper-block ratio upper bounds (tolerance: baseline - 0.05):\n");
  for (const auto& c : curves) {
    float bound = 0.f;
    for (size_t i = 0; i < c.ratios.size(); ++i) {
      if (c.accuracy[i] >= baseline - 0.05) {
        bound = std::max(bound, c.ratios[i]);
      }
    }
    std::printf("  block %d: %.1f\n", c.block + 1, bound);
  }
  std::printf("\nUse these as PruneSettings::channel_drop for TTD training.\n");
  return 0;
}
