#include "tools/cli.h"

#include <cstdio>
#include <iostream>

#include "base/error.h"
#include "base/flags.h"
#include "base/rng.h"
#include "core/antidote.h"
#include "models/summary.h"

namespace antidote::cli {

namespace {

// Registers the flags shared by every data-touching command.
void add_common_flags(FlagSet& flags) {
  flags.add_string("model", "small_cnn",
                   "architecture: vgg16 | resnet20 | resnet56 | small_cnn");
  flags.add_double("width", 1.0, "channel width multiplier");
  flags.add_int("classes", 4, "number of classes");
  flags.add_int("image-size", 16, "synthetic image height/width");
  flags.add_int("train-size", 256, "synthetic training samples");
  flags.add_int("test-size", 128, "synthetic test samples");
  flags.add_int("seed", 7, "global seed (init, data, shuffling)");
  flags.add_int("batch", 32, "batch size");
}

data::DatasetPair make_data(const FlagSet& flags) {
  data::SyntheticSpec spec;
  spec.name = "cli-syn";
  spec.num_classes = flags.get_int("classes");
  spec.height = spec.width = flags.get_int("image-size");
  spec.train_size = flags.get_int("train-size");
  spec.test_size = flags.get_int("test-size");
  spec.seed = static_cast<uint64_t>(flags.get_int("seed")) * 7919 + 3;
  return data::make_synthetic_pair(spec);
}

std::unique_ptr<models::ConvNet> make_net(const FlagSet& flags) {
  Rng rng(static_cast<uint64_t>(flags.get_int("seed")));
  return models::make_model(flags.get_string("model"),
                            flags.get_int("classes"),
                            static_cast<float>(flags.get_double("width")),
                            rng);
}

// Expands a ratio list flag: empty -> all zeros; one entry -> broadcast;
// otherwise must match the model's block count.
std::vector<float> block_ratios(const std::vector<float>& raw,
                                int num_blocks, const char* flag_name) {
  if (raw.empty()) return std::vector<float>(static_cast<size_t>(num_blocks));
  if (raw.size() == 1) {
    return std::vector<float>(static_cast<size_t>(num_blocks), raw[0]);
  }
  AD_CHECK_EQ(static_cast<int>(raw.size()), num_blocks)
      << " --" << flag_name << " needs 1 or " << num_blocks << " entries";
  return raw;
}

core::PruneSettings settings_from_flags(const FlagSet& flags,
                                        models::ConvNet& net) {
  core::PruneSettings s;
  s.channel_drop = block_ratios(flags.get_float_list("channel-drop"),
                                net.num_blocks(), "channel-drop");
  s.spatial_drop = block_ratios(flags.get_float_list("spatial-drop"),
                                net.num_blocks(), "spatial-drop");
  const std::string order = flags.get_string("order");
  if (order == "attention") {
    s.order = core::MaskOrder::kAttention;
  } else if (order == "random") {
    s.order = core::MaskOrder::kRandom;
  } else if (order == "inverse") {
    s.order = core::MaskOrder::kInverseAttention;
  } else {
    AD_CHECK(false) << " --order must be attention|random|inverse, got "
                    << order;
  }
  return s;
}

void add_prune_flags(FlagSet& flags) {
  flags.add_float_list("channel-drop", "",
                       "per-block channel drop ratios (1 value broadcasts)");
  flags.add_float_list("spatial-drop", "",
                       "per-block spatial drop ratios (1 value broadcasts)");
  flags.add_string("order", "attention",
                   "mask ordering: attention | random | inverse");
}

core::TrainConfig train_config(const FlagSet& flags) {
  core::TrainConfig tc;
  tc.epochs = flags.get_int("epochs");
  tc.batch_size = flags.get_int("batch");
  tc.base_lr = flags.get_double("lr");
  tc.augment = flags.get_bool("augment");
  tc.seed = static_cast<uint64_t>(flags.get_int("seed")) + 17;
  tc.verbose = true;
  return tc;
}

void report_eval(models::ConvNet& net, const data::Dataset& test, int batch,
                 int64_t dense_macs) {
  const core::EvalResult r = core::evaluate(net, test, batch);
  std::printf("test accuracy:  %.4f\n", r.accuracy);
  std::printf("MACs per image: %.0f (dense %lld, reduction %.1f%%)\n",
              r.mean_macs_per_sample, static_cast<long long>(dense_macs),
              100.0 * (1.0 - r.mean_macs_per_sample /
                                 static_cast<double>(dense_macs)));
}

int cmd_summary(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli summary");
  add_common_flags(flags);
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  auto net = make_net(flags);
  const int size = flags.get_int("image-size");
  std::cout << net->model_name() << " (width "
            << flags.get_double("width") << "):\n"
            << models::summarize(*net, 3, size, size).to_string();
  return 0;
}

int cmd_train(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli train");
  add_common_flags(flags);
  flags.add_int("epochs", 8, "training epochs (cosine schedule)");
  flags.add_double("lr", 0.08, "peak learning rate");
  flags.add_bool("augment", false, "pad-4 crop + hflip augmentation");
  flags.add_string("out", "", "checkpoint path to write (optional)");
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  auto data = make_data(flags);
  auto net = make_net(flags);
  core::Trainer trainer(*net, *data.train, train_config(flags));
  trainer.fit();
  const int size = flags.get_int("image-size");
  const int64_t dense =
      models::measure_dense_flops(*net, 3, size, size).total_macs;
  report_eval(*net, *data.test, flags.get_int("batch"), dense);
  if (const std::string out = flags.get_string("out"); !out.empty()) {
    nn::save_checkpoint(*net, out);
    std::printf("checkpoint written: %s\n", out.c_str());
  }
  return 0;
}

int cmd_ttd(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli ttd");
  add_common_flags(flags);
  add_prune_flags(flags);
  flags.add_int("epochs", 1, "epochs per ascent level");
  flags.add_int("final-epochs", 2, "consolidation epochs at target ratios");
  flags.add_double("lr", 0.05, "peak learning rate");
  flags.add_double("warmup", 0.1, "ratio-ascent warm-up value");
  flags.add_double("step", 0.05, "ratio-ascent step size");
  flags.add_bool("augment", false, "pad-4 crop + hflip augmentation");
  flags.add_string("from", "", "checkpoint to initialize from (optional)");
  flags.add_string("out", "", "checkpoint path to write (optional)");
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  auto data = make_data(flags);
  auto net = make_net(flags);
  if (const std::string from = flags.get_string("from"); !from.empty()) {
    nn::load_checkpoint(*net, from);
  }
  core::TtdConfig cfg;
  cfg.target = settings_from_flags(flags, *net);
  cfg.warmup_ratio = static_cast<float>(flags.get_double("warmup"));
  cfg.step = static_cast<float>(flags.get_double("step"));
  cfg.max_epochs_per_level = flags.get_int("epochs");
  cfg.final_epochs = flags.get_int("final-epochs");
  cfg.train = train_config(flags);
  cfg.train.epochs = 1;
  core::TtdTrainer ttd(*net, *data.train, cfg);
  const core::TtdResult result = ttd.run();
  std::printf("TTD: %d epochs over %zu levels, final train acc %.4f\n",
              result.total_epochs, result.levels.size(),
              result.final_train_accuracy);
  const int size = flags.get_int("image-size");
  const int64_t dense =
      models::measure_dense_flops(*net, 3, size, size).total_macs;
  report_eval(*net, *data.test, flags.get_int("batch"), dense);
  ttd.engine().remove();
  if (const std::string out = flags.get_string("out"); !out.empty()) {
    nn::save_checkpoint(*net, out);
    std::printf("checkpoint written: %s\n", out.c_str());
  }
  return 0;
}

int cmd_eval(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli eval");
  add_common_flags(flags);
  add_prune_flags(flags);
  flags.add_string("ckpt", "", "checkpoint to evaluate (required)");
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  AD_CHECK(!flags.get_string("ckpt").empty()) << " --ckpt is required";
  auto data = make_data(flags);
  auto net = make_net(flags);
  nn::load_checkpoint(*net, flags.get_string("ckpt"));
  const int size = flags.get_int("image-size");
  const int64_t dense =
      models::measure_dense_flops(*net, 3, size, size).total_macs;
  core::DynamicPruningEngine engine(*net, settings_from_flags(flags, *net));
  report_eval(*net, *data.test, flags.get_int("batch"), dense);
  engine.remove();
  return 0;
}

int cmd_sensitivity(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli sensitivity");
  add_common_flags(flags);
  flags.add_string("ckpt", "", "checkpoint to analyze (required)");
  flags.add_bool("spatial", false, "sweep spatial instead of channel ratios");
  flags.add_bool("per-site", false, "per-layer curves instead of per-block");
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  AD_CHECK(!flags.get_string("ckpt").empty()) << " --ckpt is required";
  auto data = make_data(flags);
  auto net = make_net(flags);
  nn::load_checkpoint(*net, flags.get_string("ckpt"));

  core::SensitivitySweep sweep;
  sweep.spatial = flags.get_bool("spatial");
  sweep.batch_size = flags.get_int("batch");
  const auto curves =
      flags.get_bool("per-site")
          ? core::site_sensitivity(*net, *data.test, sweep)
          : core::block_sensitivity(*net, *data.test, sweep);

  std::printf("%-8s", "ratio");
  const char* unit = flags.get_bool("per-site") ? "site" : "block";
  for (const auto& c : curves) std::printf("  %s%d", unit, c.block + 1);
  std::printf("\n");
  for (size_t i = 0; i < sweep.ratios.size(); ++i) {
    std::printf("%-8.1f", sweep.ratios[i]);
    for (const auto& c : curves) std::printf("  %6.3f", c.accuracy[i]);
    std::printf("\n");
  }
  return 0;
}

constexpr const char* kUsage =
    "usage: antidote_cli <command> [flags]\n"
    "commands:\n"
    "  summary      print a layer table (params, MACs) for a model\n"
    "  train        train a model on a synthetic dataset\n"
    "  ttd          training with targeted dropout + ratio ascent\n"
    "  eval         evaluate a checkpoint under dynamic pruning\n"
    "  sensitivity  per-block (or per-site) pruning sensitivity sweep\n"
    "run `antidote_cli <command> --help` for the command's flags\n";

}  // namespace

int run_cli(const std::vector<std::string>& args) {
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "-h") {
      std::cout << kUsage;
      return args.empty() ? 1 : 0;
    }
    const std::string command = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (command == "summary") return cmd_summary(rest);
    if (command == "train") return cmd_train(rest);
    if (command == "ttd") return cmd_ttd(rest);
    if (command == "eval") return cmd_eval(rest);
    if (command == "sensitivity") return cmd_sensitivity(rest);
    std::cerr << "unknown command: " << command << "\n" << kUsage;
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace antidote::cli
