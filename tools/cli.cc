#include "tools/cli.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <optional>
#include <thread>

#include "base/error.h"
#include "base/flags.h"
#include "base/rng.h"
#include "base/timer.h"
#include "core/antidote.h"
#include "models/summary.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "serving/serving.h"

namespace antidote::cli {

namespace {

// Registers the flags shared by every data-touching command.
void add_common_flags(FlagSet& flags) {
  flags.add_string("model", "small_cnn",
                   "architecture: vgg16 | resnet20 | resnet56 | small_cnn");
  flags.add_double("width", 1.0, "channel width multiplier");
  flags.add_int("classes", 4, "number of classes");
  flags.add_int("image-size", 16, "synthetic image height/width");
  flags.add_int("resolution", 0,
                "workload resolution (synthetic image height/width); "
                "overrides --image-size when > 0 — use for the large "
                "ImageNet-style classes (e.g. --resolution=224)");
  flags.add_int("train-size", 256, "synthetic training samples");
  flags.add_int("test-size", 128, "synthetic test samples");
  flags.add_int("seed", 7, "global seed (init, data, shuffling)");
  flags.add_int("batch", 32, "batch size");
}

// The effective square image size: --resolution wins when given (the
// 224x224 workload-class knob), --image-size otherwise.
int image_size_from_flags(const FlagSet& flags) {
  const int resolution = flags.get_int("resolution");
  return resolution > 0 ? resolution : flags.get_int("image-size");
}

data::DatasetPair make_data(const FlagSet& flags) {
  data::SyntheticSpec spec;
  spec.name = "cli-syn";
  spec.num_classes = flags.get_int("classes");
  spec.height = spec.width = image_size_from_flags(flags);
  spec.train_size = flags.get_int("train-size");
  spec.test_size = flags.get_int("test-size");
  spec.seed = static_cast<uint64_t>(flags.get_int("seed")) * 7919 + 3;
  return data::make_synthetic_pair(spec);
}

std::unique_ptr<models::ConvNet> make_net(const FlagSet& flags) {
  Rng rng(static_cast<uint64_t>(flags.get_int("seed")));
  return models::make_model(flags.get_string("model"),
                            flags.get_int("classes"),
                            static_cast<float>(flags.get_double("width")),
                            rng);
}

// Expands a ratio list flag: empty -> all zeros; one entry -> broadcast;
// otherwise must match the model's block count.
std::vector<float> block_ratios(const std::vector<float>& raw,
                                int num_blocks, const char* flag_name) {
  if (raw.empty()) return std::vector<float>(static_cast<size_t>(num_blocks));
  if (raw.size() == 1) {
    return std::vector<float>(static_cast<size_t>(num_blocks), raw[0]);
  }
  AD_CHECK_EQ(static_cast<int>(raw.size()), num_blocks)
      << " --" << flag_name << " needs 1 or " << num_blocks << " entries";
  return raw;
}

core::PruneSettings settings_from_flags(const FlagSet& flags,
                                        models::ConvNet& net) {
  core::PruneSettings s;
  s.channel_drop = block_ratios(flags.get_float_list("channel-drop"),
                                net.num_blocks(), "channel-drop");
  s.spatial_drop = block_ratios(flags.get_float_list("spatial-drop"),
                                net.num_blocks(), "spatial-drop");
  const std::string order = flags.get_string("order");
  if (order == "attention") {
    s.order = core::MaskOrder::kAttention;
  } else if (order == "random") {
    s.order = core::MaskOrder::kRandom;
  } else if (order == "inverse") {
    s.order = core::MaskOrder::kInverseAttention;
  } else {
    AD_CHECK(false) << " --order must be attention|random|inverse, got "
                    << order;
  }
  return s;
}

void add_prune_flags(FlagSet& flags) {
  flags.add_float_list("channel-drop", "",
                       "per-block channel drop ratios (1 value broadcasts)");
  flags.add_float_list("spatial-drop", "",
                       "per-block spatial drop ratios (1 value broadcasts)");
  flags.add_string("order", "attention",
                   "mask ordering: attention | random | inverse");
}

void add_quantize_flag(FlagSet& flags) {
  flags.add_string("quantize", "f32",
                   "numeric regime: f32 | int8 (int8 runs conv steps "
                   "through the quantized kernels; spatially-masked groups "
                   "fall back to f32)");
}

plan::NumericRegime regime_from_flags(const FlagSet& flags) {
  const std::string q = flags.get_string("quantize");
  if (q == "f32") return plan::NumericRegime::kF32;
  if (q == "int8") return plan::NumericRegime::kInt8;
  AD_CHECK(false) << " --quantize must be f32|int8, got " << q;
  return plan::NumericRegime::kF32;
}

void add_coarsen_flag(FlagSet& flags) {
  flags.add_string("coarsen", "auto",
                   "similar-mask union coarsening: off | auto (auto merges "
                   "near-identical mask groups into union supersets when "
                   "the plan's latency model predicts a win; output stays "
                   "bitwise identical)");
}

plan::CoarsenPolicy coarsen_from_flags(const FlagSet& flags) {
  const std::string c = flags.get_string("coarsen");
  if (c == "off") return {plan::CoarsenMode::kOff, 1.0};
  if (c == "auto") return {plan::CoarsenMode::kAuto, 1.0};
  AD_CHECK(false) << " --coarsen must be off|auto, got " << c;
  return {};
}

void add_tile_flag(FlagSet& flags) {
  flags.add_string("tile", "auto",
                   "spatially-tiled conv lowering: off | auto | N (auto "
                   "tiles large output grids so the im2col panel stays "
                   "cache-resident; N forces a fixed tile width in output "
                   "positions; f32 output is bitwise identical either way)");
}

plan::TilePolicy tile_from_flags(const FlagSet& flags) {
  const std::string t = flags.get_string("tile");
  if (t == "off") return {plan::TileMode::kOff, 0};
  if (t == "auto") return {plan::TileMode::kAuto, 0};
  char* end = nullptr;
  const long n = std::strtol(t.c_str(), &end, 10);
  AD_CHECK(end != nullptr && *end == '\0' && n > 0)
      << " --tile must be off|auto|N (positive integer), got " << t;
  return {plan::TileMode::kFixed, static_cast<int>(n)};
}

core::TrainConfig train_config(const FlagSet& flags) {
  core::TrainConfig tc;
  tc.epochs = flags.get_int("epochs");
  tc.batch_size = flags.get_int("batch");
  tc.base_lr = flags.get_double("lr");
  tc.augment = flags.get_bool("augment");
  tc.seed = static_cast<uint64_t>(flags.get_int("seed")) + 17;
  tc.verbose = true;
  return tc;
}

void report_eval(models::ConvNet& net, const data::Dataset& test, int batch,
                 int64_t dense_macs) {
  const core::EvalResult r = core::evaluate(net, test, batch);
  std::printf("test accuracy:  %.4f\n", r.accuracy);
  std::printf("MACs per image: %.0f (dense %lld, reduction %.1f%%)\n",
              r.mean_macs_per_sample, static_cast<long long>(dense_macs),
              100.0 * (1.0 - r.mean_macs_per_sample /
                                 static_cast<double>(dense_macs)));
}

int cmd_summary(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli summary");
  add_common_flags(flags);
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  auto net = make_net(flags);
  const int size = image_size_from_flags(flags);
  std::cout << net->model_name() << " (width "
            << flags.get_double("width") << "):\n"
            << models::summarize(*net, 3, size, size).to_string();
  return 0;
}

int cmd_train(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli train");
  add_common_flags(flags);
  flags.add_int("epochs", 8, "training epochs (cosine schedule)");
  flags.add_double("lr", 0.08, "peak learning rate");
  flags.add_bool("augment", false, "pad-4 crop + hflip augmentation");
  flags.add_string("out", "", "checkpoint path to write (optional)");
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  auto data = make_data(flags);
  auto net = make_net(flags);
  core::Trainer trainer(*net, *data.train, train_config(flags));
  trainer.fit();
  const int size = image_size_from_flags(flags);
  const int64_t dense =
      models::measure_dense_flops(*net, 3, size, size).total_macs;
  report_eval(*net, *data.test, flags.get_int("batch"), dense);
  if (const std::string out = flags.get_string("out"); !out.empty()) {
    nn::save_checkpoint(*net, out);
    std::printf("checkpoint written: %s\n", out.c_str());
  }
  return 0;
}

int cmd_ttd(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli ttd");
  add_common_flags(flags);
  add_prune_flags(flags);
  flags.add_int("epochs", 1, "epochs per ascent level");
  flags.add_int("final-epochs", 2, "consolidation epochs at target ratios");
  flags.add_double("lr", 0.05, "peak learning rate");
  flags.add_double("warmup", 0.1, "ratio-ascent warm-up value");
  flags.add_double("step", 0.05, "ratio-ascent step size");
  flags.add_bool("augment", false, "pad-4 crop + hflip augmentation");
  flags.add_string("from", "", "checkpoint to initialize from (optional)");
  flags.add_string("out", "", "checkpoint path to write (optional)");
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  auto data = make_data(flags);
  auto net = make_net(flags);
  if (const std::string from = flags.get_string("from"); !from.empty()) {
    nn::load_checkpoint(*net, from);
  }
  core::TtdConfig cfg;
  cfg.target = settings_from_flags(flags, *net);
  cfg.warmup_ratio = static_cast<float>(flags.get_double("warmup"));
  cfg.step = static_cast<float>(flags.get_double("step"));
  cfg.max_epochs_per_level = flags.get_int("epochs");
  cfg.final_epochs = flags.get_int("final-epochs");
  cfg.train = train_config(flags);
  cfg.train.epochs = 1;
  core::TtdTrainer ttd(*net, *data.train, cfg);
  const core::TtdResult result = ttd.run();
  std::printf("TTD: %d epochs over %zu levels, final train acc %.4f\n",
              result.total_epochs, result.levels.size(),
              result.final_train_accuracy);
  const int size = image_size_from_flags(flags);
  const int64_t dense =
      models::measure_dense_flops(*net, 3, size, size).total_macs;
  report_eval(*net, *data.test, flags.get_int("batch"), dense);
  ttd.engine().remove();
  if (const std::string out = flags.get_string("out"); !out.empty()) {
    nn::save_checkpoint(*net, out);
    std::printf("checkpoint written: %s\n", out.c_str());
  }
  return 0;
}

int cmd_eval(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli eval");
  add_common_flags(flags);
  add_prune_flags(flags);
  add_quantize_flag(flags);
  add_coarsen_flag(flags);
  add_tile_flag(flags);
  flags.add_string("ckpt", "", "checkpoint to evaluate (required)");
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  AD_CHECK(!flags.get_string("ckpt").empty()) << " --ckpt is required";
  auto data = make_data(flags);
  auto net = make_net(flags);
  nn::load_checkpoint(*net, flags.get_string("ckpt"));
  net->set_numeric_regime(regime_from_flags(flags));
  net->set_coarsen_policy(coarsen_from_flags(flags));
  net->set_tile_policy(tile_from_flags(flags));
  const int size = image_size_from_flags(flags);
  const int64_t dense =
      models::measure_dense_flops(*net, 3, size, size).total_macs;
  core::DynamicPruningEngine engine(*net, settings_from_flags(flags, *net));
  report_eval(*net, *data.test, flags.get_int("batch"), dense);
  engine.remove();
  return 0;
}

int cmd_sensitivity(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli sensitivity");
  add_common_flags(flags);
  flags.add_string("ckpt", "", "checkpoint to analyze (required)");
  flags.add_bool("spatial", false, "sweep spatial instead of channel ratios");
  flags.add_bool("per-site", false, "per-layer curves instead of per-block");
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  AD_CHECK(!flags.get_string("ckpt").empty()) << " --ckpt is required";
  auto data = make_data(flags);
  auto net = make_net(flags);
  nn::load_checkpoint(*net, flags.get_string("ckpt"));

  core::SensitivitySweep sweep;
  sweep.spatial = flags.get_bool("spatial");
  sweep.batch_size = flags.get_int("batch");
  const auto curves =
      flags.get_bool("per-site")
          ? core::site_sensitivity(*net, *data.test, sweep)
          : core::block_sensitivity(*net, *data.test, sweep);

  std::printf("%-8s", "ratio");
  const char* unit = flags.get_bool("per-site") ? "site" : "block";
  for (const auto& c : curves) std::printf("  %s%d", unit, c.block + 1);
  std::printf("\n");
  for (size_t i = 0; i < sweep.ratios.size(); ++i) {
    std::printf("%-8.1f", sweep.ratios[i]);
    for (const auto& c : curves) std::printf("  %6.3f", c.accuracy[i]);
    std::printf("\n");
  }
  return 0;
}

// --- tracing / profiling helpers -------------------------------------------

// Flags shared by `trace` and `plan-dump --profile`.
void add_trace_flags(FlagSet& flags) {
  flags.add_int("passes", 3, "traced forward passes (after one warm-up)");
  flags.add_int("distinct", 4,
                "unique images duplicated to fill the batch (duplicates "
                "draw identical masks, so the batch groups into <= this "
                "many compacted GEMMs)");
  flags.add_int("events", 16384, "trace-ring capacity per worker");
  flags.add_bool("counters", false,
                 "read perf_event hardware counters per span (needs "
                 "perf_event_paranoid <= 2; falls back to timing-only)");
}

// Runs `passes` plan forwards of a batch assembled from `distinct` unique
// images (one warm-up pass first, then Tracer::clear(), so the recorded
// passes see warmed caches and a reserved arena). Returns the plan.
plan::InferencePlan& run_traced_passes(models::ConvNet& net, int image_size,
                                       int batch, int distinct, int passes,
                                       uint64_t seed) {
  net.set_training(false);
  Rng rng(seed * 31 + 11);
  AD_CHECK_GT(distinct, 0);
  Tensor uniq = Tensor::randn({distinct, 3, image_size, image_size}, rng);
  Tensor x({batch, 3, image_size, image_size});
  const int64_t sample = uniq.size() / distinct;
  for (int i = 0; i < batch; ++i) {
    std::memcpy(x.data() + i * sample, uniq.data() + (i % distinct) * sample,
                static_cast<size_t>(sample) * sizeof(float));
  }
  nn::ExecutionContext ctx;
  plan::InferencePlan& plan = net.inference_plan(3, image_size, image_size);
  plan.reserve(ctx.workspace(), batch);
  auto run_pass = [&] {
    ctx.begin_pass();
    Tensor staged = ctx.alloc(x.shape());
    std::memcpy(staged.data(), x.data(),
                static_cast<size_t>(x.size()) * sizeof(float));
    net.forward(staged, ctx);
  };
  run_pass();
  obs::Tracer::instance().clear();  // discard the warm-up's spans
  for (int p = 0; p < passes; ++p) run_pass();
  return plan;
}

// Builds the pruning engine for trace/profile runs. Falls back to a 0.3
// channel drop when the user requested none: an all-dense run has no mask
// groups, and the whole point of the timeline is the grouped regime.
std::unique_ptr<core::DynamicPruningEngine> make_trace_engine(
    const FlagSet& flags, models::ConvNet& net, bool* defaulted) {
  core::PruneSettings settings = settings_from_flags(flags, net);
  const auto nonzero = [](const std::vector<float>& v) {
    return std::any_of(v.begin(), v.end(), [](float x) { return x > 0.f; });
  };
  *defaulted = false;
  if (!nonzero(settings.channel_drop) && !nonzero(settings.spatial_drop)) {
    settings.channel_drop.assign(settings.channel_drop.size(), 0.3f);
    *defaulted = true;
  }
  return std::make_unique<core::DynamicPruningEngine>(net, settings);
}

// Per-op/per-phase flame-style report from the tracer's aggregation.
// `step` rows are wall time on the driving thread; phase rows are CPU time
// summed across the workers that executed them (wrk = how many, spread =
// max worker / mean worker — a straggler shows up as spread >> 1).
void print_profile_report(const plan::InferencePlan& plan, int passes) {
  const std::vector<obs::PhaseStat> stats =
      obs::Tracer::instance().aggregate();
  double total_step_ms = 0.0;
  for (const obs::PhaseStat& s : stats) {
    if (s.phase == obs::Phase::kStep && s.op >= 0) total_step_ms += s.total_ms;
  }
  std::printf(
      "\nprofile: %d passes, %llu spans (%llu dropped), total step wall "
      "%.3f ms (%.3f ms/pass)\n",
      passes,
      static_cast<unsigned long long>(obs::Tracer::instance().total_events()),
      static_cast<unsigned long long>(
          obs::Tracer::instance().dropped_events()),
      total_step_ms, total_step_ms / std::max(1, passes));
  std::printf(
      "%-4s %-18s %-9s %6s %9s %9s %6s %6s %8s %8s %7s %4s %7s\n", "#",
      "name", "phase", "calls", "cpu_ms", "ms/pass", "%", "IPC", "L1dM/kI",
      "LLCM/kI", "stall%", "wrk", "spread");
  const auto counter_cols = [](const obs::PhaseStat& s, char* buf,
                               size_t cap) {
    const obs::HwCounters& c = s.counters;
    const bool ipc_ok = c.has(obs::CounterId::kCycles) &&
                        c.has(obs::CounterId::kInstructions) && c.cycles > 0;
    const bool inst_ok =
        c.has(obs::CounterId::kInstructions) && c.instructions > 0;
    char ipc[16] = "-", l1d[16] = "-", llc[16] = "-", stall[16] = "-";
    if (ipc_ok) {
      std::snprintf(ipc, sizeof(ipc), "%.2f",
                    static_cast<double>(c.instructions) /
                        static_cast<double>(c.cycles));
    }
    if (inst_ok && c.has(obs::CounterId::kL1dMisses)) {
      std::snprintf(l1d, sizeof(l1d), "%.2f",
                    1000.0 * static_cast<double>(c.l1d_misses) /
                        static_cast<double>(c.instructions));
    }
    if (inst_ok && c.has(obs::CounterId::kLlcMisses)) {
      std::snprintf(llc, sizeof(llc), "%.2f",
                    1000.0 * static_cast<double>(c.llc_misses) /
                        static_cast<double>(c.instructions));
    }
    if (ipc_ok && c.has(obs::CounterId::kStalledCycles)) {
      std::snprintf(stall, sizeof(stall), "%.1f",
                    100.0 * static_cast<double>(c.stalled_cycles) /
                        static_cast<double>(c.cycles));
    }
    std::snprintf(buf, cap, "%6s %8s %8s %7s", ipc, l1d, llc, stall);
  };
  char counters[64];
  const int num_ops = static_cast<int>(plan.ops().size());
  for (int op = -1; op < num_ops; ++op) {
    bool printed_op = false;
    for (const obs::PhaseStat& s : stats) {
      if (s.op != op) continue;
      const bool is_step = s.phase == obs::Phase::kStep;
      if (!printed_op) {
        printed_op = true;
        if (op >= 0) {
          std::printf("%-4d %-18s", op,
                      plan.ops()[static_cast<size_t>(op)].name.c_str());
        } else {
          std::printf("%-4s %-18s", "-", "(outside plan)");
        }
      } else {
        std::printf("%-4s %-18s", "", "");
      }
      counter_cols(s, counters, sizeof(counters));
      const double mean_slot_ms =
          s.active_slots > 0 ? s.total_ms / s.active_slots : 0.0;
      char spread[16] = "-";
      if (s.active_slots > 1 && mean_slot_ms > 0.0) {
        std::snprintf(spread, sizeof(spread), "%.2fx",
                      s.max_slot_ms / mean_slot_ms);
      }
      std::printf(
          " %-9s %6llu %9.3f %9.3f %5.1f%% %s %4d %7s\n",
          obs::phase_name(s.phase), static_cast<unsigned long long>(s.calls),
          s.total_ms, s.total_ms / std::max(1, passes),
          is_step && total_step_ms > 0.0 ? 100.0 * s.total_ms / total_step_ms
                                         : 0.0,
          counters, s.active_slots, spread);
    }
  }
  std::printf(
      "pack cache: %lld hits / %lld misses (%lld cold, %lld capacity) / "
      "%lld evictions / %lld bypassed (parallel groups)\n",
      static_cast<long long>(plan.pack_cache_hits()),
      static_cast<long long>(plan.pack_cache_misses()),
      static_cast<long long>(plan.pack_cache_cold_misses()),
      static_cast<long long>(plan.pack_cache_capacity_misses()),
      static_cast<long long>(plan.pack_cache_evictions()),
      static_cast<long long>(plan.pack_cache_bypass()));
}

// Per-op union-coarsening decisions of the plan's most recent pass, plus a
// measured off-vs-auto comparison (the "predicted vs measured merge win"
// line): the same batch is re-run under exact-identity grouping and under
// coarsening, timed whole-forward, so the planner's critical-path
// prediction can be checked against a realized number.
void print_coarsen_report(models::ConvNet& net, plan::InferencePlan& plan,
                          int image_size, int batch, int distinct,
                          int passes, uint64_t seed) {
  const plan::CoarsenPolicy policy = plan.coarsen();
  std::printf("\nmask coarsening: %s (mac bias %.2f), last pass groups "
              "%d -> %d, union-added MACs %lld (%.2f%% of executed)\n",
              plan::coarsen_mode_name(policy.mode), policy.mac_bias,
              plan.last_mask_groups_raw(), plan.last_mask_groups(),
              static_cast<long long>(plan.last_coarsen_extra_macs()),
              100.0 * plan.last_coarsen_extra_mac_frac());
  std::printf("%-4s %-18s %12s %9s %12s %22s %8s\n", "#", "name",
              "groups", "extra_ch", "extra_MACs", "predicted_cost",
              "pred_win");
  for (size_t i = 0; i < plan.ops().size(); ++i) {
    const plan::PlanOp& op = plan.ops()[i];
    if (op.last_groups_raw <= 0) continue;
    char groups_col[24], pred_col[32], win_col[16];
    std::snprintf(groups_col, sizeof(groups_col), "%d -> %d",
                  op.last_groups_raw, op.last_groups);
    std::snprintf(pred_col, sizeof(pred_col), "%.3g -> %.3g",
                  op.last_coarsen_pred_before, op.last_coarsen_pred_after);
    if (op.last_coarsen_pred_after > 0.0) {
      std::snprintf(win_col, sizeof(win_col), "%.2fx",
                    op.last_coarsen_pred_before /
                        op.last_coarsen_pred_after);
    } else {
      std::snprintf(win_col, sizeof(win_col), "-");
    }
    std::printf("%-4zu %-18s %12s %9lld %12lld %22s %8s\n", i,
                op.name.c_str(), groups_col,
                static_cast<long long>(op.last_coarsen_extra_ch),
                static_cast<long long>(op.last_coarsen_extra_macs),
                pred_col, win_col);
  }
  if (policy.mode != plan::CoarsenMode::kAuto) return;

  // Measured merge win: the same duplicated batch, timed whole-forward
  // under exact-identity grouping and under coarsening (warm arena, one
  // warm-up pass per mode).
  Rng rng(seed * 31 + 11);
  AD_CHECK_GT(distinct, 0);
  Tensor uniq = Tensor::randn({distinct, 3, image_size, image_size}, rng);
  Tensor x({batch, 3, image_size, image_size});
  const int64_t sample = uniq.size() / distinct;
  for (int i = 0; i < batch; ++i) {
    std::memcpy(x.data() + i * sample, uniq.data() + (i % distinct) * sample,
                static_cast<size_t>(sample) * sizeof(float));
  }
  nn::ExecutionContext ctx;
  plan.reserve(ctx.workspace(), batch);
  const auto timed = [&](plan::CoarsenMode mode) {
    net.set_coarsen_policy({mode, policy.mac_bias});
    const auto run_pass = [&] {
      ctx.begin_pass();
      Tensor staged = ctx.alloc(x.shape());
      std::memcpy(staged.data(), x.data(),
                  static_cast<size_t>(x.size()) * sizeof(float));
      net.forward(staged, ctx);
    };
    run_pass();  // warm-up under this mode
    WallTimer timer;
    for (int p = 0; p < std::max(1, passes); ++p) run_pass();
    return timer.millis() / std::max(1, passes);
  };
  const double off_ms = timed(plan::CoarsenMode::kOff);
  const double auto_ms = timed(plan::CoarsenMode::kAuto);
  net.set_coarsen_policy(policy);
  std::printf("measured: exact-identity %.3f ms/pass vs coarsened %.3f "
              "ms/pass (%.2fx win)\n",
              off_ms, auto_ms, auto_ms > 0.0 ? off_ms / auto_ms : 0.0);
}

// Records phase spans over a few plan passes and writes them as Chrome
// trace-event JSON (chrome://tracing, ui.perfetto.dev). Each trace slot is
// one thread lane, so cross-group parallelism — several `group` spans
// overlapping in time on different lanes — is directly visible, as are
// straggler workers.
int cmd_trace(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli trace");
  add_common_flags(flags);
  add_prune_flags(flags);
  add_quantize_flag(flags);
  add_tile_flag(flags);
  add_trace_flags(flags);
  flags.add_string("out", "trace.json", "Chrome trace-event JSON path");
  flags.add_string("ckpt", "", "checkpoint to load first (optional)");
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  const bool counters = flags.get_bool("counters");
  obs::Tracer& tracer = obs::Tracer::instance();
  if (!tracer.enable(static_cast<size_t>(flags.get_int("events")),
                     counters)) {
    std::fprintf(stderr,
                 "trace: profiling is compiled out; rebuild with "
                 "-DANTIDOTE_PROFILE=ON\n");
    return 1;
  }
  auto net = make_net(flags);
  if (const std::string ckpt = flags.get_string("ckpt"); !ckpt.empty()) {
    nn::load_checkpoint(*net, ckpt);
  }
  net->set_numeric_regime(regime_from_flags(flags));
  net->set_tile_policy(tile_from_flags(flags));
  bool defaulted = false;
  auto engine = make_trace_engine(flags, *net, &defaulted);
  if (defaulted) {
    std::printf(
        "trace: no drop ratios given; defaulting to --channel-drop=0.3 so "
        "mask groups appear on the timeline\n");
  }
  const int passes = flags.get_int("passes");
  plan::InferencePlan& plan = run_traced_passes(
      *net, image_size_from_flags(flags), flags.get_int("batch"),
      flags.get_int("distinct"), passes,
      static_cast<uint64_t>(flags.get_int("seed")));
  tracer.disable();
  if (counters && !obs::thread_counters().available()) {
    std::printf(
        "trace: hardware counters unavailable (container or "
        "perf_event_paranoid > 2?); spans carry timing only\n");
  }
  const std::string out = flags.get_string("out");
  const bool ok = tracer.write_chrome_trace(out, [&](int op) {
    return op >= 0 && op < static_cast<int>(plan.ops().size())
               ? plan.ops()[static_cast<size_t>(op)].name
               : std::string("op") + std::to_string(op);
  });
  if (!ok) {
    std::fprintf(stderr, "trace: failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf(
      "trace: %llu spans over %d worker lanes (%llu dropped), last pass "
      "mask groups %d -> %s (load in chrome://tracing or ui.perfetto.dev)\n",
      static_cast<unsigned long long>(tracer.total_events()),
      tracer.slots_in_use(),
      static_cast<unsigned long long>(tracer.dropped_events()),
      plan.last_mask_groups(), out.c_str());
  return 0;
}

// Prints a model's compiled InferencePlan: the fused op table with
// per-op dense FLOPs, fusion flags (+bn/+res/+relu, mN = masked by the
// gate of block N) and the exact ahead-of-time arena footprint.
int cmd_plan_dump(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli plan-dump");
  add_common_flags(flags);
  add_prune_flags(flags);
  add_quantize_flag(flags);
  add_coarsen_flag(flags);
  add_tile_flag(flags);
  add_trace_flags(flags);
  flags.add_string("ckpt", "", "checkpoint to load first (optional)");
  flags.add_bool("profile", false,
                 "run traced passes and append a per-op/per-phase profile "
                 "(self-ms, hardware counters, per-worker spread)");
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }
  const bool profile = flags.get_bool("profile");
  auto net = make_net(flags);
  if (const std::string ckpt = flags.get_string("ckpt"); !ckpt.empty()) {
    nn::load_checkpoint(*net, ckpt);
  }
  std::unique_ptr<core::DynamicPruningEngine> engine;
  bool drops_defaulted = false;
  if (profile) {
    // The profile wants the masked regime on the table, so it inherits the
    // trace commands' default-drop fallback.
    engine = make_trace_engine(flags, *net, &drops_defaulted);
  } else {
    const core::PruneSettings settings = settings_from_flags(flags, *net);
    const auto nonzero = [](const std::vector<float>& v) {
      return std::any_of(v.begin(), v.end(),
                         [](float x) { return x > 0.f; });
    };
    if (nonzero(settings.channel_drop) || nonzero(settings.spatial_drop)) {
      engine = std::make_unique<core::DynamicPruningEngine>(*net, settings);
    }
  }
  net->set_training(false);
  net->set_numeric_regime(regime_from_flags(flags));
  net->set_coarsen_policy(coarsen_from_flags(flags));
  net->set_tile_policy(tile_from_flags(flags));
  const int size = image_size_from_flags(flags);
  plan::InferencePlan& plan = net->inference_plan(3, size, size);
  std::cout << net->model_name() << " @ 3x" << size << "x" << size
            << (engine ? " (gated)" : " (dense)") << "\n"
            << plan.to_string();
  const int batch = flags.get_int("batch");
  std::printf("arena bytes: %zu @ batch 1, %zu @ batch %d\n",
              plan.arena_bytes(1), plan.arena_bytes(batch), batch);
  // Per-op kernel scratch and the arena's high-water op: which step's
  // worst-case scratch (on top of the activations and the gate outputs
  // live before it) actually sets the reserved footprint.
  std::printf("per-op kernel scratch @ batch %d:\n", batch);
  size_t peak_scratch = 0;
  const int peak_op = plan.peak_scratch_op(batch, &peak_scratch);
  for (size_t i = 0; i < plan.ops().size(); ++i) {
    const size_t scratch = plan.op_scratch_bytes(static_cast<int>(i), batch);
    if (scratch == 0) continue;
    const plan::PlanOp& op = plan.ops()[i];
    const std::string tile_note =
        op.tile_pos > 0 ? " (tile " + std::to_string(op.tile_pos) + ")" : "";
    std::printf("  %-3zu %-18s %12zu B%s%s\n", i, op.name.c_str(), scratch,
                tile_note.c_str(),
                static_cast<int>(i) == peak_op ? "  <- arena peak" : "");
  }
  if (peak_op < 0) {
    std::printf("  arena peak set by activations + gate outputs "
                "(no kernel scratch on top)\n");
  }
  if (!profile) return 0;

  // Counters are always attempted under --profile (they degrade to "-"
  // columns when perf_event is unavailable); --counters only matters for
  // the `trace` command, whose default is timing-only.
  obs::Tracer& tracer = obs::Tracer::instance();
  if (!tracer.enable(static_cast<size_t>(flags.get_int("events")), true)) {
    std::fprintf(stderr,
                 "plan-dump: --profile needs profiling compiled in; "
                 "rebuild with -DANTIDOTE_PROFILE=ON\n");
    return 1;
  }
  if (drops_defaulted) {
    std::printf(
        "profile: no drop ratios given; defaulting to --channel-drop=0.3 "
        "so the masked phases show up\n");
  }
  const int passes = flags.get_int("passes");
  run_traced_passes(*net, size, batch, flags.get_int("distinct"), passes,
                    static_cast<uint64_t>(flags.get_int("seed")));
  tracer.disable();
  if (!obs::thread_counters().available()) {
    std::printf(
        "profile: hardware counters unavailable (container or "
        "perf_event_paranoid > 2?); timing columns only\n");
  }
  print_profile_report(plan, passes);
  if (engine != nullptr) {
    print_coarsen_report(*net, plan, size, batch, flags.get_int("distinct"),
                         passes, static_cast<uint64_t>(flags.get_int("seed")));
  }
  return 0;
}

// Runs a load generator against an in-process InferenceServer. The
// default is closed-loop: `--clients` threads each keep exactly one
// request in flight, so offered load adapts to what the server sustains
// and queue backpressure is exercised rather than overflowed.
// --adversarial switches the clients to hostile traffic (worst-case mask
// diversity, compute inflation, open-loop bursts; see
// serving/adversarial.h), the workload the admission/cap hardening knobs
// (--admission-ms, --compute-cap, --deadline-ms) exist to survive.
int cmd_serve_bench(const std::vector<std::string>& args) {
  FlagSet flags("antidote_cli serve-bench");
  add_common_flags(flags);
  add_prune_flags(flags);
  add_quantize_flag(flags);
  add_coarsen_flag(flags);
  add_tile_flag(flags);
  flags.add_string("ckpt", "", "checkpoint loaded into every replica "
                   "(optional; random init otherwise)");
  flags.add_int("workers", 1, "batch workers (one model replica each)");
  flags.add_int("max-batch", 8, "micro-batching: max requests per batch");
  flags.add_double("max-wait-ms", 2.0,
                   "micro-batching: max hold time for an under-full batch");
  flags.add_int("queue-capacity", 64, "request queue bound (backpressure)");
  flags.add_double("budget-ms", 0.0,
                   "p95 batch-latency budget for the controller "
                   "(0 = fixed ratios, no latency control)");
  flags.add_int("clients", 8, "closed-loop client threads");
  flags.add_int("requests", 512, "measured requests");
  flags.add_int("warmup", 64, "requests served before stats reset");
  flags.add_string("adversarial", "off",
                   "worst-case workload profile: off | masks | compute | "
                   "burst | mixed (see docs/serving.md)");
  flags.add_double("admission-ms", 0.0,
                   "cost-aware admission budget: shed a submit when the "
                   "predicted queue drain exceeds this "
                   "(0 = off; needs --budget-ms for the cost model)");
  flags.add_double("compute-cap", 1.0,
                   "per-request kept-MAC ceiling enforced by the plan "
                   "executor; masks over the cap are clamped and counted "
                   "(1.0 = uncapped)");
  flags.add_double("deadline-ms", 0.0,
                   "per-request deadline; requests already dead at dequeue "
                   "are answered unexecuted (0 = none)");
  flags.add_string("json", "",
                   "write a BENCH JSON summary (seeded meta + overload "
                   "metrics) to this path");
  flags.parse(args);
  if (flags.help_requested()) {
    std::cout << flags.usage();
    return 0;
  }

  const int image_size = image_size_from_flags(flags);
  const int num_classes = flags.get_int("classes");
  const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed"));
  const std::string ckpt = flags.get_string("ckpt");
  const std::string model = flags.get_string("model");
  const float width = static_cast<float>(flags.get_double("width"));

  // Settings shape needs a model; probe one, then hand the settings to the
  // server config and build identical replicas from the factory.
  auto probe = [&] {
    Rng rng(seed);
    return models::make_model(model, num_classes, width, rng);
  }();
  core::PruneSettings prune = settings_from_flags(flags, *probe);
  probe.reset();

  serving::ServerConfig config;
  config.policy.num_workers = flags.get_int("workers");
  config.policy.max_batch = flags.get_int("max-batch");
  config.policy.max_wait = std::chrono::microseconds(
      static_cast<int64_t>(flags.get_double("max-wait-ms") * 1000.0));
  config.queue_capacity =
      static_cast<size_t>(flags.get_int("queue-capacity"));
  // Serve densely (no gates at all) unless pruning is actually requested;
  // zero-drop gates would still pay the attention overhead every forward.
  const double budget_ms = flags.get_double("budget-ms");
  const auto nonzero = [](const std::vector<float>& v) {
    return std::any_of(v.begin(), v.end(), [](float x) { return x > 0.f; });
  };
  if (budget_ms > 0.0 || nonzero(prune.channel_drop) ||
      nonzero(prune.spatial_drop)) {
    config.prune = prune;
  }
  if (budget_ms > 0.0) {
    serving::LatencyController::Config lc;
    lc.target_p95_ms = budget_ms;
    config.latency = lc;
  }
  const double admission_ms = flags.get_double("admission-ms");
  if (admission_ms > 0.0) {
    AD_CHECK_GT(budget_ms, 0.0)
        << " --admission-ms needs --budget-ms: the latency controller's "
           "cost model is what prices a queued request";
    config.admission.enabled = true;
    config.admission.max_queue_ms = admission_ms;
  }
  config.compute_cap = flags.get_double("compute-cap");

  const plan::NumericRegime regime = regime_from_flags(flags);
  const plan::CoarsenPolicy coarsen = coarsen_from_flags(flags);
  const plan::TilePolicy tile = tile_from_flags(flags);
  serving::InferenceServer server(
      [&](int replica) {
        Rng rng(seed);  // same seed: every replica gets the same weights
        auto net = models::make_model(model, num_classes, width, rng);
        if (!ckpt.empty()) nn::load_checkpoint(*net, ckpt);
        // Replicas compile their plans lazily per shape; the regime,
        // coarsening and tiling policies set here apply to every one of
        // them, so quantized serving never executes an f32 conv pass
        // first, --coarsen=off replicas are never coarsened, and the
        // tile policy shapes each replica's reserved arena.
        net->set_numeric_regime(regime);
        net->set_coarsen_policy(coarsen);
        net->set_tile_policy(tile);
        (void)replica;
        return net;
      },
      config);

  // Warm-up and measured phases run back to back but fully separated, so
  // the measured stats never mix with warm-up requests. Each client thread
  // drives its own seeded AdversarialGenerator (profile `off` degenerates
  // to the plain closed-loop randn stream), so a run is reproducible from
  // (--seed, client id, request index) alone. Burst pacing fires open-loop
  // try_submit volleys — sheds and rejections are the point — while the
  // other profiles stay closed-loop.
  const int num_clients = flags.get_int("clients");
  const serving::AdversarialProfile adversarial =
      serving::adversarial_profile_from_name(flags.get_string("adversarial"));
  const double deadline_ms = flags.get_double("deadline-ms");
  auto run_phase = [&](int request_count, uint64_t seed_base) {
    std::atomic<int> issued{0};
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(num_clients));
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        serving::AdversarialGenerator gen(
            3, image_size, image_size, adversarial,
            seed_base + static_cast<uint64_t>(c));
        const auto deadline =
            [&]() -> std::optional<serving::Clock::time_point> {
          if (deadline_ms <= 0.0) return std::nullopt;
          return serving::Clock::now() +
                 std::chrono::microseconds(
                     static_cast<int64_t>(deadline_ms * 1000.0));
        };
        bool done = false;
        while (!done) {
          const serving::AdversarialPacing pacing =
              gen.pacing(server.queue().capacity());
          if (pacing.open_loop) {
            // Coordinated volley: fire without waiting, then drain what
            // was admitted so the phase's request accounting stays exact.
            std::vector<std::future<serving::InferenceResult>> volley;
            volley.reserve(static_cast<size_t>(pacing.burst));
            for (int b = 0; b < pacing.burst; ++b) {
              if (issued.fetch_add(1) >= request_count) {
                done = true;
                break;
              }
              auto future = server.try_submit(gen.next_input(), deadline());
              if (future.valid()) volley.push_back(std::move(future));
            }
            for (auto& f : volley) f.get();
          } else {
            if (issued.fetch_add(1) >= request_count) break;
            auto future = server.submit(gen.next_input(), deadline());
            if (!future.valid()) {
              if (server.queue().closed()) break;  // server shut down
              continue;  // shed by admission control; counted server-side
            }
            future.get();
          }
          if (pacing.gap.count() > 0) std::this_thread::sleep_for(pacing.gap);
        }
      });
    }
    for (std::thread& t : clients) t.join();
  };
  run_phase(flags.get_int("warmup"), seed * 1000003ULL);
  server.stats().reset();
  if (serving::LatencyController* lc = server.controller()) {
    lc->reset_keep_summary();
  }
  const int measured = flags.get_int("requests");
  WallTimer run_timer;
  run_phase(measured, seed * 2000003ULL);
  const double measured_seconds = run_timer.seconds();
  server.shutdown();

  server.stats().to_table().emit("serve-bench (" + model + ", " +
                                 std::to_string(num_clients) + " clients)");
  if (serving::LatencyController* lc = server.controller()) {
    const auto keep = lc->keep_summary();
    std::printf("latency controller: budget %.2f ms, window p95 %.2f ms, "
                "drop offset %+.2f\n",
                budget_ms, lc->p95_ms(), lc->offset());
    std::printf("accuracy proxy: mean channel keep %.3f, "
                "mean spatial keep %.3f over %llu samples\n",
                keep.mean_channel_keep, keep.mean_spatial_keep,
                static_cast<unsigned long long>(keep.samples));
  }
  std::printf("measured: %d requests in %.2f s\n", measured,
              measured_seconds);
  const serving::ServerStats::Snapshot snap = server.stats().snapshot();
  if (adversarial != serving::AdversarialProfile::kOff) {
    std::printf(
        "adversarial: profile %s, seed %llu — shed %llu, capped %llu, "
        "expired %llu of %llu offered\n",
        serving::adversarial_profile_name(adversarial),
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(snap.shed),
        static_cast<unsigned long long>(snap.capped_requests),
        static_cast<unsigned long long>(snap.expired_unexecuted),
        static_cast<unsigned long long>(snap.offered_requests));
  }
  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    AD_CHECK(f != nullptr) << " serve-bench: cannot write " << json_path;
    std::fprintf(
        f,
        "{\n"
        "  \"meta\": {\"bench\": \"serve_bench\", \"model\": \"%s\", "
        "\"adversarial\": \"%s\", \"seed\": %llu, \"clients\": %d, "
        "\"workers\": %d, \"max_batch\": %d, \"budget_ms\": %.3f, "
        "\"admission_ms\": %.3f, \"compute_cap\": %.3f, "
        "\"deadline_ms\": %.3f},\n"
        "  \"metrics\": {\"completed\": %llu, \"offered\": %llu, "
        "\"throughput_rps\": %.3f, \"e2e_p50_ms\": %.4f, "
        "\"e2e_p95_ms\": %.4f, \"e2e_p99_ms\": %.4f, \"shed\": %llu, "
        "\"shed_rate_pct\": %.3f, \"rejected\": %llu, \"capped\": %llu, "
        "\"capped_rate_pct\": %.3f, \"expired_unexecuted\": %llu, "
        "\"expired_rate_pct\": %.3f, \"deadline_misses\": %llu, "
        "\"measured_s\": %.3f}\n"
        "}\n",
        model.c_str(), serving::adversarial_profile_name(adversarial),
        static_cast<unsigned long long>(seed), num_clients,
        config.policy.num_workers, config.policy.max_batch, budget_ms,
        admission_ms, config.compute_cap, deadline_ms,
        static_cast<unsigned long long>(snap.completed_requests),
        static_cast<unsigned long long>(snap.offered_requests),
        snap.throughput_rps, snap.e2e_p50_ms, snap.e2e_p95_ms,
        snap.e2e_p99_ms, static_cast<unsigned long long>(snap.shed),
        snap.shed_rate_pct, static_cast<unsigned long long>(snap.rejected),
        static_cast<unsigned long long>(snap.capped_requests),
        snap.capped_rate_pct,
        static_cast<unsigned long long>(snap.expired_unexecuted),
        snap.expired_rate_pct,
        static_cast<unsigned long long>(snap.deadline_misses),
        measured_seconds);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

struct CommandEntry {
  const char* name;
  int (*run)(const std::vector<std::string>&);
  const char* help;
};

constexpr CommandEntry kCommands[] = {
    {"summary", cmd_summary,
     "print a layer table (params, MACs) for a model"},
    {"train", cmd_train, "train a model on a synthetic dataset"},
    {"ttd", cmd_ttd, "training with targeted dropout + ratio ascent"},
    {"eval", cmd_eval, "evaluate a checkpoint under dynamic pruning"},
    {"sensitivity", cmd_sensitivity,
     "per-block (or per-site) pruning sensitivity sweep"},
    {"plan-dump", cmd_plan_dump,
     "print a model's compiled inference plan (fused ops, FLOPs, arena); "
     "--profile adds per-op/per-phase timings and hardware counters"},
    {"trace", cmd_trace,
     "record plan passes and write a Chrome trace-event JSON timeline"},
    {"serve-bench", cmd_serve_bench,
     "load test of the batched serving runtime; --adversarial switches to "
     "hostile traffic (mask diversity, compute inflation, bursts)"},
};

std::string usage_text() {
  std::string usage = "usage: antidote_cli <command> [flags]\ncommands:\n";
  for (const CommandEntry& c : kCommands) {
    std::string line = "  ";
    line += c.name;
    line.append(line.size() < 15 ? 15 - line.size() : 1, ' ');
    usage += line + c.help + "\n";
  }
  usage += "run `antidote_cli <command> --help` for the command's flags\n";
  return usage;
}

// Edit distance for did-you-mean suggestions on unknown commands.
size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t next =
          std::min({row[j] + 1, row[j - 1] + 1,
                    diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

}  // namespace

int run_cli(const std::vector<std::string>& args) {
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "-h") {
      std::cout << usage_text();
      return args.empty() ? 1 : 0;
    }
    const std::string command = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    for (const CommandEntry& c : kCommands) {
      if (command == c.name) return c.run(rest);
    }
    std::cerr << "unknown command: " << command << "\n";
    const CommandEntry* closest = nullptr;
    size_t best = std::string::npos;
    for (const CommandEntry& c : kCommands) {
      const size_t d = edit_distance(command, c.name);
      if (best == std::string::npos || d < best) {
        best = d;
        closest = &c;
      }
    }
    if (closest != nullptr && best <= 3) {
      std::cerr << "did you mean '" << closest->name << "'?\n";
    }
    std::cerr << usage_text();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace antidote::cli
