// Entry point for the antidote_cli tool; all logic lives in tools/cli.cc so
// the test suite can drive commands in process.
#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return antidote::cli::run_cli(args);
}
