// antidote_cli — command-line front end over the library, the way a user
// would drive it without writing C++:
//
//   antidote_cli summary     --model vgg16 --width 1.0
//   antidote_cli train       --model small_cnn --epochs 8 --out m.ckpt
//   antidote_cli ttd         --model vgg16 --channel-drop 0.2,0.2,0.6,0.9,0.9
//                            --out ttd.ckpt
//   antidote_cli eval        --model vgg16 --ckpt ttd.ckpt
//                            --channel-drop 0.2,0.2,0.6,0.9,0.9
//   antidote_cli sensitivity --model vgg16 --ckpt m.ckpt [--per-site]
//   antidote_cli serve-bench --model small_cnn --workers 2 --max-batch 8
//                            --budget-ms 5 --clients 8 --requests 512
//
// Datasets are the synthetic generators (configurable classes/size/counts);
// checkpoints use the library's binary format. `run_cli` is exposed so the
// test suite can drive the tool in process. Unknown subcommands print the
// usage plus a did-you-mean suggestion for the closest command name.
#pragma once

#include <string>
#include <vector>

namespace antidote::cli {

// Returns the process exit code (0 = success). Errors print a message to
// stderr and return 1; `--help` prints usage and returns 0.
int run_cli(const std::vector<std::string>& args);

}  // namespace antidote::cli
