// Datasets: synthetic generator properties, augmentation, dataloader
// batching, and the CIFAR binary-format loader (exercised on generated
// files so the real archives are not required).
#include <gtest/gtest.h>

#include <cmath>

#include <filesystem>
#include <fstream>
#include <set>

#include "base/error.h"
#include "data/augment.h"
#include "data/cifar.h"
#include "data/dataloader.h"
#include "data/synthetic.h"
#include "tensor/ops.h"

namespace antidote::data {
namespace {

SyntheticSpec tiny_spec() {
  SyntheticSpec s;
  s.name = "tiny";
  s.num_classes = 4;
  s.height = s.width = 16;
  s.train_size = 64;
  s.test_size = 32;
  return s;
}

TEST(Synthetic, ShapesAndLabels) {
  const auto pair = make_synthetic_pair(tiny_spec());
  EXPECT_EQ(pair.train->size(), 64);
  EXPECT_EQ(pair.test->size(), 32);
  EXPECT_EQ(pair.train->num_classes(), 4);
  EXPECT_EQ(pair.train->sample_shape(), (std::vector<int>{3, 16, 16}));
  for (int i = 0; i < pair.train->size(); ++i) {
    const Sample s = pair.train->get(i);
    EXPECT_EQ(s.image.shape(), (std::vector<int>{3, 16, 16}));
    EXPECT_GE(s.label, 0);
    EXPECT_LT(s.label, 4);
  }
}

TEST(Synthetic, ClassesAreBalanced) {
  const auto pair = make_synthetic_pair(tiny_spec());
  std::vector<int> counts(4, 0);
  for (int i = 0; i < pair.train->size(); ++i) {
    ++counts[static_cast<size_t>(pair.train->get(i).label)];
  }
  for (int c : counts) EXPECT_EQ(c, 16);
}

TEST(Synthetic, DeterministicForSameSeed) {
  const auto a = make_synthetic_pair(tiny_spec());
  const auto b = make_synthetic_pair(tiny_spec());
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ops::allclose(a.train->get(i).image, b.train->get(i).image,
                              0.f, 0.f));
  }
}

TEST(Synthetic, DifferentSeedsProduceDifferentData) {
  SyntheticSpec s2 = tiny_spec();
  s2.seed = 999;
  const auto a = make_synthetic_pair(tiny_spec());
  const auto b = make_synthetic_pair(s2);
  EXPECT_GT(ops::max_abs_diff(a.train->get(0).image, b.train->get(0).image),
            0.01f);
}

TEST(Synthetic, SameClassSamplesShareStructure) {
  // Same-class samples must correlate more strongly with each other than
  // with other classes (otherwise nothing is learnable).
  const auto pair = make_synthetic_pair(tiny_spec());
  auto correlation = [](const Tensor& a, const Tensor& b) {
    double dot = 0, na = 0, nb = 0;
    for (int64_t i = 0; i < a.size(); ++i) {
      dot += double(a[i]) * b[i];
      na += double(a[i]) * a[i];
      nb += double(b[i]) * b[i];
    }
    return dot / std::sqrt(na * nb + 1e-12);
  };
  // Samples 0 and 4 are class 0; sample 1 is class 1 (labels are i % C).
  const Tensor c0a = pair.train->get(0).image;
  const Tensor c0b = pair.train->get(4).image;
  const Tensor c1 = pair.train->get(1).image;
  EXPECT_GT(correlation(c0a, c0b), correlation(c0a, c1));
}

TEST(Synthetic, TrainTestDistributionsMatch) {
  // A test sample of class k should correlate with a train sample of the
  // same class — the split shares templates.
  const auto pair = make_synthetic_pair(tiny_spec());
  auto correlation = [](const Tensor& a, const Tensor& b) {
    double dot = 0, na = 0, nb = 0;
    for (int64_t i = 0; i < a.size(); ++i) {
      dot += double(a[i]) * b[i];
      na += double(a[i]) * a[i];
      nb += double(b[i]) * b[i];
    }
    return dot / std::sqrt(na * nb + 1e-12);
  };
  EXPECT_GT(correlation(pair.train->get(0).image, pair.test->get(0).image),
            0.3);
}

TEST(Synthetic, PresetsMatchPaperDatasets) {
  EXPECT_EQ(SyntheticSpec::cifar10_like().num_classes, 10);
  EXPECT_EQ(SyntheticSpec::cifar10_like().height, 32);
  EXPECT_EQ(SyntheticSpec::cifar100_like().num_classes, 100);
  EXPECT_EQ(SyntheticSpec::imagenet100_like().num_classes, 100);
  EXPECT_GT(SyntheticSpec::imagenet100_like().height,
            SyntheticSpec::cifar100_like().height);
}

TEST(InMemoryDataset, ValidatesConstruction) {
  std::vector<Tensor> images;
  images.push_back(Tensor({3, 4, 4}));
  EXPECT_THROW(InMemoryDataset("x", {3, 4, 4}, 2, std::move(images), {5}),
               Error);  // label out of range
  std::vector<Tensor> images2;
  images2.push_back(Tensor({3, 5, 5}));
  EXPECT_THROW(InMemoryDataset("x", {3, 4, 4}, 2, std::move(images2), {0}),
               Error);  // shape mismatch
}

// --- augmentation ---

TEST(Augment, HflipMirrorsColumns) {
  Tensor img = Tensor::from_values({1, 1, 3}, {1, 2, 3});
  Tensor flipped = hflip(img);
  EXPECT_FLOAT_EQ(flipped.at({0, 0, 0}), 3.f);
  EXPECT_FLOAT_EQ(flipped.at({0, 0, 2}), 1.f);
}

TEST(Augment, HflipIsInvolution) {
  Rng rng(1);
  Tensor img = Tensor::randn({3, 8, 8}, rng);
  EXPECT_TRUE(ops::allclose(hflip(hflip(img)), img, 0.f, 0.f));
}

TEST(Augment, CenteredPadCropIsIdentity) {
  Rng rng(2);
  Tensor img = Tensor::randn({3, 8, 8}, rng);
  Tensor out = pad_crop(img, 4, 4, 4);
  EXPECT_TRUE(ops::allclose(out, img, 0.f, 0.f));
}

TEST(Augment, CornerCropShiftsAndZeroPads) {
  Tensor img = Tensor::ones({1, 4, 4});
  // offset (0,0) shifts content down-right by pad; top-left rows/cols zero.
  Tensor out = pad_crop(img, 2, 0, 0);
  EXPECT_EQ(out.at({0, 0, 0}), 0.f);
  EXPECT_EQ(out.at({0, 1, 1}), 0.f);
  EXPECT_EQ(out.at({0, 2, 2}), 1.f);
}

TEST(Augment, OffsetsOutOfRangeThrow) {
  Tensor img({1, 4, 4});
  EXPECT_THROW(pad_crop(img, 2, 5, 0), Error);
}

TEST(Augment, PreservesShape) {
  Rng rng(3);
  AugmentConfig cfg;
  Tensor img = Tensor::randn({3, 12, 12}, rng);
  for (int i = 0; i < 10; ++i) {
    Tensor out = augment(img, cfg, rng);
    EXPECT_EQ(out.shape(), img.shape());
  }
}

// --- dataloader ---

TEST(DataLoader, BatchesCoverDatasetWithoutShuffle) {
  const auto pair = make_synthetic_pair(tiny_spec());
  DataLoader loader(*pair.test, 10, /*shuffle=*/false);
  EXPECT_EQ(loader.num_batches(), 4);  // 32 samples / 10 -> 3 full + 2
  int total = 0;
  for (int b = 0; b < loader.num_batches(); ++b) {
    Batch batch = loader.batch(b);
    EXPECT_EQ(batch.images.dim(0), batch.size());
    total += batch.size();
  }
  EXPECT_EQ(total, 32);
  // Without shuffle, batch 0 sample 0 is dataset sample 0.
  Batch first = loader.batch(0);
  EXPECT_EQ(first.labels[0], pair.test->get(0).label);
}

TEST(DataLoader, ShuffleChangesOrderDeterministically) {
  const auto pair = make_synthetic_pair(tiny_spec());
  DataLoader a(*pair.train, 64, /*shuffle=*/true, /*seed=*/5);
  DataLoader b(*pair.train, 64, /*shuffle=*/true, /*seed=*/5);
  Batch ba = a.batch(0);
  Batch bb = b.batch(0);
  EXPECT_EQ(ba.labels, bb.labels);  // same seed, same order

  DataLoader c(*pair.train, 64, /*shuffle=*/true, /*seed=*/99);
  Batch bc = c.batch(0);
  EXPECT_NE(ba.labels, bc.labels);  // different seed
}

TEST(DataLoader, NewEpochReshuffles) {
  const auto pair = make_synthetic_pair(tiny_spec());
  DataLoader loader(*pair.train, 64, /*shuffle=*/true, /*seed=*/5);
  Batch e1 = loader.batch(0);
  loader.new_epoch();
  Batch e2 = loader.batch(0);
  EXPECT_NE(e1.labels, e2.labels);
}

TEST(DataLoader, AugmentationOnlyWhenConfigured) {
  const auto pair = make_synthetic_pair(tiny_spec());
  DataLoader plain(*pair.train, 4, /*shuffle=*/false);
  DataLoader augmented(*pair.train, 4, /*shuffle=*/false, /*seed=*/7,
                       AugmentConfig{});
  Batch a = plain.batch(0);
  Batch b = augmented.batch(0);
  // Same samples, but augmented pixels differ (crop/flip).
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_GT(ops::max_abs_diff(a.images, b.images), 1e-4f);
}

// --- CIFAR binary format ---

class CifarFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/antidote_cifar";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Writes `count` records of CIFAR-10 format (1 label byte + 3072 pixels).
  void write_batch(const std::string& name, int count, int label_bytes) {
    std::ofstream out(dir_ + "/" + name, std::ios::binary);
    for (int i = 0; i < count; ++i) {
      for (int lb = 0; lb < label_bytes; ++lb) {
        const unsigned char label = static_cast<unsigned char>(i % 10);
        out.put(static_cast<char>(label));
      }
      for (int j = 0; j < 3072; ++j) {
        out.put(static_cast<char>((i + j) % 256));
      }
    }
  }
  std::string dir_;
};

TEST_F(CifarFormatTest, AvailabilityDetection) {
  EXPECT_FALSE(cifar10_available(dir_));
  for (int i = 1; i <= 5; ++i) {
    write_batch("data_batch_" + std::to_string(i) + ".bin", 4, 1);
  }
  EXPECT_FALSE(cifar10_available(dir_));  // test batch still missing
  write_batch("test_batch.bin", 4, 1);
  EXPECT_TRUE(cifar10_available(dir_));
}

TEST_F(CifarFormatTest, LoadsCifar10Layout) {
  for (int i = 1; i <= 5; ++i) {
    write_batch("data_batch_" + std::to_string(i) + ".bin", 6, 1);
  }
  write_batch("test_batch.bin", 4, 1);
  const DatasetPair pair = load_cifar10(dir_);
  EXPECT_EQ(pair.train->size(), 30);
  EXPECT_EQ(pair.test->size(), 4);
  EXPECT_EQ(pair.train->num_classes(), 10);
  EXPECT_EQ(pair.train->get(3).label, 3);
  EXPECT_EQ(pair.train->get(0).image.shape(), (std::vector<int>{3, 32, 32}));
}

TEST_F(CifarFormatTest, LoadsCifar100Layout) {
  write_batch("train.bin", 8, 2);
  write_batch("test.bin", 2, 2);
  EXPECT_TRUE(cifar100_available(dir_));
  const DatasetPair pair = load_cifar100(dir_);
  EXPECT_EQ(pair.train->size(), 8);
  EXPECT_EQ(pair.train->num_classes(), 100);
}

TEST_F(CifarFormatTest, MalformedFileThrows) {
  std::ofstream out(dir_ + "/test_batch.bin", std::ios::binary);
  out.put(1);  // truncated record
  out.close();
  for (int i = 1; i <= 5; ++i) {
    write_batch("data_batch_" + std::to_string(i) + ".bin", 2, 1);
  }
  EXPECT_THROW(load_cifar10(dir_), Error);
}

TEST(Cifar, MissingDirectoryThrows) {
  EXPECT_THROW(load_cifar10("/nonexistent/dir"), Error);
}

}  // namespace
}  // namespace antidote::data
