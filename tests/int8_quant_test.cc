// Int8 regime semantics above the kernel layer: quantize -> dequantize
// round-trip error bounds, zero-row and clamp edge cases, the 4-way LRU
// weight-panel cache (hit behaviour at <= kWays distinct masks, LRU
// thrash beyond, and the cold-vs-capacity miss taxonomy), the cost
// model's regime-aware bytes/MAC terms with the set_regime EWMA rescale,
// and an end-to-end small-plan check: int8 logits stay close to f32 and
// a reserved arena executes the int8 regime with zero growths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "core/engine.h"
#include "models/factory.h"
#include "nn/conv_kernels.h"
#include "nn/execution_context.h"
#include "nn/int8_kernels.h"
#include "plan/plan.h"
#include "tensor/tensor.h"

namespace antidote {
namespace {

std::vector<float> random_vec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

TEST(Int8Quant, WeightRoundTripWithinHalfScale) {
  Rng rng(61);
  const int rows = 9;
  const int64_t k = 23;  // ragged: row_stride pads to 24
  const auto w = random_vec(static_cast<size_t>(rows) * k, rng);
  const int64_t stride = nn::int8_align4(k);
  std::vector<int8_t> q(static_cast<size_t>(rows) * stride, 99);
  std::vector<float> scale(rows);
  std::vector<int32_t> wsum(rows);
  nn::quantize_weights_rowwise(w.data(), rows, k, q.data(), stride,
                               scale.data(), wsum.data());
  for (int r = 0; r < rows; ++r) {
    float maxabs = 0.f;
    for (int64_t i = 0; i < k; ++i) {
      maxabs = std::max(maxabs, std::abs(w[static_cast<size_t>(r) * k + i]));
    }
    EXPECT_NEAR(scale[r], maxabs / 127.f, 1e-7f * maxabs) << "row " << r;
    int32_t sum = 0;
    for (int64_t i = 0; i < stride; ++i) {
      const int8_t qi = q[static_cast<size_t>(r) * stride + i];
      sum += qi;
      if (i >= k) {
        EXPECT_EQ(qi, 0) << "pad byte row " << r << " i " << i;
        continue;
      }
      EXPECT_GE(qi, -127);
      EXPECT_LE(qi, 127);
      // Symmetric nearest quantization: the reconstruction error is at
      // most half a quantization step.
      EXPECT_LE(std::abs(w[static_cast<size_t>(r) * k + i] -
                         float(qi) * scale[r]),
                scale[r] * 0.5f + 1e-7f)
          << "row " << r << " i " << i;
    }
    EXPECT_EQ(wsum[r], sum) << "row " << r;
  }
}

TEST(Int8Quant, WeightZeroRowGetsUnitScale) {
  const int rows = 2;
  const int64_t k = 5;
  std::vector<float> w(static_cast<size_t>(rows) * k, 0.f);
  w[static_cast<size_t>(k)] = 3.f;  // row 1 non-zero, row 0 all zero
  const int64_t stride = nn::int8_align4(k);
  std::vector<int8_t> q(static_cast<size_t>(rows) * stride, 99);
  std::vector<float> scale(rows);
  std::vector<int32_t> wsum(rows);
  nn::quantize_weights_rowwise(w.data(), rows, k, q.data(), stride,
                               scale.data(), wsum.data());
  // All-zero rows take scale 1.0 (not 0) so the dequant multiply is
  // well-defined; their bytes and wsum are all zero.
  EXPECT_EQ(scale[0], 1.f);
  EXPECT_EQ(wsum[0], 0);
  for (int64_t i = 0; i < stride; ++i) EXPECT_EQ(q[static_cast<size_t>(i)], 0);
  EXPECT_EQ(q[static_cast<size_t>(stride)], 127);  // 3.0 / (3.0/127)
}

TEST(Int8Quant, ActivationRoundTripWithinHalfScale) {
  Rng rng(62);
  const int64_t k = 14, n = 19;
  const auto b = random_vec(static_cast<size_t>(k * n), rng);
  const int64_t k4 = nn::int8_align4(k);
  std::vector<uint8_t> qb(static_cast<size_t>(k4 * n), 0);
  const float sa = nn::quantize_activations(b.data(), k, n, qb.data());
  float maxabs = 0.f;
  for (const float x : b) maxabs = std::max(maxabs, std::abs(x));
  EXPECT_NEAR(sa, maxabs / 127.f, 1e-7f * maxabs);
  // Decode the VNNI layout: row 4*kq+t of column j lives at
  // qb[(kq*n + j)*4 + t], biased by 128.
  for (int64_t r = 0; r < k4; ++r) {
    for (int64_t j = 0; j < n; ++j) {
      const uint8_t byte = qb[static_cast<size_t>(((r / 4) * n + j) * 4 +
                                                  (r % 4))];
      const int qv = int(byte) - 128;
      if (r >= k) {
        EXPECT_EQ(qv, 0) << "pad row " << r;
        continue;
      }
      EXPECT_GE(qv, -127);
      EXPECT_LE(qv, 127);
      EXPECT_LE(std::abs(b[static_cast<size_t>(r * n + j)] - float(qv) * sa),
                sa * 0.5f + 1e-7f)
          << "row " << r << " col " << j;
    }
  }
}

// --- weight-panel cache ----------------------------------------------------

struct CacheFixture {
  static constexpr int kOutC = 8, kInC = 6, kKk = 9;
  std::vector<float> w;
  nn::Int8ConvWeights qw;
  nn::WeightPanelCache cache;
  std::vector<int> all_out;

  CacheFixture() {
    Rng rng(63);
    w = random_vec(static_cast<size_t>(kOutC) * kInC * kKk, rng);
    nn::quantize_conv_weights(w.data(), kOutC, kInC, kKk, qw);
    cache.prepare(kOutC, kInC, kKk, /*int8_regime=*/true);
    for (int i = 0; i < kOutC; ++i) all_out.push_back(i);
  }

  void pack(const std::vector<int>& ch) {
    const float* p = nn::pack_weight_panel(w.data(), kInC, kKk, ch, all_out,
                                           /*spatial_layout=*/false, cache);
    ASSERT_NE(p, nullptr);
  }
};

TEST(Int8Quant, PanelCacheHitsUpToFourAlternatingMasks) {
  CacheFixture f;
  // kWays distinct kept sets interleave within a pass (the executor walks
  // groups in bucket order); after the first pass every pack must hit.
  const std::vector<std::vector<int>> sets = {
      {0, 1, 2}, {1, 2, 3}, {2, 3, 4, 5}, {0, 5}};
  ASSERT_EQ(sets.size(), size_t{nn::WeightPanelCache::kWays});
  for (const auto& s : sets) f.pack(s);
  EXPECT_EQ(f.cache.misses.get(), 4);
  EXPECT_EQ(f.cache.cold_misses.get(), 4);
  EXPECT_EQ(f.cache.capacity_misses.get(), 0);
  EXPECT_EQ(f.cache.hits.get(), 0);
  EXPECT_EQ(f.cache.evictions.get(), 0);
  for (int pass = 0; pass < 3; ++pass) {
    for (const auto& s : sets) f.pack(s);
  }
  EXPECT_EQ(f.cache.misses.get(), 4);
  EXPECT_EQ(f.cache.hits.get(), 12);
}

TEST(Int8Quant, PanelCacheClassifiesThrashAsCapacityMisses) {
  CacheFixture f;
  // kWays + 1 distinct sets cycled in order is the LRU worst case: every
  // pack evicts the next set needed, so the steady state is all misses —
  // and every one of them must be classified *capacity* (the key was
  // cached before), not cold.
  const std::vector<std::vector<int>> sets = {
      {0}, {1}, {2}, {3}, {4}};
  for (const auto& s : sets) f.pack(s);  // pass 1: cold
  EXPECT_EQ(f.cache.cold_misses.get(), 5);
  EXPECT_EQ(f.cache.capacity_misses.get(), 0);
  EXPECT_EQ(f.cache.evictions.get(), 1);  // the 5th insert evicted set 0
  for (const auto& s : sets) f.pack(s);  // pass 2: pure thrash
  EXPECT_EQ(f.cache.hits.get(), 0);
  EXPECT_EQ(f.cache.cold_misses.get(), 5);
  EXPECT_EQ(f.cache.capacity_misses.get(), 5);
  EXPECT_EQ(f.cache.misses.get(), 10);
}

TEST(Int8Quant, PanelCacheKeySeparatesInt8FromF32) {
  CacheFixture f;
  const std::vector<int> ch = {0, 2, 4};
  f.pack(ch);  // f32 panel
  const nn::Int8Panel p =
      nn::pack_weight_panel_i8(f.qw, CacheFixture::kKk, ch, f.all_out,
                               f.cache);
  ASSERT_NE(p.panel, nullptr);
  ASSERT_NE(p.wsum, nullptr);
  ASSERT_NE(p.scale, nullptr);
  // Same kept sets, different regime: a distinct entry, not a false hit.
  EXPECT_EQ(f.cache.hits.get(), 0);
  EXPECT_EQ(f.cache.misses.get(), 2);
  // Second int8 pack of the same sets hits.
  nn::pack_weight_panel_i8(f.qw, CacheFixture::kKk, ch, f.all_out, f.cache);
  EXPECT_EQ(f.cache.hits.get(), 1);
}

// --- plan-level regime ------------------------------------------------------

TEST(Int8Quant, CostModelBytesPerMacAndEwmaRescale) {
  Rng rng(64);
  auto net = models::make_model("small_cnn", 10, 1.0f, rng);
  net->set_training(false);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  nn::ExecutionContext ctx;
  ctx.begin_pass();
  net->forward(x, ctx);  // populate the conv-step EWMAs
  plan::InferencePlan& plan = net->inference_plan(3, 16, 16);
  const auto f32_costs = plan.cost_snapshot();
  plan.set_regime(plan::NumericRegime::kInt8);
  const auto i8_costs = plan.cost_snapshot();
  ASSERT_EQ(f32_costs.size(), i8_costs.size());
  int convs = 0;
  for (size_t i = 0; i < f32_costs.size(); ++i) {
    const plan::OpCost& a = f32_costs[i];
    const plan::OpCost& b = i8_costs[i];
    if (a.kind != plan::OpKind::kConv) {
      EXPECT_EQ(b.bytes_per_mac, 0.0) << a.name;
      continue;
    }
    ++convs;
    EXPECT_EQ(a.regime, plan::NumericRegime::kF32) << a.name;
    EXPECT_EQ(b.regime, plan::NumericRegime::kInt8) << b.name;
    // Int8 shrinks the weight and im2col operand terms 4x; the f32
    // output term stays, so the ratio lands strictly between 1/4 and 1.
    EXPECT_GT(a.bytes_per_mac, 0.0) << a.name;
    EXPECT_LT(b.bytes_per_mac, a.bytes_per_mac) << a.name;
    EXPECT_GT(b.bytes_per_mac, a.bytes_per_mac / 4.0) << a.name;
    // set_regime carries the learned timing across the switch by scaling
    // the EWMA with the bytes/MAC ratio.
    if (a.ewma_ms > 0.0) {
      const double expect = a.ewma_ms * (b.bytes_per_mac / a.bytes_per_mac);
      EXPECT_NEAR(b.ewma_ms, expect, 1e-9 + 1e-6 * expect) << a.name;
    }
  }
  EXPECT_GE(convs, 2);
}

TEST(Int8Quant, Int8PlanStaysCloseToF32WithZeroGrowthsReserved) {
  Rng rng(65);
  auto net = models::make_model("small_cnn", 10, 1.0f, rng);
  net->set_training(false);
  const int batch = 4;
  Tensor x = Tensor::randn({batch, 3, 16, 16}, rng);

  nn::ExecutionContext ctx;
  ctx.begin_pass();
  const Tensor f32_y = net->forward(x, ctx).clone();

  net->set_numeric_regime(plan::NumericRegime::kInt8);
  plan::InferencePlan& plan = net->inference_plan(3, 16, 16);
  EXPECT_EQ(plan.regime(), plan::NumericRegime::kInt8);
  // Fresh context: reserve ahead of the first pass, like a serving
  // replica would (the old context's lazily-grown arena coalesces on
  // begin_pass, which counts as a growth and would muddy the assertion).
  nn::ExecutionContext i8_ctx;
  plan.reserve(i8_ctx.workspace(), batch);
  const int64_t grows = i8_ctx.workspace().grow_count();

  i8_ctx.begin_pass();
  Tensor staged = i8_ctx.alloc(x.shape());
  std::memcpy(staged.data(), x.data(),
              static_cast<size_t>(x.size()) * sizeof(float));
  const Tensor i8_y = net->forward(staged, i8_ctx);
  EXPECT_EQ(i8_ctx.workspace().grow_count(), grows);

  ASSERT_TRUE(f32_y.same_shape(i8_y));
  double max_diff = 0.0, max_ref = 0.0;
  for (int64_t i = 0; i < f32_y.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(double(f32_y[i]) - i8_y[i]));
    max_ref = std::max(max_ref, std::abs(double(f32_y[i])));
  }
  // Same relative budget as the micro_e2e accuracy gate.
  EXPECT_GT(max_ref, 0.0);
  EXPECT_LE(max_diff / max_ref, 0.05);
  // And the regime is sticky across plan refetches.
  EXPECT_EQ(net->inference_plan(3, 16, 16).regime(),
            plan::NumericRegime::kInt8);
}

}  // namespace
}  // namespace antidote
