// im2col / col2im and the gather variants that implement masked (sparse)
// convolution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "base/error.h"
#include "base/rng.h"
#include "tensor/im2col.h"

namespace antidote {
namespace {

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(ConvGeom, OutputDims) {
  ConvGeom g{3, 32, 32, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 32);
  EXPECT_EQ(g.out_w(), 32);
  EXPECT_EQ(g.patch_rows(), 27);
  EXPECT_EQ(g.out_positions(), 1024);
}

TEST(ConvGeom, StridedNoPad) {
  ConvGeom g{1, 7, 7, 3, 3, 2, 0};
  EXPECT_EQ(g.out_h(), 3);
  EXPECT_EQ(g.out_w(), 3);
}

TEST(ConvGeom, ValidateRejectsEmptyOutput) {
  ConvGeom g{1, 2, 2, 5, 5, 1, 0};
  EXPECT_THROW(g.validate(), Error);
}

TEST(Im2col, IdentityKernel1x1) {
  // With a 1x1 kernel, stride 1, no pad, cols == input.
  Rng rng(1);
  Tensor x = Tensor::randn({2, 4, 5}, rng);
  ConvGeom g{2, 4, 5, 1, 1, 1, 0};
  Tensor cols({2, 20});
  im2col(x.data(), g, cols.data());
  for (int64_t i = 0; i < x.size(); ++i) EXPECT_EQ(cols[i], x[i]);
}

TEST(Im2col, PaddingProducesZeroBorder) {
  Tensor x = Tensor::ones({1, 2, 2});
  ConvGeom g{1, 2, 2, 3, 3, 1, 1};
  Tensor cols({9, 4});
  im2col(x.data(), g, cols.data());
  // Top-left output position, kernel element (0,0) reads (-1,-1) -> 0.
  EXPECT_EQ(cols.at({0, 0}), 0.f);
  // Kernel center (1,1) at output (0,0) reads input (0,0) -> 1.
  EXPECT_EQ(cols.at({4, 0}), 1.f);
}

TEST(Im2col, KnownValuesSmall) {
  // 1x3x3 input 0..8, 2x2 kernel, stride 1, no pad -> 2x2 output.
  Tensor x = Tensor::from_values({1, 3, 3}, {0, 1, 2, 3, 4, 5, 6, 7, 8});
  ConvGeom g{1, 3, 3, 2, 2, 1, 0};
  Tensor cols({4, 4});
  im2col(x.data(), g, cols.data());
  // Row 0 = kernel (0,0): input values at the 4 output anchors.
  EXPECT_EQ(cols.at({0, 0}), 0.f);
  EXPECT_EQ(cols.at({0, 1}), 1.f);
  EXPECT_EQ(cols.at({0, 2}), 3.f);
  EXPECT_EQ(cols.at({0, 3}), 4.f);
  // Row 3 = kernel (1,1): shifted by one in both dims.
  EXPECT_EQ(cols.at({3, 0}), 4.f);
  EXPECT_EQ(cols.at({3, 3}), 8.f);
}

TEST(Im2colGather, FullIndexSetsMatchDense) {
  Rng rng(2);
  const int c = 3, h = 6, w = 5;
  Tensor x = Tensor::randn({c, h, w}, rng);
  ConvGeom g{c, h, w, 3, 3, 1, 1};
  const int64_t rows = g.patch_rows(), cols_n = g.out_positions();

  Tensor dense({static_cast<int>(rows), static_cast<int>(cols_n)});
  im2col(x.data(), g, dense.data());

  Tensor gathered({static_cast<int>(rows), static_cast<int>(cols_n)});
  const auto all_ch = iota_vec(c);
  const auto all_sp = iota_vec(static_cast<int>(cols_n));
  im2col_gather(x.data(), g, all_ch, all_sp, gathered.data());

  for (int64_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(dense[i], gathered[i]);
  }
}

TEST(Im2colGather, ChannelSubsetPicksMatchingRows) {
  Rng rng(3);
  const int c = 4, h = 4, w = 4, k = 3;
  Tensor x = Tensor::randn({c, h, w}, rng);
  ConvGeom g{c, h, w, k, k, 1, 1};
  const int64_t cols_n = g.out_positions();

  Tensor dense({static_cast<int>(g.patch_rows()), static_cast<int>(cols_n)});
  im2col(x.data(), g, dense.data());

  const std::vector<int> ch = {1, 3};
  Tensor gathered({static_cast<int>(ch.size()) * k * k,
                   static_cast<int>(cols_n)});
  im2col_gather(x.data(), g, ch, iota_vec(static_cast<int>(cols_n)),
                gathered.data());

  for (size_t ci = 0; ci < ch.size(); ++ci) {
    for (int kk = 0; kk < k * k; ++kk) {
      const int grow = static_cast<int>(ci) * k * k + kk;
      const int drow = ch[ci] * k * k + kk;
      for (int64_t j = 0; j < cols_n; ++j) {
        EXPECT_EQ(gathered.at({grow, static_cast<int>(j)}),
                  dense.at({drow, static_cast<int>(j)}));
      }
    }
  }
}

TEST(Im2colGather, SpatialSubsetPicksMatchingColumns) {
  Rng rng(4);
  const int c = 2, h = 5, w = 5;
  Tensor x = Tensor::randn({c, h, w}, rng);
  ConvGeom g{c, h, w, 3, 3, 1, 1};
  const int rows = static_cast<int>(g.patch_rows());

  Tensor dense({rows, static_cast<int>(g.out_positions())});
  im2col(x.data(), g, dense.data());

  const std::vector<int> sp = {0, 7, 12, 24};
  Tensor gathered({rows, static_cast<int>(sp.size())});
  im2col_gather(x.data(), g, iota_vec(c), sp, gathered.data());

  for (int r = 0; r < rows; ++r) {
    for (size_t j = 0; j < sp.size(); ++j) {
      EXPECT_EQ(gathered.at({r, static_cast<int>(j)}),
                dense.at({r, sp[j]}));
    }
  }
}

TEST(Im2colGather, RejectsBadChannel) {
  Tensor x({2, 3, 3});
  ConvGeom g{2, 3, 3, 3, 3, 1, 1};
  Tensor out({9, 9});
  const std::vector<int> bad_ch = {5};
  EXPECT_THROW(
      im2col_gather(x.data(), g, bad_ch, iota_vec(9), out.data()), Error);
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property that makes conv backward correct.
  Rng rng(5);
  const int c = 3, h = 5, w = 4;
  ConvGeom g{c, h, w, 3, 3, 1, 1};
  const int rows = static_cast<int>(g.patch_rows());
  const int cols_n = static_cast<int>(g.out_positions());

  Tensor x = Tensor::randn({c, h, w}, rng);
  Tensor y = Tensor::randn({rows, cols_n}, rng);

  Tensor cols({rows, cols_n});
  im2col(x.data(), g, cols.data());
  double lhs = 0;
  for (int64_t i = 0; i < cols.size(); ++i) lhs += double(cols[i]) * y[i];

  Tensor xt({c, h, w});
  col2im(y.data(), g, xt.data());
  double rhs = 0;
  for (int64_t i = 0; i < x.size(); ++i) rhs += double(x[i]) * xt[i];

  EXPECT_NEAR(lhs, rhs, 1e-2 * (std::abs(lhs) + 1.0));
}

// --- position-tiled lowering: bitwise parity with the full lowering ---------
//
// The tiled executor's correctness argument rests on these: a tile panel
// is the exact column slice of the full lowered matrix, so the tiled GEMM
// consumes bit-identical operands and the conv output cannot drift.

TEST(Im2colTiled, RangePosMatchesFullColumnSlices) {
  // Stride-1/pad-1, stride-2/pad-0 and 1x1 geometries; tile width 7 does
  // not divide any of their position counts, so every sweep ends in a
  // ragged tail tile.
  const ConvGeom geoms[] = {
      {3, 10, 9, 3, 3, 1, 1},
      {2, 11, 7, 3, 3, 2, 0},
      {4, 8, 8, 1, 1, 1, 0},
  };
  Rng rng(7);
  for (const ConvGeom& g : geoms) {
    Tensor x = Tensor::randn({g.in_c, g.in_h, g.in_w}, rng);
    const int rows = static_cast<int>(g.patch_rows());
    const int pos = static_cast<int>(g.out_positions());
    Tensor dense({rows, pos});
    im2col(x.data(), g, dense.data());

    const int64_t tile = 7;
    const int64_t ld = tile + 3;  // ld > tile width: padded panel layout
    Tensor panel({rows, static_cast<int>(ld)});
    for (int64_t p0 = 0; p0 < pos; p0 += tile) {
      const int64_t p1 = std::min<int64_t>(p0 + tile, pos);
      panel.fill(-7.5f);
      im2col_range_pos(x.data(), g, 0, g.in_c, p0, p1, panel.data(), ld);
      for (int r = 0; r < rows; ++r) {
        for (int64_t j = p0; j < p1; ++j) {
          ASSERT_EQ(panel.at({r, static_cast<int>(j - p0)}),
                    dense.at({r, static_cast<int>(j)}))
              << "geom k=" << g.k_h << " stride=" << g.stride
              << " pad=" << g.pad << " row " << r << " col " << j;
        }
        // The ld slack past the tile must stay untouched.
        for (int64_t j = p1 - p0; j < ld; ++j) {
          ASSERT_EQ(panel.at({r, static_cast<int>(j)}), -7.5f);
        }
      }
    }
  }
}

TEST(Im2colTiled, RangePosChannelSubrangeWritesAbsoluteRows) {
  // Rows land at their absolute lowered-row offsets (channel * kh*kw), so
  // disjoint channel ranges of one tile can be filled in parallel; rows
  // outside [c0, c1) must stay untouched.
  Rng rng(8);
  const ConvGeom g{4, 6, 6, 3, 3, 1, 1};
  Tensor x = Tensor::randn({g.in_c, g.in_h, g.in_w}, rng);
  const int rows = static_cast<int>(g.patch_rows());
  const int pos = static_cast<int>(g.out_positions());
  Tensor dense({rows, pos});
  im2col(x.data(), g, dense.data());

  const int64_t p0 = 5, p1 = 17;  // interior tile, ragged width 12
  const int64_t ld = p1 - p0;
  const int c0 = 1, c1 = 3, kk = g.k_h * g.k_w;
  Tensor panel({rows, static_cast<int>(ld)});
  panel.fill(-3.25f);
  im2col_range_pos(x.data(), g, c0, c1, p0, p1, panel.data(), ld);
  for (int r = 0; r < rows; ++r) {
    const bool in_range = r >= c0 * kk && r < c1 * kk;
    for (int64_t j = 0; j < ld; ++j) {
      if (in_range) {
        ASSERT_EQ(panel.at({r, static_cast<int>(j)}),
                  dense.at({r, static_cast<int>(p0 + j)}));
      } else {
        ASSERT_EQ(panel.at({r, static_cast<int>(j)}), -3.25f);
      }
    }
  }
}

TEST(Im2colTiled, GatherPosLdMatchesGatherColumnSlices) {
  // Channel-masked tiled lowering vs the full gathered lowering: the tile
  // is the exact [p0, p1) column slice, for stride-1/pad-1 and the
  // stride-2/pad-0 downsampling geometry.
  const ConvGeom geoms[] = {
      {3, 9, 8, 3, 3, 1, 1},
      {3, 11, 9, 3, 3, 2, 0},
  };
  Rng rng(9);
  for (const ConvGeom& g : geoms) {
    Tensor x = Tensor::randn({g.in_c, g.in_h, g.in_w}, rng);
    const std::vector<int> channels = {0, 2};
    const int kk = g.k_h * g.k_w;
    const int rows = static_cast<int>(channels.size()) * kk;
    const int pos = static_cast<int>(g.out_positions());

    Tensor full({rows, pos});
    im2col_gather_ld(x.data(), g, channels, iota_vec(pos), full.data(), pos);

    const int64_t tile = 5;  // ragged: 5 divides neither 72 nor 25
    Tensor panel({rows, static_cast<int>(tile)});
    for (int64_t p0 = 0; p0 < pos; p0 += tile) {
      const int64_t p1 = std::min<int64_t>(p0 + tile, pos);
      panel.fill(-1.5f);
      im2col_gather_pos_ld(x.data(), g, channels, p0, p1, panel.data(),
                           tile);
      for (int r = 0; r < rows; ++r) {
        for (int64_t j = p0; j < p1; ++j) {
          ASSERT_EQ(panel.at({r, static_cast<int>(j - p0)}),
                    full.at({r, static_cast<int>(j)}))
              << "stride=" << g.stride << " pad=" << g.pad << " row " << r
              << " col " << j;
        }
      }
    }
  }
}

TEST(Col2im, StridedAdjoint) {
  Rng rng(6);
  const int c = 2, h = 6, w = 6;
  ConvGeom g{c, h, w, 3, 3, 2, 1};
  const int rows = static_cast<int>(g.patch_rows());
  const int cols_n = static_cast<int>(g.out_positions());

  Tensor x = Tensor::randn({c, h, w}, rng);
  Tensor y = Tensor::randn({rows, cols_n}, rng);
  Tensor cols({rows, cols_n});
  im2col(x.data(), g, cols.data());
  double lhs = 0;
  for (int64_t i = 0; i < cols.size(); ++i) lhs += double(cols[i]) * y[i];
  Tensor xt({c, h, w});
  col2im(y.data(), g, xt.data());
  double rhs = 0;
  for (int64_t i = 0; i < x.size(); ++i) rhs += double(x[i]) * xt[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * (std::abs(lhs) + 1.0));
}

}  // namespace
}  // namespace antidote
