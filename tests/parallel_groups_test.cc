// Cross-group parallel execution and the nested parallel_for guard, under
// a forced multi-thread pool (ANTIDOTE_THREADS=4 is set before the lazily
// created global pool can exist, so this binary exercises the parallel
// regime even on a single-core machine):
//   - an inner parallel_for issued from inside a chunk runs INLINE on the
//     issuing worker (no queue re-entry, no dispatch-wait cycle);
//   - the plan executor's concurrent mask groups produce output bitwise
//     identical to the sequential per-sample module walk;
//   - arena sizing stays exact: reserve() then all-distinct masked passes
//     with zero arena growths from the very first forward.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "base/parallel.h"
#include "base/rng.h"
#include "core/engine.h"
#include "models/factory.h"
#include "nn/execution_context.h"
#include "plan/plan.h"

namespace antidote {
namespace {

// Must run before any antidote code touches the pool. 4 compute threads =
// caller + 3 workers.
const bool kForcedThreads = [] {
  ::setenv("ANTIDOTE_THREADS", "4", /*overwrite=*/1);
  return true;
}();

TEST(ParallelFor, PoolHonorsForcedThreadCount) {
  ASSERT_TRUE(kForcedThreads);
  EXPECT_EQ(global_pool().size(), 3);
}

TEST(ParallelFor, NestedDispatchRunsInlineOnTheWorker) {
  ASSERT_FALSE(in_parallel_region());
  std::atomic<int> outer_chunks{0};
  std::atomic<int> nested_off_thread{0};
  std::atomic<int> nested_iters{0};
  parallel_for(
      0, 8,
      [&](int64_t b, int64_t e) {
        EXPECT_TRUE(in_parallel_region());
        ++outer_chunks;
        const std::thread::id me = std::this_thread::get_id();
        for (int64_t i = b; i < e; ++i) {
          // Big enough range that, without the guard, this would dispatch.
          parallel_for(
              0, 100000,
              [&](int64_t ib, int64_t ie) {
                if (std::this_thread::get_id() != me) ++nested_off_thread;
                nested_iters += static_cast<int>(ie - ib);
              },
              /*grain=*/1);
        }
      },
      /*grain=*/1);
  EXPECT_FALSE(in_parallel_region());
  EXPECT_GT(outer_chunks.load(), 1);  // the outer loop did fan out
  EXPECT_EQ(nested_off_thread.load(), 0);  // ... and the inner did not
  EXPECT_EQ(nested_iters.load(), 8 * 100000);
}

TEST(ParallelFor, GuardClearsAfterExceptions) {
  try {
    parallel_for(
        0, 8, [&](int64_t, int64_t) { throw std::runtime_error("boom"); },
        /*grain=*/1);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(in_parallel_region());
}

std::unique_ptr<models::ConvNet> build(const std::string& name, int image) {
  Rng rng(9);
  auto net = models::make_model(name, 10, 0.25f, rng);
  net->set_training(false);
  (void)image;
  return net;
}

// All-distinct inputs -> (almost surely) all-distinct attention masks ->
// one singleton mask group per sample, executed concurrently.
void check_cross_group_parity(const std::string& model, int image,
                              int batch) {
  auto net = build(model, image);
  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.4f, 0.3f));
  Rng rng(23);
  Tensor x = Tensor::randn({batch, 3, image, image}, rng);

  // Per-sample module walk: sequential by construction.
  const Tensor plain = net->forward(x);

  nn::ExecutionContext ctx;
  plan::InferencePlan& plan = net->inference_plan(3, image, image);
  plan.reserve(ctx.workspace(), batch);
  const int64_t grows = ctx.workspace().grow_count();
  for (int pass = 0; pass < 2; ++pass) {
    ctx.begin_pass();
    Tensor staged = ctx.alloc(x.shape());
    std::memcpy(staged.data(), x.data(),
                static_cast<size_t>(x.size()) * sizeof(float));
    const Tensor fused = net->forward(staged, ctx);
    ASSERT_TRUE(plain.same_shape(fused)) << model;
    // Bitwise: concurrent groups cover disjoint samples and every kernel
    // keeps its per-element accumulation order and roundings.
    EXPECT_EQ(std::memcmp(plain.data(), fused.data(),
                          static_cast<size_t>(plain.size()) * sizeof(float)),
              0)
        << model << " pass " << pass;
    // Exact arena: zero growths from the very first all-distinct pass.
    EXPECT_EQ(ctx.workspace().grow_count(), grows) << model;
  }
  // Raw (pre-coarsening) bucket count: union merges may execute fewer
  // groups, but the parity and zero-growth checks above already ran with
  // the default coarsening policy in force.
  EXPECT_GE(net->current_plan()->last_mask_groups_raw(), 2) << model;
  engine.remove();
}

TEST(CrossGroupParallel, AllDistinctMasksMatchModuleWalkBitwise) {
  check_cross_group_parity("small_cnn", 16, 6);
  check_cross_group_parity("resnet20", 16, 5);
  check_cross_group_parity("vgg16", 32, 4);
}

TEST(CrossGroupParallel, MixedGroupSizesMatchModuleWalkBitwise) {
  // 2 duplicated pairs + 2 singletons: heterogeneous group sizes share
  // the per-worker slices.
  const int image = 16, batch = 6;
  auto net = build("small_cnn", image);
  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.5f, 0.4f));
  Rng rng(31);
  Tensor uniq = Tensor::randn({4, 3, image, image}, rng);
  Tensor x({batch, 3, image, image});
  const int64_t sample = uniq.size() / 4;
  const int src_of[batch] = {0, 0, 1, 1, 2, 3};
  for (int i = 0; i < batch; ++i) {
    std::memcpy(x.data() + i * sample, uniq.data() + src_of[i] * sample,
                static_cast<size_t>(sample) * sizeof(float));
  }
  const Tensor plain = net->forward(x);
  nn::ExecutionContext ctx;
  net->inference_plan(3, image, image).reserve(ctx.workspace(), batch);
  ctx.begin_pass();
  Tensor staged = ctx.alloc(x.shape());
  std::memcpy(staged.data(), x.data(),
              static_cast<size_t>(x.size()) * sizeof(float));
  const Tensor fused = net->forward(staged, ctx);
  EXPECT_EQ(std::memcmp(plain.data(), fused.data(),
                        static_cast<size_t>(plain.size()) * sizeof(float)),
            0);
  EXPECT_LE(net->current_plan()->last_mask_groups(), 4);
  engine.remove();
}

}  // namespace
}  // namespace antidote
