// Model structure tests: VGG16, ResNet (20/56), SmallCnn — shapes, gate
// site wiring, block mapping, parameter counts, FLOPs measurement, training
// backward, checkpoint round-trips, option-A shortcuts.
#include <gtest/gtest.h>

#include <cmath>

#include <filesystem>

#include "base/error.h"
#include "base/rng.h"
#include "models/factory.h"
#include "models/flops.h"
#include "models/resnet.h"
#include "models/small_cnn.h"
#include "models/vgg.h"
#include "nn/checkpoint.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace antidote::models {
namespace {

TEST(Vgg, PaperWidthStructure) {
  Rng rng(1);
  VggConfig cfg;
  Vgg vgg(cfg);
  EXPECT_EQ(vgg.num_gate_sites(), 13);  // VGG16 = 13 conv layers
  EXPECT_EQ(vgg.num_blocks(), 5);
  // Block boundaries: layers [0,1]=b0, [2,3]=b1, [4..6]=b2, [7..9]=b3...
  EXPECT_EQ(vgg.block_of_site(0), 0);
  EXPECT_EQ(vgg.block_of_site(2), 1);
  EXPECT_EQ(vgg.block_of_site(4), 2);
  EXPECT_EQ(vgg.block_of_site(12), 4);
  EXPECT_EQ(vgg.conv(0)->out_channels(), 64);
  EXPECT_EQ(vgg.conv(12)->out_channels(), 512);
}

TEST(Vgg, PaperFlopsMagnitude) {
  // The paper reports 3.13E+08 MACs for VGG16 on 32x32 CIFAR.
  Rng rng(2);
  Vgg vgg(VggConfig{});
  nn::init_module(vgg, rng);
  const FlopsReport report = measure_dense_flops(vgg, 3, 32, 32);
  EXPECT_NEAR(static_cast<double>(report.total_macs), 3.13e8, 0.03e8);
}

TEST(Vgg, WidthMultScalesChannelsAndFlops) {
  Rng rng(3);
  VggConfig half;
  half.width_mult = 0.5f;
  Vgg vgg(half);
  nn::init_module(vgg, rng);
  EXPECT_EQ(vgg.conv(0)->out_channels(), 32);
  const FlopsReport report = measure_dense_flops(vgg, 3, 32, 32);
  // FLOPs scale roughly quadratically with width.
  EXPECT_NEAR(static_cast<double>(report.total_macs), 3.13e8 / 4, 0.15e8);
}

TEST(Vgg, ForwardShapeAndBackwardRuns) {
  Rng rng(4);
  VggConfig cfg;
  cfg.width_mult = 0.125f;
  cfg.num_classes = 10;
  Vgg vgg(cfg);
  nn::init_module(vgg, rng);
  vgg.set_training(true);
  Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
  Tensor y = vgg.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 10}));
  Tensor dx = vgg.backward(Tensor::randn(y.shape(), rng));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Vgg, GateWiring) {
  Vgg vgg(VggConfig{});
  // Mid-block gate feeds the next conv and is spatially aligned.
  EXPECT_EQ(vgg.gate_consumer(0), vgg.conv(1));
  EXPECT_TRUE(vgg.gate_spatially_aligned(0));
  // Block-boundary gate (site 1 = last conv of block 0) crosses a pool.
  EXPECT_EQ(vgg.gate_consumer(1), vgg.conv(2));
  EXPECT_FALSE(vgg.gate_spatially_aligned(1));
  // Producer of every site is its own conv.
  EXPECT_EQ(vgg.gate_producer(3), vgg.conv(3));
  EXPECT_NE(vgg.gate_producer_bn(3), nullptr);
  // Last site feeds only the classifier.
  EXPECT_EQ(vgg.gate_consumer(12), nullptr);
  EXPECT_FALSE(vgg.gate_spatially_aligned(12));
}

TEST(ResNet, StructureAndSiteMapping) {
  ResNetConfig cfg;
  cfg.blocks_per_group = 9;
  ResNetCifar net(cfg);
  EXPECT_EQ(net.model_name(), "resnet56");
  EXPECT_EQ(net.num_gate_sites(), 27);  // one per basic block
  EXPECT_EQ(net.num_blocks(), 3);       // three groups
  EXPECT_EQ(net.block_of_site(0), 0);
  EXPECT_EQ(net.block_of_site(9), 1);
  EXPECT_EQ(net.block_of_site(26), 2);
  EXPECT_TRUE(net.gate_spatially_aligned(0));
  EXPECT_NE(net.gate_consumer(0), nullptr);
  EXPECT_NE(net.gate_consumer(0), net.gate_producer(0));
}

TEST(ResNet, PaperFlopsMagnitude) {
  // The paper reports 1.28E+08 MACs for ResNet56 on CIFAR10 (32x32).
  Rng rng(5);
  ResNetConfig cfg;
  cfg.blocks_per_group = 9;
  ResNetCifar net(cfg);
  nn::init_module(net, rng);
  const FlopsReport report = measure_dense_flops(net, 3, 32, 32);
  EXPECT_NEAR(static_cast<double>(report.total_macs), 1.28e8, 0.05e8);
}

TEST(ResNet, ForwardBackwardShapes) {
  Rng rng(6);
  ResNetConfig cfg;
  cfg.blocks_per_group = 3;  // resnet20, faster
  cfg.width_mult = 0.5f;
  ResNetCifar net(cfg);
  nn::init_module(net, rng);
  net.set_training(true);
  Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
  Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 10}));
  Tensor dx = net.backward(Tensor::randn(y.shape(), rng));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(ResNet, DownsamplingHalvesResolutionTwice) {
  Rng rng(7);
  ResNetConfig cfg;
  cfg.blocks_per_group = 3;
  ResNetCifar net(cfg);
  nn::init_module(net, rng);
  net.set_training(false);
  // 32 -> GAP over an 8x8 map: verified indirectly by parameter-free run.
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  EXPECT_NO_THROW(net.forward(x));
}

TEST(ShortcutOptionA, IdentityWhenShapesMatch) {
  Rng rng(8);
  Tensor x = Tensor::randn({1, 4, 6, 6}, rng);
  Tensor y = shortcut_option_a(x, 4, 1);
  EXPECT_TRUE(ops::allclose(y, x, 0.f, 0.f));
}

TEST(ShortcutOptionA, SubsamplesAndZeroPadsChannels) {
  Tensor x({1, 2, 4, 4});
  x.at({0, 0, 0, 0}) = 1.f;
  x.at({0, 0, 2, 2}) = 2.f;
  x.at({0, 1, 0, 2}) = 3.f;
  Tensor y = shortcut_option_a(x, 4, 2);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 4, 2, 2}));
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 1.f);
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 1}), 2.f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 0, 1}), 3.f);
  // Padded channels are zero.
  EXPECT_FLOAT_EQ(y.at({0, 2, 0, 0}), 0.f);
  EXPECT_FLOAT_EQ(y.at({0, 3, 1, 1}), 0.f);
}

TEST(ShortcutOptionA, BackwardIsAdjoint) {
  Rng rng(9);
  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  Tensor y = shortcut_option_a(x, 6, 2);
  Tensor dy = Tensor::randn(y.shape(), rng);
  Tensor dx = shortcut_option_a_backward(dy, x.shape(), 2);
  // <y, dy> == <x, dx> for a linear map and its adjoint.
  double lhs = 0, rhs = 0;
  for (int64_t i = 0; i < y.size(); ++i) lhs += double(y[i]) * dy[i];
  for (int64_t i = 0; i < x.size(); ++i) rhs += double(x[i]) * dx[i];
  EXPECT_NEAR(lhs, rhs, 1e-3 * (std::abs(lhs) + 1));
}

TEST(SmallCnn, StructureAndGateSites) {
  SmallCnnConfig cfg;
  cfg.widths = {8, 16, 16};
  cfg.pool_after = {true, false, true};
  SmallCnn net(cfg);
  EXPECT_EQ(net.num_gate_sites(), 3);
  EXPECT_FALSE(net.gate_spatially_aligned(0));  // pool after stage 0
  EXPECT_TRUE(net.gate_spatially_aligned(1));   // no pool after stage 1
  EXPECT_EQ(net.gate_consumer(2), nullptr);
}

TEST(Vgg, CustomBlockConfiguration) {
  // The config is generic: a 2-block "VGG-lite" with [1, 2] layers.
  VggConfig cfg;
  cfg.layers_per_block = {1, 2};
  cfg.block_widths = {8, 16};
  cfg.num_classes = 3;
  Vgg vgg(cfg);
  EXPECT_EQ(vgg.num_gate_sites(), 3);
  EXPECT_EQ(vgg.num_blocks(), 2);
  EXPECT_EQ(vgg.block_of_site(0), 0);
  EXPECT_EQ(vgg.block_of_site(1), 1);
  EXPECT_FALSE(vgg.gate_spatially_aligned(0));  // single-layer block: pool
  EXPECT_TRUE(vgg.gate_spatially_aligned(1));
  Rng rng(20);
  nn::init_module(vgg, rng);
  vgg.set_training(false);
  Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
  EXPECT_EQ(vgg.forward(x).shape(), (std::vector<int>{1, 3}));
}

TEST(Vgg, MismatchedBlockConfigThrows) {
  VggConfig cfg;
  cfg.layers_per_block = {1, 2};
  cfg.block_widths = {8};  // size mismatch
  EXPECT_THROW(Vgg{cfg}, Error);
}

TEST(ResNet, TransitionBlocksHaveStrideTwoConv1) {
  ResNetConfig cfg;
  cfg.blocks_per_group = 3;
  ResNetCifar net(cfg);
  // Sites 0..2 group 0 (stride 1), site 3 starts group 1 (stride 2), site 6
  // starts group 2 (stride 2).
  EXPECT_EQ(net.gate_producer(0)->stride(), 1);
  EXPECT_EQ(net.gate_producer(3)->stride(), 2);
  EXPECT_EQ(net.gate_producer(6)->stride(), 2);
  EXPECT_EQ(net.gate_producer(4)->stride(), 1);
  // The gated consumer (conv2) is always stride 1 and grid preserving,
  // which is what makes spatial masks legal on every site.
  for (int s = 0; s < net.num_gate_sites(); ++s) {
    EXPECT_EQ(net.gate_consumer(s)->stride(), 1) << " site " << s;
  }
}

TEST(Factory, BuildsAllRegisteredModels) {
  Rng rng(10);
  for (const char* name : {"vgg16", "resnet20", "resnet56", "small_cnn"}) {
    auto model = make_model(name, 10, 0.25f, rng);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_GT(nn::parameter_count(*model), 0) << name;
  }
  EXPECT_THROW(make_model("alexnet", 10, 1.f, rng), Error);
}

TEST(Flops, ReadLastMatchesMeasureForDensePass) {
  Rng rng(11);
  auto model = make_model("small_cnn", 4, 1.f, rng);
  const FlopsReport probe = measure_dense_flops(*model, 3, 16, 16);
  model->set_training(false);
  Tensor x({1, 3, 16, 16});
  model->forward(x);
  const FlopsReport after = read_last_flops(*model);
  EXPECT_EQ(probe.total_macs, after.total_macs);
  EXPECT_EQ(probe.layers.size(), after.layers.size());
}

TEST(Flops, PerLayerEntriesAreConsistent) {
  Rng rng(12);
  Vgg vgg(VggConfig{});
  nn::init_module(vgg, rng);
  const FlopsReport report = measure_dense_flops(vgg, 3, 32, 32);
  ASSERT_EQ(report.layers.size(), 14u);  // 13 convs + fc
  int64_t sum = 0;
  for (const auto& l : report.layers) sum += l.macs;
  EXPECT_EQ(sum, report.total_macs);
  // conv1 (3->64 on 32x32): 64*1024*27 MACs.
  EXPECT_EQ(report.layers[0].macs, 64LL * 1024 * 27);
}

TEST(Models, CheckpointRoundTrip) {
  Rng rng(13);
  const std::string path = ::testing::TempDir() + "/antidote_model_ckpt.bin";
  auto a = make_model("resnet20", 10, 0.25f, rng);
  a->set_training(true);
  Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
  a->forward(x);  // touch BN stats
  nn::save_checkpoint(*a, path);

  Rng rng2(999);
  auto b = make_model("resnet20", 10, 0.25f, rng2);
  nn::load_checkpoint(*b, path);
  a->set_training(false);
  b->set_training(false);
  EXPECT_TRUE(ops::allclose(a->forward(x), b->forward(x), 0.f, 0.f));
  std::filesystem::remove(path);
}

TEST(Models, InstallAndClearGatesKeepsForwardIdentical) {
  Rng rng(14);
  auto model = make_model("small_cnn", 4, 1.f, rng);
  model->set_training(false);
  Tensor x = Tensor::randn({1, 3, 12, 12}, rng);
  Tensor before = model->forward(x);
  // A null install is a no-op; clear_gates on a gateless model is safe.
  model->install_gate(0, nullptr);
  model->clear_gates();
  Tensor after = model->forward(x);
  EXPECT_TRUE(ops::allclose(before, after, 0.f, 0.f));
}

}  // namespace
}  // namespace antidote::models
