// InferencePlan compiler + executor: BN-fold numerics against the unfused
// module walk (dense bitwise, masked within 1e-5), exact ahead-of-time
// arena sizing (zero growths from the very first context forward), masked
// execution through the fused conv steps for all three model families,
// plan invalidation, and the cost-model metadata the serving controller
// consumes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "models/factory.h"
#include "models/small_cnn.h"
#include "nn/execution_context.h"
#include "plan/plan.h"
#include "tensor/tensor.h"

namespace antidote {
namespace {

struct Case {
  const char* model;
  int image;
  float width;
};
const Case kCases[] = {
    {"small_cnn", 16, 1.0f},
    {"resnet20", 16, 0.5f},
    {"vgg16", 32, 0.25f},  // five 2x2 pools: needs at least 32x32 input
};

std::unique_ptr<models::ConvNet> build(const Case& c, uint64_t seed = 11) {
  Rng rng(seed);
  auto net = models::make_model(c.model, 10, c.width, rng);
  net->set_training(false);
  return net;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.same_shape(b));
  double worst = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(double(a[i]) - double(b[i])));
  }
  return worst;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

TEST(InferencePlan, FusedDenseBitwiseMatchesUnfusedModuleWalk) {
  for (const Case& c : kCases) {
    auto net = build(c);
    Rng rng(3);
    Tensor x = Tensor::randn({2, 3, c.image, c.image}, rng);
    const Tensor plain = net->forward(x);  // unfused conv -> BN -> ReLU

    nn::ExecutionContext ctx;
    ctx.begin_pass();
    const Tensor fused = net->forward(x, ctx);
    EXPECT_TRUE(bitwise_equal(plain, fused)) << c.model;

    // The fusion actually happened: the plan has no standalone BN/ReLU
    // steps, and every conv step folded its BatchNorm and activation.
    const plan::InferencePlan* plan = net->current_plan();
    ASSERT_NE(plan, nullptr) << c.model;
    for (const plan::PlanOp& op : plan->ops()) {
      if (op.kind == plan::OpKind::kConv) {
        EXPECT_TRUE(op.fuse_bn) << c.model << " " << op.name;
        EXPECT_TRUE(op.fuse_relu) << c.model << " " << op.name;
      }
    }
    EXPECT_EQ(plan->dense_macs_per_sample() * 2, net->last_macs())
        << c.model;
  }
}

TEST(InferencePlan, MaskedExecutionThroughFusedStepsMatchesModuleWalk) {
  for (const Case& c : kCases) {
    auto net = build(c);
    core::DynamicPruningEngine engine(
        *net, core::PruneSettings::uniform(net->num_blocks(), 0.4f, 0.3f));
    Rng rng(5);
    Tensor x = Tensor::randn({3, 3, c.image, c.image}, rng);
    // Exact-identity contract below (same masks => same MAC count as
    // the module walk): pin union coarsening off, which deliberately
    // executes superset MACs (covered by tests/coarsen_test.cc).
    net->set_coarsen_policy({plan::CoarsenMode::kOff, 1.0});

    const Tensor plain = net->forward(x);
    const int64_t module_macs = net->last_macs();

    nn::ExecutionContext ctx;
    ctx.begin_pass();
    const Tensor fused = net->forward(x, ctx);
    // BN folding keeps masked outputs within 1e-5 of the unfused walk
    // (in the current exact-epilogue fold they are bitwise identical).
    EXPECT_LE(max_abs_diff(plain, fused), 1e-5) << c.model;

    // Dynamic pruning survives fusion: the same masks were executed, so
    // the measured MACs match the module walk and stay below dense.
    EXPECT_EQ(net->last_macs(), module_macs) << c.model;
    const plan::InferencePlan* plan = net->current_plan();
    ASSERT_NE(plan, nullptr);
    EXPECT_LT(net->last_macs(), plan->dense_macs_per_sample() * 3)
        << c.model;
    engine.remove();
  }
}

TEST(InferencePlan, ExactArenaSizingZeroGrowthsFromTheFirstForward) {
  for (const Case& c : kCases) {
    for (const bool pruned : {false, true}) {
      auto net = build(c);
      std::unique_ptr<core::DynamicPruningEngine> engine;
      if (pruned) {
        engine = std::make_unique<core::DynamicPruningEngine>(
            *net,
            core::PruneSettings::uniform(net->num_blocks(), 0.4f, 0.3f));
      }
      const int batch = 2;
      Rng rng(7);
      Tensor x = Tensor::randn({batch, 3, c.image, c.image}, rng);

      // Compile + reserve ahead of time: the arena size is known exactly
      // before any forward has ever run.
      plan::InferencePlan& plan =
          net->inference_plan(3, c.image, c.image);
      nn::ExecutionContext ctx;
      plan.reserve(ctx.workspace(), batch);
      EXPECT_GT(plan.arena_bytes(batch), 0u);
      const int64_t grows = ctx.workspace().grow_count();

      for (int pass = 0; pass < 3; ++pass) {
        ctx.begin_pass();
        Tensor staged = ctx.alloc(x.shape());
        std::memcpy(staged.data(), x.data(),
                    static_cast<size_t>(x.size()) * sizeof(float));
        Tensor y = net->forward(staged, ctx);
        ASSERT_EQ(y.dim(0), batch);
        // Zero arena growths from the VERY FIRST pass onward.
        EXPECT_EQ(ctx.workspace().grow_count(), grows)
            << c.model << (pruned ? " pruned" : " dense") << " pass "
            << pass;
      }
      if (engine) engine->remove();
    }
  }
}

// Stacks `distinct` unique images cyclically into a `batch`-sample input,
// so every gate computes identical attention — and therefore identical
// masks — for duplicated samples and the executor's mask-grouping has
// at most `distinct` buckets to form.
Tensor duplicated_batch(int batch, int distinct, int image, Rng& rng) {
  Tensor uniq = Tensor::randn({distinct, 3, image, image}, rng);
  Tensor x({batch, 3, image, image});
  const int64_t sample = uniq.size() / distinct;
  for (int i = 0; i < batch; ++i) {
    std::memcpy(x.data() + i * sample, uniq.data() + (i % distinct) * sample,
                static_cast<size_t>(sample) * sizeof(float));
  }
  return x;
}

TEST(InferencePlan, MaskGroupedExecutionMatchesModuleWalk) {
  // Batch 8 quantized into <= 4 distinct kept sets: the executor buckets
  // the samples and runs compacted multi-sample GEMMs, and the result
  // must still match the per-sample module walk (same masks, same MACs).
  const int batch = 8, distinct = 4;
  for (const Case& c : kCases) {
    auto net = build(c);
    core::DynamicPruningEngine engine(
        *net, core::PruneSettings::uniform(net->num_blocks(), 0.4f, 0.3f));
    Rng rng(23);
    Tensor x = duplicated_batch(batch, distinct, c.image, rng);
    // Same-MACs assertion: exact-identity grouping only (see above).
    net->set_coarsen_policy({plan::CoarsenMode::kOff, 1.0});

    const Tensor plain = net->forward(x);
    const int64_t module_macs = net->last_macs();

    nn::ExecutionContext ctx;
    ctx.begin_pass();
    const Tensor fused = net->forward(x, ctx);
    EXPECT_LE(max_abs_diff(plain, fused), 1e-5) << c.model;
    EXPECT_EQ(net->last_macs(), module_macs) << c.model;

    const plan::InferencePlan* plan = net->current_plan();
    ASSERT_NE(plan, nullptr) << c.model;
    // Duplicated inputs produce duplicated masks: the batch collapsed
    // into at most `distinct` compacted groups.
    EXPECT_GE(plan->last_mask_groups(), 1) << c.model;
    EXPECT_LE(plan->last_mask_groups(), distinct) << c.model;
    engine.remove();
  }
}

TEST(InferencePlan, GroupedArenaStaysExactWithZeroGrowthsFromFirstForward) {
  // arena_bytes(n) must stay exact under grouping: reserve ahead of time,
  // then run grouped masked batches (including the all-distinct worst
  // case) with zero arena growths starting from the very first pass.
  for (const Case& c : kCases) {
    auto net = build(c);
    core::DynamicPruningEngine engine(
        *net, core::PruneSettings::uniform(net->num_blocks(), 0.4f, 0.3f));
    const int batch = 6;
    plan::InferencePlan& plan = net->inference_plan(3, c.image, c.image);
    nn::ExecutionContext ctx;
    plan.reserve(ctx.workspace(), batch);
    const int64_t grows = ctx.workspace().grow_count();

    Rng rng(29);
    // Pass 1: 3 distinct masks over 6 samples. Pass 2: all distinct.
    for (const int distinct : {3, batch}) {
      Tensor x = duplicated_batch(batch, distinct, c.image, rng);
      ctx.begin_pass();
      Tensor staged = ctx.alloc(x.shape());
      std::memcpy(staged.data(), x.data(),
                  static_cast<size_t>(x.size()) * sizeof(float));
      net->forward(staged, ctx);
      EXPECT_EQ(ctx.workspace().grow_count(), grows)
          << c.model << " distinct=" << distinct;
      EXPECT_LE(net->current_plan()->last_mask_groups(), distinct) << c.model;
    }
    engine.remove();
  }
}

TEST(InferencePlan, WeightPackCacheHitsOnRepeatedAndStaticMasks) {
  // Static filter masks repeat every pass, so after the first pack the
  // kept-filter weight panel must come from the cross-pass cache (100%
  // hit rate), and repeated identical dynamic masks hit it too.
  const Case c{"small_cnn", 16, 1.0f};
  auto net = build(c);
  Rng rng(31);
  Tensor x = Tensor::randn({2, 3, c.image, c.image}, rng);
  auto masks = [] {
    nn::ConvRuntimeMask m;
    m.out_channels = {0, 2, 5};
    return std::vector<nn::ConvRuntimeMask>(2, m);
  };
  auto* consumer = dynamic_cast<models::SmallCnn*>(net.get());
  ASSERT_NE(consumer, nullptr);

  nn::ExecutionContext ctx;
  consumer->conv(1)->set_runtime_masks(masks());
  ctx.begin_pass();
  const Tensor first = net->forward(x, ctx).clone();
  plan::InferencePlan* plan = net->current_plan();
  ASSERT_NE(plan, nullptr);
  const int64_t misses_after_first = plan->pack_cache_misses();
  EXPECT_GE(misses_after_first, 1);  // the first pass packed the panel
  EXPECT_EQ(plan->pack_cache_hits(), 0);

  consumer->conv(1)->set_runtime_masks(masks());
  ctx.begin_pass();
  const Tensor second = net->forward(x, ctx).clone();
  EXPECT_TRUE(bitwise_equal(first, second));
  // Same kept set again: served from the cache, no repack.
  EXPECT_EQ(plan->pack_cache_misses(), misses_after_first);
  EXPECT_GE(plan->pack_cache_hits(), 1);
}

TEST(InferencePlan, StaticFilterMasksFlowThroughFusedSteps) {
  // The static-pruning path installs ConvRuntimeMasks directly (no gate);
  // the plan's fused conv steps must consume them like Conv2d::forward.
  const Case c{"small_cnn", 16, 1.0f};
  auto net = build(c);
  Rng rng(9);
  Tensor x = Tensor::randn({2, 3, c.image, c.image}, rng);

  auto masks = [] {
    nn::ConvRuntimeMask m;
    m.out_channels = {0, 2, 5};
    return std::vector<nn::ConvRuntimeMask>(2, m);
  };
  auto* consumer = dynamic_cast<models::SmallCnn*>(net.get());
  ASSERT_NE(consumer, nullptr);

  consumer->conv(1)->set_runtime_masks(masks());
  const Tensor plain = net->forward(x);
  const int64_t module_macs = net->last_macs();

  consumer->conv(1)->set_runtime_masks(masks());
  nn::ExecutionContext ctx;
  ctx.begin_pass();
  const Tensor fused = net->forward(x, ctx);
  EXPECT_TRUE(bitwise_equal(plain, fused));
  EXPECT_EQ(net->last_macs(), module_macs);
}

TEST(InferencePlan, RecompilesWhenBatchNormStatisticsChange) {
  const Case c{"small_cnn", 16, 1.0f};
  auto net = build(c);
  Rng rng(13);
  Tensor x = Tensor::randn({2, 3, c.image, c.image}, rng);

  nn::ExecutionContext ctx;
  ctx.begin_pass();
  const Tensor before = net->forward(x, ctx).clone();
  ASSERT_NE(net->current_plan(), nullptr);

  // A training forward moves the BN running statistics; set_training must
  // drop the stale fold and the next context forward must match a fresh
  // module walk bitwise.
  net->set_training(true);
  EXPECT_EQ(net->current_plan(), nullptr);
  net->forward(x);
  net->set_training(false);

  const Tensor plain = net->forward(x);
  ctx.begin_pass();
  const Tensor fused = net->forward(x, ctx);
  EXPECT_TRUE(bitwise_equal(plain, fused));
  EXPECT_FALSE(bitwise_equal(before, fused));  // stats really moved
}

TEST(InferencePlan, RecompilesForNewInputShape) {
  const Case c{"small_cnn", 16, 1.0f};
  auto net = build(c);
  Rng rng(17);
  for (const int image : {16, 8, 16}) {
    Tensor x = Tensor::randn({1, 3, image, image}, rng);
    const Tensor plain = net->forward(x);
    nn::ExecutionContext ctx;
    ctx.begin_pass();
    EXPECT_TRUE(bitwise_equal(plain, net->forward(x, ctx))) << image;
  }
}

TEST(InferencePlan, CostSnapshotMarksGateConsumersWithTheirBlock) {
  const Case c{"resnet20", 16, 0.5f};
  auto net = build(c);
  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.2f, 0.1f));
  plan::InferencePlan& plan = net->inference_plan(3, c.image, c.image);

  int prunable = 0;
  for (const plan::OpCost& op : plan.cost_snapshot()) {
    if (op.prune_block >= 0) {
      ++prunable;
      EXPECT_EQ(op.kind, plan::OpKind::kConv);
      EXPECT_LT(op.prune_block, net->num_blocks());
      // ResNet gates are spatially aligned with their consumer.
      EXPECT_TRUE(op.prune_spatial);
    }
  }
  // One gated conv2 per basic block.
  EXPECT_EQ(prunable, net->num_gate_sites());
  engine.remove();
}

TEST(InferencePlan, CostSnapshotCarriesPruneMetadataAcrossPools) {
  // In VGG a gate's consumer conv sits behind the unit's MaxPool
  // (gate_consumer = next unit's conv): channel masks reach it, so its
  // cost-model entry must carry the gate's block — with spatial skipping
  // off, since the pool changed the grid.
  const Case c{"vgg16", 32, 0.25f};
  auto net = build(c);
  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.2f, 0.1f));
  plan::InferencePlan& plan = net->inference_plan(3, c.image, c.image);

  int prunable = 0, behind_pool = 0;
  for (const plan::OpCost& op : plan.cost_snapshot()) {
    if (op.prune_block < 0) continue;
    ++prunable;
    if (!op.prune_spatial) ++behind_pool;
  }
  // Every conv except the stem-most is fed by the previous unit's gate;
  // the last gate has no consumer.
  EXPECT_EQ(prunable, net->num_gate_sites() - 1);
  // VGG16 has five pools; the conv after each of the first four carries
  // channel-only metadata (the fifth pool feeds the classifier head).
  EXPECT_EQ(behind_pool, 4);
  engine.remove();
}

TEST(InferencePlan, ArenaBytesScaleWithBatchAndCoverEveryBatchSize) {
  const Case c{"vgg16", 32, 0.25f};
  auto net = build(c);
  plan::InferencePlan& plan = net->inference_plan(3, c.image, c.image);
  EXPECT_LT(plan.arena_bytes(1), plan.arena_bytes(4));
  EXPECT_LT(plan.arena_bytes(4), plan.arena_bytes(16));

  // A batch the plan was never probed with still runs growth-free after
  // its reserve (offsets scale with N by construction).
  for (const int batch : {1, 3, 5}) {
    nn::ExecutionContext ctx;
    plan.reserve(ctx.workspace(), batch);
    const int64_t grows = ctx.workspace().grow_count();
    Rng rng(19);
    Tensor x = Tensor::randn({batch, 3, c.image, c.image}, rng);
    ctx.begin_pass();
    Tensor staged = ctx.alloc(x.shape());
    std::memcpy(staged.data(), x.data(),
                static_cast<size_t>(x.size()) * sizeof(float));
    net->forward(staged, ctx);
    EXPECT_EQ(ctx.workspace().grow_count(), grows) << "batch " << batch;
  }
}

// --- spatially-tiled lowering ------------------------------------------------

TEST(InferencePlan, ForcedTileBitwiseAndZeroGrowthsAcrossModels) {
  // --tile=96 forces tiling even at test-scale resolutions where auto
  // declines (96 divides none of the per-layer position counts, so every
  // sweep exercises a ragged tail tile). Tiled output must stay bitwise
  // identical to the untiled plan, and the tile-aware arena sizing must
  // stay exact from the first pass.
  const int batch = 2;
  for (const Case& c : kCases) {
    Rng rng(17);
    Tensor x = Tensor::randn({batch, 3, c.image, c.image}, rng);

    auto run_once = [&](models::ConvNet& net, nn::ExecutionContext& ctx) {
      ctx.begin_pass();
      Tensor staged = ctx.alloc(x.shape());
      std::memcpy(staged.data(), x.data(),
                  static_cast<size_t>(x.size()) * sizeof(float));
      return net.forward(staged, ctx);
    };

    std::vector<float> ref;
    {
      auto net = build(c);
      net->set_tile_policy({plan::TileMode::kOff, 0});
      nn::ExecutionContext ctx;
      net->inference_plan(3, c.image, c.image).reserve(ctx.workspace(), batch);
      Tensor y = run_once(*net, ctx);
      ref.assign(y.data(), y.data() + y.size());
    }

    auto net = build(c);
    net->set_tile_policy({plan::TileMode::kFixed, 96});
    plan::InferencePlan& plan = net->inference_plan(3, c.image, c.image);
    bool tiled = false;
    for (const plan::PlanOp& op : plan.ops()) tiled |= op.tile_pos > 0;
    EXPECT_TRUE(tiled) << c.model;
    nn::ExecutionContext ctx;
    plan.reserve(ctx.workspace(), batch);
    const int64_t grows = ctx.workspace().grow_count();
    for (int pass = 0; pass < 3; ++pass) {
      Tensor y = run_once(*net, ctx);
      ASSERT_EQ(static_cast<size_t>(y.size()), ref.size());
      EXPECT_EQ(std::memcmp(ref.data(), y.data(),
                            ref.size() * sizeof(float)),
                0)
          << c.model << " pass " << pass;
      EXPECT_EQ(ctx.workspace().grow_count(), grows)
          << c.model << " pass " << pass;
    }
  }
}

TEST(InferencePlan, TiledArenaExactAt224InBothRegimes) {
  // The 224x224 workload class: auto tiling engages, shrinks the arena
  // versus --tile=off, keeps the sizing exact (reserve => zero growths
  // from the first pass) in f32 AND int8, and the tiled f32 logits stay
  // bitwise identical to the untiled plan.
  const int image = 224, batch = 2;
  const Case c{"small_cnn", image, 1.0f};
  Rng rng(19);
  Tensor x = Tensor::randn({batch, 3, image, image}, rng);

  auto run_once = [&](models::ConvNet& net, nn::ExecutionContext& ctx) {
    ctx.begin_pass();
    Tensor staged = ctx.alloc(x.shape());
    std::memcpy(staged.data(), x.data(),
                static_cast<size_t>(x.size()) * sizeof(float));
    return net.forward(staged, ctx);
  };

  std::vector<float> untiled_ref;
  size_t untiled_arena = 0;
  {
    auto net = build(c);
    net->set_tile_policy({plan::TileMode::kOff, 0});
    plan::InferencePlan& plan = net->inference_plan(3, image, image);
    untiled_arena = plan.arena_bytes(batch);
    nn::ExecutionContext ctx;
    plan.reserve(ctx.workspace(), batch);
    Tensor y = run_once(*net, ctx);
    untiled_ref.assign(y.data(), y.data() + y.size());
  }

  auto net = build(c);
  net->set_tile_policy({plan::TileMode::kAuto, 0});
  plan::InferencePlan& plan = net->inference_plan(3, image, image);
  bool tiled = false;
  for (const plan::PlanOp& op : plan.ops()) tiled |= op.tile_pos > 0;
  EXPECT_TRUE(tiled) << "auto tiling must engage at 224x224";
  EXPECT_LT(plan.arena_bytes(batch), untiled_arena)
      << "tiled arena must undercut the untiled arena";

  for (const plan::NumericRegime regime :
       {plan::NumericRegime::kF32, plan::NumericRegime::kInt8}) {
    net->set_numeric_regime(regime);
    nn::ExecutionContext ctx;
    plan.reserve(ctx.workspace(), batch);
    const int64_t grows = ctx.workspace().grow_count();
    for (int pass = 0; pass < 2; ++pass) {
      Tensor y = run_once(*net, ctx);
      ASSERT_EQ(y.dim(0), batch);
      EXPECT_EQ(ctx.workspace().grow_count(), grows)
          << (regime == plan::NumericRegime::kF32 ? "f32" : "int8")
          << " pass " << pass;
      if (regime == plan::NumericRegime::kF32) {
        ASSERT_EQ(static_cast<size_t>(y.size()), untiled_ref.size());
        EXPECT_EQ(std::memcmp(untiled_ref.data(), y.data(),
                              untiled_ref.size() * sizeof(float)),
                  0)
            << "tiled f32 must match untiled bitwise, pass " << pass;
      }
    }
  }
}

}  // namespace
}  // namespace antidote
