// DynamicPruningEngine: per-block gate installation, settings updates,
// FLOPs measurement through masked execution, evaluation, sensitivity
// sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "base/error.h"
#include "base/rng.h"
#include "core/engine.h"
#include "core/evaluate.h"
#include "core/sensitivity.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "models/flops.h"
#include "models/small_cnn.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace antidote::core {
namespace {

std::unique_ptr<models::SmallCnn> make_net(bool pool = true) {
  models::SmallCnnConfig cfg;
  cfg.num_classes = 4;
  cfg.widths = {8, 16, 16};
  cfg.pool_after = {pool, false, pool};
  auto net = std::make_unique<models::SmallCnn>(cfg);
  Rng rng(11);
  nn::init_module(*net, rng);
  return net;
}

TEST(PruneSettings, UniformAndTransforms) {
  PruneSettings s = PruneSettings::uniform(3, 0.4f, 0.8f);
  EXPECT_EQ(s.channel_drop, (std::vector<float>{0.4f, 0.4f, 0.4f}));
  EXPECT_EQ(s.spatial_drop, (std::vector<float>{0.8f, 0.8f, 0.8f}));
  PruneSettings capped = s.clamped(0.5f);
  EXPECT_EQ(capped.spatial_drop[0], 0.5f);
  EXPECT_EQ(capped.channel_drop[0], 0.4f);
  EXPECT_EQ(s.channel_only().spatial_drop[1], 0.f);
  EXPECT_EQ(s.spatial_only().channel_drop[1], 0.f);
}

TEST(Engine, InstallsOneGatePerSite) {
  auto net = make_net();
  DynamicPruningEngine engine(*net, PruneSettings::uniform(3, 0.5f, 0.f));
  EXPECT_EQ(engine.gates().size(), 3u);
  for (int s = 0; s < net->num_gate_sites(); ++s) {
    EXPECT_EQ(net->gate(s), engine.gate(s));
    EXPECT_EQ(engine.gate(s)->consumer(), net->gate_consumer(s));
  }
  engine.remove();
  EXPECT_EQ(net->gate(0), nullptr);
}

TEST(Engine, RejectsWrongBlockCount) {
  auto net = make_net();
  EXPECT_THROW(DynamicPruningEngine(*net,
                                    PruneSettings::uniform(2, 0.5f, 0.f)),
               Error);
}

TEST(Engine, PerBlockRatiosReachTheRightGates) {
  auto net = make_net();
  PruneSettings s = PruneSettings::uniform(3, 0.f, 0.f);
  s.channel_drop = {0.1f, 0.5f, 0.9f};
  DynamicPruningEngine engine(*net, s);
  EXPECT_FLOAT_EQ(engine.gate(0)->config().channel_drop, 0.1f);
  EXPECT_FLOAT_EQ(engine.gate(1)->config().channel_drop, 0.5f);
  EXPECT_FLOAT_EQ(engine.gate(2)->config().channel_drop, 0.9f);

  s.channel_drop = {0.2f, 0.2f, 0.2f};
  engine.apply_settings(s);
  EXPECT_FLOAT_EQ(engine.gate(2)->config().channel_drop, 0.2f);
}

TEST(Engine, SiteOverridesBeatBlockRatios) {
  auto net = make_net();
  PruneSettings s = PruneSettings::uniform(3, 0.5f, 0.f);
  s.site_overrides = {SiteOverride{1, 0.9f, 0.25f}};
  DynamicPruningEngine engine(*net, s);
  EXPECT_FLOAT_EQ(engine.gate(0)->config().channel_drop, 0.5f);
  EXPECT_FLOAT_EQ(engine.gate(1)->config().channel_drop, 0.9f);
  EXPECT_FLOAT_EQ(engine.gate(1)->config().spatial_drop, 0.25f);
  // clamped() applies to overrides too.
  const PruneSettings capped = s.clamped(0.3f);
  EXPECT_FLOAT_EQ(capped.site_overrides[0].channel_drop, 0.3f);
  // channel_only() zeroes the override's spatial part.
  EXPECT_FLOAT_EQ(s.channel_only().site_overrides[0].spatial_drop, 0.f);
}

TEST(Engine, SoftModePropagatesToGates) {
  auto net = make_net();
  PruneSettings s = PruneSettings::uniform(3, 0.5f, 0.f);
  s.mode = GateMode::kSoftSigmoid;
  DynamicPruningEngine engine(*net, s);
  EXPECT_EQ(engine.gate(0)->config().mode, GateMode::kSoftSigmoid);
  // Soft mode never reduces measured FLOPs.
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 12;
  spec.train_size = 8;
  spec.test_size = 8;
  const auto pair = data::make_synthetic_pair(spec);
  const auto dense = models::measure_dense_flops(*net, 3, 12, 12);
  const EvalResult soft = evaluate(*net, *pair.test, 8);
  EXPECT_DOUBLE_EQ(soft.mean_macs_per_sample,
                   static_cast<double>(dense.total_macs));
}

TEST(Engine, MaskedEvalReducesMeasuredFlops) {
  auto net = make_net();
  const auto dense = models::measure_dense_flops(*net, 3, 12, 12);

  const auto pair_spec = [] {
    data::SyntheticSpec s;
    s.num_classes = 4;
    s.height = s.width = 12;
    s.train_size = 8;
    s.test_size = 16;
    return s;
  }();
  const auto pair = data::make_synthetic_pair(pair_spec);

  DynamicPruningEngine engine(*net, PruneSettings::uniform(3, 0.5f, 0.f));
  const EvalResult gated = evaluate(*net, *pair.test, 8);
  EXPECT_GT(gated.mean_macs_per_sample, 0.0);
  EXPECT_LT(gated.mean_macs_per_sample,
            0.8 * static_cast<double>(dense.total_macs));

  // Disabling the gates restores the dense FLOPs exactly.
  engine.set_enabled(false);
  const EvalResult plain = evaluate(*net, *pair.test, 8);
  EXPECT_DOUBLE_EQ(plain.mean_macs_per_sample,
                   static_cast<double>(dense.total_macs));
}

TEST(Engine, SpatialPruningReducesFlopsOnAlignedSites) {
  auto net = make_net(/*pool=*/false);  // all sites spatially aligned
  const auto dense = models::measure_dense_flops(*net, 3, 12, 12);
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 12;
  spec.train_size = 8;
  spec.test_size = 8;
  const auto pair = data::make_synthetic_pair(spec);

  DynamicPruningEngine engine(*net, PruneSettings::uniform(3, 0.f, 0.5f));
  const EvalResult gated = evaluate(*net, *pair.test, 8);
  EXPECT_LT(gated.mean_macs_per_sample,
            0.85 * static_cast<double>(dense.total_macs));
}

TEST(Engine, MeasureDenseFlopsBypassesInstalledGates) {
  auto net = make_net();
  const auto before = models::measure_dense_flops(*net, 3, 12, 12);
  DynamicPruningEngine engine(*net, PruneSettings::uniform(3, 0.9f, 0.f));
  const auto with_gates = models::measure_dense_flops(*net, 3, 12, 12);
  EXPECT_EQ(before.total_macs, with_gates.total_macs);
  // Gates re-enabled afterwards.
  EXPECT_TRUE(engine.gate(0)->enabled());
}

TEST(Engine, KeepStatsReflectRatios) {
  auto net = make_net();
  DynamicPruningEngine engine(*net, PruneSettings::uniform(3, 0.5f, 0.f));
  net->set_training(false);
  Rng rng(3);
  Tensor x = Tensor::randn({2, 3, 12, 12}, rng);
  net->forward(x);
  const auto stats = engine.last_keep_stats();
  EXPECT_NEAR(stats.mean_channel_keep, 0.5, 0.01);
  EXPECT_DOUBLE_EQ(stats.mean_spatial_keep, 1.0);
}

TEST(Evaluate, ReportsAccuracyLossAndSamples) {
  auto net = make_net();
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 12;
  spec.train_size = 8;
  spec.test_size = 20;
  const auto pair = data::make_synthetic_pair(spec);
  const EvalResult r = evaluate(*net, *pair.test, 8);
  EXPECT_EQ(r.samples, 20);
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);
  EXPECT_GT(r.mean_loss, 0.0);
}

TEST(Evaluate, RestoresTrainingFlag) {
  auto net = make_net();
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 12;
  spec.train_size = 8;
  spec.test_size = 8;
  const auto pair = data::make_synthetic_pair(spec);
  net->set_training(true);
  evaluate(*net, *pair.test, 4);
  EXPECT_TRUE(net->is_training());
}

TEST(Sensitivity, BlockSweepShapesAndCleanup) {
  auto net = make_net();
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 12;
  spec.train_size = 8;
  spec.test_size = 12;
  const auto pair = data::make_synthetic_pair(spec);

  SensitivitySweep sweep;
  sweep.ratios = {0.2f, 0.8f};
  sweep.batch_size = 6;
  const auto curves = block_sensitivity(*net, *pair.test, sweep);
  ASSERT_EQ(curves.size(), 3u);
  for (const auto& c : curves) {
    EXPECT_EQ(c.ratios.size(), 2u);
    EXPECT_EQ(c.accuracy.size(), 2u);
  }
  // Gates removed afterwards.
  for (int s = 0; s < net->num_gate_sites(); ++s) {
    EXPECT_EQ(net->gate(s), nullptr);
  }
}

TEST(Sensitivity, SiteSweepCoversEverySite) {
  auto net = make_net();
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 12;
  spec.train_size = 8;
  spec.test_size = 12;
  const auto pair = data::make_synthetic_pair(spec);

  SensitivitySweep sweep;
  sweep.ratios = {0.5f};
  sweep.batch_size = 6;
  const auto curves = site_sensitivity(*net, *pair.test, sweep);
  ASSERT_EQ(static_cast<int>(curves.size()), net->num_gate_sites());
  for (int s = 0; s < net->num_gate_sites(); ++s) {
    EXPECT_EQ(curves[static_cast<size_t>(s)].block, s);
    EXPECT_EQ(curves[static_cast<size_t>(s)].accuracy.size(), 1u);
  }
  for (int s = 0; s < net->num_gate_sites(); ++s) {
    EXPECT_EQ(net->gate(s), nullptr);  // cleaned up
  }
}

TEST(Sensitivity, OrderComparisonProducesThreeCurves) {
  auto net = make_net();
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 12;
  spec.train_size = 8;
  spec.test_size = 12;
  const auto pair = data::make_synthetic_pair(spec);

  SensitivitySweep sweep;
  sweep.ratios = {0.5f};
  sweep.batch_size = 6;
  const auto curves = order_comparison(*net, *pair.test, 2, sweep);
  ASSERT_EQ(curves.size(), 3u);
  EXPECT_EQ(curves[0].order, MaskOrder::kAttention);
  EXPECT_EQ(curves[1].order, MaskOrder::kRandom);
  EXPECT_EQ(curves[2].order, MaskOrder::kInverseAttention);
  EXPECT_THROW(order_comparison(*net, *pair.test, 7, sweep), Error);
}

}  // namespace
}  // namespace antidote::core
