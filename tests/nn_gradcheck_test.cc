// Finite-difference gradient checks for every differentiable layer — the
// property tests that keep the training substrate honest.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pooling.h"
#include "test_util.h"

namespace antidote::nn {
namespace {

using antidote::testing::check_input_gradient;
using antidote::testing::check_parameter_gradients;

TEST(GradCheck, Conv2dInput) {
  Rng rng(100);
  Conv2d conv(2, 3, 3, 1, 1, /*bias=*/true);
  init_module(conv, rng);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  check_input_gradient(conv, x, rng);
}

TEST(GradCheck, Conv2dParameters) {
  Rng rng(101);
  Conv2d conv(2, 3, 3, 1, 1, /*bias=*/true);
  init_module(conv, rng);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  check_parameter_gradients(conv, x, rng);
}

TEST(GradCheck, Conv2dStrided) {
  Rng rng(102);
  Conv2d conv(2, 2, 3, 2, 1, /*bias=*/false);
  init_module(conv, rng);
  Tensor x = Tensor::randn({1, 2, 7, 7}, rng);
  check_input_gradient(conv, x, rng);
  check_parameter_gradients(conv, x, rng);
}

TEST(GradCheck, Conv2dNoPadding) {
  Rng rng(103);
  Conv2d conv(3, 2, 2, 1, 0, /*bias=*/true);
  init_module(conv, rng);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  check_input_gradient(conv, x, rng);
}

TEST(GradCheck, LinearInputAndParams) {
  Rng rng(104);
  Linear fc(6, 4);
  init_module(fc, rng);
  Tensor x = Tensor::randn({3, 6}, rng);
  check_input_gradient(fc, x, rng);
  check_parameter_gradients(fc, x, rng);
}

TEST(GradCheck, BatchNormTrainingInput) {
  Rng rng(105);
  BatchNorm2d bn(3);
  bn.set_training(true);
  // Offset data so normalization has work to do.
  Tensor x = Tensor::randn({4, 3, 3, 3}, rng, 1.5f, 2.f);
  check_input_gradient(bn, x, rng, 1e-3f, 5e-2f);
}

TEST(GradCheck, BatchNormTrainingParams) {
  Rng rng(106);
  BatchNorm2d bn(2);
  bn.set_training(true);
  Tensor x = Tensor::randn({4, 2, 3, 3}, rng, 1.f, 2.f);
  check_parameter_gradients(bn, x, rng, 1e-3f, 5e-2f);
}

TEST(GradCheck, BatchNormEvalInput) {
  Rng rng(107);
  BatchNorm2d bn(2);
  // Give the running stats some structure first.
  bn.set_training(true);
  Tensor warm = Tensor::randn({8, 2, 4, 4}, rng, 0.5f, 1.5f);
  bn.forward(warm);
  bn.set_training(false);
  Tensor x = Tensor::randn({2, 2, 4, 4}, rng);
  check_input_gradient(bn, x, rng);
}

TEST(GradCheck, ReLUInput) {
  Rng rng(108);
  ReLU relu;
  // Keep values away from the kink at 0 for a clean finite difference.
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng, 0.f, 2.f);
  for (int64_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i]) < 0.05f) x[i] = 0.2f;
  }
  check_input_gradient(relu, x, rng);
}

TEST(GradCheck, MaxPoolInput) {
  Rng rng(109);
  MaxPool2d pool(2);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  check_input_gradient(pool, x, rng);
}

TEST(GradCheck, AvgPoolInput) {
  Rng rng(110);
  AvgPool2d pool(2);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  check_input_gradient(pool, x, rng);
}

TEST(GradCheck, GlobalAvgPoolInput) {
  Rng rng(111);
  GlobalAvgPool gap;
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  check_input_gradient(gap, x, rng);
}

TEST(GradCheck, FlattenInput) {
  Rng rng(112);
  Flatten flat;
  Tensor x = Tensor::randn({2, 2, 3, 3}, rng);
  check_input_gradient(flat, x, rng);
}

TEST(GradCheck, SequentialConvBnReluChain) {
  Rng rng(113);
  Sequential seq;
  seq.add<Conv2d>(2, 4, 3, 1, 1, false);
  seq.add<BatchNorm2d>(4);
  seq.add<ReLU>();
  seq.add<Conv2d>(4, 2, 3, 1, 1, false);
  init_module(seq, rng);
  seq.set_training(true);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  check_input_gradient(seq, x, rng, 1e-3f, 6e-2f);
}

TEST(GradCheck, SoftmaxCrossEntropyMatchesFiniteDifference) {
  Rng rng(114);
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<int> labels = {0, 2, 4};
  loss.forward(logits, labels);
  Tensor analytic = loss.backward();

  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.size(); i += 2) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const double hi = loss.forward(logits, labels);
    logits[i] = orig - eps;
    const double lo = loss.forward(logits, labels);
    logits[i] = orig;
    EXPECT_NEAR(analytic[i], (hi - lo) / (2 * eps), 2e-3);
  }
}

}  // namespace
}  // namespace antidote::nn
