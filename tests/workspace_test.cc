// Workspace arena semantics plus the ExecutionContext contract: context
// forwards must be bitwise-identical to plain eval forwards, reproducible
// across passes, and the arena must stop growing after the first pass.
#include <gtest/gtest.h>

#include <cstring>

#include "core/engine.h"
#include "models/small_cnn.h"
#include "nn/execution_context.h"
#include "nn/init.h"
#include "plan/plan.h"
#include "tensor/gemm.h"
#include "tensor/workspace.h"

namespace antidote {
namespace {

TEST(Workspace, AlignmentAndReuse) {
  Workspace ws;
  float* a = ws.alloc_floats(3);
  int* b = ws.alloc<int>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % Workspace::kAlign, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % Workspace::kAlign, 0u);
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(b));
  const int64_t grows = ws.grow_count();
  ws.reset();
  float* a2 = ws.alloc_floats(3);
  EXPECT_EQ(a, a2);  // same block recycled
  EXPECT_EQ(ws.grow_count(), grows);
}

TEST(Workspace, MarkRewindIsLifo) {
  Workspace ws;
  float* keep = ws.alloc_floats(16);
  const Workspace::Mark m = ws.mark();
  float* scratch = ws.alloc_floats(64);
  ws.rewind(m);
  float* scratch2 = ws.alloc_floats(64);
  EXPECT_EQ(scratch, scratch2);  // rewound space reused
  EXPECT_NE(keep, scratch);
  keep[0] = 1.f;  // still writable
}

TEST(Workspace, CoalescesAfterOverflow) {
  Workspace ws;
  // Force a spill into a second block.
  ws.alloc_floats(1 << 18);
  ws.alloc_floats(1 << 20);
  EXPECT_GE(ws.block_count(), 2u);
  ws.reset();
  EXPECT_EQ(ws.block_count(), 1u);
  const int64_t grows = ws.grow_count();
  // The coalesced block covers the whole previous pass.
  ws.alloc_floats(1 << 18);
  ws.alloc_floats(1 << 20);
  EXPECT_EQ(ws.block_count(), 1u);
  EXPECT_EQ(ws.grow_count(), grows);
}

TEST(Tensor, BorrowSharesExternalMemory) {
  float buf[6] = {1, 2, 3, 4, 5, 6};
  Tensor t = Tensor::borrow(buf, {2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.data(), buf);
  t.at({1, 2}) = 9.f;
  EXPECT_FLOAT_EQ(buf[5], 9.f);
  Tensor view = t.reshape({3, 2});
  EXPECT_EQ(view.data(), buf);
}

TEST(Shape, MimicsVectorInterface) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s, (std::vector<int>{2, 3, 4}));
  Shape t = s;
  EXPECT_EQ(s, t);
  t.push_back(5);
  EXPECT_NE(s, t);
  EXPECT_EQ(t.to_vector(), (std::vector<int>{2, 3, 4, 5}));
}

std::unique_ptr<models::SmallCnn> make_net(Rng& rng) {
  models::SmallCnnConfig cfg;
  cfg.num_classes = 7;
  cfg.widths = {8, 16, 16};
  auto net = std::make_unique<models::SmallCnn>(cfg);
  nn::init_module(*net, rng);
  net->set_training(false);
  return net;
}

TEST(ExecutionContext, DenseForwardBitwiseMatchesPlain) {
  Rng rng(5);
  auto net = make_net(rng);
  Tensor x = Tensor::randn({3, 3, 16, 16}, rng);

  Tensor plain = net->forward(x);
  nn::ExecutionContext ctx;
  ctx.begin_pass();
  Tensor with_ctx = net->forward(x, ctx);

  ASSERT_TRUE(plain.same_shape(with_ctx));
  EXPECT_EQ(std::memcmp(plain.data(), with_ctx.data(),
                        static_cast<size_t>(plain.size()) * sizeof(float)),
            0);
}

TEST(ExecutionContext, ConsecutivePassesBitwiseEqualAndArenaStopsGrowing) {
  Rng rng(6);
  auto net = make_net(rng);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);

  nn::ExecutionContext ctx;
  ctx.begin_pass();
  Tensor first = net->forward(x, ctx).clone();  // clone: survives begin_pass
  // Warm-up may grow (and reset() may coalesce) the arena; afterwards the
  // grow counter must go quiet.
  ctx.begin_pass();
  net->forward(x, ctx);
  const int64_t grows = ctx.workspace().grow_count();
  const size_t capacity = ctx.workspace().capacity_bytes();
  for (int pass = 0; pass < 3; ++pass) {
    ctx.begin_pass();
    Tensor again = net->forward(x, ctx);
    ASSERT_TRUE(first.same_shape(again));
    EXPECT_EQ(std::memcmp(first.data(), again.data(),
                          static_cast<size_t>(first.size()) * sizeof(float)),
              0);
  }
  EXPECT_EQ(ctx.workspace().grow_count(), grows);
  EXPECT_EQ(ctx.workspace().capacity_bytes(), capacity);
}

TEST(ExecutionContext, MaskedForwardBitwiseMatchesPlain) {
  Rng rng(7);
  auto net = make_net(rng);
  core::PruneSettings settings =
      core::PruneSettings::uniform(net->num_blocks(), 0.4f, 0.3f);
  core::DynamicPruningEngine engine(*net, settings);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  // This test pins the EXACT-identity contract (same masks executed =>
  // same MAC count as the module walk); union coarsening deliberately
  // executes superset MACs and has its own parity coverage in
  // tests/coarsen_test.cc.
  net->set_coarsen_policy({plan::CoarsenMode::kOff, 1.0});

  Tensor plain = net->forward(x);
  const int64_t plain_macs = net->last_macs();

  nn::ExecutionContext ctx;
  ctx.begin_pass();
  Tensor with_ctx = net->forward(x, ctx);
  ASSERT_TRUE(plain.same_shape(with_ctx));
  EXPECT_EQ(std::memcmp(plain.data(), with_ctx.data(),
                        static_cast<size_t>(plain.size()) * sizeof(float)),
            0);
  EXPECT_EQ(net->last_macs(), plain_macs);

  // Steady state: repeat passes stay bitwise-stable and allocation-free.
  ctx.begin_pass();
  net->forward(x, ctx);
  const int64_t grows = ctx.workspace().grow_count();
  for (int pass = 0; pass < 3; ++pass) {
    ctx.begin_pass();
    Tensor again = net->forward(x, ctx);
    EXPECT_EQ(std::memcmp(plain.data(), again.data(),
                          static_cast<size_t>(plain.size()) * sizeof(float)),
              0);
  }
  EXPECT_EQ(ctx.workspace().grow_count(), grows);
  engine.remove();
}

// The blocked GEMM must preserve the naive kernel's per-element
// accumulation order exactly: same products, same addition sequence, so
// the result is bitwise-identical, independent of blocking.
TEST(GemmBlocked, BitwiseMatchesNaiveOrder) {
  Rng rng(8);
  const int m = 70, n = 130, k = 300;  // forces the blocked path + edges
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c({m, n});
  gemm_nn(m, n, k, 1.f, a.data(), b.data(), 0.f, c.data());

  std::vector<float> ref(static_cast<size_t>(m) * n, 0.f);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a.data()[static_cast<int64_t>(i) * k + p];
      for (int j = 0; j < n; ++j) {
        ref[static_cast<size_t>(i) * n + j] +=
            av * b.data()[static_cast<int64_t>(p) * n + j];
      }
    }
  }
  EXPECT_EQ(std::memcmp(c.data(), ref.data(), ref.size() * sizeof(float)), 0);
}

}  // namespace
}  // namespace antidote
