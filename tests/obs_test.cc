// Observability primitives (src/obs/): log-scale latency histogram
// bucket/percentile math pinned down EXACTLY on known distributions, the
// hardware-counter graceful-unavailability path, and trace-ring
// wraparound semantics. The executor-level tracing behavior (zero-alloc
// with tracing armed, cross-worker group spans) lives in
// trace_profile_test.cc under a forced 4-thread pool.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace antidote::obs {
namespace {

// --- LatencyHistogram -------------------------------------------------------

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.percentile(99.0), 0.0);
}

TEST(Histogram, BucketIndexAndEdgesAreConsistent) {
  // The lower edge of bucket i maps back to bucket i, and edges grow by
  // exactly 2^(1/4) per bucket.
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const double edge = LatencyHistogram::bucket_lower_edge(i);
    // Nudge above the edge: the edge itself is a floating-point boundary.
    EXPECT_EQ(LatencyHistogram::bucket_index(edge * 1.0001), i) << i;
  }
  const double ratio = LatencyHistogram::bucket_lower_edge(5) /
                       LatencyHistogram::bucket_lower_edge(4);
  EXPECT_NEAR(ratio, std::exp2(0.25), 1e-12);
}

TEST(Histogram, SingleValueRoundTripsToItsRepresentative) {
  // Any recorded value must come back from every percentile as the
  // geometric midpoint of its bucket — exactly, not approximately.
  for (double ms : {0.0042, 0.5, 1.0, 1.5, 12.0, 333.3, 1e4}) {
    LatencyHistogram h;
    h.record(ms);
    const double rep = LatencyHistogram::bucket_representative(ms);
    EXPECT_EQ(h.percentile(0.0), rep) << ms;
    EXPECT_EQ(h.percentile(50.0), rep) << ms;
    EXPECT_EQ(h.percentile(100.0), rep) << ms;
    // The representative lies inside the value's bucket, which means
    // within one bucket ratio (+/-9.1%) of the value itself.
    EXPECT_NEAR(rep / ms, 1.0, 0.10) << ms;
  }
}

TEST(Histogram, KnownDistributionPercentilesAreExact) {
  // 100 values: 90 at 1 ms, 9 at 8 ms, 1 at 64 ms — a distribution whose
  // percentile ranks are unambiguous. Octave-separated values can never
  // share a bucket, so the expected results are exact representatives.
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(1.0);
  for (int i = 0; i < 9; ++i) h.record(8.0);
  h.record(64.0);
  EXPECT_EQ(h.count(), 100u);
  const double rep1 = LatencyHistogram::bucket_representative(1.0);
  const double rep8 = LatencyHistogram::bucket_representative(8.0);
  const double rep64 = LatencyHistogram::bucket_representative(64.0);
  EXPECT_EQ(h.percentile(50.0), rep1);   // rank 50  -> the 1 ms mass
  EXPECT_EQ(h.percentile(90.0), rep1);   // rank 90  -> still 1 ms
  EXPECT_EQ(h.percentile(95.0), rep8);   // rank 95  -> the 8 ms mass
  EXPECT_EQ(h.percentile(99.0), rep8);   // rank 99  -> last of the 8 ms
  EXPECT_EQ(h.percentile(100.0), rep64); // rank 100 -> the tail value
}

TEST(Histogram, PercentilesAreMonotonic) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(0.01 * i);  // 0.01 .. 10 ms
  double prev = 0.0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << p;
    prev = v;
  }
}

TEST(Histogram, ClampsBothEndsAndIgnoresJunk) {
  LatencyHistogram h;
  h.record(0.0);       // below the first bucket -> bucket 0
  h.record(-5.0);      // negative -> bucket 0
  h.record(1e12);      // far off the top -> last bucket
  h.record(std::nan(""));  // NaN -> bucket 0 (not a crash, not a miss)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.percentile(0.0),
            LatencyHistogram::bucket_representative(LatencyHistogram::kMinMs));
  EXPECT_EQ(h.percentile(100.0),
            LatencyHistogram::bucket_representative(1e12));
}

TEST(Histogram, ResetZeroes) {
  LatencyHistogram h;
  h.record(3.0);
  h.record(4.0);
  EXPECT_EQ(h.count(), 2u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
}

TEST(Histogram, ConcurrentRecordsLoseNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4, kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(0.5 + 0.25 * t);  // a distinct bucket per thread
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// --- CounterSet fallback ----------------------------------------------------

TEST(PerfCounters, ForcedUnavailableReadsFalseAndZeroFills) {
  CounterSet::force_unavailable(true);
  CounterSet set;  // constructed AFTER the kill-switch: must not open
  EXPECT_FALSE(set.available());
  HwCounters c;
  c.cycles = 123;  // poison: read() must zero-fill on failure
  c.valid = 0xff;
  EXPECT_FALSE(set.read(c));
  EXPECT_EQ(c.valid, 0u);
  EXPECT_EQ(c.cycles, 0u);
  EXPECT_EQ(c.instructions, 0u);
  CounterSet::force_unavailable(false);
}

TEST(PerfCounters, DeltaIntersectsAndAccumulateUnions) {
  HwCounters begin, end;
  begin.cycles = 100;
  begin.valid = 1u << static_cast<uint8_t>(CounterId::kCycles);
  end.cycles = 150;
  end.instructions = 900;
  end.valid = (1u << static_cast<uint8_t>(CounterId::kCycles)) |
              (1u << static_cast<uint8_t>(CounterId::kInstructions));
  const HwCounters d = HwCounters::delta(end, begin);
  EXPECT_TRUE(d.has(CounterId::kCycles));
  EXPECT_FALSE(d.has(CounterId::kInstructions));  // absent at begin
  EXPECT_EQ(d.cycles, 50u);

  HwCounters acc;
  acc.accumulate(d);
  acc.accumulate(end);
  EXPECT_TRUE(acc.has(CounterId::kCycles));
  EXPECT_TRUE(acc.has(CounterId::kInstructions));
  EXPECT_EQ(acc.cycles, 200u);
  EXPECT_EQ(acc.instructions, 900u);
}

// --- TraceRing --------------------------------------------------------------

TEST(TraceRing, WrapsOverwritingOldestWithoutGrowing) {
  TraceRing ring;
  ring.reserve(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    TraceEvent e;
    e.t0_ns = i;
    e.t1_ns = i + 1;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 8u);       // fixed capacity, never grew
  EXPECT_EQ(ring.wrapped(), 12u);   // 20 pushed - 8 surviving
  // Survivors are the newest 8, oldest first.
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.chronological(i).t0_ns, static_cast<int64_t>(12 + i));
  }
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.wrapped(), 0u);
  EXPECT_EQ(ring.capacity(), 8u);  // clear keeps the storage
}

TEST(TraceRing, PushToUnreservedRingIsANoOp) {
  TraceRing ring;
  ring.push(TraceEvent{});
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TraceEvent, IsExactlyOneCacheLine) {
  EXPECT_EQ(sizeof(TraceEvent), 64u);
}

}  // namespace
}  // namespace antidote::obs
