// Adam optimizer and model summary.
#include <gtest/gtest.h>

#include <cmath>

#include "base/error.h"
#include "base/rng.h"
#include "models/factory.h"
#include "models/summary.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace antidote {
namespace {

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step is ±lr (up to eps).
  nn::Parameter p("w", Tensor::from_values({2}, {1.f, -1.f}));
  p.grad = Tensor::from_values({2}, {0.3f, -0.7f});
  nn::Adam adam({&p}, {.lr = 0.01});
  adam.step();
  EXPECT_NEAR(p.value[0], 1.f - 0.01f, 1e-5f);
  EXPECT_NEAR(p.value[1], -1.f + 0.01f, 1e-5f);
  EXPECT_EQ(adam.steps_taken(), 1);
}

TEST(Adam, AdaptsToGradientScale) {
  // Two coordinates with gradients of very different magnitude receive
  // nearly equal-sized updates — the defining property vs plain SGD.
  nn::Parameter p("w", Tensor::from_values({2}, {0.f, 0.f}));
  nn::Adam adam({&p}, {.lr = 0.1});
  for (int i = 0; i < 50; ++i) {
    p.grad = Tensor::from_values({2}, {100.f, 0.01f});
    adam.step();
  }
  EXPECT_NEAR(p.value[0] / p.value[1], 1.0, 0.2);
}

TEST(Adam, WeightDecayRespectsDecayFlag) {
  nn::Parameter decayed("w", Tensor::from_values({1}, {1.f}));
  nn::Parameter frozen("b", Tensor::from_values({1}, {1.f}),
                       /*weight_decay=*/false);
  nn::Adam adam({&decayed, &frozen}, {.lr = 0.1, .weight_decay = 1.0});
  adam.zero_grad();
  adam.step();
  EXPECT_LT(decayed.value[0], 1.f);
  EXPECT_FLOAT_EQ(frozen.value[0], 1.f);
}

TEST(Adam, TrainsALinearClassifier) {
  Rng rng(60);
  const int n = 32;
  Tensor x({n, 4});
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    labels[static_cast<size_t>(i)] = cls;
    for (int j = 0; j < 4; ++j) {
      x.at({i, j}) = static_cast<float>(rng.normal(cls ? 1.0 : -1.0, 0.4));
    }
  }
  nn::Linear fc(4, 2);
  nn::init_module(fc, rng);
  nn::Adam adam(fc.parameters(), {.lr = 0.05});
  nn::SoftmaxCrossEntropy loss;
  for (int step = 0; step < 60; ++step) {
    adam.zero_grad();
    loss.forward(fc.forward(x), labels);
    fc.backward(loss.backward());
    adam.step();
  }
  EXPECT_GT(ops::accuracy(fc.forward(x), labels), 0.95);
}

TEST(Adam, ValidatesOptions) {
  nn::Parameter p("w", Tensor({1}));
  EXPECT_THROW(nn::Adam({&p}, {.beta1 = 1.0}), Error);
  EXPECT_THROW(nn::Adam({&p}, {.eps = 0.0}), Error);
}

TEST(Summary, RowsAndTotalsAreConsistent) {
  Rng rng(61);
  auto net = models::make_model("small_cnn", 4, 1.f, rng);
  const models::ModelSummary s = models::summarize(*net, 3, 16, 16);
  ASSERT_EQ(s.rows.size(), 3u);  // conv0, conv1, fc
  EXPECT_EQ(s.rows[0].type, "Conv2d");
  EXPECT_EQ(s.rows[2].type, "Linear");
  // conv0: 3*8*9 weights; fc: 16*4 + 4.
  EXPECT_EQ(s.rows[0].parameters, 216);
  EXPECT_EQ(s.rows[2].parameters, 68);
  // Totals include BatchNorm parameters not shown as rows.
  EXPECT_EQ(s.total_parameters, 216 + 16 + 1152 + 32 + 68);
  int64_t macs = 0;
  for (const auto& r : s.rows) macs += r.macs;
  EXPECT_EQ(macs, s.total_macs);
  // Rendering includes a totals line.
  EXPECT_NE(s.to_string().find("total"), std::string::npos);
}

TEST(Summary, MatchesPaperVggMagnitude) {
  Rng rng(62);
  auto net = models::make_model("vgg16", 10, 1.f, rng);
  const models::ModelSummary s = models::summarize(*net, 3, 32, 32);
  EXPECT_EQ(s.rows.size(), 14u);
  EXPECT_NEAR(static_cast<double>(s.total_macs), 3.13e8, 0.03e8);
  // VGG16 (conv-only variant) is ~14.7M parameters at width 1.0.
  EXPECT_GT(s.total_parameters, 14e6);
  EXPECT_LT(s.total_parameters, 16e6);
}

}  // namespace
}  // namespace antidote
