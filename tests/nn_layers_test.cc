// Forward-behaviour tests for the nn layers, including the sparse
// (masked) convolution execution paths that AntiDote's pruning drives,
// plus optimizer, schedules, init and checkpointing.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "base/error.h"
#include "base/io.h"
#include "base/rng.h"
#include "nn/batchnorm.h"
#include "nn/checkpoint.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/schedule.h"
#include "tensor/ops.h"

namespace antidote::nn {
namespace {

Tensor zero_channels(const Tensor& x, const std::vector<int>& kept) {
  Tensor out = x.clone();
  const int n = x.dim(0), c = x.dim(1);
  const int64_t hw = static_cast<int64_t>(x.dim(2)) * x.dim(3);
  std::vector<bool> keep(static_cast<size_t>(c), false);
  for (int k : kept) keep[static_cast<size_t>(k)] = true;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      if (keep[static_cast<size_t>(ch)]) continue;
      float* plane = out.data() + (static_cast<int64_t>(b) * c + ch) * hw;
      for (int64_t j = 0; j < hw; ++j) plane[j] = 0.f;
    }
  }
  return out;
}

// --- Conv2d dense ---

TEST(Conv2d, IdentityKernelReproducesInput) {
  Conv2d conv(1, 1, 1, 1, 0, /*bias=*/false);
  conv.weight().value.fill(1.f);
  Rng rng(1);
  Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
  Tensor y = conv.forward(x);
  EXPECT_TRUE(ops::allclose(y, x));
}

TEST(Conv2d, KnownAveragingKernel) {
  Conv2d conv(1, 1, 3, 1, 1, /*bias=*/false);
  conv.weight().value.fill(1.f / 9.f);
  Tensor x = Tensor::ones({1, 1, 3, 3});
  Tensor y = conv.forward(x);
  // Center sees all 9 ones; corners see 4 (rest padding).
  EXPECT_NEAR(y.at({0, 0, 1, 1}), 1.f, 1e-6f);
  EXPECT_NEAR(y.at({0, 0, 0, 0}), 4.f / 9.f, 1e-6f);
}

TEST(Conv2d, BiasIsAdded) {
  Conv2d conv(1, 2, 1, 1, 0, /*bias=*/true);
  conv.weight().value.zero();
  conv.bias().value[0] = 1.5f;
  conv.bias().value[1] = -2.f;
  Tensor x = Tensor::ones({1, 1, 2, 2});
  Tensor y = conv.forward(x);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 1.5f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 1, 1}), -2.f);
}

TEST(Conv2d, StrideReducesResolution) {
  Conv2d conv(1, 1, 3, 2, 1, false);
  Tensor x({1, 1, 8, 8});
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_EQ(y.dim(3), 4);
}

TEST(Conv2d, ReportsDenseMacs) {
  Conv2d conv(3, 8, 3, 1, 1, false);
  Rng rng(2);
  Tensor x = Tensor::randn({2, 3, 10, 10}, rng);
  conv.forward(x);
  // 2 samples * 8 filters * 100 positions * 27 patch entries.
  EXPECT_EQ(conv.last_macs(), 2LL * 8 * 100 * 27);
  EXPECT_EQ(conv.dense_macs_per_sample(10, 10), 8LL * 100 * 27);
}

TEST(Conv2d, RejectsWrongInputChannels) {
  Conv2d conv(3, 4, 3, 1, 1, false);
  Tensor x({1, 2, 8, 8});
  EXPECT_THROW(conv.forward(x), Error);
}

// --- Conv2d masked execution ---

class MaskedConvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(42);
    conv_ = std::make_unique<Conv2d>(4, 6, 3, 1, 1, /*bias=*/true);
    init_module(*conv_, rng);
    Rng xrng(7);
    x_ = Tensor::randn({2, 4, 6, 6}, xrng);
  }
  std::unique_ptr<Conv2d> conv_;
  Tensor x_;
};

TEST_F(MaskedConvTest, EmptyMasksMatchDense) {
  Tensor dense = conv_->forward(x_);
  conv_->set_runtime_masks(std::vector<ConvRuntimeMask>(2));
  Tensor masked = conv_->forward(x_);
  EXPECT_LT(ops::max_abs_diff(dense, masked), 1e-4f);
}

TEST_F(MaskedConvTest, ChannelMaskEqualsDenseOnZeroedInput) {
  const std::vector<int> kept = {0, 2};
  std::vector<ConvRuntimeMask> masks(2);
  masks[0].channels = kept;
  masks[1].channels = kept;
  conv_->set_runtime_masks(masks);
  Tensor masked = conv_->forward(x_);

  Tensor dense_ref = conv_->forward(zero_channels(x_, kept));
  EXPECT_LT(ops::max_abs_diff(masked, dense_ref), 1e-4f);
}

TEST_F(MaskedConvTest, PerSampleMasksDiffer) {
  std::vector<ConvRuntimeMask> masks(2);
  masks[0].channels = {0, 1};
  masks[1].channels = {2, 3};
  conv_->set_runtime_masks(masks);
  Tensor masked = conv_->forward(x_);

  Tensor ref0 = conv_->forward(zero_channels(x_, {0, 1}));
  Tensor ref1 = conv_->forward(zero_channels(x_, {2, 3}));
  const int64_t per_sample = masked.size() / 2;
  for (int64_t i = 0; i < per_sample; ++i) {
    EXPECT_NEAR(masked[i], ref0[i], 1e-3f);
    EXPECT_NEAR(masked[per_sample + i], ref1[per_sample + i], 1e-3f);
  }
}

TEST_F(MaskedConvTest, SpatialMaskEqualsDenseOnColumnMaskedInput) {
  // Spatial masks use an input-stationary shift-GEMM: the result must be
  // *exactly* the dense convolution over the input with the pruned columns
  // zeroed across all channels (no output position is skipped, so there is
  // no train/test mismatch).
  const std::vector<int> kept_pos = {0, 5, 17, 35};
  std::vector<ConvRuntimeMask> masks(2);
  masks[0].positions = kept_pos;
  masks[1].positions = kept_pos;
  conv_->set_runtime_masks(masks);
  Tensor masked = conv_->forward(x_);

  Tensor x_zeroed = x_.clone();
  std::vector<bool> keep(36, false);
  for (int p : kept_pos) keep[static_cast<size_t>(p)] = true;
  for (int b = 0; b < 2; ++b) {
    for (int c = 0; c < 4; ++c) {
      for (int p = 0; p < 36; ++p) {
        if (!keep[static_cast<size_t>(p)]) {
          x_zeroed.at4(b, c, p / 6, p % 6) = 0.f;
        }
      }
    }
  }
  Tensor want = conv_->forward(x_zeroed);
  EXPECT_LT(ops::max_abs_diff(masked, want), 1e-4f);
}

TEST_F(MaskedConvTest, SpatialMaskMacsScaleWithKeptColumns) {
  std::vector<ConvRuntimeMask> masks(2);
  masks[0].positions = {0, 1, 2, 3};  // 4 of 36 columns
  masks[1].positions = {10, 20};      // 2 of 36 columns
  conv_->set_runtime_masks(masks);
  conv_->forward(x_);
  // MACs = out_c * kept_columns * in_c * k*k per sample.
  EXPECT_EQ(conv_->last_macs(), 6LL * 4 * 4 * 9 + 6LL * 2 * 4 * 9);
}

TEST_F(MaskedConvTest, OutChannelMaskSkipsFilters) {
  const std::vector<int> kept_out = {1, 4};
  std::vector<ConvRuntimeMask> masks(2);
  masks[0].out_channels = kept_out;
  masks[1].out_channels = kept_out;
  conv_->set_runtime_masks(masks);
  Tensor masked = conv_->forward(x_);
  Tensor dense = conv_->forward(x_);

  for (int b = 0; b < 2; ++b) {
    for (int oc = 0; oc < 6; ++oc) {
      const bool kept = (oc == 1 || oc == 4);
      for (int h = 0; h < 6; ++h) {
        for (int w = 0; w < 6; ++w) {
          if (kept) {
            EXPECT_NEAR(masked.at({b, oc, h, w}), dense.at({b, oc, h, w}),
                        1e-4f);
          } else {
            EXPECT_EQ(masked.at({b, oc, h, w}), 0.f);
          }
        }
      }
    }
  }
}

TEST(MaskedConv, SpatialMaskOnRectangularInput) {
  // h != w exercises the flattened-index arithmetic of the shift-GEMM.
  Rng rng(55);
  Conv2d conv(3, 4, 3, 1, 1, true);
  init_module(conv, rng);
  conv.bias().value = Tensor::randn({4}, rng);
  Tensor x = Tensor::randn({1, 3, 4, 7}, rng);

  const std::vector<int> kept = {1, 6, 13, 20, 27};  // of 28 columns
  std::vector<ConvRuntimeMask> masks(1);
  masks[0].positions = kept;
  conv.set_runtime_masks(masks);
  Tensor masked = conv.forward(x);

  Tensor x_zeroed = x.clone();
  std::vector<bool> keep(28, false);
  for (int p : kept) keep[static_cast<size_t>(p)] = true;
  for (int c = 0; c < 3; ++c) {
    for (int p = 0; p < 28; ++p) {
      if (!keep[static_cast<size_t>(p)]) x_zeroed.at4(0, c, p / 7, p % 7) = 0.f;
    }
  }
  Tensor want = conv.forward(x_zeroed);
  EXPECT_LT(ops::max_abs_diff(masked, want), 1e-4f);
}

TEST(MaskedConv, AllThreeMasksMatchExplicitReference) {
  Rng rng(56);
  Conv2d conv(4, 5, 3, 1, 1, true);
  init_module(conv, rng);
  conv.bias().value = Tensor::randn({5}, rng);
  Tensor x = Tensor::randn({1, 4, 5, 5}, rng);

  std::vector<ConvRuntimeMask> masks(1);
  masks[0].channels = {1, 3};
  masks[0].positions = {0, 6, 12, 18, 24};
  masks[0].out_channels = {0, 2, 4};
  conv.set_runtime_masks(masks);
  Tensor masked = conv.forward(x);

  // Reference: zero dropped channels and columns, dense conv, then zero
  // the skipped output filters entirely (no bias either).
  Tensor x_zeroed = x.clone();
  for (int c = 0; c < 4; ++c) {
    const bool ch_kept = (c == 1 || c == 3);
    for (int p = 0; p < 25; ++p) {
      const bool pos_kept =
          (p == 0 || p == 6 || p == 12 || p == 18 || p == 24);
      if (!ch_kept || !pos_kept) x_zeroed.at4(0, c, p / 5, p % 5) = 0.f;
    }
  }
  Tensor want = conv.forward(x_zeroed);
  for (int oc : {1, 3}) {
    for (int p = 0; p < 25; ++p) want.at4(0, oc, p / 5, p % 5) = 0.f;
  }
  EXPECT_LT(ops::max_abs_diff(masked, want), 1e-4f);
}

TEST_F(MaskedConvTest, MacsScaleWithAllThreeMasks) {
  std::vector<ConvRuntimeMask> masks(2);
  masks[0].channels = {0, 2};      // 2 of 4 input channels
  masks[0].positions = {0, 1, 2};  // 3 of 36 positions
  masks[0].out_channels = {5};     // 1 of 6 filters
  masks[1] = masks[0];
  conv_->set_runtime_masks(masks);
  conv_->forward(x_);
  // Per sample: 1 filter * 3 positions * (2 ch * 9) patch = 54 MACs.
  EXPECT_EQ(conv_->last_macs(), 2 * 54);
}

TEST_F(MaskedConvTest, MasksAreConsumedByOneForward) {
  std::vector<ConvRuntimeMask> masks(2);
  masks[0].channels = {0};
  masks[1].channels = {0};
  conv_->set_runtime_masks(masks);
  EXPECT_TRUE(conv_->has_pending_masks());
  conv_->forward(x_);
  EXPECT_FALSE(conv_->has_pending_masks());
  // Next forward is dense again.
  conv_->forward(x_);
  EXPECT_EQ(conv_->last_macs(), 2LL * 6 * 36 * 4 * 9);
}

TEST_F(MaskedConvTest, BackwardAfterMaskedForwardThrows) {
  std::vector<ConvRuntimeMask> masks(2);
  masks[0].channels = {0};
  masks[1].channels = {0};
  conv_->set_runtime_masks(masks);
  Tensor y = conv_->forward(x_);
  EXPECT_THROW(conv_->backward(y), Error);
}

TEST_F(MaskedConvTest, MaskBatchSizeMismatchThrows) {
  conv_->set_runtime_masks(std::vector<ConvRuntimeMask>(3));
  EXPECT_THROW(conv_->forward(x_), Error);
}

TEST_F(MaskedConvTest, RejectsOutOfRangeMaskIndices) {
  std::vector<ConvRuntimeMask> bad(2);
  bad[0].channels = {7};
  EXPECT_THROW(conv_->set_runtime_masks(bad), Error);
  std::vector<ConvRuntimeMask> bad2(2);
  bad2[0].out_channels = {6};
  EXPECT_THROW(conv_->set_runtime_masks(bad2), Error);
}

TEST(MaskedConv, SpatialMaskOnStridedConvThrows) {
  Conv2d conv(2, 2, 3, 2, 1, false);
  Rng rng(1);
  Tensor x = Tensor::randn({1, 2, 8, 8}, rng);
  std::vector<ConvRuntimeMask> masks(1);
  masks[0].positions = {0, 1};
  conv.set_runtime_masks(masks);
  EXPECT_THROW(conv.forward(x), Error);
}

// --- Linear ---

TEST(Linear, MatchesManualAffine) {
  Linear fc(3, 2);
  fc.weight().value = Tensor::from_values({2, 3}, {1, 0, 0, 0, 1, 0});
  fc.bias().value = Tensor::from_values({2}, {0.5f, -0.5f});
  Tensor x = Tensor::from_values({1, 3}, {10, 20, 30});
  Tensor y = fc.forward(x);
  EXPECT_FLOAT_EQ(y.at({0, 0}), 10.5f);
  EXPECT_FLOAT_EQ(y.at({0, 1}), 19.5f);
  EXPECT_EQ(fc.last_macs(), 6);
}

// --- BatchNorm2d ---

TEST(BatchNorm, TrainingNormalizesBatch) {
  BatchNorm2d bn(2);
  Rng rng(3);
  Tensor x = Tensor::randn({4, 2, 5, 5}, rng, 3.f, 2.f);
  bn.set_training(true);
  Tensor y = bn.forward(x);
  // Per-channel mean ~0 and var ~1 after normalization (gamma=1, beta=0).
  Tensor mean = ops::channel_mean_nchw(y);
  for (int c = 0; c < 2; ++c) {
    double m = 0;
    for (int b = 0; b < 4; ++b) m += mean.at({b, c});
    EXPECT_NEAR(m / 4, 0.0, 1e-4);
  }
  double var = 0;
  for (int64_t i = 0; i < y.size(); ++i) var += double(y[i]) * y[i];
  EXPECT_NEAR(var / static_cast<double>(y.size()), 1.0, 0.05);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  Rng rng(4);
  bn.set_training(true);
  for (int i = 0; i < 50; ++i) {
    Tensor x = Tensor::randn({8, 1, 4, 4}, rng, 5.f, 1.f);
    bn.forward(x);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.f, 0.3f);
  EXPECT_NEAR(bn.running_var()[0], 1.f, 0.3f);

  bn.set_training(false);
  Tensor x = Tensor::full({1, 1, 2, 2}, 5.f);
  Tensor y = bn.forward(x);
  EXPECT_NEAR(y[0], 0.f, 0.4f);
}

TEST(BatchNorm, GammaBetaAffectOutput) {
  BatchNorm2d bn(1);
  bn.gamma().value[0] = 2.f;
  bn.beta().value[0] = 1.f;
  bn.set_training(false);  // running stats are mean 0, var 1
  Tensor x = Tensor::full({1, 1, 1, 1}, 3.f);
  Tensor y = bn.forward(x);
  EXPECT_NEAR(y[0], 2.f * 3.f + 1.f, 1e-3f);
}

// --- pooling ---

TEST(MaxPool, PicksWindowMaximum) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from_values({1, 1, 2, 4},
                                 {1, 5, 2, 0,
                                  3, 4, 8, 7});
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.f);
  EXPECT_FLOAT_EQ(y[1], 8.f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from_values({1, 1, 2, 2}, {1, 9, 2, 3});
  pool.forward(x);
  Tensor dy = Tensor::from_values({1, 1, 1, 1}, {7.f});
  Tensor dx = pool.backward(dy);
  EXPECT_FLOAT_EQ(dx.at({0, 0, 0, 1}), 7.f);
  EXPECT_FLOAT_EQ(dx.at({0, 0, 0, 0}), 0.f);
}

TEST(AvgPool, ComputesWindowMean) {
  AvgPool2d pool(2);
  Tensor x = Tensor::from_values({1, 1, 2, 2}, {1, 2, 3, 6});
  Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y[0], 3.f);
}

TEST(GlobalAvgPool, SqueezesToChannelMeans) {
  GlobalAvgPool gap;
  Tensor x = Tensor::from_values({1, 2, 1, 2}, {1, 3, 10, 20});
  Tensor y = gap.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 2}));
  EXPECT_FLOAT_EQ(y.at({0, 0}), 2.f);
  EXPECT_FLOAT_EQ(y.at({0, 1}), 15.f);
}

// --- ReLU / Flatten / Dropout modules ---

TEST(ReLULayer, ForwardAndBackward) {
  ReLU relu;
  Tensor x = Tensor::from_values({1, 4}, {-1, 2, -3, 4});
  Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.f);
  EXPECT_FLOAT_EQ(y[3], 4.f);
  Tensor dy = Tensor::ones({1, 4});
  Tensor dx = relu.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.f);
  EXPECT_FLOAT_EQ(dx[1], 1.f);
}

TEST(FlattenLayer, RoundTripsShape) {
  Flatten flat;
  Tensor x({2, 3, 4, 5});
  Tensor y = flat.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 60}));
  Tensor dx = flat.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(DropoutLayer, EvalIsIdentity) {
  Dropout drop(0.5f);
  drop.set_training(false);
  Rng rng(5);
  Tensor x = Tensor::randn({4, 8}, rng);
  Tensor y = drop.forward(x);
  EXPECT_TRUE(ops::allclose(y, x, 0.f, 0.f));
}

TEST(DropoutLayer, TrainingZeroesAndRescales) {
  Dropout drop(0.5f, /*seed=*/11);
  drop.set_training(true);
  Tensor x = Tensor::ones({1, 10000});
  Tensor y = drop.forward(x);
  int zeros = 0;
  for (int64_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.f);  // 1/(1-p)
    }
  }
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.05);
}

TEST(DropoutLayer, RejectsInvalidP) {
  EXPECT_THROW(Dropout(1.f), Error);
  EXPECT_THROW(Dropout(-0.1f), Error);
}

// --- loss ---

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy loss;
  Tensor logits({4, 10});
  const std::vector<int> labels = {0, 3, 5, 9};
  const double l = loss.forward(logits, labels);
  EXPECT_NEAR(l, std::log(10.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  SoftmaxCrossEntropy loss;
  Rng rng(6);
  Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<int> labels = {1, 2, 4};
  loss.forward(logits, labels);
  Tensor g = loss.backward();
  for (int i = 0; i < 3; ++i) {
    double row = 0;
    for (int j = 0; j < 5; ++j) row += g.at({i, j});
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadLabel) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  const std::vector<int> labels = {3};
  EXPECT_THROW(loss.forward(logits, labels), Error);
}

// --- optimizer ---

TEST(Sgd, PlainStepDescendsGradient) {
  Parameter p("w", Tensor::from_values({2}, {1.f, -1.f}));
  p.grad = Tensor::from_values({2}, {0.5f, -0.5f});
  Sgd sgd({&p}, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.95f);
  EXPECT_FLOAT_EQ(p.value[1], -0.95f);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p("w", Tensor::from_values({1}, {0.f}));
  Sgd sgd({&p}, {.lr = 1.0, .momentum = 0.5, .weight_decay = 0.0});
  p.grad.fill(1.f);
  sgd.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value[0], -1.f);
  p.grad.fill(1.f);
  sgd.step();  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(Sgd, WeightDecayRespectsDecayFlag) {
  Parameter decayed("w", Tensor::from_values({1}, {1.f}));
  Parameter not_decayed("b", Tensor::from_values({1}, {1.f}),
                        /*weight_decay=*/false);
  Sgd sgd({&decayed, &not_decayed},
          {.lr = 0.1, .momentum = 0.0, .weight_decay = 1.0});
  sgd.zero_grad();
  sgd.step();
  EXPECT_FLOAT_EQ(decayed.value[0], 0.9f);      // decayed toward zero
  EXPECT_FLOAT_EQ(not_decayed.value[0], 1.f);   // untouched
}

// --- schedules ---

TEST(Schedules, CosineEndpoints) {
  CosineSchedule s(0.1, 10, 0.0);
  EXPECT_NEAR(s.lr(0), 0.1, 1e-9);
  EXPECT_NEAR(s.lr(9), 0.0, 1e-9);
  EXPECT_GT(s.lr(4), s.lr(5));  // monotone decreasing
}

TEST(Schedules, StepDecays) {
  StepSchedule s(1.0, {3, 6}, 0.1);
  EXPECT_DOUBLE_EQ(s.lr(2), 1.0);
  EXPECT_DOUBLE_EQ(s.lr(3), 0.1);
  EXPECT_NEAR(s.lr(7), 0.01, 1e-12);
}

TEST(Schedules, WarmupRampsUp) {
  auto s = WarmupSchedule(std::make_unique<ConstantSchedule>(1.0), 4);
  EXPECT_LT(s.lr(0), s.lr(3));
  EXPECT_DOUBLE_EQ(s.lr(4), 1.0);
}

// --- init ---

TEST(Init, KaimingScalesWithFanIn) {
  Rng rng(7);
  Tensor w({64, 16, 3, 3});
  kaiming_normal(w, rng);
  double sq = 0;
  for (int64_t i = 0; i < w.size(); ++i) sq += double(w[i]) * w[i];
  const double std_measured = std::sqrt(sq / static_cast<double>(w.size()));
  const double std_expected = std::sqrt(2.0 / (16 * 9));
  EXPECT_NEAR(std_measured, std_expected, 0.15 * std_expected);
}

// --- Sequential & checkpoint ---

TEST(Sequential, ChainsForwardAndParams) {
  Sequential seq;
  seq.add<Conv2d>(1, 2, 3, 1, 1, false);
  seq.add<ReLU>();
  seq.add<Flatten>();
  Rng rng(8);
  init_module(seq, rng);
  Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
  Tensor y = seq.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 32}));
  EXPECT_EQ(seq.parameters().size(), 1u);  // conv weight only
  Tensor dx = seq.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

class CheckpointTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/antidote_ckpt_test.bin";
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(CheckpointTest, RoundTripRestoresExactState) {
  Rng rng(9);
  Sequential a;
  a.add<Conv2d>(2, 3, 3, 1, 1, true);
  a.add<BatchNorm2d>(3);
  init_module(a, rng);
  // Touch BN running stats so buffers are non-trivial.
  a.set_training(true);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  a.forward(x);
  save_checkpoint(a, path_);

  Sequential b;
  b.add<Conv2d>(2, 3, 3, 1, 1, true);
  b.add<BatchNorm2d>(3);
  load_checkpoint(b, path_);

  a.set_training(false);
  b.set_training(false);
  Tensor ya = a.forward(x);
  Tensor yb = b.forward(x);
  EXPECT_TRUE(ops::allclose(ya, yb, 0.f, 0.f));
}

TEST_F(CheckpointTest, ArchitectureMismatchThrows) {
  Rng rng(10);
  Sequential a;
  a.add<Conv2d>(2, 3, 3, 1, 1, false);
  init_module(a, rng);
  save_checkpoint(a, path_);

  Sequential wrong_shape;
  wrong_shape.add<Conv2d>(2, 4, 3, 1, 1, false);
  EXPECT_THROW(load_checkpoint(wrong_shape, path_), Error);

  Sequential extra_layers;
  extra_layers.add<Conv2d>(2, 3, 3, 1, 1, false);
  extra_layers.add<BatchNorm2d>(3);
  EXPECT_THROW(load_checkpoint(extra_layers, path_), Error);
}

TEST(Checkpoint, GarbageFileRejected) {
  const std::string path = ::testing::TempDir() + "/antidote_garbage.bin";
  {
    BinaryWriter w(path);
    w.write_u32(0x12345678);  // wrong magic
    w.close();
  }
  Sequential m;
  m.add<Conv2d>(1, 1, 1, 1, 0, false);
  EXPECT_THROW(load_checkpoint(m, path), Error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace antidote::nn
