// Property-based suites over the substrate and the dynamic-pruning runtime:
//   - Conv2d against a naive direct-convolution reference across a
//     parameterized geometry sweep;
//   - masked execution against dense execution on masked inputs, for
//     random masks across drop ratios;
//   - whole-model exactness: channel-only dynamic pruning with compute
//     skipping produces bit-identical logits to mask-only (zeroing)
//     execution — skipping zero channels is exact, not approximate;
//   - analytic MAC accounting vs measured MACs;
//   - end-to-end training determinism from a fixed seed.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "base/rng.h"
#include "core/engine.h"
#include "core/evaluate.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "models/small_cnn.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace antidote {
namespace {

// Naive direct convolution: y[n,oc,oy,ox] = sum_{ic,ky,kx} w * x + bias.
Tensor conv_reference(const Tensor& x, const Tensor& w, const Tensor& bias,
                      bool has_bias, int stride, int pad) {
  const int n = x.dim(0), in_c = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const int out_c = w.dim(0), k = w.dim(2);
  const int oh = (h + 2 * pad - k) / stride + 1;
  const int ow = (ww + 2 * pad - k) / stride + 1;
  Tensor y({n, out_c, oh, ow});
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_c; ++oc) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          double acc = has_bias ? bias[oc] : 0.0;
          for (int ic = 0; ic < in_c; ++ic) {
            for (int ky = 0; ky < k; ++ky) {
              const int iy = oy * stride - pad + ky;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k; ++kx) {
                const int ix = ox * stride - pad + kx;
                if (ix < 0 || ix >= ww) continue;
                acc += double(w.at({oc, ic, ky, kx})) * x.at({b, ic, iy, ix});
              }
            }
          }
          y.at({b, oc, oy, ox}) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

struct ConvCase {
  int in_c, out_c, k, stride, pad, h, w;
  bool bias;
};

class ConvGeometry : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometry, MatchesDirectConvolution) {
  const ConvCase c = GetParam();
  Rng rng(404);
  nn::Conv2d conv(c.in_c, c.out_c, c.k, c.stride, c.pad, c.bias);
  nn::init_module(conv, rng);
  if (c.bias) {
    // Non-zero bias so the bias path is actually exercised.
    conv.bias().value = Tensor::randn({c.out_c}, rng);
  }
  Tensor x = Tensor::randn({2, c.in_c, c.h, c.w}, rng);
  Tensor got = conv.forward(x);
  Tensor want = conv_reference(x, conv.weight().value, conv.bias().value,
                               c.bias, c.stride, c.pad);
  ASSERT_TRUE(got.same_shape(want));
  EXPECT_LT(ops::max_abs_diff(got, want), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvGeometry,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 5, 5, false},
                      ConvCase{3, 8, 3, 1, 1, 8, 8, false},
                      ConvCase{4, 2, 3, 2, 1, 9, 9, true},
                      ConvCase{2, 5, 5, 1, 2, 7, 7, true},
                      ConvCase{8, 8, 3, 1, 1, 4, 6, false},
                      ConvCase{5, 3, 2, 2, 0, 8, 8, true},
                      ConvCase{1, 16, 7, 1, 3, 9, 9, false},
                      ConvCase{6, 6, 3, 3, 1, 10, 10, true}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      const ConvCase& c = info.param;
      return "ic" + std::to_string(c.in_c) + "oc" + std::to_string(c.out_c) +
             "k" + std::to_string(c.k) + "s" + std::to_string(c.stride) +
             "p" + std::to_string(c.pad) + (c.bias ? "_bias" : "_nobias");
    });

// --- random-mask masked-execution property sweep ---

class MaskedConvRatio : public ::testing::TestWithParam<int> {};

TEST_P(MaskedConvRatio, MaskedEqualsDenseOnMaskedInput) {
  const int drop_pct = GetParam();
  Rng rng(500 + drop_pct);
  const int in_c = 10, out_c = 7, h = 6, w = 6;
  nn::Conv2d conv(in_c, out_c, 3, 1, 1, true);
  nn::init_module(conv, rng);
  conv.bias().value = Tensor::randn({out_c}, rng);
  Tensor x = Tensor::randn({2, in_c, h, w}, rng);

  // Random kept channel sets, independent per sample.
  auto random_kept = [&rng](int n, int pct) {
    const int k = std::max(1, n - n * pct / 100);
    std::vector<int> perm = rng.permutation(n);
    perm.resize(static_cast<size_t>(k));
    std::sort(perm.begin(), perm.end());
    return perm;
  };
  std::vector<nn::ConvRuntimeMask> masks(2);
  masks[0].channels = random_kept(in_c, drop_pct);
  masks[1].channels = random_kept(in_c, drop_pct);

  // Reference: zero the dropped channels, run dense.
  Tensor x_masked = x.clone();
  for (int b = 0; b < 2; ++b) {
    std::vector<bool> keep(in_c, false);
    for (int ch : masks[b ? 1 : 0].channels) keep[static_cast<size_t>(ch)] = true;
    for (int ch = 0; ch < in_c; ++ch) {
      if (keep[static_cast<size_t>(ch)]) continue;
      for (int y = 0; y < h; ++y) {
        for (int xx = 0; xx < w; ++xx) x_masked.at4(b, ch, y, xx) = 0.f;
      }
    }
  }
  Tensor want = conv.forward(x_masked);

  conv.set_runtime_masks(masks);
  Tensor got = conv.forward(x);
  EXPECT_LT(ops::max_abs_diff(got, want), 1e-3f);

  // Analytic MAC accounting.
  const int64_t expected_macs =
      static_cast<int64_t>(out_c) * h * w * 9 *
      (static_cast<int64_t>(masks[0].channels.size()) +
       static_cast<int64_t>(masks[1].channels.size()));
  EXPECT_EQ(conv.last_macs(), expected_macs);
}

INSTANTIATE_TEST_SUITE_P(DropRatios, MaskedConvRatio,
                         ::testing::Values(0, 10, 25, 50, 75, 90),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "drop" + std::to_string(info.param) + "pct";
                         });

// --- whole-model exactness of channel skipping ---

class ModelExactness : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelExactness, SkippingMatchesMaskOnlyExecution) {
  // Dynamic pruning admits an exact reference: zero the dropped channel
  // planes / spatial columns and run everything densely (gates in
  // mask-only mode). With compute skipping — gathered GEMM for channels,
  // input-stationary shift-GEMM for columns — the logits must agree up to
  // summation-order float noise.
  const std::string name = GetParam();
  Rng rng(42);
  auto net = models::make_model(name, 10, 0.25f, rng);
  net->set_training(false);

  core::PruneSettings settings =
      core::PruneSettings::uniform(net->num_blocks(), 0.4f, 0.4f);
  core::DynamicPruningEngine engine(*net, settings);

  // 32x32 input: VGG16's five pooling stages need at least 32 pixels.
  Rng xrng(77);
  Tensor x = Tensor::randn({2, 3, 32, 32}, xrng);

  // Reference pass: gates mask (zero) but never instruct consumers.
  for (auto* g : engine.gates()) g->set_forward_to_consumer(false);
  Tensor want = net->forward(x);
  const int64_t dense_macs = net->last_macs();

  // Skipping pass.
  for (auto* g : engine.gates()) g->set_forward_to_consumer(true);
  Tensor got = net->forward(x);
  const int64_t skipped_macs = net->last_macs();

  engine.remove();
  EXPECT_LT(ops::max_abs_diff(got, want), 1e-3f) << name;
  EXPECT_LT(skipped_macs, dense_macs) << name;
}

INSTANTIATE_TEST_SUITE_P(Models, ModelExactness,
                         ::testing::Values("small_cnn", "vgg16", "resnet20"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// --- end-to-end determinism ---

TEST(Determinism, IdenticalSeedsGiveIdenticalTrainingRuns) {
  auto run_once = [] {
    data::SyntheticSpec spec;
    spec.num_classes = 3;
    spec.height = spec.width = 10;
    spec.train_size = 30;
    spec.test_size = 15;
    const auto pair = data::make_synthetic_pair(spec);
    Rng rng(9);
    auto net = models::make_model("small_cnn", 3, 1.f, rng);
    core::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 10;
    tc.augment = true;  // exercise the augmentation RNG path too
    core::Trainer trainer(*net, *pair.train, tc);
    const auto history = trainer.fit();
    const auto eval = core::evaluate(*net, *pair.test, 8);
    return std::make_pair(history.back().loss, eval.accuracy);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(Determinism, DynamicPruningEvalIsDeterministic) {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.height = spec.width = 10;
  spec.train_size = 8;
  spec.test_size = 20;
  const auto pair = data::make_synthetic_pair(spec);
  Rng rng(10);
  auto net = models::make_model("small_cnn", 3, 1.f, rng);
  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.5f, 0.f));
  const auto r1 = core::evaluate(*net, *pair.test, 8);
  const auto r2 = core::evaluate(*net, *pair.test, 8);
  engine.remove();
  EXPECT_DOUBLE_EQ(r1.accuracy, r2.accuracy);
  EXPECT_DOUBLE_EQ(r1.mean_macs_per_sample, r2.mean_macs_per_sample);
}

}  // namespace
}  // namespace antidote
