// Cross-feature workflow tests: the sequences a user of the library
// actually runs — train, TTD, checkpoint, reload, prune, evaluate — and
// the interactions between modules they exercise.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>

#include "base/error.h"
#include "base/rng.h"
#include "baselines/fbs_gate.h"
#include "baselines/static_pruner.h"
#include "core/antidote.h"
#include "models/resnet.h"
#include "models/small_cnn.h"
#include "models/vgg.h"
#include "tensor/ops.h"

namespace antidote {
namespace {

data::DatasetPair tiny_data(int classes = 4, int train = 48, int test = 24,
                            int size = 12) {
  data::SyntheticSpec spec;
  spec.num_classes = classes;
  spec.height = spec.width = size;
  spec.train_size = train;
  spec.test_size = test;
  return data::make_synthetic_pair(spec);
}

TEST(Workflow, TtdCheckpointReloadGivesIdenticalPrunedEval) {
  const std::string path = ::testing::TempDir() + "/antidote_ttd_ckpt.bin";
  const auto pair = tiny_data();

  core::PruneSettings target = core::PruneSettings::uniform(2, 0.5f, 0.f);
  Rng rng(31);
  auto net = models::make_model("small_cnn", 4, 1.f, rng);
  core::TtdConfig cfg;
  cfg.target = target;
  cfg.warmup_ratio = 0.25f;
  cfg.step = 0.25f;
  cfg.final_epochs = 1;
  cfg.train.epochs = 1;
  cfg.train.batch_size = 16;
  cfg.train.augment = false;
  core::TtdTrainer ttd(*net, *pair.train, cfg);
  ttd.run();
  const core::EvalResult before = core::evaluate(*net, *pair.test, 8);
  // Gates hold no persistent state; the checkpoint is gate-independent.
  nn::save_checkpoint(*net, path);

  Rng rng2(999);
  auto reloaded = models::make_model("small_cnn", 4, 1.f, rng2);
  nn::load_checkpoint(*reloaded, path);
  core::DynamicPruningEngine engine(*reloaded, target);
  const core::EvalResult after = core::evaluate(*reloaded, *pair.test, 8);

  EXPECT_DOUBLE_EQ(before.accuracy, after.accuracy);
  EXPECT_DOUBLE_EQ(before.mean_macs_per_sample, after.mean_macs_per_sample);
  std::filesystem::remove(path);
}

TEST(Workflow, StaticPruningWorksOnResidualNets) {
  // ResNet gate sites are the inner convs of basic blocks, so static
  // surgery must leave skip-connection widths intact — verify the whole
  // pipeline runs and actually cuts FLOPs on resnet20.
  const auto pair = tiny_data(4, 48, 24, 16);
  Rng rng(32);
  auto net = models::make_model("resnet20", 4, 0.5f, rng);
  const auto dense = models::measure_dense_flops(*net, 3, 16, 16);

  baselines::StaticPruneConfig cfg;
  cfg.criterion = baselines::StaticCriterion::kL1;
  cfg.drop_per_block = {0.5f, 0.5f, 0.5f};
  baselines::StaticPruner pruner(*net, cfg);
  pruner.prune(*pair.train);
  core::TrainConfig ft;
  ft.epochs = 1;
  ft.batch_size = 16;
  ft.augment = false;
  pruner.finetune(*pair.train, ft);
  const core::EvalResult result = pruner.evaluate_pruned(*pair.test, 8);
  EXPECT_LT(result.mean_macs_per_sample,
            0.85 * static_cast<double>(dense.total_macs));
  EXPECT_EQ(result.samples, 24);
}

TEST(Workflow, EvaluateHookRunsOncePerBatch) {
  const auto pair = tiny_data(4, 8, 20);
  Rng rng(33);
  auto net = models::make_model("small_cnn", 4, 1.f, rng);
  int calls = 0;
  int last_batch = -1;
  core::evaluate(*net, *pair.test, 8, [&](int n) {
    ++calls;
    last_batch = n;
  });
  EXPECT_EQ(calls, 3);       // 20 samples / 8 -> 8, 8, 4
  EXPECT_EQ(last_batch, 4);  // the ragged final batch size is reported
}

TEST(Workflow, TrainerWithAugmentationStillLearns) {
  const auto pair = tiny_data(2, 40, 20, 12);
  Rng rng(34);
  auto net = models::make_model("small_cnn", 2, 1.f, rng);
  core::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 10;
  tc.base_lr = 0.08;
  tc.augment = true;
  tc.augment_pad = 2;
  core::Trainer trainer(*net, *pair.train, tc);
  const auto history = trainer.fit();
  EXPECT_LT(history.back().loss, history.front().loss);
}

TEST(Workflow, TinyVggTrainsEndToEnd) {
  const auto pair = tiny_data(2, 24, 12, 32);  // VGG needs 32px
  Rng rng(35);
  auto net = models::make_model("vgg16", 2, 0.0625f, rng);
  core::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 12;
  tc.augment = false;
  core::Trainer trainer(*net, *pair.train, tc);
  const auto history = trainer.fit();
  EXPECT_LT(history.back().loss, history.front().loss * 1.2);
  EXPECT_TRUE(std::isfinite(history.back().loss));
}

TEST(Workflow, TinyResnetTrainsEndToEnd) {
  const auto pair = tiny_data(2, 24, 12, 16);
  Rng rng(36);
  auto net = models::make_model("resnet20", 2, 0.5f, rng);
  core::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 12;
  tc.augment = false;
  core::Trainer trainer(*net, *pair.train, tc);
  const auto history = trainer.fit();
  EXPECT_TRUE(std::isfinite(history.back().loss));
  EXPECT_LT(history.back().loss, history.front().loss * 1.2);
}

TEST(Workflow, EngineReinstallAfterRemove) {
  Rng rng(37);
  auto net = models::make_model("small_cnn", 4, 1.f, rng);
  {
    core::DynamicPruningEngine engine(
        *net, core::PruneSettings::uniform(net->num_blocks(), 0.5f, 0.f));
    engine.remove();
  }
  // Second engine on the same model works and gates are live again.
  core::DynamicPruningEngine engine2(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.25f, 0.f));
  EXPECT_EQ(static_cast<int>(engine2.gates().size()), net->num_gate_sites());
  EXPECT_FLOAT_EQ(engine2.gate(0)->config().channel_drop, 0.25f);
  engine2.remove();
}

TEST(Workflow, CheckpointNamesAreStableAcrossModelFamilies) {
  // Stable hierarchical names are the checkpoint format's contract.
  Rng rng(38);
  models::Vgg vgg(models::VggConfig{.num_classes = 2, .width_mult = 0.0625f});
  std::set<std::string> vgg_names;
  vgg.visit_state("", [&](const std::string& name, Tensor&) {
    vgg_names.insert(name);
  });
  EXPECT_TRUE(vgg_names.count("features.0.conv.weight"));
  EXPECT_TRUE(vgg_names.count("features.0.bn.running_mean"));
  EXPECT_TRUE(vgg_names.count("fc.weight"));
  EXPECT_TRUE(vgg_names.count("fc.bias"));

  models::ResNetCifar resnet(
      models::ResNetConfig{.num_classes = 2, .blocks_per_group = 3});
  std::set<std::string> res_names;
  resnet.visit_state("", [&](const std::string& name, Tensor&) {
    res_names.insert(name);
  });
  EXPECT_TRUE(res_names.count("stem.conv.weight"));
  EXPECT_TRUE(res_names.count("block0.conv1.weight"));
  EXPECT_TRUE(res_names.count("block8.bn2.gamma"));
  EXPECT_TRUE(res_names.count("fc.bias"));
}

TEST(Workflow, GatedTrainingThenDenseEvalMatchesDisabledGates) {
  // After TTD, disabling the engine must give exactly the dense model.
  const auto pair = tiny_data();
  Rng rng(39);
  auto net = models::make_model("small_cnn", 4, 1.f, rng);
  core::TtdConfig cfg;
  cfg.target = core::PruneSettings::uniform(2, 0.4f, 0.f);
  cfg.final_epochs = 1;
  cfg.train.epochs = 1;
  cfg.train.batch_size = 16;
  cfg.train.augment = false;
  core::TtdTrainer ttd(*net, *pair.train, cfg);
  ttd.run();

  ttd.engine().set_enabled(false);
  const core::EvalResult disabled = core::evaluate(*net, *pair.test, 8);
  ttd.engine().remove();
  const core::EvalResult removed = core::evaluate(*net, *pair.test, 8);
  EXPECT_DOUBLE_EQ(disabled.accuracy, removed.accuracy);
  EXPECT_DOUBLE_EQ(disabled.mean_macs_per_sample,
                   removed.mean_macs_per_sample);
}

TEST(Workflow, FbsGateStatePersistsThroughCheckpoints) {
  // Gates with learnable state (the FBS saliency predictor) must survive
  // a save/load cycle when installed in a model.
  const std::string path = ::testing::TempDir() + "/antidote_fbs_ckpt.bin";
  Rng rng(41);
  auto net = models::make_model("small_cnn", 4, 1.f, rng);
  auto gate = std::make_unique<baselines::FbsGate>(
      net->gate_producer(0)->out_channels(), 0.5f, net->gate_consumer(0));
  baselines::FbsGate* raw = gate.get();
  Rng wrng(4);
  raw->parameters()[0]->value = Tensor::randn(
      raw->parameters()[0]->value.shape(), wrng);
  net->install_gate(0, std::move(gate));
  nn::save_checkpoint(*net, path);

  Rng rng2(4242);
  auto reloaded = models::make_model("small_cnn", 4, 1.f, rng2);
  auto gate2 = std::make_unique<baselines::FbsGate>(
      reloaded->gate_producer(0)->out_channels(), 0.5f,
      reloaded->gate_consumer(0));
  baselines::FbsGate* raw2 = gate2.get();
  reloaded->install_gate(0, std::move(gate2));
  nn::load_checkpoint(*reloaded, path);
  EXPECT_TRUE(ops::allclose(raw2->parameters()[0]->value,
                            raw->parameters()[0]->value, 0.f, 0.f));

  // A gateless model cannot load a gated checkpoint (extra tensors).
  Rng rng3(5);
  auto gateless = models::make_model("small_cnn", 4, 1.f, rng3);
  EXPECT_THROW(nn::load_checkpoint(*gateless, path), Error);
  std::filesystem::remove(path);
}

TEST(Workflow, ResnetSpatialPruningCutsFlops) {
  // Spatial masks work through ResNet blocks (conv2 is grid-preserving),
  // including the stride-2 transition blocks where the gate observes the
  // already-downsampled map.
  Rng rng(43);
  auto net = models::make_model("resnet20", 4, 0.5f, rng);
  const auto pair = tiny_data(4, 8, 16, 16);
  const auto dense = models::measure_dense_flops(*net, 3, 16, 16);
  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(3, 0.f, 0.5f));
  const core::EvalResult gated = core::evaluate(*net, *pair.test, 8);
  engine.remove();
  EXPECT_LT(gated.mean_macs_per_sample,
            0.85 * static_cast<double>(dense.total_macs));
}

TEST(Workflow, UmbrellaHeaderExposesTheApi) {
  // Compile-time test: everything the README shows comes from antidote.h.
  Rng rng(40);
  auto net = models::make_model("small_cnn", 2, 1.f, rng);
  core::PruneSettings s = core::PruneSettings::uniform(net->num_blocks(),
                                                       0.5f, 0.f);
  core::DynamicPruningEngine engine(*net, s);
  EXPECT_EQ(engine.gates().size(), 2u);
  engine.remove();
}

}  // namespace
}  // namespace antidote
