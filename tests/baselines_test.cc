// Static-pruning baselines: criteria, stats gate, pruner pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "base/error.h"
#include "base/rng.h"
#include "baselines/criteria.h"
#include "baselines/fbs_gate.h"
#include "baselines/static_pruner.h"
#include "baselines/stats_gate.h"
#include "core/evaluate.h"
#include "core/mask.h"
#include "data/synthetic.h"
#include "core/trainer.h"
#include "models/flops.h"
#include "models/small_cnn.h"
#include "nn/init.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace antidote::baselines {
namespace {

std::unique_ptr<models::SmallCnn> make_net() {
  models::SmallCnnConfig cfg;
  cfg.num_classes = 4;
  cfg.widths = {8, 16};
  auto net = std::make_unique<models::SmallCnn>(cfg);
  Rng rng(31);
  nn::init_module(*net, rng);
  return net;
}

data::DatasetPair tiny_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 12;
  spec.train_size = 32;
  spec.test_size = 16;
  return data::make_synthetic_pair(spec);
}

TEST(Criteria, L1ScoresMatchFilterNorms) {
  nn::Conv2d conv(2, 3, 3, 1, 1, false);
  conv.weight().value.zero();
  // Filter 1 gets weight magnitude 2 everywhere -> largest L1.
  for (int i = 0; i < 2 * 9; ++i) {
    conv.weight().value[1 * 2 * 9 + i] = 2.f;
    conv.weight().value[2 * 2 * 9 + i] = -1.f;
  }
  Rng rng(1);
  const auto l1 = weight_filter_scores(conv, StaticCriterion::kL1, rng);
  EXPECT_FLOAT_EQ(l1[0], 0.f);
  EXPECT_FLOAT_EQ(l1[1], 36.f);
  EXPECT_FLOAT_EQ(l1[2], 18.f);
  const auto l2 = weight_filter_scores(conv, StaticCriterion::kL2, rng);
  EXPECT_NEAR(l2[1], std::sqrt(18.f * 4.f), 1e-4f);
}

TEST(Criteria, GeometricMedianFindsTheOutlier) {
  nn::Conv2d conv(1, 3, 1, 1, 0, false);
  // Filters at positions 0, 0.1, and 10: the outlier has the largest total
  // distance (most important under GM), the middle one the smallest.
  conv.weight().value[0] = 0.f;
  conv.weight().value[1] = 0.1f;
  conv.weight().value[2] = 10.f;
  Rng rng(2);
  const auto gm = weight_filter_scores(conv, StaticCriterion::kGeometricMedian,
                                       rng);
  EXPECT_GT(gm[2], gm[0]);
  EXPECT_GT(gm[0], 0.f);
  EXPECT_LT(gm[1], gm[0] + 1e-6f);  // middle filter is most redundant
}

TEST(Criteria, RandomScoresAreSeeded) {
  nn::Conv2d conv(1, 8, 1, 1, 0, false);
  Rng r1(5), r2(5);
  EXPECT_EQ(weight_filter_scores(conv, StaticCriterion::kRandom, r1),
            weight_filter_scores(conv, StaticCriterion::kRandom, r2));
}

TEST(Criteria, DataDrivenCriteriaRejectWeightOnlyPath) {
  nn::Conv2d conv(1, 2, 1, 1, 0, false);
  Rng rng(1);
  EXPECT_THROW(weight_filter_scores(conv, StaticCriterion::kTaylor, rng),
               Error);
  EXPECT_TRUE(criterion_needs_data(StaticCriterion::kTaylor));
  EXPECT_TRUE(criterion_needs_data(StaticCriterion::kActivation));
  EXPECT_FALSE(criterion_needs_data(StaticCriterion::kL1));
}

TEST(StatsGate, AccumulatesActivationMeans) {
  ChannelStatsGate gate(2);
  Tensor x({1, 2, 2, 2});
  for (int j = 0; j < 4; ++j) {
    x.at({0, 0, j / 2, j % 2}) = 1.f;
    x.at({0, 1, j / 2, j % 2}) = -3.f;
  }
  gate.forward(x);
  gate.forward(x);
  const auto act = gate.mean_abs_activation();
  EXPECT_FLOAT_EQ(act[0], 1.f);
  EXPECT_FLOAT_EQ(act[1], 3.f);
  EXPECT_EQ(gate.samples_seen(), 2);
}

TEST(StatsGate, TaylorPairsActivationWithGradient) {
  ChannelStatsGate gate(2);
  Tensor x({1, 2, 1, 1});
  x.at({0, 0, 0, 0}) = 2.f;
  x.at({0, 1, 0, 0}) = 2.f;
  gate.forward(x);
  Tensor dy({1, 2, 1, 1});
  dy.at({0, 0, 0, 0}) = 0.f;   // channel 0: no gradient -> taylor 0
  dy.at({0, 1, 0, 0}) = 3.f;   // channel 1: |2*3| = 6
  gate.backward(dy);
  const auto taylor = gate.mean_abs_taylor();
  EXPECT_FLOAT_EQ(taylor[0], 0.f);
  EXPECT_FLOAT_EQ(taylor[1], 6.f);
}

TEST(StatsGate, ForwardIsIdentity) {
  ChannelStatsGate gate(3);
  Rng rng(3);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  Tensor y = gate.forward(x);
  EXPECT_TRUE(ops::allclose(y, x, 0.f, 0.f));
}

class StaticPrunerTest : public ::testing::TestWithParam<StaticCriterion> {};

TEST_P(StaticPrunerTest, PipelineReducesFlopsAndKeepsModelFunctional) {
  auto net = make_net();
  const auto pair = tiny_data();
  const auto dense = models::measure_dense_flops(*net, 3, 12, 12);

  StaticPruneConfig cfg;
  cfg.criterion = GetParam();
  cfg.drop_per_block = {0.5f, 0.5f};
  cfg.calibration_batches = 2;
  cfg.calibration_batch_size = 8;
  StaticPruner pruner(*net, cfg);
  pruner.prune(*pair.train);

  ASSERT_EQ(pruner.kept_per_site().size(), 2u);
  EXPECT_EQ(pruner.kept_per_site()[0].size(), 4u);  // 8 * (1-0.5)
  EXPECT_EQ(pruner.kept_per_site()[1].size(), 8u);  // 16 * (1-0.5)

  const core::EvalResult result = pruner.evaluate_pruned(*pair.test, 8);
  EXPECT_EQ(result.samples, 16);
  EXPECT_LT(result.mean_macs_per_sample,
            0.8 * static_cast<double>(dense.total_macs));
}

INSTANTIATE_TEST_SUITE_P(
    AllCriteria, StaticPrunerTest,
    ::testing::Values(StaticCriterion::kL1, StaticCriterion::kL2,
                      StaticCriterion::kTaylor,
                      StaticCriterion::kGeometricMedian,
                      StaticCriterion::kActivation, StaticCriterion::kRandom),
    [](const ::testing::TestParamInfo<StaticCriterion>& info) {
      return criterion_name(info.param);
    });

TEST(StaticPruner, PrunedFiltersAreZeroedAndStayZeroThroughFinetune) {
  auto net = make_net();
  const auto pair = tiny_data();
  StaticPruneConfig cfg;
  cfg.criterion = StaticCriterion::kL1;
  cfg.drop_per_block = {0.5f, 0.25f};
  StaticPruner pruner(*net, cfg);
  pruner.prune(*pair.train);

  core::TrainConfig ft;
  ft.epochs = 2;
  ft.batch_size = 16;
  ft.base_lr = 0.05;
  ft.augment = false;
  pruner.finetune(*pair.train, ft);

  // Every pruned filter's weights must still be exactly zero.
  for (int s = 0; s < net->num_gate_sites(); ++s) {
    nn::Conv2d* conv = net->gate_producer(s);
    const auto keep = core::kept_to_mask(pruner.kept_per_site()[s],
                                         conv->out_channels());
    const Tensor& w = conv->weight().value;
    const int64_t fsize = w.size() / conv->out_channels();
    for (int f = 0; f < conv->out_channels(); ++f) {
      if (keep[static_cast<size_t>(f)]) continue;
      for (int64_t i = 0; i < fsize; ++i) {
        ASSERT_EQ(w[static_cast<int64_t>(f) * fsize + i], 0.f)
            << "site " << s << " filter " << f;
      }
    }
  }
}

TEST(StaticPruner, KeptSetIsStaticAcrossBatches) {
  auto net = make_net();
  const auto pair = tiny_data();
  StaticPruneConfig cfg;
  cfg.criterion = StaticCriterion::kL1;
  cfg.drop_per_block = {0.5f, 0.5f};
  StaticPruner pruner(*net, cfg);
  pruner.prune(*pair.train);
  const auto kept_before = pruner.kept_per_site();
  pruner.evaluate_pruned(*pair.test, 4);
  EXPECT_EQ(pruner.kept_per_site(), kept_before);
}

// --- FBS-style learned dynamic gate (related-work baseline) ---

TEST(FbsGate, KeepsTopSaliencyChannelsAndScalesThem) {
  FbsGate gate(4, 0.5f, nullptr, /*seed=*/7);
  gate.set_training(false);
  // Identity saliency: W = I, b = 0 -> saliency == channel mean.
  gate.parameters()[0]->value.zero();
  for (int i = 0; i < 4; ++i) {
    gate.parameters()[0]->value.at({i, i}) = 1.f;
  }
  gate.parameters()[1]->value.zero();

  Tensor x({1, 4, 1, 1});
  for (int c = 0; c < 4; ++c) x.at({0, c, 0, 0}) = static_cast<float>(c + 1);
  Tensor y = gate.forward(x);
  // Channels 2,3 kept (means 3,4) and boosted by their saliency.
  EXPECT_EQ(gate.last_masks()[0].channels, (std::vector<int>{2, 3}));
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 0.f);
  EXPECT_FLOAT_EQ(y.at({0, 2, 0, 0}), 3.f * 3.f);
  EXPECT_FLOAT_EQ(y.at({0, 3, 0, 0}), 4.f * 4.f);
}

TEST(FbsGate, EvalForwardsMasksToConsumer) {
  nn::Conv2d consumer(4, 2, 3, 1, 1, false);
  FbsGate gate(4, 0.5f, &consumer);
  gate.set_training(false);
  Rng rng(8);
  Tensor x = Tensor::randn({2, 4, 3, 3}, rng);
  gate.forward(x);
  EXPECT_TRUE(consumer.has_pending_masks());
}

TEST(FbsGate, DisabledIsIdentity) {
  FbsGate gate(3, 0.5f, nullptr);
  gate.set_enabled(false);
  Rng rng(9);
  Tensor x = Tensor::randn({1, 3, 2, 2}, rng);
  Tensor y = gate.forward(x);
  EXPECT_TRUE(ops::allclose(y, x, 0.f, 0.f));
}

TEST(FbsGate, GradientsMatchFiniteDifferencesAtZeroDrop) {
  // With drop_ratio 0 the gate is x * relu(W gap(x) + b): smooth except at
  // ReLU kinks, so finite differences validate both input and parameter
  // gradients (the positive bias keeps saliencies away from the kink).
  Rng rng(10);
  FbsGate gate(3, 0.f, nullptr, /*seed=*/11);
  gate.set_training(true);
  Tensor x = Tensor::randn({2, 3, 3, 3}, rng, 0.5f, 0.5f);
  antidote::testing::check_input_gradient(gate, x, rng, 1e-3f, 5e-2f);
  antidote::testing::check_parameter_gradients(gate, x, rng, 1e-3f, 5e-2f);
}

TEST(FbsGate, SaliencyPredictorTrainsJointly) {
  // Install an FbsGate in a SmallCnn and verify the whole thing — saliency
  // predictor included — trains end to end.
  auto net = make_net();
  nn::Conv2d* consumer = net->gate_consumer(0);
  auto gate = std::make_unique<FbsGate>(
      net->gate_producer(0)->out_channels(), 0.25f, consumer);
  FbsGate* raw = gate.get();
  net->install_gate(0, std::move(gate));

  const auto pair = tiny_data();
  core::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 16;
  tc.augment = false;
  core::Trainer trainer(*net, *pair.train, tc);
  const Tensor w_before = raw->parameters()[0]->value.clone();
  const auto history = trainer.fit();
  EXPECT_LT(history.back().loss, history.front().loss);
  // The saliency weights moved: the predictor actually participates.
  EXPECT_GT(ops::max_abs_diff(raw->parameters()[0]->value, w_before), 1e-6f);
}

TEST(StaticPruner, GuardsAgainstMisuse) {
  auto net = make_net();
  const auto pair = tiny_data();
  StaticPruneConfig cfg;
  cfg.drop_per_block = {0.5f, 0.5f};
  StaticPruner pruner(*net, cfg);
  EXPECT_THROW(pruner.evaluate_pruned(*pair.test), Error);  // before prune
  pruner.prune(*pair.train);
  EXPECT_THROW(pruner.prune(*pair.train), Error);  // twice

  StaticPruneConfig bad;
  bad.drop_per_block = {0.5f};  // wrong block count
  auto net2 = make_net();
  EXPECT_THROW(StaticPruner(*net2, bad), Error);
}

}  // namespace
}  // namespace antidote::baselines
