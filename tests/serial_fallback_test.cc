// ANTIDOTE_THREADS=1 path: with a single compute thread (forced before
// the lazily created global pool can exist) the pool holds zero workers,
// every parallel_for runs inline, the nested-dispatch guard never
// engages, and the plan executor keeps the sequential group loop with the
// cross-pass weight-panel cache — all regardless of the host's core
// count. Masked grouped output must still match the module walk bitwise.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "base/parallel.h"
#include "base/rng.h"
#include "core/engine.h"
#include "models/factory.h"
#include "nn/execution_context.h"
#include "plan/plan.h"

namespace antidote {
namespace {

const bool kForcedSerial = [] {
  ::setenv("ANTIDOTE_THREADS", "1", /*overwrite=*/1);
  return true;
}();

TEST(SerialFallback, PoolIsEmptyAndLoopsRunInline) {
  ASSERT_TRUE(kForcedSerial);
  EXPECT_EQ(global_pool().size(), 0);
  EXPECT_FALSE(in_parallel_region());
  int chunks = 0;
  parallel_for(
      0, 1000,
      [&](int64_t b, int64_t e) {
        ++chunks;
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 1000);
        // Inline execution never marks a parallel region.
        EXPECT_FALSE(in_parallel_region());
      },
      /*grain=*/1);
  EXPECT_EQ(chunks, 1);
}

TEST(SerialFallback, AllDistinctMaskedPlanMatchesModuleWalkBitwise) {
  Rng rng(9);
  auto net = models::make_model("small_cnn", 10, 0.25f, rng);
  net->set_training(false);
  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.4f, 0.3f));
  const int batch = 5, image = 16;
  Rng xrng(13);
  Tensor x = Tensor::randn({batch, 3, image, image}, xrng);
  const Tensor plain = net->forward(x);

  nn::ExecutionContext ctx;
  plan::InferencePlan& plan = net->inference_plan(3, image, image);
  plan.reserve(ctx.workspace(), batch);
  const int64_t grows = ctx.workspace().grow_count();
  ctx.begin_pass();
  Tensor staged = ctx.alloc(x.shape());
  std::memcpy(staged.data(), x.data(),
              static_cast<size_t>(x.size()) * sizeof(float));
  const Tensor fused = net->forward(staged, ctx);
  EXPECT_EQ(std::memcmp(plain.data(), fused.data(),
                        static_cast<size_t>(plain.size()) * sizeof(float)),
            0);
  EXPECT_EQ(ctx.workspace().grow_count(), grows);
  EXPECT_GE(net->current_plan()->last_mask_groups(), 1);
  engine.remove();
}

}  // namespace
}  // namespace antidote
