// Attention coefficients (Eq. 1 / Eq. 2) and top-k mask generation
// (Eq. 3 / Eq. 4), including the ordering variants of Fig. 2.
#include <gtest/gtest.h>

#include <set>

#include "base/error.h"
#include "core/attention.h"
#include "core/mask.h"
#include "tensor/ops.h"

namespace antidote::core {
namespace {

TEST(Attention, ChannelAttentionIsSpatialMean) {
  Tensor f({2, 3, 2, 2});
  for (int b = 0; b < 2; ++b) {
    for (int c = 0; c < 3; ++c) {
      for (int j = 0; j < 4; ++j) {
        f.at({b, c, j / 2, j % 2}) = static_cast<float>(b * 10 + c);
      }
    }
  }
  Tensor a = channel_attention(f);
  EXPECT_EQ(a.shape(), (std::vector<int>{2, 3}));
  EXPECT_FLOAT_EQ(a.at({0, 2}), 2.f);
  EXPECT_FLOAT_EQ(a.at({1, 0}), 10.f);
}

TEST(Attention, SpatialAttentionIsChannelMean) {
  Tensor f({1, 4, 2, 2});
  for (int c = 0; c < 4; ++c) f.at({0, c, 1, 1}) = static_cast<float>(c);
  Tensor a = spatial_attention(f);
  EXPECT_EQ(a.shape(), (std::vector<int>{1, 2, 2}));
  EXPECT_FLOAT_EQ(a.at({0, 1, 1}), 1.5f);  // mean of 0,1,2,3
  EXPECT_FLOAT_EQ(a.at({0, 0, 0}), 0.f);
}

TEST(Attention, RequiresNchw) {
  Tensor f({3, 4});
  EXPECT_THROW(channel_attention(f), Error);
  EXPECT_THROW(spatial_attention(f), Error);
}

// --- kept_count (Eq. 3's k = n - round(r*n), >= 1) ---

TEST(Mask, KeptCountArithmetic) {
  EXPECT_EQ(kept_count(10, 0.f), 10);
  EXPECT_EQ(kept_count(10, 0.2f), 8);
  EXPECT_EQ(kept_count(10, 0.25f), 7);  // lround(2.5) = 3 dropped
  EXPECT_EQ(kept_count(10, 0.9f), 1);
  EXPECT_EQ(kept_count(10, 1.f), 1);  // never drop everything
  EXPECT_EQ(kept_count(1, 0.99f), 1);
}

TEST(Mask, KeptCountRejectsBadInput) {
  EXPECT_THROW(kept_count(0, 0.5f), Error);
  EXPECT_THROW(kept_count(10, -0.1f), Error);
  EXPECT_THROW(kept_count(10, 1.1f), Error);
}

// --- select_kept orderings ---

TEST(Mask, AttentionOrderKeepsTopEntries) {
  const std::vector<float> att = {0.1f, 0.9f, 0.5f, 0.7f, 0.2f};
  Rng rng(1);
  const auto kept = select_kept(att, 0.4f, MaskOrder::kAttention, rng);
  EXPECT_EQ(kept, (std::vector<int>{1, 2, 3}));  // top-3, sorted
}

TEST(Mask, InverseOrderKeepsBottomEntries) {
  const std::vector<float> att = {0.1f, 0.9f, 0.5f, 0.7f, 0.2f};
  Rng rng(1);
  const auto kept = select_kept(att, 0.4f, MaskOrder::kInverseAttention, rng);
  EXPECT_EQ(kept, (std::vector<int>{0, 2, 4}));  // bottom-3, sorted
}

TEST(Mask, RandomOrderKeepsCorrectCountAndVaries) {
  const std::vector<float> att(100, 1.f);
  Rng rng(7);
  const auto a = select_kept(att, 0.5f, MaskOrder::kRandom, rng);
  const auto b = select_kept(att, 0.5f, MaskOrder::kRandom, rng);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_EQ(b.size(), 50u);
  EXPECT_NE(a, b);  // two draws differ
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  std::set<int> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Mask, ZeroDropKeepsEverything) {
  const std::vector<float> att = {3.f, 1.f, 2.f};
  Rng rng(2);
  for (MaskOrder order : {MaskOrder::kAttention, MaskOrder::kRandom,
                          MaskOrder::kInverseAttention}) {
    const auto kept = select_kept(att, 0.f, order, rng);
    EXPECT_EQ(kept, (std::vector<int>{0, 1, 2}));
  }
}

TEST(Mask, FullDropStillKeepsOne) {
  const std::vector<float> att = {3.f, 1.f, 2.f};
  Rng rng(2);
  const auto kept = select_kept(att, 1.f, MaskOrder::kAttention, rng);
  EXPECT_EQ(kept, (std::vector<int>{0}));  // the highest-attention entry
}

TEST(Mask, AttentionAndInverseArePerfectlyOpposed) {
  // With distinct values and 50% drop on an even count, the two keep sets
  // partition the index set.
  std::vector<float> att;
  for (int i = 0; i < 10; ++i) att.push_back(0.1f * static_cast<float>(i));
  Rng rng(3);
  const auto top = select_kept(att, 0.5f, MaskOrder::kAttention, rng);
  const auto bottom = select_kept(att, 0.5f, MaskOrder::kInverseAttention,
                                  rng);
  std::set<int> all(top.begin(), top.end());
  all.insert(bottom.begin(), bottom.end());
  EXPECT_EQ(all.size(), 10u);
  EXPECT_EQ(top.size() + bottom.size(), 10u);
}

TEST(Mask, KeptToMaskExpandsCorrectly) {
  const std::vector<int> kept = {0, 3};
  const auto mask = kept_to_mask(kept, 5);
  EXPECT_EQ(mask, (std::vector<uint8_t>{1, 0, 0, 1, 0}));
  EXPECT_THROW(kept_to_mask(std::vector<int>{9}, 5), Error);
}

TEST(Mask, OrderNames) {
  EXPECT_STREQ(mask_order_name(MaskOrder::kAttention), "attention");
  EXPECT_STREQ(mask_order_name(MaskOrder::kRandom), "random");
  EXPECT_STREQ(mask_order_name(MaskOrder::kInverseAttention), "inverse");
}

}  // namespace
}  // namespace antidote::core
