// Unit tests for the Tensor class and elementwise/reduction/selection ops.
#include <gtest/gtest.h>

#include <cmath>

#include "base/error.h"
#include "base/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace antidote {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.f);
}

TEST(Tensor, RejectsNonPositiveDims) {
  EXPECT_THROW(Tensor({2, 0}), Error);
  EXPECT_THROW(Tensor({-1}), Error);
}

TEST(Tensor, FillAndAt) {
  Tensor t({2, 2});
  t.fill(3.f);
  EXPECT_EQ(t.at({1, 1}), 3.f);
  t.at({0, 1}) = 5.f;
  EXPECT_EQ(t[1], 5.f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0, 0, 0}), Error);
}

TEST(Tensor, NegativeDimIndexCountsFromEnd) {
  Tensor t({4, 5, 6});
  EXPECT_EQ(t.dim(-1), 6);
  EXPECT_EQ(t.dim(-3), 4);
  EXPECT_THROW(t.dim(3), Error);
}

TEST(Tensor, CopyIsShallowCloneIsDeep) {
  Tensor a({3});
  a.fill(1.f);
  Tensor b = a;        // shares storage
  Tensor c = a.clone();  // deep copy
  EXPECT_TRUE(a.shares_storage(b));
  EXPECT_FALSE(a.shares_storage(c));
  b[0] = 9.f;
  EXPECT_EQ(a[0], 9.f);
  EXPECT_EQ(c[0], 1.f);
}

TEST(Tensor, ReshapeSharesStorageAndInfersWildcard) {
  Tensor a({2, 6});
  a[7] = 4.f;
  Tensor b = a.reshape({3, -1});
  EXPECT_EQ(b.dim(1), 4);
  EXPECT_TRUE(a.shares_storage(b));
  EXPECT_EQ(b.at({1, 3}), 4.f);
}

TEST(Tensor, ReshapeRejectsBadSizes) {
  Tensor a({2, 6});
  EXPECT_THROW(a.reshape({5, -1}), Error);
  EXPECT_THROW(a.reshape({2, 5}), Error);
  EXPECT_THROW(a.reshape({-1, -1}), Error);
}

TEST(Tensor, FromValues) {
  Tensor t = Tensor::from_values({2, 2}, {1.f, 2.f, 3.f, 4.f});
  EXPECT_EQ(t.at({1, 0}), 3.f);
  EXPECT_THROW(Tensor::from_values({2}, {1.f, 2.f, 3.f}), Error);
}

TEST(Tensor, RandnIsSeeded) {
  Rng r1(5), r2(5);
  Tensor a = Tensor::randn({100}, r1);
  Tensor b = Tensor::randn({100}, r2);
  EXPECT_TRUE(ops::allclose(a, b, 0.f, 0.f));
}

TEST(Tensor, CopyFromChecksSize) {
  Tensor a({4}), b({2, 2}), c({5});
  EXPECT_NO_THROW(a.copy_from(b));  // same element count
  EXPECT_THROW(a.copy_from(c), Error);
}

// --- ops ---

TEST(Ops, ElementwiseArithmetic) {
  Tensor a = Tensor::from_values({3}, {1.f, 2.f, 3.f});
  Tensor b = Tensor::from_values({3}, {10.f, 20.f, 30.f});
  EXPECT_EQ(ops::add(a, b)[1], 22.f);
  EXPECT_EQ(ops::sub(b, a)[2], 27.f);
  EXPECT_EQ(ops::mul(a, b)[0], 10.f);
  Tensor c = a.clone();
  ops::scale_(c, 2.f);
  EXPECT_EQ(c[2], 6.f);
  ops::axpy_(c, -1.f, a);
  EXPECT_EQ(c[2], 3.f);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a({3}), b({4});
  EXPECT_THROW(ops::add(a, b), Error);
  EXPECT_THROW(ops::mul(a, b), Error);
}

TEST(Ops, ReluClampsNegatives) {
  Tensor x = Tensor::from_values({4}, {-1.f, 0.f, 2.f, -3.f});
  Tensor y = ops::relu(x);
  EXPECT_EQ(y[0], 0.f);
  EXPECT_EQ(y[2], 2.f);
}

TEST(Ops, ReluBackwardGatesGradient) {
  Tensor x = Tensor::from_values({4}, {-1.f, 0.f, 2.f, -3.f});
  Tensor dy = Tensor::from_values({4}, {1.f, 1.f, 1.f, 1.f});
  Tensor dx = ops::relu_backward(dy, x);
  EXPECT_EQ(dx[0], 0.f);
  EXPECT_EQ(dx[1], 0.f);  // gradient at exactly zero is zero
  EXPECT_EQ(dx[2], 1.f);
}

TEST(Ops, Reductions) {
  Tensor x = Tensor::from_values({4}, {1.f, -2.f, 3.f, -4.f});
  EXPECT_FLOAT_EQ(ops::sum(x), -2.f);
  EXPECT_FLOAT_EQ(ops::mean(x), -0.5f);
  EXPECT_FLOAT_EQ(ops::max_value(x), 3.f);
  EXPECT_FLOAT_EQ(ops::min_value(x), -4.f);
  EXPECT_FLOAT_EQ(ops::l1_norm(x), 10.f);
  EXPECT_FLOAT_EQ(ops::l2_norm(x), std::sqrt(30.f));
  EXPECT_FLOAT_EQ(ops::mean_abs(x), 2.5f);
}

TEST(Ops, ChannelMeanNchwMatchesEq1) {
  // Eq. 1: A_channel(F, c) = mean over H*W.
  Tensor x({1, 2, 2, 2});
  // channel 0: 1,2,3,4 -> mean 2.5; channel 1: all 8 -> mean 8.
  x.at({0, 0, 0, 0}) = 1.f;
  x.at({0, 0, 0, 1}) = 2.f;
  x.at({0, 0, 1, 0}) = 3.f;
  x.at({0, 0, 1, 1}) = 4.f;
  for (int h = 0; h < 2; ++h)
    for (int w = 0; w < 2; ++w) x.at({0, 1, h, w}) = 8.f;
  Tensor att = ops::channel_mean_nchw(x);
  EXPECT_EQ(att.shape(), (std::vector<int>{1, 2}));
  EXPECT_FLOAT_EQ(att.at({0, 0}), 2.5f);
  EXPECT_FLOAT_EQ(att.at({0, 1}), 8.f);
}

TEST(Ops, SpatialMeanNchwMatchesEq2) {
  // Eq. 2: A_spatial(F, h, w) = mean over channels.
  Tensor x({1, 3, 1, 2});
  for (int c = 0; c < 3; ++c) {
    x.at({0, c, 0, 0}) = static_cast<float>(c);      // mean 1
    x.at({0, c, 0, 1}) = static_cast<float>(2 * c);  // mean 2
  }
  Tensor att = ops::spatial_mean_nchw(x);
  EXPECT_EQ(att.shape(), (std::vector<int>{1, 1, 2}));
  EXPECT_FLOAT_EQ(att.at({0, 0, 0}), 1.f);
  EXPECT_FLOAT_EQ(att.at({0, 0, 1}), 2.f);
}

TEST(Ops, ArgmaxRows) {
  Tensor logits = Tensor::from_values({2, 3}, {0.f, 5.f, 1.f,
                                               7.f, 2.f, 7.f});
  const auto idx = ops::argmax_rows(logits);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);  // tie -> lowest index
}

TEST(Ops, TopkIndicesDescending) {
  const std::vector<float> v = {0.1f, 0.9f, 0.5f, 0.9f, 0.2f};
  const auto top3 = ops::topk_indices(v, 3);
  EXPECT_EQ(top3, (std::vector<int>{1, 3, 2}));  // ties by lower index first
}

TEST(Ops, BottomkIndicesAscending) {
  const std::vector<float> v = {0.1f, 0.9f, 0.5f, 0.1f, 0.2f};
  const auto bot3 = ops::bottomk_indices(v, 3);
  EXPECT_EQ(bot3, (std::vector<int>{0, 3, 4}));
}

TEST(Ops, TopkEdgeCases) {
  const std::vector<float> v = {1.f, 2.f};
  EXPECT_TRUE(ops::topk_indices(v, 0).empty());
  EXPECT_EQ(ops::topk_indices(v, 2).size(), 2u);
  EXPECT_THROW(ops::topk_indices(v, 3), Error);
}

TEST(Ops, SoftmaxRowsSumToOneAndOrderPreserved) {
  Rng rng(3);
  Tensor logits = Tensor::randn({4, 7}, rng, 0.f, 5.f);
  Tensor p = ops::softmax_rows(logits);
  for (int i = 0; i < 4; ++i) {
    double row_sum = 0;
    for (int j = 0; j < 7; ++j) {
      const float v = p.at({i, j});
      EXPECT_GT(v, 0.f);
      row_sum += v;
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-5);
  }
  EXPECT_EQ(ops::argmax_rows(p), ops::argmax_rows(logits));
}

TEST(Ops, SoftmaxStableForHugeLogits) {
  Tensor logits = Tensor::from_values({1, 2}, {1000.f, 1001.f});
  Tensor p = ops::softmax_rows(logits);
  EXPECT_NEAR(p.at({0, 0}) + p.at({0, 1}), 1.f, 1e-5f);
  EXPECT_GT(p.at({0, 1}), p.at({0, 0}));
}

TEST(Ops, AccuracyCountsMatches) {
  Tensor logits = Tensor::from_values({3, 2}, {1.f, 0.f,
                                               0.f, 1.f,
                                               1.f, 0.f});
  const std::vector<int> labels = {0, 1, 1};
  EXPECT_NEAR(ops::accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

TEST(Ops, AllcloseAndMaxAbsDiff) {
  Tensor a = Tensor::from_values({2}, {1.f, 2.f});
  Tensor b = Tensor::from_values({2}, {1.f, 2.00001f});
  EXPECT_TRUE(ops::allclose(a, b));
  EXPECT_NEAR(ops::max_abs_diff(a, b), 1e-5f, 1e-6f);
  Tensor c({3});
  EXPECT_FALSE(ops::allclose(a, c));
}

}  // namespace
}  // namespace antidote
