// AttentionGate behaviour: masking semantics, train/test phase split,
// consumer skip instructions, recovery across inputs, stats, enable/disable.
#include <gtest/gtest.h>

#include <cmath>

#include "base/error.h"
#include "base/rng.h"
#include "core/gate.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace antidote::core {
namespace {

// A feature map whose channel attentions are strictly increasing with the
// channel index (channel c has constant value c+1).
Tensor ramp_channels(int n, int c, int h, int w) {
  Tensor f({n, c, h, w});
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          f.at({b, ch, y, x}) = static_cast<float>(ch + 1);
        }
      }
    }
  }
  return f;
}

TEST(Gate, ZeroRatiosAreExactIdentity) {
  AttentionGate gate({.channel_drop = 0.f, .spatial_drop = 0.f}, nullptr,
                     false);
  Rng rng(1);
  Tensor x = Tensor::randn({2, 4, 3, 3}, rng);
  Tensor y = gate.forward(x);
  EXPECT_TRUE(y.shares_storage(x));  // identity fast-path, no copy
}

TEST(Gate, DisabledGateIsIdentityEvenWithRatios) {
  AttentionGate gate({.channel_drop = 0.5f, .spatial_drop = 0.5f}, nullptr,
                     true);
  gate.set_enabled(false);
  Rng rng(2);
  Tensor x = Tensor::randn({1, 4, 4, 4}, rng);
  Tensor y = gate.forward(x);
  EXPECT_TRUE(ops::allclose(y, x, 0.f, 0.f));
  EXPECT_EQ(gate.last_stats().samples, 0);
}

TEST(Gate, ChannelPruningZeroesLowestAttentionChannels) {
  AttentionGate gate({.channel_drop = 0.5f}, nullptr, false);
  gate.set_training(false);
  Tensor x = ramp_channels(1, 4, 2, 2);
  Tensor y = gate.forward(x);
  // Channels 0,1 (lowest attention) zeroed; 2,3 preserved.
  EXPECT_EQ(y.at({0, 0, 0, 0}), 0.f);
  EXPECT_EQ(y.at({0, 1, 1, 1}), 0.f);
  EXPECT_EQ(y.at({0, 2, 0, 0}), 3.f);
  EXPECT_EQ(y.at({0, 3, 1, 1}), 4.f);
  EXPECT_EQ(gate.last_masks()[0].channels, (std::vector<int>{2, 3}));
}

TEST(Gate, SpatialPruningZeroesLowestAttentionColumns) {
  AttentionGate gate({.spatial_drop = 0.75f}, nullptr, false);
  gate.set_training(false);
  // Position (1,1) has the largest channel-mean.
  Tensor x({1, 2, 2, 2});
  x.at({0, 0, 1, 1}) = 5.f;
  x.at({0, 1, 1, 1}) = 5.f;
  x.at({0, 0, 0, 0}) = 1.f;
  Tensor y = gate.forward(x);
  EXPECT_EQ(y.at({0, 0, 0, 0}), 0.f);  // pruned column
  EXPECT_EQ(y.at({0, 0, 1, 1}), 5.f);  // kept column, both channels
  EXPECT_EQ(y.at({0, 1, 1, 1}), 5.f);
  EXPECT_EQ(gate.last_masks()[0].positions, (std::vector<int>{3}));
}

TEST(Gate, PerInputMasksDifferAndRecover) {
  // The paper's key dynamic property: a channel pruned for one input is
  // recovered for another whose attention differs.
  AttentionGate gate({.channel_drop = 0.5f}, nullptr, false);
  gate.set_training(false);
  Tensor x({2, 2, 1, 1});
  x.at({0, 0, 0, 0}) = 10.f;  // sample 0: channel 0 dominates
  x.at({0, 1, 0, 0}) = 1.f;
  x.at({1, 0, 0, 0}) = 1.f;   // sample 1: channel 1 dominates
  x.at({1, 1, 0, 0}) = 10.f;
  gate.forward(x);
  EXPECT_EQ(gate.last_masks()[0].channels, (std::vector<int>{0}));
  EXPECT_EQ(gate.last_masks()[1].channels, (std::vector<int>{1}));
}

TEST(Gate, EvalForwardsMasksToConsumer) {
  nn::Conv2d consumer(4, 2, 3, 1, 1, false);
  AttentionGate gate({.channel_drop = 0.5f}, &consumer, true);
  gate.set_training(false);
  Tensor x = ramp_channels(1, 4, 3, 3);
  gate.forward(x);
  EXPECT_TRUE(consumer.has_pending_masks());
}

TEST(Gate, TrainingDoesNotForwardMasks) {
  nn::Conv2d consumer(4, 2, 3, 1, 1, false);
  AttentionGate gate({.channel_drop = 0.5f}, &consumer, true);
  gate.set_training(true);
  Tensor x = ramp_channels(2, 4, 3, 3);
  gate.forward(x);
  EXPECT_FALSE(consumer.has_pending_masks());
}

TEST(Gate, MisalignedGateForwardsOnlyChannelMasks) {
  nn::Conv2d consumer(4, 2, 3, 1, 1, false);
  AttentionGate gate({.channel_drop = 0.5f, .spatial_drop = 0.5f}, &consumer,
                     /*spatially_aligned=*/false);
  gate.set_training(false);
  Rng rng(3);
  Tensor x = Tensor::randn({1, 4, 4, 4}, rng);
  gate.forward(x);
  ASSERT_TRUE(consumer.has_pending_masks());
  // Drain the pending mask through a forward and check the consumer only
  // skipped channels (positions empty -> all positions computed).
  Tensor xin = Tensor::randn({1, 4, 4, 4}, rng);
  consumer.forward(xin);
  // 2 kept channels of 4: MACs = 2 filters * 16 positions * 2*9 patch.
  EXPECT_EQ(consumer.last_macs(), 2LL * 16 * 2 * 9);
}

TEST(Gate, SetForwardToConsumerOffMasksOnly) {
  nn::Conv2d consumer(4, 2, 3, 1, 1, false);
  AttentionGate gate({.channel_drop = 0.5f}, &consumer, true);
  gate.set_training(false);
  gate.set_forward_to_consumer(false);
  Tensor x = ramp_channels(1, 4, 3, 3);
  gate.forward(x);
  EXPECT_FALSE(consumer.has_pending_masks());
}

TEST(Gate, BackwardAppliesSameBinaryMask) {
  AttentionGate gate({.channel_drop = 0.5f}, nullptr, false);
  gate.set_training(true);
  Tensor x = ramp_channels(1, 4, 2, 2);
  gate.forward(x);
  Tensor dy = Tensor::ones({1, 4, 2, 2});
  Tensor dx = gate.backward(dy);
  EXPECT_EQ(dx.at({0, 0, 0, 0}), 0.f);  // dropped channel blocks gradient
  EXPECT_EQ(dx.at({0, 3, 0, 0}), 1.f);  // kept channel passes gradient
}

TEST(Gate, BackwardIdentityWhenGateWasIdentity) {
  AttentionGate gate({.channel_drop = 0.f}, nullptr, false);
  Rng rng(4);
  Tensor x = Tensor::randn({1, 2, 2, 2}, rng);
  gate.forward(x);
  Tensor dy = Tensor::randn({1, 2, 2, 2}, rng);
  Tensor dx = gate.backward(dy);
  EXPECT_TRUE(ops::allclose(dx, dy, 0.f, 0.f));
}

TEST(Gate, StatsCountKeptFractions) {
  AttentionGate gate({.channel_drop = 0.25f, .spatial_drop = 0.5f}, nullptr,
                     false);
  gate.set_training(false);
  Rng rng(5);
  Tensor x = Tensor::randn({4, 8, 4, 4}, rng);
  gate.forward(x);
  const auto& s = gate.last_stats();
  EXPECT_EQ(s.samples, 4);
  EXPECT_EQ(s.channels, 8);
  EXPECT_EQ(s.positions, 16);
  EXPECT_EQ(s.kept_channels, 4 * 6);   // 8 - round(0.25*8) = 6 per sample
  EXPECT_EQ(s.kept_positions, 4 * 8);  // 16 - 8
}

TEST(Gate, RandomOrderIsSeededDeterministic) {
  GateConfig cfg{.channel_drop = 0.5f, .order = MaskOrder::kRandom,
                 .seed = 321};
  AttentionGate g1(cfg, nullptr, false);
  AttentionGate g2(cfg, nullptr, false);
  g1.set_training(false);
  g2.set_training(false);
  Rng rng(6);
  Tensor x = Tensor::randn({2, 8, 3, 3}, rng);
  g1.forward(x);
  g2.forward(x);
  EXPECT_EQ(g1.last_masks()[0].channels, g2.last_masks()[0].channels);
  EXPECT_EQ(g1.last_masks()[1].channels, g2.last_masks()[1].channels);
}

TEST(Gate, InverseOrderPrunesTopChannels) {
  AttentionGate gate({.channel_drop = 0.5f,
                      .order = MaskOrder::kInverseAttention},
                     nullptr, false);
  gate.set_training(false);
  Tensor x = ramp_channels(1, 4, 2, 2);
  Tensor y = gate.forward(x);
  // Inverse keeps the LOWEST-attention channels: 0 and 1.
  EXPECT_EQ(gate.last_masks()[0].channels, (std::vector<int>{0, 1}));
  EXPECT_EQ(y.at({0, 3, 0, 0}), 0.f);
  EXPECT_EQ(y.at({0, 0, 0, 0}), 1.f);
}

TEST(Gate, SoftSigmoidModeReweightsWithoutPruning) {
  GateConfig cfg{.channel_drop = 0.5f, .spatial_drop = 0.5f,
                 .mode = GateMode::kSoftSigmoid};
  nn::Conv2d consumer(4, 2, 3, 1, 1, false);
  AttentionGate gate(cfg, &consumer, true);
  gate.set_training(false);
  Tensor x = ramp_channels(1, 4, 2, 2);
  Tensor y = gate.forward(x);
  // Nothing is zeroed and no consumer mask is installed (no FLOPs saved).
  for (int64_t i = 0; i < y.size(); ++i) EXPECT_NE(y[i], 0.f);
  EXPECT_FALSE(consumer.has_pending_masks());
  // Stronger-attention channels keep more of their magnitude: the ratio
  // y/x equals sigmoid(ch_att) * sigmoid(sp_att), increasing in channel.
  const float scale0 = y.at({0, 0, 0, 0}) / x.at({0, 0, 0, 0});
  const float scale3 = y.at({0, 3, 0, 0}) / x.at({0, 3, 0, 0});
  EXPECT_LT(scale0, scale3);
  EXPECT_GT(scale0, 0.f);
  EXPECT_LT(scale3, 1.f);
}

TEST(Gate, SoftModeBackwardUsesSameScales) {
  GateConfig cfg{.channel_drop = 0.5f, .mode = GateMode::kSoftSigmoid};
  AttentionGate gate(cfg, nullptr, false);
  gate.set_training(true);
  Tensor x = ramp_channels(1, 2, 2, 2);
  Tensor y = gate.forward(x);
  Tensor dy = Tensor::ones({1, 2, 2, 2});
  Tensor dx = gate.backward(dy);
  // dx/dy equals y/x (the smooth scale map).
  for (int64_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(dx[i], y[i] / x[i], 1e-5f);
  }
}

TEST(Gate, SetRatiosValidates) {
  AttentionGate gate({}, nullptr, false);
  EXPECT_NO_THROW(gate.set_ratios(0.3f, 0.7f));
  EXPECT_THROW(gate.set_ratios(-0.1f, 0.f), Error);
  EXPECT_THROW(gate.set_ratios(0.f, 1.5f), Error);
}

}  // namespace
}  // namespace antidote::core
