// GEMM kernels checked against a naive triple-loop reference, across layout
// variants, alpha/beta combinations, and a parameterized shape sweep.
#include <gtest/gtest.h>

#include <vector>

#include "base/error.h"
#include "base/rng.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace antidote {
namespace {

// Naive reference: C = alpha * op(A) * op(B) + beta * C.
void ref_gemm(bool ta, bool tb, int m, int n, int k, float alpha,
              const std::vector<float>& a, const std::vector<float>& b,
              float beta, std::vector<float>& c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0;
      for (int p = 0; p < k; ++p) {
        const float av = ta ? a[static_cast<size_t>(p) * m + i]
                            : a[static_cast<size_t>(i) * k + p];
        const float bv = tb ? b[static_cast<size_t>(j) * k + p]
                            : b[static_cast<size_t>(p) * n + j];
        acc += double(av) * bv;
      }
      auto& cv = c[static_cast<size_t>(i) * n + j];
      cv = alpha * static_cast<float>(acc) + beta * cv;
    }
  }
}

std::vector<float> random_vec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

struct GemmShape {
  int m, n, k;
};

class GemmShapeTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapeTest, NnMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(17);
  const auto a = random_vec(static_cast<size_t>(m) * k, rng);
  const auto b = random_vec(static_cast<size_t>(k) * n, rng);
  std::vector<float> c(static_cast<size_t>(m) * n, 0.f), ref = c;
  gemm_nn(m, n, k, 1.f, a.data(), b.data(), 0.f, c.data());
  ref_gemm(false, false, m, n, k, 1.f, a, b, 0.f, ref);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

TEST_P(GemmShapeTest, NtMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(18);
  const auto a = random_vec(static_cast<size_t>(m) * k, rng);
  const auto b = random_vec(static_cast<size_t>(n) * k, rng);
  std::vector<float> c(static_cast<size_t>(m) * n, 0.f), ref = c;
  gemm_nt(m, n, k, 1.f, a.data(), b.data(), 0.f, c.data());
  ref_gemm(false, true, m, n, k, 1.f, a, b, 0.f, ref);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

TEST_P(GemmShapeTest, TnMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(19);
  const auto a = random_vec(static_cast<size_t>(k) * m, rng);
  const auto b = random_vec(static_cast<size_t>(k) * n, rng);
  std::vector<float> c(static_cast<size_t>(m) * n, 0.f), ref = c;
  gemm_tn(m, n, k, 1.f, a.data(), b.data(), 0.f, c.data());
  ref_gemm(true, false, m, n, k, 1.f, a, b, 0.f, ref);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{1, 7, 3},
                      GemmShape{5, 1, 4}, GemmShape{4, 4, 4},
                      GemmShape{16, 16, 16}, GemmShape{17, 5, 9},
                      GemmShape{33, 65, 31}, GemmShape{64, 128, 27},
                      GemmShape{128, 64, 100},
                      // Odd shapes straddling the blocked kernel's tile
                      // (4x16) and K-slab (256) boundaries, plus panel
                      // edge remainders in every dimension.
                      GemmShape{67, 129, 255}, GemmShape{66, 113, 256},
                      GemmShape{65, 97, 257}, GemmShape{3, 300, 300},
                      GemmShape{130, 15, 301}, GemmShape{41, 513, 64}),
    [](const ::testing::TestParamInfo<GemmShape>& info) {
      return "m" + std::to_string(info.param.m) + "n" +
             std::to_string(info.param.n) + "k" + std::to_string(info.param.k);
    });

// Alpha/beta sweep over all three layout variants at a blocked-path size
// with edge tiles, including aliased beta=1 accumulation into a live C.
struct AlphaBeta {
  float alpha, beta;
};

class GemmAlphaBetaTest : public ::testing::TestWithParam<AlphaBeta> {};

TEST_P(GemmAlphaBetaTest, AllVariantsMatchReference) {
  const auto [alpha, beta] = GetParam();
  const int m = 37, n = 53, k = 270;  // blocked path, ragged edges
  Rng rng(31);
  const auto a_nn = random_vec(static_cast<size_t>(m) * k, rng);
  const auto b_nn = random_vec(static_cast<size_t>(k) * n, rng);
  const auto b_nt = random_vec(static_cast<size_t>(n) * k, rng);
  const auto a_tn = random_vec(static_cast<size_t>(k) * m, rng);
  const auto c0 = random_vec(static_cast<size_t>(m) * n, rng);

  auto c = c0, ref = c0;
  gemm_nn(m, n, k, alpha, a_nn.data(), b_nn.data(), beta, c.data());
  ref_gemm(false, false, m, n, k, alpha, a_nn, b_nn, beta, ref);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 2e-3f);

  c = c0;
  ref = c0;
  gemm_nt(m, n, k, alpha, a_nn.data(), b_nt.data(), beta, c.data());
  ref_gemm(false, true, m, n, k, alpha, a_nn, b_nt, beta, ref);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 2e-3f);

  c = c0;
  ref = c0;
  gemm_tn(m, n, k, alpha, a_tn.data(), b_nn.data(), beta, c.data());
  ref_gemm(true, false, m, n, k, alpha, a_tn, b_nn, beta, ref);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaBetas, GemmAlphaBetaTest,
    ::testing::Values(AlphaBeta{1.f, 0.f}, AlphaBeta{1.f, 1.f},
                      AlphaBeta{0.5f, 2.f}, AlphaBeta{-1.25f, 1.f},
                      AlphaBeta{2.f, -0.5f}, AlphaBeta{0.f, 1.f}),
    [](const ::testing::TestParamInfo<AlphaBeta>& info) {
      return "case" + std::to_string(info.index);
    });

// Repeated beta=1 accumulation into the same C (the weight-gradient
// pattern: dW += dY * cols^T across batch samples) for every variant.
TEST(Gemm, RepeatedAccumulationAllVariants) {
  Rng rng(33);
  const int m = 19, n = 23, k = 68;
  auto c_nn = random_vec(static_cast<size_t>(m) * n, rng);
  auto c_nt = c_nn, c_tn = c_nn;
  auto ref_nn = c_nn, ref_nt = c_nn, ref_tn = c_nn;
  for (int step = 0; step < 3; ++step) {
    const auto a = random_vec(static_cast<size_t>(m) * k, rng);
    const auto b = random_vec(static_cast<size_t>(k) * n, rng);
    const auto bt = random_vec(static_cast<size_t>(n) * k, rng);
    const auto at = random_vec(static_cast<size_t>(k) * m, rng);
    gemm_nn(m, n, k, 1.f, a.data(), b.data(), 1.f, c_nn.data());
    ref_gemm(false, false, m, n, k, 1.f, a, b, 1.f, ref_nn);
    gemm_nt(m, n, k, 1.f, a.data(), bt.data(), 1.f, c_nt.data());
    ref_gemm(false, true, m, n, k, 1.f, a, bt, 1.f, ref_nt);
    gemm_tn(m, n, k, 1.f, at.data(), b.data(), 1.f, c_tn.data());
    ref_gemm(true, false, m, n, k, 1.f, at, b, 1.f, ref_tn);
  }
  for (size_t i = 0; i < c_nn.size(); ++i) {
    EXPECT_NEAR(c_nn[i], ref_nn[i], 2e-3f);
    EXPECT_NEAR(c_nt[i], ref_nt[i], 2e-3f);
    EXPECT_NEAR(c_tn[i], ref_tn[i], 2e-3f);
  }
}

TEST(Gemm, AlphaBetaAccumulation) {
  Rng rng(21);
  const int m = 6, n = 7, k = 5;
  const auto a = random_vec(static_cast<size_t>(m) * k, rng);
  const auto b = random_vec(static_cast<size_t>(k) * n, rng);
  auto c = random_vec(static_cast<size_t>(m) * n, rng);
  auto ref = c;
  gemm_nn(m, n, k, 0.5f, a.data(), b.data(), 2.f, c.data());
  ref_gemm(false, false, m, n, k, 0.5f, a, b, 2.f, ref);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

TEST(Gemm, BetaOneAccumulatesNt) {
  Rng rng(22);
  const int m = 4, n = 5, k = 6;
  const auto a = random_vec(static_cast<size_t>(m) * k, rng);
  const auto b = random_vec(static_cast<size_t>(n) * k, rng);
  auto c = random_vec(static_cast<size_t>(m) * n, rng);
  auto ref = c;
  gemm_nt(m, n, k, 1.f, a.data(), b.data(), 1.f, c.data());
  ref_gemm(false, true, m, n, k, 1.f, a, b, 1.f, ref);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

TEST(Gemm, MatmulWrapper) {
  Tensor a = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_values({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (std::vector<int>{2, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.f);
}

TEST(Gemm, MatmulShapeMismatchThrows) {
  Tensor a({2, 3}), b({4, 2});
  EXPECT_THROW(matmul(a, b), Error);
}

}  // namespace
}  // namespace antidote
