// Second property suite: attention reductions against brute-force
// references over a shape sweep, BatchNorm statistics hygiene during gated
// evaluation, and combined-mask gate behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.h"
#include "core/engine.h"
#include "core/evaluate.h"
#include "core/gate.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "models/flops.h"
#include "models/small_cnn.h"
#include "models/vgg.h"
#include "nn/batchnorm.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace antidote {
namespace {

struct NchwShape {
  int n, c, h, w;
};

class AttentionReduction : public ::testing::TestWithParam<NchwShape> {};

TEST_P(AttentionReduction, ChannelMeanMatchesBruteForce) {
  const auto [n, c, h, w] = GetParam();
  Rng rng(700);
  Tensor x = Tensor::randn({n, c, h, w}, rng);
  Tensor got = ops::channel_mean_nchw(x);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      double acc = 0;
      for (int y = 0; y < h; ++y) {
        for (int xx = 0; xx < w; ++xx) acc += x.at4(b, ch, y, xx);
      }
      EXPECT_NEAR(got.at({b, ch}), acc / (h * w), 1e-4)
          << "b=" << b << " c=" << ch;
    }
  }
}

TEST_P(AttentionReduction, SpatialMeanMatchesBruteForce) {
  const auto [n, c, h, w] = GetParam();
  Rng rng(701);
  Tensor x = Tensor::randn({n, c, h, w}, rng);
  Tensor got = ops::spatial_mean_nchw(x);
  for (int b = 0; b < n; ++b) {
    for (int y = 0; y < h; ++y) {
      for (int xx = 0; xx < w; ++xx) {
        double acc = 0;
        for (int ch = 0; ch < c; ++ch) acc += x.at4(b, ch, y, xx);
        EXPECT_NEAR(got.at({b, y, xx}), acc / c, 1e-4);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AttentionReduction,
    ::testing::Values(NchwShape{1, 1, 1, 1}, NchwShape{2, 3, 4, 5},
                      NchwShape{1, 16, 2, 2}, NchwShape{3, 2, 7, 3},
                      NchwShape{2, 8, 1, 9}),
    [](const ::testing::TestParamInfo<NchwShape>& info) {
      const auto& s = info.param;
      return "n" + std::to_string(s.n) + "c" + std::to_string(s.c) + "h" +
             std::to_string(s.h) + "w" + std::to_string(s.w);
    });

TEST(BatchNormHygiene, GatedEvaluationLeavesRunningStatsUntouched) {
  // evaluate() runs in eval mode; BatchNorm running statistics must be
  // bit-identical afterwards even with dynamic pruning active.
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.height = spec.width = 12;
  spec.train_size = 8;
  spec.test_size = 16;
  const auto pair = data::make_synthetic_pair(spec);
  Rng rng(702);
  auto net = models::make_model("small_cnn", 3, 1.f, rng);

  // Give the stats structure by one training pass.
  net->set_training(true);
  Tensor warm = Tensor::randn({4, 3, 12, 12}, rng);
  net->forward(warm);

  std::vector<Tensor> stats_before;
  net->visit_state("", [&](const std::string& name, Tensor& t) {
    if (name.find("running_") != std::string::npos) {
      stats_before.push_back(t.clone());
    }
  });
  ASSERT_FALSE(stats_before.empty());

  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.5f, 0.5f));
  core::evaluate(*net, *pair.test, 8);
  engine.remove();

  size_t i = 0;
  net->visit_state("", [&](const std::string& name, Tensor& t) {
    if (name.find("running_") != std::string::npos) {
      EXPECT_TRUE(ops::allclose(t, stats_before[i], 0.f, 0.f)) << name;
      ++i;
    }
  });
}

TEST(GateCombined, ChannelAndSpatialMasksCompose) {
  // With both ratios active, an element survives iff its channel AND its
  // column survive; attention is computed on the unmasked input.
  core::AttentionGate gate({.channel_drop = 0.5f, .spatial_drop = 0.5f},
                           nullptr, true);
  gate.set_training(false);
  // 2 channels x 2x2: channel 1 dominates; columns 2,3 dominate.
  Tensor x({1, 2, 2, 2});
  x.at({0, 0, 0, 0}) = 1.f;
  x.at({0, 0, 1, 0}) = 2.f;
  x.at({0, 0, 1, 1}) = 2.f;
  x.at({0, 1, 0, 0}) = 4.f;
  x.at({0, 1, 0, 1}) = 1.f;
  x.at({0, 1, 1, 0}) = 6.f;
  x.at({0, 1, 1, 1}) = 6.f;
  Tensor y = gate.forward(x);
  const auto& m = gate.last_masks()[0];
  EXPECT_EQ(m.channels, (std::vector<int>{1}));     // channel mean 4.25 > 1.25
  EXPECT_EQ(m.positions, (std::vector<int>{2, 3}));  // bottom row dominates
  // Survivors: channel 1, positions 2 and 3 only.
  EXPECT_EQ(y.at({0, 1, 1, 0}), 6.f);
  EXPECT_EQ(y.at({0, 1, 1, 1}), 6.f);
  EXPECT_EQ(y.at({0, 1, 0, 0}), 0.f);  // pruned column
  EXPECT_EQ(y.at({0, 0, 1, 0}), 0.f);  // pruned channel
}

TEST(FlopsAccounting, MeasuredMacsMatchAnalyticPredictionOnVgg) {
  // With uniform channel drop 0.5 on even channel counts, every keep set
  // is exactly half, so per-layer dynamic MACs are analytically exact:
  // conv_i executes dense_i * keep(site_{i-1}) MACs (conv_0 has no gate
  // upstream). This pins the whole accounting chain end to end.
  Rng rng(710);
  models::VggConfig cfg;
  cfg.width_mult = 0.125f;  // widths 8..64, all even
  cfg.num_classes = 10;
  models::Vgg vgg(cfg);
  nn::init_module(vgg, rng);

  const models::FlopsReport dense = models::measure_dense_flops(vgg, 3, 32, 32);
  core::DynamicPruningEngine engine(
      vgg, core::PruneSettings::uniform(vgg.num_blocks(), 0.5f, 0.f));
  vgg.set_training(false);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  vgg.forward(x);
  const models::FlopsReport dynamic = models::read_last_flops(vgg);
  engine.remove();

  ASSERT_EQ(dense.layers.size(), dynamic.layers.size());
  for (size_t i = 0; i + 1 < dense.layers.size(); ++i) {  // conv layers
    const double keep_in = (i == 0) ? 1.0 : 0.5;
    EXPECT_EQ(dynamic.layers[i].macs,
              static_cast<int64_t>(dense.layers[i].macs * keep_in))
        << dense.layers[i].name;
  }
  // fc is never masked.
  EXPECT_EQ(dynamic.layers.back().macs, dense.layers.back().macs);
}

TEST(FlopsAccounting, SpatialMacsScaleWithKeepOnAlignedNet) {
  // Pool-free SmallCnn: gate 0 is aligned, so conv1 executes
  // keep_sp * dense MACs under a pure spatial mask (keep = 0.5 exactly
  // for an even position count).
  models::SmallCnnConfig cfg;
  cfg.num_classes = 4;
  cfg.widths = {8, 16};
  cfg.pool_after = {false, false};
  models::SmallCnn net(cfg);
  Rng rng(711);
  nn::init_module(net, rng);

  const models::FlopsReport dense = models::measure_dense_flops(net, 3, 8, 8);
  core::DynamicPruningEngine engine(
      net, core::PruneSettings::uniform(2, 0.f, 0.5f));
  net.set_training(false);
  Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
  net.forward(x);
  const models::FlopsReport dynamic = models::read_last_flops(net);
  engine.remove();

  EXPECT_EQ(dynamic.layers[0].macs, dense.layers[0].macs);  // conv0 dense
  EXPECT_EQ(dynamic.layers[1].macs, dense.layers[1].macs / 2);  // conv1
}

TEST(GateCombined, KeepStatsWithBothDimensions) {
  Rng rng(703);
  auto net = models::make_model("small_cnn", 4, 1.f, rng);
  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.25f, 0.75f));
  net->set_training(false);
  Tensor x = Tensor::randn({2, 3, 12, 12}, rng);
  net->forward(x);
  const auto stats = engine.last_keep_stats();
  EXPECT_NEAR(stats.mean_channel_keep, 0.75, 0.02);
  EXPECT_NEAR(stats.mean_spatial_keep, 0.25, 0.02);
  engine.remove();
}

}  // namespace
}  // namespace antidote
