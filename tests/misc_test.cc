// Edge cases and smaller contracts not covered by the main suites:
// logging levels, explicit thread pools, table emission to disk, dataset
// bounds, misc layer details.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "base/error.h"
#include "base/logging.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "base/table.h"
#include "data/dataloader.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "models/flops.h"
#include "nn/conv2d.h"
#include "tensor/ops.h"

namespace antidote {
namespace {

TEST(Logging, LevelFilteringAndRestore) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(detail::log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(detail::log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(detail::log_enabled(LogLevel::kError));
  set_log_level(before);
}

TEST(Logging, MacroShortCircuitsWhenDisabled) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto side_effect = [&evaluations] { return ++evaluations; };
  AD_LOG(Info) << side_effect();
  EXPECT_EQ(evaluations, 0);  // streamed expression never evaluated
  set_log_level(before);
}

TEST(ThreadPool, ExplicitPoolDistributesWork) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2);
  std::atomic<int64_t> total{0};
  pool.parallel_for_chunks(0, 1000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) total += i;
  });
  EXPECT_EQ(total.load(), 999 * 1000 / 2);
}

TEST(ThreadPool, ExplicitPoolPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_chunks(
                   0, 100,
                   [](int64_t b, int64_t) {
                     if (b > 0) throw Error("worker boom");
                   }),
               Error);
  // The pool survives a failed dispatch and stays usable.
  std::atomic<int> runs{0};
  pool.parallel_for_chunks(0, 10, [&](int64_t b, int64_t e) {
    runs += static_cast<int>(e - b);
  });
  EXPECT_EQ(runs.load(), 10);
}

TEST(Table, EmitWritesCsvFile) {
  const std::string path = ::testing::TempDir() + "/antidote_table.csv";
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.emit("test table", path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "a,b");
  EXPECT_EQ(row, "1,2");
  std::filesystem::remove(path);
}

TEST(Rng, HelperDistributions) {
  Rng rng(44);
  for (int i = 0; i < 200; ++i) {
    const float u = rng.uniform_float(-2.f, 3.f);
    EXPECT_GE(u, -2.f);
    EXPECT_LT(u, 3.f);
  }
  double acc = 0;
  for (int i = 0; i < 5000; ++i) acc += rng.normal(10.0, 0.5);
  EXPECT_NEAR(acc / 5000, 10.0, 0.1);
}

TEST(Dataset, OutOfRangeIndexThrows) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.height = spec.width = 8;
  spec.train_size = 4;
  spec.test_size = 2;
  const auto pair = data::make_synthetic_pair(spec);
  EXPECT_THROW(pair.train->get(-1), Error);
  EXPECT_THROW(pair.train->get(4), Error);
}

TEST(DataLoader, OutOfRangeBatchThrows) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.height = spec.width = 8;
  spec.train_size = 4;
  spec.test_size = 2;
  const auto pair = data::make_synthetic_pair(spec);
  data::DataLoader loader(*pair.train, 2, false);
  EXPECT_THROW(loader.batch(2), Error);
  EXPECT_THROW(loader.batch(-1), Error);
}

TEST(Conv2d, BiaslessConvHasSingleParameter) {
  nn::Conv2d conv(2, 3, 3, 1, 1, /*bias=*/false);
  EXPECT_EQ(conv.parameters().size(), 1u);
  nn::Conv2d with_bias(2, 3, 3, 1, 1, /*bias=*/true);
  EXPECT_EQ(with_bias.parameters().size(), 2u);
}

TEST(Ops, SoftmaxSingleClassIsAlwaysOne) {
  Tensor logits = Tensor::from_values({3, 1}, {5.f, -2.f, 0.f});
  Tensor p = ops::softmax_rows(logits);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(p.at({i, 0}), 1.f);
}

TEST(Flops, MeasureRestoresTrainingMode) {
  Rng rng(45);
  auto net = models::make_model("small_cnn", 2, 1.f, rng);
  net->set_training(true);
  models::measure_dense_flops(*net, 3, 12, 12);
  EXPECT_TRUE(net->is_training());
  net->set_training(false);
  models::measure_dense_flops(*net, 3, 12, 12);
  EXPECT_FALSE(net->is_training());
}

TEST(Module, ZeroGradClearsEveryParameter) {
  Rng rng(46);
  auto net = models::make_model("small_cnn", 2, 1.f, rng);
  for (nn::Parameter* p : net->parameters()) p->grad.fill(1.f);
  net->zero_grad();
  for (nn::Parameter* p : net->parameters()) {
    EXPECT_EQ(ops::max_value(p->grad), 0.f);
    EXPECT_EQ(ops::min_value(p->grad), 0.f);
  }
}

TEST(Module, ParameterCountMatchesKnownArchitecture) {
  Rng rng(47);
  // small_cnn widths {8,16}: conv1 3*8*9=216, bn1 16, conv2 8*16*9=1152,
  // bn2 32, fc 16*4+4 = 68. Total 1484.
  auto net = models::make_model("small_cnn", 4, 1.f, rng);
  EXPECT_EQ(nn::parameter_count(*net), 216 + 16 + 1152 + 32 + 68);
}

}  // namespace
}  // namespace antidote
