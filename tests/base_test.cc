// Unit tests for the base substrate: error handling, RNG, parallel_for,
// tables, binary IO, env helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <set>

#include "base/env.h"
#include "base/error.h"
#include "base/io.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "base/table.h"
#include "base/timer.h"

namespace antidote {
namespace {

// --- error.h ---

TEST(Error, CheckPassesOnTrue) {
  EXPECT_NO_THROW(AD_CHECK(1 + 1 == 2));
}

TEST(Error, CheckThrowsOnFalse) {
  EXPECT_THROW(AD_CHECK(false), Error);
}

TEST(Error, CheckMessageContainsContext) {
  try {
    AD_CHECK(false) << " extra=" << 42;
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("extra=42"), std::string::npos);
    EXPECT_NE(what.find("base_test.cc"), std::string::npos);
  }
}

TEST(Error, ComparisonChecksReportOperands) {
  try {
    const int a = 3, b = 7;
    AD_CHECK_EQ(a, b);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lhs=3"), std::string::npos);
    EXPECT_NE(what.find("rhs=7"), std::string::npos);
  }
}

TEST(Error, ComparisonOperandsEvaluatedExactlyOnce) {
  // Regression: a failing AD_CHECK_EQ must not re-evaluate its operands
  // while formatting the message — re-running a side-effecting operand
  // (e.g. a stream read) could throw mid-failure and terminate.
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  try {
    AD_CHECK_EQ(next(), 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(calls, 1);
    EXPECT_NE(std::string(e.what()).find("lhs=1"), std::string::npos);
  }
}

TEST(Error, CheckInsideIfElseIsNotAmbiguous) {
  // The macro must expand to a complete statement usable in a bare if/else.
  bool reached_else = false;
  if (false)
    AD_CHECK(true);
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

// --- rng.h ---

TEST(Rng, GoldenValuesPinTheAlgorithm) {
  // SplitMix64 output for seed 42 — any change to the engine (and thus to
  // every experiment's reproducibility story) fails this test.
  Rng r(42);
  EXPECT_EQ(r.next_u64(), 13679457532755275413ULL);
  EXPECT_EQ(r.next_u64(), 2949826092126892291ULL);
  Rng u(42);
  EXPECT_DOUBLE_EQ(u.uniform(), 0.74156487877182331);
  EXPECT_DOUBLE_EQ(u.uniform(), 0.1599103928769201);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(7);
  double acc = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(Rng, RandintCoversRangeUniformly) {
  Rng rng(3);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.randint(0, 5)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Rng, RandintRejectsEmptyRange) {
  Rng rng(3);
  EXPECT_THROW(rng.randint(5, 5), Error);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(5);
  const std::vector<int> perm = rng.permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(9);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

// --- parallel.h ---

TEST(Parallel, CoversFullRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  }, /*grain=*/8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [&](int64_t b, int64_t) {
                     if (b == 0) throw Error("boom");
                   },
                   /*grain=*/1),
      Error);
}

// --- table.h ---

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"a"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_sci(3.13e8, 2), "3.13E+08");
  EXPECT_EQ(Table::fmt_signed(-0.1, 1), "-0.1");
  EXPECT_EQ(Table::fmt_signed(0.25, 1), "+0.2");
}

// --- io.h ---

class IoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/antidote_io_test.bin";
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(IoTest, RoundTripsScalarsAndBuffers) {
  {
    BinaryWriter w(path_);
    w.write_u32(0xdeadbeef);
    w.write_i32(-42);
    w.write_f32(2.5f);
    w.write_string("hello world");
    const float data[3] = {1.f, 2.f, 3.f};
    w.write_floats(data, 3);
    w.close();
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_FLOAT_EQ(r.read_f32(), 2.5f);
  EXPECT_EQ(r.read_string(), "hello world");
  float out[3];
  r.read_floats(out, 3);
  EXPECT_FLOAT_EQ(out[2], 3.f);
  EXPECT_TRUE(r.at_end());
}

TEST_F(IoTest, DetectsTruncation) {
  {
    BinaryWriter w(path_);
    w.write_u32(1);
    w.close();
  }
  BinaryReader r(path_);
  r.read_u32();
  EXPECT_THROW(r.read_u64(), Error);
}

TEST_F(IoTest, DetectsBufferSizeMismatch) {
  {
    BinaryWriter w(path_);
    const float data[2] = {1.f, 2.f};
    w.write_floats(data, 2);
    w.close();
  }
  BinaryReader r(path_);
  float out[3];
  EXPECT_THROW(r.read_floats(out, 3), Error);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(BinaryReader("/nonexistent/path/xyz.bin"), Error);
}

// --- env.h ---

TEST(Env, FallbacksWhenUnset) {
  unsetenv("ANTIDOTE_TEST_ENV_X");
  EXPECT_EQ(env_string("ANTIDOTE_TEST_ENV_X", "dflt"), "dflt");
  EXPECT_EQ(env_int("ANTIDOTE_TEST_ENV_X", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("ANTIDOTE_TEST_ENV_X", 1.5), 1.5);
}

TEST(Env, ParsesValues) {
  setenv("ANTIDOTE_TEST_ENV_X", "42", 1);
  EXPECT_EQ(env_int("ANTIDOTE_TEST_ENV_X", 7), 42);
  setenv("ANTIDOTE_TEST_ENV_X", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double("ANTIDOTE_TEST_ENV_X", 0.0), 2.25);
  unsetenv("ANTIDOTE_TEST_ENV_X");
}

TEST(Env, BenchScaleParsing) {
  setenv("ANTIDOTE_BENCH_SCALE", "smoke", 1);
  EXPECT_EQ(bench_scale(), BenchScale::kSmoke);
  setenv("ANTIDOTE_BENCH_SCALE", "full", 1);
  EXPECT_EQ(bench_scale(), BenchScale::kFull);
  setenv("ANTIDOTE_BENCH_SCALE", "garbage", 1);
  EXPECT_EQ(bench_scale(), BenchScale::kDefault);
  unsetenv("ANTIDOTE_BENCH_SCALE");
  EXPECT_EQ(bench_scale(), BenchScale::kDefault);
}

TEST(Timer, MeasuresNonNegativeTime) {
  WallTimer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.millis(), 0.0);
}

}  // namespace
}  // namespace antidote
