// End-to-end sanity of the training substrate: small models must be able to
// fit small problems.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "tensor/ops.h"

namespace antidote::nn {
namespace {

TEST(Training, LinearSoftmaxLearnsLinearlySeparableData) {
  Rng rng(200);
  // Two Gaussian clusters in 4-d.
  const int n = 64;
  Tensor x({n, 4});
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    labels[static_cast<size_t>(i)] = cls;
    for (int j = 0; j < 4; ++j) {
      x.at({i, j}) = static_cast<float>(
          rng.normal(cls == 0 ? -1.0 : 1.0, 0.5));
    }
  }

  Linear fc(4, 2);
  init_module(fc, rng);
  Sgd sgd(fc.parameters(), {.lr = 0.5, .momentum = 0.9, .weight_decay = 0.0});
  SoftmaxCrossEntropy loss;

  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 60; ++step) {
    sgd.zero_grad();
    Tensor logits = fc.forward(x);
    const double l = loss.forward(logits, labels);
    if (step == 0) first_loss = l;
    last_loss = l;
    fc.backward(loss.backward());
    sgd.step();
  }
  EXPECT_LT(last_loss, 0.3 * first_loss);
  EXPECT_GT(ops::accuracy(fc.forward(x), labels), 0.95);
}

TEST(Training, TinyConvNetOverfitsSmallBatch) {
  Rng rng(201);
  // 8 images, 2 classes, class 1 has a bright top-left corner.
  const int n = 8;
  Tensor x = Tensor::randn({n, 1, 8, 8}, rng, 0.f, 0.3f);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = i % 2;
    if (i % 2 == 1) {
      for (int h = 0; h < 3; ++h) {
        for (int w = 0; w < 3; ++w) x.at({i, 0, h, w}) += 2.f;
      }
    }
  }

  Sequential net;
  net.add<Conv2d>(1, 4, 3, 1, 1, true);
  net.add<ReLU>();
  net.add<MaxPool2d>(2);
  net.add<Conv2d>(4, 4, 3, 1, 1, true);
  net.add<ReLU>();
  net.add<GlobalAvgPool>();
  net.add<Linear>(4, 2);
  init_module(net, rng);
  net.set_training(true);

  Sgd sgd(net.parameters(), {.lr = 0.1, .momentum = 0.9, .weight_decay = 0.0});
  SoftmaxCrossEntropy loss;
  for (int step = 0; step < 80; ++step) {
    sgd.zero_grad();
    Tensor logits = net.forward(x);
    loss.forward(logits, labels);
    net.backward(loss.backward());
    sgd.step();
  }
  EXPECT_EQ(ops::accuracy(net.forward(x), labels), 1.0);
}

TEST(Training, ZeroGradClearsAccumulation) {
  Rng rng(202);
  Linear fc(3, 2);
  init_module(fc, rng);
  Tensor x = Tensor::randn({4, 3}, rng);
  SoftmaxCrossEntropy loss;
  const std::vector<int> labels = {0, 1, 0, 1};

  loss.forward(fc.forward(x), labels);
  fc.backward(loss.backward());
  const float g1 = fc.weight().grad[0];
  // Second backward without zero_grad accumulates.
  loss.forward(fc.forward(x), labels);
  fc.backward(loss.backward());
  EXPECT_NEAR(fc.weight().grad[0], 2 * g1, 1e-4f + std::abs(g1) * 0.01f);

  fc.zero_grad();
  EXPECT_EQ(fc.weight().grad[0], 0.f);
}

}  // namespace
}  // namespace antidote::nn
