// Shared helpers for the AntiDote test suite: finite-difference gradient
// checking and random tensor construction.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "base/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace antidote::testing {

// Checks dLoss/dInput of `m` against central finite differences, where
// Loss = sum(forward(x) * probe) for a fixed random probe tensor. Samples
// up to `max_coords` input coordinates. Works for any Module whose forward
// is deterministic given fixed internal state.
inline void check_input_gradient(nn::Module& m, Tensor x, Rng& rng,
                                 float eps = 1e-3f, float tol = 2e-2f,
                                 int max_coords = 24) {
  Tensor out = m.forward(x);
  Tensor probe = Tensor::randn(out.shape(), rng);
  Tensor analytic = m.backward(probe);
  ASSERT_TRUE(analytic.same_shape(x));

  auto loss_at = [&](Tensor& input) {
    Tensor y = m.forward(input);
    double acc = 0.0;
    for (int64_t i = 0; i < y.size(); ++i) acc += double(y[i]) * probe[i];
    return acc;
  };

  const int64_t n = x.size();
  const int64_t stride = std::max<int64_t>(1, n / max_coords);
  for (int64_t i = 0; i < n; i += stride) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double hi = loss_at(x);
    x[i] = orig - eps;
    const double lo = loss_at(x);
    x[i] = orig;
    const double numeric = (hi - lo) / (2.0 * eps);
    const double a = analytic[i];
    const double denom = std::max(1.0, std::abs(numeric) + std::abs(a));
    EXPECT_NEAR(a, numeric, tol * denom)
        << "input coordinate " << i << " of " << n;
  }
  // Restore caches for any follow-up backward calls.
  m.forward(x);
  m.backward(probe);
}

// Checks dLoss/dParam for every parameter of `m` (sampled coordinates).
inline void check_parameter_gradients(nn::Module& m, const Tensor& x,
                                      Rng& rng, float eps = 1e-3f,
                                      float tol = 2e-2f, int max_coords = 12) {
  Tensor out = m.forward(x);
  Tensor probe = Tensor::randn(out.shape(), rng);
  m.zero_grad();
  m.forward(x);
  m.backward(probe);

  auto loss_now = [&] {
    Tensor y = m.forward(x);
    double acc = 0.0;
    for (int64_t i = 0; i < y.size(); ++i) acc += double(y[i]) * probe[i];
    return acc;
  };

  for (nn::Parameter* p : m.parameters()) {
    // Copy the analytic gradient before further forwards disturb caches.
    Tensor analytic = p->grad.clone();
    const int64_t n = p->value.size();
    const int64_t stride = std::max<int64_t>(1, n / max_coords);
    for (int64_t i = 0; i < n; i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double hi = loss_now();
      p->value[i] = orig - eps;
      const double lo = loss_now();
      p->value[i] = orig;
      const double numeric = (hi - lo) / (2.0 * eps);
      const double a = analytic[i];
      const double denom = std::max(1.0, std::abs(numeric) + std::abs(a));
      EXPECT_NEAR(a, numeric, tol * denom)
          << "param " << p->name << " coordinate " << i;
    }
  }
}

}  // namespace antidote::testing
