// FlagSet parser and antidote_cli commands (driven in process).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "base/error.h"
#include "base/flags.h"
#include "tools/cli.h"

namespace antidote {
namespace {

// --- FlagSet ---

TEST(Flags, TypedDefaultsAndParsing) {
  FlagSet flags("prog");
  flags.add_string("name", "dflt", "a string");
  flags.add_int("count", 3, "an int");
  flags.add_double("ratio", 0.5, "a double");
  flags.add_bool("verbose", false, "a bool");
  flags.add_float_list("drops", "", "ratios");

  EXPECT_EQ(flags.get_string("name"), "dflt");
  EXPECT_EQ(flags.get_int("count"), 3);

  const auto positional = flags.parse(
      {"pos1", "--name=abc", "--count", "7", "--verbose", "--ratio=0.25",
       "--drops=0.1,0.2,0.3", "pos2"});
  EXPECT_EQ(positional, (std::vector<std::string>{"pos1", "pos2"}));
  EXPECT_EQ(flags.get_string("name"), "abc");
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.25);
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_float_list("drops"),
            (std::vector<float>{0.1f, 0.2f, 0.3f}));
}

TEST(Flags, RejectsUnknownFlagAndBadValues) {
  FlagSet flags("prog");
  flags.add_int("n", 1, "");
  flags.add_bool("b", false, "");
  EXPECT_THROW(flags.parse({"--nope=1"}), Error);
  EXPECT_THROW(flags.parse({"--n=abc"}), Error);
  EXPECT_THROW(flags.parse({"--b=maybe"}), Error);
  EXPECT_THROW(flags.parse({"--n"}), Error);  // missing value
}

TEST(Flags, HelpFlagAndUsage) {
  FlagSet flags("prog");
  flags.add_int("n", 1, "the n flag");
  flags.parse({"--help"});
  EXPECT_TRUE(flags.help_requested());
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("the n flag"), std::string::npos);
}

TEST(Flags, FloatListParsing) {
  EXPECT_TRUE(FlagSet::parse_float_list("").empty());
  EXPECT_EQ(FlagSet::parse_float_list("0.5"), (std::vector<float>{0.5f}));
  EXPECT_THROW(FlagSet::parse_float_list("0.1,abc"), Error);
  EXPECT_THROW(FlagSet::parse_float_list("0.1x,0.2"), Error);
}

TEST(Flags, TypeMismatchOnAccessThrows) {
  FlagSet flags("prog");
  flags.add_int("n", 1, "");
  EXPECT_THROW(flags.get_string("n"), Error);
  EXPECT_THROW(flags.get_int("missing"), Error);
}

// --- CLI commands ---

TEST(Cli, NoArgsPrintsUsageAndFails) {
  EXPECT_EQ(cli::run_cli({}), 1);
  EXPECT_EQ(cli::run_cli({"--help"}), 0);
  EXPECT_EQ(cli::run_cli({"frobnicate"}), 1);
}

TEST(Cli, SummaryRuns) {
  EXPECT_EQ(cli::run_cli({"summary", "--model=small_cnn"}), 0);
  EXPECT_EQ(cli::run_cli({"summary", "--help"}), 0);
  EXPECT_EQ(cli::run_cli({"summary", "--model=unknown_model"}), 1);
}

TEST(Cli, TrainEvalRoundTripThroughCheckpoint) {
  const std::string ckpt = ::testing::TempDir() + "/antidote_cli_test.ckpt";
  const std::vector<std::string> data_flags = {
      "--model=small_cnn", "--classes=3",   "--image-size=12",
      "--train-size=48",   "--test-size=24", "--batch=16"};

  std::vector<std::string> train = {"train", "--epochs=2", "--out=" + ckpt};
  train.insert(train.end(), data_flags.begin(), data_flags.end());
  ASSERT_EQ(cli::run_cli(train), 0);
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  std::vector<std::string> eval = {"eval", "--ckpt=" + ckpt,
                                   "--channel-drop=0.5"};
  eval.insert(eval.end(), data_flags.begin(), data_flags.end());
  EXPECT_EQ(cli::run_cli(eval), 0);

  // Random-order pruning and broadcast ratios work too.
  std::vector<std::string> eval2 = {"eval", "--ckpt=" + ckpt,
                                    "--channel-drop=0.5", "--order=random"};
  eval2.insert(eval2.end(), data_flags.begin(), data_flags.end());
  EXPECT_EQ(cli::run_cli(eval2), 0);

  std::filesystem::remove(ckpt);
}

TEST(Cli, TtdAndSensitivityRun) {
  const std::string ckpt = ::testing::TempDir() + "/antidote_cli_ttd.ckpt";
  const std::vector<std::string> data_flags = {
      "--model=small_cnn", "--classes=3",   "--image-size=12",
      "--train-size=32",   "--test-size=16", "--batch=16"};

  std::vector<std::string> ttd = {"ttd",          "--channel-drop=0.4",
                                  "--warmup=0.2", "--step=0.2",
                                  "--epochs=1",   "--final-epochs=1",
                                  "--out=" + ckpt};
  ttd.insert(ttd.end(), data_flags.begin(), data_flags.end());
  ASSERT_EQ(cli::run_cli(ttd), 0);

  std::vector<std::string> sens = {"sensitivity", "--ckpt=" + ckpt,
                                   "--per-site"};
  sens.insert(sens.end(), data_flags.begin(), data_flags.end());
  EXPECT_EQ(cli::run_cli(sens), 0);
  std::filesystem::remove(ckpt);
}

TEST(Cli, EvalRequiresCheckpoint) {
  EXPECT_EQ(cli::run_cli({"eval", "--model=small_cnn"}), 1);
}

TEST(Cli, PlanDumpRuns) {
  EXPECT_EQ(cli::run_cli({"plan-dump", "--model=small_cnn"}), 0);
  // Gated dump: the op table carries the gate steps and mask metadata.
  EXPECT_EQ(cli::run_cli({"plan-dump", "--model=resnet20",
                          "--channel-drop=0.3", "--spatial-drop=0.2"}),
            0);
  EXPECT_EQ(cli::run_cli({"plan-dump", "--help"}), 0);
  EXPECT_EQ(cli::run_cli({"plan-dump", "--model=unknown_model"}), 1);
}

TEST(Cli, PlanDumpPrintsOpTableForAllModels) {
  // Exit code, the op-table header, per-op FLOPs lines and the arena
  // footprint, for each of the three model families.
  struct DumpCase {
    const char* model;
    const char* image_flag;
  };
  const DumpCase cases[] = {
      {"small_cnn", "--image-size=16"},
      {"resnet20", "--image-size=16"},
      {"vgg16", "--image-size=32"},
  };
  for (const DumpCase& c : cases) {
    ::testing::internal::CaptureStdout();
    ASSERT_EQ(cli::run_cli({"plan-dump", std::string("--model=") + c.model,
                            c.image_flag, "--width=0.25"}),
              0)
        << c.model;
    const std::string out = ::testing::internal::GetCapturedStdout();
    // Op-table header columns.
    EXPECT_NE(out.find("op"), std::string::npos) << c.model;
    EXPECT_NE(out.find("MACs/sample"), std::string::npos) << c.model;
    EXPECT_NE(out.find("ewma_ms"), std::string::npos) << c.model;
    EXPECT_NE(out.find("groups"), std::string::npos) << c.model;
    // Per-op rows: at least one fused conv line with a positive FLOPs
    // figure, plus the classifier head and the arena footprint.
    size_t conv_lines = 0;
    std::istringstream lines(out);
    for (std::string line; std::getline(lines, line);) {
      if (line.find(" conv ") == std::string::npos) continue;
      ++conv_lines;
      EXPECT_NE(line.find("+bn"), std::string::npos) << c.model << ": " << line;
      // The MACs column holds a non-zero integer on every conv row.
      EXPECT_NE(line.find_first_of("123456789"), std::string::npos)
          << c.model << ": " << line;
    }
    EXPECT_GT(conv_lines, 1u) << c.model;
    EXPECT_NE(out.find("linear"), std::string::npos) << c.model;
    EXPECT_NE(out.find("arena bytes"), std::string::npos) << c.model;
    EXPECT_NE(out.find("weight-pack cache"), std::string::npos) << c.model;
  }
}

TEST(Cli, TraceWritesChromeJson) {
  const std::string out = ::testing::TempDir() + "/antidote_cli_trace.json";
  const std::vector<std::string> args = {
      "trace",           "--model=small_cnn", "--image-size=16",
      "--passes=2",      "--batch=4",         "--distinct=2",
      "--out=" + out};
#if ANTIDOTE_PROFILE
  ASSERT_EQ(cli::run_cli(args), 0);
  ASSERT_TRUE(std::filesystem::exists(out));
  std::ifstream in(out);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  std::filesystem::remove(out);
#else
  // Compiled-out builds must refuse with a clear error, not emit an
  // empty trace.
  EXPECT_EQ(cli::run_cli(args), 1);
  EXPECT_FALSE(std::filesystem::exists(out));
#endif
  EXPECT_EQ(cli::run_cli({"trace", "--help"}), 0);
}

TEST(Cli, PlanDumpProfileRuns) {
  const std::vector<std::string> args = {
      "plan-dump", "--model=small_cnn", "--image-size=16", "--profile",
      "--passes=2", "--batch=4", "--distinct=2"};
#if ANTIDOTE_PROFILE
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(cli::run_cli(args), 0);
  const std::string out = ::testing::internal::GetCapturedStdout();
  // The plan table is still printed, followed by the profile report.
  EXPECT_NE(out.find("arena bytes"), std::string::npos);
  EXPECT_NE(out.find("profile:"), std::string::npos);
  EXPECT_NE(out.find("phase"), std::string::npos);
  EXPECT_NE(out.find("gemm"), std::string::npos);
  EXPECT_NE(out.find("pack cache:"), std::string::npos);
#else
  EXPECT_EQ(cli::run_cli(args), 1);
#endif
}

TEST(Cli, BadRatioCountFails) {
  const std::string ckpt = ::testing::TempDir() + "/antidote_cli_bad.ckpt";
  ASSERT_EQ(cli::run_cli({"train", "--model=small_cnn", "--classes=2",
                          "--image-size=12", "--train-size=16",
                          "--test-size=8", "--epochs=1", "--out=" + ckpt}),
            0);
  // small_cnn has 2 blocks; 3 ratio entries must be rejected.
  EXPECT_EQ(cli::run_cli({"eval", "--ckpt=" + ckpt, "--model=small_cnn",
                          "--classes=2", "--image-size=12",
                          "--train-size=16", "--test-size=8",
                          "--channel-drop=0.1,0.2,0.3"}),
            1);
  std::filesystem::remove(ckpt);
}

}  // namespace
}  // namespace antidote
