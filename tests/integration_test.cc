// Cross-module integration tests reproducing the paper's headline
// properties at miniature scale:
//   1. attention-ordered dynamic pruning retains accuracy far better than
//      random, which beats inverse-attention (Fig. 2 shape);
//   2. TTD training makes a model robust to its target pruning ratio
//      (Sec. IV claim);
//   3. measured FLOPs reduction tracks the configured drop ratios;
//   4. dense forward == gated forward with zero ratios (no perturbation).
// A single trained model is shared across tests (training on one core is
// the expensive part).
#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "base/rng.h"
#include "core/engine.h"
#include "core/evaluate.h"
#include "core/sensitivity.h"
#include "core/trainer.h"
#include "core/ttd.h"
#include "data/synthetic.h"
#include "models/flops.h"
#include "models/small_cnn.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace antidote {
namespace {

using core::DynamicPruningEngine;
using core::EvalResult;
using core::MaskOrder;
using core::PruneSettings;

class TrainedModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticSpec spec;
    spec.num_classes = 4;
    spec.height = spec.width = 16;
    spec.train_size = 160;
    spec.test_size = 80;
    spec.noise_std = 0.2f;
    data_ = new data::DatasetPair(data::make_synthetic_pair(spec));

    models::SmallCnnConfig cfg;
    cfg.num_classes = 4;
    cfg.widths = {12, 24};
    cfg.pool_after = {false, true};  // site 0 spatially aligned
    net_ = new models::SmallCnn(cfg);
    Rng rng(77);
    nn::init_module(*net_, rng);

    core::TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 16;
    tc.base_lr = 0.08;
    tc.augment = false;
    core::Trainer trainer(*net_, *data_->train, tc);
    trainer.fit();

    baseline_ = new EvalResult(core::evaluate(*net_, *data_->test, 16));
  }

  static void TearDownTestSuite() {
    delete baseline_;
    delete net_;
    delete data_;
    baseline_ = nullptr;
    net_ = nullptr;
    data_ = nullptr;
  }

  static data::DatasetPair* data_;
  static models::SmallCnn* net_;
  static EvalResult* baseline_;
};

data::DatasetPair* TrainedModelTest::data_ = nullptr;
models::SmallCnn* TrainedModelTest::net_ = nullptr;
EvalResult* TrainedModelTest::baseline_ = nullptr;

TEST_F(TrainedModelTest, ModelLearnedTheTask) {
  EXPECT_GT(baseline_->accuracy, 0.85) << "substrate failed to train";
}

TEST_F(TrainedModelTest, ZeroRatioGatingIsExactlyDense) {
  const Tensor x = data_->test->get(0).image.reshape({1, 3, 16, 16});
  net_->set_training(false);
  const Tensor dense = net_->forward(x);
  DynamicPruningEngine engine(*net_,
                              PruneSettings::uniform(net_->num_blocks(),
                                                     0.f, 0.f));
  const Tensor gated = net_->forward(x);
  engine.remove();
  EXPECT_TRUE(ops::allclose(dense, gated, 0.f, 0.f));
}

TEST_F(TrainedModelTest, Fig2Shape_AttentionBeatsRandomBeatsInverse) {
  core::SensitivitySweep sweep;
  sweep.ratios = {0.5f};
  sweep.batch_size = 16;
  const auto curves =
      core::order_comparison(*net_, *data_->test, /*block=*/1, sweep);
  const double attention_acc = curves[0].accuracy[0];
  const double random_acc = curves[1].accuracy[0];
  const double inverse_acc = curves[2].accuracy[0];
  // The paper's Fig. 2 ordering. Margins are generous to stay robust at
  // miniature scale; the bench reproduces the full curves.
  EXPECT_GE(attention_acc, random_acc - 0.05);
  EXPECT_GT(attention_acc, inverse_acc);
  // Attention pruning at 50% on the last block barely hurts.
  EXPECT_GT(attention_acc, baseline_->accuracy - 0.1);
}

TEST_F(TrainedModelTest, InverseAttentionPruningCollapsesAccuracy) {
  // Fig. 2's sharpest claim: removing the TOP-attention components is
  // catastrophic even at modest ratios.
  core::SensitivitySweep sweep;
  sweep.ratios = {0.75f};
  sweep.batch_size = 16;
  const auto curves =
      core::order_comparison(*net_, *data_->test, /*block=*/1, sweep);
  const double attention_acc = curves[0].accuracy[0];
  const double inverse_acc = curves[2].accuracy[0];
  EXPECT_GT(attention_acc - inverse_acc, 0.2);
}

TEST_F(TrainedModelTest, MeasuredFlopsTrackConfiguredRatios) {
  const auto dense = models::measure_dense_flops(*net_, 3, 16, 16);
  DynamicPruningEngine engine(*net_,
                              PruneSettings::uniform(net_->num_blocks(),
                                                     0.5f, 0.f));
  const EvalResult gated = core::evaluate(*net_, *data_->test, 16);
  engine.remove();

  // Site 0 prunes half of conv1's 12 channels -> conv2's input channels
  // halve -> conv2 MACs halve. conv1 and fc are unchanged, so the overall
  // reduction must sit strictly between 0 and 50%.
  const double reduction =
      1.0 - gated.mean_macs_per_sample / static_cast<double>(dense.total_macs);
  EXPECT_GT(reduction, 0.25);
  EXPECT_LT(reduction, 0.55);
}

TEST_F(TrainedModelTest, BlockSensitivityCurvesAreMonotoneIsh) {
  core::SensitivitySweep sweep;
  sweep.ratios = {0.25f, 0.9f};
  sweep.batch_size = 16;
  const auto curves = core::block_sensitivity(*net_, *data_->test, sweep);
  for (const auto& c : curves) {
    // Heavier pruning never helps much: allow small noise, forbid gains.
    EXPECT_LE(c.accuracy[1], c.accuracy[0] + 0.08) << "block " << c.block;
  }
}

TEST(TtdIntegration, TtdBeatsPlainTrainingUnderPruning) {
  // Train two identical models on identical data — one plain, one with
  // TTD — and compare accuracy under the same dynamic pruning.
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 16;
  spec.train_size = 128;
  spec.test_size = 64;
  const auto pair = data::make_synthetic_pair(spec);

  models::SmallCnnConfig cfg;
  cfg.num_classes = 4;
  cfg.widths = {12, 24};

  auto make_initialized = [&cfg] {
    auto net = std::make_unique<models::SmallCnn>(cfg);
    Rng rng(55);  // identical init for both runs
    nn::init_module(*net, rng);
    return net;
  };
  const PruneSettings heavy = PruneSettings::uniform(2, 0.6f, 0.f);

  // Plain training, then prune at test time.
  auto plain = make_initialized();
  core::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.base_lr = 0.08;
  tc.augment = false;
  core::Trainer(*plain, *pair.train, tc).fit();
  DynamicPruningEngine plain_engine(*plain, heavy);
  const double plain_pruned_acc =
      core::evaluate(*plain, *pair.test, 16).accuracy;

  // TTD training toward the same target ratios.
  auto ttd_net = make_initialized();
  core::TtdConfig ttd_cfg;
  ttd_cfg.target = heavy;
  ttd_cfg.warmup_ratio = 0.2f;
  ttd_cfg.step = 0.2f;
  ttd_cfg.max_epochs_per_level = 2;
  ttd_cfg.final_epochs = 2;
  ttd_cfg.train = tc;
  ttd_cfg.train.epochs = 1;
  core::TtdTrainer ttd(*ttd_net, *pair.train, ttd_cfg);
  ttd.run();
  const double ttd_pruned_acc =
      core::evaluate(*ttd_net, *pair.test, 16).accuracy;

  // The paper's training-phase claim, with miniature-scale slack.
  EXPECT_GE(ttd_pruned_acc, plain_pruned_acc - 0.03);
  EXPECT_GT(ttd_pruned_acc, 0.5);
}

}  // namespace
}  // namespace antidote
