// Int8 SIMD-vs-scalar parity: the u8xs8 igemm dispatch (scalar / AVX2
// dpbusd emulation / runtime AVX-512 VNNI) and the activation quantizer
// must be BITWISE identical to their genuinely-scalar references — the
// accumulator is exact integer math and the dequant performs the same
// two IEEE-754 roundings in every backend (see nn/int8_kernels.h), so
// any deviation is a kernel bug, not numeric noise. Mirrors the f32
// contract in simd_parity_test.cc: odd row counts, ragged k tails
// (k % 4 != 0), odd column counts straddling the 8/16-lane boundaries,
// and every fused-epilogue variant applied on top of the igemm output.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "base/rng.h"
#include "nn/conv_kernels.h"
#include "nn/int8_kernels.h"

namespace antidote {
namespace {

std::vector<float> random_vec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

struct QuantizedWeights {
  std::vector<int8_t> q;
  std::vector<float> scale;
  std::vector<int32_t> wsum;
  int64_t row_stride = 0;
};

QuantizedWeights quantize(const std::vector<float>& w, int rows, int64_t k) {
  QuantizedWeights qw;
  qw.row_stride = nn::int8_align4(k);
  qw.q.assign(static_cast<size_t>(rows) * qw.row_stride, 0);
  qw.scale.assign(static_cast<size_t>(rows), 0.f);
  qw.wsum.assign(static_cast<size_t>(rows), 0);
  nn::quantize_weights_rowwise(w.data(), rows, k, qw.q.data(),
                               qw.row_stride, qw.scale.data(),
                               qw.wsum.data());
  return qw;
}

TEST(Int8Parity, IsaNameIsKnown) {
  const char* isa = nn::int8_isa_name();
  ASSERT_NE(isa, nullptr);
  EXPECT_TRUE(std::strcmp(isa, "avx512-vnni") == 0 ||
              std::strcmp(isa, "avx2") == 0 ||
              std::strcmp(isa, "scalar") == 0)
      << isa;
}

TEST(Int8Parity, QuantizeActivationsBitwiseAcrossRaggedShapes) {
  Rng rng(51);
  // k values cover every quad tail (k % 4 in 0..3); n values straddle the
  // 8-lane (AVX2) and 16-lane (AVX-512) column boundaries.
  const int64_t ks[] = {1, 2, 3, 4, 5, 7, 8, 9, 12, 17, 31, 64};
  const int64_t ns[] = {1, 5, 8, 9, 13, 16, 17, 31, 33, 64, 100};
  for (const int64_t k : ks) {
    for (const int64_t n : ns) {
      const auto b = random_vec(static_cast<size_t>(k * n), rng);
      const size_t bytes = static_cast<size_t>(nn::int8_align4(k) * n);
      std::vector<uint8_t> simd_q(bytes, 7), ref_q(bytes, 9);
      const float simd_scale =
          nn::quantize_activations(b.data(), k, n, simd_q.data());
      const float ref_scale =
          nn::quantize_activations_scalar(b.data(), k, n, ref_q.data());
      EXPECT_EQ(std::memcmp(&simd_scale, &ref_scale, sizeof(float)), 0)
          << "k=" << k << " n=" << n;
      EXPECT_EQ(std::memcmp(simd_q.data(), ref_q.data(), bytes), 0)
          << "k=" << k << " n=" << n;
    }
  }
}

TEST(Int8Parity, QuantizeActivationsAllZeroTensor) {
  const int64_t k = 6, n = 9;
  std::vector<float> b(static_cast<size_t>(k * n), 0.f);
  std::vector<uint8_t> q(static_cast<size_t>(nn::int8_align4(k) * n), 0);
  const float scale = nn::quantize_activations(b.data(), k, n, q.data());
  EXPECT_EQ(scale, 0.f);
  // Every byte (including quad padding) must hold the bias 128 so the
  // accumulator contributes exactly 128 * wsum, cancelled by the dequant.
  for (const uint8_t byte : q) EXPECT_EQ(byte, 128);
}

TEST(Int8Parity, IgemmDispatchBitwiseAcrossRaggedShapes) {
  Rng rng(52);
  const int ms[] = {1, 3, 7, 17, 32};
  const int64_t ns[] = {1, 5, 8, 9, 13, 16, 17, 31, 33, 64, 100};
  const int64_t ks[] = {3, 4, 9, 27, 64, 65};  // ragged and exact quads
  for (const int m : ms) {
    for (const int64_t k : ks) {
      const auto w = random_vec(static_cast<size_t>(m) * k, rng);
      const QuantizedWeights qw = quantize(w, m, k);
      for (const int64_t n : ns) {
        const auto b = random_vec(static_cast<size_t>(k * n), rng);
        std::vector<uint8_t> qb(
            static_cast<size_t>(nn::int8_align4(k) * n));
        const float sa =
            nn::quantize_activations(b.data(), k, n, qb.data());
        std::vector<float> simd_y(static_cast<size_t>(m) * n, -1.f);
        std::vector<float> ref_y(static_cast<size_t>(m) * n, -2.f);
        nn::igemm_u8s8_dequant(m, n, qw.row_stride, qw.q.data(),
                               qw.row_stride, qb.data(), qw.wsum.data(),
                               qw.scale.data(), sa, simd_y.data(), n);
        nn::igemm_u8s8_dequant_scalar(m, n, qw.row_stride, qw.q.data(),
                                      qw.row_stride, qb.data(),
                                      qw.wsum.data(), qw.scale.data(), sa,
                                      ref_y.data(), n);
        EXPECT_TRUE(bitwise_equal(simd_y, ref_y))
            << "m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(Int8Parity, IgemmRespectsOutputStride) {
  Rng rng(53);
  const int m = 5;
  const int64_t k = 13, n = 11, ldy = n + 6;
  const auto w = random_vec(static_cast<size_t>(m) * k, rng);
  const QuantizedWeights qw = quantize(w, m, k);
  const auto b = random_vec(static_cast<size_t>(k * n), rng);
  std::vector<uint8_t> qb(static_cast<size_t>(nn::int8_align4(k) * n));
  const float sa = nn::quantize_activations(b.data(), k, n, qb.data());
  std::vector<float> simd_y(static_cast<size_t>(m) * ldy, -7.f);
  std::vector<float> ref_y(static_cast<size_t>(m) * ldy, -7.f);
  nn::igemm_u8s8_dequant(m, n, qw.row_stride, qw.q.data(), qw.row_stride,
                         qb.data(), qw.wsum.data(), qw.scale.data(), sa,
                         simd_y.data(), ldy);
  nn::igemm_u8s8_dequant_scalar(m, n, qw.row_stride, qw.q.data(),
                                qw.row_stride, qb.data(), qw.wsum.data(),
                                qw.scale.data(), sa, ref_y.data(), ldy);
  // Bitwise including the inter-row gap: the sentinel -7 rows prove
  // neither backend writes past column n.
  EXPECT_TRUE(bitwise_equal(simd_y, ref_y));
  for (int mi = 0; mi < m; ++mi) {
    for (int64_t j = n; j < ldy; ++j) {
      EXPECT_EQ(simd_y[static_cast<size_t>(mi) * ldy + j], -7.f)
          << "row " << mi << " gap col " << j;
    }
  }
}

TEST(Int8Parity, IgemmPlusFusedEpilogueAllVariants) {
  Rng rng(54);
  // The executor always runs fused_epilogue over the igemm output; the
  // pair (igemm dispatch + SIMD epilogue) must match (scalar igemm +
  // scalar epilogue) bitwise for every epilogue variant.
  const int out_c = 7;
  const int64_t k = 19, pos = 33;
  const auto w = random_vec(static_cast<size_t>(out_c) * k, rng);
  const QuantizedWeights qw = quantize(w, out_c, k);
  const auto b = random_vec(static_cast<size_t>(k * pos), rng);
  std::vector<uint8_t> qb(static_cast<size_t>(nn::int8_align4(k) * pos));
  const float sa = nn::quantize_activations(b.data(), k, pos, qb.data());

  const auto mean = random_vec(static_cast<size_t>(out_c), rng);
  const auto inv_std = random_vec(static_cast<size_t>(out_c), rng);
  const auto gamma = random_vec(static_cast<size_t>(out_c), rng);
  const auto beta = random_vec(static_cast<size_t>(out_c), rng);
  const auto res = random_vec(static_cast<size_t>(out_c * pos), rng);

  for (const bool bn : {false, true}) {
    for (const bool with_res : {false, true}) {
      for (const bool relu : {false, true}) {
        nn::FusedEpilogueParams p;
        p.bn = bn;
        p.relu = relu;
        if (bn) {
          p.mean = mean.data();
          p.inv_std = inv_std.data();
          p.gamma = gamma.data();
          p.beta = beta.data();
        }
        std::vector<float> simd_y(static_cast<size_t>(out_c * pos));
        std::vector<float> ref_y(static_cast<size_t>(out_c * pos));
        nn::igemm_u8s8_dequant(out_c, pos, qw.row_stride, qw.q.data(),
                               qw.row_stride, qb.data(), qw.wsum.data(),
                               qw.scale.data(), sa, simd_y.data(), pos);
        nn::igemm_u8s8_dequant_scalar(
            out_c, pos, qw.row_stride, qw.q.data(), qw.row_stride,
            qb.data(), qw.wsum.data(), qw.scale.data(), sa, ref_y.data(),
            pos);
        nn::fused_epilogue(simd_y.data(), with_res ? res.data() : nullptr,
                           out_c, pos, p);
        nn::fused_epilogue_scalar(ref_y.data(),
                                  with_res ? res.data() : nullptr, out_c,
                                  pos, p);
        EXPECT_TRUE(bitwise_equal(simd_y, ref_y))
            << "bn=" << bn << " res=" << with_res << " relu=" << relu;
      }
    }
  }
}

}  // namespace
}  // namespace antidote
