// Executor-level tracing under a forced 4-thread pool: with the tracer
// ARMED, reserved grouped plan passes must stay arena-growth-free (rings
// are preallocated, slot claims are lock-free), the recorded timeline must
// show mask-group spans on >= 2 worker lanes (the parallel group regime is
// actually traced, not just the driving thread), and the per-(op, phase)
// aggregation must carry the GEMM phase the masked conv steps record.
// Compiled-out builds (ANTIDOTE_PROFILE=0) skip: enable() returns false.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "base/parallel.h"
#include "base/rng.h"
#include "core/engine.h"
#include "models/factory.h"
#include "nn/execution_context.h"
#include "obs/trace.h"
#include "plan/plan.h"

namespace antidote {
namespace {

// Must run before any antidote code touches the pool (see
// parallel_groups_test.cc). 4 compute threads = caller + 3 workers.
const bool kForcedThreads = [] {
  ::setenv("ANTIDOTE_THREADS", "4", /*overwrite=*/1);
  return true;
}();

class TracedRun {
 public:
  explicit TracedRun(int distinct, size_t events_per_worker = 1 << 12)
      : distinct_(distinct) {
    EXPECT_TRUE(kForcedThreads);
    enabled_ = obs::Tracer::instance().enable(events_per_worker,
                                              /*with_counters=*/false);
    if (!enabled_) return;
    Rng rng(5);
    net_ = models::make_model("vgg16", 10, /*width=*/0.25f, rng);
    net_->set_training(false);
    core::PruneSettings settings;
    settings.channel_drop = {0.2f, 0.2f, 0.6f, 0.9f, 0.9f};
    settings.spatial_drop = {0.3f, 0.3f, 0.3f, 0.3f, 0.3f};
    engine_ = std::make_unique<core::DynamicPruningEngine>(*net_, settings);
    Rng data_rng(17);
    Tensor uniq = Tensor::randn({distinct_, 3, 32, 32}, data_rng);
    x_ = Tensor({kBatch, 3, 32, 32});
    const int64_t sample = uniq.size() / distinct_;
    for (int i = 0; i < kBatch; ++i) {
      std::memcpy(x_.data() + i * sample,
                  uniq.data() + (i % distinct_) * sample,
                  static_cast<size_t>(sample) * sizeof(float));
    }
    // These tests assert multi-lane STRUCTURE (group spans on >= 2 worker
    // lanes, >= 2 exported tids); union coarsening merging similar masks
    // below 2 groups would collapse the lanes, so pin it off here.
    net_->set_coarsen_policy({plan::CoarsenMode::kOff, 1.0});
    plan_ = &net_->inference_plan(3, 32, 32);
    plan_->reserve(ctx_.workspace(), kBatch);
  }

  ~TracedRun() {
    if (engine_) engine_->remove();
    obs::Tracer::instance().disable();
  }

  bool enabled() const { return enabled_; }
  plan::InferencePlan& plan() { return *plan_; }
  nn::ExecutionContext& ctx() { return ctx_; }

  void run_pass() {
    ctx_.begin_pass();
    Tensor staged = ctx_.alloc(x_.shape());
    std::memcpy(staged.data(), x_.data(),
                static_cast<size_t>(x_.size()) * sizeof(float));
    net_->forward(staged, ctx_);
  }

  static constexpr int kBatch = 8;

 private:
  int distinct_;
  bool enabled_ = false;
  std::unique_ptr<models::ConvNet> net_;
  std::unique_ptr<core::DynamicPruningEngine> engine_;
  Tensor x_;
  nn::ExecutionContext ctx_;
  plan::InferencePlan* plan_ = nullptr;
};

int slots_with_phase(obs::Phase phase) {
  const obs::Tracer& tracer = obs::Tracer::instance();
  int slots = 0;
  for (int s = 0; s < tracer.slots_in_use(); ++s) {
    const obs::TraceRing& ring = tracer.ring(s);
    for (size_t i = 0; i < ring.size(); ++i) {
      if (ring.chronological(i).phase == static_cast<uint8_t>(phase)) {
        ++slots;
        break;
      }
    }
  }
  return slots;
}

TEST(TraceProfile, ArmedTracingKeepsReservedPassesGrowthFree) {
  TracedRun run(/*distinct=*/4);
  if (!run.enabled()) GTEST_SKIP() << "ANTIDOTE_PROFILE=0 build";
  for (int i = 0; i < 2; ++i) run.run_pass();  // warm + claim slots
  obs::Tracer::instance().clear();
  const int64_t grows_before = run.ctx().workspace().grow_count();
  for (int i = 0; i < 4; ++i) run.run_pass();
  EXPECT_EQ(run.ctx().workspace().grow_count() - grows_before, 0)
      << "tracing must not re-introduce arena growth on reserved passes";
  EXPECT_GE(run.plan().last_mask_groups(), 2);
  EXPECT_LE(run.plan().last_mask_groups(), 4);
  EXPECT_GT(obs::Tracer::instance().total_events(), 0u);
}

TEST(TraceProfile, GroupSpansLandOnMultipleWorkerLanes) {
  TracedRun run(/*distinct=*/4);
  if (!run.enabled()) GTEST_SKIP() << "ANTIDOTE_PROFILE=0 build";
  for (int i = 0; i < 3; ++i) run.run_pass();
  // 4 distinct mask groups on a caller + 3 workers pool: the parallel
  // group regime must have executed groups on at least two lanes.
  EXPECT_GE(slots_with_phase(obs::Phase::kGroup), 2);
  EXPECT_GE(slots_with_phase(obs::Phase::kGemm), 2);
}

TEST(TraceProfile, AggregateCarriesPerOpPhases) {
  TracedRun run(/*distinct=*/4);
  if (!run.enabled()) GTEST_SKIP() << "ANTIDOTE_PROFILE=0 build";
  run.run_pass();
  const std::vector<obs::PhaseStat> stats =
      obs::Tracer::instance().aggregate();
  bool saw_step = false, saw_gemm = false, saw_group = false;
  for (const obs::PhaseStat& s : stats) {
    EXPECT_GT(s.calls, 0u);
    EXPECT_GE(s.total_ms, 0.0);
    if (s.phase == obs::Phase::kStep && s.op >= 0) saw_step = true;
    if (s.phase == obs::Phase::kGemm && s.op >= 0) saw_gemm = true;
    if (s.phase == obs::Phase::kGroup && s.op >= 0) saw_group = true;
  }
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_gemm);
  EXPECT_TRUE(saw_group);
}

TEST(TraceProfile, RingWraparoundDropsOldestAndCountsIt) {
  // A tiny ring forces wraparound under a real traced run; the tracer
  // reports the loss in dropped_events() instead of growing.
  TracedRun run(/*distinct=*/4, /*events_per_worker=*/16);
  if (!run.enabled()) GTEST_SKIP() << "ANTIDOTE_PROFILE=0 build";
  for (int i = 0; i < 3; ++i) run.run_pass();
  const obs::Tracer& tracer = obs::Tracer::instance();
  EXPECT_GT(tracer.dropped_events(), 0u);
  for (int s = 0; s < tracer.slots_in_use(); ++s) {
    EXPECT_LE(tracer.ring(s).size(), 16u);
    EXPECT_EQ(tracer.ring(s).capacity(), 16u);
  }
}

TEST(TraceProfile, ChromeTraceExportContainsConcurrentLanes) {
  TracedRun run(/*distinct=*/4);
  if (!run.enabled()) GTEST_SKIP() << "ANTIDOTE_PROFILE=0 build";
  for (int i = 0; i < 2; ++i) run.run_pass();
  const std::string path = ::testing::TempDir() + "/antidote_trace_test.json";
  ASSERT_TRUE(obs::Tracer::instance().write_chrome_trace(path, [&](int op) {
    return run.plan().ops()[static_cast<size_t>(op)].name;
  }));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string doc;
  char buf[4096];
  for (size_t got; (got = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    doc.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find(":gemm\""), std::string::npos);
  // At least two distinct thread lanes in the export.
  EXPECT_NE(doc.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"tid\":1"), std::string::npos);
}

}  // namespace
}  // namespace antidote
