// Serving runtime: queue backpressure and shutdown, micro-batch coalescing
// under the max-wait policy, latency-controller convergence onto a budget,
// and batched results matching the unbatched ConvNet forward exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "base/error.h"
#include "base/mpmc_queue.h"
#include "base/rng.h"
#include "core/engine.h"
#include "models/factory.h"
#include "serving/serving.h"

namespace antidote::serving {
namespace {

using namespace std::chrono_literals;

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  int out = 0;
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, PushBlocksUntilSpaceFrees) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(pushed.load());
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));      // no admission after close
  EXPECT_FALSE(q.try_push(3));
  int out = 0;
  EXPECT_TRUE(q.pop(out));      // pending items stay poppable
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));     // drained + closed = shutdown signal
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(q.pop(out));  // blocks, then close() wakes it
    returned = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(returned.load());
  q.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueue, PopUntilTimesOut) {
  BoundedQueue<int> q(1);
  int out = 0;
  const auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_until(out, before + 30ms));
  EXPECT_GE(std::chrono::steady_clock::now() - before, 25ms);
}

// --- RequestQueue -----------------------------------------------------------

Tensor make_input(uint64_t seed, int image = 8) {
  Rng rng(seed);
  return Tensor::randn({3, image, image}, rng);
}

TEST(RequestQueue, TicketsAndBackpressureCounters) {
  RequestQueue q(2);
  auto f1 = q.try_submit(make_input(1));
  auto f2 = q.try_submit(make_input(2));
  EXPECT_TRUE(f1.valid());
  EXPECT_TRUE(f2.valid());
  auto f3 = q.try_submit(make_input(3));  // full -> shed
  EXPECT_FALSE(f3.valid());
  EXPECT_EQ(q.submitted(), 2u);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.depth(), 2u);

  InferenceRequest req;
  ASSERT_TRUE(q.pop(req));
  ASSERT_TRUE(q.pop(req));
  EXPECT_EQ(req.ticket, 1u);  // tickets count up from 0

  q.close();
  EXPECT_FALSE(q.submit(make_input(4)).valid());
}

TEST(RequestQueue, RejectsBatchedInputs) {
  RequestQueue q(2);
  Rng rng(1);
  Tensor batched = Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_THROW(q.submit(std::move(batched)), Error);
}

TEST(RequestQueue, ConcurrentTrySubmitAccountingIsExact) {
  // Open-loop producers hammering a small queue: every attempt is either
  // admitted or counted rejected, with nothing lost or double-counted
  // across threads.
  RequestQueue q(8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::atomic<uint64_t> valid_futures{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto f = q.try_submit(
            make_input(static_cast<uint64_t>(t) * 1000 + i));
        if (f.valid()) valid_futures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(q.submitted(), valid_futures.load());
  EXPECT_EQ(q.submitted() + q.rejected(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Nothing consumed the queue, so every admitted request is still there.
  EXPECT_EQ(q.depth(), q.submitted());
  EXPECT_LE(q.depth(), q.capacity());
}

TEST(RequestQueue, AdmissionShedsAtThePredictedCostBoundary) {
  RequestQueue q(8);
  AdmissionConfig ac;
  ac.enabled = true;
  ac.max_queue_ms = 25.0;
  q.configure_admission(ac, [] { return 10.0; });

  SubmitStatus status = SubmitStatus::kClosed;
  auto f1 = q.try_submit(make_input(1), std::nullopt, &status);
  EXPECT_TRUE(f1.valid());  // (0+1)*10 <= 25
  EXPECT_EQ(status, SubmitStatus::kAccepted);
  auto f2 = q.try_submit(make_input(2), std::nullopt, &status);
  EXPECT_TRUE(f2.valid());  // (1+1)*10 <= 25
  // Blocking submit sheds too — admission is a policy refusal, not
  // backpressure, so it must not block waiting for space.
  auto f3 = q.submit(make_input(3), std::nullopt, &status);
  EXPECT_FALSE(f3.valid());  // (2+1)*10 > 25
  EXPECT_EQ(status, SubmitStatus::kShed);
  EXPECT_EQ(q.shed(), 1u);
  EXPECT_EQ(q.rejected(), 0u);  // distinct from queue-full rejection

  // Draining one slot re-admits: the gate prices depth, not history.
  InferenceRequest req;
  ASSERT_TRUE(q.pop(req));
  auto f4 = q.try_submit(make_input(4), std::nullopt, &status);
  EXPECT_TRUE(f4.valid());
  EXPECT_EQ(status, SubmitStatus::kAccepted);
}

TEST(RequestQueue, AdmissionExactBudgetAdmitsAndZeroCostDisarms) {
  RequestQueue q(4);
  AdmissionConfig ac;
  ac.enabled = true;
  ac.max_queue_ms = 20.0;
  q.configure_admission(ac, [] { return 10.0; });
  SubmitStatus status = SubmitStatus::kClosed;
  EXPECT_TRUE(q.try_submit(make_input(1), std::nullopt, &status).valid());
  // (1+1)*10 == 20: the shed condition is strictly greater-than.
  EXPECT_TRUE(q.try_submit(make_input(2), std::nullopt, &status).valid());
  EXPECT_FALSE(q.try_submit(make_input(3), std::nullopt, &status).valid());
  EXPECT_EQ(status, SubmitStatus::kShed);

  // A zero-cost estimate (no latency signal yet) admits unconditionally.
  q.configure_admission(ac, [] { return 0.0; });
  EXPECT_TRUE(q.try_submit(make_input(4), std::nullopt, &status).valid());
  EXPECT_EQ(status, SubmitStatus::kAccepted);
}

TEST(RequestQueue, QueueFullReportsRejectedNotShed) {
  RequestQueue q(2);
  SubmitStatus status = SubmitStatus::kClosed;
  EXPECT_TRUE(q.try_submit(make_input(1), std::nullopt, &status).valid());
  EXPECT_TRUE(q.try_submit(make_input(2), std::nullopt, &status).valid());
  EXPECT_FALSE(q.try_submit(make_input(3), std::nullopt, &status).valid());
  EXPECT_EQ(status, SubmitStatus::kRejected);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.shed(), 0u);
}

// --- ServerStats ------------------------------------------------------------

TEST(ServerStats, AggregatesAndResets) {
  ServerStats stats(4);
  stats.record_batch(4, 1.0, 0.1, 2.0, 0.1);
  stats.record_batch(2, 3.0, 0.1, 1.0, 0.1);
  stats.record_deadline_miss(1);
  stats.record_rejected(2);
  stats.record_queue_depth(6);

  const ServerStats::Snapshot s = stats.snapshot();
  EXPECT_EQ(s.completed_requests, 6u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 3.0);
  EXPECT_EQ(s.batch_size_histogram[3], 1u);  // one batch of 4
  EXPECT_EQ(s.batch_size_histogram[1], 1u);  // one batch of 2
  // Queue wait is request-weighted: (1.0 * 4 + 3.0 * 2) / 6.
  EXPECT_NEAR(s.mean_queue_wait_ms, 10.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.mean_forward_ms, 1.5);
  EXPECT_EQ(s.deadline_misses, 1u);
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_GT(stats.to_table().num_rows(), 10u);

  stats.reset();
  const ServerStats::Snapshot zero = stats.snapshot();
  EXPECT_EQ(zero.completed_requests, 0u);
  EXPECT_EQ(zero.batches, 0u);
  EXPECT_EQ(zero.batch_size_histogram[3], 0u);
}

TEST(ServerStats, RejectsOverMaxBatch) {
  ServerStats stats(2);
  EXPECT_THROW(stats.record_batch(3, 0, 0, 0, 0), Error);
}

TEST(ServerStats, RequestPercentilesAreExactBucketRepresentatives) {
  // 100 per-request records: 95 fast, 5 slow (octave-separated, so they
  // can never share a log bucket). The snapshot percentiles must equal
  // the histogram's representatives EXACTLY — same math as obs_test, but
  // through the ServerStats recording and snapshot plumbing.
  ServerStats stats(4);
  for (int i = 0; i < 95; ++i) stats.record_request(0.5, 2.0);
  for (int i = 0; i < 5; ++i) stats.record_request(4.0, 32.0);
  const ServerStats::Snapshot s = stats.snapshot();
  EXPECT_EQ(s.queue_wait_p50_ms, obs::LatencyHistogram::bucket_representative(0.5));
  EXPECT_EQ(s.queue_wait_p95_ms, obs::LatencyHistogram::bucket_representative(0.5));
  EXPECT_EQ(s.queue_wait_p99_ms, obs::LatencyHistogram::bucket_representative(4.0));
  EXPECT_EQ(s.e2e_p50_ms, obs::LatencyHistogram::bucket_representative(2.0));
  EXPECT_EQ(s.e2e_p95_ms, obs::LatencyHistogram::bucket_representative(2.0));
  EXPECT_EQ(s.e2e_p99_ms, obs::LatencyHistogram::bucket_representative(32.0));

  stats.reset();
  EXPECT_EQ(stats.snapshot().e2e_p50_ms, 0.0);
}

TEST(ServerStats, ForwardPercentilesComeFromBatchRecords) {
  ServerStats stats(4);
  for (int i = 0; i < 9; ++i) stats.record_batch(1, 0.0, 0.0, 1.0, 0.0);
  stats.record_batch(1, 0.0, 0.0, 16.0, 0.0);
  const ServerStats::Snapshot s = stats.snapshot();
  EXPECT_EQ(s.forward_p50_ms, obs::LatencyHistogram::bucket_representative(1.0));
  EXPECT_EQ(s.forward_p99_ms, obs::LatencyHistogram::bucket_representative(16.0));
}

TEST(ServerStats, DeadlineMissRateIsAPercentage) {
  ServerStats stats(4);
  stats.record_batch(4, 0.0, 0.0, 1.0, 0.0);  // 4 completed
  stats.record_deadline_miss(1);
  const ServerStats::Snapshot s = stats.snapshot();
  EXPECT_DOUBLE_EQ(s.deadline_miss_rate_pct, 25.0);
}

TEST(ServerStats, TableReportsDistributionsNotJustMeans) {
  ServerStats stats(4);
  stats.record_batch(2, 1.0, 0.1, 2.0, 0.1);
  stats.record_request(1.0, 3.0);
  stats.record_request(1.0, 3.0);
  const Table t = stats.to_table();
  std::string all;
  for (const auto& row : t.rows()) all += row[0] + "\n";
  EXPECT_NE(all.find("queue wait p50/p95/p99"), std::string::npos);
  EXPECT_NE(all.find("forward p50/p95/p99"), std::string::npos);
  EXPECT_NE(all.find("e2e p50/p95/p99"), std::string::npos);
  EXPECT_NE(all.find("deadline miss rate"), std::string::npos);
  // The misleading mean-only forward row is gone.
  EXPECT_EQ(all.find("mean forward"), std::string::npos);
}

// --- engine settings mailbox ------------------------------------------------

TEST(EngineMailbox, PostFromOtherThreadAppliesOnOwner) {
  Rng rng(7);
  auto net = models::make_model("small_cnn", 4, 1.0f, rng);
  core::DynamicPruningEngine engine(
      *net, core::PruneSettings::uniform(net->num_blocks(), 0.1f, 0.f));

  EXPECT_FALSE(engine.apply_pending_settings());  // nothing posted yet

  std::thread poster([&] {
    engine.post_settings(
        core::PruneSettings::uniform(net->num_blocks(), 0.3f, 0.f));
    engine.post_settings(
        core::PruneSettings::uniform(net->num_blocks(), 0.6f, 0.2f));
  });
  poster.join();

  EXPECT_TRUE(engine.apply_pending_settings());  // newest post wins
  EXPECT_FLOAT_EQ(engine.settings().channel_drop[0], 0.6f);
  EXPECT_FLOAT_EQ(engine.settings().spatial_drop[0], 0.2f);
  EXPECT_FALSE(engine.apply_pending_settings());  // mailbox now empty
  engine.remove();
}

// --- LatencyController ------------------------------------------------------

constexpr core::DynamicPruningEngine::KeepStats kKeep{0.5, 0.75};

// Synthetic plant: latency falls linearly as the controller prunes harder.
double plant_latency_ms(float offset) { return 20.0 * (1.0 - 0.9 * offset); }

TEST(LatencyController, ConvergesOntoTheBudget) {
  LatencyController::Config cfg;
  cfg.target_p95_ms = 10.0;  // plant reaches it at offset ~0.55
  cfg.window = 4;
  cfg.step = 0.1f;
  LatencyController lc(core::PruneSettings::uniform(2, 0.1f, 0.1f), cfg);

  for (int i = 0; i < 400; ++i) {
    lc.record_batch(plant_latency_ms(lc.offset()), kKeep, 4);
  }
  EXPECT_NEAR(lc.smoothed_p95_ms(), cfg.target_p95_ms,
              0.25 * cfg.target_p95_ms);
  EXPECT_GT(lc.offset(), 0.35f);
  EXPECT_LT(lc.offset(), 0.75f);

  // The shipped settings carry base + offset, clamped to [0, max_drop].
  const core::PruneSettings s = lc.settings();
  EXPECT_NEAR(s.channel_drop[0], 0.1f + lc.offset(), 1e-5);
  EXPECT_LE(s.channel_drop[0], cfg.max_drop);

  const auto keep = lc.keep_summary();
  EXPECT_DOUBLE_EQ(keep.mean_channel_keep, 0.5);
  EXPECT_DOUBLE_EQ(keep.mean_spatial_keep, 0.75);
  EXPECT_EQ(keep.samples, 400u * 4u);
}

TEST(LatencyController, UnreachableBudgetSaturatesAtMaxOffset) {
  LatencyController::Config cfg;
  cfg.target_p95_ms = 0.5;  // plant floor is 20 * 0.19 = 3.8 ms
  cfg.window = 2;
  cfg.step = 0.2f;
  cfg.max_offset = 0.8f;
  LatencyController lc(core::PruneSettings::uniform(2, 0.f, 0.f), cfg);
  for (int i = 0; i < 40; ++i) {
    lc.record_batch(plant_latency_ms(lc.offset()), kKeep, 1);
  }
  EXPECT_FLOAT_EQ(lc.offset(), 0.8f);
}

TEST(LatencyController, LooseBudgetRelaxesTowardMinOffset) {
  LatencyController::Config cfg;
  cfg.target_p95_ms = 500.0;  // plant never gets near the budget
  cfg.window = 2;
  cfg.step = 0.2f;
  LatencyController lc(core::PruneSettings::uniform(2, 0.5f, 0.5f), cfg);
  for (int i = 0; i < 40; ++i) {
    lc.record_batch(plant_latency_ms(lc.offset()), kKeep, 1);
  }
  EXPECT_FLOAT_EQ(lc.offset(), cfg.min_offset);
  // Negative offset prunes *less* than base; clamped at 0, never negative.
  EXPECT_FLOAT_EQ(lc.settings().channel_drop[0], 0.f);
}

TEST(LatencyController, CostModelInversionConvergesInOneWindow) {
  // Plant: 4 ms fixed overhead + a 16 ms prunable op scaled by the keep
  // ratio (base channel drop 0.1). Budget 10 ms -> keep = 6/16 = 0.375 ->
  // offset = 0.9 - 0.1 - 0.375 ... i.e. 1 - (0.1 + o) = 0.375 -> o = 0.525.
  LatencyController::Config cfg;
  cfg.target_p95_ms = 10.0;
  cfg.window = 2;
  cfg.step = 0.02f;  // tiny step: the EWMA walk alone would crawl
  LatencyController lc(core::PruneSettings::uniform(1, 0.1f, 0.f), cfg);

  LatencyController::CostModel model;
  model.ops.push_back({4.0, 1.0, -1, false});
  model.ops.push_back({16.0, 1.0, 0, false});
  lc.set_cost_model(std::move(model));
  ASSERT_TRUE(lc.has_cost_model());
  EXPECT_NEAR(lc.predict_ms(0.f), 4.0 + 16.0 * 0.9, 1e-6);

  auto plant = [&] {
    float drop = 0.1f + lc.offset();
    if (drop > 0.9f) drop = 0.9f;
    return 4.0 + 16.0 * (1.0 - drop);
  };
  // First window: model inversion jumps straight to the solving offset.
  lc.record_batch(plant(), kKeep, 1);
  lc.record_batch(plant(), kKeep, 1);
  EXPECT_NEAR(lc.offset(), 0.525f, 0.01f);
  // Second window sits on the budget: the controller holds still.
  const float settled = lc.offset();
  lc.record_batch(plant(), kKeep, 1);
  lc.record_batch(plant(), kKeep, 1);
  EXPECT_FLOAT_EQ(lc.offset(), settled);
  EXPECT_NEAR(lc.p95_ms(), cfg.target_p95_ms, 0.2);
}

TEST(LatencyController, CostModelScalesWithMaskGroupFraction) {
  // Mask-grouped execution: a masked op's predicted cost scales with
  // distinct-mask count x compacted size. The same op observed collapsing
  // a batch into a quarter of the masks predicts 4x cheaper, and the keep
  // ratio still multiplies on top.
  LatencyController::Config cfg;
  cfg.target_p95_ms = 10.0;
  LatencyController lc(core::PruneSettings::uniform(1, 0.f, 0.f), cfg);
  LatencyController::CostModel model;
  model.ops.push_back({8.0, 1.0, -1, false});
  model.ops.push_back({16.0, 0.25, 0, false});
  lc.set_cost_model(std::move(model));
  EXPECT_NEAR(lc.predict_ms(0.f), 8.0 + 16.0 * 0.25, 1e-6);
  EXPECT_NEAR(lc.predict_ms(0.5f), 8.0 + 16.0 * 0.5 * 0.25, 1e-6);
}

TEST(LatencyController, CostModelUnreachableBudgetSaturates) {
  LatencyController::Config cfg;
  cfg.target_p95_ms = 1.0;  // below the 4 ms fixed floor
  cfg.window = 1;
  LatencyController lc(core::PruneSettings::uniform(1, 0.f, 0.f), cfg);
  LatencyController::CostModel model;
  model.ops.push_back({4.0, 1.0, -1, false});
  model.ops.push_back({16.0, 1.0, 0, true});
  lc.set_cost_model(std::move(model));
  lc.record_batch(20.0, kKeep, 1);
  EXPECT_FLOAT_EQ(lc.offset(), cfg.max_offset);
}

TEST(LatencyController, HoldsStillInsideTheBand) {
  LatencyController::Config cfg;
  cfg.target_p95_ms = 10.0;
  cfg.low_watermark = 0.8;
  cfg.window = 2;
  LatencyController lc(core::PruneSettings::uniform(2, 0.2f, 0.f), cfg);
  for (int i = 0; i < 20; ++i) {
    lc.record_batch(9.0, kKeep, 1);  // inside [8, 10]: no adjustment
  }
  EXPECT_FLOAT_EQ(lc.offset(), 0.f);
}

TEST(LatencyController, ShedFreezesTighteningAndRecoveryGlides) {
  // Anti-windup: while admission control sheds, realized p95 reflects a
  // saturated queue, not a slow model — the integrator must not wind up.
  LatencyController::Config cfg;
  cfg.target_p95_ms = 10.0;
  cfg.low_watermark = 0.8;
  cfg.window = 1;
  cfg.step = 0.2f;
  cfg.recovery_decay = 0.5;
  LatencyController lc(core::PruneSettings::uniform(2, 0.1f, 0.f), cfg);

  // 2x over budget for five windows, every window shedding: without the
  // anti-windup clamp the offset would ratchet up 0.2 per window.
  for (int i = 0; i < 5; ++i) {
    lc.note_shed();
    lc.record_batch(20.0, kKeep, 1);
    EXPECT_FLOAT_EQ(lc.offset(), 0.f);
  }
  EXPECT_TRUE(lc.shedding_active());

  // Attack over but still over budget: glide at recovery_decay * step
  // instead of jumping, and stay in recovery until p95 re-enters the band.
  lc.record_batch(20.0, kKeep, 1);
  EXPECT_NEAR(lc.offset(), 0.5f * 0.2f, 1e-6f);
  EXPECT_TRUE(lc.shedding_active());

  // Inside the band: recovery completes...
  lc.record_batch(9.0, kKeep, 1);
  EXPECT_FALSE(lc.shedding_active());
  const float settled = lc.offset();
  // ...and the next over-budget window takes a full-speed step again.
  lc.record_batch(20.0, kKeep, 1);
  EXPECT_NEAR(lc.offset(), settled + 0.2f, 1e-6f);
}

// --- InferenceServer --------------------------------------------------------

ServerConfig small_config(int max_batch, std::chrono::microseconds max_wait,
                          int workers = 1) {
  ServerConfig config;
  config.policy.max_batch = max_batch;
  config.policy.max_wait = max_wait;
  config.policy.num_workers = workers;
  config.queue_capacity = 32;
  return config;
}

InferenceServer::ReplicaFactory small_cnn_factory(uint64_t seed = 7) {
  return [seed](int) {
    Rng rng(seed);
    return models::make_model("small_cnn", 4, 1.0f, rng);
  };
}

TEST(InferenceServer, CoalescesConcurrentRequestsUnderMaxWait) {
  InferenceServer server(small_cnn_factory(),
                         small_config(4, 200ms));
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.submit(make_input(10 + i)));
  }
  // All three arrive well inside the 200ms hold window of the first batch.
  for (auto& f : futures) {
    ASSERT_TRUE(f.valid());
    EXPECT_EQ(f.get().batch_size, 3);
  }
  const ServerStats::Snapshot s = server.stats().snapshot();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.batch_size_histogram[2], 1u);
}

TEST(InferenceServer, DispatchesLoneRequestAfterMaxWait) {
  InferenceServer server(small_cnn_factory(),
                         small_config(8, 30ms));
  auto future = server.submit(make_input(42));
  ASSERT_TRUE(future.valid());
  const InferenceResult r = future.get();
  EXPECT_EQ(r.batch_size, 1);  // max-wait expired; dispatched under-full
  EXPECT_GE(r.queue_ms + r.batch_ms, 0.0);
}

TEST(InferenceServer, BatchedResultsMatchUnbatchedForward) {
  // Reference: the same architecture and weights, driven one sample at a
  // time without the serving stack.
  Rng ref_rng(7);
  auto reference = models::make_model("small_cnn", 4, 1.0f, ref_rng);
  reference->set_training(false);

  InferenceServer server(small_cnn_factory(/*seed=*/7),
                         small_config(4, 100ms));
  constexpr int kRequests = 6;
  std::vector<Tensor> inputs;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(make_input(100 + static_cast<uint64_t>(i)));
    futures.push_back(server.submit(inputs.back().clone()));
  }
  for (int i = 0; i < kRequests; ++i) {
    const InferenceResult r = futures[static_cast<size_t>(i)].get();
    // Reference forward of the same sample, batch dimension 1.
    std::vector<int> shape = {1};
    for (int d : inputs[static_cast<size_t>(i)].shape()) shape.push_back(d);
    Tensor single(shape);
    std::copy(inputs[static_cast<size_t>(i)].data(),
              inputs[static_cast<size_t>(i)].data() +
                  inputs[static_cast<size_t>(i)].size(),
              single.data());
    const Tensor expected = reference->forward(single);
    ASSERT_EQ(r.logits.size(), expected.size());
    for (int64_t k = 0; k < expected.size(); ++k) {
      EXPECT_NEAR(r.logits[k], expected[k], 1e-4f)
          << "request " << i << " logit " << k;
    }
  }
}

TEST(InferenceServer, PrunedBatchedResultsMatchUnbatchedPrunedForward) {
  Rng ref_rng(7);
  auto reference = models::make_model("small_cnn", 4, 1.0f, ref_rng);
  const core::PruneSettings settings =
      core::PruneSettings::uniform(reference->num_blocks(), 0.4f, 0.f);
  core::DynamicPruningEngine ref_engine(*reference, settings);
  reference->set_training(false);

  ServerConfig config = small_config(4, 100ms);
  config.prune = settings;
  InferenceServer server(small_cnn_factory(/*seed=*/7), config);

  constexpr int kRequests = 5;
  std::vector<Tensor> inputs;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(make_input(300 + static_cast<uint64_t>(i)));
    futures.push_back(server.submit(inputs.back().clone()));
  }
  for (int i = 0; i < kRequests; ++i) {
    const InferenceResult r = futures[static_cast<size_t>(i)].get();
    std::vector<int> shape = {1};
    for (int d : inputs[static_cast<size_t>(i)].shape()) shape.push_back(d);
    Tensor single(shape);
    std::copy(inputs[static_cast<size_t>(i)].data(),
              inputs[static_cast<size_t>(i)].data() +
                  inputs[static_cast<size_t>(i)].size(),
              single.data());
    const Tensor expected = reference->forward(single);
    for (int64_t k = 0; k < expected.size(); ++k) {
      EXPECT_NEAR(r.logits[k], expected[k], 1e-4f)
          << "request " << i << " logit " << k;
    }
  }
  ref_engine.remove();
}

TEST(InferenceServer, MismatchedShapesFailTheBatchNotTheServer) {
  InferenceServer server(small_cnn_factory(), small_config(4, 500ms));
  // Both land in one batch (500ms hold); stacking rejects the mix, the
  // batch's promises carry the exception, and the worker keeps serving.
  auto f1 = server.submit(make_input(1, 8));
  auto f2 = server.submit(make_input(2, 10));
  EXPECT_THROW(f1.get(), Error);
  EXPECT_THROW(f2.get(), Error);
  auto f3 = server.submit(make_input(3, 8));
  ASSERT_TRUE(f3.valid());
  EXPECT_EQ(f3.get().batch_size, 1);  // server survived the bad batch
}

TEST(InferenceServer, ConcurrentShutdownIsSafe) {
  InferenceServer server(small_cnn_factory(), small_config(2, 5ms));
  server.submit(make_input(4)).get();
  std::thread a([&] { server.shutdown(); });
  std::thread b([&] { server.shutdown(); });
  a.join();
  b.join();
  EXPECT_FALSE(server.submit(make_input(5)).valid());
}

TEST(InferenceServer, ShutdownRejectsNewWorkAndIsIdempotent) {
  InferenceServer server(small_cnn_factory(), small_config(2, 5ms));
  auto before = server.submit(make_input(1));
  ASSERT_TRUE(before.valid());
  before.get();
  server.shutdown();
  server.shutdown();  // idempotent
  EXPECT_FALSE(server.submit(make_input(2)).valid());
  EXPECT_FALSE(server.try_submit(make_input(3)).valid());
}

TEST(InferenceServer, DeadlineMissesAreFlaggedAndCounted) {
  InferenceServer server(small_cnn_factory(), small_config(2, 5ms));
  // A deadline in the past is guaranteed missed but still answered.
  auto f = server.submit(make_input(9), Clock::now() - 1ms);
  const InferenceResult r = f.get();
  EXPECT_TRUE(r.deadline_missed);
  EXPECT_EQ(server.stats().snapshot().deadline_misses, 1u);
}

TEST(InferenceServer, ExpiredAtDequeueAnsweredUnexecuted) {
  InferenceServer server(small_cnn_factory(), small_config(2, 5ms));
  // Dead on arrival: the worker answers it at dequeue without running it.
  auto f = server.submit(make_input(9), Clock::now() - 1ms);
  const InferenceResult r = f.get();
  EXPECT_TRUE(r.deadline_missed);
  EXPECT_TRUE(r.expired_unexecuted);
  EXPECT_EQ(r.predicted, -1);
  EXPECT_EQ(r.batch_size, 0);
  const ServerStats::Snapshot s = server.stats().snapshot();
  EXPECT_EQ(s.expired_unexecuted, 1u);
  EXPECT_EQ(s.deadline_misses, 1u);  // expired is a subset of missed
}

TEST(InferenceServer, ComputeCapClampsMasksAndCountsCappedRequests) {
  Rng probe_rng(7);
  const int blocks =
      models::make_model("small_cnn", 4, 1.0f, probe_rng)->num_blocks();
  ServerConfig config = small_config(4, 50ms);
  config.prune = core::PruneSettings::uniform(blocks, 0.3f, 0.f);
  // Keep 0.7 per masked conv exceeds the 0.4 ceiling, so every masked
  // request's masks clamp; capped requests still execute and answer.
  config.compute_cap = 0.4;
  InferenceServer server(small_cnn_factory(), config);
  for (int i = 0; i < 6; ++i) {
    const InferenceResult r = server.submit(make_input(70 + i)).get();
    EXPECT_GE(r.predicted, 0);
  }
  EXPECT_GT(server.stats().snapshot().capped_requests, 0u);
}

TEST(InferenceServer, AdmissionControlRequiresLatencyController) {
  // Admission prices requests with the controller's cost model; enabling
  // it without a latency budget is a configuration error.
  ServerConfig config = small_config(2, 5ms);
  config.admission.enabled = true;
  EXPECT_THROW(InferenceServer(small_cnn_factory(), config), Error);
}

TEST(InferenceServer, LatencyControllerRequiresPruneSettings) {
  ServerConfig config = small_config(2, 5ms);
  config.latency = LatencyController::Config{};
  EXPECT_THROW(InferenceServer(small_cnn_factory(), config), Error);
}

TEST(InferenceServer, ControllerDecisionsReachTheReplicas) {
  ServerConfig config = small_config(2, 1ms);
  Rng probe_rng(7);
  const int blocks =
      models::make_model("small_cnn", 4, 1.0f, probe_rng)->num_blocks();
  config.prune = core::PruneSettings::uniform(blocks, 0.1f, 0.f);
  LatencyController::Config lc;
  lc.target_p95_ms = 1e-6;  // unreachably tight: every window tightens
  lc.window = 1;
  lc.step = 0.2f;
  config.latency = lc;
  InferenceServer server(small_cnn_factory(), config);

  for (int i = 0; i < 12; ++i) server.submit(make_input(50 + i)).get();
  ASSERT_NE(server.controller(), nullptr);
  EXPECT_GT(server.controller()->offset(), 0.2f);
  EXPECT_GT(server.controller()->p95_ms(), 0.0);
  // The posted ratios took effect: keep stats show harder pruning than the
  // 0.1-drop base settings alone would produce.
  const auto keep = server.controller()->keep_summary();
  EXPECT_LT(keep.mean_channel_keep, 0.9);
}

}  // namespace
}  // namespace antidote::serving
