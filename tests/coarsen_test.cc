// Similar-mask union coarsening, from the bitset primitives up through the
// executor, under a forced 4-thread pool:
//   - packed kept-set bitsets round-trip (keep-all canonicalization, the
//     symdiff fast-reject) and mask_equal's kept-count fast-reject;
//   - union-SUPERSET execution is bitwise: running a group kernel with a
//     superset mask whose extra channels/positions are zero in the input
//     matches the exact mask bit for bit, f32 and int8 (exact integer
//     accumulation + the u8-bias correction cancel the zero-point rows);
//   - coarsen_plan merge-policy monotonicity: identical groups always
//     merge at any mac_bias, disjoint (or filter-mismatched) groups never
//     merge at any bias — structural eligibility, not a cost outcome;
//   - end to end, a batch of near-identical hand-built masks merges below
//     the exact-identity bucket count, stays bitwise identical to the
//     per-sample module walk, and performs zero arena growths from the
//     first reserved pass (f32 and int8);
//   - WeightPanelCache keys on the (union) kept sets, so a repeated union
//     mask hits after its first pack.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "base/rng.h"
#include "core/mask.h"
#include "models/factory.h"
#include "nn/conv_kernels.h"
#include "nn/execution_context.h"
#include "plan/plan.h"
#include "tensor/workspace.h"

namespace antidote {
namespace {

// Must run before any antidote code touches the pool (see
// parallel_groups_test.cc). 4 compute threads = caller + 3 workers.
const bool kForcedThreads = [] {
  ::setenv("ANTIDOTE_THREADS", "4", /*overwrite=*/1);
  return true;
}();

// --- bitset primitives ----------------------------------------------------

TEST(CoarsenBits, PackRoundTripsAndCanonicalizesKeepAll) {
  const int n = 70;  // straddles a word boundary
  const int words = core::mask_bits_words(n);
  ASSERT_EQ(words, 2);
  std::vector<uint64_t> bits(static_cast<size_t>(words));

  const std::vector<int> kept = {0, 1, 33, 63, 64, 69};
  core::pack_kept_bits(kept, n, bits.data());
  EXPECT_EQ(core::popcount_words(bits.data(), words),
            static_cast<int>(kept.size()));
  std::vector<int> back;
  core::bits_to_kept(bits.data(), n, back);
  EXPECT_EQ(back, kept);

  // Empty kept = keep all: packs as all n bits, unpacks back to EMPTY.
  core::pack_kept_bits({}, n, bits.data());
  EXPECT_EQ(core::popcount_words(bits.data(), words), n);
  core::bits_to_kept(bits.data(), n, back);
  EXPECT_TRUE(back.empty());
}

TEST(CoarsenBits, SymdiffIntersectUnion) {
  const int n = 64, words = 1;
  uint64_t a, b;
  core::pack_kept_bits(std::vector<int>{0, 1, 2, 3}, n, &a);
  core::pack_kept_bits(std::vector<int>{2, 3, 4, 5}, n, &b);
  EXPECT_EQ(core::mask_symdiff_bits(&a, 4, &b, 4, words, n + 1), 4);
  EXPECT_EQ(core::mask_intersect_bits(&a, &b, words), 2);
  EXPECT_FALSE(core::bits_equal(&a, &b, words));

  // Fast-reject: a count gap >= limit skips the walk and returns limit.
  uint64_t big;
  core::pack_kept_bits({}, n, &big);  // 64 kept
  EXPECT_EQ(core::mask_symdiff_bits(&a, 4, &big, 64, words, 8), 8);

  core::union_bits_inplace(&a, &b, words);
  EXPECT_EQ(core::popcount_words(&a, words), 6);
  std::vector<int> back;
  core::bits_to_kept(&a, n, back);
  EXPECT_EQ(back, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(CoarsenBits, MaskEqualKeptCountFastReject) {
  nn::ConvRuntimeMask a, b;
  a.channels = {0, 1, 2};
  b.channels = {0, 1, 2};
  EXPECT_TRUE(core::mask_equal(a, b));
  b.channels = {0, 1, 2, 3};  // size mismatch rejects before any walk
  EXPECT_FALSE(core::mask_equal(a, b));
  b.channels = {0, 1, 3};
  EXPECT_FALSE(core::mask_equal(a, b));
  b.channels = {0, 1, 2};
  b.out_channels = {4};
  EXPECT_FALSE(core::mask_equal(a, b));
}

// --- merge-policy monotonicity (coarsen_plan seam) ------------------------

struct PlanInputs {
  std::vector<plan::CoarsenGroup> groups;
  std::vector<uint64_t> bits;  // ngroups x ch_words, clobbered per run
  std::vector<int> cluster;
  std::vector<int> iscratch;
};

PlanInputs make_inputs(const std::vector<std::vector<int>>& kept_ch,
                       const std::vector<int>* out_channels, int domain) {
  PlanInputs in;
  const int words = core::mask_bits_words(domain);
  const int g = static_cast<int>(kept_ch.size());
  in.bits.resize(static_cast<size_t>(g) * words);
  for (int i = 0; i < g; ++i) {
    core::pack_kept_bits(kept_ch[static_cast<size_t>(i)], domain,
                         in.bits.data() + static_cast<size_t>(i) * words);
    plan::CoarsenGroup cg;
    cg.size = 1;
    cg.kept_ch = static_cast<int>(kept_ch[static_cast<size_t>(i)].size());
    cg.kept_pos = 100;  // no spatial domain: full output positions
    cg.kept_out = 16;
    cg.out_channels = out_channels;
    in.groups.push_back(cg);
  }
  in.cluster.assign(static_cast<size_t>(g), -1);
  in.iscratch.assign(static_cast<size_t>(plan::coarsen_iscratch_ints(g)), 0);
  return in;
}

TEST(CoarsenPlan, IdenticalGroupsAlwaysMergeAtAnyBias) {
  const std::vector<int> oc;  // keep-all filters, shared by every group
  std::vector<int> kept_mut(32);
  std::iota(kept_mut.begin(), kept_mut.end(), 0);
  plan::CoarsenCost cost;
  cost.kk = 9.0;
  cost.pack_macs_per_elem = 1.0;
  cost.overhead_macs = 20000.0;
  cost.threads = 4;
  for (const double bias : {0.25, 1.0, 4.0}) {
    PlanInputs in = make_inputs({kept_mut, kept_mut, kept_mut, kept_mut},
                                &oc, 64);
    const plan::CoarsenDecision dec = plan::coarsen_plan(
        in.groups.data(), 4, /*ch_words=*/1, /*pos_words=*/0, cost, bias,
        in.bits.data(), in.cluster.data(), in.iscratch.data());
    EXPECT_EQ(dec.clusters, 1) << "bias " << bias;
    EXPECT_EQ(dec.extra_macs, 0) << "bias " << bias;
    // With workers saturated (one group per lane) an identical merge is
    // an exact critical-path tie; ties break toward fewer groups because
    // they delete whole pack+dispatch terms of total work.
    EXPECT_LE(dec.predicted_after, dec.predicted_before) << "bias " << bias;
    for (const int c : in.cluster) EXPECT_EQ(c, 0);
  }
}

TEST(CoarsenPlan, DisjointGroupsNeverMergeAtAnyBias) {
  const std::vector<int> oc;
  std::vector<std::vector<int>> kept_ch(4);
  for (int i = 0; i < 4; ++i) {
    for (int c = 16 * i; c < 16 * (i + 1); ++c) {
      kept_ch[static_cast<size_t>(i)].push_back(c);
    }
  }
  plan::CoarsenCost cost;
  cost.kk = 9.0;
  cost.pack_macs_per_elem = 1.0;
  cost.overhead_macs = 20000.0;
  cost.threads = 4;
  for (const double bias : {plan::kMinCoarsenMacBias, 1.0,
                            plan::kMaxCoarsenMacBias}) {
    PlanInputs in = make_inputs(kept_ch, &oc, 64);
    const plan::CoarsenDecision dec = plan::coarsen_plan(
        in.groups.data(), 4, 1, 0, cost, bias, in.bits.data(),
        in.cluster.data(), in.iscratch.data());
    EXPECT_EQ(dec.clusters, 4) << "bias " << bias;
    EXPECT_EQ(dec.extra_macs, 0) << "bias " << bias;
    EXPECT_EQ(dec.predicted_after, dec.predicted_before) << "bias " << bias;
    for (int i = 0; i < 4; ++i) EXPECT_EQ(in.cluster[i], i);
  }
}

TEST(CoarsenPlan, UnequalKeptFiltersNeverMerge) {
  // Identical channel bits, but different kept OUT-FILTER sets: a filter
  // union would write real (nonzero-weight) rows the other sample's walk
  // leaves zero, so eligibility requires exact filter equality.
  const std::vector<int> oc_a = {0, 1, 2, 3};
  const std::vector<int> oc_b = {0, 1, 2, 4};
  std::vector<int> kept(32);
  std::iota(kept.begin(), kept.end(), 0);
  PlanInputs in = make_inputs({kept, kept}, nullptr, 64);
  in.groups[0].out_channels = &oc_a;
  in.groups[1].out_channels = &oc_b;
  in.groups[0].kept_out = in.groups[1].kept_out = 4;
  plan::CoarsenCost cost;
  cost.kk = 9.0;
  cost.pack_macs_per_elem = 1.0;
  cost.overhead_macs = 20000.0;
  cost.threads = 4;
  const plan::CoarsenDecision dec = plan::coarsen_plan(
      in.groups.data(), 2, 1, 0, cost, plan::kMinCoarsenMacBias,
      in.bits.data(), in.cluster.data(), in.iscratch.data());
  EXPECT_EQ(dec.clusters, 2);
}

TEST(CoarsenPlan, MixedPositionKindsNeverMerge) {
  // Identical channels, but one group keeps a PROPER position subset
  // (shift-GEMM path) and the other keeps all positions (im2col channel
  // path): a merged group can only execute one path, so the kinds must
  // match for eligibility.
  const std::vector<int> oc;
  const int ch_domain = 64, pos_domain = 64;
  std::vector<int> kept_ch(32), part_pos(32);
  std::iota(kept_ch.begin(), kept_ch.end(), 0);
  std::iota(part_pos.begin(), part_pos.end(), 0);
  std::vector<uint64_t> bits(4);  // 2 groups x (1 ch word + 1 pos word)
  core::pack_kept_bits(kept_ch, ch_domain, &bits[0]);
  core::pack_kept_bits(part_pos, pos_domain, &bits[1]);
  core::pack_kept_bits(kept_ch, ch_domain, &bits[2]);
  core::pack_kept_bits({}, pos_domain, &bits[3]);  // keep-all
  plan::CoarsenGroup g[2];
  for (plan::CoarsenGroup& cg : g) {
    cg.size = 1;
    cg.kept_ch = 32;
    cg.kept_out = 16;
    cg.out_channels = &oc;
  }
  g[0].kept_pos = 32;
  g[0].pos_partial = true;
  g[1].kept_pos = pos_domain;
  g[1].pos_partial = false;
  plan::CoarsenCost cost;
  cost.kk = 9.0;
  cost.pack_macs_per_elem = 1.0;
  cost.overhead_macs = 20000.0;
  cost.threads = 4;
  std::vector<int> cluster(2), iscratch(plan::coarsen_iscratch_ints(2));
  const plan::CoarsenDecision dec = plan::coarsen_plan(
      g, 2, /*ch_words=*/1, /*pos_words=*/1, cost,
      plan::kMinCoarsenMacBias, bits.data(), cluster.data(),
      iscratch.data());
  EXPECT_EQ(dec.clusters, 2);
}

// --- union-superset kernel parity -----------------------------------------

struct KernelRig {
  ConvGeom g{8, 8, 8, 3, 3, 1, 1};
  static constexpr int kOutC = 6;
  static constexpr int kN = 3;  // group members
  std::vector<float> w, bias, x;
  std::vector<int> iota;
  std::vector<int> samples{0, 1, 2};
  Workspace ws;

  KernelRig() {
    Rng rng(77);
    w.resize(static_cast<size_t>(kOutC) * g.patch_rows());
    for (float& v : w) v = static_cast<float>(rng.normal());
    bias.resize(kOutC);
    for (float& v : bias) v = static_cast<float>(rng.normal());
    x.resize(static_cast<size_t>(kN) * g.in_c * g.in_h * g.in_w);
    for (float& v : x) v = static_cast<float>(rng.normal());
    iota.resize(512);
    std::iota(iota.begin(), iota.end(), 0);
  }

  int64_t in_floats() const {
    return static_cast<int64_t>(g.in_c) * g.in_h * g.in_w;
  }
  int64_t out_floats() const { return kOutC * g.out_positions(); }
  nn::ConvIdentityIndices ids() const {
    return {iota.data(), iota.data(), iota.data()};
  }
  void zero_channel(int c) {
    const int64_t plane = static_cast<int64_t>(g.in_h) * g.in_w;
    for (int s = 0; s < kN; ++s) {
      std::memset(x.data() + s * in_floats() + c * plane, 0,
                  static_cast<size_t>(plane) * sizeof(float));
    }
  }
  void zero_position(int p) {
    const int64_t plane = static_cast<int64_t>(g.in_h) * g.in_w;
    for (int s = 0; s < kN; ++s) {
      for (int c = 0; c < g.in_c; ++c) {
        x[static_cast<size_t>(s * in_floats() + c * plane + p)] = 0.f;
      }
    }
  }

  std::vector<float> run_f32(const nn::ConvRuntimeMask& m) {
    std::vector<float> y(static_cast<size_t>(kN) * out_floats(), 0.f);
    nn::conv_group_masked(x.data(), in_floats(), g, w.data(), kOutC,
                          bias.data(), m, samples, ids(), /*cache=*/nullptr,
                          y.data(), out_floats(), ws);
    return y;
  }
  std::vector<float> run_i8(const nn::Int8ConvWeights& qw,
                            const nn::ConvRuntimeMask& m) {
    std::vector<float> y(static_cast<size_t>(kN) * out_floats(), 0.f);
    nn::conv_group_masked_i8(x.data(), in_floats(), g, qw, kOutC,
                             bias.data(), m, samples, ids(),
                             /*cache=*/nullptr, y.data(), out_floats(), ws);
    return y;
  }
};

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(CoarsenKernel, ChannelUnionSupersetBitwiseF32) {
  KernelRig rig;
  rig.zero_channel(6);
  rig.zero_channel(7);
  // Ragged kept sizes on both sides of the union, plus a kept-filter mask
  // (identical in both runs — filter sets must match for eligibility).
  nn::ConvRuntimeMask exact, sup;
  exact.channels = {0, 2, 4, 5};
  exact.out_channels = {0, 1, 3, 5};
  sup.channels = {0, 2, 4, 5, 6, 7};  // extras are zero input planes
  sup.out_channels = exact.out_channels;
  EXPECT_TRUE(bitwise_equal(rig.run_f32(exact), rig.run_f32(sup)));
}

TEST(CoarsenKernel, PositionUnionSupersetBitwiseF32) {
  KernelRig rig;
  std::vector<int> dropped;
  for (int p = 20; p < 30; ++p) {
    rig.zero_position(p);
    dropped.push_back(p);
  }
  nn::ConvRuntimeMask exact, sup;
  const int domain = rig.g.in_h * rig.g.in_w;
  for (int p = 0; p < domain; ++p) {
    if (p < 20 || p >= 30) exact.positions.push_back(p);
    // A saturated union of proper subsets stays an EXPLICIT full index
    // set (what the executor materializes), keeping the group on the
    // members' shift-GEMM path — the extra zero-input columns contribute
    // exact zeros to accumulators that can never be -0.
    sup.positions.push_back(p);
  }
  EXPECT_TRUE(bitwise_equal(rig.run_f32(exact), rig.run_f32(sup)));
}

TEST(CoarsenKernel, ChannelUnionSupersetBitwiseInt8) {
  KernelRig rig;
  rig.zero_channel(6);
  // Zero activations quantize to the zero-point exactly; the extra
  // channel's zp * weight rows cancel against the panel wsum correction
  // in exact int32 arithmetic, so the superset is bitwise even in int8.
  nn::Int8ConvWeights qw;
  nn::quantize_conv_weights(rig.w.data(), KernelRig::kOutC, rig.g.in_c,
                            rig.g.k_h * rig.g.k_w, qw);
  nn::ConvRuntimeMask exact, sup;
  exact.channels = {0, 1, 3, 4, 5};
  sup.channels = {0, 1, 3, 4, 5, 6};
  EXPECT_TRUE(bitwise_equal(rig.run_i8(qw, exact), rig.run_i8(qw, sup)));
}

// --- WeightPanelCache union-mask keying -----------------------------------

TEST(CoarsenCache, UnionMaskKeysHitAfterFirstPack) {
  const int out_c = 4, in_c = 6, kk = 9;
  Rng rng(11);
  std::vector<float> w(static_cast<size_t>(out_c) * in_c * kk);
  for (float& v : w) v = static_cast<float>(rng.normal());
  std::vector<int> oc(out_c);
  std::iota(oc.begin(), oc.end(), 0);
  const std::vector<int> exact = {0, 1, 2};
  const std::vector<int> uni = {0, 1, 2, 4};  // the union superset key

  nn::WeightPanelCache cache;
  cache.prepare(out_c, in_c, kk);
  (void)nn::pack_weight_panel(w.data(), in_c, kk, exact, oc,
                              /*spatial_layout=*/false, cache);
  EXPECT_EQ(cache.misses.get(), 1);
  const float* u1 = nn::pack_weight_panel(w.data(), in_c, kk, uni, oc,
                                          false, cache);
  EXPECT_EQ(cache.misses.get(), 2);
  // Same union kept set again: a hit on its own way, not a repack — and
  // the exact set's panel is still resident (distinct keys, distinct ways).
  const float* u2 = nn::pack_weight_panel(w.data(), in_c, kk, uni, oc,
                                          false, cache);
  EXPECT_EQ(cache.hits.get(), 1);
  EXPECT_EQ(u1, u2);
  (void)nn::pack_weight_panel(w.data(), in_c, kk, exact, oc, false, cache);
  EXPECT_EQ(cache.hits.get(), 2);
  // The union panel's contents match an uncached pack of the same sets.
  std::vector<float> ref(uni.size() * static_cast<size_t>(out_c) * kk);
  nn::pack_weight_panel_into(w.data(), in_c, kk, uni, oc, false, ref.data());
  EXPECT_EQ(std::memcmp(u2, ref.data(), ref.size() * sizeof(float)), 0);
}

// --- end to end through the plan executor ---------------------------------

// Hand-built near-identical masks on the first conv (whose input is the
// network input, so the test can zero exactly the entries the masks drop —
// the gate invariant union safety relies on). Sample i drops input channel
// i % 3 and a private 32-column spatial block, so all 8 masks are
// pairwise distinct (8 exact-identity buckets) but heavily overlapping.
struct E2ERig {
  static constexpr int kBatch = 8;
  std::unique_ptr<models::ConvNet> net;
  nn::Conv2d* conv0 = nullptr;
  Tensor x;
  std::vector<nn::ConvRuntimeMask> masks;

  E2ERig() {
    EXPECT_TRUE(kForcedThreads);
    Rng rng(29);
    net = models::make_model("small_cnn", 10, 1.0f, rng);
    net->set_training(false);
    Rng data_rng(41);
    x = Tensor::randn({kBatch, 3, 16, 16}, data_rng);
    masks.resize(kBatch);
    const int64_t plane = 16 * 16;
    for (int i = 0; i < kBatch; ++i) {
      nn::ConvRuntimeMask& m = masks[static_cast<size_t>(i)];
      const int drop_ch = i % 3;
      for (int c = 0; c < 3; ++c) {
        if (c != drop_ch) m.channels.push_back(c);
      }
      const int p0 = 32 * i, p1 = p0 + 32;
      for (int p = 0; p < plane; ++p) {
        if (p < p0 || p >= p1) m.positions.push_back(p);
      }
      // Zero what the mask drops, exactly like the hard top-k gates do
      // upstream, so union extras contribute exact zeros.
      float* xb = x.data() + i * 3 * plane;
      std::memset(xb + drop_ch * plane, 0,
                  static_cast<size_t>(plane) * sizeof(float));
      for (int c = 0; c < 3; ++c) {
        for (int p = p0; p < p1; ++p) xb[c * plane + p] = 0.f;
      }
    }
  }

  // The first conv step of the compiled plan (the op the masks target).
  void bind_conv(plan::InferencePlan& plan) {
    for (const plan::PlanOp& op : plan.ops()) {
      if (op.kind == plan::OpKind::kConv) {
        conv0 = op.conv;
        break;
      }
    }
    ASSERT_NE(conv0, nullptr);
  }
};

TEST(CoarsenE2E, MergedScheduleBitwiseEqualsModuleWalkZeroGrowthF32) {
  E2ERig rig;
  rig.net->set_coarsen_policy(
      {plan::CoarsenMode::kAuto, plan::kMinCoarsenMacBias});
  plan::InferencePlan& plan = rig.net->inference_plan(3, 16, 16);
  rig.bind_conv(plan);

  // Per-sample module walk with the same masks: the bitwise reference.
  rig.conv0->set_runtime_masks(rig.masks);
  const Tensor plain = rig.net->forward(rig.x);

  nn::ExecutionContext ctx;
  plan.reserve(ctx.workspace(), E2ERig::kBatch);
  const int64_t grows = ctx.workspace().grow_count();
  for (int pass = 0; pass < 3; ++pass) {
    rig.conv0->set_runtime_masks(rig.masks);
    ctx.begin_pass();
    Tensor staged = ctx.alloc(rig.x.shape());
    std::memcpy(staged.data(), rig.x.data(),
                static_cast<size_t>(rig.x.size()) * sizeof(float));
    const Tensor fused = rig.net->forward(staged, ctx);
    ASSERT_TRUE(plain.same_shape(fused));
    EXPECT_EQ(std::memcmp(plain.data(), fused.data(),
                          static_cast<size_t>(plain.size()) * sizeof(float)),
              0)
        << "pass " << pass;
    EXPECT_EQ(ctx.workspace().grow_count(), grows) << "pass " << pass;
  }
  // All 8 masks are distinct, so exact-identity bucketing sees 8 groups;
  // at the floor MAC bias the latency model must find merges among these
  // near-identical kept sets (the merged schedule halves the ceil(G/W)
  // dispatch rounds for a handful of union MACs).
  EXPECT_EQ(plan.last_mask_groups_raw(), E2ERig::kBatch);
  EXPECT_LT(plan.last_mask_groups(), plan.last_mask_groups_raw());
  EXPECT_GT(plan.last_coarsen_extra_macs(), 0);
  EXPECT_GT(plan.last_coarsen_extra_mac_frac(), 0.0);
  EXPECT_LT(plan.last_coarsen_extra_mac_frac(), 0.5);
}

TEST(CoarsenE2E, CoarsenOffExecutesExactIdentityButStaysBitwise) {
  E2ERig rig;
  rig.net->set_coarsen_policy({plan::CoarsenMode::kOff, 1.0});
  plan::InferencePlan& plan = rig.net->inference_plan(3, 16, 16);
  rig.bind_conv(plan);
  rig.conv0->set_runtime_masks(rig.masks);
  const Tensor plain = rig.net->forward(rig.x);

  nn::ExecutionContext ctx;
  plan.reserve(ctx.workspace(), E2ERig::kBatch);
  rig.conv0->set_runtime_masks(rig.masks);
  ctx.begin_pass();
  Tensor staged = ctx.alloc(rig.x.shape());
  std::memcpy(staged.data(), rig.x.data(),
              static_cast<size_t>(rig.x.size()) * sizeof(float));
  const Tensor fused = rig.net->forward(staged, ctx);
  EXPECT_EQ(std::memcmp(plain.data(), fused.data(),
                        static_cast<size_t>(plain.size()) * sizeof(float)),
            0);
  EXPECT_EQ(plan.last_mask_groups(), E2ERig::kBatch);
  EXPECT_EQ(plan.last_mask_groups_raw(), E2ERig::kBatch);
  EXPECT_EQ(plan.last_coarsen_extra_macs(), 0);
}

TEST(CoarsenE2E, Int8CoarsenedPassZeroGrowthWithinAccuracyBudget) {
  E2ERig rig;
  // f32 per-sample module walk reference (int8 is tolerance-compared, not
  // bitwise: group membership feeds the dynamic activation scale).
  rig.net->set_coarsen_policy(
      {plan::CoarsenMode::kAuto, plan::kMinCoarsenMacBias});
  plan::InferencePlan& plan = rig.net->inference_plan(3, 16, 16);
  rig.bind_conv(plan);
  rig.conv0->set_runtime_masks(rig.masks);
  const Tensor plain = rig.net->forward(rig.x);

  rig.net->set_numeric_regime(plan::NumericRegime::kInt8);
  nn::ExecutionContext ctx;
  plan.reserve(ctx.workspace(), E2ERig::kBatch);
  const int64_t grows = ctx.workspace().grow_count();
  Tensor last;
  for (int pass = 0; pass < 2; ++pass) {
    rig.conv0->set_runtime_masks(rig.masks);
    ctx.begin_pass();
    Tensor staged = ctx.alloc(rig.x.shape());
    std::memcpy(staged.data(), rig.x.data(),
                static_cast<size_t>(rig.x.size()) * sizeof(float));
    last = rig.net->forward(staged, ctx).clone();
    EXPECT_EQ(ctx.workspace().grow_count(), grows) << "pass " << pass;
  }
  EXPECT_EQ(plan.last_mask_groups_raw(), E2ERig::kBatch);
  EXPECT_LE(plan.last_mask_groups(), plan.last_mask_groups_raw());
  // Same relative accuracy budget as the int8 plan tests / micro_e2e gate.
  ASSERT_TRUE(plain.same_shape(last));
  double max_diff = 0.0, max_ref = 0.0;
  for (int64_t i = 0; i < plain.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(double(plain[i]) - last[i]));
    max_ref = std::max(max_ref, std::abs(double(plain[i])));
  }
  EXPECT_GT(max_ref, 0.0);
  EXPECT_LE(max_diff / max_ref, 0.05);
}

}  // namespace
}  // namespace antidote
