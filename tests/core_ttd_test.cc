// Trainer and TTD (training with targeted dropout + ratio ascent).
#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.h"
#include "core/evaluate.h"
#include "core/trainer.h"
#include "core/ttd.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "models/small_cnn.h"
#include "nn/init.h"

namespace antidote::core {
namespace {

data::DatasetPair tiny_data(int train = 64, int test = 32) {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.height = spec.width = 12;
  spec.train_size = train;
  spec.test_size = test;
  spec.noise_std = 0.15f;
  return data::make_synthetic_pair(spec);
}

std::unique_ptr<models::SmallCnn> make_net() {
  models::SmallCnnConfig cfg;
  cfg.num_classes = 4;
  cfg.widths = {8, 16};
  auto net = std::make_unique<models::SmallCnn>(cfg);
  Rng rng(21);
  nn::init_module(*net, rng);
  return net;
}

TrainConfig fast_train(int epochs) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 16;
  cfg.base_lr = 0.05;
  cfg.augment = false;  // keep the tiny problem easy
  return cfg;
}

TEST(Trainer, LossDecreasesOverEpochs) {
  auto net = make_net();
  const auto pair = tiny_data();
  Trainer trainer(*net, *pair.train, fast_train(6));
  const auto history = trainer.fit();
  ASSERT_EQ(history.size(), 6u);
  EXPECT_LT(history.back().loss, history.front().loss);
  EXPECT_GT(history.back().accuracy, history.front().accuracy);
}

TEST(Trainer, CosineLrDecreasesToFinal) {
  auto net = make_net();
  const auto pair = tiny_data(16, 8);
  TrainConfig cfg = fast_train(5);
  Trainer trainer(*net, *pair.train, cfg);
  const auto history = trainer.fit();
  EXPECT_NEAR(history.front().lr, cfg.base_lr, 1e-9);
  EXPECT_NEAR(history.back().lr, cfg.final_lr, 1e-9);
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_LE(history[i].lr, history[i - 1].lr);
  }
}

TEST(Trainer, PostStepHookRuns) {
  auto net = make_net();
  const auto pair = tiny_data(16, 8);
  TrainConfig cfg = fast_train(1);
  int calls = 0;
  cfg.post_step = [&calls] { ++calls; };
  Trainer trainer(*net, *pair.train, cfg);
  trainer.run_epoch();
  EXPECT_EQ(calls, 1);  // 16 samples / batch 16 = 1 step
}

TEST(Ttd, AscentLevelsReachTarget) {
  auto net = make_net();
  const auto pair = tiny_data(16, 8);
  TtdConfig cfg;
  cfg.target = PruneSettings::uniform(net->num_blocks(), 0.3f, 0.f);
  cfg.warmup_ratio = 0.1f;
  cfg.step = 0.1f;
  cfg.train = fast_train(1);
  TtdTrainer ttd(*net, *pair.train, cfg);
  const auto levels = ttd.ascent_levels();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_FLOAT_EQ(levels[0], 0.1f);
  EXPECT_FLOAT_EQ(levels[1], 0.2f);
  EXPECT_FLOAT_EQ(levels[2], 0.3f);
}

TEST(Ttd, WarmupAboveTargetStartsAtTarget) {
  auto net = make_net();
  const auto pair = tiny_data(16, 8);
  TtdConfig cfg;
  cfg.target = PruneSettings::uniform(net->num_blocks(), 0.05f, 0.f);
  cfg.warmup_ratio = 0.1f;
  cfg.train = fast_train(1);
  TtdTrainer ttd(*net, *pair.train, cfg);
  const auto levels = ttd.ascent_levels();
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_FLOAT_EQ(levels[0], 0.05f);
}

TEST(Ttd, PerBlockTargetsCapIndividually) {
  // Blocks with small targets stop ascending while larger targets
  // continue: target [0.2, 0.6], warmup 0.1, step 0.2 -> caps 0.1, 0.3,
  // 0.5, 0.6; block 0 is pinned at 0.2 from the second level on.
  auto net = make_net();
  const auto pair = tiny_data(16, 8);
  TtdConfig cfg;
  cfg.target = PruneSettings::uniform(net->num_blocks(), 0.f, 0.f);
  cfg.target.channel_drop = {0.2f, 0.6f};
  cfg.warmup_ratio = 0.1f;
  cfg.step = 0.2f;
  cfg.max_epochs_per_level = 1;
  cfg.final_epochs = 0;
  cfg.train = fast_train(1);
  TtdTrainer ttd(*net, *pair.train, cfg);
  const auto levels = ttd.ascent_levels();
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_FLOAT_EQ(levels[3], 0.6f);

  ttd.run();
  EXPECT_FLOAT_EQ(ttd.engine().gate(0)->config().channel_drop, 0.2f);
  EXPECT_FLOAT_EQ(ttd.engine().gate(1)->config().channel_drop, 0.6f);
}

TEST(Ttd, RunProgressesThroughLevelsAndConsolidates) {
  auto net = make_net();
  const auto pair = tiny_data();
  TtdConfig cfg;
  cfg.target = PruneSettings::uniform(net->num_blocks(), 0.25f, 0.f);
  cfg.warmup_ratio = 0.15f;
  cfg.step = 0.1f;
  cfg.min_epochs_per_level = 1;
  cfg.max_epochs_per_level = 1;
  cfg.final_epochs = 2;
  cfg.train = fast_train(1);

  TtdTrainer ttd(*net, *pair.train, cfg);
  const TtdResult result = ttd.run();
  // 2 ascent levels (0.15, 0.25) + final consolidation entry.
  ASSERT_EQ(result.levels.size(), 3u);
  EXPECT_EQ(result.levels.back().epochs.size(), 2u);
  EXPECT_EQ(result.total_epochs, 4);
  // Gates end at the target ratios.
  EXPECT_FLOAT_EQ(ttd.engine().gate(0)->config().channel_drop, 0.25f);
  EXPECT_GT(result.final_train_accuracy, 0.0);
}

TEST(Ttd, PlateauDetectionBoundsEpochs) {
  auto net = make_net();
  const auto pair = tiny_data(16, 8);
  TtdConfig cfg;
  cfg.target = PruneSettings::uniform(net->num_blocks(), 0.1f, 0.f);
  cfg.warmup_ratio = 0.1f;
  cfg.min_epochs_per_level = 1;
  cfg.max_epochs_per_level = 4;
  cfg.plateau_tol = 1.0;  // everything counts as a plateau -> stop at min+1
  cfg.final_epochs = 0;
  cfg.train = fast_train(1);
  TtdTrainer ttd(*net, *pair.train, cfg);
  const TtdResult result = ttd.run();
  ASSERT_EQ(result.levels.size(), 1u);
  EXPECT_LE(result.levels[0].epochs.size(), 2u);
}

TEST(Ttd, SpatialTargetsAscendToo) {
  // Ratio ascent caps channel AND spatial ratios together.
  auto net = make_net();
  const auto pair = tiny_data(16, 8);
  TtdConfig cfg;
  cfg.target = PruneSettings::uniform(net->num_blocks(), 0.2f, 0.5f);
  cfg.warmup_ratio = 0.25f;
  cfg.step = 0.25f;
  cfg.max_epochs_per_level = 1;
  cfg.final_epochs = 0;
  cfg.train = fast_train(1);
  TtdTrainer ttd(*net, *pair.train, cfg);
  const auto levels = ttd.ascent_levels();
  ASSERT_EQ(levels.size(), 2u);  // caps 0.25, 0.5 driven by the spatial max
  ttd.run();
  EXPECT_FLOAT_EQ(ttd.engine().gate(0)->config().channel_drop, 0.2f);
  EXPECT_FLOAT_EQ(ttd.engine().gate(0)->config().spatial_drop, 0.5f);
}

TEST(Evaluate, BatchLargerThanDatasetIsOneBatch) {
  auto net = make_net();
  const auto pair = tiny_data(8, 6);
  const EvalResult r = evaluate(*net, *pair.test, /*batch=*/64);
  EXPECT_EQ(r.samples, 6);
}

TEST(Ttd, TrainedModelKeepsAccuracyUnderItsPruning) {
  // The core promise: after TTD at ratio r, dynamic pruning at r keeps
  // accuracy close to the unpruned accuracy of the same model.
  auto net = make_net();
  const auto pair = tiny_data(96, 48);
  TtdConfig cfg;
  cfg.target = PruneSettings::uniform(net->num_blocks(), 0.4f, 0.f);
  cfg.warmup_ratio = 0.2f;
  cfg.step = 0.1f;
  cfg.max_epochs_per_level = 2;
  cfg.final_epochs = 3;
  cfg.train = fast_train(1);
  cfg.train.base_lr = 0.08;

  TtdTrainer ttd(*net, *pair.train, cfg);
  ttd.run();

  const EvalResult pruned = evaluate(*net, *pair.test, 16);
  ttd.engine().set_enabled(false);
  const EvalResult dense = evaluate(*net, *pair.test, 16);
  EXPECT_GT(pruned.accuracy, 0.5);  // far above 0.25 chance
  EXPECT_GT(pruned.accuracy, dense.accuracy - 0.15);
  EXPECT_LT(pruned.mean_macs_per_sample, dense.mean_macs_per_sample);
}

}  // namespace
}  // namespace antidote::core
