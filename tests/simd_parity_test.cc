// SIMD-vs-scalar parity: every vectorized hot-path primitive (fused
// epilogue, mask gather, group scatter, im2col lowering) must be BITWISE
// identical to its genuinely-scalar reference — across odd channel
// counts, ragged tails (length % lane width != 0) and every epilogue
// variant. This is the contract that keeps the plan executor's memcmp
// equivalence gates meaningful on SIMD builds: vectorization reorders no
// floating-point reductions and introduces no fused multiply-adds, so
// ANTIDOTE_SIMD=ON and =OFF builds agree bit for bit.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "base/rng.h"
#include "nn/conv_kernels.h"
#include "tensor/im2col.h"

namespace antidote {
namespace {

std::vector<float> random_vec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(SimdParity, LaneWidthMatchesBuild) {
  // 1 (scalar fallback), 4 (NEON) or 8 (AVX2); never anything else.
  const int lanes = nn::simd_lane_width();
  EXPECT_TRUE(lanes == 1 || lanes == 4 || lanes == 8) << lanes;
  EXPECT_NE(nn::simd_isa_name(), nullptr);
}

TEST(SimdParity, FusedEpilogueAllVariantsOddShapesAndTails) {
  Rng rng(41);
  // Odd channel counts and position counts straddling every lane-width
  // boundary (tails of 0..lanes-1 for both 4- and 8-lane backends).
  const int channels[] = {1, 3, 7, 17, 32};
  const int64_t positions[] = {1, 5, 8, 9, 13, 16, 31, 33, 100};
  for (const int out_c : channels) {
    const auto mean = random_vec(static_cast<size_t>(out_c), rng);
    const auto inv_std = random_vec(static_cast<size_t>(out_c), rng);
    const auto gamma = random_vec(static_cast<size_t>(out_c), rng);
    const auto beta = random_vec(static_cast<size_t>(out_c), rng);
    for (const int64_t pos : positions) {
      const auto y0 = random_vec(static_cast<size_t>(out_c * pos), rng);
      const auto res = random_vec(static_cast<size_t>(out_c * pos), rng);
      for (const bool bn : {false, true}) {
        for (const bool with_res : {false, true}) {
          for (const bool relu : {false, true}) {
            nn::FusedEpilogueParams p;
            p.bn = bn;
            p.relu = relu;
            if (bn) {
              p.mean = mean.data();
              p.inv_std = inv_std.data();
              p.gamma = gamma.data();
              p.beta = beta.data();
            }
            auto simd_y = y0;
            auto ref_y = y0;
            nn::fused_epilogue(simd_y.data(),
                               with_res ? res.data() : nullptr, out_c, pos,
                               p);
            nn::fused_epilogue_scalar(ref_y.data(),
                                      with_res ? res.data() : nullptr,
                                      out_c, pos, p);
            EXPECT_TRUE(bitwise_equal(simd_y, ref_y))
                << "C=" << out_c << " pos=" << pos << " bn=" << bn
                << " res=" << with_res << " relu=" << relu;
          }
        }
      }
    }
  }
}

TEST(SimdParity, GatherPositionsRaggedTails) {
  Rng rng(43);
  const auto plane = random_vec(67 * 67, rng);
  for (const int n : {1, 3, 7, 8, 9, 15, 16, 17, 100, 1000}) {
    // Strictly increasing kept positions with irregular strides.
    std::vector<int> idx(static_cast<size_t>(n));
    int cur = 0;
    for (int j = 0; j < n; ++j) {
      idx[static_cast<size_t>(j)] = cur;
      cur += 1 + (j % 3);
    }
    ASSERT_LT(idx.back(), 67 * 67);
    std::vector<float> simd_out(static_cast<size_t>(n), -1.f);
    std::vector<float> ref_out(static_cast<size_t>(n), -2.f);
    nn::gather_positions(plane.data(), idx.data(), n, simd_out.data());
    nn::gather_positions_scalar(plane.data(), idx.data(), n, ref_out.data());
    EXPECT_TRUE(bitwise_equal(simd_out, ref_out)) << "n=" << n;
  }
}

TEST(SimdParity, ScatterBiasRowRaggedTails) {
  Rng rng(44);
  for (const int64_t n : {1, 7, 8, 9, 31, 33, 257}) {
    const auto src = random_vec(static_cast<size_t>(n), rng);
    std::vector<float> simd_dst(static_cast<size_t>(n), 0.f);
    std::vector<float> ref_dst(static_cast<size_t>(n), 0.f);
    nn::scatter_bias_row(src.data(), simd_dst.data(), n, 0.73f);
    nn::scatter_bias_row_scalar(src.data(), ref_dst.data(), n, 0.73f);
    EXPECT_TRUE(bitwise_equal(simd_dst, ref_dst)) << "n=" << n;
  }
}

TEST(SimdParity, Im2colRangeMatchesScalarAcrossGeometries) {
  Rng rng(45);
  const ConvGeom geoms[] = {
      {3, 11, 13, 3, 3, 1, 1},   // stride-1 contiguous fast path
      {5, 9, 9, 3, 3, 2, 1},     // strided scalar path
      {2, 8, 8, 1, 1, 1, 0},     // 1x1
      {4, 7, 5, 5, 5, 1, 2},     // kernel wider than half the input
      {1, 16, 16, 3, 3, 1, 0},   // no padding
  };
  for (const ConvGeom& g : geoms) {
    const auto x =
        random_vec(static_cast<size_t>(g.in_c) * g.in_h * g.in_w, rng);
    const size_t cols_n =
        static_cast<size_t>(g.patch_rows()) * g.out_positions();
    std::vector<float> fast(cols_n, -1.f), ref(cols_n, -2.f);
    im2col_range(x.data(), g, 0, g.in_c, fast.data());
    im2col_range_scalar(x.data(), g, 0, g.in_c, ref.data());
    EXPECT_TRUE(bitwise_equal(fast, ref))
        << g.in_c << "x" << g.in_h << "x" << g.in_w << " k" << g.k_h
        << " s" << g.stride << " p" << g.pad;
  }
}

TEST(SimdParity, Im2colGatherLdIdentityAndSubsetMatchScalar) {
  Rng rng(46);
  const ConvGeom g{6, 12, 10, 3, 3, 1, 1};
  const auto x =
      random_vec(static_cast<size_t>(g.in_c) * g.in_h * g.in_w, rng);
  const int64_t pos = g.out_positions();
  std::vector<int> channels = {0, 2, 3, 5};  // kept-channel subset

  // Identity positions (the channel-mask hot path) and ragged subsets.
  std::vector<std::vector<int>> spatial_cases;
  std::vector<int> all(static_cast<size_t>(pos));
  std::iota(all.begin(), all.end(), 0);
  spatial_cases.push_back(all);
  std::vector<int> sparse;
  for (int s = 1; s < pos; s += 3) sparse.push_back(s);
  spatial_cases.push_back(sparse);
  spatial_cases.push_back({0});
  spatial_cases.push_back({static_cast<int>(pos) - 1});

  for (const auto& spatial : spatial_cases) {
    const int64_t n_cols = static_cast<int64_t>(spatial.size());
    // ld > n_cols exercises the strided group layout: check the written
    // columns only, with sentinels proving the gap stays untouched.
    for (const int64_t ld : {n_cols, n_cols + 5}) {
      const size_t rows =
          static_cast<size_t>(channels.size()) * g.k_h * g.k_w;
      std::vector<float> fast(rows * static_cast<size_t>(ld), -7.f);
      std::vector<float> ref(rows * static_cast<size_t>(ld), -7.f);
      im2col_gather_ld(x.data(), g, channels, spatial, fast.data(), ld);
      im2col_gather_ld_scalar(x.data(), g, channels, spatial, ref.data(),
                              ld);
      EXPECT_TRUE(bitwise_equal(fast, ref))
          << "spatial=" << spatial.size() << " ld=" << ld;
    }
  }
}

}  // namespace
}  // namespace antidote
