#include "serving/server.h"

#include <utility>
#include <vector>

#include "base/error.h"

namespace antidote::serving {

InferenceServer::InferenceServer(const ReplicaFactory& factory,
                                 ServerConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity),
      stats_(config_.policy.max_batch) {
  AD_CHECK(factory != nullptr) << " server needs a replica factory";
  AD_CHECK(!config_.latency.has_value() || config_.prune.has_value())
      << " latency control requires prune settings";
  AD_CHECK(!config_.admission.enabled || config_.latency.has_value())
      << " cost-aware admission needs the latency controller's cost model";

  std::vector<std::unique_ptr<ModelReplica>> replicas;
  replicas.reserve(static_cast<size_t>(config_.policy.num_workers));
  for (int i = 0; i < config_.policy.num_workers; ++i) {
    std::unique_ptr<models::ConvNet> net = factory(i);
    if (config_.compute_cap < 1.0) {
      net->set_compute_cap(config_.compute_cap);
    }
    replicas.push_back(
        std::make_unique<ModelReplica>(std::move(net), config_.prune));
  }

  if (config_.latency.has_value()) {
    controller_ = std::make_unique<LatencyController>(*config_.prune,
                                                      *config_.latency);
  }
  if (config_.admission.enabled) {
    // Price one queued request with the controller's cost model at its
    // current offset; before any latency signal exists the prediction is
    // 0 and the queue admits unconditionally.
    LatencyController* controller = controller_.get();
    const int max_batch = config_.policy.max_batch;
    const int workers = config_.policy.num_workers;
    queue_.configure_admission(config_.admission,
                               [controller, max_batch, workers] {
                                 return controller->predicted_request_cost_ms(
                                     max_batch, workers);
                               });
  }

  // When the controller moves the drop offset, fan the new settings out to
  // every replica; each worker applies them before its next batch.
  std::function<void()> on_changed;
  if (controller_ != nullptr) {
    // Safe to capture `this`: the callback only fires from worker threads,
    // which start after scheduler_ is assigned below.
    on_changed = [this] {
      const core::PruneSettings s = controller_->settings();
      for (auto& replica : scheduler_->replicas()) {
        replica->engine()->post_settings(s);
      }
    };
  }
  scheduler_ = std::make_unique<BatchScheduler>(
      queue_, config_.policy, std::move(replicas), stats_, controller_.get(),
      std::move(on_changed));
  scheduler_->start();
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<InferenceResult> InferenceServer::submit(
    Tensor input, std::optional<Clock::time_point> deadline) {
  SubmitStatus status = SubmitStatus::kAccepted;
  std::future<InferenceResult> f =
      queue_.submit(std::move(input), deadline, &status);
  record_submit_outcome(status);
  return f;
}

std::future<InferenceResult> InferenceServer::try_submit(
    Tensor input, std::optional<Clock::time_point> deadline) {
  SubmitStatus status = SubmitStatus::kAccepted;
  std::future<InferenceResult> f =
      queue_.try_submit(std::move(input), deadline, &status);
  record_submit_outcome(status);
  return f;
}

void InferenceServer::record_submit_outcome(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted:
      break;
    case SubmitStatus::kShed:
      stats_.record_shed(1);
      // Feeds the controller's anti-windup: while shedding, the offset
      // integrator must not wind up against queue saturation.
      if (controller_ != nullptr) controller_->note_shed();
      break;
    case SubmitStatus::kRejected:
      stats_.record_rejected(1);
      break;
    case SubmitStatus::kClosed:
      break;  // shutdown races are not overload signals
  }
}

void InferenceServer::shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.close();
    scheduler_->join();
  });
}

}  // namespace antidote::serving
