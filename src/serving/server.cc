#include "serving/server.h"

#include <utility>
#include <vector>

#include "base/error.h"

namespace antidote::serving {

InferenceServer::InferenceServer(const ReplicaFactory& factory,
                                 ServerConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity),
      stats_(config_.policy.max_batch) {
  AD_CHECK(factory != nullptr) << " server needs a replica factory";
  AD_CHECK(!config_.latency.has_value() || config_.prune.has_value())
      << " latency control requires prune settings";

  std::vector<std::unique_ptr<ModelReplica>> replicas;
  replicas.reserve(static_cast<size_t>(config_.policy.num_workers));
  for (int i = 0; i < config_.policy.num_workers; ++i) {
    replicas.push_back(
        std::make_unique<ModelReplica>(factory(i), config_.prune));
  }

  if (config_.latency.has_value()) {
    controller_ = std::make_unique<LatencyController>(*config_.prune,
                                                      *config_.latency);
  }

  // When the controller moves the drop offset, fan the new settings out to
  // every replica; each worker applies them before its next batch.
  std::function<void()> on_changed;
  if (controller_ != nullptr) {
    // Safe to capture `this`: the callback only fires from worker threads,
    // which start after scheduler_ is assigned below.
    on_changed = [this] {
      const core::PruneSettings s = controller_->settings();
      for (auto& replica : scheduler_->replicas()) {
        replica->engine()->post_settings(s);
      }
    };
  }
  scheduler_ = std::make_unique<BatchScheduler>(
      queue_, config_.policy, std::move(replicas), stats_, controller_.get(),
      std::move(on_changed));
  scheduler_->start();
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<InferenceResult> InferenceServer::submit(
    Tensor input, std::optional<Clock::time_point> deadline) {
  return queue_.submit(std::move(input), deadline);
}

std::future<InferenceResult> InferenceServer::try_submit(
    Tensor input, std::optional<Clock::time_point> deadline) {
  std::future<InferenceResult> f =
      queue_.try_submit(std::move(input), deadline);
  if (!f.valid()) stats_.record_rejected(1);
  return f;
}

void InferenceServer::shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.close();
    scheduler_->join();
  });
}

}  // namespace antidote::serving
