// Umbrella header for the batched inference serving runtime:
//
//   #include "serving/serving.h"
//
// pulls in the request queue, batching scheduler, latency controller,
// server stats, and the InferenceServer facade. See docs/serving.md for
// the design.
#pragma once

#include "serving/adversarial.h"
#include "serving/batch_scheduler.h"
#include "serving/latency_controller.h"
#include "serving/request_queue.h"
#include "serving/server.h"
#include "serving/server_stats.h"
