// Adversarial workload generator — worst-case traffic for the serving
// stack, after GradMDM's observation that input-dependent pruning is a
// denial-of-service surface: inputs crafted to maximize kept channels and
// mask diversity inflate per-request compute, and arrival patterns crafted
// against the batching/controller dynamics inflate queueing.
//
// Four attack profiles (plus off):
//   masks    per-request random channel/row magnitude permutations force a
//            unique attention rank order per sample — maximally DISTINCT
//            masks, defeating both exact-identity mask grouping and
//            similar-mask union coarsening (low pairwise overlap).
//   compute  uniformly high-energy inputs (every channel screams) paired
//            with slow-drip pacing: the drip keeps utilization low so the
//            LatencyController relaxes toward keep-everything, then the
//            expensive requests land on relaxed settings. What the
//            per-request compute cap exists to bound.
//   burst    coordinated open-loop bursts of ~queue-capacity requests
//            followed by silence: saturates the queue edge (sheds,
//            rejections) and leaves stale backlog whose deadlines expire
//            before dequeue.
//   mixed    cycles the three per request index — the sustained hostile
//            mix the acceptance gate measures.
//
// Everything is seeded: one generator per client, forked per request, so
// a run is reproducible from (seed, client, request index) alone.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "base/rng.h"
#include "tensor/tensor.h"

namespace antidote::serving {

enum class AdversarialProfile { kOff, kMasks, kCompute, kBurst, kMixed };

// Parses an --adversarial flag value ({off,masks,compute,burst,mixed});
// throws on anything else.
AdversarialProfile adversarial_profile_from_name(const std::string& name);
const char* adversarial_profile_name(AdversarialProfile profile);

// How a client should pace its submissions for a profile.
struct AdversarialPacing {
  bool open_loop = false;  // fire-and-forget via try_submit
  int burst = 1;           // requests issued back to back
  std::chrono::microseconds gap{0};  // idle time between bursts
};

class AdversarialGenerator {
 public:
  // One generator per client; `seed` plus the client id must differ
  // across clients for independent streams (callers pass seed + client).
  AdversarialGenerator(int channels, int height, int width,
                       AdversarialProfile profile, uint64_t seed);

  // The profile the next request runs under (kMixed cycles per request;
  // other profiles are constant).
  AdversarialProfile next_profile() const;
  // Synthesizes the next request's input ([C,H,W]) and advances the
  // stream. Deterministic in (seed, call index).
  Tensor next_input();

  // Pacing for the CURRENT request's profile. `queue_capacity` sizes the
  // burst (a burst of ~capacity saturates the admission edge in one
  // volley).
  AdversarialPacing pacing(size_t queue_capacity) const;

  uint64_t generated() const { return count_; }

 private:
  Tensor make_masks_input(Rng& rng);
  Tensor make_compute_input(Rng& rng);

  const int c_, h_, w_;
  const AdversarialProfile profile_;
  Rng rng_;
  uint64_t count_ = 0;
};

}  // namespace antidote::serving
