// RequestQueue — the admission edge of the serving runtime.
//
// Clients wrap a single input image into an InferenceRequest and submit it;
// they get back a std::future for the InferenceResult that a batch worker
// will eventually fulfill. The queue is a bounded MPMC queue (see
// base/mpmc_queue.h): when it is full, submit() blocks (closed-loop
// clients) and try_submit() fails fast (open-loop clients shed load). Every
// request carries a monotonically increasing ticket and an optional
// deadline; expired requests are still answered but flagged, so callers
// can distinguish "late" from "wrong".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <optional>

#include "base/mpmc_queue.h"
#include "tensor/tensor.h"

namespace antidote::serving {

using Clock = std::chrono::steady_clock;

// What a batch worker hands back for one request.
struct InferenceResult {
  Tensor logits;           // [num_classes]
  int predicted = -1;      // argmax of logits
  uint64_t ticket = 0;
  int batch_size = 0;      // size of the batch this request rode in
  double queue_ms = 0.0;   // submit -> picked up by a worker
  double batch_ms = 0.0;   // batch assembly + forward + scatter
  bool deadline_missed = false;
};

struct InferenceRequest {
  Tensor input;  // [C, H, W] single sample
  uint64_t ticket = 0;
  Clock::time_point enqueue_time{};
  // No deadline when unset; the scheduler then never flags the request.
  std::optional<Clock::time_point> deadline;
  std::promise<InferenceResult> promise;
};

class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity);

  // Blocking submit (closed-loop backpressure). Returns an invalid future
  // (valid() == false) once the queue is closed.
  std::future<InferenceResult> submit(
      Tensor input, std::optional<Clock::time_point> deadline = std::nullopt);

  // Non-blocking submit (open-loop load shedding). Invalid future when the
  // queue is full or closed; the rejection is counted.
  std::future<InferenceResult> try_submit(
      Tensor input, std::optional<Clock::time_point> deadline = std::nullopt);

  // Consumer side (the batch scheduler). Semantics follow BoundedQueue.
  bool pop(InferenceRequest& out) { return queue_.pop(out); }
  bool pop_until(InferenceRequest& out, Clock::time_point deadline) {
    return queue_.pop_until(out, deadline);
  }

  // Stops admission; queued requests remain poppable for draining.
  void close() { queue_.close(); }
  bool closed() const { return queue_.closed(); }

  size_t depth() const { return queue_.size(); }
  size_t capacity() const { return queue_.capacity(); }
  uint64_t submitted() const;
  uint64_t rejected() const;

 private:
  InferenceRequest make_request(Tensor input,
                                std::optional<Clock::time_point> deadline);

  BoundedQueue<InferenceRequest> queue_;
  std::atomic<uint64_t> next_ticket_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace antidote::serving
