// RequestQueue — the admission edge of the serving runtime.
//
// Clients wrap a single input image into an InferenceRequest and submit it;
// they get back a std::future for the InferenceResult that a batch worker
// will eventually fulfill. The queue is a bounded MPMC queue (see
// base/mpmc_queue.h): when it is full, submit() blocks (closed-loop
// clients) and try_submit() fails fast (open-loop clients shed load). Every
// request carries a monotonically increasing ticket and an optional
// deadline; expired requests are still answered but flagged, so callers
// can distinguish "late" from "wrong".
//
// On top of the depth bound, the queue can run COST-AWARE admission
// control: given a per-request cost estimate (the server wires in the
// latency controller's cost-model prediction), a submit is shed when the
// predicted time to drain the queue including the new request exceeds the
// configured budget. Depth-only backpressure is blind to compute — under
// a hostile mix, one queue slot can hide 10x the work of another — while
// the cost gate keeps the admitted queue drainable within the budget no
// matter what the requests look like.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <optional>

#include "base/mpmc_queue.h"
#include "tensor/tensor.h"

namespace antidote::serving {

using Clock = std::chrono::steady_clock;

// What a batch worker hands back for one request.
struct InferenceResult {
  Tensor logits;           // [num_classes]
  int predicted = -1;      // argmax of logits
  uint64_t ticket = 0;
  int batch_size = 0;      // size of the batch this request rode in
  double queue_ms = 0.0;   // submit -> picked up by a worker
  double batch_ms = 0.0;   // batch assembly + forward + scatter
  bool deadline_missed = false;
  // True when the deadline had already passed at dequeue and the request
  // was answered without running (logits empty, predicted == -1).
  bool expired_unexecuted = false;
};

struct InferenceRequest {
  Tensor input;  // [C, H, W] single sample
  uint64_t ticket = 0;
  Clock::time_point enqueue_time{};
  // No deadline when unset; the scheduler then never flags the request.
  std::optional<Clock::time_point> deadline;
  std::promise<InferenceResult> promise;
};

// Why an invalid future came back. kShed (admission control) and
// kRejected (queue full) are counted separately: shedding is a policy
// decision about predicted cost, rejection is raw backpressure.
enum class SubmitStatus { kAccepted, kShed, kRejected, kClosed };

// Cost-aware admission. Disabled by default: with enabled == false (or no
// cost function installed) the queue behaves exactly as before.
struct AdmissionConfig {
  bool enabled = false;
  // Shed when (depth + 1) * predicted_request_cost_ms > max_queue_ms.
  double max_queue_ms = 50.0;
};

class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity);

  // Installs/replaces the admission policy. `cost_ms` predicts the service
  // cost of one queued request in milliseconds; returning 0 (e.g. before
  // any latency signal exists) admits unconditionally. Thread-safe, but
  // intended to be called once at server construction.
  void configure_admission(AdmissionConfig config,
                           std::function<double()> cost_ms);

  // Blocking submit (closed-loop backpressure). Returns an invalid future
  // (valid() == false) once the queue is closed or the request is shed;
  // `status` (when non-null) says which.
  std::future<InferenceResult> submit(
      Tensor input, std::optional<Clock::time_point> deadline = std::nullopt,
      SubmitStatus* status = nullptr);

  // Non-blocking submit (open-loop load shedding). Invalid future when the
  // queue is full, shed, or closed; the outcome is counted and reported
  // through `status` when non-null.
  std::future<InferenceResult> try_submit(
      Tensor input, std::optional<Clock::time_point> deadline = std::nullopt,
      SubmitStatus* status = nullptr);

  // Consumer side (the batch scheduler). Semantics follow BoundedQueue.
  bool pop(InferenceRequest& out) { return queue_.pop(out); }
  bool pop_until(InferenceRequest& out, Clock::time_point deadline) {
    return queue_.pop_until(out, deadline);
  }

  // Stops admission; queued requests remain poppable for draining.
  void close() { queue_.close(); }
  bool closed() const { return queue_.closed(); }

  size_t depth() const { return queue_.size(); }
  size_t capacity() const { return queue_.capacity(); }
  uint64_t submitted() const;
  uint64_t rejected() const;
  uint64_t shed() const;

 private:
  InferenceRequest make_request(Tensor input,
                                std::optional<Clock::time_point> deadline);
  // True when admission control would refuse another request right now.
  bool admission_refuses() const;
  static void report(SubmitStatus* status, SubmitStatus value) {
    if (status != nullptr) *status = value;
  }

  BoundedQueue<InferenceRequest> queue_;
  std::atomic<uint64_t> next_ticket_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shed_{0};
  mutable std::mutex admission_mutex_;  // guards the two fields below
  AdmissionConfig admission_;
  std::function<double()> admission_cost_ms_;
};

}  // namespace antidote::serving
