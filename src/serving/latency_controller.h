// LatencyController — closes the loop between realized batch latency and
// the dynamic-pruning drop ratios.
//
// AntiDote's gates make per-input FLOPs a runtime knob; following the
// latency-aware framing of Han et al. (dynamic networks must be judged by
// realized latency, not FLOPs), the controller holds a *latency budget*
// rather than a FLOPs target. Workers report every completed batch; once a
// window of batches has accumulated the controller compares the window's
// p95 against the budget and moves a scalar "drop offset" proportionally
// to the relative error: up (prune more, run faster) when p95 overshoots
// the budget, down (prune less, keep accuracy) when p95 sits below the low
// watermark. Inside [low_watermark * target, target] the controller holds
// still — that band is the served steady state, comfortably inside a
// +/-25% tolerance around the budget. The offset is added to the
// operator-supplied base PruneSettings per block and clamped via
// PruneSettings::clamped, so the shipped settings never leave
// [0, max_drop].
//
// With a *cost model* attached (built by the BatchScheduler from a
// replica's compiled InferencePlan: measured per-op step times plus which
// settings block's drop ratios scale each op), the controller stops
// walking the offset blindly: it calibrates the model against the
// realized p95 and inverts it — picking the smallest drop offset whose
// predicted latency meets the budget — so it converges in one or two
// windows instead of many proportional steps. Without a cost model the
// original EWMA/proportional behaviour is unchanged.
//
// The controller is pure feedback — it never touches a model — which keeps
// it deterministic and testable: feed it synthetic latencies (and
// optionally a synthetic cost model) and it must converge. The server
// wires its output to every replica's engine through
// DynamicPruningEngine::post_settings.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/engine.h"

namespace antidote::serving {

class LatencyController {
 public:
  struct Config {
    double target_p95_ms = 10.0;
    // Relax (prune less) only when p95 < low_watermark * target, so the
    // controller does not oscillate inside the acceptable band.
    double low_watermark = 0.8;
    int window = 16;     // batches per control decision
    // Max drop-offset change per decision; the actual step scales with the
    // relative latency error, so adjustments shrink near the budget.
    float step = 0.1f;
    float max_drop = 0.9f;
    // Offset range: [min_offset, max_offset]. A negative min lets the
    // controller prune *less* than the operator's base settings when the
    // budget is loose.
    float min_offset = -0.9f;
    float max_offset = 0.9f;
    // Anti-windup recovery: after windows in which admission control shed
    // load, the offset integrator is frozen against further tightening
    // (the queue, not the model, is saturated — winding the offset to
    // max_drop would only destroy accuracy without fixing the overload).
    // Once shedding stops, the offset moves only this fraction of the way
    // toward each new decision per window until p95 re-enters the band,
    // so a post-attack server relaxes smoothly instead of overshooting.
    double recovery_decay = 0.5;
  };

  // Per-op latency cost model distilled from an InferencePlan's measured
  // timings. Ops with prune_block >= 0 have their cost scaled by the keep
  // ratios that block's drop settings imply; the rest are fixed cost.
  // Under mask-grouped execution with cross-group parallelism a masked
  // conv's realized cost scales with the CRITICAL-PATH worker's group
  // dispatches x compacted size (groups run concurrently over pool
  // workers, so group cost is a max over workers, not a sum over groups)
  // — so each prunable op also carries the plan's observed group-cost
  // fraction (ceil(groups / parallel width) / batch, ewma) and the cost
  // units its measured time was observed at. Prediction rescales the raw measured time by
  // hypothetical units / measured units — a single division of two
  // smoothed series, so fluctuating group counts cannot inflate the
  // estimate the way per-sample normalization (averaged reciprocals)
  // would.
  struct CostModel {
    struct Op {
      double ms = 0.0;          // raw smoothed per-batch time
      double group_frac = 1.0;  // observed distinct-mask fraction
      int prune_block = -1;
      bool spatial = false;  // spatial drops also scale this op
      // keep x group units behind `ms` (1 = measured dense/ungrouped).
      double measured_units = 1.0;
      // Dense memory traffic per MAC under the plan's numeric regime
      // (int8 conv steps report ~4x less than f32). The plan rescales its
      // EWMAs by this ratio on a regime switch, so `ms` already reflects
      // the regime — carried here so diagnostics and future bandwidth-
      // aware prediction see the same axis. 0 for non-conv ops.
      double bytes_per_mac = 0.0;
    };
    std::vector<Op> ops;
    bool empty() const { return ops.empty(); }
  };

  // `base` is the operator's per-block starting point (block count must
  // match the served model).
  LatencyController(core::PruneSettings base, Config config);

  // Installs/refreshes the cost model (thread-safe; any worker may call
  // it between batches as plan timings accumulate).
  void set_cost_model(CostModel model);
  bool has_cost_model() const;
  // Predicted batch latency at a hypothetical drop offset under the
  // current (uncalibrated) cost model; 0 without a model. Exposed for
  // tests and diagnostics.
  double predict_ms(float offset) const;

  // Thread-safe. Records one completed batch; when this closes a control
  // window and the decision changed the settings, returns true — the
  // caller should then fetch settings() and post them to the replicas.
  bool record_batch(double batch_latency_ms,
                    const core::DynamicPruningEngine::KeepStats& keep,
                    int batch_size);

  // Admission control shed a request. Lock-free; the next window close
  // consumes the count and freezes the offset integrator (anti-windup).
  void note_shed() { sheds_pending_.fetch_add(1, std::memory_order_relaxed); }
  // True from the first shed-affected window until p95 re-enters the band
  // with no shedding — the span over which recovery decay applies.
  bool shedding_active() const;

  // Predicted service cost of ONE request in milliseconds at the current
  // offset: the cost-model batch prediction amortized over a full batch
  // across `workers` concurrent replicas, falling back to the smoothed
  // p95 when no model is attached yet. 0 before any latency signal exists
  // (callers should admit unconditionally then). This is the cost
  // function the server hands to RequestQueue admission control.
  double predicted_request_cost_ms(int max_batch, int workers) const;

  // Current target settings (base + offset, clamped). Thread-safe copy.
  core::PruneSettings settings() const;
  float offset() const;
  // Mask-coarsening MAC bias the controller is currently asking for, in
  // (0, 1]: 1.0 is the plan's honest latency model; under budget pressure
  // the controller lowers it multiplicatively (union-added MACs look
  // cheaper, so the plan's coarsener merges similar mask groups harder)
  // and relaxes it back toward neutral while p95 sits under the low
  // watermark. The scheduler posts it to every replica plan alongside the
  // drop settings whenever record_batch reports a change, keeping the
  // plan-side merge decisions and the controller's cost-model group term
  // moving in the same direction.
  double coarsen_mac_bias() const;
  // p95 of the most recently completed window (0 until one completes).
  double p95_ms() const;
  // Exponentially smoothed p95 across windows — the steadier figure to
  // report against the budget.
  double smoothed_p95_ms() const;
  const Config& config() const { return config_; }

  // Accuracy proxy: mean keep ratios reported by the gates, averaged over
  // every recorded batch (weighted by batch size).
  struct KeepSummary {
    double mean_channel_keep = 1.0;
    double mean_spatial_keep = 1.0;
    uint64_t samples = 0;
  };
  KeepSummary keep_summary() const;
  // Zeroes the keep accumulators (control state is untouched) so a load
  // run can report steady-state keep ratios, excluding warm-up batches.
  void reset_keep_summary();

 private:
  core::PruneSettings settings_locked() const;  // requires mutex_ held
  double predict_ms_locked(float offset) const;
  // Smallest offset whose calibrated prediction meets the budget.
  float solve_offset_locked(double calibration) const;
  static double percentile(std::vector<double> values, double q);

  const Config config_;
  const core::PruneSettings base_;
  mutable std::mutex mutex_;
  CostModel cost_model_;
  std::atomic<uint64_t> sheds_pending_{0};
  bool shedding_active_ = false;  // guarded by mutex_
  float offset_ = 0.f;
  double coarsen_mac_bias_ = 1.0;
  double last_window_p95_ms_ = 0.0;
  double smoothed_p95_ms_ = 0.0;
  std::vector<double> window_;
  double keep_channel_sum_ = 0.0;
  double keep_spatial_sum_ = 0.0;
  uint64_t keep_samples_ = 0;
};

}  // namespace antidote::serving
