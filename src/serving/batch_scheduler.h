// BatchScheduler — micro-batching worker pool of the serving runtime.
//
// Each worker owns a ModelReplica (a ConvNet plus, when pruning is on, a
// DynamicPruningEngine) so forward passes never share mutable model state
// and need no locking. The batching policy is the classic max-batch /
// max-wait pair: a worker blocks for the first request, then keeps
// coalescing until either the batch is full or max_wait has elapsed since
// the first pickup, then stacks the inputs into one [N,C,H,W] forward and
// scatters the logits back through the per-request promises.
//
// Between batches the worker applies any settings the LatencyController
// posted (DynamicPruningEngine::apply_pending_settings), which is how the
// controller's drop-ratio decisions reach the replicas without stopping
// the world.
//
// Each replica serves through its model's compiled InferencePlan (the
// ConvNet context forward): conv+BN+ReLU run as fused steps out of the
// replica's arena, and the plan's measured per-op timings are distilled
// into the LatencyController's cost model after every batch, giving the
// controller a real latency model instead of a blind EWMA.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "models/convnet.h"
#include "serving/latency_controller.h"
#include "serving/request_queue.h"
#include "serving/server_stats.h"

namespace antidote::serving {

struct BatchPolicy {
  int max_batch = 8;
  // How long a worker holds an under-full batch open after the first
  // request arrives.
  std::chrono::microseconds max_wait{2000};
  int num_workers = 1;
};

// A worker's private model. The replica puts the net in eval mode (serving
// never trains) and installs the pruning engine when settings are given.
// It also owns the worker's ExecutionContext: forward passes run out of
// the replica's workspace arena, so steady-state serving performs zero
// heap allocations per pass. The context is single-threaded by contract —
// exactly one worker drives a replica.
class ModelReplica {
 public:
  ModelReplica(std::unique_ptr<models::ConvNet> net,
               const std::optional<core::PruneSettings>& prune);
  ~ModelReplica();

  models::ConvNet& net() { return *net_; }
  // Null when the replica serves densely (no pruning engine installed).
  core::DynamicPruningEngine* engine() { return engine_.get(); }
  nn::ExecutionContext& context() { return context_; }
  // The replica's compiled plan (null until the first batch fixes the
  // input shape and triggers compilation).
  plan::InferencePlan* plan() { return net_->current_plan(); }

 private:
  std::unique_ptr<models::ConvNet> net_;
  std::unique_ptr<core::DynamicPruningEngine> engine_;
  nn::ExecutionContext context_;
};

class BatchScheduler {
 public:
  // `on_settings_changed` fires on the worker thread whose batch closed a
  // control window that moved the drop offset; the server uses it to post
  // the new settings to every replica. `controller` and the callback may
  // be null (fixed-ratio serving).
  BatchScheduler(RequestQueue& queue, BatchPolicy policy,
                 std::vector<std::unique_ptr<ModelReplica>> replicas,
                 ServerStats& stats, LatencyController* controller,
                 std::function<void()> on_settings_changed);
  ~BatchScheduler();

  // Spawns one thread per replica. Workers exit when the queue is closed
  // and drained.
  void start();
  // Blocks until every worker has exited (close the queue first).
  void join();

  const BatchPolicy& policy() const { return policy_; }
  std::vector<std::unique_ptr<ModelReplica>>& replicas() { return replicas_; }

 private:
  void worker_loop(int worker_index);
  // If the request's deadline already passed, answers it with a flagged
  // unexecuted result (no logits, predicted == -1) and returns true; the
  // caller must then not add it to a batch.
  bool expire_if_dead(InferenceRequest& req);
  void run_batch(int worker_index, ModelReplica& replica,
                 std::vector<InferenceRequest>& batch);

  RequestQueue* queue_;
  const BatchPolicy policy_;
  std::vector<std::unique_ptr<ModelReplica>> replicas_;
  ServerStats* stats_;
  LatencyController* controller_;
  std::function<void()> on_settings_changed_;
  std::vector<std::thread> workers_;
  bool started_ = false;
};

}  // namespace antidote::serving
