#include "serving/server_stats.h"

#include <algorithm>
#include <chrono>

#include "base/error.h"

namespace antidote::serving {

ServerStats::ServerStats(int max_batch)
    : max_batch_(max_batch),
      start_(std::chrono::steady_clock::now()),
      histogram_(static_cast<size_t>(max_batch), 0) {
  AD_CHECK_GT(max_batch, 0);
}

void ServerStats::record_batch(int batch_size, double queue_wait_ms,
                               double assemble_ms, double forward_ms,
                               double scatter_ms) {
  AD_CHECK(batch_size >= 1 && batch_size <= max_batch_)
      << " batch size " << batch_size << " vs max " << max_batch_;
  std::lock_guard<std::mutex> lock(mutex_);
  completed_ += static_cast<uint64_t>(batch_size);
  batches_ += 1;
  histogram_[static_cast<size_t>(batch_size - 1)] += 1;
  queue_wait_ms_sum_ += queue_wait_ms * batch_size;
  assemble_ms_sum_ += assemble_ms;
  forward_ms_sum_ += forward_ms;
  scatter_ms_sum_ += scatter_ms;
  forward_hist_.record(forward_ms);
}

void ServerStats::record_request(double queue_wait_ms, double e2e_ms) {
  queue_wait_hist_.record(queue_wait_ms);
  e2e_hist_.record(e2e_ms);
}

void ServerStats::record_deadline_miss(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  deadline_misses_ += static_cast<uint64_t>(count);
}

void ServerStats::record_rejected(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  rejected_ += static_cast<uint64_t>(count);
}

void ServerStats::record_shed(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  shed_ += static_cast<uint64_t>(count);
}

void ServerStats::record_expired_unexecuted(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  expired_unexecuted_ += static_cast<uint64_t>(count);
}

void ServerStats::record_capped(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  capped_requests_ += static_cast<uint64_t>(count);
}

void ServerStats::record_queue_depth(size_t depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  queue_depth_sum_ += static_cast<double>(depth);
  queue_depth_samples_ += 1;
}

void ServerStats::record_mask_groups(int groups, int batch_size) {
  AD_CHECK(groups >= 1 && groups <= batch_size)
      << " mask groups " << groups << " vs batch " << batch_size;
  std::lock_guard<std::mutex> lock(mutex_);
  masked_batches_ += 1;
  mask_group_sum_ += static_cast<double>(groups);
  group_fraction_sum_ +=
      static_cast<double>(groups) / static_cast<double>(batch_size);
}

void ServerStats::record_coarsen(int raw_groups, int groups,
                                 double extra_mac_frac) {
  AD_CHECK(groups >= 1 && groups <= raw_groups)
      << " coarsened groups " << groups << " vs raw " << raw_groups;
  std::lock_guard<std::mutex> lock(mutex_);
  coarsen_batches_ += 1;
  if (raw_groups > groups) coarsen_merged_ += 1;
  raw_group_sum_ += static_cast<double>(raw_groups);
  coarsened_group_sum_ += static_cast<double>(groups);
  coarsen_extra_mac_sum_ += extra_mac_frac;
}

void ServerStats::record_arena_bytes(int replica, size_t bytes) {
  AD_CHECK_GE(replica, 0);
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<size_t>(replica) >= arena_bytes_.size()) {
    arena_bytes_.resize(static_cast<size_t>(replica) + 1, 0);
  }
  arena_bytes_[static_cast<size_t>(replica)] =
      std::max(arena_bytes_[static_cast<size_t>(replica)],
               static_cast<uint64_t>(bytes));
}

ServerStats::Snapshot ServerStats::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.completed_requests = completed_;
  s.batches = batches_;
  s.deadline_misses = deadline_misses_;
  s.rejected = rejected_;
  s.shed = shed_;
  s.expired_unexecuted = expired_unexecuted_;
  s.capped_requests = capped_requests_;
  s.elapsed_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
  if (s.elapsed_s > 0.0) {
    s.throughput_rps = static_cast<double>(completed_) / s.elapsed_s;
  }
  if (batches_ > 0) {
    s.mean_batch_size = static_cast<double>(completed_) / batches_;
    s.mean_assemble_ms = assemble_ms_sum_ / batches_;
    s.mean_forward_ms = forward_ms_sum_ / batches_;
    s.mean_scatter_ms = scatter_ms_sum_ / batches_;
  }
  if (completed_ > 0) {
    s.mean_queue_wait_ms = queue_wait_ms_sum_ / completed_;
    s.deadline_miss_rate_pct =
        100.0 * static_cast<double>(deadline_misses_) /
        static_cast<double>(completed_);
    s.capped_rate_pct = 100.0 * static_cast<double>(capped_requests_) /
                        static_cast<double>(completed_);
  }
  s.offered_requests = completed_ + expired_unexecuted_ + rejected_ + shed_;
  if (s.offered_requests > 0) {
    s.shed_rate_pct = 100.0 * static_cast<double>(shed_) /
                      static_cast<double>(s.offered_requests);
    s.expired_rate_pct = 100.0 * static_cast<double>(expired_unexecuted_) /
                         static_cast<double>(s.offered_requests);
  }
  s.queue_wait_p50_ms = queue_wait_hist_.percentile(50.0);
  s.queue_wait_p95_ms = queue_wait_hist_.percentile(95.0);
  s.queue_wait_p99_ms = queue_wait_hist_.percentile(99.0);
  s.forward_p50_ms = forward_hist_.percentile(50.0);
  s.forward_p95_ms = forward_hist_.percentile(95.0);
  s.forward_p99_ms = forward_hist_.percentile(99.0);
  s.e2e_p50_ms = e2e_hist_.percentile(50.0);
  s.e2e_p95_ms = e2e_hist_.percentile(95.0);
  s.e2e_p99_ms = e2e_hist_.percentile(99.0);
  if (queue_depth_samples_ > 0) {
    s.mean_queue_depth = queue_depth_sum_ / queue_depth_samples_;
  }
  s.masked_batches = masked_batches_;
  if (masked_batches_ > 0) {
    s.mean_mask_groups = mask_group_sum_ / masked_batches_;
    s.mean_group_fraction = group_fraction_sum_ / masked_batches_;
  }
  s.coarsened_batches = coarsen_merged_;
  if (coarsen_batches_ > 0) {
    s.mean_raw_mask_groups = raw_group_sum_ / coarsen_batches_;
    s.mean_coarsened_groups = coarsened_group_sum_ / coarsen_batches_;
    s.mean_coarsen_extra_mac_pct =
        100.0 * coarsen_extra_mac_sum_ / coarsen_batches_;
  }
  s.replica_arena_bytes = arena_bytes_;
  s.batch_size_histogram = histogram_;
  return s;
}

void ServerStats::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  start_ = std::chrono::steady_clock::now();
  completed_ = batches_ = deadline_misses_ = rejected_ = 0;
  shed_ = expired_unexecuted_ = capped_requests_ = 0;
  queue_depth_sum_ = 0.0;
  queue_depth_samples_ = 0;
  queue_wait_ms_sum_ = assemble_ms_sum_ = forward_ms_sum_ =
      scatter_ms_sum_ = 0.0;
  masked_batches_ = 0;
  mask_group_sum_ = group_fraction_sum_ = 0.0;
  coarsen_batches_ = coarsen_merged_ = 0;
  raw_group_sum_ = coarsened_group_sum_ = coarsen_extra_mac_sum_ = 0.0;
  arena_bytes_.assign(arena_bytes_.size(), 0);
  histogram_.assign(histogram_.size(), 0);
  queue_wait_hist_.reset();
  forward_hist_.reset();
  e2e_hist_.reset();
}

namespace {

std::string percentile_triplet(double p50, double p95, double p99) {
  return Table::fmt(p50, 3) + " / " + Table::fmt(p95, 3) + " / " +
         Table::fmt(p99, 3);
}

}  // namespace

Table ServerStats::to_table() const {
  const Snapshot s = snapshot();
  Table t({"metric", "value"});
  t.add_row({"completed requests", std::to_string(s.completed_requests)});
  t.add_row({"batches", std::to_string(s.batches)});
  t.add_row({"throughput (req/s)", Table::fmt(s.throughput_rps, 1)});
  t.add_row({"mean batch size", Table::fmt(s.mean_batch_size, 2)});
  t.add_row({"mean queue depth", Table::fmt(s.mean_queue_depth, 2)});
  // Latency rows are distributions, not means: the tail is the SLO.
  t.add_row({"queue wait p50/p95/p99 (ms)",
             percentile_triplet(s.queue_wait_p50_ms, s.queue_wait_p95_ms,
                                s.queue_wait_p99_ms)});
  t.add_row({"forward p50/p95/p99 (ms)",
             percentile_triplet(s.forward_p50_ms, s.forward_p95_ms,
                                s.forward_p99_ms)});
  t.add_row({"e2e p50/p95/p99 (ms)",
             percentile_triplet(s.e2e_p50_ms, s.e2e_p95_ms, s.e2e_p99_ms)});
  t.add_row({"mean assemble (ms)", Table::fmt(s.mean_assemble_ms, 3)});
  t.add_row({"mean scatter (ms)", Table::fmt(s.mean_scatter_ms, 3)});
  t.add_row({"deadline misses", std::to_string(s.deadline_misses)});
  t.add_row({"deadline miss rate",
             Table::fmt(s.deadline_miss_rate_pct, 2) + "%"});
  t.add_row({"rejected", std::to_string(s.rejected)});
  // Overload visibility without trace tooling: admission sheds, compute
  // caps and dead-on-dequeue drops, each with its rate.
  t.add_row({"shed (admission)", std::to_string(s.shed)});
  t.add_row({"shed rate", Table::fmt(s.shed_rate_pct, 2) + "%"});
  t.add_row({"capped requests", std::to_string(s.capped_requests)});
  t.add_row({"capped rate", Table::fmt(s.capped_rate_pct, 2) + "%"});
  t.add_row(
      {"expired unexecuted", std::to_string(s.expired_unexecuted)});
  t.add_row({"expired rate", Table::fmt(s.expired_rate_pct, 2) + "%"});
  if (s.masked_batches > 0) {
    t.add_row({"masked batches", std::to_string(s.masked_batches)});
    t.add_row({"mean mask groups / batch", Table::fmt(s.mean_mask_groups, 2)});
    t.add_row(
        {"mean mask group fraction", Table::fmt(s.mean_group_fraction, 3)});
    t.add_row({"coarsened batches (merged)",
               std::to_string(s.coarsened_batches)});
    t.add_row({"mean groups raw -> coarsened",
               Table::fmt(s.mean_raw_mask_groups, 2) + " -> " +
                   Table::fmt(s.mean_coarsened_groups, 2)});
    t.add_row({"mean coarsen extra-MAC overhead",
               Table::fmt(s.mean_coarsen_extra_mac_pct, 2) + "%"});
  }
  for (size_t i = 0; i < s.replica_arena_bytes.size(); ++i) {
    if (s.replica_arena_bytes[i] == 0) continue;
    t.add_row({"replica " + std::to_string(i) + " peak arena (MiB)",
               Table::fmt(static_cast<double>(s.replica_arena_bytes[i]) /
                              (1024.0 * 1024.0),
                          2)});
  }
  for (size_t i = 0; i < s.batch_size_histogram.size(); ++i) {
    if (s.batch_size_histogram[i] == 0) continue;
    t.add_row({"batches of size " + std::to_string(i + 1),
               std::to_string(s.batch_size_histogram[i])});
  }
  return t;
}

}  // namespace antidote::serving
