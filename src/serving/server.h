// InferenceServer — the serving runtime's facade, composing the pieces:
//
//   clients --> RequestQueue --> BatchScheduler workers --> promises
//                                  |  each worker: ModelReplica
//                                  |  (ConvNet + DynamicPruningEngine)
//                                  v
//                           LatencyController --> post_settings to replicas
//
// Construction takes a replica *factory* rather than a model so every
// worker gets its own instance (same architecture and weights when the
// factory seeds identically or loads the same checkpoint). shutdown()
// closes admission, drains the queue, and joins the workers; the
// destructor does the same, so scoped use is safe.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>

#include "models/convnet.h"
#include "serving/batch_scheduler.h"
#include "serving/latency_controller.h"
#include "serving/request_queue.h"
#include "serving/server_stats.h"

namespace antidote::serving {

struct ServerConfig {
  BatchPolicy policy;
  size_t queue_capacity = 64;
  // Per-block drop ratios installed on every replica. Unset = dense
  // serving (no gates, no controller).
  std::optional<core::PruneSettings> prune;
  // Latency-budget feedback on top of `prune` (which must be set).
  std::optional<LatencyController::Config> latency;
  // Cost-aware admission control (requires `latency`, whose cost model
  // prices a queued request). Off by default.
  AdmissionConfig admission;
  // Per-request compute cap: the max kept-MAC fraction a request's runtime
  // masks may demand of any conv step before the plan executor clamps
  // them (graceful degradation, counted in stats). 1.0 = uncapped.
  double compute_cap = 1.0;
};

class InferenceServer {
 public:
  using ReplicaFactory =
      std::function<std::unique_ptr<models::ConvNet>(int replica_index)>;

  InferenceServer(const ReplicaFactory& factory, ServerConfig config);
  ~InferenceServer();

  // Blocking admission (closed-loop clients). Invalid future after
  // shutdown.
  std::future<InferenceResult> submit(
      Tensor input, std::optional<Clock::time_point> deadline = std::nullopt);
  // Fail-fast admission (open-loop clients; rejections are counted).
  std::future<InferenceResult> try_submit(
      Tensor input, std::optional<Clock::time_point> deadline = std::nullopt);

  // Closes admission, lets the workers drain the queue, joins them.
  // Idempotent and safe to call from multiple threads.
  void shutdown();

  ServerStats& stats() { return stats_; }
  RequestQueue& queue() { return queue_; }
  // Null when the server runs without a latency budget.
  LatencyController* controller() { return controller_.get(); }
  const ServerConfig& config() const { return config_; }

 private:
  void record_submit_outcome(SubmitStatus status);

  ServerConfig config_;
  RequestQueue queue_;
  ServerStats stats_;
  std::unique_ptr<LatencyController> controller_;
  std::unique_ptr<BatchScheduler> scheduler_;
  std::once_flag shutdown_once_;
};

}  // namespace antidote::serving
