#include "serving/latency_controller.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/error.h"

namespace antidote::serving {

LatencyController::LatencyController(core::PruneSettings base, Config config)
    : config_(config), base_(std::move(base)) {
  AD_CHECK_GT(config_.target_p95_ms, 0.0);
  AD_CHECK_GT(config_.window, 0);
  AD_CHECK_GT(config_.step, 0.f);
  AD_CHECK(config_.low_watermark > 0.0 && config_.low_watermark < 1.0)
      << " low_watermark must be in (0, 1)";
  AD_CHECK_LE(config_.min_offset, config_.max_offset);
  window_.reserve(static_cast<size_t>(config_.window));
}

double LatencyController::percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size());
  size_t idx = static_cast<size_t>(std::ceil(rank));
  idx = std::min(std::max<size_t>(idx, 1), values.size());
  return values[idx - 1];
}

core::PruneSettings LatencyController::settings_locked() const {
  core::PruneSettings s = base_;
  for (float& v : s.channel_drop) v += offset_;
  for (float& v : s.spatial_drop) v += offset_;
  for (core::SiteOverride& o : s.site_overrides) {
    o.channel_drop += offset_;
    o.spatial_drop += offset_;
  }
  return s.clamped(config_.max_drop);
}

bool LatencyController::record_batch(
    double batch_latency_ms,
    const core::DynamicPruningEngine::KeepStats& keep, int batch_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  window_.push_back(batch_latency_ms);
  keep_channel_sum_ += keep.mean_channel_keep * batch_size;
  keep_spatial_sum_ += keep.mean_spatial_keep * batch_size;
  keep_samples_ += static_cast<uint64_t>(batch_size);
  if (static_cast<int>(window_.size()) < config_.window) return false;

  last_window_p95_ms_ = percentile(window_, 0.95);
  smoothed_p95_ms_ = smoothed_p95_ms_ == 0.0
                         ? last_window_p95_ms_
                         : 0.5 * smoothed_p95_ms_ + 0.5 * last_window_p95_ms_;
  window_.clear();

  const float before = offset_;
  const double target = config_.target_p95_ms;
  if (last_window_p95_ms_ > target ||
      last_window_p95_ms_ < config_.low_watermark * target) {
    // Proportional step: large misses move fast, near-misses fine-tune.
    const double error =
        std::clamp((last_window_p95_ms_ - target) / target, -1.0, 1.0);
    offset_ += config_.step * static_cast<float>(error);
    offset_ = std::clamp(offset_, config_.min_offset, config_.max_offset);
  }
  return offset_ != before;
}

core::PruneSettings LatencyController::settings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return settings_locked();
}

float LatencyController::offset() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return offset_;
}

double LatencyController::p95_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_window_p95_ms_;
}

double LatencyController::smoothed_p95_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return smoothed_p95_ms_;
}

void LatencyController::reset_keep_summary() {
  std::lock_guard<std::mutex> lock(mutex_);
  keep_channel_sum_ = keep_spatial_sum_ = 0.0;
  keep_samples_ = 0;
}

LatencyController::KeepSummary LatencyController::keep_summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  KeepSummary s;
  s.samples = keep_samples_;
  if (keep_samples_ > 0) {
    s.mean_channel_keep =
        keep_channel_sum_ / static_cast<double>(keep_samples_);
    s.mean_spatial_keep =
        keep_spatial_sum_ / static_cast<double>(keep_samples_);
  }
  return s;
}

}  // namespace antidote::serving
