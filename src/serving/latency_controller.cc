#include "serving/latency_controller.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/error.h"

namespace antidote::serving {

LatencyController::LatencyController(core::PruneSettings base, Config config)
    : config_(config), base_(std::move(base)) {
  AD_CHECK_GT(config_.target_p95_ms, 0.0);
  AD_CHECK_GT(config_.window, 0);
  AD_CHECK_GT(config_.step, 0.f);
  AD_CHECK(config_.low_watermark > 0.0 && config_.low_watermark < 1.0)
      << " low_watermark must be in (0, 1)";
  AD_CHECK_LE(config_.min_offset, config_.max_offset);
  AD_CHECK(config_.recovery_decay >= 0.0 && config_.recovery_decay <= 1.0)
      << " recovery_decay is a per-window fraction";
  // The cost model indexes both ratio vectors by the same block id.
  AD_CHECK_EQ(base_.channel_drop.size(), base_.spatial_drop.size())
      << " per-block drop vectors must be the same length";
  window_.reserve(static_cast<size_t>(config_.window));
}

double LatencyController::percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size());
  size_t idx = static_cast<size_t>(std::ceil(rank));
  idx = std::min(std::max<size_t>(idx, 1), values.size());
  return values[idx - 1];
}

void LatencyController::set_cost_model(CostModel model) {
  std::lock_guard<std::mutex> lock(mutex_);
  cost_model_ = std::move(model);
}

bool LatencyController::has_cost_model() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !cost_model_.empty();
}

double LatencyController::predict_ms(float offset) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return predict_ms_locked(offset);
}

double LatencyController::predict_ms_locked(float offset) const {
  double total = 0.0;
  for (const CostModel::Op& op : cost_model_.ops) {
    if (op.prune_block < 0 ||
        op.prune_block >= static_cast<int>(base_.channel_drop.size())) {
      total += op.ms;
      continue;
    }
    const size_t b = static_cast<size_t>(op.prune_block);
    const float ch =
        std::clamp(base_.channel_drop[b] + offset, 0.f, config_.max_drop);
    double keep = 1.0 - ch;
    if (op.spatial) {
      const float sp =
          std::clamp(base_.spatial_drop[b] + offset, 0.f, config_.max_drop);
      keep *= 1.0 - sp;
    }
    // Grouped execution: cost scales with the critical-path worker's
    // group dispatches x compacted size (groups run concurrently, so the
    // group term is a max over workers, not a sum over groups). Rescale
    // the raw measured time from the units it was observed at to the
    // hypothesized keep x observed group-cost fraction.
    const double measured =
        op.measured_units > 1e-4 ? op.measured_units : 1.0;
    total += op.ms * (keep * op.group_frac) / measured;
  }
  return total;
}

float LatencyController::solve_offset_locked(double calibration) const {
  // predict is monotone nonincreasing in the offset, so bisect for the
  // smallest offset whose calibrated prediction meets the budget (prune
  // no harder than the budget demands).
  const double target = config_.target_p95_ms;
  float lo = config_.min_offset, hi = config_.max_offset;
  if (calibration * predict_ms_locked(hi) > target) return hi;
  if (calibration * predict_ms_locked(lo) <= target) return lo;
  for (int i = 0; i < 40; ++i) {
    const float mid = 0.5f * (lo + hi);
    if (calibration * predict_ms_locked(mid) <= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

core::PruneSettings LatencyController::settings_locked() const {
  core::PruneSettings s = base_;
  for (float& v : s.channel_drop) v += offset_;
  for (float& v : s.spatial_drop) v += offset_;
  for (core::SiteOverride& o : s.site_overrides) {
    o.channel_drop += offset_;
    o.spatial_drop += offset_;
  }
  return s.clamped(config_.max_drop);
}

bool LatencyController::record_batch(
    double batch_latency_ms,
    const core::DynamicPruningEngine::KeepStats& keep, int batch_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  window_.push_back(batch_latency_ms);
  keep_channel_sum_ += keep.mean_channel_keep * batch_size;
  keep_spatial_sum_ += keep.mean_spatial_keep * batch_size;
  keep_samples_ += static_cast<uint64_t>(batch_size);
  if (static_cast<int>(window_.size()) < config_.window) return false;

  last_window_p95_ms_ = percentile(window_, 0.95);
  smoothed_p95_ms_ = smoothed_p95_ms_ == 0.0
                         ? last_window_p95_ms_
                         : 0.5 * smoothed_p95_ms_ + 0.5 * last_window_p95_ms_;
  window_.clear();

  const float before = offset_;
  const double bias_before = coarsen_mac_bias_;
  const double target = config_.target_p95_ms;
  // Coarsening pressure moves with the same window decision as the drop
  // offset: over budget, lower the MAC bias so union-added MACs look
  // cheaper to the plan's coarsener (merge harder, fewer group
  // dispatches); comfortably under, relax back toward the neutral 1.0.
  // The bias never exceeds neutral — above 1.0 it would veto merges the
  // honest latency model already predicts as wins.
  if (last_window_p95_ms_ > target) {
    coarsen_mac_bias_ = std::max(0.25, coarsen_mac_bias_ * 0.75);
  } else if (last_window_p95_ms_ < config_.low_watermark * target) {
    coarsen_mac_bias_ = std::min(1.0, coarsen_mac_bias_ / 0.75);
  }
  float proposed = before;
  if (last_window_p95_ms_ > target ||
      last_window_p95_ms_ < config_.low_watermark * target) {
    const double predicted =
        cost_model_.empty() ? 0.0 : predict_ms_locked(offset_);
    if (predicted > 0.0) {
      // Cost-model inversion: calibrate the model against the realized
      // p95 (absorbing batching/queueing overhead the per-op timings miss)
      // and jump to the smallest offset whose prediction meets the budget.
      proposed = solve_offset_locked(last_window_p95_ms_ / predicted);
    } else {
      // Proportional step: large misses move fast, near-misses fine-tune.
      const double error =
          std::clamp((last_window_p95_ms_ - target) / target, -1.0, 1.0);
      proposed = before + config_.step * static_cast<float>(error);
    }
    proposed = std::clamp(proposed, config_.min_offset, config_.max_offset);
  }

  const uint64_t sheds = sheds_pending_.exchange(0, std::memory_order_relaxed);
  if (sheds > 0) {
    // Anti-windup: admission control shed load during this window, so the
    // queue — not the model — is saturated and the realized p95 overstates
    // what pruning can fix. Tightening further would wind the integrator
    // to max_offset and destroy accuracy without clearing the overload;
    // hold the offset (relaxing is still allowed).
    shedding_active_ = true;
    offset_ = std::min(proposed, before);
  } else if (shedding_active_) {
    // Recovery: the attack stopped. Glide toward the normal decision
    // instead of jumping, so the post-attack relaxation cannot overshoot
    // into a new overload; back to full-speed control once p95 re-enters
    // the band.
    offset_ = before +
              static_cast<float>(config_.recovery_decay) * (proposed - before);
    const bool in_band = last_window_p95_ms_ <= target &&
                         last_window_p95_ms_ >= config_.low_watermark * target;
    if (in_band) shedding_active_ = false;
  } else {
    offset_ = proposed;
  }
  return offset_ != before || coarsen_mac_bias_ != bias_before;
}

bool LatencyController::shedding_active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shedding_active_;
}

double LatencyController::predicted_request_cost_ms(int max_batch,
                                                    int workers) const {
  AD_CHECK_GT(max_batch, 0);
  AD_CHECK_GT(workers, 0);
  std::lock_guard<std::mutex> lock(mutex_);
  // Per-batch cost spread over a full batch and the worker pool: the
  // steady-state marginal cost of one more queued request.
  const double per_slot = static_cast<double>(max_batch) * workers;
  if (!cost_model_.empty()) {
    const double batch_ms = predict_ms_locked(offset_);
    if (batch_ms > 0.0) return batch_ms / per_slot;
  }
  return smoothed_p95_ms_ / per_slot;  // 0 before the first window closes
}

double LatencyController::coarsen_mac_bias() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return coarsen_mac_bias_;
}

core::PruneSettings LatencyController::settings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return settings_locked();
}

float LatencyController::offset() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return offset_;
}

double LatencyController::p95_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_window_p95_ms_;
}

double LatencyController::smoothed_p95_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return smoothed_p95_ms_;
}

void LatencyController::reset_keep_summary() {
  std::lock_guard<std::mutex> lock(mutex_);
  keep_channel_sum_ = keep_spatial_sum_ = 0.0;
  keep_samples_ = 0;
}

LatencyController::KeepSummary LatencyController::keep_summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  KeepSummary s;
  s.samples = keep_samples_;
  if (keep_samples_ > 0) {
    s.mean_channel_keep =
        keep_channel_sum_ / static_cast<double>(keep_samples_);
    s.mean_spatial_keep =
        keep_spatial_sum_ / static_cast<double>(keep_samples_);
  }
  return s;
}

}  // namespace antidote::serving
