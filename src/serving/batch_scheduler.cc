#include "serving/batch_scheduler.h"

#include <cstring>
#include <utility>

#include "base/error.h"
#include "base/timer.h"
#include "plan/plan.h"

namespace antidote::serving {

namespace {

// Distills a plan's measured per-op timings into the controller's cost
// model: prunable conv steps carry the block whose drop ratios scale
// them, everything else is fixed cost.
LatencyController::CostModel cost_model_from_plan(
    const plan::InferencePlan& plan) {
  LatencyController::CostModel model;
  model.ops.reserve(plan.ops().size());
  for (const plan::OpCost& c : plan.cost_snapshot()) {
    LatencyController::CostModel::Op op;
    op.ms = c.ewma_ms;
    op.group_frac = c.group_frac;
    op.measured_units = c.measured_units;
    op.prune_block = c.prune_block;
    op.spatial = c.prune_spatial;
    op.bytes_per_mac = c.bytes_per_mac;
    model.ops.push_back(op);
  }
  return model;
}

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

int argmax_row(const float* row, int n) {
  int best = 0;
  for (int i = 1; i < n; ++i) {
    if (row[i] > row[best]) best = i;
  }
  return best;
}

}  // namespace

ModelReplica::ModelReplica(std::unique_ptr<models::ConvNet> net,
                           const std::optional<core::PruneSettings>& prune)
    : net_(std::move(net)) {
  AD_CHECK(net_ != nullptr) << " replica needs a model";
  net_->set_training(false);
  if (prune.has_value()) {
    engine_ = std::make_unique<core::DynamicPruningEngine>(*net_, *prune);
  }
}

ModelReplica::~ModelReplica() {
  if (engine_) engine_->remove();
}

BatchScheduler::BatchScheduler(
    RequestQueue& queue, BatchPolicy policy,
    std::vector<std::unique_ptr<ModelReplica>> replicas, ServerStats& stats,
    LatencyController* controller, std::function<void()> on_settings_changed)
    : queue_(&queue),
      policy_(policy),
      replicas_(std::move(replicas)),
      stats_(&stats),
      controller_(controller),
      on_settings_changed_(std::move(on_settings_changed)) {
  AD_CHECK_GT(policy_.max_batch, 0);
  AD_CHECK_GT(policy_.num_workers, 0);
  AD_CHECK_EQ(static_cast<int>(replicas_.size()), policy_.num_workers)
      << " one replica per worker";
  if (controller_ != nullptr) {
    for (auto& r : replicas_) {
      AD_CHECK(r->engine() != nullptr)
          << " latency control needs pruning engines on every replica";
    }
  }
}

BatchScheduler::~BatchScheduler() {
  queue_->close();
  join();
}

void BatchScheduler::start() {
  AD_CHECK(!started_) << " scheduler already started";
  started_ = true;
  workers_.reserve(replicas_.size());
  for (int i = 0; i < static_cast<int>(replicas_.size()); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void BatchScheduler::join() {
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void BatchScheduler::worker_loop(int worker_index) {
  ModelReplica& replica = *replicas_[static_cast<size_t>(worker_index)];
  std::vector<InferenceRequest> batch;
  batch.reserve(static_cast<size_t>(policy_.max_batch));
  while (true) {
    InferenceRequest first;
    if (!queue_->pop(first)) break;  // closed and drained
    stats_->record_queue_depth(queue_->depth());
    // Dead on arrival at the worker: a request whose deadline passed while
    // it sat in the queue would only burn a batch slot producing an answer
    // nobody can use — answer it unexecuted and move on. Under a burst
    // attack this is what keeps stale backlog from starving live traffic.
    if (expire_if_dead(first)) continue;
    const Clock::time_point opened = Clock::now();
    batch.clear();
    batch.push_back(std::move(first));
    const Clock::time_point hold_until = opened + policy_.max_wait;
    while (static_cast<int>(batch.size()) < policy_.max_batch) {
      InferenceRequest next;
      if (!queue_->pop_until(next, hold_until)) break;
      if (expire_if_dead(next)) continue;
      batch.push_back(std::move(next));
    }
    try {
      run_batch(worker_index, replica, batch);
    } catch (...) {
      // A bad batch (e.g. mismatched input shapes) must not take the
      // worker down: fail that batch's promises and keep serving.
      // run_batch fulfills promises only as its last step, so on any
      // throw every promise in the batch is still unsatisfied.
      for (InferenceRequest& req : batch) {
        req.promise.set_exception(std::current_exception());
      }
    }
  }
}

bool BatchScheduler::expire_if_dead(InferenceRequest& req) {
  const Clock::time_point now = Clock::now();
  if (!req.deadline.has_value() || now <= *req.deadline) return false;
  InferenceResult result;
  result.predicted = -1;
  result.ticket = req.ticket;
  result.batch_size = 0;
  result.queue_ms = ms_between(req.enqueue_time, now);
  result.deadline_missed = true;
  result.expired_unexecuted = true;
  // An expired request is both a deadline miss (the caller-visible flag)
  // and, distinctly, never executed.
  stats_->record_deadline_miss(1);
  stats_->record_expired_unexecuted(1);
  req.promise.set_value(std::move(result));
  return true;
}

void BatchScheduler::run_batch(int worker_index, ModelReplica& replica,
                               std::vector<InferenceRequest>& batch) {
  const int n = static_cast<int>(batch.size());
  const Clock::time_point dispatch = Clock::now();

  // Pick up any controller decision posted since the last batch.
  if (replica.engine() != nullptr) {
    replica.engine()->apply_pending_settings();
  }
  // Same for the controller's coarsening pressure: the MAC bias reaches
  // the replica's plan through the sticky model policy (so it survives
  // recompiles), unless the operator turned coarsening off for this
  // replica. Cheap per batch — one mutexed read and an idempotent store.
  if (controller_ != nullptr) {
    // plan == nullptr only before the first batch compiles it; skip then
    // rather than guess the mode and stomp an operator's --coarsen=off.
    const plan::InferencePlan* plan = replica.plan();
    if (plan != nullptr &&
        plan->coarsen().mode == plan::CoarsenMode::kAuto) {
      replica.net().set_coarsen_policy(
          {plan::CoarsenMode::kAuto, controller_->coarsen_mac_bias()});
    }
  }

  WallTimer assemble_timer;
  const Shape& sample_shape = batch[0].input.shape();
  Shape batch_shape;
  batch_shape.push_back(n);
  for (int d : sample_shape) batch_shape.push_back(d);
  // The batch tensor, every layer intermediate and the logits all live in
  // the worker's arena; begin_pass() recycles it wholesale, so a warm
  // worker serves without touching the heap. The logits are copied into
  // per-request results below, before the next pass invalidates them.
  nn::ExecutionContext& ctx = replica.context();
  ctx.begin_pass();
  Tensor stacked = ctx.alloc(batch_shape);
  const int64_t sample_size = batch[0].input.size();
  for (int i = 0; i < n; ++i) {
    AD_CHECK(batch[static_cast<size_t>(i)].input.same_shape(batch[0].input))
        << " all requests in a batch must share the input shape";
    std::memcpy(stacked.data() + i * sample_size,
                batch[static_cast<size_t>(i)].input.data(),
                static_cast<size_t>(sample_size) * sizeof(float));
  }
  const double assemble_ms = assemble_timer.millis();

  WallTimer forward_timer;
  Tensor logits = replica.net().forward(stacked, ctx);
  const double forward_ms = forward_timer.millis();
  AD_CHECK_EQ(logits.dim(0), n) << " model output batch dimension";
  const int num_classes = static_cast<int>(logits.size() / n);

  core::DynamicPruningEngine::KeepStats keep;
  if (replica.engine() != nullptr) {
    keep = replica.engine()->last_keep_stats();
  }

  WallTimer scatter_timer;
  const Clock::time_point done = Clock::now();
  std::vector<InferenceResult> results(static_cast<size_t>(n));
  double queue_wait_sum_ms = 0.0;
  int misses = 0;
  for (int i = 0; i < n; ++i) {
    const InferenceRequest& req = batch[static_cast<size_t>(i)];
    InferenceResult& result = results[static_cast<size_t>(i)];
    result.logits = Tensor({num_classes});
    std::memcpy(result.logits.data(), logits.data() + i * num_classes,
                static_cast<size_t>(num_classes) * sizeof(float));
    result.predicted = argmax_row(result.logits.data(), num_classes);
    result.ticket = req.ticket;
    result.batch_size = n;
    result.queue_ms = ms_between(req.enqueue_time, dispatch);
    result.batch_ms = ms_between(dispatch, done);
    result.deadline_missed = req.deadline.has_value() && done > *req.deadline;
    queue_wait_sum_ms += result.queue_ms;
    // Per-request latency distributions (lock-free histogram buckets):
    // e2e is everything from enqueue to batch completion.
    stats_->record_request(result.queue_ms,
                           result.queue_ms + result.batch_ms);
    if (result.deadline_missed) ++misses;
  }
  const double scatter_ms = scatter_timer.millis();

  stats_->record_batch(n, queue_wait_sum_ms / n, assemble_ms, forward_ms,
                       scatter_ms);
  // Arena high-water mark after the pass: on a warm replica this is flat
  // batch over batch (zero growths), and under tiled lowering it stays
  // bounded even at 224x224 inputs — the snapshot surfaces both.
  stats_->record_arena_bytes(worker_index,
                             replica.context().workspace().capacity_bytes());
  if (misses > 0) stats_->record_deadline_miss(misses);
  if (const plan::InferencePlan* plan = replica.plan()) {
    // Requests whose masks the executor clamped to the compute cap this
    // pass (max over ops: a request capped anywhere counts once).
    if (const int capped = plan->last_capped_samples(); capped > 0) {
      stats_->record_capped(capped);
    }
    // Distinct-mask group count of the pass (how many compacted GEMM
    // problems the dynamic masks quantized into) — the grouping win the
    // batch actually realized.
    if (const int groups = plan->last_mask_groups(); groups > 0) {
      stats_->record_mask_groups(groups, n);
      // Coarsening outcome of the same pass: how many exact-identity
      // buckets the union merges collapsed, and the extra-MAC overhead
      // the merged schedule accepted for it.
      stats_->record_coarsen(plan->last_mask_groups_raw(), groups,
                             plan->last_coarsen_extra_mac_frac());
    }
  }

  if (controller_ != nullptr) {
    // Periodically refresh the controller's latency model with the plan's
    // measured per-op timings. The controller only consumes it when a
    // control window closes and the timings are EWMA-smoothed anyway, so
    // a per-worker cadence (seeded on the first batch) keeps the
    // snapshot+lock cost off the per-batch path.
    thread_local int64_t batches_since_refresh = 0;
    if (batches_since_refresh++ % 8 == 0) {
      if (const plan::InferencePlan* plan = replica.plan()) {
        controller_->set_cost_model(cost_model_from_plan(*plan));
      }
    }
    const double batch_latency_ms = assemble_ms + forward_ms + scatter_ms;
    if (controller_->record_batch(batch_latency_ms, keep, n) &&
        on_settings_changed_) {
      on_settings_changed_();
    }
  }

  // Fulfill promises last: a ready future therefore implies the batch is
  // already visible in stats and controller state.
  for (int i = 0; i < n; ++i) {
    batch[static_cast<size_t>(i)].promise.set_value(
        std::move(results[static_cast<size_t>(i)]));
  }
}

}  // namespace antidote::serving
