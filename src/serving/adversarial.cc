#include "serving/adversarial.h"

#include <cmath>

#include "base/error.h"

namespace antidote::serving {

AdversarialProfile adversarial_profile_from_name(const std::string& name) {
  if (name == "off") return AdversarialProfile::kOff;
  if (name == "masks") return AdversarialProfile::kMasks;
  if (name == "compute") return AdversarialProfile::kCompute;
  if (name == "burst") return AdversarialProfile::kBurst;
  if (name == "mixed") return AdversarialProfile::kMixed;
  AD_CHECK(false) << " unknown adversarial profile '" << name
                  << "' (off|masks|compute|burst|mixed)";
  return AdversarialProfile::kOff;
}

const char* adversarial_profile_name(AdversarialProfile profile) {
  switch (profile) {
    case AdversarialProfile::kOff: return "off";
    case AdversarialProfile::kMasks: return "masks";
    case AdversarialProfile::kCompute: return "compute";
    case AdversarialProfile::kBurst: return "burst";
    case AdversarialProfile::kMixed: return "mixed";
  }
  return "off";
}

AdversarialGenerator::AdversarialGenerator(int channels, int height,
                                           int width,
                                           AdversarialProfile profile,
                                           uint64_t seed)
    : c_(channels), h_(height), w_(width), profile_(profile), rng_(seed) {
  AD_CHECK_GT(channels, 0);
  AD_CHECK_GT(height, 0);
  AD_CHECK_GT(width, 0);
}

AdversarialProfile AdversarialGenerator::next_profile() const {
  if (profile_ != AdversarialProfile::kMixed) return profile_;
  // Cycle the three attacks so a sustained mixed load exercises mask
  // diversity, compute inflation and queue saturation simultaneously.
  switch (count_ % 3) {
    case 0: return AdversarialProfile::kMasks;
    case 1: return AdversarialProfile::kCompute;
    default: return AdversarialProfile::kBurst;
  }
}

Tensor AdversarialGenerator::next_input() {
  const AdversarialProfile p = next_profile();
  ++count_;
  // Fork per request: the input stream stays deterministic in the call
  // index no matter how many draws each profile consumes.
  Rng req = rng_.fork();
  switch (p) {
    case AdversarialProfile::kMasks:
      return make_masks_input(req);
    case AdversarialProfile::kCompute:
      return make_compute_input(req);
    default:
      // burst/off: the attack is the arrival pattern, not the content.
      return Tensor::randn({c_, h_, w_}, req);
  }
}

Tensor AdversarialGenerator::make_masks_input(Rng& rng) {
  // Attention gates rank channels (and rows) by feature energy; a random
  // magnitude permutation per request gives every sample its own rank
  // order, so hard top-k selects a different kept set almost every time —
  // the worst case for mask grouping (every sample a group of one) and
  // for union coarsening (unions blow up, merges decline).
  Tensor x = Tensor::randn({c_, h_, w_}, rng);
  const std::vector<int> ch_rank = rng.permutation(c_);
  const std::vector<int> row_rank = rng.permutation(h_);
  const int64_t plane = static_cast<int64_t>(h_) * w_;
  float* d = x.data();
  for (int c = 0; c < c_; ++c) {
    const float ch_scale =
        c_ > 1 ? 0.25f + 3.0f * static_cast<float>(ch_rank[c]) /
                             static_cast<float>(c_ - 1)
               : 1.0f;
    for (int r = 0; r < h_; ++r) {
      const float row_scale =
          h_ > 1 ? 0.5f + 1.5f * static_cast<float>(row_rank[r]) /
                              static_cast<float>(h_ - 1)
                 : 1.0f;
      float* row = d + c * plane + static_cast<int64_t>(r) * w_;
      for (int col = 0; col < w_; ++col) row[col] *= ch_scale * row_scale;
    }
  }
  return x;
}

Tensor AdversarialGenerator::make_compute_input(Rng& rng) {
  // Every channel and position carries uniformly high energy, so no
  // ordering the gate picks can find cheap channels to drop — combined
  // with relaxed controller settings (the drip pacing's job) this is the
  // maximum-kept-MAC request the compute cap clamps.
  Tensor x = Tensor::randn({c_, h_, w_}, rng);
  float* d = x.data();
  for (int64_t i = 0; i < x.size(); ++i) {
    d[i] = 1.0f + 2.0f * std::fabs(d[i]);
  }
  return x;
}

AdversarialPacing AdversarialGenerator::pacing(size_t queue_capacity) const {
  AdversarialPacing p;
  switch (next_profile()) {
    case AdversarialProfile::kBurst:
      // One coordinated volley of ~queue capacity, then silence: the
      // volley overwhelms admission (sheds/rejections) and the backlog's
      // deadlines expire before workers reach them.
      p.open_loop = true;
      p.burst = static_cast<int>(queue_capacity > 0 ? queue_capacity : 16);
      p.gap = std::chrono::microseconds(5000);
      break;
    case AdversarialProfile::kCompute:
      // Slow drip: enough idle time that the controller sees a loose
      // budget and relaxes toward keep-everything before the next
      // expensive request lands.
      p.gap = std::chrono::microseconds(2000);
      break;
    default:
      break;  // masks/off: closed-loop, no gap
  }
  return p;
}

}  // namespace antidote::serving
