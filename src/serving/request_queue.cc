#include "serving/request_queue.h"

#include <utility>

#include "base/error.h"

namespace antidote::serving {

RequestQueue::RequestQueue(size_t capacity) : queue_(capacity) {}

InferenceRequest RequestQueue::make_request(
    Tensor input, std::optional<Clock::time_point> deadline) {
  AD_CHECK_EQ(input.ndim(), 3) << " requests carry one [C,H,W] sample";
  InferenceRequest req;
  req.input = std::move(input);
  req.ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  req.enqueue_time = Clock::now();
  req.deadline = deadline;
  return req;
}

std::future<InferenceResult> RequestQueue::submit(
    Tensor input, std::optional<Clock::time_point> deadline) {
  InferenceRequest req = make_request(std::move(input), deadline);
  std::future<InferenceResult> future = req.promise.get_future();
  if (!queue_.push(std::move(req))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::future<InferenceResult> RequestQueue::try_submit(
    Tensor input, std::optional<Clock::time_point> deadline) {
  InferenceRequest req = make_request(std::move(input), deadline);
  std::future<InferenceResult> future = req.promise.get_future();
  if (!queue_.try_push(std::move(req))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

uint64_t RequestQueue::submitted() const {
  return submitted_.load(std::memory_order_relaxed);
}

uint64_t RequestQueue::rejected() const {
  return rejected_.load(std::memory_order_relaxed);
}

}  // namespace antidote::serving
