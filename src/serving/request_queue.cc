#include "serving/request_queue.h"

#include <utility>

#include "base/error.h"

namespace antidote::serving {

RequestQueue::RequestQueue(size_t capacity) : queue_(capacity) {}

void RequestQueue::configure_admission(AdmissionConfig config,
                                       std::function<double()> cost_ms) {
  AD_CHECK_GT(config.max_queue_ms, 0.0);
  std::lock_guard<std::mutex> lock(admission_mutex_);
  admission_ = config;
  admission_cost_ms_ = std::move(cost_ms);
}

bool RequestQueue::admission_refuses() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  if (!admission_.enabled || !admission_cost_ms_) return false;
  const double cost = admission_cost_ms_();
  if (cost <= 0.0) return false;  // no latency signal yet: admit
  // Predicted time to drain everything already queued plus this request.
  const double drain_ms = static_cast<double>(queue_.size() + 1) * cost;
  return drain_ms > admission_.max_queue_ms;
}

InferenceRequest RequestQueue::make_request(
    Tensor input, std::optional<Clock::time_point> deadline) {
  AD_CHECK_EQ(input.ndim(), 3) << " requests carry one [C,H,W] sample";
  InferenceRequest req;
  req.input = std::move(input);
  req.ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  req.enqueue_time = Clock::now();
  req.deadline = deadline;
  return req;
}

std::future<InferenceResult> RequestQueue::submit(
    Tensor input, std::optional<Clock::time_point> deadline,
    SubmitStatus* status) {
  if (admission_refuses()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    report(status, SubmitStatus::kShed);
    return {};
  }
  InferenceRequest req = make_request(std::move(input), deadline);
  std::future<InferenceResult> future = req.promise.get_future();
  if (!queue_.push(std::move(req))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    report(status, SubmitStatus::kClosed);
    return {};
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  report(status, SubmitStatus::kAccepted);
  return future;
}

std::future<InferenceResult> RequestQueue::try_submit(
    Tensor input, std::optional<Clock::time_point> deadline,
    SubmitStatus* status) {
  if (admission_refuses()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    report(status, SubmitStatus::kShed);
    return {};
  }
  InferenceRequest req = make_request(std::move(input), deadline);
  std::future<InferenceResult> future = req.promise.get_future();
  if (!queue_.try_push(std::move(req))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    report(status,
           closed() ? SubmitStatus::kClosed : SubmitStatus::kRejected);
    return {};
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  report(status, SubmitStatus::kAccepted);
  return future;
}

uint64_t RequestQueue::submitted() const {
  return submitted_.load(std::memory_order_relaxed);
}

uint64_t RequestQueue::rejected() const {
  return rejected_.load(std::memory_order_relaxed);
}

uint64_t RequestQueue::shed() const {
  return shed_.load(std::memory_order_relaxed);
}

}  // namespace antidote::serving
