// ServerStats — counters the serving runtime accumulates while it runs:
// throughput, queue depth, a batch-size histogram, per-stage timings
// (queue wait, batch assembly, forward, scatter) and per-request latency
// DISTRIBUTIONS. Stage means survive for cheap stages, but the metrics an
// SLO is written against — queue wait, forward, end-to-end — are tracked
// as log-scale histograms (obs::LatencyHistogram) so snapshot() reports
// p50/p95/p99, not just a mean that hides the tail. Histogram recording is
// lock-free; the remaining counters share a small mutex. snapshot() gives
// a consistent copy and to_table() renders it through base/table.h the
// same way the benches render paper tables.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/table.h"
#include "obs/histogram.h"

namespace antidote::serving {

class ServerStats {
 public:
  explicit ServerStats(int max_batch);

  // One dispatched batch. Stage times are milliseconds; queue_wait_ms is
  // the mean over the batch's requests.
  void record_batch(int batch_size, double queue_wait_ms, double assemble_ms,
                    double forward_ms, double scatter_ms);
  // One completed request's latency pair: time spent queued and total
  // enqueue-to-result time. Lock-free (histogram buckets only) — called
  // per request on the dispatch path, after its batch completes.
  void record_request(double queue_wait_ms, double e2e_ms);
  void record_deadline_miss(int count);
  void record_rejected(int count);
  // Requests refused by cost-aware admission control (predicted queue
  // drain over the budget) — distinct from `rejected`, which counts
  // queue-full backpressure.
  void record_shed(int count);
  // Requests answered without execution because their deadline had
  // already passed when a worker dequeued them.
  void record_expired_unexecuted(int count);
  // Requests whose runtime masks exceeded the per-request compute cap and
  // were clamped by the plan executor (graceful degradation).
  void record_capped(int count);
  // Sampled queue depth (recorded by workers when they pick up work).
  void record_queue_depth(size_t depth);
  // One masked batch's distinct-mask group count (the plan's
  // last_mask_groups): how many compacted GEMM problems the batch's
  // per-sample masks quantized into. Workers skip the call for batches
  // that ran fully dense.
  void record_mask_groups(int groups, int batch_size);
  // One masked batch's union-coarsening outcome: exact-identity bucket
  // count before merging (the plan's last_mask_groups_raw), executed group
  // count after, and the union-added MACs as a fraction of the batch's
  // executed MACs. Workers call it alongside record_mask_groups; batches
  // where coarsening was off or declined report raw == coarsened and a
  // zero overhead fraction.
  void record_coarsen(int raw_groups, int groups, double extra_mac_frac);
  // High-water arena footprint of one replica's workspace (its
  // Workspace::capacity_bytes() after a batch). Workers call it per batch;
  // the stats keep the per-replica maximum, so the snapshot reports what
  // each replica's arena actually grew to — the serving-side check that
  // spatially-tiled lowering keeps high-resolution arenas bounded.
  void record_arena_bytes(int replica, size_t bytes);

  struct Snapshot {
    uint64_t completed_requests = 0;
    uint64_t batches = 0;
    uint64_t deadline_misses = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;                // admission-control refusals
    uint64_t expired_unexecuted = 0;  // dead on dequeue, never executed
    uint64_t capped_requests = 0;     // masks clamped to the compute cap
    double elapsed_s = 0.0;           // since construction / reset
    double throughput_rps = 0.0;      // completed / elapsed
    double mean_batch_size = 0.0;
    double mean_queue_depth = 0.0;
    double mean_queue_wait_ms = 0.0;
    double mean_assemble_ms = 0.0;
    double mean_forward_ms = 0.0;
    double mean_scatter_ms = 0.0;
    // Latency percentiles (log-bucket representatives, +/-9.1% relative).
    // queue/e2e are per REQUEST; forward is per BATCH.
    double queue_wait_p50_ms = 0.0;
    double queue_wait_p95_ms = 0.0;
    double queue_wait_p99_ms = 0.0;
    double forward_p50_ms = 0.0;
    double forward_p95_ms = 0.0;
    double forward_p99_ms = 0.0;
    double e2e_p50_ms = 0.0;
    double e2e_p95_ms = 0.0;
    double e2e_p99_ms = 0.0;
    // deadline_misses / completed_requests, as a percentage.
    double deadline_miss_rate_pct = 0.0;
    // Offered load = completed + expired + rejected + shed; the overload
    // rates below are percentages of it, so shedding under attack is
    // visible even though shed requests never complete.
    uint64_t offered_requests = 0;
    double shed_rate_pct = 0.0;     // shed / offered
    double expired_rate_pct = 0.0;  // expired_unexecuted / offered
    // capped_requests / completed (capped requests still execute).
    double capped_rate_pct = 0.0;
    // Mask-grouped execution: over masked batches, the mean distinct-mask
    // group count and the mean group fraction (groups / batch size) — 1.0
    // means every sample drew a unique mask (no grouping win), values
    // near 1/batch mean the whole batch collapsed into one GEMM.
    uint64_t masked_batches = 0;
    double mean_mask_groups = 0.0;
    double mean_group_fraction = 0.0;
    // Similar-mask union coarsening, over the masked batches that reported
    // a coarsening outcome: batches where merges actually happened, the
    // mean pre-merge (exact-identity) group count, the mean post-merge
    // executed group count, and the mean union-added MAC overhead as a
    // percentage of executed MACs.
    uint64_t coarsened_batches = 0;
    double mean_raw_mask_groups = 0.0;
    double mean_coarsened_groups = 0.0;
    double mean_coarsen_extra_mac_pct = 0.0;
    // Per-replica peak arena bytes (workspace high-water mark). Indexed by
    // replica/worker id; empty until the first batch reports.
    std::vector<uint64_t> replica_arena_bytes;
    // histogram[i] = number of batches of size i+1.
    std::vector<uint64_t> batch_size_histogram;
  };
  Snapshot snapshot() const;

  // Restarts the throughput clock and zeroes every counter (used between a
  // warm-up phase and the measured phase of a load run).
  void reset();

  // Two-column summary table plus the batch-size histogram rows.
  Table to_table() const;

 private:
  const int max_batch_;
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point start_;
  uint64_t completed_ = 0;
  uint64_t batches_ = 0;
  uint64_t deadline_misses_ = 0;
  uint64_t rejected_ = 0;
  uint64_t shed_ = 0;
  uint64_t expired_unexecuted_ = 0;
  uint64_t capped_requests_ = 0;
  double queue_depth_sum_ = 0.0;
  uint64_t queue_depth_samples_ = 0;
  double queue_wait_ms_sum_ = 0.0;
  double assemble_ms_sum_ = 0.0;
  double forward_ms_sum_ = 0.0;
  double scatter_ms_sum_ = 0.0;
  uint64_t masked_batches_ = 0;
  double mask_group_sum_ = 0.0;
  double group_fraction_sum_ = 0.0;
  uint64_t coarsen_batches_ = 0;    // masked batches reporting an outcome
  uint64_t coarsen_merged_ = 0;     // of those, batches with raw > groups
  double raw_group_sum_ = 0.0;
  double coarsened_group_sum_ = 0.0;
  double coarsen_extra_mac_sum_ = 0.0;
  std::vector<uint64_t> arena_bytes_;  // per-replica peak workspace bytes
  std::vector<uint64_t> histogram_;
  // Lock-free latency distributions (recorded outside mutex_).
  obs::LatencyHistogram queue_wait_hist_;
  obs::LatencyHistogram forward_hist_;
  obs::LatencyHistogram e2e_hist_;
};

}  // namespace antidote::serving
