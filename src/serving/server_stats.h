// ServerStats — counters the serving runtime accumulates while it runs:
// throughput, queue depth, a batch-size histogram, and per-stage timings
// (queue wait, batch assembly, forward, scatter). Workers record with
// atomics / a small mutex so the hot path stays cheap; snapshot() gives a
// consistent copy and to_table() renders it through base/table.h the same
// way the benches render paper tables.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/table.h"

namespace antidote::serving {

class ServerStats {
 public:
  explicit ServerStats(int max_batch);

  // One dispatched batch. Stage times are milliseconds; queue_wait_ms is
  // the mean over the batch's requests.
  void record_batch(int batch_size, double queue_wait_ms, double assemble_ms,
                    double forward_ms, double scatter_ms);
  void record_deadline_miss(int count);
  void record_rejected(int count);
  // Sampled queue depth (recorded by workers when they pick up work).
  void record_queue_depth(size_t depth);
  // One masked batch's distinct-mask group count (the plan's
  // last_mask_groups): how many compacted GEMM problems the batch's
  // per-sample masks quantized into. Workers skip the call for batches
  // that ran fully dense.
  void record_mask_groups(int groups, int batch_size);

  struct Snapshot {
    uint64_t completed_requests = 0;
    uint64_t batches = 0;
    uint64_t deadline_misses = 0;
    uint64_t rejected = 0;
    double elapsed_s = 0.0;           // since construction / reset
    double throughput_rps = 0.0;      // completed / elapsed
    double mean_batch_size = 0.0;
    double mean_queue_depth = 0.0;
    double mean_queue_wait_ms = 0.0;
    double mean_assemble_ms = 0.0;
    double mean_forward_ms = 0.0;
    double mean_scatter_ms = 0.0;
    // Mask-grouped execution: over masked batches, the mean distinct-mask
    // group count and the mean group fraction (groups / batch size) — 1.0
    // means every sample drew a unique mask (no grouping win), values
    // near 1/batch mean the whole batch collapsed into one GEMM.
    uint64_t masked_batches = 0;
    double mean_mask_groups = 0.0;
    double mean_group_fraction = 0.0;
    // histogram[i] = number of batches of size i+1.
    std::vector<uint64_t> batch_size_histogram;
  };
  Snapshot snapshot() const;

  // Restarts the throughput clock and zeroes every counter (used between a
  // warm-up phase and the measured phase of a load run).
  void reset();

  // Two-column summary table plus the batch-size histogram rows.
  Table to_table() const;

 private:
  const int max_batch_;
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point start_;
  uint64_t completed_ = 0;
  uint64_t batches_ = 0;
  uint64_t deadline_misses_ = 0;
  uint64_t rejected_ = 0;
  double queue_depth_sum_ = 0.0;
  uint64_t queue_depth_samples_ = 0;
  double queue_wait_ms_sum_ = 0.0;
  double assemble_ms_sum_ = 0.0;
  double forward_ms_sum_ = 0.0;
  double scatter_ms_sum_ = 0.0;
  uint64_t masked_batches_ = 0;
  double mask_group_sum_ = 0.0;
  double group_fraction_sum_ = 0.0;
  std::vector<uint64_t> histogram_;
};

}  // namespace antidote::serving
