#include "core/trainer.h"

#include "base/error.h"
#include "base/logging.h"
#include "tensor/ops.h"

namespace antidote::core {

namespace {
std::unique_ptr<nn::LrSchedule> make_schedule(const TrainConfig& cfg,
                                              int total_epochs) {
  if (cfg.cosine) {
    return std::make_unique<nn::CosineSchedule>(cfg.base_lr, total_epochs,
                                                cfg.final_lr);
  }
  return std::make_unique<nn::ConstantSchedule>(cfg.base_lr);
}

std::optional<data::AugmentConfig> make_augment(const TrainConfig& cfg) {
  if (!cfg.augment) return std::nullopt;
  data::AugmentConfig a;
  a.pad = cfg.augment_pad;
  a.hflip = cfg.augment_hflip;
  return a;
}
}  // namespace

Trainer::Trainer(models::ConvNet& net, const data::Dataset& train_data,
                 TrainConfig config)
    : net_(&net),
      config_(config),
      loader_(train_data, config.batch_size, /*shuffle=*/true, config.seed,
              make_augment(config)),
      sgd_(net.parameters(),
           nn::SgdOptions{config.base_lr, config.momentum,
                          config.weight_decay, config.nesterov}),
      schedule_(make_schedule(config, config.epochs)) {
  AD_CHECK_GT(config.epochs, 0);
}

void Trainer::extend_schedule(int total_epochs) {
  AD_CHECK_GT(total_epochs, 0);
  schedule_ = make_schedule(config_, total_epochs);
}

EpochStats Trainer::run_epoch() {
  net_->set_training(true);
  const double lr = schedule_->lr(epoch_);
  sgd_.set_lr(lr);

  double loss_sum = 0.0, correct = 0.0;
  int samples = 0;
  loader_.new_epoch();
  for (int b = 0; b < loader_.num_batches(); ++b) {
    data::Batch batch = loader_.batch(b);
    sgd_.zero_grad();
    const Tensor logits = net_->forward(batch.images);
    const double batch_loss = loss_.forward(logits, batch.labels);
    net_->backward(loss_.backward());
    sgd_.step();
    if (config_.post_step) config_.post_step();

    loss_sum += batch_loss * batch.size();
    correct += ops::accuracy(logits, batch.labels) * batch.size();
    samples += batch.size();
  }

  EpochStats stats;
  stats.epoch = epoch_;
  stats.loss = samples > 0 ? loss_sum / samples : 0.0;
  stats.accuracy = samples > 0 ? correct / samples : 0.0;
  stats.lr = lr;
  if (config_.verbose) {
    AD_LOG(Info) << "epoch " << epoch_ << " lr " << lr << " loss "
                 << stats.loss << " acc " << stats.accuracy;
  }
  ++epoch_;
  return stats;
}

std::vector<EpochStats> Trainer::fit() {
  std::vector<EpochStats> history;
  history.reserve(static_cast<size_t>(config_.epochs));
  for (int e = 0; e < config_.epochs; ++e) {
    history.push_back(run_epoch());
  }
  return history;
}

}  // namespace antidote::core
