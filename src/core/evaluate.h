// Test-set evaluation with FLOPs measurement.
#pragma once

#include <functional>

#include "data/dataset.h"
#include "models/convnet.h"

namespace antidote::core {

struct EvalResult {
  double accuracy = 0.0;
  double mean_loss = 0.0;
  // Mean multiply-accumulates actually executed per sample (reflects any
  // dynamic pruning active during the pass).
  double mean_macs_per_sample = 0.0;
  int samples = 0;
};

// Runs the model in eval mode over the whole dataset (no augmentation, no
// shuffling) and restores the previous training flag afterwards.
// `before_forward(batch_size)`, when provided, runs before every batch —
// static pruning uses it to (re-)install per-batch runtime masks, which
// Conv2d consumes per forward pass.
EvalResult evaluate(
    models::ConvNet& net, const data::Dataset& dataset, int batch_size = 64,
    const std::function<void(int batch_size)>& before_forward = nullptr);

}  // namespace antidote::core
