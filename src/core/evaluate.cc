#include "core/evaluate.h"

#include "data/dataloader.h"
#include "models/flops.h"
#include "nn/execution_context.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace antidote::core {

EvalResult evaluate(models::ConvNet& net, const data::Dataset& dataset,
                    int batch_size,
                    const std::function<void(int)>& before_forward) {
  const bool was_training = net.is_training();
  net.set_training(false);

  data::DataLoader loader(dataset, batch_size, /*shuffle=*/false);
  nn::SoftmaxCrossEntropy loss;
  EvalResult result;
  double correct = 0.0, loss_sum = 0.0, macs_sum = 0.0;

  // Test-phase passes run the compiled InferencePlan out of a local arena
  // (conv+BN+ReLU fused, no per-layer heap traffic). The logits are
  // consumed before the next begin_pass() invalidates them.
  nn::ExecutionContext ctx;
  for (int b = 0; b < loader.num_batches(); ++b) {
    data::Batch batch = loader.batch(b);
    if (before_forward) before_forward(batch.size());
    ctx.begin_pass();
    const Tensor logits = net.forward(batch.images, ctx);
    const double batch_loss = loss.forward(logits, batch.labels);
    correct += ops::accuracy(logits, batch.labels) * batch.size();
    loss_sum += batch_loss * batch.size();
    macs_sum += static_cast<double>(models::read_last_flops(net).total_macs);
    result.samples += batch.size();
  }
  if (result.samples > 0) {
    result.accuracy = correct / result.samples;
    result.mean_loss = loss_sum / result.samples;
    result.mean_macs_per_sample = macs_sum / result.samples;
  }
  net.set_training(was_training);
  return result;
}

}  // namespace antidote::core
