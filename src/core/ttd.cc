#include "core/ttd.h"

#include <algorithm>
#include <cmath>

#include "base/error.h"
#include "base/logging.h"

namespace antidote::core {

namespace {
float max_target_ratio(const PruneSettings& s) {
  float m = 0.f;
  for (float v : s.channel_drop) m = std::max(m, v);
  for (float v : s.spatial_drop) m = std::max(m, v);
  return m;
}
}  // namespace

TtdTrainer::TtdTrainer(models::ConvNet& net, const data::Dataset& train_data,
                       TtdConfig config)
    : net_(&net),
      config_(std::move(config)),
      engine_(net, config_.target.clamped(config_.warmup_ratio)),
      trainer_(net, train_data, config_.train) {
  AD_CHECK_GT(config_.step, 0.f);
  AD_CHECK_GE(config_.min_epochs_per_level, 1);
  AD_CHECK_GE(config_.max_epochs_per_level, config_.min_epochs_per_level);
  AD_CHECK_GE(config_.final_epochs, 0);
  // Size the cosine schedule for the worst-case epoch count.
  const int total = static_cast<int>(ascent_levels().size()) *
                        config_.max_epochs_per_level +
                    config_.final_epochs;
  trainer_.extend_schedule(std::max(1, total));
}

std::vector<float> TtdTrainer::ascent_levels() const {
  std::vector<float> levels;
  const float target_max = max_target_ratio(config_.target);
  float cap = std::min(config_.warmup_ratio, target_max);
  levels.push_back(cap);
  while (cap < target_max) {
    cap = std::min(target_max, cap + config_.step);
    levels.push_back(cap);
  }
  return levels;
}

TtdResult TtdTrainer::run() {
  TtdResult result;
  const std::vector<float> levels = ascent_levels();

  for (size_t li = 0; li < levels.size(); ++li) {
    engine_.apply_settings(config_.target.clamped(levels[li]));

    TtdLevelStats level_stats;
    level_stats.level = static_cast<int>(li);
    level_stats.ratio_cap = levels[li];

    double prev_loss = -1.0;
    for (int e = 0; e < config_.max_epochs_per_level; ++e) {
      const EpochStats stats = trainer_.run_epoch();
      level_stats.epochs.push_back(stats);
      ++result.total_epochs;
      // Converged at this ratio level -> ascend.
      if (e + 1 >= config_.min_epochs_per_level && prev_loss > 0.0) {
        const double improvement = (prev_loss - stats.loss) / prev_loss;
        if (improvement < config_.plateau_tol) break;
      }
      prev_loss = stats.loss;
    }
    AD_LOG(Debug) << "TTD level " << li << " cap " << levels[li] << " loss "
                  << level_stats.epochs.back().loss;
    result.levels.push_back(std::move(level_stats));
  }

  // Consolidation at the full target ratios.
  engine_.apply_settings(config_.target);
  if (config_.final_epochs > 0) {
    TtdLevelStats final_stats;
    final_stats.level = static_cast<int>(levels.size());
    final_stats.ratio_cap = max_target_ratio(config_.target);
    for (int e = 0; e < config_.final_epochs; ++e) {
      final_stats.epochs.push_back(trainer_.run_epoch());
      ++result.total_epochs;
    }
    result.levels.push_back(std::move(final_stats));
  }

  const EpochStats& last = result.levels.back().epochs.back();
  result.final_train_loss = last.loss;
  result.final_train_accuracy = last.accuracy;
  return result;
}

}  // namespace antidote::core
