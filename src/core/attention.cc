#include "core/attention.h"

#include "tensor/ops.h"

namespace antidote::core {

Tensor channel_attention(const Tensor& feature_map) {
  return ops::channel_mean_nchw(feature_map);
}

Tensor spatial_attention(const Tensor& feature_map) {
  return ops::spatial_mean_nchw(feature_map);
}

}  // namespace antidote::core
