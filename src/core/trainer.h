// Generic SGD training loop over a ConvNet (used directly for baseline
// trainings and as the inner loop of the TTD trainer). Matches the paper's
// setup: SGD with momentum and weight decay, cosine learning-rate decay,
// pad-4 random crop + horizontal flip augmentation.
#pragma once

#include <memory>
#include <vector>

#include "data/dataloader.h"
#include "models/convnet.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"

namespace antidote::core {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 32;
  double base_lr = 0.05;
  double final_lr = 0.0;   // cosine decays to this
  double momentum = 0.9;
  double weight_decay = 5e-4;
  bool nesterov = false;
  bool cosine = true;      // cosine over `epochs`; otherwise constant lr
  bool augment = true;
  int augment_pad = 4;
  bool augment_hflip = true;
  uint64_t seed = 7;
  bool verbose = false;    // log every epoch
  // Invoked after every optimizer step. Static pruning uses this as a
  // projection hook to keep pruned filters at zero during finetuning.
  std::function<void()> post_step;
};

struct EpochStats {
  int epoch = 0;
  double loss = 0.0;
  double accuracy = 0.0;  // training accuracy
  double lr = 0.0;
};

class Trainer {
 public:
  Trainer(models::ConvNet& net, const data::Dataset& train_data,
          TrainConfig config);

  // One epoch at the internal epoch counter's learning rate.
  EpochStats run_epoch();
  // Runs config.epochs epochs.
  std::vector<EpochStats> fit();

  int epoch() const { return epoch_; }
  // Total epochs the LR schedule spans; grows `extend_schedule` calls.
  void extend_schedule(int total_epochs);
  nn::Sgd& optimizer() { return sgd_; }
  const TrainConfig& config() const { return config_; }

 private:
  models::ConvNet* net_;
  TrainConfig config_;
  data::DataLoader loader_;
  nn::Sgd sgd_;
  std::unique_ptr<nn::LrSchedule> schedule_;
  nn::SoftmaxCrossEntropy loss_;
  int epoch_ = 0;
};

}  // namespace antidote::core
