// Binary top-k mask generation (paper Eq. 3 / Eq. 4).
//
// Given attention coefficients and a *drop ratio* r, the mask keeps the
// top k = n - round(r*n) entries (always at least one) and drops the rest.
// Three orderings are supported, matching the paper's Fig. 2 comparison:
//   kAttention        — keep the highest-attention entries (the method),
//   kRandom           — keep a uniformly random subset of the same size,
//   kInverseAttention — keep the lowest-attention entries (adversarial).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/rng.h"
#include "nn/conv2d.h"

namespace antidote::core {

enum class MaskOrder { kAttention, kRandom, kInverseAttention };

const char* mask_order_name(MaskOrder order);

// Number of entries kept out of `n` at drop ratio `drop_ratio` in [0, 1]:
// n - round(drop_ratio * n), clamped to [1, n].
int kept_count(int n, float drop_ratio);

// Indices (sorted ascending) kept by the mask over `attention` at the given
// drop ratio and ordering. `rng` is consulted only for kRandom.
std::vector<int> select_kept(std::span<const float> attention,
                             float drop_ratio, MaskOrder order, Rng& rng);

// Reusable-buffer variant for the inference hot path: `scratch` and `kept`
// retain their capacity across calls (zero allocations once warm). Result
// identical to select_kept.
void select_kept_into(std::span<const float> attention, float drop_ratio,
                      MaskOrder order, Rng& rng, std::vector<int>& scratch,
                      std::vector<int>& kept);

// Expands kept indices into a dense 0/1 mask of length n.
std::vector<uint8_t> kept_to_mask(std::span<const int> kept, int n);
// Reusable-buffer variant of kept_to_mask.
void kept_to_mask_into(std::span<const int> kept, int n,
                       std::vector<uint8_t>& mask);

// Canonical 64-bit key of a runtime mask's kept sets (FNV-1a over the
// three index vectors with component separators). Masks with equal kept
// sets always hash equal, so a batch executor can bucket samples by key
// and execute each bucket as one compacted multi-sample problem; callers
// that must be collision-proof confirm key matches with mask_equal.
uint64_t mask_key(const nn::ConvRuntimeMask& m);
// Exact kept-set equality (all three components), with a kept-count
// fast-reject: all three component sizes are compared before any
// element-wise walk, so bucketing a batch of obviously unequal masks
// never touches the index data.
bool mask_equal(const nn::ConvRuntimeMask& a, const nn::ConvRuntimeMask& b);

// --- packed kept-set bitsets (similar-mask union coarsening) --------------
//
// The coarsening planner compares and merges kept sets many times per
// pass, so the sorted index vectors are packed once into little-endian
// 64-bit bitsets and all similarity/union arithmetic runs as word-wise
// popcounts. An EMPTY kept vector means "keep all" (the ConvRuntimeMask
// convention), and packs as all `n` bits set — so intersections, unions
// and symmetric differences need no keep-all special case.

// Words needed for an n-bit kept set.
inline int mask_bits_words(int n) { return (n + 63) / 64; }

// Packs sorted kept indices over a domain of `n` into `words` (the caller
// provides mask_bits_words(n) of them). Empty `kept` sets all n bits.
void pack_kept_bits(std::span<const int> kept, int n, uint64_t* words);

// Total population count of a packed set.
int popcount_words(const uint64_t* w, int words);

// Popcount of the symmetric difference |a ^ b|, with a kept-count
// fast-reject: `ka`/`kb` are the operands' popcounts, and since
// |a ^ b| >= |ka - kb| the word loop is skipped entirely (returning
// `limit`) when the count gap alone reaches `limit`; the loop also exits
// early once the running count does. Returns min(|a ^ b|, limit).
int mask_symdiff_bits(const uint64_t* a, int ka, const uint64_t* b, int kb,
                      int words, int limit);

// Popcount of the intersection |a & b|.
int mask_intersect_bits(const uint64_t* a, const uint64_t* b, int words);

// dst |= src over `words`.
void union_bits_inplace(uint64_t* dst, const uint64_t* src, int words);

// Word-wise equality.
bool bits_equal(const uint64_t* a, const uint64_t* b, int words);

// Unpacks a bitset over domain `n` back into sorted kept indices,
// canonicalized to the ConvRuntimeMask convention: a full set (all n bits)
// yields an EMPTY vector (= keep all). Reuses `kept`'s capacity.
void bits_to_kept(const uint64_t* words, int n, std::vector<int>& kept);

}  // namespace antidote::core
