// Binary top-k mask generation (paper Eq. 3 / Eq. 4).
//
// Given attention coefficients and a *drop ratio* r, the mask keeps the
// top k = n - round(r*n) entries (always at least one) and drops the rest.
// Three orderings are supported, matching the paper's Fig. 2 comparison:
//   kAttention        — keep the highest-attention entries (the method),
//   kRandom           — keep a uniformly random subset of the same size,
//   kInverseAttention — keep the lowest-attention entries (adversarial).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/rng.h"
#include "nn/conv2d.h"

namespace antidote::core {

enum class MaskOrder { kAttention, kRandom, kInverseAttention };

const char* mask_order_name(MaskOrder order);

// Number of entries kept out of `n` at drop ratio `drop_ratio` in [0, 1]:
// n - round(drop_ratio * n), clamped to [1, n].
int kept_count(int n, float drop_ratio);

// Indices (sorted ascending) kept by the mask over `attention` at the given
// drop ratio and ordering. `rng` is consulted only for kRandom.
std::vector<int> select_kept(std::span<const float> attention,
                             float drop_ratio, MaskOrder order, Rng& rng);

// Reusable-buffer variant for the inference hot path: `scratch` and `kept`
// retain their capacity across calls (zero allocations once warm). Result
// identical to select_kept.
void select_kept_into(std::span<const float> attention, float drop_ratio,
                      MaskOrder order, Rng& rng, std::vector<int>& scratch,
                      std::vector<int>& kept);

// Expands kept indices into a dense 0/1 mask of length n.
std::vector<uint8_t> kept_to_mask(std::span<const int> kept, int n);
// Reusable-buffer variant of kept_to_mask.
void kept_to_mask_into(std::span<const int> kept, int n,
                       std::vector<uint8_t>& mask);

// Canonical 64-bit key of a runtime mask's kept sets (FNV-1a over the
// three index vectors with component separators). Masks with equal kept
// sets always hash equal, so a batch executor can bucket samples by key
// and execute each bucket as one compacted multi-sample problem; callers
// that must be collision-proof confirm key matches with mask_equal.
uint64_t mask_key(const nn::ConvRuntimeMask& m);
// Exact kept-set equality (all three components).
bool mask_equal(const nn::ConvRuntimeMask& a, const nn::ConvRuntimeMask& b);

}  // namespace antidote::core
