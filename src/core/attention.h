// Attention coefficients (paper Sec. III-A).
//
// Channel attention (Eq. 1): the spatial mean of each channel —
//   A_channel(F, c) = 1/(H*W) * sum_{i,j} F_c(i, j),
// yielding a C-vector per sample. Spatial attention (Eq. 2): the channel
// mean at each location —
//   A_spatial(F, h, w) = 1/C * sum_i F_{h,w}(i),
// yielding an HxW heat map per sample. Both are computed on the post-ReLU
// feature map, where magnitude reflects activation strength.
#pragma once

#include "tensor/tensor.h"

namespace antidote::core {

// [N,C,H,W] -> [N,C] channel attention coefficients.
Tensor channel_attention(const Tensor& feature_map);

// [N,C,H,W] -> [N,H,W] spatial attention heat map.
Tensor spatial_attention(const Tensor& feature_map);

}  // namespace antidote::core
