// DynamicPruningEngine — installs AttentionGates at every gate site of a
// ConvNet according to per-block drop ratios (the paper's "[0.2, 0.2, 0.6,
// 0.9, 0.9]"-style settings) and manages them as a unit: reconfigure,
// enable/disable, inspect, remove.
#pragma once

#include <mutex>
#include <vector>

#include "core/gate.h"
#include "models/convnet.h"

namespace antidote::core {

// Exception to the per-block ratios for a single gate site (e.g. to spare
// the very first conv layer, or for per-layer sensitivity experiments that
// go finer than blocks).
struct SiteOverride {
  int site = 0;
  float channel_drop = 0.f;
  float spatial_drop = 0.f;
};

// Per-block drop ratios. Vectors must have one entry per model block
// (VGG16: 5 conv blocks; CIFAR ResNet: 3 groups).
struct PruneSettings {
  std::vector<float> channel_drop;
  std::vector<float> spatial_drop;
  // Applied after the block ratios; at most one entry per site.
  std::vector<SiteOverride> site_overrides;
  MaskOrder order = MaskOrder::kAttention;
  GateMode mode = GateMode::kHardTopK;
  uint64_t seed = 99;

  // All blocks at the same ratios.
  static PruneSettings uniform(int num_blocks, float channel, float spatial);
  // Copy with every ratio clamped into [0, cap] (used by ratio ascent).
  PruneSettings clamped(float cap) const;
  // Copies with one dimension switched off (Fig. 4 decomposition).
  PruneSettings channel_only() const;
  PruneSettings spatial_only() const;
};

class DynamicPruningEngine {
 public:
  // Installs one gate per site of `net`. Gates are owned by the model;
  // the engine keeps typed pointers. Call remove() to uninstall.
  DynamicPruningEngine(models::ConvNet& net, PruneSettings settings);

  // Reconfigures every gate's ratios/order from new per-block settings.
  // NOT thread-safe: must be called by the thread that runs the model.
  void apply_settings(const PruneSettings& settings);
  const PruneSettings& settings() const { return settings_; }

  // Thread-safe settings handoff for the serving runtime: any thread may
  // post new settings; the thread that owns the model picks them up between
  // forward passes with apply_pending_settings(). Posting twice before a
  // pickup keeps only the newest settings.
  void post_settings(const PruneSettings& settings);
  // Applies the most recently posted settings (if any) via apply_settings.
  // Returns true when something was applied.
  bool apply_pending_settings();

  void set_enabled(bool enabled);
  // Uninstalls all gates from the model. The engine must not be used for
  // gate access afterwards.
  void remove();

  models::ConvNet& net() { return *net_; }
  const std::vector<AttentionGate*>& gates() const { return gates_; }
  AttentionGate* gate(int site) const;

  // Aggregate keep statistics over the last forward pass (all gates).
  struct KeepStats {
    double mean_channel_keep = 1.0;   // kept / total channels, averaged
    double mean_spatial_keep = 1.0;   // kept / total positions, averaged
  };
  KeepStats last_keep_stats() const;

 private:
  models::ConvNet* net_;
  PruneSettings settings_;
  std::vector<AttentionGate*> gates_;

  std::mutex pending_mutex_;
  PruneSettings pending_settings_;
  bool has_pending_ = false;
};

}  // namespace antidote::core
