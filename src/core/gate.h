// AttentionGate — the runtime heart of AntiDote (paper Fig. 1).
//
// Installed at a ConvNet gate site, the gate observes the post-ReLU feature
// map between two convolutions and, per input sample:
//   1. computes channel attention (Eq. 1) and spatial attention (Eq. 2),
//   2. binarizes them into top-k keep sets at the configured drop ratios
//      (Eq. 3 / Eq. 4),
//   3. zeroes the dropped channels and spatial columns of the feature map.
//
// Phase behaviour follows the paper's training/testing co-design:
//   - training (TTD, Sec. IV): the gate acts as *targeted dropout* — the
//     masked map flows on densely so the backward pass works; gradients
//     are masked by the same binary mask (elementwise-multiply backward).
//   - eval (Sec. III): additionally, the kept channel set (and, when the
//     gate is spatially aligned with its consumer, the kept position set)
//     is forwarded to the consumer Conv2d as a runtime mask, so the next
//     layer *skips* the pruned computation and the FLOPs saving is real.
//
// A disabled gate is an exact identity (used to probe dense baselines).
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "core/mask.h"
#include "nn/conv2d.h"
#include "nn/module.h"

namespace antidote::core {

// How the gate uses the attention coefficients.
//  - kHardTopK: the paper's method — binarize into keep sets, zero the rest
//    and skip the pruned computation downstream.
//  - kSoftSigmoid: the SENet-style mechanism the paper contrasts against
//    (Sec. III-A): multiply the map by sigmoid(attention) per channel /
//    per column. Reweights but removes nothing, so it saves no FLOPs —
//    implemented here to make that comparison runnable (ablation bench).
enum class GateMode { kHardTopK, kSoftSigmoid };

struct GateConfig {
  float channel_drop = 0.f;  // fraction of channels dropped per input
  float spatial_drop = 0.f;  // fraction of spatial columns dropped per input
  MaskOrder order = MaskOrder::kAttention;
  GateMode mode = GateMode::kHardTopK;
  uint64_t seed = 99;  // randomness for MaskOrder::kRandom
};

class AttentionGate : public nn::Gate {
 public:
  // `consumer` is the Conv2d fed by this gate's output (may be null: the
  // gate then only masks, e.g. at the last conv before the classifier).
  // `spatially_aligned` must be true only when the consumer sees the same
  // spatial grid it outputs (see ConvNet::gate_spatially_aligned).
  AttentionGate(GateConfig config, nn::Conv2d* consumer,
                bool spatially_aligned);

  Tensor forward(const Tensor& x) override;
  // Inference hot path: output and attention scratch come from the
  // context/member buffers (no steady-state allocations), no backward
  // cache is built, and masks are handed to the consumer by span (copied
  // into its reusable storage). Results are bitwise identical to the
  // plain eval forward.
  Tensor forward(const Tensor& x, nn::ExecutionContext& ctx) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "AttentionGate"; }

  // --- nn::Gate ---
  void set_enabled(bool enabled) override { enabled_ = enabled; }
  bool enabled() const override { return enabled_; }

  // --- configuration ---
  void set_ratios(float channel_drop, float spatial_drop);
  void set_order(MaskOrder order) { config_.order = order; }
  void set_mode(GateMode mode) { config_.mode = mode; }
  const GateConfig& config() const { return config_; }
  bool spatially_aligned() const { return spatially_aligned_; }
  nn::Conv2d* consumer() const { return consumer_; }

  // When false, the gate never instructs the consumer to skip computation
  // (mask-only mode; the default true gives the paper's runtime saving).
  void set_forward_to_consumer(bool on) { forward_to_consumer_ = on; }

  // --- introspection (last forward pass) ---
  struct Stats {
    int samples = 0;
    int channels = 0;        // C of the gated map
    int positions = 0;       // H*W of the gated map
    int64_t kept_channels = 0;   // summed over samples
    int64_t kept_positions = 0;  // summed over samples
  };
  const Stats& last_stats() const { return stats_; }
  // Per-sample keep sets of the last forward (empty halves = kept all).
  const std::vector<nn::ConvRuntimeMask>& last_masks() const {
    return last_masks_;
  }
  // Per-sample attention vectors of the last forward, for visualization.
  const Tensor& last_channel_attention() const { return last_ch_att_; }
  const Tensor& last_spatial_attention() const { return last_sp_att_; }

 private:
  Tensor forward_soft(const Tensor& x);
  // (Re)computes the attention tensors the configured pruning needs,
  // reusing the member tensors' storage when shapes are steady.
  void compute_attention(const Tensor& x, bool channels, bool spatial);

  GateConfig config_;
  nn::Conv2d* consumer_;
  bool spatially_aligned_;
  bool enabled_ = true;
  bool forward_to_consumer_ = true;
  Rng rng_;

  Stats stats_;
  std::vector<nn::ConvRuntimeMask> last_masks_;
  Tensor last_ch_att_;
  Tensor last_sp_att_;
  Tensor cached_mask_;  // binary mask of last forward, for backward

  // Reusable hot-path scratch (capacity persists across passes).
  std::vector<int> select_scratch_;
  std::vector<uint8_t> keep_scratch_;
  std::vector<nn::ConvRuntimeMask> runtime_scratch_;
  // True after a context forward that masked: backward must then fail
  // loudly (an empty cached_mask_ alone also means "was identity").
  bool ctx_forward_masked_ = false;
};

}  // namespace antidote::core
