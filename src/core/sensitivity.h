// Sensitivity analyses backing the paper's Fig. 2 and Fig. 3.
//
// block_sensitivity (Fig. 3): prune one block at a time across a ratio
// sweep and record test accuracy — the curves used to pick each block's
// upper-bound drop ratio for TTD.
//
// order_comparison (Fig. 2): on a single block, compare attention-ordered
// pruning against random and inverse-attention orderings across the sweep —
// the experiment establishing that attention coefficients identify
// essential components.
//
// Both leave the model exactly as they found it (gates removed, training
// flag restored).
#pragma once

#include <vector>

#include "core/engine.h"
#include "data/dataset.h"

namespace antidote::core {

struct SensitivitySweep {
  std::vector<float> ratios = {0.1f, 0.2f, 0.3f, 0.4f, 0.5f,
                               0.6f, 0.7f, 0.8f, 0.9f, 1.0f};
  bool spatial = false;  // sweep spatial-column ratios instead of channel
  MaskOrder order = MaskOrder::kAttention;
  int batch_size = 64;
  uint64_t seed = 99;
};

struct SensitivityCurve {
  int block = 0;
  MaskOrder order = MaskOrder::kAttention;
  std::vector<float> ratios;
  std::vector<double> accuracy;
};

// One curve per model block.
std::vector<SensitivityCurve> block_sensitivity(models::ConvNet& net,
                                                const data::Dataset& test,
                                                const SensitivitySweep& sweep);

// One curve per ordering in {attention, random, inverse}, pruning only
// `block` (pass net.num_blocks()-1 for the paper's "last block").
std::vector<SensitivityCurve> order_comparison(models::ConvNet& net,
                                               const data::Dataset& test,
                                               int block,
                                               const SensitivitySweep& sweep);

// Finer-grained variant of block_sensitivity: one curve per *gate site*
// (individual layer), pruning that site alone via a SiteOverride. The
// paper aggregates to blocks "to avoid massive hyper-parameter tuning";
// this exposes the underlying per-layer curves. The returned
// SensitivityCurve::block field carries the site index.
std::vector<SensitivityCurve> site_sensitivity(models::ConvNet& net,
                                               const data::Dataset& test,
                                               const SensitivitySweep& sweep);

}  // namespace antidote::core
