// Umbrella header: the full public API of the AntiDote reproduction.
//
//   #include "core/antidote.h"
//
// pulls in the dynamic-pruning core (attention, masks, gates, engine,
// TTD, sensitivity, evaluation) plus the model/data entry points most
// programs need. Individual headers remain includable on their own.
#pragma once

#include "core/attention.h"
#include "core/engine.h"
#include "core/evaluate.h"
#include "core/gate.h"
#include "core/mask.h"
#include "core/sensitivity.h"
#include "core/trainer.h"
#include "core/ttd.h"
#include "data/cifar.h"
#include "data/dataloader.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "models/flops.h"
#include "nn/checkpoint.h"
#include "nn/init.h"
