#include "core/gate.h"

#include <cmath>
#include <cstring>

#include "base/error.h"
#include "core/attention.h"
#include "tensor/ops.h"

namespace antidote::core {

AttentionGate::AttentionGate(GateConfig config, nn::Conv2d* consumer,
                             bool spatially_aligned)
    : config_(config),
      consumer_(consumer),
      spatially_aligned_(spatially_aligned),
      rng_(config.seed) {
  set_ratios(config.channel_drop, config.spatial_drop);
}

void AttentionGate::set_ratios(float channel_drop, float spatial_drop) {
  AD_CHECK(channel_drop >= 0.f && channel_drop <= 1.f)
      << " channel drop " << channel_drop;
  AD_CHECK(spatial_drop >= 0.f && spatial_drop <= 1.f)
      << " spatial drop " << spatial_drop;
  config_.channel_drop = channel_drop;
  config_.spatial_drop = spatial_drop;
}

namespace {
float sigmoid(float v) { return 1.f / (1.f + std::exp(-v)); }
}  // namespace

Tensor AttentionGate::forward_soft(const Tensor& x) {
  // SENet-style reweighting: out = x * sigmoid(A_channel) * sigmoid(A_spatial)
  // broadcast over the matching dimensions. No pruning, no consumer masks.
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int hw = h * w;
  last_ch_att_ = channel_attention(x);
  last_sp_att_ = spatial_attention(x);

  cached_mask_ = Tensor::ones(x.shape());  // holds the smooth scale map
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float ch_scale = sigmoid(last_ch_att_.at({b, ch}));
      float* mplane =
          cached_mask_.data() + (static_cast<int64_t>(b) * c + ch) * hw;
      const float* att_plane =
          last_sp_att_.data() + static_cast<int64_t>(b) * hw;
      for (int j = 0; j < hw; ++j) {
        mplane[j] = ch_scale * sigmoid(att_plane[j]);
      }
    }
  }
  stats_ = Stats{};
  stats_.samples = n;
  stats_.channels = c;
  stats_.positions = hw;
  stats_.kept_channels = static_cast<int64_t>(n) * c;  // nothing removed
  stats_.kept_positions = static_cast<int64_t>(n) * hw;
  last_masks_.assign(static_cast<size_t>(n), nn::ConvRuntimeMask{});
  return ops::mul(x, cached_mask_);
}

Tensor AttentionGate::forward(const Tensor& x) {
  ctx_forward_masked_ = false;
  AD_CHECK_EQ(x.ndim(), 4) << " AttentionGate expects NCHW";
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int hw = h * w;

  const bool prune_channels = config_.channel_drop > 0.f;
  const bool prune_spatial = config_.spatial_drop > 0.f;
  if (!enabled_ || (!prune_channels && !prune_spatial)) {
    // Exact identity; clear per-pass state so stale masks never leak.
    stats_ = Stats{};
    last_masks_.clear();
    cached_mask_ = Tensor();
    return x;
  }
  if (config_.mode == GateMode::kSoftSigmoid) return forward_soft(x);

  stats_ = Stats{};
  stats_.samples = n;
  stats_.channels = c;
  stats_.positions = hw;
  last_masks_.assign(static_cast<size_t>(n), nn::ConvRuntimeMask{});

  if (prune_channels) last_ch_att_ = channel_attention(x);
  if (prune_spatial) last_sp_att_ = spatial_attention(x);

  Tensor out = x.clone();
  cached_mask_ = Tensor::ones(x.shape());

  for (int b = 0; b < n; ++b) {
    nn::ConvRuntimeMask& sample_mask = last_masks_[static_cast<size_t>(b)];

    if (prune_channels) {
      std::span<const float> att(
          last_ch_att_.data() + static_cast<int64_t>(b) * c,
          static_cast<size_t>(c));
      sample_mask.channels =
          select_kept(att, config_.channel_drop, config_.order, rng_);
      stats_.kept_channels +=
          static_cast<int64_t>(sample_mask.channels.size());
      // Zero dropped channel planes (in both output and the backward mask).
      const std::vector<uint8_t> keep =
          kept_to_mask(sample_mask.channels, c);
      for (int ch = 0; ch < c; ++ch) {
        if (keep[static_cast<size_t>(ch)]) continue;
        float* plane =
            out.data() + (static_cast<int64_t>(b) * c + ch) * hw;
        float* mplane =
            cached_mask_.data() + (static_cast<int64_t>(b) * c + ch) * hw;
        for (int j = 0; j < hw; ++j) {
          plane[j] = 0.f;
          mplane[j] = 0.f;
        }
      }
    } else {
      stats_.kept_channels += c;
    }

    if (prune_spatial) {
      std::span<const float> att(
          last_sp_att_.data() + static_cast<int64_t>(b) * hw,
          static_cast<size_t>(hw));
      sample_mask.positions =
          select_kept(att, config_.spatial_drop, config_.order, rng_);
      stats_.kept_positions +=
          static_cast<int64_t>(sample_mask.positions.size());
      // Zero dropped columns across every channel.
      const std::vector<uint8_t> keep =
          kept_to_mask(sample_mask.positions, hw);
      for (int ch = 0; ch < c; ++ch) {
        float* plane =
            out.data() + (static_cast<int64_t>(b) * c + ch) * hw;
        float* mplane =
            cached_mask_.data() + (static_cast<int64_t>(b) * c + ch) * hw;
        for (int j = 0; j < hw; ++j) {
          if (!keep[static_cast<size_t>(j)]) {
            plane[j] = 0.f;
            mplane[j] = 0.f;
          }
        }
      }
    } else {
      stats_.kept_positions += hw;
    }
  }

  // Test phase: hand the keep sets to the consumer so it skips the pruned
  // computation. (Training keeps dense math for the backward pass — the
  // gate then behaves exactly as the paper's targeted dropout.)
  if (!is_training() && forward_to_consumer_ && consumer_ != nullptr) {
    std::vector<nn::ConvRuntimeMask> runtime = last_masks_;
    if (!spatially_aligned_) {
      for (auto& m : runtime) m.positions.clear();  // cannot skip positions
    }
    consumer_->set_runtime_masks(std::move(runtime));
  }
  return out;
}

void AttentionGate::compute_attention(const Tensor& x, bool channels,
                                      bool spatial) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (channels) {
    if (!(last_ch_att_.shape() == Shape{n, c})) {
      last_ch_att_ = Tensor({n, c});
    }
    ops::channel_mean_nchw_into(x, last_ch_att_.data());
  }
  if (spatial) {
    if (!(last_sp_att_.shape() == Shape{n, h, w})) {
      last_sp_att_ = Tensor({n, h, w});
    }
    ops::spatial_mean_nchw_into(x, last_sp_att_.data());
  }
}

Tensor AttentionGate::forward(const Tensor& x, nn::ExecutionContext& ctx) {
  if (is_training()) return forward(x);
  ctx_forward_masked_ = false;
  AD_CHECK_EQ(x.ndim(), 4) << " AttentionGate expects NCHW";
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int hw = h * w;

  const bool prune_channels = config_.channel_drop > 0.f;
  const bool prune_spatial = config_.spatial_drop > 0.f;
  if (!enabled_ || (!prune_channels && !prune_spatial)) {
    stats_ = Stats{};
    last_masks_.clear();
    cached_mask_ = Tensor();
    return x;
  }
  if (config_.mode == GateMode::kSoftSigmoid) return forward_soft(x);

  stats_ = Stats{};
  stats_.samples = n;
  stats_.channels = c;
  stats_.positions = hw;
  // resize (not assign) keeps each element's vectors and their capacity;
  // every field is rewritten or cleared below.
  last_masks_.resize(static_cast<size_t>(n));

  compute_attention(x, prune_channels, prune_spatial);

  Tensor out = ctx.alloc(x.shape());
  std::memcpy(out.data(), x.data(),
              static_cast<size_t>(x.size()) * sizeof(float));
  cached_mask_ = Tensor();  // inference: no backward cache
  ctx_forward_masked_ = true;

  for (int b = 0; b < n; ++b) {
    nn::ConvRuntimeMask& sample_mask = last_masks_[static_cast<size_t>(b)];
    sample_mask.out_channels.clear();

    if (prune_channels) {
      std::span<const float> att(
          last_ch_att_.data() + static_cast<int64_t>(b) * c,
          static_cast<size_t>(c));
      select_kept_into(att, config_.channel_drop, config_.order, rng_,
                       select_scratch_, sample_mask.channels);
      stats_.kept_channels +=
          static_cast<int64_t>(sample_mask.channels.size());
      kept_to_mask_into(sample_mask.channels, c, keep_scratch_);
      for (int ch = 0; ch < c; ++ch) {
        if (keep_scratch_[static_cast<size_t>(ch)]) continue;
        float* plane = out.data() + (static_cast<int64_t>(b) * c + ch) * hw;
        for (int j = 0; j < hw; ++j) plane[j] = 0.f;
      }
    } else {
      sample_mask.channels.clear();
      stats_.kept_channels += c;
    }

    if (prune_spatial) {
      std::span<const float> att(
          last_sp_att_.data() + static_cast<int64_t>(b) * hw,
          static_cast<size_t>(hw));
      select_kept_into(att, config_.spatial_drop, config_.order, rng_,
                       select_scratch_, sample_mask.positions);
      stats_.kept_positions +=
          static_cast<int64_t>(sample_mask.positions.size());
      kept_to_mask_into(sample_mask.positions, hw, keep_scratch_);
      for (int ch = 0; ch < c; ++ch) {
        float* plane = out.data() + (static_cast<int64_t>(b) * c + ch) * hw;
        for (int j = 0; j < hw; ++j) {
          if (!keep_scratch_[static_cast<size_t>(j)]) plane[j] = 0.f;
        }
      }
    } else {
      sample_mask.positions.clear();
      stats_.kept_positions += hw;
    }
  }

  if (forward_to_consumer_ && consumer_ != nullptr) {
    if (spatially_aligned_) {
      consumer_->set_runtime_masks(
          std::span<const nn::ConvRuntimeMask>(last_masks_));
    } else {
      // Positions cannot be skipped downstream; strip them into the
      // reusable staging vector first.
      runtime_scratch_.resize(last_masks_.size());
      for (size_t i = 0; i < last_masks_.size(); ++i) {
        runtime_scratch_[i].channels = last_masks_[i].channels;
        runtime_scratch_[i].positions.clear();
        runtime_scratch_[i].out_channels.clear();
      }
      consumer_->set_runtime_masks(
          std::span<const nn::ConvRuntimeMask>(runtime_scratch_));
    }
  }
  return out;
}

Tensor AttentionGate::backward(const Tensor& grad_out) {
  AD_CHECK(!ctx_forward_masked_)
      << " backward after a context (inference) AttentionGate forward";
  if (cached_mask_.empty()) return grad_out;  // was identity
  return ops::mul(grad_out, cached_mask_);
}

}  // namespace antidote::core
