#include "core/engine.h"

#include <algorithm>
#include <utility>

#include "base/error.h"

namespace antidote::core {

PruneSettings PruneSettings::uniform(int num_blocks, float channel,
                                     float spatial) {
  AD_CHECK_GT(num_blocks, 0);
  PruneSettings s;
  s.channel_drop.assign(static_cast<size_t>(num_blocks), channel);
  s.spatial_drop.assign(static_cast<size_t>(num_blocks), spatial);
  return s;
}

PruneSettings PruneSettings::clamped(float cap) const {
  PruneSettings s = *this;
  for (float& v : s.channel_drop) v = std::clamp(v, 0.f, cap);
  for (float& v : s.spatial_drop) v = std::clamp(v, 0.f, cap);
  for (SiteOverride& o : s.site_overrides) {
    o.channel_drop = std::clamp(o.channel_drop, 0.f, cap);
    o.spatial_drop = std::clamp(o.spatial_drop, 0.f, cap);
  }
  return s;
}

PruneSettings PruneSettings::channel_only() const {
  PruneSettings s = *this;
  std::fill(s.spatial_drop.begin(), s.spatial_drop.end(), 0.f);
  for (SiteOverride& o : s.site_overrides) o.spatial_drop = 0.f;
  return s;
}

PruneSettings PruneSettings::spatial_only() const {
  PruneSettings s = *this;
  std::fill(s.channel_drop.begin(), s.channel_drop.end(), 0.f);
  for (SiteOverride& o : s.site_overrides) o.channel_drop = 0.f;
  return s;
}

namespace {
// Resolves the (channel, spatial) drop pair for a site from block ratios
// plus overrides.
std::pair<float, float> site_ratios(const PruneSettings& s, int site,
                                    int block) {
  float ch = s.channel_drop[static_cast<size_t>(block)];
  float sp = s.spatial_drop[static_cast<size_t>(block)];
  for (const SiteOverride& o : s.site_overrides) {
    if (o.site == site) {
      ch = o.channel_drop;
      sp = o.spatial_drop;
      break;
    }
  }
  return {ch, sp};
}
}  // namespace

DynamicPruningEngine::DynamicPruningEngine(models::ConvNet& net,
                                           PruneSettings settings)
    : net_(&net), settings_(std::move(settings)) {
  AD_CHECK_EQ(static_cast<int>(settings_.channel_drop.size()),
              net.num_blocks())
      << " channel_drop entries vs model blocks";
  AD_CHECK_EQ(static_cast<int>(settings_.spatial_drop.size()),
              net.num_blocks())
      << " spatial_drop entries vs model blocks";

  gates_.reserve(static_cast<size_t>(net.num_gate_sites()));
  for (int s = 0; s < net.num_gate_sites(); ++s) {
    const auto [ch, sp] = site_ratios(settings_, s, net.block_of_site(s));
    GateConfig cfg;
    cfg.channel_drop = ch;
    cfg.spatial_drop = sp;
    cfg.order = settings_.order;
    cfg.mode = settings_.mode;
    cfg.seed = settings_.seed + static_cast<uint64_t>(s) * 0x9e3779b9ULL;
    auto gate = std::make_unique<AttentionGate>(
        cfg, net.gate_consumer(s), net.gate_spatially_aligned(s));
    gates_.push_back(gate.get());
    net.install_gate(s, std::move(gate));
  }
}

void DynamicPruningEngine::apply_settings(const PruneSettings& settings) {
  AD_CHECK_EQ(settings.channel_drop.size(), settings_.channel_drop.size());
  AD_CHECK_EQ(settings.spatial_drop.size(), settings_.spatial_drop.size());
  settings_.channel_drop = settings.channel_drop;
  settings_.spatial_drop = settings.spatial_drop;
  settings_.site_overrides = settings.site_overrides;
  settings_.order = settings.order;
  settings_.mode = settings.mode;
  for (int s = 0; s < net_->num_gate_sites(); ++s) {
    const auto [ch, sp] = site_ratios(settings_, s, net_->block_of_site(s));
    AttentionGate* gate = gates_[static_cast<size_t>(s)];
    gate->set_ratios(ch, sp);
    gate->set_order(settings_.order);
    gate->set_mode(settings_.mode);
  }
}

void DynamicPruningEngine::post_settings(const PruneSettings& settings) {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  pending_settings_ = settings;
  has_pending_ = true;
}

bool DynamicPruningEngine::apply_pending_settings() {
  PruneSettings staged;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (!has_pending_) return false;
    staged = std::move(pending_settings_);
    has_pending_ = false;
  }
  apply_settings(staged);
  return true;
}

void DynamicPruningEngine::set_enabled(bool enabled) {
  for (AttentionGate* g : gates_) g->set_enabled(enabled);
}

void DynamicPruningEngine::remove() {
  net_->clear_gates();
  gates_.clear();
}

AttentionGate* DynamicPruningEngine::gate(int site) const {
  AD_CHECK(site >= 0 && site < static_cast<int>(gates_.size()))
      << " engine gate " << site;
  return gates_[static_cast<size_t>(site)];
}

DynamicPruningEngine::KeepStats DynamicPruningEngine::last_keep_stats() const {
  KeepStats out;
  double ch_sum = 0.0, sp_sum = 0.0;
  int counted = 0;
  for (const AttentionGate* g : gates_) {
    const AttentionGate::Stats& s = g->last_stats();
    if (s.samples == 0) continue;  // gate was identity last pass
    ch_sum += static_cast<double>(s.kept_channels) /
              (static_cast<double>(s.samples) * s.channels);
    sp_sum += static_cast<double>(s.kept_positions) /
              (static_cast<double>(s.samples) * s.positions);
    ++counted;
  }
  if (counted > 0) {
    out.mean_channel_keep = ch_sum / counted;
    out.mean_spatial_keep = sp_sum / counted;
  }
  return out;
}

}  // namespace antidote::core
