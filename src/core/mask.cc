#include "core/mask.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "base/error.h"
#include "tensor/ops.h"

namespace antidote::core {

const char* mask_order_name(MaskOrder order) {
  switch (order) {
    case MaskOrder::kAttention:
      return "attention";
    case MaskOrder::kRandom:
      return "random";
    case MaskOrder::kInverseAttention:
      return "inverse";
  }
  return "?";
}

int kept_count(int n, float drop_ratio) {
  AD_CHECK_GT(n, 0);
  AD_CHECK(drop_ratio >= 0.f && drop_ratio <= 1.f)
      << " drop ratio " << drop_ratio;
  const int dropped = static_cast<int>(std::lround(drop_ratio * n));
  return std::clamp(n - dropped, 1, n);
}

std::vector<int> select_kept(std::span<const float> attention,
                             float drop_ratio, MaskOrder order, Rng& rng) {
  std::vector<int> scratch, kept;
  select_kept_into(attention, drop_ratio, order, rng, scratch, kept);
  return kept;
}

void select_kept_into(std::span<const float> attention, float drop_ratio,
                      MaskOrder order, Rng& rng, std::vector<int>& scratch,
                      std::vector<int>& kept) {
  const int n = static_cast<int>(attention.size());
  const int k = kept_count(n, drop_ratio);
  switch (order) {
    case MaskOrder::kAttention:
      ops::topk_indices_into(attention, k, scratch, kept);
      break;
    case MaskOrder::kInverseAttention:
      ops::bottomk_indices_into(attention, k, scratch, kept);
      break;
    case MaskOrder::kRandom: {
      // Same draw as Rng::permutation: shuffle of iota, first k kept.
      scratch.resize(static_cast<size_t>(n));
      std::iota(scratch.begin(), scratch.end(), 0);
      rng.shuffle(scratch);
      kept.assign(scratch.begin(), scratch.begin() + k);
      break;
    }
  }
  std::sort(kept.begin(), kept.end());
}

std::vector<uint8_t> kept_to_mask(std::span<const int> kept, int n) {
  std::vector<uint8_t> mask;
  kept_to_mask_into(kept, n, mask);
  return mask;
}

void kept_to_mask_into(std::span<const int> kept, int n,
                       std::vector<uint8_t>& mask) {
  mask.assign(static_cast<size_t>(n), 0);
  for (int i : kept) {
    AD_CHECK(i >= 0 && i < n) << " kept index " << i;
    mask[static_cast<size_t>(i)] = 1;
  }
}

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t fnv1a_ints(uint64_t h, std::span<const int> v) {
  for (int i : v) {
    // Mix all four value bytes; kept indices are small non-negative ints,
    // so byte-wise mixing keeps nearby sets well separated.
    uint32_t u = static_cast<uint32_t>(i);
    for (int b = 0; b < 4; ++b) {
      h = (h ^ (u & 0xffu)) * kFnvPrime;
      u >>= 8;
    }
  }
  // Component separator: an empty-vs-absent boundary must change the key.
  h = (h ^ 0xabu) * kFnvPrime;
  return h;
}

}  // namespace

uint64_t mask_key(const nn::ConvRuntimeMask& m) {
  uint64_t h = kFnvOffset;
  h = fnv1a_ints(h, m.channels);
  h = fnv1a_ints(h, m.positions);
  h = fnv1a_ints(h, m.out_channels);
  return h;
}

bool mask_equal(const nn::ConvRuntimeMask& a, const nn::ConvRuntimeMask& b) {
  // Kept-count fast-reject: check all three component sizes before any
  // element compare, so unequal masks (the common case while bucketing a
  // high-entropy batch) bail before touching index data.
  if (a.channels.size() != b.channels.size() ||
      a.positions.size() != b.positions.size() ||
      a.out_channels.size() != b.out_channels.size()) {
    return false;
  }
  return a.channels == b.channels && a.positions == b.positions &&
         a.out_channels == b.out_channels;
}

void pack_kept_bits(std::span<const int> kept, int n, uint64_t* words) {
  AD_CHECK_GT(n, 0);
  const int nw = mask_bits_words(n);
  if (kept.empty()) {
    // Empty = keep all: set every valid bit, clear the tail so word-wise
    // popcounts and equality see a canonical representation.
    for (int w = 0; w < nw; ++w) words[w] = ~0ULL;
    const int tail = n & 63;
    if (tail != 0) words[nw - 1] = (1ULL << tail) - 1;
    return;
  }
  for (int w = 0; w < nw; ++w) words[w] = 0;
  for (int i : kept) {
    AD_CHECK(i >= 0 && i < n) << " kept index " << i;
    words[i >> 6] |= 1ULL << (i & 63);
  }
}

int popcount_words(const uint64_t* w, int words) {
  int count = 0;
  for (int i = 0; i < words; ++i) count += std::popcount(w[i]);
  return count;
}

int mask_symdiff_bits(const uint64_t* a, int ka, const uint64_t* b, int kb,
                      int words, int limit) {
  // |a ^ b| >= ||a| - |b||: when the kept counts alone are `limit` apart
  // the sets cannot be closer either, so the words are never touched.
  const int gap = ka > kb ? ka - kb : kb - ka;
  if (gap >= limit) return limit;
  int count = 0;
  for (int i = 0; i < words; ++i) {
    count += std::popcount(a[i] ^ b[i]);
    if (count >= limit) return limit;
  }
  return count;
}

int mask_intersect_bits(const uint64_t* a, const uint64_t* b, int words) {
  int count = 0;
  for (int i = 0; i < words; ++i) count += std::popcount(a[i] & b[i]);
  return count;
}

void union_bits_inplace(uint64_t* dst, const uint64_t* src, int words) {
  for (int i = 0; i < words; ++i) dst[i] |= src[i];
}

bool bits_equal(const uint64_t* a, const uint64_t* b, int words) {
  for (int i = 0; i < words; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

void bits_to_kept(const uint64_t* words, int n, std::vector<int>& kept) {
  kept.clear();
  const int nw = mask_bits_words(n);
  if (popcount_words(words, nw) == n) return;  // full set = keep all = empty
  for (int w = 0; w < nw; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      kept.push_back((w << 6) + bit);
      bits &= bits - 1;
    }
  }
}

}  // namespace antidote::core
