#include "core/mask.h"

#include <algorithm>
#include <cmath>

#include "base/error.h"
#include "tensor/ops.h"

namespace antidote::core {

const char* mask_order_name(MaskOrder order) {
  switch (order) {
    case MaskOrder::kAttention:
      return "attention";
    case MaskOrder::kRandom:
      return "random";
    case MaskOrder::kInverseAttention:
      return "inverse";
  }
  return "?";
}

int kept_count(int n, float drop_ratio) {
  AD_CHECK_GT(n, 0);
  AD_CHECK(drop_ratio >= 0.f && drop_ratio <= 1.f)
      << " drop ratio " << drop_ratio;
  const int dropped = static_cast<int>(std::lround(drop_ratio * n));
  return std::clamp(n - dropped, 1, n);
}

std::vector<int> select_kept(std::span<const float> attention,
                             float drop_ratio, MaskOrder order, Rng& rng) {
  const int n = static_cast<int>(attention.size());
  const int k = kept_count(n, drop_ratio);
  std::vector<int> kept;
  switch (order) {
    case MaskOrder::kAttention:
      kept = ops::topk_indices(attention, k);
      break;
    case MaskOrder::kInverseAttention:
      kept = ops::bottomk_indices(attention, k);
      break;
    case MaskOrder::kRandom: {
      std::vector<int> perm = rng.permutation(n);
      kept.assign(perm.begin(), perm.begin() + k);
      break;
    }
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

std::vector<uint8_t> kept_to_mask(std::span<const int> kept, int n) {
  std::vector<uint8_t> mask(static_cast<size_t>(n), 0);
  for (int i : kept) {
    AD_CHECK(i >= 0 && i < n) << " kept index " << i;
    mask[static_cast<size_t>(i)] = 1;
  }
  return mask;
}

}  // namespace antidote::core
