#include "core/sensitivity.h"

#include "base/error.h"
#include "core/evaluate.h"

namespace antidote::core {

namespace {

// Evaluates accuracy with only `block` pruned at `ratio`.
double eval_single_block(DynamicPruningEngine& engine,
                         const data::Dataset& test, int num_blocks, int block,
                         float ratio, const SensitivitySweep& sweep) {
  PruneSettings s = PruneSettings::uniform(num_blocks, 0.f, 0.f);
  if (sweep.spatial) {
    s.spatial_drop[static_cast<size_t>(block)] = ratio;
  } else {
    s.channel_drop[static_cast<size_t>(block)] = ratio;
  }
  s.order = sweep.order;
  engine.apply_settings(s);
  return evaluate(engine.net(), test, sweep.batch_size).accuracy;
}

}  // namespace

std::vector<SensitivityCurve> block_sensitivity(
    models::ConvNet& net, const data::Dataset& test,
    const SensitivitySweep& sweep) {
  PruneSettings zero = PruneSettings::uniform(net.num_blocks(), 0.f, 0.f);
  zero.order = sweep.order;
  zero.seed = sweep.seed;
  DynamicPruningEngine engine(net, zero);

  std::vector<SensitivityCurve> curves;
  for (int block = 0; block < net.num_blocks(); ++block) {
    SensitivityCurve curve;
    curve.block = block;
    curve.order = sweep.order;
    for (float ratio : sweep.ratios) {
      curve.ratios.push_back(ratio);
      curve.accuracy.push_back(eval_single_block(
          engine, test, net.num_blocks(), block, ratio, sweep));
    }
    curves.push_back(std::move(curve));
  }
  engine.remove();
  return curves;
}

std::vector<SensitivityCurve> site_sensitivity(models::ConvNet& net,
                                               const data::Dataset& test,
                                               const SensitivitySweep& sweep) {
  PruneSettings zero = PruneSettings::uniform(net.num_blocks(), 0.f, 0.f);
  zero.order = sweep.order;
  zero.seed = sweep.seed;
  DynamicPruningEngine engine(net, zero);

  std::vector<SensitivityCurve> curves;
  for (int site = 0; site < net.num_gate_sites(); ++site) {
    SensitivityCurve curve;
    curve.block = site;  // carries the site index in this variant
    curve.order = sweep.order;
    for (float ratio : sweep.ratios) {
      PruneSettings s = zero;
      SiteOverride o;
      o.site = site;
      (sweep.spatial ? o.spatial_drop : o.channel_drop) = ratio;
      s.site_overrides = {o};
      engine.apply_settings(s);
      curve.ratios.push_back(ratio);
      curve.accuracy.push_back(
          evaluate(net, test, sweep.batch_size).accuracy);
    }
    curves.push_back(std::move(curve));
  }
  engine.remove();
  return curves;
}

std::vector<SensitivityCurve> order_comparison(models::ConvNet& net,
                                               const data::Dataset& test,
                                               int block,
                                               const SensitivitySweep& sweep) {
  AD_CHECK(block >= 0 && block < net.num_blocks()) << " block " << block;
  PruneSettings zero = PruneSettings::uniform(net.num_blocks(), 0.f, 0.f);
  zero.seed = sweep.seed;
  DynamicPruningEngine engine(net, zero);

  std::vector<SensitivityCurve> curves;
  for (MaskOrder order : {MaskOrder::kAttention, MaskOrder::kRandom,
                          MaskOrder::kInverseAttention}) {
    SensitivitySweep s = sweep;
    s.order = order;
    SensitivityCurve curve;
    curve.block = block;
    curve.order = order;
    for (float ratio : s.ratios) {
      curve.ratios.push_back(ratio);
      curve.accuracy.push_back(
          eval_single_block(engine, test, net.num_blocks(), block, ratio, s));
    }
    curves.push_back(std::move(curve));
  }
  engine.remove();
  return curves;
}

}  // namespace antidote::core
