// TTD — Training with Targeted Dropout (paper Sec. IV).
//
// Installs attention gates (acting as targeted dropout in training mode)
// and trains with *dropout ratio ascent*: ratios start at a warm-up value
// (paper: 0.1 per block), and after the model converges at the current
// level every block's ratio ascends by a small step (paper: 0.05) until it
// reaches its per-block target from the sensitivity analysis. Convergence
// at a level is declared when the relative training-loss improvement drops
// below `plateau_tol` (bounded by min/max epochs per level for
// determinism). After the final level, `final_epochs` consolidation epochs
// run at the target ratios. The model is then ready for dynamic pruning at
// the same ratios with *no further fine-tuning* — the property the paper
// highlights.
#pragma once

#include "core/engine.h"
#include "core/trainer.h"

namespace antidote::core {

struct TtdConfig {
  PruneSettings target;           // per-block target drop ratios
  float warmup_ratio = 0.1f;      // starting cap on every ratio
  float step = 0.05f;             // ratio ascent step per level
  int min_epochs_per_level = 1;
  int max_epochs_per_level = 2;
  double plateau_tol = 0.01;      // relative loss improvement threshold
  int final_epochs = 2;           // consolidation at target ratios
  TrainConfig train;              // inner-loop hyperparameters
};

struct TtdLevelStats {
  int level = 0;
  float ratio_cap = 0.f;  // the cap applied to target ratios at this level
  std::vector<EpochStats> epochs;
};

struct TtdResult {
  std::vector<TtdLevelStats> levels;
  int total_epochs = 0;
  double final_train_loss = 0.0;
  double final_train_accuracy = 0.0;
};

class TtdTrainer {
 public:
  // Installs gates on `net` (kept installed afterwards so the trained model
  // can be dynamically pruned immediately — engine() hands them over).
  TtdTrainer(models::ConvNet& net, const data::Dataset& train_data,
             TtdConfig config);

  TtdResult run();

  DynamicPruningEngine& engine() { return engine_; }
  const TtdConfig& config() const { return config_; }
  // The ascent levels (ratio caps) run() will pass through.
  std::vector<float> ascent_levels() const;

 private:
  models::ConvNet* net_;
  TtdConfig config_;
  DynamicPruningEngine engine_;
  Trainer trainer_;
};

}  // namespace antidote::core
