#include "models/unit.h"

namespace antidote::models {

ConvUnit::ConvUnit(int in_channels, int width, bool with_pool,
                   int block_index)
    : conv(std::make_unique<nn::Conv2d>(in_channels, width, 3, 1, 1,
                                        /*bias=*/false)),
      bn(std::make_unique<nn::BatchNorm2d>(width)),
      relu(std::make_unique<nn::ReLU>()),
      block(block_index) {
  if (with_pool) pool = std::make_unique<nn::MaxPool2d>(2);
}

Tensor ConvUnit::forward(const Tensor& x) {
  Tensor cur = conv->forward(x);
  cur = bn->forward(cur);
  cur = relu->forward(cur);
  if (gate) cur = gate->forward(cur);
  if (pool) cur = pool->forward(cur);
  return cur;
}

Tensor ConvUnit::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  if (pool) cur = pool->backward(cur);
  if (gate) cur = gate->backward(cur);
  cur = relu->backward(cur);
  cur = bn->backward(cur);
  return conv->backward(cur);
}

void ConvUnit::append_parameters(std::vector<nn::Parameter*>& out) {
  for (auto* p : conv->parameters()) out.push_back(p);
  for (auto* p : bn->parameters()) out.push_back(p);
  if (gate) {
    for (auto* p : gate->parameters()) out.push_back(p);
  }
}

void ConvUnit::visit_state(const std::string& base,
                           const nn::StateVisitor& fn) {
  conv->visit_state(base + "conv.", fn);
  bn->visit_state(base + "bn.", fn);
  // Gates with learnable state (e.g. FBS saliency predictors) persist
  // with the model; attention gates are stateless and contribute nothing.
  if (gate) gate->visit_state(base + "gate.", fn);
}

void ConvUnit::set_training(bool training) {
  conv->set_training(training);
  bn->set_training(training);
  relu->set_training(training);
  if (gate) gate->set_training(training);
  if (pool) pool->set_training(training);
}

int ConvUnit::describe(plan::PlanBuilder& b, int cur, const std::string& name,
                       int block_index, bool spatially_aligned) const {
  cur = b.conv(conv.get(), bn.get(), /*relu=*/true, cur, /*residual=*/-1,
               name);
  if (gate) {
    cur = b.gate(gate.get(), cur, name + ".gate", block_index,
                 spatially_aligned);
  }
  if (pool) cur = b.max_pool(pool.get(), cur, name + ".pool");
  return cur;
}

}  // namespace antidote::models
