// ConvUnit — the conv -> BatchNorm -> ReLU (-> gate) (-> MaxPool) unit the
// VGG-style models (Vgg, SmallCnn) are stacks of. One shared
// implementation of the unit's training forward/backward, parameter and
// state plumbing, and its plan description replaces the per-model copies
// that used to live in vgg.cc and small_cnn.cc.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layers.h"
#include "nn/pooling.h"
#include "plan/builder.h"

namespace antidote::models {

struct ConvUnit {
  std::unique_ptr<nn::Conv2d> conv;
  std::unique_ptr<nn::BatchNorm2d> bn;
  std::unique_ptr<nn::ReLU> relu;
  std::unique_ptr<nn::Module> gate;     // nullable
  std::unique_ptr<nn::MaxPool2d> pool;  // nullable
  int block = 0;

  ConvUnit() = default;
  // 3x3/s1/p1 conv (bias-free: BatchNorm follows) of `width` filters,
  // with an optional trailing 2x2 MaxPool.
  ConvUnit(int in_channels, int width, bool with_pool, int block_index);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);
  void append_parameters(std::vector<nn::Parameter*>& out);
  void visit_state(const std::string& base, const nn::StateVisitor& fn);
  void set_training(bool training);
  int64_t last_macs() const { return conv->last_macs(); }

  // Appends the unit's fused steps to a plan under `name`; returns the
  // output buffer. `block_index`/`spatially_aligned` feed the consumer
  // conv's pruning metadata (see PlanBuilder::gate).
  int describe(plan::PlanBuilder& b, int cur, const std::string& name,
               int block_index, bool spatially_aligned) const;
};

}  // namespace antidote::models
