// FLOPs (multiply-accumulate) accounting.
//
// The library *measures* FLOPs rather than deriving them twice: every
// arithmetic layer reports the MACs its last forward actually executed
// (dense or masked), and the report sums them. `measure_dense_flops` probes
// a model with a dummy input to obtain the paper's "Baseline FLOPs" column;
// after a gated forward pass, `read_last_flops` yields the dynamic
// per-input FLOPs.
#pragma once

#include <string>
#include <vector>

#include "models/convnet.h"

namespace antidote::models {

struct LayerFlops {
  std::string name;
  int64_t macs = 0;
};

struct FlopsReport {
  int64_t total_macs = 0;
  std::vector<LayerFlops> layers;

  std::string to_string() const;
};

// Runs one dense eval-mode forward on a zero input of shape {1,C,H,W} and
// returns per-layer MACs. Gates are bypassed during the probe (they are
// removed and re-installed around it? no — they must not mask), so call
// this *before* installing gates, or on a gate-free clone.
FlopsReport measure_dense_flops(ConvNet& net, int channels, int height,
                                int width);

// Per-layer MACs of the most recent forward pass (whatever was executed:
// masked or dense, any batch size). Divide by the batch size for per-input
// numbers.
FlopsReport read_last_flops(ConvNet& net);

}  // namespace antidote::models
