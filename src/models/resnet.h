// CIFAR-style ResNet (He et al.): a 3x3 stem, three groups of basic blocks
// with base widths {16, 32, 64}, stride-2 transition at the start of groups
// 2 and 3, option-A (parameter-free) shortcuts, GlobalAvgPool + linear head.
// blocks_per_group = 9 gives ResNet-56 (6n+2 with n=9), 3 gives ResNet-20.
//
// Gate sites: one per basic block, observing the feature map after the
// first conv's ReLU — its only consumer is the block's second conv, so the
// skip connection's channel count is untouched (the paper's "odd layers
// only" rule).
#pragma once

#include "models/convnet.h"
#include "nn/batchnorm.h"
#include "nn/layers.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace antidote::models {

struct ResNetConfig {
  int num_classes = 10;
  int in_channels = 3;
  int blocks_per_group = 9;  // 9 -> ResNet-56, 3 -> ResNet-20
  float width_mult = 1.0f;   // scales base widths {16, 32, 64}
};

class ResNetCifar : public ConvNet {
 public:
  explicit ResNetCifar(const ResNetConfig& config);

  // --- nn::Module ---
  // (The context forward comes from ConvNet: it runs the compiled
  // InferencePlan — conv+BN fused, residual add and ReLU in the conv
  // epilogue — instead of walking the blocks.)
  using ConvNet::forward;
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<nn::Parameter*> parameters() override;
  void visit_state(const std::string& prefix,
                   const nn::StateVisitor& fn) override;
  void set_training(bool training) override;
  std::string type_name() const override { return "ResNetCifar"; }
  int64_t last_macs() const override;

  // --- ConvNet ---
  int num_gate_sites() const override {
    return static_cast<int>(blocks_.size());
  }
  void install_gate(int site, std::unique_ptr<nn::Module> gate) override;
  nn::Module* gate(int site) const override;
  nn::Conv2d* gate_consumer(int site) override;
  nn::Conv2d* gate_producer(int site) override;
  nn::BatchNorm2d* gate_producer_bn(int site) override;
  bool gate_spatially_aligned(int /*site*/) const override { return true; }
  int num_blocks() const override { return 3; }  // the three groups
  int block_of_site(int site) const override;
  std::vector<std::pair<std::string, nn::Module*>> arithmetic_layers()
      override;
  int num_classes() const override { return config_.num_classes; }
  std::string model_name() const override;

  const ResNetConfig& config() const { return config_; }

 protected:
  void build_plan(plan::PlanBuilder& builder) override;

 private:
  struct Block {
    std::unique_ptr<nn::Conv2d> conv1, conv2;
    std::unique_ptr<nn::BatchNorm2d> bn1, bn2;
    std::unique_ptr<nn::ReLU> relu1, relu2;
    std::unique_ptr<nn::Module> gate;  // after relu1; nullable
    int group = 0;
    int stride = 1;  // conv1 stride (2 at group transitions)
    int in_c = 0, out_c = 0;
    Tensor cached_input;  // for the shortcut's backward
  };

  Tensor block_forward(Block& b, const Tensor& x);
  Tensor block_backward(Block& b, const Tensor& dy);

  ResNetConfig config_;
  std::unique_ptr<nn::Conv2d> stem_conv_;
  std::unique_ptr<nn::BatchNorm2d> stem_bn_;
  std::unique_ptr<nn::ReLU> stem_relu_;
  std::vector<Block> blocks_;
  nn::GlobalAvgPool gap_;
  std::unique_ptr<nn::Linear> classifier_;
};

// Option-A shortcut: spatial subsampling by `stride` with zero-padded extra
// channels. Exposed for unit testing.
Tensor shortcut_option_a(const Tensor& x, int out_c, int stride,
                         nn::ExecutionContext* ctx = nullptr);
// Gradient of shortcut_option_a w.r.t. x.
Tensor shortcut_option_a_backward(const Tensor& dy, const Shape& in_shape,
                                  int stride);

}  // namespace antidote::models
