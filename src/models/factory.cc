#include "models/factory.h"

#include "base/error.h"
#include "models/resnet.h"
#include "models/small_cnn.h"
#include "models/vgg.h"
#include "nn/init.h"

namespace antidote::models {

std::unique_ptr<ConvNet> make_model(const std::string& name, int num_classes,
                                    float width_mult, Rng& rng) {
  std::unique_ptr<ConvNet> model;
  if (name == "vgg16") {
    VggConfig cfg;
    cfg.num_classes = num_classes;
    cfg.width_mult = width_mult;
    model = std::make_unique<Vgg>(cfg);
  } else if (name == "resnet20" || name == "resnet56") {
    ResNetConfig cfg;
    cfg.num_classes = num_classes;
    cfg.width_mult = width_mult;
    cfg.blocks_per_group = (name == "resnet56") ? 9 : 3;
    model = std::make_unique<ResNetCifar>(cfg);
  } else if (name == "small_cnn") {
    SmallCnnConfig cfg;
    cfg.num_classes = num_classes;
    model = std::make_unique<SmallCnn>(cfg);
  } else {
    AD_CHECK(false) << " unknown model name: " << name;
  }
  nn::init_module(*model, rng);
  return model;
}

}  // namespace antidote::models
