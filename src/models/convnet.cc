#include "models/convnet.h"

#include "base/error.h"
#include "plan/builder.h"
#include "plan/plan.h"

namespace antidote::models {

ConvNet::ConvNet()
    : regime_(plan::NumericRegime::kF32),
      coarsen_mode_(plan::CoarsenMode::kAuto),
      coarsen_mac_bias_(1.0),
      tile_mode_(plan::TileMode::kAuto),
      tile_n_(0) {}
ConvNet::~ConvNet() = default;

Tensor ConvNet::forward(const Tensor& x, nn::ExecutionContext& ctx) {
  if (is_training()) return forward(x);
  AD_CHECK_EQ(x.ndim(), 4) << " ConvNet expects NCHW, got " << x.shape_str();
  return inference_plan(x.dim(1), x.dim(2), x.dim(3)).run(x, ctx);
}

void ConvNet::set_training(bool training) {
  // Entering training mutates BatchNorm running statistics (folded into
  // the plan's epilogue constants at compile time); leaving it means a
  // fresh fold is needed. Either way the cached plan is stale.
  invalidate_plan();
  nn::Module::set_training(training);
}

plan::InferencePlan& ConvNet::inference_plan(int in_c, int in_h, int in_w) {
  if (plan_ == nullptr || plan_c_ != in_c || plan_h_ != in_h ||
      plan_w_ != in_w) {
    plan::PlanBuilder builder(Shape{in_c, in_h, in_w});
    build_plan(builder);
    plan_ = std::make_unique<plan::InferencePlan>(builder.finish());
    plan_c_ = in_c;
    plan_h_ = in_h;
    plan_w_ = in_w;
  }
  // Applied on every fetch (idempotent): plans compile as f32 with the
  // default coarsening policy, and the model's regime and policy must
  // survive recompiles (shape changes, gate installs).
  plan_->set_regime(regime_);
  plan_->set_coarsen({coarsen_mode_, coarsen_mac_bias_});
  plan_->set_tile({tile_mode_, tile_n_});
  plan_->set_compute_cap(compute_cap_);
  return *plan_;
}

void ConvNet::set_numeric_regime(plan::NumericRegime regime) {
  regime_ = regime;
  if (plan_ != nullptr) plan_->set_regime(regime);
}

void ConvNet::set_coarsen_policy(plan::CoarsenPolicy policy) {
  coarsen_mode_ = policy.mode;
  coarsen_mac_bias_ = policy.mac_bias;
  if (plan_ != nullptr) plan_->set_coarsen(policy);
}

void ConvNet::set_tile_policy(plan::TilePolicy policy) {
  tile_mode_ = policy.mode;
  tile_n_ = policy.n;
  if (plan_ != nullptr) plan_->set_tile(policy);
}

void ConvNet::set_compute_cap(double cap) {
  compute_cap_ = cap;
  if (plan_ != nullptr) plan_->set_compute_cap(cap);
}

void ConvNet::invalidate_plan() {
  plan_.reset();
  plan_c_ = plan_h_ = plan_w_ = -1;
}

}  // namespace antidote::models
