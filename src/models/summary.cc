#include "models/summary.h"

#include "base/table.h"
#include "models/flops.h"

namespace antidote::models {

std::string ModelSummary::to_string() const {
  Table table({"layer", "type", "params", "MACs"});
  for (const SummaryRow& r : rows) {
    table.add_row({r.name, r.type, std::to_string(r.parameters),
                   std::to_string(r.macs)});
  }
  table.add_row({"total", "", std::to_string(total_parameters),
                 std::to_string(total_macs)});
  return table.to_string();
}

ModelSummary summarize(ConvNet& net, int channels, int height, int width) {
  // Reuse the dense-FLOPs prober (handles gate disabling + mode restore).
  const FlopsReport flops = measure_dense_flops(net, channels, height, width);

  ModelSummary summary;
  auto layers = net.arithmetic_layers();
  for (size_t i = 0; i < layers.size(); ++i) {
    SummaryRow row;
    row.name = layers[i].first;
    row.type = layers[i].second->type_name();
    for (nn::Parameter* p : layers[i].second->parameters()) {
      row.parameters += p->value.size();
    }
    row.macs = flops.layers[i].macs;
    summary.rows.push_back(std::move(row));
  }
  // Totals count every parameter (BatchNorm etc.), not just the
  // arithmetic layers shown as rows.
  summary.total_parameters = nn::parameter_count(net);
  summary.total_macs = flops.total_macs;
  return summary;
}

}  // namespace antidote::models
