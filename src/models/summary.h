// Model summary: a layer-by-layer table (type, output shape, parameters,
// MACs) in the style of torchsummary, produced by probing the network with
// a dummy input. Used by the examples and handy when porting new models.
#pragma once

#include <string>

#include "models/convnet.h"

namespace antidote::models {

struct SummaryRow {
  std::string name;
  std::string type;
  int64_t parameters = 0;
  int64_t macs = 0;  // per probe sample
};

struct ModelSummary {
  std::vector<SummaryRow> rows;
  int64_t total_parameters = 0;
  int64_t total_macs = 0;

  // Aligned text table with totals.
  std::string to_string() const;
};

// Probes with a zero input of shape {1, channels, height, width} in eval
// mode (gates disabled for the probe, training flag restored).
ModelSummary summarize(ConvNet& net, int channels, int height, int width);

}  // namespace antidote::models
