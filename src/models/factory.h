// String-keyed model factory used by benchmarks and examples.
#pragma once

#include <memory>
#include <string>

#include "base/rng.h"
#include "models/convnet.h"

namespace antidote::models {

// Supported names: "vgg16", "resnet20", "resnet56", "small_cnn".
// `width_mult` scales all channel widths (1.0 = paper width). The model is
// returned with Kaiming-initialized weights drawn from `rng`.
std::unique_ptr<ConvNet> make_model(const std::string& name, int num_classes,
                                    float width_mult, Rng& rng);

}  // namespace antidote::models
