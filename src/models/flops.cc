#include "models/flops.h"

#include <sstream>

#include "base/error.h"

namespace antidote::models {

std::string FlopsReport::to_string() const {
  std::ostringstream os;
  for (const LayerFlops& l : layers) {
    os << "  " << l.name << ": " << l.macs << " MACs\n";
  }
  os << "  total: " << total_macs << " MACs\n";
  return os.str();
}

FlopsReport measure_dense_flops(ConvNet& net, int channels, int height,
                                int width) {
  // Temporarily disable any installed gates so the probe measures the
  // dense baseline, and run in eval mode so BatchNorm statistics are
  // untouched.
  std::vector<nn::Gate*> disabled;
  for (int s = 0; s < net.num_gate_sites(); ++s) {
    if (auto* g = dynamic_cast<nn::Gate*>(net.gate(s)); g && g->enabled()) {
      g->set_enabled(false);
      disabled.push_back(g);
    }
  }
  const bool was_training = net.is_training();
  net.set_training(false);
  Tensor probe({1, channels, height, width});
  net.forward(probe);
  FlopsReport report = read_last_flops(net);
  net.set_training(was_training);
  for (nn::Gate* g : disabled) g->set_enabled(true);
  return report;
}

FlopsReport read_last_flops(ConvNet& net) {
  FlopsReport report;
  for (auto& [name, layer] : net.arithmetic_layers()) {
    report.layers.push_back({name, layer->last_macs()});
    report.total_macs += layer->last_macs();
  }
  return report;
}

}  // namespace antidote::models
