#include "models/vgg.h"

#include <algorithm>
#include <cmath>

#include "base/error.h"

namespace antidote::models {

namespace {
int scaled(int base, float mult) {
  return std::max(1, static_cast<int>(std::lround(base * mult)));
}
}  // namespace

Vgg::Vgg(const VggConfig& config) : config_(config) {
  AD_CHECK_EQ(config.layers_per_block.size(), config.block_widths.size());
  AD_CHECK(!config.layers_per_block.empty());
  AD_CHECK_GT(config.width_mult, 0.f);

  int in_c = config.in_channels;
  for (size_t b = 0; b < config.layers_per_block.size(); ++b) {
    const int width = scaled(config.block_widths[b], config.width_mult);
    for (int l = 0; l < config.layers_per_block[b]; ++l) {
      units_.emplace_back(in_c, width,
                          /*with_pool=*/l == config.layers_per_block[b] - 1,
                          static_cast<int>(b));
      in_c = width;
    }
  }
  classifier_ = std::make_unique<nn::Linear>(in_c, config.num_classes);
}

Tensor Vgg::forward(const Tensor& x) {
  Tensor cur = x;
  for (ConvUnit& u : units_) cur = u.forward(cur);
  cur = gap_.forward(cur);
  return classifier_->forward(cur);
}

Tensor Vgg::backward(const Tensor& grad_out) {
  Tensor cur = classifier_->backward(grad_out);
  cur = gap_.backward(cur);
  for (auto it = units_.rbegin(); it != units_.rend(); ++it) {
    cur = it->backward(cur);
  }
  return cur;
}

void Vgg::build_plan(plan::PlanBuilder& builder) {
  int cur = builder.input();
  for (size_t i = 0; i < units_.size(); ++i) {
    cur = units_[i].describe(builder, cur, "conv" + std::to_string(i),
                             units_[i].block,
                             gate_spatially_aligned(static_cast<int>(i)));
  }
  builder.linear(classifier_.get(), builder.global_avg_pool(cur, "gap"),
                 "fc");
}

std::vector<nn::Parameter*> Vgg::parameters() {
  std::vector<nn::Parameter*> out;
  for (ConvUnit& u : units_) u.append_parameters(out);
  for (auto* p : classifier_->parameters()) out.push_back(p);
  return out;
}

void Vgg::visit_state(const std::string& prefix, const nn::StateVisitor& fn) {
  for (size_t i = 0; i < units_.size(); ++i) {
    units_[i].visit_state(prefix + "features." + std::to_string(i) + ".", fn);
  }
  classifier_->visit_state(prefix + "fc.", fn);
}

void Vgg::set_training(bool training) {
  ConvNet::set_training(training);
  for (ConvUnit& u : units_) u.set_training(training);
  gap_.set_training(training);
  classifier_->set_training(training);
}

int64_t Vgg::last_macs() const {
  int64_t total = 0;
  for (const ConvUnit& u : units_) total += u.last_macs();
  return total + classifier_->last_macs();
}

void Vgg::install_gate(int site, std::unique_ptr<nn::Module> gate) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  if (gate) gate->set_training(is_training());
  units_[static_cast<size_t>(site)].gate = std::move(gate);
  invalidate_plan();
}

nn::Module* Vgg::gate(int site) const {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return units_[static_cast<size_t>(site)].gate.get();
}

nn::Conv2d* Vgg::gate_consumer(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  if (site + 1 >= num_gate_sites()) return nullptr;
  return units_[static_cast<size_t>(site) + 1].conv.get();
}

nn::Conv2d* Vgg::gate_producer(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return units_[static_cast<size_t>(site)].conv.get();
}

nn::BatchNorm2d* Vgg::gate_producer_bn(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return units_[static_cast<size_t>(site)].bn.get();
}

bool Vgg::gate_spatially_aligned(int site) const {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  // A pool between the gate and the next conv changes the spatial grid;
  // VGG convs themselves are 3x3/s1/p1 and grid-preserving.
  if (site + 1 >= num_gate_sites()) return false;
  return units_[static_cast<size_t>(site)].pool == nullptr;
}

int Vgg::block_of_site(int site) const {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return units_[static_cast<size_t>(site)].block;
}

std::vector<std::pair<std::string, nn::Module*>> Vgg::arithmetic_layers() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  for (size_t i = 0; i < units_.size(); ++i) {
    out.emplace_back("conv" + std::to_string(i), units_[i].conv.get());
  }
  out.emplace_back("fc", classifier_.get());
  return out;
}

nn::Conv2d* Vgg::conv(int i) {
  AD_CHECK(i >= 0 && i < num_gate_sites()) << " conv index " << i;
  return units_[static_cast<size_t>(i)].conv.get();
}

}  // namespace antidote::models
