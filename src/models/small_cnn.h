// SmallCnn: a compact conv-bn-relu stack used throughout the test suite and
// the quickstart example. Structurally a miniature VGG (one gate site after
// every conv, optional pooling per stage), so every core mechanism —
// attention gating, TTD, masked convolution, sensitivity analysis — can be
// exercised in milliseconds.
#pragma once

#include "models/convnet.h"
#include "models/unit.h"
#include "nn/batchnorm.h"
#include "nn/layers.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace antidote::models {

struct SmallCnnConfig {
  int num_classes = 4;
  int in_channels = 3;
  std::vector<int> widths = {8, 16};
  // pool_after[i]: MaxPool(2) after stage i. Defaults to pooling everywhere;
  // tests disable pooling to exercise spatially-aligned gates.
  std::vector<bool> pool_after = {};  // empty = all true
};

class SmallCnn : public ConvNet {
 public:
  explicit SmallCnn(const SmallCnnConfig& config);

  using ConvNet::forward;  // keep the plan-backed context overload visible
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<nn::Parameter*> parameters() override;
  void visit_state(const std::string& prefix,
                   const nn::StateVisitor& fn) override;
  void set_training(bool training) override;
  std::string type_name() const override { return "SmallCnn"; }
  int64_t last_macs() const override;

  int num_gate_sites() const override {
    return static_cast<int>(stages_.size());
  }
  void install_gate(int site, std::unique_ptr<nn::Module> gate) override;
  nn::Module* gate(int site) const override;
  nn::Conv2d* gate_consumer(int site) override;
  nn::Conv2d* gate_producer(int site) override;
  nn::BatchNorm2d* gate_producer_bn(int site) override;
  bool gate_spatially_aligned(int site) const override;
  int num_blocks() const override { return num_gate_sites(); }
  int block_of_site(int site) const override { return site; }
  std::vector<std::pair<std::string, nn::Module*>> arithmetic_layers()
      override;
  int num_classes() const override { return config_.num_classes; }
  std::string model_name() const override { return "small_cnn"; }

  nn::Conv2d* conv(int i);

 protected:
  void build_plan(plan::PlanBuilder& builder) override;

 private:
  SmallCnnConfig config_;
  std::vector<ConvUnit> stages_;
  nn::GlobalAvgPool gap_;
  std::unique_ptr<nn::Linear> classifier_;
};

}  // namespace antidote::models
