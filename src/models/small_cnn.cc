#include "models/small_cnn.h"

#include "base/error.h"

namespace antidote::models {

SmallCnn::SmallCnn(const SmallCnnConfig& config) : config_(config) {
  AD_CHECK(!config.widths.empty());
  std::vector<bool> pool = config.pool_after;
  if (pool.empty()) pool.assign(config.widths.size(), true);
  AD_CHECK_EQ(pool.size(), config.widths.size());
  config_.pool_after = pool;

  int in_c = config.in_channels;
  for (size_t i = 0; i < config.widths.size(); ++i) {
    stages_.emplace_back(in_c, config.widths[i], pool[i],
                         static_cast<int>(i));
    in_c = config.widths[i];
  }
  classifier_ = std::make_unique<nn::Linear>(in_c, config.num_classes);
}

Tensor SmallCnn::forward(const Tensor& x) {
  Tensor cur = x;
  for (ConvUnit& s : stages_) cur = s.forward(cur);
  cur = gap_.forward(cur);
  return classifier_->forward(cur);
}

Tensor SmallCnn::backward(const Tensor& grad_out) {
  Tensor cur = classifier_->backward(grad_out);
  cur = gap_.backward(cur);
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    cur = it->backward(cur);
  }
  return cur;
}

void SmallCnn::build_plan(plan::PlanBuilder& builder) {
  int cur = builder.input();
  for (size_t i = 0; i < stages_.size(); ++i) {
    cur = stages_[i].describe(builder, cur, "conv" + std::to_string(i),
                              static_cast<int>(i),
                              gate_spatially_aligned(static_cast<int>(i)));
  }
  builder.linear(classifier_.get(), builder.global_avg_pool(cur, "gap"),
                 "fc");
}

std::vector<nn::Parameter*> SmallCnn::parameters() {
  std::vector<nn::Parameter*> out;
  for (ConvUnit& s : stages_) s.append_parameters(out);
  for (auto* p : classifier_->parameters()) out.push_back(p);
  return out;
}

void SmallCnn::visit_state(const std::string& prefix,
                           const nn::StateVisitor& fn) {
  for (size_t i = 0; i < stages_.size(); ++i) {
    stages_[i].visit_state(prefix + "stage" + std::to_string(i) + ".", fn);
  }
  classifier_->visit_state(prefix + "fc.", fn);
}

void SmallCnn::set_training(bool training) {
  ConvNet::set_training(training);
  for (ConvUnit& s : stages_) s.set_training(training);
  gap_.set_training(training);
  classifier_->set_training(training);
}

int64_t SmallCnn::last_macs() const {
  int64_t total = 0;
  for (const ConvUnit& s : stages_) total += s.last_macs();
  return total + classifier_->last_macs();
}

void SmallCnn::install_gate(int site, std::unique_ptr<nn::Module> gate) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  if (gate) gate->set_training(is_training());
  stages_[static_cast<size_t>(site)].gate = std::move(gate);
  invalidate_plan();
}

nn::Module* SmallCnn::gate(int site) const {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return stages_[static_cast<size_t>(site)].gate.get();
}

nn::Conv2d* SmallCnn::gate_consumer(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  if (site + 1 >= num_gate_sites()) return nullptr;
  return stages_[static_cast<size_t>(site) + 1].conv.get();
}

nn::Conv2d* SmallCnn::gate_producer(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return stages_[static_cast<size_t>(site)].conv.get();
}

nn::BatchNorm2d* SmallCnn::gate_producer_bn(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return stages_[static_cast<size_t>(site)].bn.get();
}

bool SmallCnn::gate_spatially_aligned(int site) const {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  if (site + 1 >= num_gate_sites()) return false;
  return stages_[static_cast<size_t>(site)].pool == nullptr;
}

std::vector<std::pair<std::string, nn::Module*>> SmallCnn::arithmetic_layers() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  for (size_t i = 0; i < stages_.size(); ++i) {
    out.emplace_back("conv" + std::to_string(i), stages_[i].conv.get());
  }
  out.emplace_back("fc", classifier_.get());
  return out;
}

nn::Conv2d* SmallCnn::conv(int i) {
  AD_CHECK(i >= 0 && i < num_gate_sites()) << " conv index " << i;
  return stages_[static_cast<size_t>(i)].conv.get();
}

}  // namespace antidote::models
