#include "models/small_cnn.h"

#include "base/error.h"

namespace antidote::models {

SmallCnn::SmallCnn(const SmallCnnConfig& config) : config_(config) {
  AD_CHECK(!config.widths.empty());
  std::vector<bool> pool = config.pool_after;
  if (pool.empty()) pool.assign(config.widths.size(), true);
  AD_CHECK_EQ(pool.size(), config.widths.size());
  config_.pool_after = pool;

  int in_c = config.in_channels;
  for (size_t i = 0; i < config.widths.size(); ++i) {
    Stage s;
    s.conv = std::make_unique<nn::Conv2d>(in_c, config.widths[i], 3, 1, 1,
                                          /*bias=*/false);
    s.bn = std::make_unique<nn::BatchNorm2d>(config.widths[i]);
    s.relu = std::make_unique<nn::ReLU>();
    if (pool[i]) s.pool = std::make_unique<nn::MaxPool2d>(2);
    stages_.push_back(std::move(s));
    in_c = config.widths[i];
  }
  classifier_ = std::make_unique<nn::Linear>(in_c, config.num_classes);
}

Tensor SmallCnn::forward(const Tensor& x) {
  Tensor cur = x;
  for (Stage& s : stages_) {
    cur = s.conv->forward(cur);
    cur = s.bn->forward(cur);
    cur = s.relu->forward(cur);
    if (s.gate) cur = s.gate->forward(cur);
    if (s.pool) cur = s.pool->forward(cur);
  }
  cur = gap_.forward(cur);
  return classifier_->forward(cur);
}

Tensor SmallCnn::forward(const Tensor& x, nn::ExecutionContext& ctx) {
  if (is_training()) return forward(x);
  Tensor cur = x;
  for (Stage& s : stages_) {
    cur = s.conv->forward(cur, ctx);
    cur = s.bn->forward(cur, ctx);
    cur = s.relu->forward(cur, ctx);
    if (s.gate) cur = s.gate->forward(cur, ctx);
    if (s.pool) cur = s.pool->forward(cur, ctx);
  }
  cur = gap_.forward(cur, ctx);
  return classifier_->forward(cur, ctx);
}

Tensor SmallCnn::backward(const Tensor& grad_out) {
  Tensor cur = classifier_->backward(grad_out);
  cur = gap_.backward(cur);
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    Stage& s = *it;
    if (s.pool) cur = s.pool->backward(cur);
    if (s.gate) cur = s.gate->backward(cur);
    cur = s.relu->backward(cur);
    cur = s.bn->backward(cur);
    cur = s.conv->backward(cur);
  }
  return cur;
}

std::vector<nn::Parameter*> SmallCnn::parameters() {
  std::vector<nn::Parameter*> out;
  for (Stage& s : stages_) {
    for (auto* p : s.conv->parameters()) out.push_back(p);
    for (auto* p : s.bn->parameters()) out.push_back(p);
    if (s.gate) {
      for (auto* p : s.gate->parameters()) out.push_back(p);
    }
  }
  for (auto* p : classifier_->parameters()) out.push_back(p);
  return out;
}

void SmallCnn::visit_state(const std::string& prefix,
                           const nn::StateVisitor& fn) {
  for (size_t i = 0; i < stages_.size(); ++i) {
    const std::string base = prefix + "stage" + std::to_string(i) + ".";
    stages_[i].conv->visit_state(base + "conv.", fn);
    stages_[i].bn->visit_state(base + "bn.", fn);
    if (stages_[i].gate) stages_[i].gate->visit_state(base + "gate.", fn);
  }
  classifier_->visit_state(prefix + "fc.", fn);
}

void SmallCnn::set_training(bool training) {
  nn::Module::set_training(training);
  for (Stage& s : stages_) {
    s.conv->set_training(training);
    s.bn->set_training(training);
    s.relu->set_training(training);
    if (s.gate) s.gate->set_training(training);
    if (s.pool) s.pool->set_training(training);
  }
  gap_.set_training(training);
  classifier_->set_training(training);
}

int64_t SmallCnn::last_macs() const {
  int64_t total = 0;
  for (const Stage& s : stages_) total += s.conv->last_macs();
  return total + classifier_->last_macs();
}

void SmallCnn::install_gate(int site, std::unique_ptr<nn::Module> gate) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  if (gate) gate->set_training(is_training());
  stages_[static_cast<size_t>(site)].gate = std::move(gate);
}

nn::Module* SmallCnn::gate(int site) const {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return stages_[static_cast<size_t>(site)].gate.get();
}

nn::Conv2d* SmallCnn::gate_consumer(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  if (site + 1 >= num_gate_sites()) return nullptr;
  return stages_[static_cast<size_t>(site) + 1].conv.get();
}

nn::Conv2d* SmallCnn::gate_producer(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return stages_[static_cast<size_t>(site)].conv.get();
}

nn::BatchNorm2d* SmallCnn::gate_producer_bn(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return stages_[static_cast<size_t>(site)].bn.get();
}

bool SmallCnn::gate_spatially_aligned(int site) const {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  if (site + 1 >= num_gate_sites()) return false;
  return stages_[static_cast<size_t>(site)].pool == nullptr;
}

std::vector<std::pair<std::string, nn::Module*>> SmallCnn::arithmetic_layers() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  for (size_t i = 0; i < stages_.size(); ++i) {
    out.emplace_back("conv" + std::to_string(i), stages_[i].conv.get());
  }
  out.emplace_back("fc", classifier_.get());
  return out;
}

nn::Conv2d* SmallCnn::conv(int i) {
  AD_CHECK(i >= 0 && i < num_gate_sites()) << " conv index " << i;
  return stages_[static_cast<size_t>(i)].conv.get();
}

}  // namespace antidote::models
