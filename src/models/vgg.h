// VGG-16 (CIFAR variant): 13 conv layers in 5 blocks of [2,2,3,3,3] layers
// with [64,128,256,512,512] filters (3x3, stride 1, pad 1), BatchNorm+ReLU
// after every conv, 2x2 MaxPool after every block, then GlobalAvgPool and a
// single linear classifier. `width_mult` scales every width (CPU-budget
// experiments run reduced widths; ANTIDOTE_BENCH_SCALE=full restores 1.0).
#pragma once

#include "models/convnet.h"
#include "models/unit.h"
#include "nn/batchnorm.h"
#include "nn/layers.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace antidote::models {

struct VggConfig {
  int num_classes = 10;
  int in_channels = 3;
  float width_mult = 1.0f;
  // Per-block conv counts / base widths of VGG-16.
  std::vector<int> layers_per_block = {2, 2, 3, 3, 3};
  std::vector<int> block_widths = {64, 128, 256, 512, 512};
};

class Vgg : public ConvNet {
 public:
  explicit Vgg(const VggConfig& config);

  // --- nn::Module ---
  // (The context forward comes from ConvNet: it runs the compiled
  // InferencePlan instead of walking the units.)
  using ConvNet::forward;
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<nn::Parameter*> parameters() override;
  void visit_state(const std::string& prefix,
                   const nn::StateVisitor& fn) override;
  void set_training(bool training) override;
  std::string type_name() const override { return "Vgg"; }
  int64_t last_macs() const override;

  // --- ConvNet ---
  int num_gate_sites() const override {
    return static_cast<int>(units_.size());
  }
  void install_gate(int site, std::unique_ptr<nn::Module> gate) override;
  nn::Module* gate(int site) const override;
  nn::Conv2d* gate_consumer(int site) override;
  nn::Conv2d* gate_producer(int site) override;
  nn::BatchNorm2d* gate_producer_bn(int site) override;
  bool gate_spatially_aligned(int site) const override;
  int num_blocks() const override {
    return static_cast<int>(config_.layers_per_block.size());
  }
  int block_of_site(int site) const override;
  std::vector<std::pair<std::string, nn::Module*>> arithmetic_layers()
      override;
  int num_classes() const override { return config_.num_classes; }
  std::string model_name() const override { return "vgg16"; }

  // Conv layer at index i (0..12 for VGG16); sites and conv layers coincide.
  nn::Conv2d* conv(int i);
  const VggConfig& config() const { return config_; }

 protected:
  void build_plan(plan::PlanBuilder& builder) override;

 private:
  VggConfig config_;
  std::vector<ConvUnit> units_;  // pool non-null after a block's last conv
  nn::GlobalAvgPool gap_;
  std::unique_ptr<nn::Linear> classifier_;
};

}  // namespace antidote::models
