// ConvNet: the model-side contract AntiDote's dynamic optimization plugs
// into.
//
// A ConvNet exposes *gate sites* — the positions "between two consecutive
// convolutional layers" (paper Fig. 1) where a feature-map gate may be
// installed. A gate is an ordinary nn::Module observing the post-ReLU
// feature map; the model additionally tells the gate's owner which Conv2d
// consumes that feature map (so test-phase pruning can instruct it to skip
// channels/positions) and whether the consumer preserves the spatial grid
// (so spatial-column masks are well-defined).
//
// For VGG there is one site after every conv layer; for CIFAR ResNets there
// is one site per basic block, after the first conv's ReLU — the paper
// prunes "only the odd layers in the group" because the even layers' output
// must keep the channel count of the skip connection.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/module.h"

namespace antidote::plan {
class InferencePlan;
class PlanBuilder;
enum class NumericRegime;
enum class CoarsenMode;
struct CoarsenPolicy;
enum class TileMode;
struct TilePolicy;
}  // namespace antidote::plan

namespace antidote::models {

class ConvNet : public nn::Module {
 public:
  ConvNet();
  ~ConvNet() override;

  // --- compiled inference ---
  // The test-phase context forward runs a compiled InferencePlan (BN
  // folded into fused conv steps, buffer offsets planned ahead of time)
  // instead of walking the module tree; see src/plan/. The plan is
  // compiled lazily for the input shape and cached; training forwards
  // keep the module walk (the plain overload is untouched).
  using nn::Module::forward;
  Tensor forward(const Tensor& x, nn::ExecutionContext& ctx) override;

  // Invalidates the cached plan: BatchNorm statistics folded at compile
  // time go stale when training touches them.
  void set_training(bool training) override;

  // The compiled plan for a {C, H, W} input, building it if needed.
  // Callers that must not allocate during the first forward (serving
  // replicas, benches) compile and reserve through this up front.
  plan::InferencePlan& inference_plan(int in_c, int in_h, int in_w);
  // The cached plan, if one is compiled (nullptr otherwise).
  plan::InferencePlan* current_plan() { return plan_.get(); }
  // Drops the cached plan; the next context forward recompiles. Models
  // call this on structural changes (gate install/remove); call it
  // manually after mutating weights or BN statistics in eval mode (e.g.
  // loading a checkpoint into an already-eval model).
  void invalidate_plan();

  // Numeric regime every compiled plan runs under (f32 by default). Set
  // before the first context forward (or any time — it applies to the
  // cached plan and to every future compile, including plans built after
  // a shape change or invalidate_plan). Serving replica factories call
  // this so replicas come up quantized without ever executing f32.
  void set_numeric_regime(plan::NumericRegime regime);
  plan::NumericRegime numeric_regime() const { return regime_; }

  // Similar-mask union coarsening policy every compiled plan runs under
  // (auto by default). Like the numeric regime, it is sticky: applied to
  // the cached plan and re-applied to every future compile, so callers
  // (CLI --coarsen flag, serving controller) set it once on the model.
  void set_coarsen_policy(plan::CoarsenPolicy policy);

  // Spatial tiling policy of the plans' conv lowering (auto by default).
  // Sticky like the coarsening policy. Set before reserve(): the policy
  // changes each conv step's kernel scratch, hence the arena footprint.
  void set_tile_policy(plan::TilePolicy policy);

  // Per-request compute cap every compiled plan enforces (1.0 = uncapped
  // by default): the max kept-MAC fraction a sample's runtime masks may
  // demand of any conv step before the executor clamps them. Sticky like
  // the other plan policies; the serving stack sets it once per replica.
  void set_compute_cap(double cap);
  double compute_cap() const { return compute_cap_; }

  // --- gate sites ---
  virtual int num_gate_sites() const = 0;
  // Installs (replacing any previous) gate at `site`; nullptr removes it.
  virtual void install_gate(int site, std::unique_ptr<nn::Module> gate) = 0;
  virtual nn::Module* gate(int site) const = 0;
  void clear_gates() {
    for (int s = 0; s < num_gate_sites(); ++s) install_gate(s, nullptr);
  }
  // The convolution that consumes the gated feature map (nullptr when the
  // site output feeds only the classifier head).
  virtual nn::Conv2d* gate_consumer(int site) = 0;
  // The convolution that produced the feature map observed at `site`.
  // Static filter pruning uses this to skip the pruned filters at their
  // source as well.
  virtual nn::Conv2d* gate_producer(int site) = 0;
  // The BatchNorm normalizing the producer's output (nullptr if none);
  // static pruning zeroes its affine parameters for pruned filters.
  virtual nn::BatchNorm2d* gate_producer_bn(int site) = 0;
  // True when the consumer sees the same spatial grid the gate masks
  // (no pooling in between and a grid-preserving consumer), i.e. spatial
  // column masks can be forwarded as skip instructions.
  virtual bool gate_spatially_aligned(int site) const = 0;

  // --- block structure (for per-block pruning ratios, Fig. 3) ---
  virtual int num_blocks() const = 0;
  virtual int block_of_site(int site) const = 0;

  // --- introspection ---
  // MAC-counting layers in execution order, with hierarchical names.
  virtual std::vector<std::pair<std::string, nn::Module*>>
  arithmetic_layers() = 0;
  virtual int num_classes() const = 0;
  virtual std::string model_name() const = 0;

 protected:
  // Describes the model's eval-phase dataflow to the plan compiler by
  // appending ops in execution order (see plan::PlanBuilder).
  virtual void build_plan(plan::PlanBuilder& builder) = 0;

 private:
  std::unique_ptr<plan::InferencePlan> plan_;
  int plan_c_ = -1, plan_h_ = -1, plan_w_ = -1;
  // Initialized to kF32 in the constructor (the enum is opaque here).
  plan::NumericRegime regime_;
  // Sticky coarsening policy (kAuto / bias 1.0 in the constructor; the
  // struct is opaque here, so the fields are carried unpacked).
  plan::CoarsenMode coarsen_mode_;
  double coarsen_mac_bias_;
  // Sticky tiling policy (kAuto / 0 in the constructor), same treatment.
  plan::TileMode tile_mode_;
  int tile_n_;
  // Sticky per-request compute cap (1.0 = uncapped).
  double compute_cap_ = 1.0;
};

}  // namespace antidote::models
