// ConvNet: the model-side contract AntiDote's dynamic optimization plugs
// into.
//
// A ConvNet exposes *gate sites* — the positions "between two consecutive
// convolutional layers" (paper Fig. 1) where a feature-map gate may be
// installed. A gate is an ordinary nn::Module observing the post-ReLU
// feature map; the model additionally tells the gate's owner which Conv2d
// consumes that feature map (so test-phase pruning can instruct it to skip
// channels/positions) and whether the consumer preserves the spatial grid
// (so spatial-column masks are well-defined).
//
// For VGG there is one site after every conv layer; for CIFAR ResNets there
// is one site per basic block, after the first conv's ReLU — the paper
// prunes "only the odd layers in the group" because the even layers' output
// must keep the channel count of the skip connection.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/module.h"

namespace antidote::models {

class ConvNet : public nn::Module {
 public:
  // --- gate sites ---
  virtual int num_gate_sites() const = 0;
  // Installs (replacing any previous) gate at `site`; nullptr removes it.
  virtual void install_gate(int site, std::unique_ptr<nn::Module> gate) = 0;
  virtual nn::Module* gate(int site) const = 0;
  void clear_gates() {
    for (int s = 0; s < num_gate_sites(); ++s) install_gate(s, nullptr);
  }
  // The convolution that consumes the gated feature map (nullptr when the
  // site output feeds only the classifier head).
  virtual nn::Conv2d* gate_consumer(int site) = 0;
  // The convolution that produced the feature map observed at `site`.
  // Static filter pruning uses this to skip the pruned filters at their
  // source as well.
  virtual nn::Conv2d* gate_producer(int site) = 0;
  // The BatchNorm normalizing the producer's output (nullptr if none);
  // static pruning zeroes its affine parameters for pruned filters.
  virtual nn::BatchNorm2d* gate_producer_bn(int site) = 0;
  // True when the consumer sees the same spatial grid the gate masks
  // (no pooling in between and a grid-preserving consumer), i.e. spatial
  // column masks can be forwarded as skip instructions.
  virtual bool gate_spatially_aligned(int site) const = 0;

  // --- block structure (for per-block pruning ratios, Fig. 3) ---
  virtual int num_blocks() const = 0;
  virtual int block_of_site(int site) const = 0;

  // --- introspection ---
  // MAC-counting layers in execution order, with hierarchical names.
  virtual std::vector<std::pair<std::string, nn::Module*>>
  arithmetic_layers() = 0;
  virtual int num_classes() const = 0;
  virtual std::string model_name() const = 0;
};

}  // namespace antidote::models
