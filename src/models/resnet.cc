#include "models/resnet.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/error.h"
#include "nn/conv_kernels.h"
#include "plan/builder.h"
#include "tensor/ops.h"

namespace antidote::models {

namespace {
int scaled(int base, float mult) {
  return std::max(1, static_cast<int>(std::lround(base * mult)));
}
constexpr int kBaseWidths[3] = {16, 32, 64};
}  // namespace

Tensor shortcut_option_a(const Tensor& x, int out_c, int stride,
                         nn::ExecutionContext* ctx) {
  AD_CHECK_EQ(x.ndim(), 4);
  const int n = x.dim(0), in_c = x.dim(1), h = x.dim(2), w = x.dim(3);
  AD_CHECK_GE(out_c, in_c);
  if (out_c == in_c && stride == 1) return x;
  const int oh = (h + stride - 1) / stride;
  const int ow = (w + stride - 1) / stride;
  Tensor y = ctx != nullptr ? ctx->alloc({n, out_c, oh, ow})
                            : Tensor({n, out_c, oh, ow});
  // The shared kernel zero-fills (arena memory is uninitialized; pruned
  // extra channels must stay zero) and writes the subsampled grid.
  nn::shortcut_subsample_into(x.data(), n, in_c, h, w, out_c, stride,
                              y.data());
  return y;
}

Tensor shortcut_option_a_backward(const Tensor& dy, const Shape& in_shape,
                                  int stride) {
  AD_CHECK_EQ(in_shape.size(), 4u);
  const int n = in_shape[0], in_c = in_shape[1];
  if (dy.dim(1) == in_c && stride == 1) return dy;
  Tensor dx(in_shape);
  const int oh = dy.dim(2), ow = dy.dim(3);
  for (int b = 0; b < n; ++b) {
    for (int c = 0; c < in_c; ++c) {  // gradients of padded channels vanish
      for (int yy = 0; yy < oh; ++yy) {
        for (int xx = 0; xx < ow; ++xx) {
          dx.at4(b, c, yy * stride, xx * stride) = dy.at4(b, c, yy, xx);
        }
      }
    }
  }
  return dx;
}

ResNetCifar::ResNetCifar(const ResNetConfig& config) : config_(config) {
  AD_CHECK_GT(config.blocks_per_group, 0);
  AD_CHECK_GT(config.width_mult, 0.f);
  const int w0 = scaled(kBaseWidths[0], config.width_mult);
  stem_conv_ = std::make_unique<nn::Conv2d>(config.in_channels, w0, 3, 1, 1,
                                            /*bias=*/false);
  stem_bn_ = std::make_unique<nn::BatchNorm2d>(w0);
  stem_relu_ = std::make_unique<nn::ReLU>();

  int in_c = w0;
  for (int g = 0; g < 3; ++g) {
    const int width = scaled(kBaseWidths[g], config.width_mult);
    for (int i = 0; i < config.blocks_per_group; ++i) {
      Block b;
      b.group = g;
      b.stride = (g > 0 && i == 0) ? 2 : 1;
      b.in_c = in_c;
      b.out_c = width;
      b.conv1 = std::make_unique<nn::Conv2d>(in_c, width, 3, b.stride, 1,
                                             /*bias=*/false);
      b.bn1 = std::make_unique<nn::BatchNorm2d>(width);
      b.relu1 = std::make_unique<nn::ReLU>();
      b.conv2 =
          std::make_unique<nn::Conv2d>(width, width, 3, 1, 1, /*bias=*/false);
      b.bn2 = std::make_unique<nn::BatchNorm2d>(width);
      b.relu2 = std::make_unique<nn::ReLU>();
      blocks_.push_back(std::move(b));
      in_c = width;
    }
  }
  classifier_ = std::make_unique<nn::Linear>(in_c, config.num_classes);
}

Tensor ResNetCifar::block_forward(Block& b, const Tensor& x) {
  b.cached_input = x;
  Tensor out = b.conv1->forward(x);
  out = b.bn1->forward(out);
  out = b.relu1->forward(out);
  if (b.gate) out = b.gate->forward(out);
  out = b.conv2->forward(out);
  out = b.bn2->forward(out);
  const Tensor sc = shortcut_option_a(x, b.out_c, b.stride);
  ops::add_(out, sc);
  return b.relu2->forward(out);
}

Tensor ResNetCifar::block_backward(Block& b, const Tensor& dy) {
  Tensor d = b.relu2->backward(dy);
  // Branch path.
  Tensor db = b.bn2->backward(d);
  db = b.conv2->backward(db);
  if (b.gate) db = b.gate->backward(db);
  db = b.relu1->backward(db);
  db = b.bn1->backward(db);
  db = b.conv1->backward(db);
  // Shortcut path.
  Tensor ds =
      shortcut_option_a_backward(d, b.cached_input.shape(), b.stride);
  ops::add_(db, ds);
  return db;
}

Tensor ResNetCifar::forward(const Tensor& x) {
  Tensor cur = stem_conv_->forward(x);
  cur = stem_bn_->forward(cur);
  cur = stem_relu_->forward(cur);
  for (Block& b : blocks_) cur = block_forward(b, cur);
  cur = gap_.forward(cur);
  return classifier_->forward(cur);
}

void ResNetCifar::build_plan(plan::PlanBuilder& builder) {
  int cur = builder.conv(stem_conv_.get(), stem_bn_.get(), /*relu=*/true,
                         builder.input(), /*residual=*/-1, "stem");
  for (size_t i = 0; i < blocks_.size(); ++i) {
    Block& b = blocks_[i];
    const std::string base = "block" + std::to_string(i);
    // The option-A shortcut is scheduled before the branch (values are
    // order-independent; the planner keeps both alive until the fused
    // conv2 epilogue consumes the residual).
    const int sc = builder.shortcut(cur, b.out_c, b.stride, base + ".sc");
    int t = builder.conv(b.conv1.get(), b.bn1.get(), /*relu=*/true, cur,
                         /*residual=*/-1, base + ".conv1");
    if (b.gate) {
      t = builder.gate(b.gate.get(), t, base + ".gate", b.group,
                       /*spatially_aligned=*/true);
    }
    cur = builder.conv(b.conv2.get(), b.bn2.get(), /*relu=*/true, t,
                       /*residual=*/sc, base + ".conv2");
  }
  builder.linear(classifier_.get(), builder.global_avg_pool(cur, "gap"),
                 "fc");
}

Tensor ResNetCifar::backward(const Tensor& grad_out) {
  Tensor cur = classifier_->backward(grad_out);
  cur = gap_.backward(cur);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    cur = block_backward(*it, cur);
  }
  cur = stem_relu_->backward(cur);
  cur = stem_bn_->backward(cur);
  return stem_conv_->backward(cur);
}

std::vector<nn::Parameter*> ResNetCifar::parameters() {
  std::vector<nn::Parameter*> out;
  auto append = [&out](std::vector<nn::Parameter*> ps) {
    out.insert(out.end(), ps.begin(), ps.end());
  };
  append(stem_conv_->parameters());
  append(stem_bn_->parameters());
  for (Block& b : blocks_) {
    append(b.conv1->parameters());
    append(b.bn1->parameters());
    append(b.conv2->parameters());
    append(b.bn2->parameters());
    if (b.gate) append(b.gate->parameters());
  }
  append(classifier_->parameters());
  return out;
}

void ResNetCifar::visit_state(const std::string& prefix,
                              const nn::StateVisitor& fn) {
  stem_conv_->visit_state(prefix + "stem.conv.", fn);
  stem_bn_->visit_state(prefix + "stem.bn.", fn);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const std::string base = prefix + "block" + std::to_string(i) + ".";
    blocks_[i].conv1->visit_state(base + "conv1.", fn);
    blocks_[i].bn1->visit_state(base + "bn1.", fn);
    blocks_[i].conv2->visit_state(base + "conv2.", fn);
    blocks_[i].bn2->visit_state(base + "bn2.", fn);
    if (blocks_[i].gate) blocks_[i].gate->visit_state(base + "gate.", fn);
  }
  classifier_->visit_state(prefix + "fc.", fn);
}

void ResNetCifar::set_training(bool training) {
  ConvNet::set_training(training);
  stem_conv_->set_training(training);
  stem_bn_->set_training(training);
  stem_relu_->set_training(training);
  for (Block& b : blocks_) {
    b.conv1->set_training(training);
    b.bn1->set_training(training);
    b.relu1->set_training(training);
    if (b.gate) b.gate->set_training(training);
    b.conv2->set_training(training);
    b.bn2->set_training(training);
    b.relu2->set_training(training);
  }
  gap_.set_training(training);
  classifier_->set_training(training);
}

int64_t ResNetCifar::last_macs() const {
  int64_t total = stem_conv_->last_macs();
  for (const Block& b : blocks_) {
    total += b.conv1->last_macs() + b.conv2->last_macs();
  }
  return total + classifier_->last_macs();
}

void ResNetCifar::install_gate(int site, std::unique_ptr<nn::Module> gate) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  if (gate) gate->set_training(is_training());
  blocks_[static_cast<size_t>(site)].gate = std::move(gate);
  invalidate_plan();
}

nn::Module* ResNetCifar::gate(int site) const {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return blocks_[static_cast<size_t>(site)].gate.get();
}

nn::Conv2d* ResNetCifar::gate_consumer(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return blocks_[static_cast<size_t>(site)].conv2.get();
}

nn::Conv2d* ResNetCifar::gate_producer(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return blocks_[static_cast<size_t>(site)].conv1.get();
}

nn::BatchNorm2d* ResNetCifar::gate_producer_bn(int site) {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return blocks_[static_cast<size_t>(site)].bn1.get();
}

int ResNetCifar::block_of_site(int site) const {
  AD_CHECK(site >= 0 && site < num_gate_sites()) << " gate site " << site;
  return blocks_[static_cast<size_t>(site)].group;
}

std::vector<std::pair<std::string, nn::Module*>>
ResNetCifar::arithmetic_layers() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  out.emplace_back("stem", stem_conv_.get());
  for (size_t i = 0; i < blocks_.size(); ++i) {
    out.emplace_back("block" + std::to_string(i) + ".conv1",
                     blocks_[i].conv1.get());
    out.emplace_back("block" + std::to_string(i) + ".conv2",
                     blocks_[i].conv2.get());
  }
  out.emplace_back("fc", classifier_.get());
  return out;
}

std::string ResNetCifar::model_name() const {
  return "resnet" + std::to_string(6 * config_.blocks_per_group + 2);
}

}  // namespace antidote::models
