#include "base/flags.h"

#include <sstream>

#include "base/error.h"

namespace antidote {

namespace {
const char* type_name(int type) {
  switch (type) {
    case 0:
      return "string";
    case 1:
      return "int";
    case 2:
      return "double";
    case 3:
      return "bool";
    default:
      return "float-list";
  }
}
}  // namespace

FlagSet::FlagSet(std::string program_name) : program_(std::move(program_name)) {}

void FlagSet::add_string(const std::string& name, std::string default_value,
                         std::string help) {
  flags_[name] = Flag{Type::kString, default_value, std::move(help),
                      default_value};
}

void FlagSet::add_int(const std::string& name, int default_value,
                      std::string help) {
  const std::string v = std::to_string(default_value);
  flags_[name] = Flag{Type::kInt, v, std::move(help), v};
}

void FlagSet::add_double(const std::string& name, double default_value,
                         std::string help) {
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Type::kDouble, os.str(), std::move(help), os.str()};
}

void FlagSet::add_bool(const std::string& name, bool default_value,
                       std::string help) {
  const std::string v = default_value ? "true" : "false";
  flags_[name] = Flag{Type::kBool, v, std::move(help), v};
}

void FlagSet::add_float_list(const std::string& name,
                             std::string default_value, std::string help) {
  flags_[name] = Flag{Type::kFloatList, default_value, std::move(help),
                      default_value};
}

std::vector<std::string> FlagSet::parse(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const size_t eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    AD_CHECK(it != flags_.end()) << " unknown flag --" << name;
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        value = "true";  // bare --flag enables a bool
      } else {
        AD_CHECK_LT(i + 1, args.size()) << " flag --" << name
                                        << " needs a value";
        value = args[++i];
      }
    }
    // Validate eagerly so errors point at the offending flag.
    switch (it->second.type) {
      case Type::kInt:
        try {
          (void)std::stoi(value);
        } catch (...) {
          AD_CHECK(false) << " flag --" << name << " expects an int, got '"
                          << value << "'";
        }
        break;
      case Type::kDouble:
        try {
          (void)std::stod(value);
        } catch (...) {
          AD_CHECK(false) << " flag --" << name << " expects a number, got '"
                          << value << "'";
        }
        break;
      case Type::kBool:
        AD_CHECK(value == "true" || value == "false")
            << " flag --" << name << " expects true/false, got '" << value
            << "'";
        break;
      case Type::kFloatList:
        (void)parse_float_list(value);
        break;
      case Type::kString:
        break;
    }
    it->second.value = value;
  }
  return positional;
}

const FlagSet::Flag& FlagSet::find(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  AD_CHECK(it != flags_.end()) << " flag --" << name << " not registered";
  AD_CHECK(it->second.type == type)
      << " flag --" << name << " is not a "
      << type_name(static_cast<int>(type));
  return it->second;
}

std::string FlagSet::get_string(const std::string& name) const {
  return find(name, Type::kString).value;
}

int FlagSet::get_int(const std::string& name) const {
  return std::stoi(find(name, Type::kInt).value);
}

double FlagSet::get_double(const std::string& name) const {
  return std::stod(find(name, Type::kDouble).value);
}

bool FlagSet::get_bool(const std::string& name) const {
  return find(name, Type::kBool).value == "true";
}

std::vector<float> FlagSet::get_float_list(const std::string& name) const {
  return parse_float_list(find(name, Type::kFloatList).value);
}

std::vector<float> FlagSet::parse_float_list(const std::string& value) {
  std::vector<float> out;
  if (value.empty()) return out;
  std::istringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    try {
      size_t used = 0;
      out.push_back(std::stof(item, &used));
      AD_CHECK_EQ(used, item.size()) << " trailing junk in '" << item << "'";
    } catch (const Error&) {
      throw;
    } catch (...) {
      AD_CHECK(false) << " malformed float '" << item << "' in list '"
                      << value << "'";
    }
  }
  return out;
}

std::string FlagSet::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (" << type_name(static_cast<int>(flag.type))
       << ", default: "
       << (flag.default_value.empty() ? "\"\"" : flag.default_value) << ")\n"
       << "      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace antidote
