// Binary serialization primitives for model checkpoints.
//
// Format: little-endian scalars, length-prefixed strings and buffers. All
// readers validate lengths against the remaining file size, so a truncated
// or corrupt checkpoint raises antidote::Error instead of reading garbage.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace antidote {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void write_u32(uint32_t v);
  void write_u64(uint64_t v);
  void write_i32(int32_t v);
  void write_f32(float v);
  void write_string(const std::string& s);
  void write_floats(const float* data, size_t count);

  // Flushes and closes; throws on I/O failure.
  void close();

 private:
  template <typename T>
  void write_raw(const T& v);
  std::ofstream out_;
  std::string path_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  uint32_t read_u32();
  uint64_t read_u64();
  int32_t read_i32();
  float read_f32();
  std::string read_string();
  void read_floats(float* data, size_t count);

  bool at_end();

 private:
  template <typename T>
  T read_raw();
  std::ifstream in_;
  std::string path_;
  uint64_t remaining_;
};

}  // namespace antidote
