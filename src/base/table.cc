#include "base/table.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "base/error.h"

namespace antidote {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AD_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  AD_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::fmt_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*E", precision, value);
  return buf;
}

std::string Table::fmt_signed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f", precision, value);
  return buf;
}

std::string Table::to_string() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row,
                       std::ostringstream& os) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  std::ostringstream os;
  print_row(headers_, os);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row, os);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << csv_escape(row[c]);
    }
    os << "\n";
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::emit(const std::string& title, const std::string& csv_path) const {
  std::cout << "\n== " << title << " ==\n" << to_string() << std::flush;
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    AD_CHECK(out.good()) << " cannot write " << csv_path;
    out << to_csv();
  }
}

}  // namespace antidote
