// Portable f32 SIMD lane abstraction for the non-GEMM hot path (fused
// epilogue, mask gather/scatter, im2col packing) and the GEMM micro-kernel.
//
// Three backends, selected at COMPILE time:
//   - AVX2 (x86-64):  8 lanes (__m256)   — requires -mavx2 on the TU
//   - NEON (aarch64): 4 lanes (float32x4_t)
//   - scalar:         1 lane  (plain float) — the fallback every other
//     build (including -DANTIDOTE_SIMD=OFF) compiles to
//
// BITWISE CONTRACT. Every operation here is a per-element IEEE-754 op with
// exactly the rounding the scalar expression performs: madd(a, b, c) is a
// multiply THEN an add (two roundings), deliberately NOT a fused
// multiply-add. The CMake setup compiles SIMD translation units without
// -mfma and with -ffp-contract=off, so neither hand-written intrinsics nor
// compiler contraction can introduce single-rounding FMAs. Consequently a
// kernel vectorized with this header produces results bitwise identical to
// its scalar fallback — the property the plan executor's "dense plan ==
// module walk" and "grouped masked == per-sample walk" memcmp gates depend
// on, and what lets ANTIDOTE_SIMD=ON/OFF builds agree bit for bit.
//
// TAIL POLICY. The vector types never read or write past the caller's
// range: kernels iterate `j + kLanes <= n` and finish the ragged tail
// (n % kLanes elements) with the identical scalar expression. No masked
// loads, no overreads — the ASan job runs against the SIMD build to keep
// it that way.
//
// TU-PRIVATE. Include this header from .cc files only (never from public
// headers): the lane width and vector type differ between translation
// units compiled with and without the SIMD flags, so leaking these
// definitions across TU boundaries would be an ODR violation. All SIMD
// TUs are compiled with one flag set (see CMakeLists.txt).
#pragma once

#include <cstdint>

#if defined(ANTIDOTE_SIMD) && ANTIDOTE_SIMD && defined(__AVX2__)
#define ANTIDOTE_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(ANTIDOTE_SIMD) && ANTIDOTE_SIMD && defined(__ARM_NEON)
#define ANTIDOTE_SIMD_NEON 1
#include <arm_neon.h>
#endif

// Marks a scalar reference implementation that must stay genuinely scalar
// (parity baselines and the scalar leg of the micro-benchmarks): without
// this the autovectorizer would quietly vectorize the "scalar" loop and
// the scalar-vs-SIMD comparison would measure nothing. Clang has no
// function-level "disable vectorization only" attribute, so it gets
// optnone — a coarser baseline (the scalar leg also loses scalar
// optimizations), but an honestly scalar one.
#if defined(__clang__)
#define ANTIDOTE_NO_VECTORIZE __attribute__((optnone))
#elif defined(__GNUC__)
#define ANTIDOTE_NO_VECTORIZE \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define ANTIDOTE_NO_VECTORIZE
#endif

namespace antidote::simd {

#if defined(ANTIDOTE_SIMD_AVX2)

constexpr int kLanes = 8;
constexpr const char* kIsaName = "avx2";
using vf = __m256;

inline vf load(const float* p) { return _mm256_loadu_ps(p); }
inline void store(float* p, vf v) { _mm256_storeu_ps(p, v); }
inline vf set1(float x) { return _mm256_set1_ps(x); }
inline vf zero() { return _mm256_setzero_ps(); }
inline vf add(vf a, vf b) { return _mm256_add_ps(a, b); }
inline vf sub(vf a, vf b) { return _mm256_sub_ps(a, b); }
inline vf mul(vf a, vf b) { return _mm256_mul_ps(a, b); }
inline vf max(vf a, vf b) { return _mm256_max_ps(a, b); }
// a*b + c with TWO roundings (see the bitwise contract above).
inline vf madd(vf a, vf b, vf c) { return _mm256_add_ps(_mm256_mul_ps(a, b), c); }
// v[i] = base[idx[i]] — the mask-gather primitive (kept spatial columns).
inline vf gather(const float* base, const int32_t* idx) {
  return _mm256_i32gather_ps(
      base, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx)), 4);
}

#elif defined(ANTIDOTE_SIMD_NEON)

constexpr int kLanes = 4;
constexpr const char* kIsaName = "neon";
using vf = float32x4_t;

inline vf load(const float* p) { return vld1q_f32(p); }
inline void store(float* p, vf v) { vst1q_f32(p, v); }
inline vf set1(float x) { return vdupq_n_f32(x); }
inline vf zero() { return vdupq_n_f32(0.f); }
inline vf add(vf a, vf b) { return vaddq_f32(a, b); }
inline vf sub(vf a, vf b) { return vsubq_f32(a, b); }
inline vf mul(vf a, vf b) { return vmulq_f32(a, b); }
inline vf max(vf a, vf b) { return vmaxq_f32(a, b); }
// Explicit mul+add (NOT vfmaq/vmlaq, which may fuse): two roundings.
inline vf madd(vf a, vf b, vf c) { return vaddq_f32(vmulq_f32(a, b), c); }
inline vf gather(const float* base, const int32_t* idx) {
  const float v[4] = {base[idx[0]], base[idx[1]], base[idx[2]],
                      base[idx[3]]};
  return vld1q_f32(v);
}

#else  // scalar fallback (ANTIDOTE_SIMD=OFF, or an ISA without a backend)

constexpr int kLanes = 1;
constexpr const char* kIsaName = "scalar";
using vf = float;

inline vf load(const float* p) { return *p; }
inline void store(float* p, vf v) { *p = v; }
inline vf set1(float x) { return x; }
inline vf zero() { return 0.f; }
inline vf add(vf a, vf b) { return a + b; }
inline vf sub(vf a, vf b) { return a - b; }
inline vf mul(vf a, vf b) { return a * b; }
inline vf max(vf a, vf b) { return a > b ? a : b; }
inline vf madd(vf a, vf b, vf c) { return a * b + c; }
inline vf gather(const float* base, const int32_t* idx) {
  return base[idx[0]];
}

#endif

// --- int8 lane extension (x86-64 AVX2 TUs only) ----------------------------
//
// The int8 regime's accumulator math is EXACT integer arithmetic, so the
// bitwise contract holds trivially across backends: scalar, AVX2 and
// AVX-512 VNNI all compute the identical int32 dot product, and the single
// dequant expression at the end performs the same two IEEE-754 roundings
// everywhere. The AVX2 helper below is an exact emulation of the VNNI
// `vpdpbusd` instruction — per 32-bit lane, acc += sum over the lane's four
// byte pairs of u8(a) * s8(b) — built from widening shifts + madd_epi16.
// No `maddubs` anywhere: _mm256_maddubs_epi16 saturates its s16 pair sums
// (255*127*2 = 64770 > 32767) which would silently break parity. Here the
// u8 operand is split into even/odd u16 lanes (non-negative, so madd_epi16
// cannot hit its lone -32768*-32768 saturation case) and each pair sum
// <= 65280 fits int32 exactly.
#if defined(ANTIDOTE_SIMD_AVX2)
#define ANTIDOTE_SIMD_I8 1

inline __m256i dpbusd_epi32(__m256i acc, __m256i a_u8, __m256i b_s8) {
  const __m256i a_even = _mm256_and_si256(a_u8, _mm256_set1_epi16(0x00FF));
  const __m256i a_odd = _mm256_srli_epi16(a_u8, 8);
  const __m256i b_even = _mm256_srai_epi16(_mm256_slli_epi16(b_s8, 8), 8);
  const __m256i b_odd = _mm256_srai_epi16(b_s8, 8);
  const __m256i p = _mm256_add_epi32(_mm256_madd_epi16(a_even, b_even),
                                     _mm256_madd_epi16(a_odd, b_odd));
  return _mm256_add_epi32(acc, p);
}

#endif  // ANTIDOTE_SIMD_AVX2

}  // namespace antidote::simd
