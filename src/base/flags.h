// Minimal command-line flag parser for the antidote_cli tool.
//
// Supports --name=value and --name value forms, typed flags with defaults,
// `--help` text generation, and comma-separated float lists (the format of
// per-block ratio settings, e.g. --channel-drop=0.2,0.2,0.6,0.9,0.9).
// Unknown flags and malformed values throw antidote::Error with a message
// naming the offending argument.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace antidote {

class FlagSet {
 public:
  explicit FlagSet(std::string program_name);

  // Registration (call before parse). `help` appears in usage output.
  void add_string(const std::string& name, std::string default_value,
                  std::string help);
  void add_int(const std::string& name, int default_value, std::string help);
  void add_double(const std::string& name, double default_value,
                  std::string help);
  void add_bool(const std::string& name, bool default_value,
                std::string help);
  // Comma-separated float list; empty default = "".
  void add_float_list(const std::string& name, std::string default_value,
                      std::string help);

  // Parses arguments (excluding argv[0]); returns the positional (non-flag)
  // arguments in order. Throws on unknown flags or bad values.
  std::vector<std::string> parse(const std::vector<std::string>& args);

  // Typed access after parse (or defaults before).
  std::string get_string(const std::string& name) const;
  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  std::vector<float> get_float_list(const std::string& name) const;

  bool help_requested() const { return help_requested_; }
  std::string usage() const;

  // Parses "0.2,0.3" into floats; throws on malformed entries.
  static std::vector<float> parse_float_list(const std::string& value);

 private:
  enum class Type { kString, kInt, kDouble, kBool, kFloatList };
  struct Flag {
    Type type;
    std::string value;  // textual representation
    std::string help;
    std::string default_value;
  };
  const Flag& find(const std::string& name, Type type) const;

  std::string program_;
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace antidote
