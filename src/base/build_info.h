// Build/run metadata stamped into bench artifacts so a BENCH_*.json can
// always be traced back to the commit, thread count, and SIMD ISA that
// produced it — the perf trajectory across commits is only comparable
// when every sample says what it measured.
#pragma once

namespace antidote {

// Version of the "antidote_meta" block embedded in every BENCH_*.json.
// Bump when the bench JSON layout changes incompatibly.
inline constexpr int kBenchSchemaVersion = 3;

// `git describe --always --dirty --tags` captured by CMake at configure
// time; "unknown" when the build is not from a git checkout.
const char* build_git_describe();

}  // namespace antidote
