// BoundedQueue<T> — a bounded, blocking multi-producer/multi-consumer queue
// with close semantics, the primitive under the serving runtime's request
// queue. Producers see backpressure two ways: try_push fails fast when the
// queue is full (load shedding), push blocks until space frees up. close()
// wakes every waiter; consumers drain the remaining items and then see
// pop() return false, which is the shutdown signal for worker loops.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "base/error.h"

namespace antidote {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    AD_CHECK_GT(capacity, 0u) << " queue capacity";
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (dropping `value`) once closed.
  bool push(T&& value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Returns false immediately when full or closed (backpressure signal).
  bool try_push(T&& value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns false only when closed and fully drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop; false when nothing is available right now.
  bool try_pop(T& out) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return false;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  // Pop that gives up at `deadline` — the batching scheduler's max-wait
  // primitive. False on timeout or on closed-and-drained.
  template <typename Clock, typename Duration>
  bool pop_until(T& out,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_until(
            lock, deadline, [this] { return closed_ || !items_.empty(); })) {
      return false;  // timeout
    }
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Idempotent. Pending items stay poppable; new pushes fail.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace antidote
