#include "base/error.h"

namespace antidote::detail {

CheckFailure::CheckFailure(const char* file, int line, const char* cond) {
  stream_ << file << ":" << line << ": check failed: " << cond;
}

CheckFailure::~CheckFailure() noexcept(false) {
  throw Error(stream_.str());
}

}  // namespace antidote::detail
