// Wall-clock timing helpers used by the trainer and the benchmarks.
#pragma once

#include <chrono>

namespace antidote {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace antidote
