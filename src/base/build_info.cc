#include "base/build_info.h"

namespace antidote {

const char* build_git_describe() {
#ifdef ANTIDOTE_GIT_DESCRIBE
  return ANTIDOTE_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace antidote
