#include "base/parallel.h"

#include <algorithm>

#include "base/env.h"

namespace antidote {

namespace {
// Depth of parallel_for chunks executing on this thread; > 0 means a
// nested parallel_for must run inline (see in_parallel_region()).
thread_local int tl_parallel_depth = 0;

struct ScopedParallelRegion {
  ScopedParallelRegion() { ++tl_parallel_depth; }
  ~ScopedParallelRegion() { --tl_parallel_depth; }
};
}  // namespace

bool in_parallel_region() { return tl_parallel_depth > 0; }

ThreadPool::ThreadPool(int num_threads) {
  workers_.reserve(static_cast<size_t>(std::max(0, num_threads)));
  // Enough slots for several concurrent dispatches before any growth.
  ring_.resize(static_cast<size_t>(4 * (std::max(0, num_threads) + 1)));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::push_locked(const Task& task) {
  if (ring_count_ == ring_.size()) {
    // Rare growth path: re-lay the ring out in order at double capacity.
    std::vector<Task> bigger(ring_.size() * 2);
    for (size_t i = 0; i < ring_count_; ++i) {
      bigger[i] = ring_[(ring_head_ + i) % ring_.size()];
    }
    ring_.swap(bigger);
    ring_head_ = 0;
  }
  ring_[(ring_head_ + ring_count_) % ring_.size()] = task;
  ++ring_count_;
}

bool ThreadPool::pop_locked(Task& task) {
  if (ring_count_ == 0) return false;
  task = ring_[ring_head_];
  ring_head_ = (ring_head_ + 1) % ring_.size();
  --ring_count_;
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || ring_count_ > 0; });
      if (stop_ && ring_count_ == 0) return;
      pop_locked(task);
    }
    try {
      ScopedParallelRegion region;
      task.fn(task.begin, task.end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!task.group->error) task.group->error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--task.group->pending == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(int64_t begin, int64_t end,
                                     RangeFnRef fn) {
  if (begin >= end) return;
  const int64_t n = end - begin;
  const int parts = size() + 1;
  const int64_t chunk = (n + parts - 1) / parts;

  // Caller handles the first chunk itself; pool handles the rest.
  DispatchGroup group;
  int queued = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int p = 1; p < parts; ++p) {
      const int64_t b = begin + p * chunk;
      if (b >= end) break;
      const int64_t e = std::min(end, b + chunk);
      push_locked(Task{fn, b, e, &group});
      ++queued;
    }
    group.pending = queued;
  }
  if (queued > 0) cv_.notify_all();

  // Even if the inline chunk throws we MUST wait for the queued tasks:
  // they reference `fn`'s underlying callable (and `group`) on this stack
  // frame, so unwinding before they finish would leave workers running
  // over a destroyed closure.
  std::exception_ptr inline_error;
  try {
    // The caller's own chunk counts as a parallel region too: nested
    // loops it issues would otherwise queue behind the sibling chunks
    // the pool is already busy with.
    ScopedParallelRegion region;
    fn(begin, std::min(end, begin + chunk));
  } catch (...) {
    inline_error = std::current_exception();
  }

  if (queued > 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&group] { return group.pending == 0; });
  }
  if (inline_error) std::rethrow_exception(inline_error);
  if (group.error) std::rethrow_exception(group.error);
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    const int hw =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    // ANTIDOTE_THREADS counts total compute threads including the caller;
    // the pool holds the rest. 1 -> fully inline execution.
    const int total = std::max(1, env_int("ANTIDOTE_THREADS", hw));
    return total - 1;
  }());
  return pool;
}

}  // namespace antidote
