#include "base/parallel.h"

#include <algorithm>

namespace antidote {

ThreadPool::ThreadPool(int num_threads) {
  workers_.reserve(static_cast<size_t>(std::max(0, num_threads)));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task.fn(task.begin, task.end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  const int64_t n = end - begin;
  const int parts = size() + 1;
  const int64_t chunk = (n + parts - 1) / parts;

  // Caller handles the first chunk itself; pool handles the rest.
  int queued = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int p = 1; p < parts; ++p) {
      const int64_t b = begin + p * chunk;
      if (b >= end) break;
      const int64_t e = std::min(end, b + chunk);
      tasks_.push(Task{fn, b, e});
      ++queued;
    }
    pending_ += queued;
  }
  if (queued > 0) cv_.notify_all();

  fn(begin, std::min(end, begin + chunk));

  if (queued > 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::swap(err, first_error_);
  }
  if (err) std::rethrow_exception(err);
}

ThreadPool& global_pool() {
  static ThreadPool pool(
      std::max(0, static_cast<int>(std::thread::hardware_concurrency()) - 1));
  return pool;
}

void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t, int64_t)>& fn,
                  int64_t grain) {
  if (begin >= end) return;
  ThreadPool& pool = global_pool();
  if (pool.size() == 0 || end - begin < 2 * grain) {
    fn(begin, end);
    return;
  }
  pool.parallel_for_chunks(begin, end, fn);
}

}  // namespace antidote
