// Environment-variable helpers for scaling benchmarks and examples.
//
// Recognized variables:
//   ANTIDOTE_BENCH_SCALE  — bench model scale: smoke | default | full.
//   ANTIDOTE_THREADS      — total compute threads for the kernel thread
//                           pool, including the calling thread (1 = fully
//                           inline; unset = hardware_concurrency). Read by
//                           base/parallel.cc at first use.
#pragma once

#include <string>

namespace antidote {

// Returns the env var's value or `fallback` if unset/empty.
std::string env_string(const std::string& name, const std::string& fallback);
int env_int(const std::string& name, int fallback);
double env_double(const std::string& name, double fallback);

// Benchmark scale from ANTIDOTE_BENCH_SCALE: "smoke" (CI-fast), "default",
// or "full" (paper-width models; slow on one core).
enum class BenchScale { kSmoke, kDefault, kFull };
BenchScale bench_scale();
std::string bench_scale_name(BenchScale scale);

}  // namespace antidote
