// Environment-variable helpers for scaling benchmarks and examples.
#pragma once

#include <string>

namespace antidote {

// Returns the env var's value or `fallback` if unset/empty.
std::string env_string(const std::string& name, const std::string& fallback);
int env_int(const std::string& name, int fallback);
double env_double(const std::string& name, double fallback);

// Benchmark scale from ANTIDOTE_BENCH_SCALE: "smoke" (CI-fast), "default",
// or "full" (paper-width models; slow on one core).
enum class BenchScale { kSmoke, kDefault, kFull };
BenchScale bench_scale();
std::string bench_scale_name(BenchScale scale);

}  // namespace antidote
