#include "base/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace antidote {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    default:
      return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

LogLine::LogLine(LogLevel level) : level_(level) {}

LogLine::~LogLine() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %8.2fs] %s\n", level_tag(level_), secs,
               stream_.str().c_str());
}

}  // namespace detail

}  // namespace antidote
