#include "base/io.h"

#include <filesystem>

#include "base/error.h"

namespace antidote {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary), path_(path) {
  AD_CHECK(out_.good()) << " cannot open for write: " << path;
}

template <typename T>
void BinaryWriter::write_raw(const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
  AD_CHECK(out_.good()) << " write failed: " << path_;
}

void BinaryWriter::write_u32(uint32_t v) { write_raw(v); }
void BinaryWriter::write_u64(uint64_t v) { write_raw(v); }
void BinaryWriter::write_i32(int32_t v) { write_raw(v); }
void BinaryWriter::write_f32(float v) { write_raw(v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  AD_CHECK(out_.good()) << " write failed: " << path_;
}

void BinaryWriter::write_floats(const float* data, size_t count) {
  write_u64(count);
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(count * sizeof(float)));
  AD_CHECK(out_.good()) << " write failed: " << path_;
}

void BinaryWriter::close() {
  out_.flush();
  AD_CHECK(out_.good()) << " flush failed: " << path_;
  out_.close();
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  AD_CHECK(in_.good()) << " cannot open for read: " << path;
  remaining_ = std::filesystem::file_size(path);
}

template <typename T>
T BinaryReader::read_raw() {
  static_assert(std::is_trivially_copyable_v<T>);
  AD_CHECK_GE(remaining_, sizeof(T)) << " truncated file: " << path_;
  T v{};
  in_.read(reinterpret_cast<char*>(&v), sizeof(T));
  AD_CHECK(in_.good()) << " read failed: " << path_;
  remaining_ -= sizeof(T);
  return v;
}

uint32_t BinaryReader::read_u32() { return read_raw<uint32_t>(); }
uint64_t BinaryReader::read_u64() { return read_raw<uint64_t>(); }
int32_t BinaryReader::read_i32() { return read_raw<int32_t>(); }
float BinaryReader::read_f32() { return read_raw<float>(); }

std::string BinaryReader::read_string() {
  const uint64_t len = read_u64();
  AD_CHECK_LE(len, remaining_) << " truncated string in " << path_;
  std::string s(len, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(len));
  AD_CHECK(in_.good()) << " read failed: " << path_;
  remaining_ -= len;
  return s;
}

void BinaryReader::read_floats(float* data, size_t count) {
  const uint64_t stored = read_u64();
  AD_CHECK_EQ(stored, count) << " float buffer size mismatch in " << path_;
  const uint64_t bytes = count * sizeof(float);
  AD_CHECK_LE(bytes, remaining_) << " truncated buffer in " << path_;
  in_.read(reinterpret_cast<char*>(data),
           static_cast<std::streamsize>(bytes));
  AD_CHECK(in_.good()) << " read failed: " << path_;
  remaining_ -= bytes;
}

bool BinaryReader::at_end() { return remaining_ == 0; }

}  // namespace antidote
