#include "base/env.h"

#include <cstdlib>

#include "base/logging.h"

namespace antidote {

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || v[0] == '\0') return fallback;
  return v;
}

int env_int(const std::string& name, int fallback) {
  const std::string v = env_string(name, "");
  if (v.empty()) return fallback;
  try {
    return std::stoi(v);
  } catch (...) {
    AD_LOG(Warning) << "ignoring non-integer env " << name << "=" << v;
    return fallback;
  }
}

double env_double(const std::string& name, double fallback) {
  const std::string v = env_string(name, "");
  if (v.empty()) return fallback;
  try {
    return std::stod(v);
  } catch (...) {
    AD_LOG(Warning) << "ignoring non-numeric env " << name << "=" << v;
    return fallback;
  }
}

BenchScale bench_scale() {
  const std::string v = env_string("ANTIDOTE_BENCH_SCALE", "default");
  if (v == "smoke") return BenchScale::kSmoke;
  if (v == "full") return BenchScale::kFull;
  if (v != "default") {
    AD_LOG(Warning) << "unknown ANTIDOTE_BENCH_SCALE=" << v
                    << ", using default";
  }
  return BenchScale::kDefault;
}

std::string bench_scale_name(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return "smoke";
    case BenchScale::kFull:
      return "full";
    default:
      return "default";
  }
}

}  // namespace antidote
