// Console table / CSV writer used by the benchmark harness to print
// paper-formatted result tables and persist them as CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace antidote {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds one row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 2);
  // Scientific notation like the paper's FLOPs column, e.g. "3.13E+08".
  static std::string fmt_sci(double value, int precision = 2);
  // Percent with sign preserved, e.g. "-0.1".
  static std::string fmt_signed(double value, int precision = 1);

  // Renders an aligned ASCII table.
  std::string to_string() const;
  // Renders CSV (RFC-4180-ish; cells containing commas/quotes are quoted).
  std::string to_csv() const;

  // Prints to stdout and, if csv_path is non-empty, writes the CSV file.
  void emit(const std::string& title, const std::string& csv_path = "") const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace antidote
