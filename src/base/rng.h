// Deterministic random number generation.
//
// All stochastic components of the library (weight init, data synthesis,
// augmentation, shuffling, random pruning orders) draw from `Rng` so that
// every experiment is reproducible from a single seed. The engine is
// SplitMix64: tiny state, excellent statistical quality for this use, and
// identical output across platforms (unlike std::mt19937 + distributions,
// whose std::normal_distribution is implementation-defined).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace antidote {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  // Next raw 64-bit value (SplitMix64).
  uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  float uniform_float(float lo, float hi);

  // Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t next_below(uint64_t n);
  int randint(int lo, int hi_exclusive);

  // Bernoulli(p).
  bool bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(next_below(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // A random permutation of [0, n).
  std::vector<int> permutation(int n);

  // Derives an independent child stream (for per-worker determinism).
  Rng fork();

 private:
  uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace antidote
