// Shared-memory parallel-for built on a lazily created persistent thread
// pool. On single-core machines (or when the grain is too small to amortize
// dispatch) the loop runs inline on the caller's thread, so the library has
// no parallel overhead where parallelism cannot help.
//
// The dispatch path is allocation-free in steady state: tasks carry a
// non-owning function reference (no std::function copies) and queue into a
// ring buffer whose capacity persists across calls. This matters because
// parallel_for sits inside the inference hot path (GEMM row panels), which
// must perform zero heap allocations per forward pass.
//
// Pool sizing: ANTIDOTE_THREADS (total compute threads including the
// caller) when set, else hardware_concurrency(). The pool itself holds one
// fewer thread than that, since the calling thread always works too.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace antidote {

// Non-owning reference to a `void(int64_t begin, int64_t end)` callable.
// The referenced callable must outlive the call — guaranteed here because
// parallel_for_chunks blocks until every chunk has completed.
class RangeFnRef {
 public:
  RangeFnRef() = default;  // null reference; used for empty queue slots

  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Fn>, RangeFnRef>>>
  RangeFnRef(const Fn& fn)  // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* ctx, int64_t b, int64_t e) {
          (*static_cast<const Fn*>(ctx))(b, e);
        }) {}

  void operator()(int64_t begin, int64_t end) const {
    call_(ctx_, begin, end);
  }

 private:
  void* ctx_ = nullptr;
  void (*call_)(void*, int64_t, int64_t) = nullptr;
};

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Runs fn(chunk_begin, chunk_end) over [begin, end) split into roughly
  // equal chunks across the pool plus the calling thread. Blocks until all
  // chunks are done. Exceptions from workers are rethrown on the caller.
  void parallel_for_chunks(int64_t begin, int64_t end, RangeFnRef fn);

 private:
  // Per-dispatch completion state, living on the dispatching caller's
  // stack. Concurrent dispatchers (e.g. two serving workers inside their
  // own GEMMs) therefore track their own pending counts and their own
  // first exception — one caller's failure or stragglers never leak into
  // another caller's dispatch.
  struct DispatchGroup {
    int pending = 0;
    std::exception_ptr error;
  };

  struct Task {
    RangeFnRef fn;
    int64_t begin = 0;
    int64_t end = 0;
    DispatchGroup* group = nullptr;
  };

  void worker_loop();
  void push_locked(const Task& task);
  bool pop_locked(Task& task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  // Fixed-capacity ring buffer reused across dispatches; grows (rarely)
  // under the mutex, then never again.
  std::vector<Task> ring_;
  size_t ring_head_ = 0;
  size_t ring_count_ = 0;
  bool stop_ = false;
};

// Global pool; see the header comment for sizing (ANTIDOTE_THREADS).
ThreadPool& global_pool();

// True while the calling thread is executing a parallel_for chunk (either
// as a pool worker or as the dispatching caller running its inline
// chunk). parallel_for consults this as its nested-dispatch guard: an
// inner parallel_for issued from inside a chunk runs inline on the
// caller's thread instead of re-entering the pool. That is what lets the
// plan executor dispatch whole mask groups to workers while every kernel
// inside a group (gather, GEMM panels, scatter) keeps its own
// parallel_for calls — they degrade to plain loops on the worker, with no
// queue re-entry and no possibility of a dispatch-wait cycle.
bool in_parallel_region();

// Parallel loop over [begin, end). `grain` is the minimum work per chunk;
// loops smaller than 2*grain run inline, as does any loop issued from
// inside another parallel_for chunk (see in_parallel_region).
template <typename Fn>
void parallel_for(int64_t begin, int64_t end, const Fn& fn,
                  int64_t grain = 1024) {
  if (begin >= end) return;
  ThreadPool& pool = global_pool();
  if (pool.size() == 0 || in_parallel_region() ||
      end - begin < 2 * grain) {
    fn(begin, end);
    return;
  }
  pool.parallel_for_chunks(begin, end, RangeFnRef(fn));
}

}  // namespace antidote
