// Shared-memory parallel-for built on a lazily created persistent thread
// pool. On single-core machines (or when the grain is too small to amortize
// dispatch) the loop runs inline on the caller's thread, so the library has
// no parallel overhead where parallelism cannot help.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace antidote {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Runs fn(chunk_begin, chunk_end) over [begin, end) split into roughly
  // equal chunks across the pool plus the calling thread. Blocks until all
  // chunks are done. Exceptions from workers are rethrown on the caller.
  void parallel_for_chunks(
      int64_t begin, int64_t end,
      const std::function<void(int64_t, int64_t)>& fn);

 private:
  struct Task {
    std::function<void(int64_t, int64_t)> fn;
    int64_t begin = 0;
    int64_t end = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::queue<Task> tasks_;
  int pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

// Global pool sized to hardware_concurrency() - 1 (may be empty).
ThreadPool& global_pool();

// Parallel loop over [begin, end). `grain` is the minimum work per chunk;
// loops smaller than 2*grain run inline.
void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t, int64_t)>& fn,
                  int64_t grain = 1024);

}  // namespace antidote
