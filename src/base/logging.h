// Minimal leveled logger. Thread-safe line-at-a-time output to stderr.
//
// Usage:  AD_LOG(info) << "epoch " << e << " loss " << loss;
// Level is filtered globally via set_log_level(); default is kInfo.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace antidote {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Sets the global minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

bool log_enabled(LogLevel level);

// Buffers one log line and flushes it (with timestamp and level tag) on
// destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace antidote

#define AD_LOG(severity)                                                      \
  if (!::antidote::detail::log_enabled(::antidote::LogLevel::k##severity)) {  \
  } else                                                                      \
    ::antidote::detail::LogLine(::antidote::LogLevel::k##severity)

// Severity aliases usable as AD_LOG(Info) etc.
#define AD_LOG_DEBUG AD_LOG(Debug)
#define AD_LOG_INFO AD_LOG(Info)
#define AD_LOG_WARN AD_LOG(Warning)
#define AD_LOG_ERROR AD_LOG(Error)
