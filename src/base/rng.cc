#include "base/rng.h"

#include <cmath>

#include "base/error.h"

namespace antidote {

uint64_t Rng::next_u64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

float Rng::uniform_float(float lo, float hi) {
  return static_cast<float>(uniform(lo, hi));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

uint64_t Rng::next_below(uint64_t n) {
  AD_CHECK_GT(n, 0u);
  // Rejection sampling for an unbiased result.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

int Rng::randint(int lo, int hi_exclusive) {
  AD_CHECK_LT(lo, hi_exclusive);
  return lo + static_cast<int>(
                  next_below(static_cast<uint64_t>(hi_exclusive - lo)));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<int> Rng::permutation(int n) {
  AD_CHECK_GE(n, 0);
  std::vector<int> perm(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  shuffle(perm);
  return perm;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

}  // namespace antidote
