// Error handling for the AntiDote library.
//
// The library reports contract violations (bad shapes, out-of-range
// arguments, malformed files) by throwing `antidote::Error`. Internal
// invariants use `AD_CHECK` as well so that release builds still catch
// corruption early; the cost is negligible relative to the tensor math
// around it.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace antidote {

// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

// Accumulates streamed context for a failed check and throws antidote::Error
// from its destructor (at the end of the full AD_CHECK expression), so the
// exception message contains everything streamed after the macro.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* cond);
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  [[noreturn]] ~CheckFailure() noexcept(false);

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Result of a comparison check. Operands are evaluated exactly once and
// stringified only on failure (comparison checks sit in hot paths).
struct CmpResult {
  bool ok = true;
  std::string lhs;
  std::string rhs;
};

template <typename T>
std::string cmp_str(const T& value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

template <typename A, typename B, typename Op>
CmpResult compare(const A& a, const B& b, Op op) {
  if (op(a, b)) return {};
  return {false, cmp_str(a), cmp_str(b)};
}

// One function per operator so the macro can name it without lambdas.
template <typename A, typename B>
CmpResult compare_eq(const A& a, const B& b) {
  return compare(a, b, [](const A& x, const B& y) { return x == y; });
}
template <typename A, typename B>
CmpResult compare_ne(const A& a, const B& b) {
  return compare(a, b, [](const A& x, const B& y) { return x != y; });
}
template <typename A, typename B>
CmpResult compare_lt(const A& a, const B& b) {
  return compare(a, b, [](const A& x, const B& y) { return x < y; });
}
template <typename A, typename B>
CmpResult compare_le(const A& a, const B& b) {
  return compare(a, b, [](const A& x, const B& y) { return x <= y; });
}
template <typename A, typename B>
CmpResult compare_gt(const A& a, const B& b) {
  return compare(a, b, [](const A& x, const B& y) { return x > y; });
}
template <typename A, typename B>
CmpResult compare_ge(const A& a, const B& b) {
  return compare(a, b, [](const A& x, const B& y) { return x >= y; });
}

}  // namespace detail

}  // namespace antidote

// Checks a condition; throws antidote::Error with file/line context when it
// fails. Extra context can be streamed: AD_CHECK(n > 0) << "n=" << n;
#define AD_CHECK(cond)       \
  if (cond) {                \
  } else                     \
    ::antidote::detail::CheckFailure(__FILE__, __LINE__, #cond)

// Convenience comparison checks with both operands reported. Each operand
// is evaluated exactly once (an operand with side effects — e.g. a stream
// read — must not run again while building the failure message).
#define AD_CHECK_CMP_(a, b, op, opstr)                                       \
  if (::antidote::detail::CmpResult ad_cmp_ =                                \
          ::antidote::detail::compare_##op((a), (b));                        \
      ad_cmp_.ok) {                                                          \
  } else                                                                     \
    ::antidote::detail::CheckFailure(__FILE__, __LINE__,                     \
                                     #a " " opstr " " #b)                    \
        << " lhs=" << ad_cmp_.lhs << " rhs=" << ad_cmp_.rhs

#define AD_CHECK_EQ(a, b) AD_CHECK_CMP_(a, b, eq, "==")
#define AD_CHECK_NE(a, b) AD_CHECK_CMP_(a, b, ne, "!=")
#define AD_CHECK_LT(a, b) AD_CHECK_CMP_(a, b, lt, "<")
#define AD_CHECK_LE(a, b) AD_CHECK_CMP_(a, b, le, "<=")
#define AD_CHECK_GT(a, b) AD_CHECK_CMP_(a, b, gt, ">")
#define AD_CHECK_GE(a, b) AD_CHECK_CMP_(a, b, ge, ">=")
