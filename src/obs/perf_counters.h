// Hardware performance counters via perf_event_open, with graceful decay.
//
// Wall-clock timings say a plan step is slow; hardware counters say WHY:
// low IPC (frontend/backend stalls), L1d misses (bad locality in the
// gather/scatter paths), LLC misses (working set blew the cache, panel
// reuse broken). A CounterSet opens one perf event GROUP per thread —
// cycles as leader, instructions / L1d-read-misses / LLC-misses /
// backend-stall-cycles as members — so a single read() syscall returns a
// consistent snapshot of all of them for the calling thread.
//
// Counters are a privilege, not a given. Containers and locked-down
// kernels (perf_event_paranoid > 2, seccomp) reject perf_event_open, and
// non-Linux builds do not have it at all. Every path degrades:
//
//   - each member counter is optional; whatever refuses to open is simply
//     absent from the valid mask (e.g. stalled-cycles is not exposed on
//     all cores),
//   - if no counter opens at all, available() is false and callers fall
//     back to timing-only (the trace/profile report prints "-" columns),
//   - ANTIDOTE_PERF_DISABLE=1 or CounterSet::force_unavailable(true)
//     forces the fallback so the degraded path is testable anywhere.
//
// Counters count ONLY this thread, user-space only (exclude_kernel), and
// are scaled by time_enabled/time_running when the kernel multiplexes the
// group off the PMU. Opening happens lazily on first use per thread —
// never on the zero-alloc hot path unless counter collection was
// explicitly requested for a trace run (documented in docs/observability.md).
#pragma once

#include <cstdint>

namespace antidote::obs {

// Which counters a read() actually delivered, as a bitmask over CounterId.
enum class CounterId : uint8_t {
  kCycles = 0,
  kInstructions = 1,
  kL1dMisses = 2,
  kLlcMisses = 3,
  kStalledCycles = 4,
  kCount = 5,
};

struct HwCounters {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t l1d_misses = 0;
  uint64_t llc_misses = 0;
  uint64_t stalled_cycles = 0;
  uint8_t valid = 0;  // bit i set => CounterId(i) was measured

  bool has(CounterId id) const {
    return (valid >> static_cast<uint8_t>(id)) & 1u;
  }
  uint64_t& by_id(CounterId id);
  uint64_t by_id(CounterId id) const;
  // Component-wise a - b on counters valid in BOTH; valid mask is the
  // intersection. The span math for begin/end counter reads.
  static HwCounters delta(const HwCounters& end, const HwCounters& begin);
  // Component-wise accumulate (valid mask is the union).
  void accumulate(const HwCounters& other);
};

const char* counter_name(CounterId id);

// A per-thread group of hardware counters. Not thread-safe: use
// thread_counters() to get the calling thread's instance.
class CounterSet {
 public:
  CounterSet();
  ~CounterSet();
  CounterSet(const CounterSet&) = delete;
  CounterSet& operator=(const CounterSet&) = delete;

  // True if at least one hardware counter opened for this thread.
  bool available() const { return leader_fd_ >= 0; }

  // Snapshot of current counter values (monotonically increasing; take
  // two and delta() them around a region). Returns false and zero-fills
  // when unavailable.
  bool read(HwCounters& out) const;

  // Global kill-switch for tests and the degraded-path CI smoke. Takes
  // effect for CounterSets constructed afterwards.
  static void force_unavailable(bool disabled);
  static bool forced_unavailable();

 private:
  int leader_fd_ = -1;
  int fds_[static_cast<int>(CounterId::kCount)];
  uint64_t ids_[static_cast<int>(CounterId::kCount)];
  uint8_t open_mask_ = 0;
};

// The calling thread's lazily-constructed counter group.
CounterSet& thread_counters();

}  // namespace antidote::obs
