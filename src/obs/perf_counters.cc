#include "obs/perf_counters.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace antidote::obs {

namespace {

std::atomic<bool> g_force_unavailable{false};

bool env_disabled() {
  static const bool disabled = [] {
    const char* v = std::getenv("ANTIDOTE_PERF_DISABLE");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return disabled;
}

constexpr int kNumCounters = static_cast<int>(CounterId::kCount);

}  // namespace

uint64_t& HwCounters::by_id(CounterId id) {
  switch (id) {
    case CounterId::kCycles: return cycles;
    case CounterId::kInstructions: return instructions;
    case CounterId::kL1dMisses: return l1d_misses;
    case CounterId::kLlcMisses: return llc_misses;
    case CounterId::kStalledCycles: return stalled_cycles;
    case CounterId::kCount: break;
  }
  return cycles;
}

uint64_t HwCounters::by_id(CounterId id) const {
  return const_cast<HwCounters*>(this)->by_id(id);
}

HwCounters HwCounters::delta(const HwCounters& end, const HwCounters& begin) {
  HwCounters d;
  d.valid = end.valid & begin.valid;
  for (int i = 0; i < kNumCounters; ++i) {
    const CounterId id = static_cast<CounterId>(i);
    if (d.has(id)) {
      const uint64_t e = end.by_id(id);
      const uint64_t b = begin.by_id(id);
      d.by_id(id) = e >= b ? e - b : 0;
    }
  }
  return d;
}

void HwCounters::accumulate(const HwCounters& other) {
  for (int i = 0; i < kNumCounters; ++i) {
    const CounterId id = static_cast<CounterId>(i);
    if (other.has(id)) by_id(id) += other.by_id(id);
  }
  valid |= other.valid;
}

const char* counter_name(CounterId id) {
  switch (id) {
    case CounterId::kCycles: return "cycles";
    case CounterId::kInstructions: return "instructions";
    case CounterId::kL1dMisses: return "l1d_misses";
    case CounterId::kLlcMisses: return "llc_misses";
    case CounterId::kStalledCycles: return "stalled_cycles";
    case CounterId::kCount: break;
  }
  return "?";
}

void CounterSet::force_unavailable(bool disabled) {
  g_force_unavailable.store(disabled, std::memory_order_relaxed);
}

bool CounterSet::forced_unavailable() {
  return g_force_unavailable.load(std::memory_order_relaxed) || env_disabled();
}

#if defined(__linux__)

namespace {

struct CounterSpec {
  uint32_t type;
  uint64_t config;
};

// Order matches CounterId.
const CounterSpec kSpecs[kNumCounters] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

int open_counter(const CounterSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // leader starts stopped
  attr.exclude_kernel = 1;               // works at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

}  // namespace

CounterSet::CounterSet() {
  for (int i = 0; i < kNumCounters; ++i) fds_[i] = -1;
  std::memset(ids_, 0, sizeof(ids_));
  if (forced_unavailable()) return;
  // Any counter may refuse to open (PMU quirks, paranoid sysctl, seccomp).
  // The first one that opens becomes the group leader; the rest join it or
  // are silently dropped.
  for (int i = 0; i < kNumCounters; ++i) {
    const int fd = open_counter(kSpecs[i], leader_fd_);
    if (fd < 0) continue;
    fds_[i] = fd;
    open_mask_ |= static_cast<uint8_t>(1u << i);
    if (leader_fd_ < 0) leader_fd_ = fd;
    if (ioctl(fd, PERF_EVENT_IOC_ID, &ids_[i]) != 0) ids_[i] = 0;
  }
  if (leader_fd_ >= 0) {
    ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }
}

CounterSet::~CounterSet() {
  for (int i = 0; i < kNumCounters; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
}

bool CounterSet::read(HwCounters& out) const {
  out = HwCounters{};
  if (leader_fd_ < 0) return false;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
  // then {value, id} per member.
  uint64_t buf[3 + 2 * kNumCounters];
  const ssize_t want =
      static_cast<ssize_t>((3 + 2 * __builtin_popcount(open_mask_)) *
                           sizeof(uint64_t));
  if (::read(leader_fd_, buf, sizeof(buf)) < want) return false;
  const uint64_t nr = buf[0];
  const uint64_t enabled = buf[1];
  const uint64_t running = buf[2];
  // Scale for PMU multiplexing: if the group only ran a fraction of the
  // enabled time, extrapolate linearly (standard perf practice).
  const double scale =
      (running > 0 && running < enabled)
          ? static_cast<double>(enabled) / static_cast<double>(running)
          : 1.0;
  for (uint64_t v = 0; v < nr; ++v) {
    const uint64_t value = buf[3 + 2 * v];
    const uint64_t id = buf[3 + 2 * v + 1];
    for (int i = 0; i < kNumCounters; ++i) {
      if (fds_[i] < 0 || ids_[i] != id) continue;
      out.by_id(static_cast<CounterId>(i)) =
          static_cast<uint64_t>(static_cast<double>(value) * scale);
      out.valid |= static_cast<uint8_t>(1u << i);
      break;
    }
  }
  return out.valid != 0;
}

#else  // !__linux__

CounterSet::CounterSet() {
  for (int i = 0; i < kNumCounters; ++i) fds_[i] = -1;
  std::memset(ids_, 0, sizeof(ids_));
}

CounterSet::~CounterSet() = default;

bool CounterSet::read(HwCounters& out) const {
  out = HwCounters{};
  return false;
}

#endif  // __linux__

CounterSet& thread_counters() {
  thread_local CounterSet counters;
  return counters;
}

}  // namespace antidote::obs
