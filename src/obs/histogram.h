// LatencyHistogram — fixed-bucket log-scale histogram for latency-style
// positive values, built for concurrent hot-path recording.
//
// The serving runtime used to track stage timings as running means, which
// hides exactly what a latency SLO cares about: the tail. This histogram
// replaces those means with percentile-capable distributions while keeping
// the recording cost compatible with the hot path:
//
//   - record() is lock-free: one bucket-index computation plus one relaxed
//     atomic increment. Workers never serialize on a stats mutex to report
//     a request latency.
//   - the bucket array is FIXED at compile time (no allocation ever): 4
//     buckets per octave (ratio 2^(1/4) ~ 1.19) from 1 microsecond up to
//     ~268 seconds, clamped at both ends. Any percentile read is therefore
//     exact to within +/-9.1% relative error — tight enough to tell a 2x
//     p99 regression from noise, and far tighter than a mean is honest.
//   - percentile() returns the geometric midpoint of the selected bucket,
//     so a value that is recorded and queried round-trips to the same
//     representative (bucket_representative()), which is what the unit
//     tests pin down exactly.
//
// Readers (snapshot paths) race benignly with writers: relaxed loads can
// miss in-flight increments but never tear, so a percentile taken while
// the server runs is a valid percentile of a slightly stale distribution.
#pragma once

#include <atomic>
#include <cstdint>

namespace antidote::obs {

class LatencyHistogram {
 public:
  // 4 buckets per octave over 28 octaves: 1e-3 ms .. ~268e3 ms.
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kNumBuckets = 112;
  static constexpr double kMinMs = 1e-3;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Records one value (milliseconds). Values <= kMinMs land in bucket 0,
  // values off the top end land in the last bucket. Lock-free.
  void record(double ms);

  // Number of recorded values (relaxed).
  uint64_t count() const;

  // The p-th percentile (p in [0, 100]) as the geometric midpoint of the
  // bucket holding the rank-ceil(p/100 * count) value; 0 when empty.
  double percentile(double p) const;

  // Zeroes every bucket. Callers must quiesce writers themselves if they
  // need a clean cut (the serving stats reset does).
  void reset();

  // The representative value record(ms) + percentile() would round-trip
  // to: the geometric midpoint of ms's bucket. Exposed so tests can assert
  // percentile math exactly rather than within a tolerance.
  static double bucket_representative(double ms);

  // Bucket index a value maps to (clamped); the inverse lower edge.
  static int bucket_index(double ms);
  static double bucket_lower_edge(int index);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
};

}  // namespace antidote::obs
