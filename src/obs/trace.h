// Phase tracing: zero-alloc per-worker trace rings + Chrome trace export.
//
// The plan executor's EWMA cost model answers "how long does op k take on
// average"; it cannot answer "which PHASE of op k is slow" or "did worker
// 3 straggle while workers 0-2 idled at the batch barrier". This tracer
// records phase spans (im2col/gather, panel pack, GEMM, epilogue, scatter,
// whole step, per-group worker execution) into per-thread rings and
// exports them two ways: a Chrome trace-event JSON timeline (load in
// chrome://tracing or ui.perfetto.dev — cross-group parallelism and
// stragglers become visually obvious) and an aggregated per-op/per-phase
// table (`plan-dump --profile`).
//
// Design constraints, in order:
//
//   1. The hot path's no-heap-allocation guarantee must survive with
//      tracing ENABLED. Tracer::enable() preallocates every ring before
//      the pass starts; recording is "claim thread slot (one fetch_add,
//      first span only), clock, write 64 bytes into the ring". Rings
//      overwrite oldest on wrap (wrapped() reports how much) rather than
//      ever growing.
//   2. Compiled-in but runtime-off must be free: PhaseScope's constructor
//      is one relaxed atomic load and a branch. Compiled-out
//      (ANTIDOTE_PROFILE=0) it is an empty object the optimizer deletes.
//   3. One writer per ring — the owning thread — so recording needs no
//      synchronization at all. Readers (export/aggregate) run only after
//      passes quiesce; enable()/disable()/clear() likewise must not race
//      running passes.
//
// Each TraceEvent is exactly one cache line so a span write dirties a
// single line of the ring and neighboring events never false-share.
//
// Hardware counters ride along optionally (enable(..., with_counters)):
// each span then brackets a CounterSet read. Opening the per-thread
// counter group is lazy and does one-time syscalls — cheap, but it is why
// counter collection is opt-in per trace run rather than free with
// tracing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/perf_counters.h"

namespace antidote::obs {

enum class Phase : uint8_t {
  kStep = 0,      // one whole plan op (wall time on the driving thread)
  kGroup,         // one mask group executed by a pool/caller worker
  kIm2col,        // dense im2col lowering
  kGather,        // masked gather (rows or positions)
  kPack,          // weight panel packing (cached or bypass)
  kGemm,          // the GEMM itself
  kEpilogue,      // fused bias+activation epilogue
  kScatter,       // masked scatter back to dense output
  kQuant,         // int8 dynamic activation quantization
  kTile,          // one output-position tile of a spatially-tiled conv
  kCount,
};

const char* phase_name(Phase p);

inline int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One phase span. Exactly 64 bytes (one cache line).
struct TraceEvent {
  int64_t t0_ns = 0;
  int64_t t1_ns = 0;
  uint64_t ctr[static_cast<int>(CounterId::kCount)] = {};  // deltas
  int32_t op = -1;           // plan op index, -1 when outside a plan
  uint8_t phase = 0;         // Phase
  uint8_t ctr_valid = 0;     // HwCounters::valid for ctr[]
  uint16_t reserved = 0;
};
static_assert(sizeof(TraceEvent) == 64, "TraceEvent must be one cache line");

// Fixed-capacity single-writer ring; overwrites the oldest event when
// full, never allocates after reserve().
class TraceRing {
 public:
  void reserve(size_t capacity) {
    events_.assign(capacity, TraceEvent{});
    head_ = size_ = 0;
    wrapped_ = 0;
  }
  void clear() {
    head_ = size_ = 0;
    wrapped_ = 0;
  }
  void push(const TraceEvent& e) {
    if (events_.empty()) return;
    events_[head_] = e;
    head_ = head_ + 1 == events_.size() ? 0 : head_ + 1;
    if (size_ < events_.size()) {
      ++size_;
    } else {
      ++wrapped_;
    }
  }
  size_t capacity() const { return events_.size(); }
  size_t size() const { return size_; }
  // Events overwritten because the ring was full (the tail you lost).
  uint64_t wrapped() const { return wrapped_; }
  // i-th surviving event, oldest first.
  const TraceEvent& chronological(size_t i) const {
    const size_t start = size_ < events_.size() ? 0 : head_;
    const size_t idx = start + i;
    return events_[idx < events_.size() ? idx : idx - events_.size()];
  }

 private:
  std::vector<TraceEvent> events_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t wrapped_ = 0;
};

// Aggregated view of one (op, phase) cell across all workers.
struct PhaseStat {
  int op = -1;
  Phase phase = Phase::kStep;
  uint64_t calls = 0;
  double total_ms = 0.0;            // summed across workers (CPU time)
  std::vector<double> slot_ms;      // per trace slot
  int active_slots = 0;             // slots with nonzero time
  double max_slot_ms = 0.0;
  HwCounters counters;              // accumulated deltas
  uint64_t counter_calls = 0;       // spans that carried counters
};

class Tracer {
 public:
  static constexpr size_t kDefaultEventsPerWorker = 1 << 14;

  static Tracer& instance();

  // Preallocates one ring per anticipated thread (caller + pool workers +
  // slack) and arms recording. Returns false when profiling is compiled
  // out (ANTIDOTE_PROFILE=0). Must not race running passes.
  bool enable(size_t events_per_worker = kDefaultEventsPerWorker,
              bool with_counters = false);
  void disable();
  bool enabled() const;
  bool counters_enabled() const {
    return counters_on_.load(std::memory_order_relaxed);
  }

  // Drops recorded events but keeps rings + thread-slot claims (so a
  // warmup pass can be discarded without re-enabling).
  void clear();

  int slots_in_use() const {
    const int n = next_slot_.load(std::memory_order_relaxed);
    return n < static_cast<int>(slots_.size()) ? n
                                               : static_cast<int>(slots_.size());
  }
  uint64_t total_events() const;
  // Spans lost: ring wraps plus spans from threads beyond the slot supply.
  uint64_t dropped_events() const;
  const TraceRing& ring(int slot) const { return slots_[slot].ring; }

  // Chrome trace-event JSON ("X" duration events, µs timebase, one tid
  // per trace slot). op_name labels events (falls back to "op<k>").
  bool write_chrome_trace(
      const std::string& path,
      const std::function<std::string(int)>& op_name = nullptr) const;

  // Collapses all rings into per-(op, phase) stats, ops ascending, phases
  // in enum order. Offline use only (allocates).
  std::vector<PhaseStat> aggregate() const;

  // --- hot path (called via PhaseScope) ---
  // The calling thread's ring, claiming a slot on first use (one relaxed
  // fetch_add, no allocation). nullptr when out of slots or disabled.
  TraceRing* ring_for_this_thread();

 private:
  Tracer() = default;
  struct alignas(64) Slot {
    TraceRing ring;
  };
  std::vector<Slot> slots_;
  std::atomic<int> next_slot_{0};
  std::atomic<uint64_t> no_slot_drops_{0};
  std::atomic<bool> counters_on_{false};
  std::atomic<uint64_t> generation_{0};
};

namespace detail {
// Global arm flag, out of line from the Tracer so the disabled fast path
// never touches the (potentially cold) singleton.
inline std::atomic<bool> g_trace_active{false};
inline thread_local int tls_current_op = -1;
}  // namespace detail

inline bool trace_active() {
  return detail::g_trace_active.load(std::memory_order_relaxed);
}

#if ANTIDOTE_PROFILE

inline void set_current_op(int op) { detail::tls_current_op = op; }
inline int current_op() { return detail::tls_current_op; }

// Establishes "which plan op is executing" for the calling thread so
// kernel-level PhaseScopes (which do not know their op index) attribute
// correctly. Restores the previous op on destruction (nesting-safe).
class ScopedOp {
 public:
  explicit ScopedOp(int op) : prev_(detail::tls_current_op) {
    detail::tls_current_op = op;
  }
  ~ScopedOp() { detail::tls_current_op = prev_; }
  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

 private:
  int prev_;
};

// RAII span recorder. Constructor cost when tracing is off: one relaxed
// load + branch. When on: slot lookup + clock read (+ optional counter
// read); destructor mirrors it and pushes one event. Never allocates.
class PhaseScope {
 public:
  static constexpr int kUseCurrentOp = -2;

  explicit PhaseScope(Phase phase, int op = kUseCurrentOp) {
    if (!trace_active()) return;
    begin(phase, op);
  }
  ~PhaseScope() {
    if (ring_ != nullptr) finish();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  void begin(Phase phase, int op);  // out of line: trace.cc
  void finish();                    // out of line: trace.cc

  TraceRing* ring_ = nullptr;
  int64_t t0_ns_ = 0;
  HwCounters begin_counters_;
  int32_t op_ = -1;
  Phase phase_ = Phase::kStep;
  bool have_counters_ = false;
};

#else  // !ANTIDOTE_PROFILE

inline void set_current_op(int) {}
inline int current_op() { return -1; }

class ScopedOp {
 public:
  explicit ScopedOp(int) {}
};

class PhaseScope {
 public:
  static constexpr int kUseCurrentOp = -2;
  explicit PhaseScope(Phase, int = kUseCurrentOp) {}
};

#endif  // ANTIDOTE_PROFILE

}  // namespace antidote::obs
