#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "base/parallel.h"

namespace antidote::obs {

namespace {

constexpr int kNumCounters = static_cast<int>(CounterId::kCount);

// Per-thread slot claim, tagged with the tracer generation so a
// disable()/enable() cycle re-claims fresh slots.
struct ThreadSlot {
  int slot = -1;
  uint64_t generation = 0;
};
thread_local ThreadSlot tls_slot;

}  // namespace

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kStep: return "step";
    case Phase::kGroup: return "group";
    case Phase::kIm2col: return "im2col";
    case Phase::kGather: return "gather";
    case Phase::kPack: return "pack";
    case Phase::kGemm: return "gemm";
    case Phase::kEpilogue: return "epilogue";
    case Phase::kScatter: return "scatter";
    case Phase::kQuant: return "quant";
    case Phase::kTile: return "tile";
    case Phase::kCount: break;
  }
  return "?";
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

bool Tracer::enable(size_t events_per_worker, bool with_counters) {
#if !ANTIDOTE_PROFILE
  (void)events_per_worker;
  (void)with_counters;
  return false;
#else
  disable();
  if (events_per_worker == 0) events_per_worker = 1;
  // One slot for the caller, one per pool worker, plus slack for serving
  // worker threads or tests that trace from their own threads. Sized and
  // allocated HERE, before any pass runs — recording never allocates.
  const size_t num_slots = 1 + static_cast<size_t>(global_pool().size()) + 4;
  slots_.clear();
  slots_.resize(num_slots);
  for (Slot& s : slots_) s.ring.reserve(events_per_worker);
  next_slot_.store(0, std::memory_order_relaxed);
  no_slot_drops_.store(0, std::memory_order_relaxed);
  counters_on_.store(with_counters, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_relaxed);
  detail::g_trace_active.store(true, std::memory_order_release);
  return true;
#endif
}

void Tracer::disable() {
  detail::g_trace_active.store(false, std::memory_order_release);
  counters_on_.store(false, std::memory_order_relaxed);
}

bool Tracer::enabled() const { return trace_active(); }

void Tracer::clear() {
  for (Slot& s : slots_) s.ring.clear();
  no_slot_drops_.store(0, std::memory_order_relaxed);
}

uint64_t Tracer::total_events() const {
  uint64_t n = 0;
  for (int i = 0; i < slots_in_use(); ++i) n += slots_[i].ring.size();
  return n;
}

uint64_t Tracer::dropped_events() const {
  uint64_t n = no_slot_drops_.load(std::memory_order_relaxed);
  for (int i = 0; i < slots_in_use(); ++i) n += slots_[i].ring.wrapped();
  return n;
}

TraceRing* Tracer::ring_for_this_thread() {
  const uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (tls_slot.slot < 0 || tls_slot.generation != gen) {
    const int slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= static_cast<int>(slots_.size())) {
      no_slot_drops_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    tls_slot.slot = slot;
    tls_slot.generation = gen;
  }
  return &slots_[tls_slot.slot].ring;
}

#if ANTIDOTE_PROFILE

void PhaseScope::begin(Phase phase, int op) {
  ring_ = Tracer::instance().ring_for_this_thread();
  if (ring_ == nullptr) return;
  phase_ = phase;
  op_ = op == kUseCurrentOp ? detail::tls_current_op : op;
  if (Tracer::instance().counters_enabled()) {
    const CounterSet& counters = thread_counters();
    have_counters_ = counters.available() && counters.read(begin_counters_);
  }
  t0_ns_ = trace_now_ns();
}

void PhaseScope::finish() {
  TraceEvent e;
  e.t0_ns = t0_ns_;
  e.t1_ns = trace_now_ns();
  e.op = op_;
  e.phase = static_cast<uint8_t>(phase_);
  if (have_counters_) {
    HwCounters end;
    if (thread_counters().read(end)) {
      const HwCounters d = HwCounters::delta(end, begin_counters_);
      for (int i = 0; i < kNumCounters; ++i) {
        e.ctr[i] = d.by_id(static_cast<CounterId>(i));
      }
      e.ctr_valid = d.valid;
    }
  }
  ring_->push(e);
}

#endif  // ANTIDOTE_PROFILE

bool Tracer::write_chrome_trace(
    const std::string& path,
    const std::function<std::string(int)>& op_name) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  // Timestamps relative to the earliest event so the timeline starts at 0.
  int64_t t_min = INT64_MAX;
  const int used = slots_in_use();
  for (int s = 0; s < used; ++s) {
    if (slots_[s].ring.size() > 0) {
      t_min = std::min(t_min, slots_[s].ring.chronological(0).t0_ns);
    }
  }
  if (t_min == INT64_MAX) t_min = 0;

  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  bool first = true;
  for (int s = 0; s < used; ++s) {
    std::fprintf(f,
                 "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":"
                 "\"thread_name\",\"args\":{\"name\":\"worker-%d\"}}",
                 first ? "" : ",\n", s, s);
    first = false;
  }
  for (int s = 0; s < used; ++s) {
    const TraceRing& ring = slots_[s].ring;
    for (size_t i = 0; i < ring.size(); ++i) {
      const TraceEvent& e = ring.chronological(i);
      const Phase phase = static_cast<Phase>(e.phase);
      std::string name;
      if (e.op >= 0 && op_name) {
        name = op_name(e.op);
        name += ":";
        name += phase_name(phase);
      } else if (e.op >= 0) {
        name = "op" + std::to_string(e.op) + ":" + phase_name(phase);
      } else {
        name = phase_name(phase);
      }
      std::fprintf(f,
                   ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                   "\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
                   "\"args\":{\"op\":%d",
                   name.c_str(), phase_name(phase), s,
                   static_cast<double>(e.t0_ns - t_min) / 1e3,
                   static_cast<double>(e.t1_ns - e.t0_ns) / 1e3,
                   static_cast<int>(e.op));
      for (int c = 0; c < kNumCounters; ++c) {
        if ((e.ctr_valid >> c) & 1u) {
          std::fprintf(f, ",\"%s\":%" PRIu64,
                       counter_name(static_cast<CounterId>(c)), e.ctr[c]);
        }
      }
      std::fputs("}}", f);
    }
  }
  std::fprintf(f, "\n],\"otherData\":{\"dropped_events\":%" PRIu64 "}}\n",
               dropped_events());
  return std::fclose(f) == 0;
}

std::vector<PhaseStat> Tracer::aggregate() const {
  const int used = slots_in_use();
  std::map<std::pair<int, int>, PhaseStat> cells;
  for (int s = 0; s < used; ++s) {
    const TraceRing& ring = slots_[s].ring;
    for (size_t i = 0; i < ring.size(); ++i) {
      const TraceEvent& e = ring.chronological(i);
      PhaseStat& stat = cells[{e.op, static_cast<int>(e.phase)}];
      if (stat.calls == 0) {
        stat.op = e.op;
        stat.phase = static_cast<Phase>(e.phase);
        stat.slot_ms.assign(static_cast<size_t>(used), 0.0);
      }
      stat.calls += 1;
      const double ms = static_cast<double>(e.t1_ns - e.t0_ns) / 1e6;
      stat.total_ms += ms;
      stat.slot_ms[static_cast<size_t>(s)] += ms;
      if (e.ctr_valid != 0) {
        HwCounters c;
        c.valid = e.ctr_valid;
        for (int k = 0; k < kNumCounters; ++k) {
          if ((e.ctr_valid >> k) & 1u) {
            c.by_id(static_cast<CounterId>(k)) = e.ctr[k];
          }
        }
        stat.counters.accumulate(c);
        stat.counter_calls += 1;
      }
    }
  }
  std::vector<PhaseStat> out;
  out.reserve(cells.size());
  for (auto& [key, stat] : cells) {
    for (double ms : stat.slot_ms) {
      if (ms > 0.0) {
        stat.active_slots += 1;
        stat.max_slot_ms = std::max(stat.max_slot_ms, ms);
      }
    }
    out.push_back(std::move(stat));
  }
  return out;
}

}  // namespace antidote::obs
