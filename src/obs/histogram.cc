#include "obs/histogram.h"

#include <cmath>

namespace antidote::obs {

int LatencyHistogram::bucket_index(double ms) {
  if (!(ms > kMinMs)) return 0;  // also catches NaN and negatives
  const int idx = static_cast<int>(
      std::floor(std::log2(ms / kMinMs) * kBucketsPerOctave));
  if (idx < 0) return 0;
  if (idx >= kNumBuckets) return kNumBuckets - 1;
  return idx;
}

double LatencyHistogram::bucket_lower_edge(int index) {
  return kMinMs * std::exp2(static_cast<double>(index) / kBucketsPerOctave);
}

double LatencyHistogram::bucket_representative(double ms) {
  const int idx = bucket_index(ms);
  // Geometric midpoint of [edge(idx), edge(idx + 1)).
  return kMinMs *
         std::exp2((static_cast<double>(idx) + 0.5) / kBucketsPerOctave);
}

void LatencyHistogram::record(double ms) {
  buckets_[bucket_index(ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::percentile(double p) const {
  // Walk the buckets against a cumulative rank. Sum bucket counts rather
  // than trusting count_: a racing record() may have bumped one but not
  // the other, and the bucket sum is the distribution we actually report.
  uint64_t total = 0;
  uint64_t counts[kNumBuckets];
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * total));
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cum += counts[i];
    if (cum >= rank) {
      return kMinMs *
             std::exp2((static_cast<double>(i) + 0.5) / kBucketsPerOctave);
    }
  }
  return kMinMs * std::exp2(static_cast<double>(kNumBuckets - 0.5) /
                            kBucketsPerOctave);
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

}  // namespace antidote::obs
