// im2col / col2im lowering for convolution, plus gather variants that skip
// masked input channels and masked output positions. The gather variants are
// the computational backbone of AntiDote's dynamic pruning: a pruned channel
// contributes no rows and a pruned spatial column contributes no columns to
// the GEMM, so the FLOPs saving is real, not simulated.
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace antidote {

// Geometry of one 2-d convolution (square stride/padding).
struct ConvGeom {
  int in_c = 0;
  int in_h = 0;
  int in_w = 0;
  int k_h = 0;
  int k_w = 0;
  int stride = 1;
  int pad = 0;

  int out_h() const { return (in_h + 2 * pad - k_h) / stride + 1; }
  int out_w() const { return (in_w + 2 * pad - k_w) / stride + 1; }
  // Rows of the lowered patch matrix.
  int64_t patch_rows() const {
    return static_cast<int64_t>(in_c) * k_h * k_w;
  }
  int64_t out_positions() const {
    return static_cast<int64_t>(out_h()) * out_w();
  }
  // Validates that the geometry produces a non-empty output.
  void validate() const;
};

// Dense lowering: input [C,H,W] -> cols [C*kh*kw, out_h*out_w].
void im2col(const float* input, const ConvGeom& g, float* cols);

// Channel-range slice of the dense lowering: fills only the rows of
// channels [c0, c1) at their natural offsets inside the full `cols`
// matrix. Disjoint ranges write disjoint rows, so a caller can
// parallelize one sample's lowering across channel chunks without
// widening the scratch footprint.
void im2col_range(const float* input, const ConvGeom& g, int c0, int c1,
                  float* cols);

// Position-tiled slice of the dense lowering: fills, for the rows of
// channels [c0, c1), only the output-position columns [p0, p1), writing
// each row's tile at `cols + row * ld` (row = the absolute lowered row
// index, column j - p0). The values are the exact [p0, p1) column slice
// of im2col_range — the stride-1 interior is the same contiguous copy
// clamped to the tile window — so a tiled GEMM consuming these panels
// reproduces the untiled result bit for bit. ld >= p1 - p0.
void im2col_range_pos(const float* input, const ConvGeom& g, int c0, int c1,
                      int64_t p0, int64_t p1, float* cols, int64_t ld);

// Position-tiled gathered lowering for channel-masked convolution: lowers
// the kept `channels` rows over output positions [p0, p1) only, each row
// written at `cols + row * ld` (row counts gathered channels from 0).
// Equals the [p0, p1) column slice of im2col_gather_ld with a full
// identity `spatial` set, bit for bit.
void im2col_gather_pos_ld(const float* input, const ConvGeom& g,
                          std::span<const int> channels, int64_t p0,
                          int64_t p1, float* cols, int64_t ld);

// Gathered lowering for masked convolution.
//  - `channels`: kept input-channel indices (strictly increasing).
//  - `spatial`:  kept output positions as flattened oh*out_w+ow indices
//                (strictly increasing).
// cols must hold channels.size()*kh*kw rows by spatial.size() columns.
void im2col_gather(const float* input, const ConvGeom& g,
                   std::span<const int> channels, std::span<const int> spatial,
                   float* cols);

// Strided variant for mask-grouped batched execution: writes the sample's
// spatial.size() columns into a wider [rows x ld] matrix starting at
// `cols` (the caller offsets `cols` to the sample's column slot), so a
// whole group's gathered patches form one contiguous GEMM operand with
// each member occupying a column slice. ld == spatial.size() reproduces
// im2col_gather exactly.
//
// Fast paths (bitwise identical to the reference): when `spatial` is the
// full identity range (every output position kept — the channel-mask hot
// path) each lowered row is filled with the dense contiguous-span copy;
// otherwise the kept positions are decomposed into (y, x) incrementally
// (they are strictly increasing), eliminating the per-element div/mod of
// the reference.
void im2col_gather_ld(const float* input, const ConvGeom& g,
                      std::span<const int> channels,
                      std::span<const int> spatial, float* cols, int64_t ld);

// Genuinely scalar reference implementations (kept un-autovectorized) of
// the two lowering kernels above. They define the values the optimized
// paths must reproduce BIT FOR BIT — the SIMD parity suite asserts it —
// and serve as the scalar leg of the im2col/gather micro-benchmarks.
void im2col_range_scalar(const float* input, const ConvGeom& g, int c0,
                         int c1, float* cols);
void im2col_gather_ld_scalar(const float* input, const ConvGeom& g,
                             std::span<const int> channels,
                             std::span<const int> spatial, float* cols,
                             int64_t ld);

// Scatter-add transpose of im2col: cols [C*kh*kw, out_h*out_w] accumulated
// into input_grad [C,H,W] (caller zero-initializes input_grad).
void col2im(const float* cols, const ConvGeom& g, float* input_grad);

}  // namespace antidote
