// Elementwise, reduction and selection operations on Tensors.
//
// In-place variants end with an underscore and mutate their first argument.
// All shape requirements are checked; mismatches throw antidote::Error.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace antidote::ops {

// --- elementwise (shapes must match exactly) ---
void add_(Tensor& a, const Tensor& b);             // a += b
void sub_(Tensor& a, const Tensor& b);             // a -= b
void mul_(Tensor& a, const Tensor& b);             // a *= b (Hadamard)
void scale_(Tensor& a, float s);                   // a *= s
void axpy_(Tensor& y, float alpha, const Tensor& x);  // y += alpha * x
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

// --- activations ---
Tensor relu(const Tensor& x);
// dx = dy where x > 0 else 0.
Tensor relu_backward(const Tensor& dy, const Tensor& x);

// --- reductions ---
float sum(const Tensor& x);
float mean(const Tensor& x);
float max_value(const Tensor& x);
float min_value(const Tensor& x);
// L2 norm of all elements.
float l2_norm(const Tensor& x);
float l1_norm(const Tensor& x);
// Mean of |x|.
float mean_abs(const Tensor& x);

// Per-channel spatial mean of an NCHW tensor: output shape [N, C].
// This is exactly the paper's channel-attention coefficient (Eq. 1).
Tensor channel_mean_nchw(const Tensor& x);
// Per-location channel mean of an NCHW tensor: output shape [N, H, W].
// This is exactly the paper's spatial-attention coefficient (Eq. 2).
Tensor spatial_mean_nchw(const Tensor& x);
// Allocation-free variants writing into caller storage ([N*C] resp.
// [N*H*W] floats) for the inference hot path.
void channel_mean_nchw_into(const Tensor& x, float* out);
void spatial_mean_nchw_into(const Tensor& x, float* out);

// --- selection ---
// Index of the maximum in each row of a [N, K] tensor (ties -> lowest idx).
std::vector<int> argmax_rows(const Tensor& logits);
// Indices of the k largest values (descending by value, ties -> lowest
// index first, deterministic). Requires 0 <= k <= values.size().
std::vector<int> topk_indices(std::span<const float> values, int k);
// Indices of the k smallest values (ascending, deterministic).
std::vector<int> bottomk_indices(std::span<const float> values, int k);
// Reusable-buffer variants: `scratch` and `out` keep their capacity across
// calls, so a steady-shape caller stops allocating after warm-up. Results
// are identical to the allocating variants.
void topk_indices_into(std::span<const float> values, int k,
                       std::vector<int>& scratch, std::vector<int>& out);
void bottomk_indices_into(std::span<const float> values, int k,
                          std::vector<int>& scratch, std::vector<int>& out);

// --- classification helpers ---
// Row-wise softmax of a [N, K] tensor.
Tensor softmax_rows(const Tensor& logits);
// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, std::span<const int> labels);

// --- comparisons (testing utilities) ---
// Max absolute difference between two same-shaped tensors.
float max_abs_diff(const Tensor& a, const Tensor& b);
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace antidote::ops
