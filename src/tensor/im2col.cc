#include "tensor/im2col.h"

#include "base/error.h"

namespace antidote {

void ConvGeom::validate() const {
  AD_CHECK_GT(in_c, 0);
  AD_CHECK_GT(in_h, 0);
  AD_CHECK_GT(in_w, 0);
  AD_CHECK_GT(k_h, 0);
  AD_CHECK_GT(k_w, 0);
  AD_CHECK_GT(stride, 0);
  AD_CHECK_GE(pad, 0);
  AD_CHECK_GT(out_h(), 0) << " conv output height <= 0";
  AD_CHECK_GT(out_w(), 0) << " conv output width <= 0";
}

void im2col(const float* input, const ConvGeom& g, float* cols) {
  im2col_range(input, g, 0, g.in_c, cols);
}

void im2col_range(const float* input, const ConvGeom& g, int c0, int c1,
                  float* cols) {
  AD_CHECK(0 <= c0 && c0 <= c1 && c1 <= g.in_c) << " im2col channel range";
  const int oh = g.out_h(), ow = g.out_w();
  const int64_t n_cols = static_cast<int64_t>(oh) * ow;
  int64_t row = static_cast<int64_t>(c0) * g.k_h * g.k_w;
  for (int c = c0; c < c1; ++c) {
    const float* plane = input + static_cast<int64_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.k_h; ++kh) {
      for (int kw = 0; kw < g.k_w; ++kw, ++row) {
        float* out_row = cols + row * n_cols;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * g.stride - g.pad + kh;
          float* dst = out_row + static_cast<int64_t>(y) * ow;
          if (iy < 0 || iy >= g.in_h) {
            for (int x = 0; x < ow; ++x) dst[x] = 0.f;
            continue;
          }
          const float* src = plane + static_cast<int64_t>(iy) * g.in_w;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * g.stride - g.pad + kw;
            dst[x] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.f;
          }
        }
      }
    }
  }
}

void im2col_gather(const float* input, const ConvGeom& g,
                   std::span<const int> channels, std::span<const int> spatial,
                   float* cols) {
  im2col_gather_ld(input, g, channels, spatial, cols,
                   static_cast<int64_t>(spatial.size()));
}

void im2col_gather_ld(const float* input, const ConvGeom& g,
                      std::span<const int> channels,
                      std::span<const int> spatial, float* cols, int64_t ld) {
  const int ow = g.out_w();
  const int64_t n_cols = static_cast<int64_t>(spatial.size());
  AD_CHECK_GE(ld, n_cols);
  int64_t row = 0;
  for (int c : channels) {
    AD_CHECK(c >= 0 && c < g.in_c) << " gathered channel " << c;
    const float* plane = input + static_cast<int64_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.k_h; ++kh) {
      for (int kw = 0; kw < g.k_w; ++kw, ++row) {
        float* out_row = cols + row * ld;
        for (int64_t j = 0; j < n_cols; ++j) {
          const int s = spatial[static_cast<size_t>(j)];
          const int y = s / ow;
          const int x = s % ow;
          const int iy = y * g.stride - g.pad + kh;
          const int ix = x * g.stride - g.pad + kw;
          out_row[j] = (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
                           ? plane[static_cast<int64_t>(iy) * g.in_w + ix]
                           : 0.f;
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeom& g, float* input_grad) {
  const int oh = g.out_h(), ow = g.out_w();
  const int64_t n_cols = static_cast<int64_t>(oh) * ow;
  int64_t row = 0;
  for (int c = 0; c < g.in_c; ++c) {
    float* plane = input_grad + static_cast<int64_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.k_h; ++kh) {
      for (int kw = 0; kw < g.k_w; ++kw, ++row) {
        const float* src_row = cols + row * n_cols;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * g.stride - g.pad + kh;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst = plane + static_cast<int64_t>(iy) * g.in_w;
          const float* src = src_row + static_cast<int64_t>(y) * ow;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * g.stride - g.pad + kw;
            if (ix >= 0 && ix < g.in_w) dst[ix] += src[x];
          }
        }
      }
    }
  }
}

}  // namespace antidote
