#include "tensor/im2col.h"

#include <cstring>

#include "base/error.h"
#include "base/simd.h"

namespace antidote {

namespace {

// Fills one lowered row — channel plane x kernel offset (kh, kw) — of
// out_positions() values into `dst`. For stride-1 geometry each output row
// maps to a contiguous span of the input row, so the interior is a single
// memcpy bracketed by zeroed padding edges; strided geometry keeps the
// scalar walk. Values (and therefore bits) match the reference loop
// exactly — this is pure data movement.
inline void lower_row(const float* plane, const ConvGeom& g, int kh, int kw,
                      float* dst) {
  const int oh = g.out_h(), ow = g.out_w();
  for (int y = 0; y < oh; ++y) {
    const int iy = y * g.stride - g.pad + kh;
    float* d = dst + static_cast<int64_t>(y) * ow;
    if (iy < 0 || iy >= g.in_h) {
      std::memset(d, 0, static_cast<size_t>(ow) * sizeof(float));
      continue;
    }
    const float* src = plane + static_cast<int64_t>(iy) * g.in_w;
    if (g.stride == 1) {
      // ix = x + kx_off; valid input columns are the contiguous span
      // [x0, x1) of output columns.
      const int kx_off = kw - g.pad;
      const int x0 = kx_off < 0 ? -kx_off : 0;
      int x1 = g.in_w - kx_off;
      if (x1 > ow) x1 = ow;
      if (x1 < x0) x1 = x0;
      if (x0 > 0) std::memset(d, 0, static_cast<size_t>(x0) * sizeof(float));
      if (x1 > x0) {
        std::memcpy(d + x0, src + kx_off + x0,
                    static_cast<size_t>(x1 - x0) * sizeof(float));
      }
      if (x1 < ow) {
        std::memset(d + x1, 0, static_cast<size_t>(ow - x1) * sizeof(float));
      }
    } else {
      for (int x = 0; x < ow; ++x) {
        const int ix = x * g.stride - g.pad + kw;
        d[x] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.f;
      }
    }
  }
}

// Fills positions [p0, p1) of one lowered row into dst[0 .. p1-p0).
// Produces the same bytes as the matching slice of lower_row: the
// stride-1 fast path copies from the identical source span, clamped to
// the tile's column window, and the padding edges are zeroed with the
// same semantics.
inline void lower_row_span(const float* plane, const ConvGeom& g, int kh,
                           int kw, int64_t p0, int64_t p1, float* dst) {
  const int ow = g.out_w();
  const int y0 = static_cast<int>(p0 / ow);
  const int y1 = static_cast<int>((p1 - 1) / ow);  // inclusive
  for (int y = y0; y <= y1; ++y) {
    const int64_t row_begin = static_cast<int64_t>(y) * ow;
    const int xa =
        static_cast<int>((p0 > row_begin ? p0 : row_begin) - row_begin);
    const int xb = static_cast<int>(
        (p1 < row_begin + ow ? p1 : row_begin + ow) - row_begin);
    float* d = dst + (row_begin + xa - p0);
    const int iy = y * g.stride - g.pad + kh;
    if (iy < 0 || iy >= g.in_h) {
      std::memset(d, 0, static_cast<size_t>(xb - xa) * sizeof(float));
      continue;
    }
    const float* src = plane + static_cast<int64_t>(iy) * g.in_w;
    if (g.stride == 1) {
      // Valid input columns are the contiguous output-column span
      // [x0, x1); clamp it to the tile window [xa, xb).
      const int kx_off = kw - g.pad;
      const int x0 = kx_off < 0 ? -kx_off : 0;
      int x1 = g.in_w - kx_off;
      if (x1 > ow) x1 = ow;
      int ca = x0 > xa ? x0 : xa;
      if (ca > xb) ca = xb;
      int cb = x1 < xb ? x1 : xb;
      if (cb < ca) cb = ca;
      if (ca > xa) {
        std::memset(d, 0, static_cast<size_t>(ca - xa) * sizeof(float));
      }
      if (cb > ca) {
        std::memcpy(d + (ca - xa), src + kx_off + ca,
                    static_cast<size_t>(cb - ca) * sizeof(float));
      }
      if (xb > cb) {
        std::memset(d + (cb - xa), 0,
                    static_cast<size_t>(xb - cb) * sizeof(float));
      }
    } else {
      for (int x = xa; x < xb; ++x) {
        const int ix = x * g.stride - g.pad + kw;
        d[x - xa] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.f;
      }
    }
  }
}

// True when `spatial` keeps every output position. The contract (strictly
// increasing indices in [0, out_positions())) makes the endpoint check
// sufficient.
inline bool spatial_is_identity(std::span<const int> spatial, int64_t pos) {
  return static_cast<int64_t>(spatial.size()) == pos &&
         (pos == 0 || (spatial.front() == 0 &&
                       spatial.back() == static_cast<int>(pos) - 1));
}

}  // namespace

void ConvGeom::validate() const {
  AD_CHECK_GT(in_c, 0);
  AD_CHECK_GT(in_h, 0);
  AD_CHECK_GT(in_w, 0);
  AD_CHECK_GT(k_h, 0);
  AD_CHECK_GT(k_w, 0);
  AD_CHECK_GT(stride, 0);
  AD_CHECK_GE(pad, 0);
  AD_CHECK_GT(out_h(), 0) << " conv output height <= 0";
  AD_CHECK_GT(out_w(), 0) << " conv output width <= 0";
}

void im2col(const float* input, const ConvGeom& g, float* cols) {
  im2col_range(input, g, 0, g.in_c, cols);
}

void im2col_range(const float* input, const ConvGeom& g, int c0, int c1,
                  float* cols) {
  AD_CHECK(0 <= c0 && c0 <= c1 && c1 <= g.in_c) << " im2col channel range";
  const int64_t n_cols = g.out_positions();
  int64_t row = static_cast<int64_t>(c0) * g.k_h * g.k_w;
  for (int c = c0; c < c1; ++c) {
    const float* plane = input + static_cast<int64_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.k_h; ++kh) {
      for (int kw = 0; kw < g.k_w; ++kw, ++row) {
        lower_row(plane, g, kh, kw, cols + row * n_cols);
      }
    }
  }
}

void im2col_range_pos(const float* input, const ConvGeom& g, int c0, int c1,
                      int64_t p0, int64_t p1, float* cols, int64_t ld) {
  AD_CHECK(0 <= c0 && c0 <= c1 && c1 <= g.in_c) << " im2col channel range";
  AD_CHECK(0 <= p0 && p0 < p1 && p1 <= g.out_positions())
      << " im2col position range";
  AD_CHECK_GE(ld, p1 - p0);
  int64_t row = static_cast<int64_t>(c0) * g.k_h * g.k_w;
  for (int c = c0; c < c1; ++c) {
    const float* plane = input + static_cast<int64_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.k_h; ++kh) {
      for (int kw = 0; kw < g.k_w; ++kw, ++row) {
        lower_row_span(plane, g, kh, kw, p0, p1, cols + row * ld);
      }
    }
  }
}

void im2col_gather_pos_ld(const float* input, const ConvGeom& g,
                          std::span<const int> channels, int64_t p0,
                          int64_t p1, float* cols, int64_t ld) {
  AD_CHECK(0 <= p0 && p0 < p1 && p1 <= g.out_positions())
      << " im2col position range";
  AD_CHECK_GE(ld, p1 - p0);
  int64_t row = 0;
  for (int c : channels) {
    AD_CHECK(c >= 0 && c < g.in_c) << " gathered channel " << c;
    const float* plane = input + static_cast<int64_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.k_h; ++kh) {
      for (int kw = 0; kw < g.k_w; ++kw, ++row) {
        lower_row_span(plane, g, kh, kw, p0, p1, cols + row * ld);
      }
    }
  }
}

ANTIDOTE_NO_VECTORIZE
void im2col_range_scalar(const float* input, const ConvGeom& g, int c0,
                         int c1, float* cols) {
  AD_CHECK(0 <= c0 && c0 <= c1 && c1 <= g.in_c) << " im2col channel range";
  const int oh = g.out_h(), ow = g.out_w();
  const int64_t n_cols = static_cast<int64_t>(oh) * ow;
  int64_t row = static_cast<int64_t>(c0) * g.k_h * g.k_w;
  for (int c = c0; c < c1; ++c) {
    const float* plane = input + static_cast<int64_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.k_h; ++kh) {
      for (int kw = 0; kw < g.k_w; ++kw, ++row) {
        float* out_row = cols + row * n_cols;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * g.stride - g.pad + kh;
          float* dst = out_row + static_cast<int64_t>(y) * ow;
          if (iy < 0 || iy >= g.in_h) {
            for (int x = 0; x < ow; ++x) dst[x] = 0.f;
            continue;
          }
          const float* src = plane + static_cast<int64_t>(iy) * g.in_w;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * g.stride - g.pad + kw;
            dst[x] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.f;
          }
        }
      }
    }
  }
}

void im2col_gather(const float* input, const ConvGeom& g,
                   std::span<const int> channels, std::span<const int> spatial,
                   float* cols) {
  im2col_gather_ld(input, g, channels, spatial, cols,
                   static_cast<int64_t>(spatial.size()));
}

void im2col_gather_ld(const float* input, const ConvGeom& g,
                      std::span<const int> channels,
                      std::span<const int> spatial, float* cols, int64_t ld) {
  const int ow = g.out_w();
  const int64_t n_cols = static_cast<int64_t>(spatial.size());
  AD_CHECK_GE(ld, n_cols);
  const bool identity = spatial_is_identity(spatial, g.out_positions());
  int64_t row = 0;
  for (int c : channels) {
    AD_CHECK(c >= 0 && c < g.in_c) << " gathered channel " << c;
    const float* plane = input + static_cast<int64_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.k_h; ++kh) {
      for (int kw = 0; kw < g.k_w; ++kw, ++row) {
        float* out_row = cols + row * ld;
        if (identity) {
          // Every position kept: this lowered row is the dense one.
          lower_row(plane, g, kh, kw, out_row);
          continue;
        }
        // Kept positions are strictly increasing, so (y, x) advance
        // monotonically — walk them incrementally instead of paying a
        // div/mod per gathered element.
        int y = 0, y_edge = ow;
        for (int64_t j = 0; j < n_cols; ++j) {
          const int s = spatial[static_cast<size_t>(j)];
          while (s >= y_edge) {
            ++y;
            y_edge += ow;
          }
          const int x = s - (y_edge - ow);
          const int iy = y * g.stride - g.pad + kh;
          const int ix = x * g.stride - g.pad + kw;
          out_row[j] = (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
                           ? plane[static_cast<int64_t>(iy) * g.in_w + ix]
                           : 0.f;
        }
      }
    }
  }
}

ANTIDOTE_NO_VECTORIZE
void im2col_gather_ld_scalar(const float* input, const ConvGeom& g,
                             std::span<const int> channels,
                             std::span<const int> spatial, float* cols,
                             int64_t ld) {
  const int ow = g.out_w();
  const int64_t n_cols = static_cast<int64_t>(spatial.size());
  AD_CHECK_GE(ld, n_cols);
  int64_t row = 0;
  for (int c : channels) {
    AD_CHECK(c >= 0 && c < g.in_c) << " gathered channel " << c;
    const float* plane = input + static_cast<int64_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.k_h; ++kh) {
      for (int kw = 0; kw < g.k_w; ++kw, ++row) {
        float* out_row = cols + row * ld;
        for (int64_t j = 0; j < n_cols; ++j) {
          const int s = spatial[static_cast<size_t>(j)];
          const int y = s / ow;
          const int x = s % ow;
          const int iy = y * g.stride - g.pad + kh;
          const int ix = x * g.stride - g.pad + kw;
          out_row[j] = (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
                           ? plane[static_cast<int64_t>(iy) * g.in_w + ix]
                           : 0.f;
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeom& g, float* input_grad) {
  const int oh = g.out_h(), ow = g.out_w();
  const int64_t n_cols = static_cast<int64_t>(oh) * ow;
  int64_t row = 0;
  for (int c = 0; c < g.in_c; ++c) {
    float* plane = input_grad + static_cast<int64_t>(c) * g.in_h * g.in_w;
    for (int kh = 0; kh < g.k_h; ++kh) {
      for (int kw = 0; kw < g.k_w; ++kw, ++row) {
        const float* src_row = cols + row * n_cols;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * g.stride - g.pad + kh;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst = plane + static_cast<int64_t>(iy) * g.in_w;
          const float* src = src_row + static_cast<int64_t>(y) * ow;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * g.stride - g.pad + kw;
            if (ix >= 0 && ix < g.in_w) dst[ix] += src[x];
          }
        }
      }
    }
  }
}

}  // namespace antidote
