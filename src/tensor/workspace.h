// Workspace — a growable bump arena for inference scratch memory.
//
// The inference hot path (im2col columns, packed GEMM panels, gathered
// weights, layer outputs) used to construct a fresh heap Tensor for every
// intermediate of every forward pass. A Workspace replaces those with
// pointer-bump allocations out of a reusable arena:
//
//   - alloc<T>(n) returns an uninitialized, 64-byte-aligned block. It only
//     touches the heap when the arena must grow; once the high-water mark
//     of a pass has been seen, every subsequent pass allocates from
//     recycled capacity and performs ZERO heap allocations.
//   - mark()/rewind(mark) give LIFO scopes: a layer can release its scratch
//     while keeping its output, so the arena's footprint tracks the peak
//     live set, not the sum of everything ever allocated.
//   - reset() rewinds everything for the next pass. If the previous pass
//     spilled into overflow blocks, reset() coalesces the arena into one
//     contiguous block of the total size, so growth converges after the
//     first pass (grow_count() goes quiet — asserted by tests/bench).
//
// A Workspace is single-threaded by design: one per ExecutionContext, one
// ExecutionContext per worker thread, never shared. Pointers obtained from
// the arena are invalidated by rewind()/reset() past their mark — the
// classic stack discipline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace antidote {

class Workspace {
 public:
  Workspace() = default;
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // Uninitialized storage for `count` elements of trivially-destructible T,
  // aligned to kAlign. Valid until the enclosing rewind()/reset().
  template <typename T>
  T* alloc(int64_t count) {
    return reinterpret_cast<T*>(
        raw_alloc(static_cast<size_t>(count) * sizeof(T)));
  }
  float* alloc_floats(int64_t count) { return alloc<float>(count); }

  // Stack discipline over the bump pointer.
  struct Mark {
    size_t block = 0;
    size_t used = 0;
  };
  Mark mark() const { return Mark{current_, current_used()}; }
  void rewind(Mark m);

  // Rewinds everything and, if the last pass overflowed into extra blocks,
  // coalesces the arena into a single block of the combined size.
  void reset();

  // Ensures a single block can absorb `bytes` more bytes without growing,
  // allocating one block up front if needed (counted by grow_count()). An
  // executor that knows its pass footprint ahead of time calls this before
  // the first pass so no allocation ever happens mid-forward.
  void reserve(size_t bytes);

  // Turns this workspace into a non-owning FIXED-CAPACITY view over
  // `bytes` bytes at `buffer` (typically a slice carved out of another,
  // owning workspace): allocations bump inside the slice and exhausting
  // it is a hard error (AD_CHECK), never a growth — the caller's sizing
  // formula is the contract. Rebinding the same object to a new slice is
  // free of heap traffic (the one-entry block table is reused), which is
  // how the plan executor hands each pool worker a per-pass arena slice
  // of the reserved arena without allocating: bind, run, rebind next
  // pass. Only ever bind dedicated view objects — binding drops any owned
  // blocks. bind_external(nullptr, 0) pre-sizes the block table so even
  // the first real bind allocates nothing.
  void bind_external(void* buffer, size_t bytes);

  // --- introspection (tests, benches) ---
  size_t capacity_bytes() const;    // total bytes reserved across blocks
  size_t used_bytes() const;        // bytes handed out since last reset
  size_t block_count() const { return blocks_.size(); }
  // Number of heap growths over the workspace's lifetime. Steady-state
  // inference must stop incrementing this after the first pass.
  int64_t grow_count() const { return grow_count_; }

  static constexpr size_t kAlign = 64;

  // The arena's allocation granularity: every raw_alloc rounds its size
  // up with exactly this function. Sizing code that predicts arena
  // footprints ahead of time (plan compiler, kernel scratch bounds) must
  // use it rather than a private copy, so a rounding change cannot
  // silently desynchronize them.
  static constexpr size_t align_up(size_t bytes) {
    return (bytes + kAlign - 1) & ~(kAlign - 1);
  }

 private:
  struct Block {
    char* data = nullptr;
    size_t capacity = 0;
    size_t used = 0;
  };

  char* raw_alloc(size_t bytes);
  size_t current_used() const {
    return blocks_.empty() ? 0 : blocks_[current_].used;
  }

  std::vector<Block> blocks_;
  size_t current_ = 0;  // block being bump-allocated from
  int64_t grow_count_ = 0;
  bool external_ = false;  // non-owning fixed view (bind_external)
};

// Per-thread fallback arena used by kernels and layers when the caller
// does not thread an ExecutionContext through (training, tests, ad-hoc
// calls). Callers must bracket use with mark()/rewind() — the arena is
// shared by everything on the thread and is never reset wholesale.
Workspace& thread_local_workspace();

}  // namespace antidote
