#include "tensor/gemm.h"

#include <algorithm>

#include "base/error.h"
#include "base/parallel.h"
#include "base/simd.h"

namespace antidote {

namespace {

// Register-tile geometry. The micro-kernel keeps a kMR x kNR accumulator
// block in registers (the unroll pragmas below are what actually force the
// promotion — without them GCC leaves the accumulators on the stack and
// the kernel runs 4-8x slower); kNR is a multiple of the vector width so
// the inner loop autovectorizes. kKC bounds the packed K slab so one A
// panel (kMR x kKC) and the active B slab stay cache-resident.
constexpr int kMR = 4;
constexpr int kNR = 16;
constexpr int kKC = 256;

// Below this many MACs the packing overhead dominates; use the simple
// kernel (identical accumulation order, so the cutover is invisible).
constexpr int64_t kSmallGemm = 32 * 32 * 32;

void scale_rows(float* c, int64_t rows, int64_t cols, float beta) {
  if (beta == 1.f) return;
  const int64_t total = rows * cols;
  if (beta == 0.f) {
    for (int64_t i = 0; i < total; ++i) c[i] = 0.f;
  } else {
    for (int64_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

// Packs B rows [p0, p0+kc) into kNR-wide column panels:
// bp[jp][p][j] = b[p0+p][jp*kNR + j], zero-padded past n. Panels are
// independent, so the packing parallelizes across the pool rather than
// serializing the slab on the calling thread.
void pack_b_panels(const float* b, int n, int p0, int kc, float* bp) {
  const int np = (n + kNR - 1) / kNR;
  parallel_for(
      0, np,
      [&](int64_t jp0, int64_t jp1) {
        for (int64_t jp = jp0; jp < jp1; ++jp) {
          const int j0 = static_cast<int>(jp) * kNR;
          const int jw = std::min(kNR, n - j0);
          float* dst = bp + jp * kc * kNR;
          for (int p = 0; p < kc; ++p) {
            const float* src = b + static_cast<int64_t>(p0 + p) * n + j0;
            for (int j = 0; j < jw; ++j) dst[j] = src[j];
            for (int j = jw; j < kNR; ++j) dst[j] = 0.f;
            dst += kNR;
          }
        }
      },
      /*grain=*/std::max<int64_t>(1, 16384 / std::max(1, kc * kNR)));
}

// Packs an A row panel [i0, i0+mw) x [p0, p0+kc) with alpha folded in:
// ap[p][i] = alpha * a[i0+i][p0+p], zero-padded past m.
void pack_a_panel(const float* a, int lda, float alpha, int i0, int mw,
                  int p0, int kc, float* ap) {
  for (int p = 0; p < kc; ++p) {
    float* dst = ap + static_cast<int64_t>(p) * kMR;
    for (int i = 0; i < mw; ++i) {
      dst[i] = alpha * a[static_cast<int64_t>(i0 + i) * lda + p0 + p];
    }
    for (int i = mw; i < kMR; ++i) dst[i] = 0.f;
  }
}

// C tile [mw x jw] += Apanel * Bpanel over kc packed steps. The tile is
// loaded into registers, accumulated in ascending-p order (the same
// per-element order as the naive kernel) and stored once per K slab.
// The vectorized inner update uses simd::madd — an explicit multiply THEN
// add, never a fused multiply-add — so every element sees exactly the two
// roundings per step the scalar kernel performs and the blocked result
// stays bitwise identical across the SIMD, scalar-fallback and simple
// paths (the grouped-vs-per-sample and plan-vs-module-walk memcmp gates
// mix those paths freely).
void micro_kernel(int kc, const float* ap, const float* bp, float* c,
                  int64_t ldc, int mw, int jw) {
  if (mw == kMR && jw == kNR) {
    if constexpr (simd::kLanes > 1) {
      // kNR is a multiple of every backend's lane width: the 4 x 16 tile
      // is kMR x kVecs vector accumulators, resident in registers across
      // the whole K slab.
      constexpr int kVecs = kNR / simd::kLanes;
      simd::vf acc[kMR][kVecs];
      for (int i = 0; i < kMR; ++i) {
        for (int v = 0; v < kVecs; ++v) {
          acc[i][v] = simd::load(c + i * ldc + v * simd::kLanes);
        }
      }
      for (int p = 0; p < kc; ++p) {
        const float* arow = ap + static_cast<int64_t>(p) * kMR;
        const float* brow = bp + static_cast<int64_t>(p) * kNR;
        simd::vf b[kVecs];
        for (int v = 0; v < kVecs; ++v) {
          b[v] = simd::load(brow + v * simd::kLanes);
        }
        for (int i = 0; i < kMR; ++i) {
          const simd::vf av = simd::set1(arow[i]);
          for (int v = 0; v < kVecs; ++v) {
            acc[i][v] = simd::madd(av, b[v], acc[i][v]);
          }
        }
      }
      for (int i = 0; i < kMR; ++i) {
        for (int v = 0; v < kVecs; ++v) {
          simd::store(c + i * ldc + v * simd::kLanes, acc[i][v]);
        }
      }
    } else {
      // Scalar fallback. One accumulator row per A row, kept in registers
      // across the whole K slab (the unroll pragmas force the promotion);
      // C is read once and written once per slab, so the inner loop is
      // pure multiply-add on register data.
      float a0[kNR], a1[kNR], a2[kNR], a3[kNR];
#pragma GCC unroll 16
      for (int j = 0; j < kNR; ++j) {
        a0[j] = c[0 * ldc + j];
        a1[j] = c[1 * ldc + j];
        a2[j] = c[2 * ldc + j];
        a3[j] = c[3 * ldc + j];
      }
      for (int p = 0; p < kc; ++p) {
        const float* arow = ap + static_cast<int64_t>(p) * kMR;
        const float* brow = bp + static_cast<int64_t>(p) * kNR;
        const float v0 = arow[0], v1 = arow[1], v2 = arow[2], v3 = arow[3];
#pragma GCC unroll 16
        for (int j = 0; j < kNR; ++j) {
          const float bv = brow[j];
          a0[j] += v0 * bv;
          a1[j] += v1 * bv;
          a2[j] += v2 * bv;
          a3[j] += v3 * bv;
        }
      }
#pragma GCC unroll 16
      for (int j = 0; j < kNR; ++j) {
        c[0 * ldc + j] = a0[j];
        c[1 * ldc + j] = a1[j];
        c[2 * ldc + j] = a2[j];
        c[3 * ldc + j] = a3[j];
      }
    }
    return;
  }
  // Edge tile: accumulate directly, same per-element order.
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<int64_t>(p) * kMR;
    const float* brow = bp + static_cast<int64_t>(p) * kNR;
    for (int i = 0; i < mw; ++i) {
      const float av = arow[i];
      float* crow = c + i * ldc;
      for (int j = 0; j < jw; ++j) crow[j] += av * brow[j];
    }
  }
}

// Reference-order kernel for small problems (and the packing cutoff).
void gemm_nn_simple(int m, int n, int k, float alpha, const float* a,
                    const float* b, float beta, float* c) {
  scale_rows(c, m, n, beta);
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      const float* brow = b + static_cast<int64_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

size_t gemm_nn_scratch_bytes(int m, int n, int k) {
  if (static_cast<int64_t>(m) * n * k <= kSmallGemm) return 0;
  const size_t np = static_cast<size_t>((n + kNR - 1) / kNR);
  const size_t mp = static_cast<size_t>((m + kMR - 1) / kMR);
  // Two raw_alloc calls (bpack, apack), each rounded up to the arena
  // granularity. Panels are sized by the real slab depth, not the kKC
  // ceiling, so small-K problems (grouped masked convs with few kept
  // channels, wide-N compacted batches) don't reserve unused slab room.
  const size_t kc = static_cast<size_t>(std::min(kKC, k));
  return Workspace::align_up(np * kc * kNR * sizeof(float)) +
         Workspace::align_up(mp * kc * kMR * sizeof(float));
}

void gemm_nn(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c, Workspace* ws) {
  if (static_cast<int64_t>(m) * n * k <= kSmallGemm) {
    gemm_nn_simple(m, n, k, alpha, a, b, beta, c);
    return;
  }
  Workspace& w = ws != nullptr ? *ws : thread_local_workspace();
  const Workspace::Mark wm = w.mark();

  const int np = (n + kNR - 1) / kNR;
  const int mp = (m + kMR - 1) / kMR;
  const int kc_cap = std::min(kKC, k);  // real slab depth (see scratch fn)
  float* bpack = w.alloc_floats(static_cast<int64_t>(np) * kc_cap * kNR);
  // Every row panel gets its own packing slice so worker threads never
  // allocate or contend; slices are reused across K slabs.
  float* apack = w.alloc_floats(static_cast<int64_t>(mp) * kc_cap * kMR);

  if (beta != 1.f) {
    parallel_for(
        0, m,
        [&](int64_t i0, int64_t i1) { scale_rows(c + i0 * n, i1 - i0, n, beta); },
        /*grain=*/std::max<int64_t>(1, 4096 / std::max(1, n)));
  }

  for (int p0 = 0; p0 < k; p0 += kKC) {
    const int kc = std::min(kKC, k - p0);
    pack_b_panels(b, n, p0, kc, bpack);
    parallel_for(
        0, mp,
        [&](int64_t ip0, int64_t ip1) {
          for (int64_t ip = ip0; ip < ip1; ++ip) {
            const int i0 = static_cast<int>(ip) * kMR;
            const int mw = std::min(kMR, m - i0);
            float* ap = apack + ip * kc_cap * kMR;
            pack_a_panel(a, k, alpha, i0, mw, p0, kc, ap);
            for (int jp = 0; jp < np; ++jp) {
              const int j0 = jp * kNR;
              const int jw = std::min(kNR, n - j0);
              micro_kernel(kc, ap, bpack + static_cast<int64_t>(jp) * kc * kNR,
                           c + static_cast<int64_t>(i0) * n + j0, n, mw, jw);
            }
          }
        },
        /*grain=*/1);
  }
  w.rewind(wm);
}

void gemm_nt(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c) {
  parallel_for(
      0, m,
      [&](int64_t i0, int64_t i1) {
        scale_rows(c + i0 * n, i1 - i0, n, beta);
        for (int64_t i = i0; i < i1; ++i) {
          float* crow = c + i * n;
          const float* arow = a + i * k;
          // 4-wide j tile: one pass over arow feeds four dot products.
          int j = 0;
          for (; j + 4 <= n; j += 4) {
            const float* b0 = b + static_cast<int64_t>(j) * k;
            const float* b1 = b0 + k;
            const float* b2 = b1 + k;
            const float* b3 = b2 + k;
            double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
            for (int p = 0; p < k; ++p) {
              const double av = arow[p];
              acc0 += av * b0[p];
              acc1 += av * b1[p];
              acc2 += av * b2[p];
              acc3 += av * b3[p];
            }
            crow[j] += alpha * static_cast<float>(acc0);
            crow[j + 1] += alpha * static_cast<float>(acc1);
            crow[j + 2] += alpha * static_cast<float>(acc2);
            crow[j + 3] += alpha * static_cast<float>(acc3);
          }
          for (; j < n; ++j) {
            const float* brow = b + static_cast<int64_t>(j) * k;
            double acc = 0.0;
            for (int p = 0; p < k; ++p) acc += double(arow[p]) * brow[p];
            crow[j] += alpha * static_cast<float>(acc);
          }
        }
      },
      /*grain=*/std::max<int64_t>(
          1, 16384 / std::max<int64_t>(1, static_cast<int64_t>(n) * k)));
}

void gemm_tn(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c) {
  // a is [K, M]; k stays outermost within each row chunk so both the B row
  // and the C rows are streamed contiguously, and the row chunks run in
  // parallel (this variant dominates the weight-gradient path).
  parallel_for(
      0, m,
      [&](int64_t i0, int64_t i1) {
        scale_rows(c + i0 * n, i1 - i0, n, beta);
        for (int p = 0; p < k; ++p) {
          const float* arow = a + static_cast<int64_t>(p) * m;
          const float* brow = b + static_cast<int64_t>(p) * n;
          for (int64_t i = i0; i < i1; ++i) {
            const float av = alpha * arow[i];
            if (av == 0.f) continue;
            float* crow = c + i * n;
            for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      /*grain=*/std::max<int64_t>(
          1, 16384 / std::max<int64_t>(1, static_cast<int64_t>(n) * k)));
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  AD_CHECK_EQ(a.ndim(), 2);
  AD_CHECK_EQ(b.ndim(), 2);
  AD_CHECK_EQ(a.dim(1), b.dim(0)) << " matmul inner dim";
  Tensor c({a.dim(0), b.dim(1)});
  gemm_nn(a.dim(0), b.dim(1), a.dim(1), 1.f, a.data(), b.data(), 0.f,
          c.data());
  return c;
}

}  // namespace antidote
