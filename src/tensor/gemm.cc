#include "tensor/gemm.h"

#include "base/error.h"
#include "base/parallel.h"

namespace antidote {

namespace {
void scale_rows(float* c, int64_t rows, int64_t cols, float beta) {
  if (beta == 1.f) return;
  const int64_t total = rows * cols;
  if (beta == 0.f) {
    for (int64_t i = 0; i < total; ++i) c[i] = 0.f;
  } else {
    for (int64_t i = 0; i < total; ++i) c[i] *= beta;
  }
}
}  // namespace

void gemm_nn(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c) {
  parallel_for(
      0, m,
      [&](int64_t i0, int64_t i1) {
        scale_rows(c + i0 * n, i1 - i0, n, beta);
        for (int64_t i = i0; i < i1; ++i) {
          float* crow = c + i * n;
          const float* arow = a + i * k;
          for (int p = 0; p < k; ++p) {
            const float av = alpha * arow[p];
            if (av == 0.f) continue;
            const float* brow = b + static_cast<int64_t>(p) * n;
            for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      /*grain=*/std::max<int64_t>(1, 16384 / std::max(1, n * k)));
}

void gemm_nt(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c) {
  parallel_for(
      0, m,
      [&](int64_t i0, int64_t i1) {
        scale_rows(c + i0 * n, i1 - i0, n, beta);
        for (int64_t i = i0; i < i1; ++i) {
          float* crow = c + i * n;
          const float* arow = a + i * k;
          for (int j = 0; j < n; ++j) {
            const float* brow = b + static_cast<int64_t>(j) * k;
            double acc = 0.0;
            for (int p = 0; p < k; ++p) acc += double(arow[p]) * brow[p];
            crow[j] += alpha * static_cast<float>(acc);
          }
        }
      },
      /*grain=*/std::max<int64_t>(1, 16384 / std::max(1, n * k)));
}

void gemm_tn(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c) {
  // a is [K, M]; iterate k outermost so both B row and C row are contiguous.
  scale_rows(c, m, n, beta);
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<int64_t>(p) * m;
    const float* brow = b + static_cast<int64_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.f) continue;
      float* crow = c + static_cast<int64_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  AD_CHECK_EQ(a.ndim(), 2);
  AD_CHECK_EQ(b.ndim(), 2);
  AD_CHECK_EQ(a.dim(1), b.dim(0)) << " matmul inner dim";
  Tensor c({a.dim(0), b.dim(1)});
  gemm_nn(a.dim(0), b.dim(1), a.dim(1), 1.f, a.data(), b.data(), 0.f,
          c.data());
  return c;
}

}  // namespace antidote
