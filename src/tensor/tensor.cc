#include "tensor/tensor.h"

#include <cstring>
#include <numeric>
#include <sstream>

#include "base/error.h"

namespace antidote {

namespace {
int64_t checked_size(const std::vector<int>& shape) {
  int64_t n = 1;
  for (int d : shape) {
    AD_CHECK_GT(d, 0) << " bad tensor dim";
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  size_ = checked_size(shape_);
  data_ = std::shared_ptr<float[]>(new float[static_cast<size_t>(size_)]());
}

Tensor Tensor::zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::ones(std::vector<int> shape) {
  return full(std::move(shape), 1.f);
}

Tensor Tensor::randn(std::vector<int> shape, Rng& rng, float mean,
                     float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    p[i] = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(std::vector<int> shape, Rng& rng, float lo,
                            float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) p[i] = rng.uniform_float(lo, hi);
  return t;
}

Tensor Tensor::from_values(std::vector<int> shape,
                           std::initializer_list<float> values) {
  Tensor t(std::move(shape));
  AD_CHECK_EQ(static_cast<int64_t>(values.size()), t.size());
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::from_vector(std::vector<int> shape,
                           const std::vector<float>& values) {
  Tensor t(std::move(shape));
  AD_CHECK_EQ(static_cast<int64_t>(values.size()), t.size());
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

int Tensor::dim(int i) const {
  const int n = ndim();
  if (i < 0) i += n;
  AD_CHECK(i >= 0 && i < n) << " dim index " << i << " for ndim " << n;
  return shape_[static_cast<size_t>(i)];
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

float& Tensor::operator[](int64_t i) {
  AD_CHECK(i >= 0 && i < size_) << " index " << i << " size " << size_;
  return data_.get()[i];
}

float Tensor::operator[](int64_t i) const {
  AD_CHECK(i >= 0 && i < size_) << " index " << i << " size " << size_;
  return data_.get()[i];
}

namespace {
int64_t flat_index(const std::vector<int>& shape,
                   std::initializer_list<int> idx) {
  AD_CHECK_EQ(idx.size(), shape.size());
  int64_t flat = 0;
  size_t d = 0;
  for (int i : idx) {
    AD_CHECK(i >= 0 && i < shape[d])
        << " index " << i << " out of range for dim " << d << " size "
        << shape[d];
    flat = flat * shape[d] + i;
    ++d;
  }
  return flat;
}
}  // namespace

float& Tensor::at(std::initializer_list<int> idx) {
  return data_.get()[flat_index(shape_, idx)];
}

float Tensor::at(std::initializer_list<int> idx) const {
  return data_.get()[flat_index(shape_, idx)];
}

Tensor Tensor::reshape(std::vector<int> new_shape) const {
  int64_t known = 1;
  int wildcard = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      AD_CHECK_EQ(wildcard, -1) << " multiple -1 dims in reshape";
      wildcard = static_cast<int>(i);
    } else {
      AD_CHECK_GT(new_shape[i], 0);
      known *= new_shape[i];
    }
  }
  if (wildcard >= 0) {
    AD_CHECK(known > 0 && size_ % known == 0)
        << " cannot infer -1 dim: size " << size_ << " known " << known;
    new_shape[static_cast<size_t>(wildcard)] = static_cast<int>(size_ / known);
    known = size_;
  }
  AD_CHECK_EQ(known, size_) << " reshape " << shape_str() << " element count";
  Tensor view;
  view.shape_ = std::move(new_shape);
  view.size_ = size_;
  view.data_ = data_;
  return view;
}

Tensor Tensor::clone() const {
  Tensor copy;
  copy.shape_ = shape_;
  copy.size_ = size_;
  if (size_ > 0) {
    copy.data_ = std::shared_ptr<float[]>(new float[static_cast<size_t>(size_)]);
    std::memcpy(copy.data_.get(), data_.get(),
                static_cast<size_t>(size_) * sizeof(float));
  }
  return copy;
}

void Tensor::fill(float value) {
  float* p = data_.get();
  for (int64_t i = 0; i < size_; ++i) p[i] = value;
}

void Tensor::copy_from(const Tensor& src) {
  AD_CHECK_EQ(src.size(), size_) << " copy_from size mismatch";
  if (size_ > 0) {
    std::memcpy(data_.get(), src.data(),
                static_cast<size_t>(size_) * sizeof(float));
  }
}

}  // namespace antidote
