#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <ostream>
#include <sstream>

#include "base/error.h"

namespace antidote {

Shape::Shape(std::initializer_list<int> dims) {
  AD_CHECK_LE(dims.size(), static_cast<size_t>(kMaxRank)) << " tensor rank";
  for (int d : dims) dims_[rank_++] = d;
}

Shape::Shape(const std::vector<int>& dims) {
  AD_CHECK_LE(dims.size(), static_cast<size_t>(kMaxRank)) << " tensor rank";
  for (int d : dims) dims_[rank_++] = d;
}

void Shape::push_back(int d) {
  AD_CHECK_LT(rank_, kMaxRank) << " tensor rank";
  dims_[rank_++] = d;
}

std::vector<int> Shape::to_vector() const {
  return std::vector<int>(begin(), end());
}

bool operator==(const Shape& a, const Shape& b) {
  return a.rank_ == b.rank_ && std::equal(a.begin(), a.end(), b.begin());
}

bool operator==(const Shape& a, const std::vector<int>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool operator==(const std::vector<int>& a, const Shape& b) { return b == a; }

std::ostream& operator<<(std::ostream& os, const Shape& s) {
  os << "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) os << ",";
    os << s[i];
  }
  return os << "]";
}

namespace {
int64_t checked_size(const Shape& shape) {
  int64_t n = 1;
  for (int d : shape) {
    AD_CHECK_GT(d, 0) << " bad tensor dim";
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(Shape shape) : shape_(shape) {
  size_ = checked_size(shape_);
  data_ = std::shared_ptr<float[]>(new float[static_cast<size_t>(size_)]());
}

Tensor Tensor::zeros(Shape shape) { return Tensor(shape); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::ones(Shape shape) { return full(shape, 1.f); }

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(shape);
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    p[i] = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(shape);
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) p[i] = rng.uniform_float(lo, hi);
  return t;
}

Tensor Tensor::from_values(Shape shape, std::initializer_list<float> values) {
  Tensor t(shape);
  AD_CHECK_EQ(static_cast<int64_t>(values.size()), t.size());
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::from_vector(Shape shape, const std::vector<float>& values) {
  Tensor t(shape);
  AD_CHECK_EQ(static_cast<int64_t>(values.size()), t.size());
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::borrow(float* data, Shape shape) {
  Tensor t;
  t.shape_ = shape;
  t.size_ = checked_size(t.shape_);
  // Aliasing constructor with an empty owner: shares no control block, so
  // this performs no heap allocation and never frees `data`.
  t.data_ = std::shared_ptr<float[]>(std::shared_ptr<void>(), data);
  return t;
}

int Tensor::dim(int i) const {
  const int n = ndim();
  if (i < 0) i += n;
  AD_CHECK(i >= 0 && i < n) << " dim index " << i << " for ndim " << n;
  return shape_[static_cast<size_t>(i)];
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << shape_;
  return os.str();
}

float& Tensor::operator[](int64_t i) {
  AD_CHECK(i >= 0 && i < size_) << " index " << i << " size " << size_;
  return data_.get()[i];
}

float Tensor::operator[](int64_t i) const {
  AD_CHECK(i >= 0 && i < size_) << " index " << i << " size " << size_;
  return data_.get()[i];
}

namespace {
int64_t flat_index(const Shape& shape, std::initializer_list<int> idx) {
  AD_CHECK_EQ(idx.size(), shape.size());
  int64_t flat = 0;
  size_t d = 0;
  for (int i : idx) {
    AD_CHECK(i >= 0 && i < shape[d])
        << " index " << i << " out of range for dim " << d << " size "
        << shape[d];
    flat = flat * shape[d] + i;
    ++d;
  }
  return flat;
}
}  // namespace

float& Tensor::at(std::initializer_list<int> idx) {
  return data_.get()[flat_index(shape_, idx)];
}

float Tensor::at(std::initializer_list<int> idx) const {
  return data_.get()[flat_index(shape_, idx)];
}

Tensor Tensor::reshape(Shape new_shape) const {
  int64_t known = 1;
  int wildcard = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      AD_CHECK_EQ(wildcard, -1) << " multiple -1 dims in reshape";
      wildcard = static_cast<int>(i);
    } else {
      AD_CHECK_GT(new_shape[i], 0);
      known *= new_shape[i];
    }
  }
  if (wildcard >= 0) {
    AD_CHECK(known > 0 && size_ % known == 0)
        << " cannot infer -1 dim: size " << size_ << " known " << known;
    new_shape[static_cast<size_t>(wildcard)] = static_cast<int>(size_ / known);
    known = size_;
  }
  AD_CHECK_EQ(known, size_) << " reshape " << shape_str() << " element count";
  Tensor view;
  view.shape_ = new_shape;
  view.size_ = size_;
  view.data_ = data_;
  return view;
}

Tensor Tensor::clone() const {
  Tensor copy;
  copy.shape_ = shape_;
  copy.size_ = size_;
  if (size_ > 0) {
    copy.data_ = std::shared_ptr<float[]>(new float[static_cast<size_t>(size_)]);
    std::memcpy(copy.data_.get(), data_.get(),
                static_cast<size_t>(size_) * sizeof(float));
  }
  return copy;
}

void Tensor::fill(float value) {
  float* p = data_.get();
  for (int64_t i = 0; i < size_; ++i) p[i] = value;
}

void Tensor::copy_from(const Tensor& src) {
  AD_CHECK_EQ(src.size(), size_) << " copy_from size mismatch";
  if (size_ > 0) {
    std::memcpy(data_.get(), src.data(),
                static_cast<size_t>(size_) * sizeof(float));
  }
}

}  // namespace antidote
