#include "tensor/workspace.h"

#include <algorithm>
#include <new>

#include "base/error.h"

namespace antidote {

namespace {
constexpr size_t kMinBlockBytes = size_t{1} << 20;  // 1 MiB

char* aligned_new(size_t bytes) {
  return static_cast<char*>(
      ::operator new(bytes, std::align_val_t{Workspace::kAlign}));
}

void aligned_delete(char* p) {
  ::operator delete(p, std::align_val_t{Workspace::kAlign});
}
}  // namespace

Workspace::~Workspace() {
  if (external_) return;  // the view does not own its memory
  for (Block& b : blocks_) aligned_delete(b.data);
}

void Workspace::bind_external(void* buffer, size_t bytes) {
  if (!external_) {
    // First bind of this object: it must not hold owned memory we would
    // silently leak or double-interpret.
    AD_CHECK(blocks_.empty()) << " bind_external on an owning workspace";
    blocks_.resize(1);  // one-entry table, reused by every rebind
    external_ = true;
  }
  blocks_[0] = Block{static_cast<char*>(buffer), bytes, 0};
  current_ = 0;
}

char* Workspace::raw_alloc(size_t bytes) {
  bytes = align_up(std::max<size_t>(bytes, 1));
  // Fast path: room in the current block.
  if (!blocks_.empty()) {
    Block& b = blocks_[current_];
    if (b.capacity - b.used >= bytes) {
      char* p = b.data + b.used;
      b.used += bytes;
      return p;
    }
  }
  // A fixed view never grows: its size came from an exact worst-case
  // formula, so running out is a sizing bug, not a demand signal.
  AD_CHECK(!external_) << " fixed workspace slice exhausted (need " << bytes
                       << " B more of " << capacity_bytes() << " B)";
  // Advance through later (rewound) blocks if one is large enough.
  for (size_t i = current_ + 1; i < blocks_.size(); ++i) {
    blocks_[i].used = 0;
    current_ = i;
    if (blocks_[i].capacity >= bytes) {
      blocks_[i].used = bytes;
      return blocks_[i].data;
    }
  }
  // Grow: at least double the arena so growth converges quickly.
  const size_t grow = std::max({bytes, capacity_bytes(), kMinBlockBytes});
  Block b;
  b.data = aligned_new(grow);
  b.capacity = grow;
  b.used = bytes;
  blocks_.push_back(b);
  current_ = blocks_.size() - 1;
  ++grow_count_;
  return b.data;
}

void Workspace::rewind(Mark m) {
  AD_CHECK_LE(m.block, current_) << " workspace rewind out of order";
  for (size_t i = m.block + 1; i <= current_ && i < blocks_.size(); ++i) {
    blocks_[i].used = 0;
  }
  current_ = m.block;
  if (!blocks_.empty()) {
    AD_CHECK_LE(m.used, blocks_[current_].capacity);
    blocks_[current_].used = m.used;
  }
}

void Workspace::reserve(size_t bytes) {
  bytes = align_up(std::max<size_t>(bytes, 1));
  if (external_) {
    AD_CHECK_LE(blocks_[0].used + bytes, blocks_[0].capacity)
        << " reserve exceeds fixed workspace slice";
    return;
  }
  // Satisfied if any block from the allocation cursor onward has the room
  // (allocations walk forward through rewound blocks before growing).
  for (size_t i = current_; i < blocks_.size(); ++i) {
    const size_t used = i == current_ ? blocks_[i].used : 0;
    if (blocks_[i].capacity - used >= bytes) return;
  }
  Block b;
  b.data = aligned_new(bytes);
  b.capacity = bytes;
  b.used = 0;
  blocks_.push_back(b);
  ++grow_count_;
}

void Workspace::reset() {
  if (blocks_.size() > 1) {
    // Coalesce into one contiguous block covering everything the previous
    // pass needed, so future passes never spill (and never allocate).
    size_t total = 0;
    for (Block& b : blocks_) {
      total += b.capacity;
      aligned_delete(b.data);
    }
    blocks_.clear();
    Block b;
    b.data = aligned_new(total);
    b.capacity = total;
    b.used = 0;
    blocks_.push_back(b);
    ++grow_count_;
  } else if (!blocks_.empty()) {
    blocks_[0].used = 0;
  }
  current_ = 0;
}

size_t Workspace::capacity_bytes() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

Workspace& thread_local_workspace() {
  static thread_local Workspace ws;
  return ws;
}

size_t Workspace::used_bytes() const {
  size_t total = 0;
  for (size_t i = 0; i <= current_ && i < blocks_.size(); ++i) {
    total += blocks_[i].used;
  }
  return total;
}

}  // namespace antidote
