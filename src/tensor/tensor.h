// Dense float32 tensor with row-major contiguous storage.
//
// Design choices (kept deliberately simple for a CNN workload):
//  - Always contiguous; `reshape` returns a view sharing the buffer.
//  - Copying a Tensor is a shallow (buffer-sharing) copy; use clone() for a
//    deep copy. This mirrors the semantics of mainstream frameworks and
//    makes passing tensors through layers cheap.
//  - float32 only: everything in the paper is float32 CNN math.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"

namespace antidote {

class Tensor {
 public:
  // Empty tensor (size 0, no dims).
  Tensor() = default;

  // Zero-initialized tensor of the given shape. All dims must be positive.
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape);
  static Tensor full(std::vector<int> shape, float value);
  static Tensor ones(std::vector<int> shape);
  // I.i.d. N(mean, stddev^2).
  static Tensor randn(std::vector<int> shape, Rng& rng, float mean = 0.f,
                      float stddev = 1.f);
  // I.i.d. U[lo, hi).
  static Tensor rand_uniform(std::vector<int> shape, Rng& rng, float lo,
                             float hi);
  // 1-d tensor from explicit values (handy in tests).
  static Tensor from_values(std::vector<int> shape,
                            std::initializer_list<float> values);
  static Tensor from_vector(std::vector<int> shape,
                            const std::vector<float>& values);

  // --- shape ---
  const std::vector<int>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  // Dimension i; negative i counts from the end (-1 = last).
  int dim(int i) const;
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string shape_str() const;

  // --- data access ---
  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }
  float& operator[](int64_t i);
  float operator[](int64_t i) const;

  // Multi-dim accessors (bounds-checked; for tests and slow paths).
  float& at(std::initializer_list<int> idx);
  float at(std::initializer_list<int> idx) const;

  // Fast unchecked 4-d accessor for NCHW hot loops.
  float& at4(int n, int c, int h, int w) {
    return data_.get()[((static_cast<int64_t>(n) * shape_[1] + c) * shape_[2] + h) *
                           shape_[3] +
                       w];
  }
  float at4(int n, int c, int h, int w) const {
    return data_.get()[((static_cast<int64_t>(n) * shape_[1] + c) * shape_[2] + h) *
                           shape_[3] +
                       w];
  }

  // --- shape manipulation ---
  // View with a new shape; one dim may be -1 (inferred). Shares storage.
  Tensor reshape(std::vector<int> new_shape) const;
  // Deep copy.
  Tensor clone() const;

  // --- mutation ---
  void fill(float value);
  void zero() { fill(0.f); }
  // Copies values from src (shapes must match element count).
  void copy_from(const Tensor& src);

  // True if both tensors share the same buffer.
  bool shares_storage(const Tensor& other) const {
    return data_ == other.data_;
  }

 private:
  std::vector<int> shape_;
  int64_t size_ = 0;
  std::shared_ptr<float[]> data_;
};

}  // namespace antidote
