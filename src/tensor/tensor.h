// Dense float32 tensor with row-major contiguous storage.
//
// Design choices (kept deliberately simple for a CNN workload):
//  - Always contiguous; `reshape` returns a view sharing the buffer.
//  - Copying a Tensor is a shallow (buffer-sharing) copy; use clone() for a
//    deep copy. This mirrors the semantics of mainstream frameworks and
//    makes passing tensors through layers cheap.
//  - float32 only: everything in the paper is float32 CNN math.
//  - The shape is stored inline (no heap allocation): constructing, copying
//    and reshaping tensors never touches the allocator except for the data
//    buffer itself. Together with Tensor::borrow this is what lets the
//    inference hot path run allocation-free out of a workspace arena.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"

namespace antidote {

// Inline fixed-capacity dimension list. Mimics the subset of the
// std::vector<int> interface the codebase uses for shapes, so call sites
// (and tests comparing against std::vector) keep working, but lives
// entirely on the stack.
class Shape {
 public:
  static constexpr int kMaxRank = 6;

  Shape() = default;
  Shape(std::initializer_list<int> dims);
  // Implicit by design: legacy call sites pass std::vector<int> shapes.
  Shape(const std::vector<int>& dims);  // NOLINT(google-explicit-constructor)

  size_t size() const { return static_cast<size_t>(rank_); }
  bool empty() const { return rank_ == 0; }
  int operator[](size_t i) const { return dims_[i]; }
  int& operator[](size_t i) { return dims_[i]; }
  const int* begin() const { return dims_; }
  const int* end() const { return dims_ + rank_; }
  void push_back(int d);
  void clear() { rank_ = 0; }
  std::vector<int> to_vector() const;

  friend bool operator==(const Shape& a, const Shape& b);

 private:
  int dims_[kMaxRank] = {};
  int rank_ = 0;
};

bool operator==(const Shape& a, const std::vector<int>& b);
bool operator==(const std::vector<int>& a, const Shape& b);
std::ostream& operator<<(std::ostream& os, const Shape& s);

class Tensor {
 public:
  // Empty tensor (size 0, no dims).
  Tensor() = default;

  // Zero-initialized tensor of the given shape. All dims must be positive.
  explicit Tensor(Shape shape);

  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape);
  // I.i.d. N(mean, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.f,
                      float stddev = 1.f);
  // I.i.d. U[lo, hi).
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);
  // 1-d tensor from explicit values (handy in tests).
  static Tensor from_values(Shape shape, std::initializer_list<float> values);
  static Tensor from_vector(Shape shape, const std::vector<float>& values);

  // Non-owning view over externally managed memory (e.g. a Workspace
  // arena). The caller guarantees `data` holds shape-many floats and stays
  // valid for the lifetime of the returned tensor and every view/shallow
  // copy of it. Performs no heap allocation.
  static Tensor borrow(float* data, Shape shape);

  // --- shape ---
  const Shape& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  // Dimension i; negative i counts from the end (-1 = last).
  int dim(int i) const;
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string shape_str() const;

  // --- data access ---
  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }
  float& operator[](int64_t i);
  float operator[](int64_t i) const;

  // Multi-dim accessors (bounds-checked; for tests and slow paths).
  float& at(std::initializer_list<int> idx);
  float at(std::initializer_list<int> idx) const;

  // Fast unchecked 4-d accessor for NCHW hot loops.
  float& at4(int n, int c, int h, int w) {
    return data_.get()[((static_cast<int64_t>(n) * shape_[1] + c) * shape_[2] + h) *
                           shape_[3] +
                       w];
  }
  float at4(int n, int c, int h, int w) const {
    return data_.get()[((static_cast<int64_t>(n) * shape_[1] + c) * shape_[2] + h) *
                           shape_[3] +
                       w];
  }

  // --- shape manipulation ---
  // View with a new shape; one dim may be -1 (inferred). Shares storage.
  Tensor reshape(Shape new_shape) const;
  // Deep copy.
  Tensor clone() const;

  // --- mutation ---
  void fill(float value);
  void zero() { fill(0.f); }
  // Copies values from src (shapes must match element count).
  void copy_from(const Tensor& src);

  // True if both tensors share the same buffer.
  bool shares_storage(const Tensor& other) const {
    return data_ == other.data_;
  }

 private:
  Shape shape_;
  int64_t size_ = 0;
  std::shared_ptr<float[]> data_;
};

}  // namespace antidote
