// Single-precision GEMM kernels for the convolution and linear layers.
//
// Three explicit layout variants avoid materializing transposed copies in
// the backward pass:
//   gemm_nn: C[M,N] = alpha * A[M,K]   * B[K,N]   + beta * C
//   gemm_nt: C[M,N] = alpha * A[M,K]   * B[N,K]^T + beta * C
//   gemm_tn: C[M,N] = alpha * A[K,M]^T * B[K,N]   + beta * C
// All matrices are row-major and densely packed (ld == row length).
//
// gemm_nn — the inference workhorse (dense and masked conv both lower to
// it) — is a cache-blocked, register-tiled kernel: A row panels and B
// column panels are packed into contiguous buffers drawn from a Workspace
// arena (caller-provided, or a thread-local fallback), the K dimension is
// processed in L2-sized slabs, and row panels are distributed over the
// global thread pool. The accumulation order per C element is identical to
// the naive kernel's (ascending k), so results are deterministic and
// independent of blocking and thread count.
//
// gemm_nt keeps per-element double-precision accumulation over the full K
// range (register-tiled, rows parallelized); gemm_tn streams k outermost
// within parallel row chunks. All variants are bitwise-reproducible across
// runs for fixed inputs.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace antidote {

// `ws` provides scratch for the packed panels; pass the ExecutionContext
// workspace on the inference hot path so steady-state packing performs no
// heap allocation. nullptr falls back to a thread-local arena.
void gemm_nn(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c, Workspace* ws = nullptr);

// Exact number of arena bytes gemm_nn(m, n, k, ...) draws for its packed
// panels (0 when the problem is small enough for the unpacked kernel).
// The plan compiler uses this to size inference arenas ahead of the first
// forward pass, so the bound must track the implementation exactly.
size_t gemm_nn_scratch_bytes(int m, int n, int k);
void gemm_nt(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c);
void gemm_tn(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c);

// [M,K] x [K,N] -> [M,N] convenience wrapper over 2-d tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace antidote
