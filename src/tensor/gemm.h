// Single-precision GEMM kernels for the convolution and linear layers.
//
// Three explicit layout variants avoid materializing transposed copies in
// the backward pass:
//   gemm_nn: C[M,N] = alpha * A[M,K]   * B[K,N]   + beta * C
//   gemm_nt: C[M,N] = alpha * A[M,K]   * B[N,K]^T + beta * C
//   gemm_tn: C[M,N] = alpha * A[K,M]^T * B[K,N]   + beta * C
// All matrices are row-major and densely packed (ld == row length). Loops
// are ordered so the innermost dimension is contiguous and autovectorizes
// under -O3; rows are parallelized across the global thread pool.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace antidote {

void gemm_nn(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c);
void gemm_nt(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c);
void gemm_tn(int m, int n, int k, float alpha, const float* a, const float* b,
             float beta, float* c);

// [M,K] x [K,N] -> [M,N] convenience wrapper over 2-d tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace antidote
