#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/error.h"

namespace antidote::ops {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  AD_CHECK(a.same_shape(b)) << " " << op << ": shape mismatch "
                            << a.shape_str() << " vs " << b.shape_str();
}
}  // namespace

void add_(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_");
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) pa[i] += pb[i];
}

void sub_(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub_");
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) pa[i] -= pb[i];
}

void mul_(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul_");
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) pa[i] *= pb[i];
}

void scale_(Tensor& a, float s) {
  float* pa = a.data();
  for (int64_t i = 0; i < a.size(); ++i) pa[i] *= s;
}

void axpy_(Tensor& y, float alpha, const Tensor& x) {
  check_same_shape(y, x, "axpy_");
  float* py = y.data();
  const float* px = x.data();
  for (int64_t i = 0; i < y.size(); ++i) py[i] += alpha * px[i];
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a.clone();
  add_(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a.clone();
  sub_(out, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = a.clone();
  mul_(out, b);
  return out;
}

Tensor relu(const Tensor& x) {
  Tensor out = x.clone();
  float* p = out.data();
  for (int64_t i = 0; i < out.size(); ++i) p[i] = p[i] > 0.f ? p[i] : 0.f;
  return out;
}

Tensor relu_backward(const Tensor& dy, const Tensor& x) {
  check_same_shape(dy, x, "relu_backward");
  Tensor dx(dy.shape());
  float* pdx = dx.data();
  const float* pdy = dy.data();
  const float* px = x.data();
  for (int64_t i = 0; i < dx.size(); ++i) {
    pdx[i] = px[i] > 0.f ? pdy[i] : 0.f;
  }
  return dx;
}

float sum(const Tensor& x) {
  const float* p = x.data();
  double acc = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) acc += p[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& x) {
  AD_CHECK_GT(x.size(), 0);
  return sum(x) / static_cast<float>(x.size());
}

float max_value(const Tensor& x) {
  AD_CHECK_GT(x.size(), 0);
  const float* p = x.data();
  float m = p[0];
  for (int64_t i = 1; i < x.size(); ++i) m = std::max(m, p[i]);
  return m;
}

float min_value(const Tensor& x) {
  AD_CHECK_GT(x.size(), 0);
  const float* p = x.data();
  float m = p[0];
  for (int64_t i = 1; i < x.size(); ++i) m = std::min(m, p[i]);
  return m;
}

float l2_norm(const Tensor& x) {
  const float* p = x.data();
  double acc = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) acc += double(p[i]) * p[i];
  return static_cast<float>(std::sqrt(acc));
}

float l1_norm(const Tensor& x) {
  const float* p = x.data();
  double acc = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) acc += std::abs(double(p[i]));
  return static_cast<float>(acc);
}

float mean_abs(const Tensor& x) {
  AD_CHECK_GT(x.size(), 0);
  return l1_norm(x) / static_cast<float>(x.size());
}

void channel_mean_nchw_into(const Tensor& x, float* out) {
  AD_CHECK_EQ(x.ndim(), 4) << " channel_mean_nchw expects NCHW";
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t hw = static_cast<int64_t>(h) * w;
  const float* px = x.data();
  for (int i = 0; i < n * c; ++i) {
    const float* plane = px + static_cast<int64_t>(i) * hw;
    double acc = 0.0;
    for (int64_t j = 0; j < hw; ++j) acc += plane[j];
    out[i] = static_cast<float>(acc / static_cast<double>(hw));
  }
}

Tensor channel_mean_nchw(const Tensor& x) {
  AD_CHECK_EQ(x.ndim(), 4) << " channel_mean_nchw expects NCHW";
  Tensor out({x.dim(0), x.dim(1)});
  channel_mean_nchw_into(x, out.data());
  return out;
}

void spatial_mean_nchw_into(const Tensor& x, float* out) {
  AD_CHECK_EQ(x.ndim(), 4) << " spatial_mean_nchw expects NCHW";
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t hw = static_cast<int64_t>(h) * w;
  const float* px = x.data();
  for (int b = 0; b < n; ++b) {
    float* out_plane = out + static_cast<int64_t>(b) * hw;
    for (int64_t j = 0; j < hw; ++j) out_plane[j] = 0.f;
    for (int ch = 0; ch < c; ++ch) {
      const float* plane = px + (static_cast<int64_t>(b) * c + ch) * hw;
      for (int64_t j = 0; j < hw; ++j) out_plane[j] += plane[j];
    }
    const float inv = 1.f / static_cast<float>(c);
    for (int64_t j = 0; j < hw; ++j) out_plane[j] *= inv;
  }
}

Tensor spatial_mean_nchw(const Tensor& x) {
  AD_CHECK_EQ(x.ndim(), 4) << " spatial_mean_nchw expects NCHW";
  Tensor out({x.dim(0), x.dim(2), x.dim(3)});
  spatial_mean_nchw_into(x, out.data());
  return out;
}

std::vector<int> argmax_rows(const Tensor& logits) {
  AD_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0), k = logits.dim(1);
  std::vector<int> out(static_cast<size_t>(n));
  const float* p = logits.data();
  for (int i = 0; i < n; ++i) {
    const float* row = p + static_cast<int64_t>(i) * k;
    int best = 0;
    for (int j = 1; j < k; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

// The allocating variants are thin wrappers over the _into ones so there
// is exactly one selection algorithm — the hot-path bitwise-parity
// contract (select_kept vs select_kept_into) depends on that.
std::vector<int> topk_indices(std::span<const float> values, int k) {
  std::vector<int> scratch, out;
  topk_indices_into(values, k, scratch, out);
  return out;
}

std::vector<int> bottomk_indices(std::span<const float> values, int k) {
  std::vector<int> scratch, out;
  bottomk_indices_into(values, k, scratch, out);
  return out;
}

void topk_indices_into(std::span<const float> values, int k,
                       std::vector<int>& scratch, std::vector<int>& out) {
  AD_CHECK(k >= 0 && k <= static_cast<int>(values.size()))
      << " topk k=" << k << " n=" << values.size();
  scratch.resize(values.size());
  std::iota(scratch.begin(), scratch.end(), 0);
  auto greater = [&](int a, int b) {
    if (values[static_cast<size_t>(a)] != values[static_cast<size_t>(b)]) {
      return values[static_cast<size_t>(a)] > values[static_cast<size_t>(b)];
    }
    return a < b;  // deterministic tie-break
  };
  // nth_element (O(n)) + sort of the k prefix beats partial_sort's
  // O(n log k) for the attention-sized inputs of the gate hot path; the
  // comparator is a strict total order, so the selected set — and after
  // the prefix sort, the exact output — matches the allocating variant.
  if (k > 0 && k < static_cast<int>(scratch.size())) {
    std::nth_element(scratch.begin(), scratch.begin() + (k - 1),
                     scratch.end(), greater);
  }
  std::sort(scratch.begin(), scratch.begin() + k, greater);
  out.assign(scratch.begin(), scratch.begin() + k);
}

void bottomk_indices_into(std::span<const float> values, int k,
                          std::vector<int>& scratch, std::vector<int>& out) {
  AD_CHECK(k >= 0 && k <= static_cast<int>(values.size()))
      << " bottomk k=" << k << " n=" << values.size();
  scratch.resize(values.size());
  std::iota(scratch.begin(), scratch.end(), 0);
  auto less = [&](int a, int b) {
    if (values[static_cast<size_t>(a)] != values[static_cast<size_t>(b)]) {
      return values[static_cast<size_t>(a)] < values[static_cast<size_t>(b)];
    }
    return a < b;
  };
  if (k > 0 && k < static_cast<int>(scratch.size())) {
    std::nth_element(scratch.begin(), scratch.begin() + (k - 1),
                     scratch.end(), less);
  }
  std::sort(scratch.begin(), scratch.begin() + k, less);
  out.assign(scratch.begin(), scratch.begin() + k);
}

Tensor softmax_rows(const Tensor& logits) {
  AD_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0), k = logits.dim(1);
  Tensor out(logits.shape());
  const float* p = logits.data();
  float* po = out.data();
  for (int i = 0; i < n; ++i) {
    const float* row = p + static_cast<int64_t>(i) * k;
    float* orow = po + static_cast<int64_t>(i) * k;
    float m = row[0];
    for (int j = 1; j < k; ++j) m = std::max(m, row[j]);
    double denom = 0.0;
    for (int j = 0; j < k; ++j) {
      orow[j] = std::exp(row[j] - m);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int j = 0; j < k; ++j) orow[j] *= inv;
  }
  return out;
}

double accuracy(const Tensor& logits, std::span<const int> labels) {
  AD_CHECK_EQ(logits.dim(0), static_cast<int>(labels.size()));
  const std::vector<int> pred = argmax_rows(logits);
  int correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(labels.size());
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  const float* pa = a.data();
  const float* pb = b.data();
  float m = 0.f;
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(pa[i] - pb[i]));
  }
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!a.same_shape(b)) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    const float tol = atol + rtol * std::abs(pb[i]);
    if (std::abs(pa[i] - pb[i]) > tol) return false;
  }
  return true;
}

}  // namespace antidote::ops
