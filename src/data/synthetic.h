// Synthetic class-structured image generator — the stand-in for CIFAR-10,
// CIFAR-100 and ImageNet100 when the real datasets are not on disk.
//
// Why this preserves the paper's behaviour (see DESIGN.md §2): AntiDote's
// dynamic pruning exploits *per-input activation variance* in two
// dimensions. The generator manufactures exactly those two kinds of
// structure:
//   - every class owns a few Gaussian blobs at class-specific spatial
//     locations (features live in a small spatial region -> spatial-column
//     redundancy elsewhere), and
//   - every blob carries a class-specific channel signature (features
//     activate a class-specific subset of channels -> channel redundancy
//     for other inputs).
// Per-sample jitter, amplitude variation and cross-class distractor blobs
// create the input-to-input variation that makes per-input masks differ,
// which is what distinguishes dynamic from static pruning.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace antidote::data {

struct SyntheticSpec {
  std::string name = "synthetic";
  int num_classes = 10;
  int channels = 3;
  int height = 32;
  int width = 32;
  int train_size = 2000;
  int test_size = 500;
  int blobs_per_class = 3;
  float blob_amplitude = 2.0f;       // peak value of a blob before signature
  float amplitude_jitter = 0.3f;     // per-sample relative amplitude range
  int position_jitter = 2;           // per-sample blob shift in pixels
  float noise_std = 0.25f;           // i.i.d. Gaussian pixel noise
  float distractor_strength = 0.35f; // max amplitude of a wrong-class blob
  uint64_t seed = 1234;

  // Paper-dataset presets (sizes are CPU-budget defaults; callers scale).
  static SyntheticSpec cifar10_like();
  static SyntheticSpec cifar100_like();
  static SyntheticSpec imagenet100_like();
};

// Builds a train/test pair sharing the same class templates (drawn from
// spec.seed) but disjoint sample randomness.
DatasetPair make_synthetic_pair(const SyntheticSpec& spec);

}  // namespace antidote::data
