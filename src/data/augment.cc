#include "data/augment.h"

#include "base/error.h"

namespace antidote::data {

Tensor pad_crop(const Tensor& chw, int pad, int offset_y, int offset_x) {
  AD_CHECK_EQ(chw.ndim(), 3);
  AD_CHECK_GE(pad, 0);
  AD_CHECK(offset_y >= 0 && offset_y <= 2 * pad) << " crop offset y";
  AD_CHECK(offset_x >= 0 && offset_x <= 2 * pad) << " crop offset x";
  const int c = chw.dim(0), h = chw.dim(1), w = chw.dim(2);
  Tensor out({c, h, w});
  // Source pixel (y, x) of output pixel (oy, ox) is (oy + offset_y - pad,
  // ox + offset_x - pad); out-of-range stays zero.
  for (int ch = 0; ch < c; ++ch) {
    for (int oy = 0; oy < h; ++oy) {
      const int sy = oy + offset_y - pad;
      if (sy < 0 || sy >= h) continue;
      for (int ox = 0; ox < w; ++ox) {
        const int sx = ox + offset_x - pad;
        if (sx < 0 || sx >= w) continue;
        out.at({ch, oy, ox}) = chw.at({ch, sy, sx});
      }
    }
  }
  return out;
}

Tensor hflip(const Tensor& chw) {
  AD_CHECK_EQ(chw.ndim(), 3);
  const int c = chw.dim(0), h = chw.dim(1), w = chw.dim(2);
  Tensor out({c, h, w});
  for (int ch = 0; ch < c; ++ch) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        out.at({ch, y, x}) = chw.at({ch, y, w - 1 - x});
      }
    }
  }
  return out;
}

Tensor augment(const Tensor& chw, const AugmentConfig& cfg, Rng& rng) {
  Tensor out = chw;
  if (cfg.pad > 0) {
    const int oy = rng.randint(0, 2 * cfg.pad + 1);
    const int ox = rng.randint(0, 2 * cfg.pad + 1);
    out = pad_crop(out, cfg.pad, oy, ox);
  }
  if (cfg.hflip && rng.bernoulli(0.5)) {
    out = hflip(out);
  }
  return out;
}

}  // namespace antidote::data
