// Loaders for the real CIFAR-10 / CIFAR-100 binary distributions.
//
// When the standard binary archives are present on disk the benchmarks use
// them automatically; otherwise they fall back to the synthetic generators
// (see synthetic.h). Expected layouts:
//   CIFAR-10:  <root>/data_batch_{1..5}.bin, <root>/test_batch.bin
//   CIFAR-100: <root>/train.bin, <root>/test.bin
// Pixels are scaled to [0,1] and normalized with the standard per-channel
// mean/std used by the pruning literature.
#pragma once

#include <string>

#include "data/dataset.h"

namespace antidote::data {

bool cifar10_available(const std::string& root);
bool cifar100_available(const std::string& root);

// Throws antidote::Error if files are missing or malformed.
DatasetPair load_cifar10(const std::string& root);
DatasetPair load_cifar100(const std::string& root);

}  // namespace antidote::data
