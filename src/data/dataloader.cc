#include "data/dataloader.h"

#include <cstring>
#include <functional>
#include <numeric>

#include "base/error.h"

namespace antidote::data {

DataLoader::DataLoader(const Dataset& dataset, int batch_size, bool shuffle,
                       uint64_t seed, std::optional<AugmentConfig> augment)
    : dataset_(&dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed),
      augment_(augment) {
  AD_CHECK_GT(batch_size, 0);
  AD_CHECK_GT(dataset.size(), 0);
  order_.resize(static_cast<size_t>(dataset.size()));
  std::iota(order_.begin(), order_.end(), 0);
  if (shuffle_) rng_.shuffle(order_);
}

int DataLoader::num_batches() const {
  return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::new_epoch() {
  if (shuffle_) rng_.shuffle(order_);
}

Batch DataLoader::batch(int index) {
  AD_CHECK(index >= 0 && index < num_batches()) << " batch index " << index;
  const int begin = index * batch_size_;
  const int end = std::min(dataset_->size(), begin + batch_size_);
  const int n = end - begin;

  const std::vector<int> shape = dataset_->sample_shape();
  AD_CHECK_EQ(shape.size(), 3u);
  const int64_t sample_size =
      static_cast<int64_t>(shape[0]) * shape[1] * shape[2];

  Batch out;
  out.images = Tensor({n, shape[0], shape[1], shape[2]});
  out.labels.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Sample s = dataset_->get(order_[static_cast<size_t>(begin + i)]);
    Tensor img = s.image;
    if (augment_.has_value()) img = augment(img, *augment_, rng_);
    std::memcpy(out.images.data() + i * sample_size, img.data(),
                static_cast<size_t>(sample_size) * sizeof(float));
    out.labels[static_cast<size_t>(i)] = s.label;
  }
  return out;
}

void for_each_batch(DataLoader& loader,
                    const std::function<void(const Batch&)>& fn) {
  loader.new_epoch();
  for (int b = 0; b < loader.num_batches(); ++b) {
    fn(loader.batch(b));
  }
}

}  // namespace antidote::data
