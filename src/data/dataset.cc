#include "data/dataset.h"

#include "base/error.h"

namespace antidote::data {

InMemoryDataset::InMemoryDataset(std::string name,
                                 std::vector<int> sample_shape,
                                 int num_classes, std::vector<Tensor> images,
                                 std::vector<int> labels)
    : name_(std::move(name)),
      shape_(std::move(sample_shape)),
      num_classes_(num_classes),
      images_(std::move(images)),
      labels_(std::move(labels)) {
  AD_CHECK_EQ(images_.size(), labels_.size());
  AD_CHECK_GT(num_classes_, 0);
  for (size_t i = 0; i < images_.size(); ++i) {
    AD_CHECK(images_[i].shape() == shape_)
        << " sample " << i << " shape " << images_[i].shape_str();
    AD_CHECK(labels_[i] >= 0 && labels_[i] < num_classes_)
        << " sample " << i << " label " << labels_[i];
  }
}

Sample InMemoryDataset::get(int index) const {
  AD_CHECK(index >= 0 && index < size()) << " dataset index " << index;
  return Sample{images_[static_cast<size_t>(index)],
                labels_[static_cast<size_t>(index)]};
}

}  // namespace antidote::data
