#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "base/error.h"
#include "base/rng.h"

namespace antidote::data {

namespace {

// A Gaussian bump at a class-specific position with a class-specific
// per-channel signature.
struct Blob {
  float cy, cx;                 // center in pixels
  float sigma;                  // spatial spread
  std::vector<float> channel_signature;  // length C, unit L2 norm
};

std::vector<std::vector<Blob>> make_class_templates(const SyntheticSpec& spec,
                                                    Rng& rng) {
  std::vector<std::vector<Blob>> templates(
      static_cast<size_t>(spec.num_classes));
  const float min_sigma = std::max(1.f, spec.height / 12.f);
  const float max_sigma = std::max(min_sigma + 0.5f, spec.height / 5.f);
  for (auto& blobs : templates) {
    blobs.resize(static_cast<size_t>(spec.blobs_per_class));
    for (auto& b : blobs) {
      // Keep centers away from the border so jitter cannot push the bulk of
      // the blob outside the image.
      b.cy = rng.uniform_float(0.2f * spec.height, 0.8f * spec.height);
      b.cx = rng.uniform_float(0.2f * spec.width, 0.8f * spec.width);
      b.sigma = rng.uniform_float(min_sigma, max_sigma);
      b.channel_signature.resize(static_cast<size_t>(spec.channels));
      double norm_sq = 0.0;
      for (auto& s : b.channel_signature) {
        s = static_cast<float>(rng.normal());
        norm_sq += double(s) * s;
      }
      const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq + 1e-9));
      for (auto& s : b.channel_signature) s *= inv;
    }
  }
  return templates;
}

void render_blob(Tensor& img, const Blob& b, float amplitude, float dy,
                 float dx) {
  const int c = img.dim(0), h = img.dim(1), w = img.dim(2);
  const float cy = b.cy + dy, cx = b.cx + dx;
  const float inv_two_sigma_sq = 1.f / (2.f * b.sigma * b.sigma);
  // Only touch the 3-sigma neighbourhood.
  const int y0 = std::max(0, static_cast<int>(cy - 3 * b.sigma));
  const int y1 = std::min(h - 1, static_cast<int>(cy + 3 * b.sigma));
  const int x0 = std::max(0, static_cast<int>(cx - 3 * b.sigma));
  const int x1 = std::min(w - 1, static_cast<int>(cx + 3 * b.sigma));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const float dy2 = (y - cy) * (y - cy);
      const float dx2 = (x - cx) * (x - cx);
      const float g = amplitude * std::exp(-(dy2 + dx2) * inv_two_sigma_sq);
      if (g < 1e-4f) continue;
      for (int ch = 0; ch < c; ++ch) {
        img.at({ch, y, x}) += g * b.channel_signature[static_cast<size_t>(ch)];
      }
    }
  }
}

Tensor make_sample(const SyntheticSpec& spec,
                   const std::vector<std::vector<Blob>>& templates, int label,
                   Rng& rng) {
  Tensor img({spec.channels, spec.height, spec.width});
  // Background noise.
  if (spec.noise_std > 0.f) {
    float* p = img.data();
    for (int64_t i = 0; i < img.size(); ++i) {
      p[i] = static_cast<float>(rng.normal(0.0, spec.noise_std));
    }
  }
  // Class blobs with per-sample amplitude/position variation.
  for (const Blob& b : templates[static_cast<size_t>(label)]) {
    const float amp =
        spec.blob_amplitude *
        rng.uniform_float(1.f - spec.amplitude_jitter,
                          1.f + spec.amplitude_jitter);
    const float dy = static_cast<float>(
        rng.randint(-spec.position_jitter, spec.position_jitter + 1));
    const float dx = static_cast<float>(
        rng.randint(-spec.position_jitter, spec.position_jitter + 1));
    render_blob(img, b, amp, dy, dx);
  }
  // One distractor blob from another class (creates cross-input variance).
  if (spec.distractor_strength > 0.f && spec.num_classes > 1) {
    int other = rng.randint(0, spec.num_classes - 1);
    if (other >= label) ++other;
    const auto& blobs = templates[static_cast<size_t>(other)];
    const Blob& b =
        blobs[static_cast<size_t>(rng.randint(0, static_cast<int>(blobs.size())))];
    render_blob(img, b,
                spec.blob_amplitude *
                    rng.uniform_float(0.f, spec.distractor_strength),
                0.f, 0.f);
  }
  return img;
}

std::unique_ptr<Dataset> make_split(const SyntheticSpec& spec,
                                    const std::vector<std::vector<Blob>>& tpl,
                                    int count, const std::string& split,
                                    Rng rng) {
  std::vector<Tensor> images;
  std::vector<int> labels;
  images.reserve(static_cast<size_t>(count));
  labels.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int label = i % spec.num_classes;  // balanced classes
    images.push_back(make_sample(spec, tpl, label, rng));
    labels.push_back(label);
  }
  return std::make_unique<InMemoryDataset>(
      spec.name + "/" + split,
      std::vector<int>{spec.channels, spec.height, spec.width},
      spec.num_classes, std::move(images), std::move(labels));
}

}  // namespace

SyntheticSpec SyntheticSpec::cifar10_like() {
  SyntheticSpec s;
  s.name = "cifar10-syn";
  s.num_classes = 10;
  s.height = s.width = 32;
  return s;
}

SyntheticSpec SyntheticSpec::cifar100_like() {
  SyntheticSpec s;
  s.name = "cifar100-syn";
  s.num_classes = 100;
  s.height = s.width = 32;
  s.blobs_per_class = 2;
  s.train_size = 4000;
  s.test_size = 1000;
  return s;
}

SyntheticSpec SyntheticSpec::imagenet100_like() {
  SyntheticSpec s;
  s.name = "imagenet100-syn";
  s.num_classes = 100;
  // The paper uses 224x224; 64x64 keeps the "large image, features occupy a
  // small fraction of the area" property on a single-core CPU budget.
  s.height = s.width = 64;
  s.blobs_per_class = 2;
  s.train_size = 4000;
  s.test_size = 1000;
  return s;
}

DatasetPair make_synthetic_pair(const SyntheticSpec& spec) {
  AD_CHECK_GT(spec.num_classes, 0);
  AD_CHECK_GT(spec.channels, 0);
  AD_CHECK_GT(spec.train_size, 0);
  AD_CHECK_GT(spec.test_size, 0);
  Rng template_rng(spec.seed);
  const auto templates = make_class_templates(spec, template_rng);
  Rng train_rng(spec.seed * 0x9e3779b1ULL + 1);
  Rng test_rng(spec.seed * 0x9e3779b1ULL + 2);
  DatasetPair pair;
  pair.train =
      make_split(spec, templates, spec.train_size, "train", train_rng);
  pair.test = make_split(spec, templates, spec.test_size, "test", test_rng);
  return pair;
}

}  // namespace antidote::data
