// Mini-batch loader: shuffles per epoch, materializes [N,C,H,W] batches and
// applies training augmentation.
#pragma once

#include <functional>
#include <optional>

#include "base/rng.h"
#include "data/augment.h"
#include "data/dataset.h"

namespace antidote::data {

struct Batch {
  Tensor images;            // [N, C, H, W]
  std::vector<int> labels;  // length N
  int size() const { return static_cast<int>(labels.size()); }
};

class DataLoader {
 public:
  // `augment` enables the paper's crop/flip pipeline (training loaders).
  DataLoader(const Dataset& dataset, int batch_size, bool shuffle,
             uint64_t seed = 7, std::optional<AugmentConfig> augment = {});

  int num_batches() const;
  int dataset_size() const { return dataset_->size(); }

  // Reshuffles sample order (call once per epoch when shuffle is on).
  void new_epoch();

  // Materializes batch `index` (last batch may be smaller).
  Batch batch(int index);

 private:
  const Dataset* dataset_;
  int batch_size_;
  bool shuffle_;
  Rng rng_;
  std::optional<AugmentConfig> augment_;
  std::vector<int> order_;
};

// Runs `fn(batch)` over one full epoch (reshuffling first).
void for_each_batch(DataLoader& loader,
                    const std::function<void(const Batch&)>& fn);

}  // namespace antidote::data
