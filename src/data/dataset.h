// Dataset abstraction: an indexable collection of (CHW image, label) pairs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace antidote::data {

struct Sample {
  Tensor image;  // [C, H, W]
  int label = 0;
};

class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual int size() const = 0;
  virtual int num_classes() const = 0;
  // {C, H, W} of every sample.
  virtual std::vector<int> sample_shape() const = 0;
  virtual Sample get(int index) const = 0;
  virtual std::string name() const = 0;
};

// In-memory dataset over pre-materialized tensors; the concrete type behind
// both the synthetic generators and the CIFAR loaders.
class InMemoryDataset : public Dataset {
 public:
  InMemoryDataset(std::string name, std::vector<int> sample_shape,
                  int num_classes, std::vector<Tensor> images,
                  std::vector<int> labels);

  int size() const override { return static_cast<int>(images_.size()); }
  int num_classes() const override { return num_classes_; }
  std::vector<int> sample_shape() const override { return shape_; }
  Sample get(int index) const override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<int> shape_;
  int num_classes_;
  std::vector<Tensor> images_;
  std::vector<int> labels_;
};

// A train/test pair drawn from the same distribution.
struct DatasetPair {
  std::unique_ptr<Dataset> train;
  std::unique_ptr<Dataset> test;
};

}  // namespace antidote::data
