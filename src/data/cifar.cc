#include "data/cifar.h"

#include <array>
#include <filesystem>
#include <fstream>
#include <vector>

#include "base/error.h"

namespace antidote::data {

namespace {

constexpr int kImageBytes = 3 * 32 * 32;
constexpr std::array<float, 3> kMean = {0.4914f, 0.4822f, 0.4465f};
constexpr std::array<float, 3> kStd = {0.2470f, 0.2435f, 0.2616f};

// Reads one CIFAR binary file. `label_bytes` is 1 for CIFAR-10 and 2 for
// CIFAR-100 (coarse label then fine label; we keep the fine label).
void read_cifar_file(const std::string& path, int label_bytes,
                     std::vector<Tensor>& images, std::vector<int>& labels) {
  std::ifstream in(path, std::ios::binary);
  AD_CHECK(in.good()) << " cannot open " << path;
  const auto file_size = std::filesystem::file_size(path);
  const int record = label_bytes + kImageBytes;
  AD_CHECK_EQ(file_size % record, 0u) << " malformed CIFAR file " << path;
  const int64_t count = static_cast<int64_t>(file_size) / record;

  std::vector<unsigned char> buf(static_cast<size_t>(record));
  for (int64_t i = 0; i < count; ++i) {
    in.read(reinterpret_cast<char*>(buf.data()), record);
    AD_CHECK(in.good()) << " short read in " << path;
    const int label = buf[static_cast<size_t>(label_bytes - 1)];
    Tensor img({3, 32, 32});
    float* p = img.data();
    for (int c = 0; c < 3; ++c) {
      const float mean = kMean[static_cast<size_t>(c)];
      const float inv_std = 1.f / kStd[static_cast<size_t>(c)];
      const unsigned char* src =
          buf.data() + label_bytes + static_cast<size_t>(c) * 32 * 32;
      for (int j = 0; j < 32 * 32; ++j) {
        p[c * 32 * 32 + j] = (src[j] / 255.f - mean) * inv_std;
      }
    }
    images.push_back(std::move(img));
    labels.push_back(label);
  }
}

std::unique_ptr<Dataset> dataset_from(const std::string& name, int classes,
                                      std::vector<Tensor> images,
                                      std::vector<int> labels) {
  return std::make_unique<InMemoryDataset>(name, std::vector<int>{3, 32, 32},
                                           classes, std::move(images),
                                           std::move(labels));
}

}  // namespace

bool cifar10_available(const std::string& root) {
  namespace fs = std::filesystem;
  for (int i = 1; i <= 5; ++i) {
    if (!fs::exists(root + "/data_batch_" + std::to_string(i) + ".bin")) {
      return false;
    }
  }
  return fs::exists(root + "/test_batch.bin");
}

bool cifar100_available(const std::string& root) {
  namespace fs = std::filesystem;
  return fs::exists(root + "/train.bin") && fs::exists(root + "/test.bin");
}

DatasetPair load_cifar10(const std::string& root) {
  std::vector<Tensor> train_images, test_images;
  std::vector<int> train_labels, test_labels;
  for (int i = 1; i <= 5; ++i) {
    read_cifar_file(root + "/data_batch_" + std::to_string(i) + ".bin", 1,
                    train_images, train_labels);
  }
  read_cifar_file(root + "/test_batch.bin", 1, test_images, test_labels);
  DatasetPair pair;
  pair.train = dataset_from("cifar10/train", 10, std::move(train_images),
                            std::move(train_labels));
  pair.test = dataset_from("cifar10/test", 10, std::move(test_images),
                           std::move(test_labels));
  return pair;
}

DatasetPair load_cifar100(const std::string& root) {
  std::vector<Tensor> train_images, test_images;
  std::vector<int> train_labels, test_labels;
  read_cifar_file(root + "/train.bin", 2, train_images, train_labels);
  read_cifar_file(root + "/test.bin", 2, test_images, test_labels);
  DatasetPair pair;
  pair.train = dataset_from("cifar100/train", 100, std::move(train_images),
                            std::move(train_labels));
  pair.test = dataset_from("cifar100/test", 100, std::move(test_images),
                           std::move(test_labels));
  return pair;
}

}  // namespace antidote::data
