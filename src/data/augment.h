// Training-time augmentation matching the paper: 4-pixel zero padding with
// random crop, plus random horizontal flip.
#pragma once

#include "base/rng.h"
#include "tensor/tensor.h"

namespace antidote::data {

struct AugmentConfig {
  int pad = 4;        // zero padding before the random crop; 0 disables
  bool hflip = true;  // random horizontal flip with p = 0.5
};

// Returns the augmented copy of a CHW image.
Tensor augment(const Tensor& chw, const AugmentConfig& cfg, Rng& rng);

// Deterministic pieces, exposed for unit testing.
Tensor pad_crop(const Tensor& chw, int pad, int offset_y, int offset_x);
Tensor hflip(const Tensor& chw);

}  // namespace antidote::data
