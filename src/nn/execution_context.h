// ExecutionContext — per-worker state for the allocation-free inference
// hot path.
//
// Ownership rules (see docs/architecture.md):
//   - One ExecutionContext per thread that runs forward passes. NEVER
//     share a context between threads: the workspace is an unsynchronized
//     bump arena.
//   - The driver (serving worker, bench loop, evaluator) calls
//     begin_pass() before each top-level Module::forward(x, ctx). That
//     rewinds the arena, which invalidates every tensor the PREVIOUS pass
//     borrowed from it — copy results out before starting the next pass.
//   - Context-carrying forwards are inference-only: layers skip the
//     activation caching backward() needs, and their outputs live in the
//     arena. Training keeps using the plain forward(x) overload, whose
//     heap semantics are unchanged.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace antidote::nn {

class ExecutionContext {
 public:
  ExecutionContext() = default;
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  Workspace& workspace() { return workspace_; }

  // Starts a new inference pass: rewinds the arena (invalidating all
  // tensors handed out by the previous pass on this context).
  void begin_pass() {
    workspace_.reset();
    ++passes_;
  }
  int64_t passes() const { return passes_; }

  // Uninitialized tensor borrowed from the arena; valid until the next
  // begin_pass(). Performs no heap allocation once the arena is warm.
  Tensor alloc(Shape shape) {
    int64_t n = 1;
    for (int d : shape) n *= d;
    return Tensor::borrow(workspace_.alloc_floats(n), shape);
  }

 private:
  Workspace workspace_;
  int64_t passes_ = 0;
};

}  // namespace antidote::nn
