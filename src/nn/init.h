// Weight initialization. Convolutions use Kaiming/He initialization (the
// standard for ReLU CNNs like VGG/ResNet); linear layers use Xavier.
#pragma once

#include "base/rng.h"
#include "nn/module.h"

namespace antidote::nn {

// N(0, sqrt(2 / fan_in)); fan_in inferred from the tensor shape:
// conv [O,I,K,K] -> I*K*K, linear [O,I] -> I.
void kaiming_normal(Tensor& weight, Rng& rng);

// U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& weight, Rng& rng);

// Applies the standard scheme to every parameter of a module tree:
// Conv2d/Linear weights get Kaiming normal, biases zero, BatchNorm is left
// at its (gamma=1, beta=0) construction values.
void init_module(Module& m, Rng& rng);

}  // namespace antidote::nn
