// Int8 numeric regime kernels: per-output-channel symmetric weight
// quantization, per-tensor dynamic activation quantization, and the
// u8xs8 -> s32 blocked micro-kernel with dequantization folded into the
// store (the int32 accumulators never round-trip through memory).
//
// Quantization scheme
//   weights      qw[r][i] = clamp(lrintf(w[r][i] / sw[r]), -127, 127),
//                sw[r] = maxabs(row r) / 127   (per output channel)
//   activations  qa[i] = clamp(lrintf(a[i] * (127/maxabs)), -127, 127),
//                sa = maxabs / 127             (per tensor, dynamic),
//                stored biased as u8 = qa + 128 so the AVX-512 VNNI
//                `vpdpbusd` (u8 x s8) instruction applies directly.
//   accumulator  dp[r][j] = sum_k (qa[k][j]+128) * qw[r][k]
//                         = acc[r][j] + 128 * wsum[r]
//                where wsum[r] = sum_k qw[r][k] is precomputed at weight
//                quantization / panel-pack time. Weight rows are ZERO
//                padded to k4 = align4(k) bytes, so the pad bytes add
//                nothing to either dp or wsum regardless of the (biased,
//                = 128) pad activation bytes.
//   dequant      y[r][j] = float(dp - 128*wsum[r]) * (sa * sw[r])
//
// BITWISE CONTRACT. The accumulator is exact integer math (|acc| <=
// k * 255 * 127 < 2^31 for every k this runtime produces), and the
// dequant expression performs the same two IEEE-754 roundings in every
// backend (cvtepi32_ps and the scalar (float) cast both round to
// nearest-even). Scalar, AVX2 (exact vpdpbusd emulation, see
// base/simd.h) and AVX-512 VNNI therefore produce bitwise identical f32
// output; the scalar references here are the parity baselines the int8
// parity test memcmps against, mirroring the f32 lane layer's contract.
//
// ACTIVATION LAYOUT. quantize_activations() writes the VNNI operand
// layout directly: [k4/4][n][4] — for quad kq and column j the four
// consecutive bytes at qb[(kq*n + j)*4] are rows 4kq..4kq+3 of column j
// (pad rows beyond k hold the bias byte 128). One 64/32-byte vector load
// then covers 16/8 adjacent columns of one k-quad.
//
// The AVX-512 VNNI backend is selected at RUNTIME (function-level target
// attributes + __builtin_cpu_supports) inside the AVX2-compiled TU, so
// non-AVX-512 hosts run the same binary safely.
#pragma once

#include <cstdint>

namespace antidote::nn {

// ISA the int8 igemm dispatch resolves to at runtime:
// "avx512-vnni" | "avx2" | "scalar".
const char* int8_isa_name();
// Hardware AVX-512 VNNI availability (reported even in SIMD=OFF builds,
// where the dispatch itself stays scalar).
bool cpu_supports_vnni();

// Rows padded to a multiple of 4 bytes (one vpdpbusd quad).
constexpr int64_t int8_align4(int64_t k) { return (k + 3) & ~int64_t{3}; }

// Per-row (= per output channel) symmetric quantization of the [rows x k]
// f32 matrix `w` into int8 rows of `row_stride` >= int8_align4(k) bytes
// (tail zero-padded). Writes scale[r] = maxabs(row)/127 (1.0 for all-zero
// rows) and wsum[r] = sum of the row's int8 bytes. Deterministic scalar
// code — identical output in SIMD and scalar builds.
void quantize_weights_rowwise(const float* w, int rows, int64_t k,
                              int8_t* q, int64_t row_stride, float* scale,
                              int32_t* wsum);

// Per-tensor dynamic quantization of the contiguous [k x n] f32 matrix
// `b` into the biased-u8 VNNI layout described above (qb must hold
// int8_align4(k) * n bytes). Returns the activation scale sa = maxabs/127
// (0 when the tensor is all zero — the accumulator is then 0 as well).
float quantize_activations(const float* b, int64_t k, int64_t n,
                           uint8_t* qb);
float quantize_activations_scalar(const float* b, int64_t k, int64_t n,
                                  uint8_t* qb);

// C[m x n] = dequant((u8 B-layout qb) x (s8 row-major qw)^T): for each of
// the m weight rows, y[mi*ldy + j] = float(acc - 128*wsum[mi]) *
// (act_scale * wscale[mi]). k4 must be a multiple of 4; w_stride is the
// int8 weight row stride (>= k4).
void igemm_u8s8_dequant(int m, int64_t n, int64_t k4, const int8_t* qw,
                        int64_t w_stride, const uint8_t* qb,
                        const int32_t* wsum, const float* wscale,
                        float act_scale, float* y, int64_t ldy);
void igemm_u8s8_dequant_scalar(int m, int64_t n, int64_t k4,
                               const int8_t* qw, int64_t w_stride,
                               const uint8_t* qb, const int32_t* wsum,
                               const float* wscale, float act_scale,
                               float* y, int64_t ldy);

}  // namespace antidote::nn
