#include "nn/linear.h"

#include "base/error.h"
#include "tensor/gemm.h"

namespace antidote::nn {

Linear::Linear(int in_features, int out_features, bool bias)
    : in_f_(in_features),
      out_f_(out_features),
      has_bias_(bias),
      weight_("weight", Tensor({out_features, in_features})),
      bias_("bias", Tensor({out_features}), /*weight_decay=*/false) {
  AD_CHECK_GT(in_features, 0);
  AD_CHECK_GT(out_features, 0);
}

std::vector<Parameter*> Linear::parameters() {
  std::vector<Parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

Tensor Linear::forward(const Tensor& x) { return forward_impl(x, nullptr); }

Tensor Linear::forward(const Tensor& x, ExecutionContext& ctx) {
  if (is_training()) return forward_impl(x, nullptr);
  return forward_impl(x, &ctx);
}

Tensor Linear::forward_impl(const Tensor& x, ExecutionContext* ctx) {
  AD_CHECK_EQ(x.ndim(), 2) << " Linear expects [N, F], got " << x.shape_str();
  AD_CHECK_EQ(x.dim(1), in_f_);
  const int n = x.dim(0);
  Tensor y = ctx != nullptr ? ctx->alloc({n, out_f_}) : Tensor({n, out_f_});
  // y[N, out] = x[N, in] * W[out, in]^T
  gemm_nt(n, out_f_, in_f_, 1.f, x.data(), weight_.value.data(), 0.f,
          y.data());
  if (has_bias_) {
    const float* bp = bias_.value.data();
    for (int i = 0; i < n; ++i) {
      float* row = y.data() + static_cast<int64_t>(i) * out_f_;
      for (int j = 0; j < out_f_; ++j) row[j] += bp[j];
    }
  }
  last_macs_ = static_cast<int64_t>(n) * out_f_ * in_f_;
  cached_input_ = ctx != nullptr ? Tensor() : x;
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  AD_CHECK(!cached_input_.empty()) << " Linear backward before forward";
  const Tensor& x = cached_input_;
  const int n = x.dim(0);
  AD_CHECK_EQ(grad_out.dim(0), n);
  AD_CHECK_EQ(grad_out.dim(1), out_f_);

  // dW[out, in] += dY[N, out]^T * x[N, in]
  gemm_tn(out_f_, in_f_, n, 1.f, grad_out.data(), x.data(), 1.f,
          weight_.grad.data());
  if (has_bias_) {
    float* dbp = bias_.grad.data();
    for (int i = 0; i < n; ++i) {
      const float* row = grad_out.data() + static_cast<int64_t>(i) * out_f_;
      for (int j = 0; j < out_f_; ++j) dbp[j] += row[j];
    }
  }
  // dX[N, in] = dY[N, out] * W[out, in]
  Tensor dx({n, in_f_});
  gemm_nn(n, in_f_, out_f_, 1.f, grad_out.data(), weight_.value.data(), 0.f,
          dx.data());
  return dx;
}

}  // namespace antidote::nn
