// Batch normalization over the channel dimension of NCHW tensors.
//
// Training mode normalizes with batch statistics and maintains exponential
// running estimates (PyTorch convention: biased variance for normalization,
// unbiased for the running estimate). Eval mode normalizes with the running
// estimates. Running statistics are persisted by visit_state so checkpoints
// restore inference behaviour exactly.
#pragma once

#include "nn/module.h"

namespace antidote::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  Tensor forward(const Tensor& x) override;
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  void visit_state(const std::string& prefix, const StateVisitor& fn) override;
  std::string type_name() const override { return "BatchNorm2d"; }

  int channels() const { return channels_; }
  float eps() const { return eps_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  int channels_;
  float eps_, momentum_;
  Parameter gamma_;  // scale, init 1
  Parameter beta_;   // shift, init 0
  Tensor running_mean_;
  Tensor running_var_;

  // Cached for backward.
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // [C]
  bool cached_training_ = false;
};

}  // namespace antidote::nn
