#include "nn/batchnorm.h"

#include <cmath>

#include "base/error.h"

namespace antidote::nn {

BatchNorm2d::BatchNorm2d(int channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_("gamma", Tensor::ones({channels}), /*weight_decay=*/false),
      beta_("beta", Tensor({channels}), /*weight_decay=*/false),
      running_mean_({channels}),
      running_var_(Tensor::ones({channels})) {
  AD_CHECK_GT(channels, 0);
}

std::vector<Parameter*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

void BatchNorm2d::visit_state(const std::string& prefix,
                              const StateVisitor& fn) {
  Module::visit_state(prefix, fn);
  fn(prefix + "running_mean", running_mean_);
  fn(prefix + "running_var", running_var_);
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  AD_CHECK_EQ(x.ndim(), 4) << " BatchNorm2d expects NCHW";
  AD_CHECK_EQ(x.dim(1), channels_);
  const int n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
  const int64_t hw = static_cast<int64_t>(h) * w;
  const int64_t m = static_cast<int64_t>(n) * hw;  // samples per channel

  Tensor y(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_ = Tensor({c});
  cached_training_ = is_training();

  const float* gp = gamma_.value.data();
  const float* bp = beta_.value.data();

  for (int ch = 0; ch < c; ++ch) {
    float mean_v, var_v;
    if (is_training()) {
      double acc = 0.0;
      for (int b = 0; b < n; ++b) {
        const float* plane = x.data() + (static_cast<int64_t>(b) * c + ch) * hw;
        for (int64_t j = 0; j < hw; ++j) acc += plane[j];
      }
      mean_v = static_cast<float>(acc / static_cast<double>(m));
      double vacc = 0.0;
      for (int b = 0; b < n; ++b) {
        const float* plane = x.data() + (static_cast<int64_t>(b) * c + ch) * hw;
        for (int64_t j = 0; j < hw; ++j) {
          const double d = plane[j] - mean_v;
          vacc += d * d;
        }
      }
      var_v = static_cast<float>(vacc / static_cast<double>(m));  // biased
      // Unbiased estimate for the running buffer (PyTorch convention).
      const float unbiased =
          m > 1 ? static_cast<float>(vacc / static_cast<double>(m - 1)) : var_v;
      running_mean_[ch] =
          (1.f - momentum_) * running_mean_[ch] + momentum_ * mean_v;
      running_var_[ch] =
          (1.f - momentum_) * running_var_[ch] + momentum_ * unbiased;
    } else {
      mean_v = running_mean_[ch];
      var_v = running_var_[ch];
    }
    const float inv_std = 1.f / std::sqrt(var_v + eps_);
    cached_inv_std_[ch] = inv_std;
    for (int b = 0; b < n; ++b) {
      const int64_t off = (static_cast<int64_t>(b) * c + ch) * hw;
      const float* px = x.data() + off;
      float* pxh = cached_xhat_.data() + off;
      float* py = y.data() + off;
      for (int64_t j = 0; j < hw; ++j) {
        const float xh = (px[j] - mean_v) * inv_std;
        pxh[j] = xh;
        py[j] = gp[ch] * xh + bp[ch];
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::forward(const Tensor& x, ExecutionContext& ctx) {
  if (is_training()) return forward(x);
  AD_CHECK_EQ(x.ndim(), 4) << " BatchNorm2d expects NCHW";
  AD_CHECK_EQ(x.dim(1), channels_);
  const int n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
  const int64_t hw = static_cast<int64_t>(h) * w;

  // Eval-mode normalization with running statistics, written straight into
  // the arena; no backward cache (stale caches are cleared so a misuse of
  // backward() after a ctx forward fails loudly, as in Conv2d/Linear).
  // The arithmetic matches the plain eval path expression-for-expression,
  // so outputs are bitwise identical.
  cached_xhat_ = Tensor();
  cached_inv_std_ = Tensor();
  Tensor y = ctx.alloc(x.shape());
  const float* gp = gamma_.value.data();
  const float* bp = beta_.value.data();
  for (int ch = 0; ch < c; ++ch) {
    const float mean_v = running_mean_[ch];
    const float inv_std = 1.f / std::sqrt(running_var_[ch] + eps_);
    for (int b = 0; b < n; ++b) {
      const int64_t off = (static_cast<int64_t>(b) * c + ch) * hw;
      const float* px = x.data() + off;
      float* py = y.data() + off;
      for (int64_t j = 0; j < hw; ++j) {
        const float xh = (px[j] - mean_v) * inv_std;
        py[j] = gp[ch] * xh + bp[ch];
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  AD_CHECK(!cached_xhat_.empty()) << " BatchNorm2d backward before forward";
  AD_CHECK(grad_out.same_shape(cached_xhat_));
  const int n = grad_out.dim(0), c = channels_, h = grad_out.dim(2),
            w = grad_out.dim(3);
  const int64_t hw = static_cast<int64_t>(h) * w;
  const int64_t m = static_cast<int64_t>(n) * hw;

  Tensor dx(grad_out.shape());
  float* dgp = gamma_.grad.data();
  float* dbp = beta_.grad.data();
  const float* gp = gamma_.value.data();

  for (int ch = 0; ch < c; ++ch) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int b = 0; b < n; ++b) {
      const int64_t off = (static_cast<int64_t>(b) * c + ch) * hw;
      const float* pdy = grad_out.data() + off;
      const float* pxh = cached_xhat_.data() + off;
      for (int64_t j = 0; j < hw; ++j) {
        sum_dy += pdy[j];
        sum_dy_xhat += double(pdy[j]) * pxh[j];
      }
    }
    dgp[ch] += static_cast<float>(sum_dy_xhat);
    dbp[ch] += static_cast<float>(sum_dy);

    const float inv_std = cached_inv_std_[ch];
    if (cached_training_) {
      const float k1 = gp[ch] * inv_std / static_cast<float>(m);
      const float mean_dy = static_cast<float>(sum_dy);
      const float mean_dy_xhat = static_cast<float>(sum_dy_xhat);
      for (int b = 0; b < n; ++b) {
        const int64_t off = (static_cast<int64_t>(b) * c + ch) * hw;
        const float* pdy = grad_out.data() + off;
        const float* pxh = cached_xhat_.data() + off;
        float* pdx = dx.data() + off;
        for (int64_t j = 0; j < hw; ++j) {
          pdx[j] = k1 * (static_cast<float>(m) * pdy[j] - mean_dy -
                         pxh[j] * mean_dy_xhat);
        }
      }
    } else {
      // Eval mode: statistics are constants.
      const float k = gp[ch] * inv_std;
      for (int b = 0; b < n; ++b) {
        const int64_t off = (static_cast<int64_t>(b) * c + ch) * hw;
        const float* pdy = grad_out.data() + off;
        float* pdx = dx.data() + off;
        for (int64_t j = 0; j < hw; ++j) pdx[j] = k * pdy[j];
      }
    }
  }
  return dx;
}

}  // namespace antidote::nn
