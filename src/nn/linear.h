// Fully connected layer: y = x W^T + b with x of shape [N, in_features].
#pragma once

#include "nn/module.h"

namespace antidote::nn {

class Linear : public Module {
 public:
  Linear(int in_features, int out_features, bool bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string type_name() const override { return "Linear"; }
  int64_t last_macs() const override { return last_macs_; }

  int in_features() const { return in_f_; }
  int out_features() const { return out_f_; }
  bool has_bias() const { return has_bias_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

  // Records an execution performed outside the module (by the
  // InferencePlan executor): keeps last_macs() consistent and clears the
  // backward cache so a stale backward() fails loudly.
  void note_external_execution(int64_t macs) {
    last_macs_ = macs;
    cached_input_ = Tensor();
  }

 private:
  Tensor forward_impl(const Tensor& x, ExecutionContext* ctx);

  int in_f_, out_f_;
  bool has_bias_;
  Parameter weight_;  // [out_features, in_features]
  Parameter bias_;    // [out_features]
  Tensor cached_input_;
  int64_t last_macs_ = 0;
};

}  // namespace antidote::nn
