#include "nn/layers.h"

#include "base/error.h"
#include "tensor/ops.h"

namespace antidote::nn {

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  return ops::relu(x);
}

Tensor ReLU::forward(const Tensor& x, ExecutionContext& ctx) {
  if (is_training()) return forward(x);
  Tensor y = ctx.alloc(x.shape());
  const float* px = x.data();
  float* py = y.data();
  for (int64_t i = 0; i < x.size(); ++i) py[i] = px[i] > 0.f ? px[i] : 0.f;
  cached_input_ = Tensor();
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  AD_CHECK(!cached_input_.empty()) << " ReLU backward before forward";
  return ops::relu_backward(grad_out, cached_input_);
}

Tensor Flatten::forward(const Tensor& x) {
  AD_CHECK_GE(x.ndim(), 2);
  cached_shape_ = x.shape();
  return x.reshape({x.dim(0), -1});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  AD_CHECK(!cached_shape_.empty()) << " Flatten backward before forward";
  return grad_out.reshape(cached_shape_);
}

Dropout::Dropout(float p, uint64_t seed) : p_(p), rng_(seed) { set_p(p); }

void Dropout::set_p(float p) {
  AD_CHECK(p >= 0.f && p < 1.f) << " dropout p=" << p;
  p_ = p;
}

Tensor Dropout::forward(const Tensor& x) {
  if (!is_training() || p_ == 0.f) {
    cached_mask_ = Tensor();
    return x;
  }
  const float scale = 1.f / (1.f - p_);
  cached_mask_ = Tensor(x.shape());
  float* pm = cached_mask_.data();
  for (int64_t i = 0; i < cached_mask_.size(); ++i) {
    pm[i] = rng_.bernoulli(p_) ? 0.f : scale;
  }
  return ops::mul(x, cached_mask_);
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (cached_mask_.empty()) return grad_out;
  return ops::mul(grad_out, cached_mask_);
}

}  // namespace antidote::nn
