// Model checkpointing: saves/loads every persistent tensor visited by
// Module::visit_state (parameter values and BatchNorm running statistics)
// keyed by hierarchical name.
#pragma once

#include <map>
#include <string>

#include "nn/module.h"

namespace antidote::nn {

// Writes all persistent state of `m` to `path`.
void save_checkpoint(Module& m, const std::string& path);

// Restores state saved by save_checkpoint. Every tensor in the module must
// be present in the file with a matching shape; extra entries in the file
// are an error (the checkpoint belongs to a different architecture).
void load_checkpoint(Module& m, const std::string& path);

// In-memory equivalents, used to branch several experiments off one
// trained model without touching disk.
std::map<std::string, Tensor> snapshot_state(Module& m);
void restore_state(Module& m, const std::map<std::string, Tensor>& snapshot);

}  // namespace antidote::nn
