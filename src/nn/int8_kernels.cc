// Int8 kernels: SIMD TU (compiled with -mavx2 -ffp-contract=off when
// ANTIDOTE_SIMD=ON; see CMakeLists.txt). The AVX-512 VNNI backend lives
// behind function-level target attributes + a __builtin_cpu_supports
// runtime check so the TU itself never needs -mavx512* flags and the
// binary stays safe on AVX2-only hosts.
#include "nn/int8_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/simd.h"

namespace antidote::nn {

namespace {

// clamp(lrintf(v * inv), -127, 127) — THE quantization expression; every
// backend (including _mm256_cvtps_epi32, which rounds to nearest-even
// exactly like lrintf under the default rounding mode) must match it.
inline int8_t quantize_one(float v, float inv) {
  long q = lrintf(v * inv);
  if (q > 127) q = 127;
  if (q < -127) q = -127;
  return static_cast<int8_t>(q);
}

bool vnni_ok() {
  static const bool ok = cpu_supports_vnni();
  return ok;
}

}  // namespace

bool cpu_supports_vnni() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512vnni") != 0;
#else
  return false;
#endif
}

const char* int8_isa_name() {
#if defined(ANTIDOTE_SIMD_I8)
  return vnni_ok() ? "avx512-vnni" : "avx2";
#else
  return "scalar";
#endif
}

void quantize_weights_rowwise(const float* w, int rows, int64_t k,
                              int8_t* q, int64_t row_stride, float* scale,
                              int32_t* wsum) {
  for (int r = 0; r < rows; ++r) {
    const float* wr = w + static_cast<int64_t>(r) * k;
    float maxabs = 0.f;
    for (int64_t i = 0; i < k; ++i)
      maxabs = std::max(maxabs, std::fabs(wr[i]));
    // All-zero rows quantize to all-zero bytes; scale 1.0 keeps the
    // dequant expression finite.
    const float inv = maxabs > 0.f ? 127.f / maxabs : 0.f;
    scale[r] = maxabs > 0.f ? maxabs / 127.f : 1.f;
    int8_t* qr = q + static_cast<int64_t>(r) * row_stride;
    int32_t sum = 0;
    for (int64_t i = 0; i < k; ++i) {
      qr[i] = quantize_one(wr[i], inv);
      sum += qr[i];
    }
    for (int64_t i = k; i < row_stride; ++i) qr[i] = 0;
    wsum[r] = sum;
  }
}

ANTIDOTE_NO_VECTORIZE
float quantize_activations_scalar(const float* b, int64_t k, int64_t n,
                                  uint8_t* qb) {
  const int64_t quads = int8_align4(k) / 4;
  float maxabs = 0.f;
  const int64_t total = k * n;
  for (int64_t i = 0; i < total; ++i) {
    const float a = std::fabs(b[i]);
    if (a > maxabs) maxabs = a;
  }
  const float inv = maxabs > 0.f ? 127.f / maxabs : 0.f;
  for (int64_t kq = 0; kq < quads; ++kq) {
    for (int64_t j = 0; j < n; ++j) {
      uint8_t* out = qb + (kq * n + j) * 4;
      for (int t = 0; t < 4; ++t) {
        const int64_t r = kq * 4 + t;
        out[t] = r < k ? static_cast<uint8_t>(quantize_one(b[r * n + j], inv) +
                                              128)
                       : static_cast<uint8_t>(128);
      }
    }
  }
  return maxabs / 127.f;
}

float quantize_activations(const float* b, int64_t k, int64_t n,
                           uint8_t* qb) {
#if defined(ANTIDOTE_SIMD_I8)
  const int64_t quads = int8_align4(k) / 4;
  // maxabs reduction. max() is associative and commutative and fabs is
  // exact, so the vector reduction order cannot change the result — the
  // scale is bitwise identical to the scalar pass.
  const int64_t total = k * n;
  const __m256 signmask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 vmax = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= total; i += 8)
    vmax = _mm256_max_ps(vmax,
                         _mm256_and_ps(_mm256_loadu_ps(b + i), signmask));
  float lanes[8];
  _mm256_storeu_ps(lanes, vmax);
  float maxabs = 0.f;
  for (float l : lanes) maxabs = std::max(maxabs, l);
  for (; i < total; ++i) maxabs = std::max(maxabs, std::fabs(b[i]));

  const float inv = maxabs > 0.f ? 127.f / maxabs : 0.f;
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i vlo = _mm256_set1_epi32(-127);
  const __m256i vhi = _mm256_set1_epi32(127);
  const __m256i v128 = _mm256_set1_epi32(128);
  for (int64_t kq = 0; kq < quads; ++kq) {
    uint8_t* outrow = qb + kq * n * 4;
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      // Four k-rows of 8 columns, packed byte-interleaved: the 32-bit
      // lane for column j becomes q0 | q1<<8 | q2<<16 | q3<<24 (each
      // biased q fits a byte, so the shifts cannot spill).
      __m256i packed = _mm256_setzero_si256();
      for (int t = 0; t < 4; ++t) {
        const int64_t r = kq * 4 + t;
        __m256i qt;
        if (r < k) {
          const __m256 v =
              _mm256_mul_ps(_mm256_loadu_ps(b + r * n + j), vinv);
          qt = _mm256_cvtps_epi32(v);
          qt = _mm256_max_epi32(vlo, _mm256_min_epi32(vhi, qt));
          qt = _mm256_add_epi32(qt, v128);
        } else {
          qt = v128;
        }
        packed = _mm256_or_si256(packed, _mm256_slli_epi32(qt, 8 * t));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(outrow + j * 4),
                          packed);
    }
    for (; j < n; ++j) {
      uint8_t* out = outrow + j * 4;
      for (int t = 0; t < 4; ++t) {
        const int64_t r = kq * 4 + t;
        out[t] = r < k ? static_cast<uint8_t>(quantize_one(b[r * n + j], inv) +
                                              128)
                       : static_cast<uint8_t>(128);
      }
    }
  }
  return maxabs / 127.f;
#else
  return quantize_activations_scalar(b, k, n, qb);
#endif
}

ANTIDOTE_NO_VECTORIZE
void igemm_u8s8_dequant_scalar(int m, int64_t n, int64_t k4,
                               const int8_t* qw, int64_t w_stride,
                               const uint8_t* qb, const int32_t* wsum,
                               const float* wscale, float act_scale,
                               float* y, int64_t ldy) {
  const int64_t quads = k4 / 4;
  for (int mi = 0; mi < m; ++mi) {
    const int8_t* wr = qw + mi * w_stride;
    const int32_t bias = 128 * wsum[mi];
    const float rs = act_scale * wscale[mi];
    float* yr = y + mi * ldy;
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t kq = 0; kq < quads; ++kq) {
        const uint8_t* a = qb + (kq * n + j) * 4;
        const int8_t* ww = wr + kq * 4;
        acc += static_cast<int32_t>(a[0]) * ww[0] +
               static_cast<int32_t>(a[1]) * ww[1] +
               static_cast<int32_t>(a[2]) * ww[2] +
               static_cast<int32_t>(a[3]) * ww[3];
      }
      yr[j] = static_cast<float>(acc - bias) * rs;
    }
  }
}

#if defined(ANTIDOTE_SIMD_I8)

namespace {

// Columns [j0, j1) of one weight row, 8/16 per iteration via the exact
// vpdpbusd emulation; ragged column tail falls back to the identical
// scalar integer expression.
void igemm_row_avx2(const int8_t* wr, int64_t n, int64_t quads,
                    const uint8_t* qb, int32_t bias, float rs, float* yr,
                    int64_t j0, int64_t j1) {
  const __m256i vbias = _mm256_set1_epi32(bias);
  const __m256 vrs = _mm256_set1_ps(rs);
  int64_t j = j0;
  for (; j + 16 <= j1; j += 16) {
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (int64_t kq = 0; kq < quads; ++kq) {
      int32_t w4;
      std::memcpy(&w4, wr + kq * 4, 4);
      const __m256i vw = _mm256_set1_epi32(w4);
      const uint8_t* a = qb + (kq * n + j) * 4;
      acc0 = simd::dpbusd_epi32(
          acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)),
          vw);
      acc1 = simd::dpbusd_epi32(
          acc1,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 32)),
          vw);
    }
    _mm256_storeu_ps(
        yr + j,
        _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_sub_epi32(acc0, vbias)),
                      vrs));
    _mm256_storeu_ps(
        yr + j + 8,
        _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_sub_epi32(acc1, vbias)),
                      vrs));
  }
  for (; j + 8 <= j1; j += 8) {
    __m256i acc = _mm256_setzero_si256();
    for (int64_t kq = 0; kq < quads; ++kq) {
      int32_t w4;
      std::memcpy(&w4, wr + kq * 4, 4);
      acc = simd::dpbusd_epi32(
          acc,
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(qb + (kq * n + j) * 4)),
          _mm256_set1_epi32(w4));
    }
    _mm256_storeu_ps(
        yr + j,
        _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_sub_epi32(acc, vbias)),
                      vrs));
  }
  for (; j < j1; ++j) {
    int32_t acc = 0;
    for (int64_t kq = 0; kq < quads; ++kq) {
      const uint8_t* a = qb + (kq * n + j) * 4;
      const int8_t* ww = wr + kq * 4;
      acc += static_cast<int32_t>(a[0]) * ww[0] +
             static_cast<int32_t>(a[1]) * ww[1] +
             static_cast<int32_t>(a[2]) * ww[2] +
             static_cast<int32_t>(a[3]) * ww[3];
    }
    yr[j] = static_cast<float>(acc - bias) * rs;
  }
}

#if defined(__GNUC__) || defined(__clang__)
#define ANTIDOTE_HAVE_VNNI_KERNEL 1
// Runtime-dispatched AVX-512 VNNI backend. The target attribute scopes
// the ISA to this function alone (the TU is compiled with plain -mavx2),
// and callers only reach it after __builtin_cpu_supports("avx512vnni").
__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
igemm_row_vnni(const int8_t* wr, int64_t n, int64_t quads,
               const uint8_t* qb, int32_t bias, float rs, float* yr) {
  const __m512i vbias = _mm512_set1_epi32(bias);
  const __m512 vrs = _mm512_set1_ps(rs);
  int64_t j = 0;
  for (; j + 64 <= n; j += 64) {
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    __m512i acc2 = _mm512_setzero_si512();
    __m512i acc3 = _mm512_setzero_si512();
    for (int64_t kq = 0; kq < quads; ++kq) {
      int32_t w4;
      std::memcpy(&w4, wr + kq * 4, 4);
      const __m512i vw = _mm512_set1_epi32(w4);
      const uint8_t* a = qb + (kq * n + j) * 4;
      acc0 = _mm512_dpbusd_epi32(acc0, _mm512_loadu_si512(a), vw);
      acc1 = _mm512_dpbusd_epi32(acc1, _mm512_loadu_si512(a + 64), vw);
      acc2 = _mm512_dpbusd_epi32(acc2, _mm512_loadu_si512(a + 128), vw);
      acc3 = _mm512_dpbusd_epi32(acc3, _mm512_loadu_si512(a + 192), vw);
    }
    _mm512_storeu_ps(
        yr + j,
        _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_sub_epi32(acc0, vbias)),
                      vrs));
    _mm512_storeu_ps(
        yr + j + 16,
        _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_sub_epi32(acc1, vbias)),
                      vrs));
    _mm512_storeu_ps(
        yr + j + 32,
        _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_sub_epi32(acc2, vbias)),
                      vrs));
    _mm512_storeu_ps(
        yr + j + 48,
        _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_sub_epi32(acc3, vbias)),
                      vrs));
  }
  for (; j + 16 <= n; j += 16) {
    __m512i acc = _mm512_setzero_si512();
    for (int64_t kq = 0; kq < quads; ++kq) {
      int32_t w4;
      std::memcpy(&w4, wr + kq * 4, 4);
      acc = _mm512_dpbusd_epi32(acc,
                                _mm512_loadu_si512(qb + (kq * n + j) * 4),
                                _mm512_set1_epi32(w4));
    }
    _mm512_storeu_ps(
        yr + j,
        _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_sub_epi32(acc, vbias)),
                      vrs));
  }
  if (j < n) igemm_row_avx2(wr, n, quads, qb, bias, rs, yr, j, n);
}
#endif  // __GNUC__ || __clang__

}  // namespace

#endif  // ANTIDOTE_SIMD_I8

void igemm_u8s8_dequant(int m, int64_t n, int64_t k4, const int8_t* qw,
                        int64_t w_stride, const uint8_t* qb,
                        const int32_t* wsum, const float* wscale,
                        float act_scale, float* y, int64_t ldy) {
#if defined(ANTIDOTE_SIMD_I8)
  const int64_t quads = k4 / 4;
#if defined(ANTIDOTE_HAVE_VNNI_KERNEL)
  if (vnni_ok()) {
    for (int mi = 0; mi < m; ++mi) {
      igemm_row_vnni(qw + mi * w_stride, n, quads, qb, 128 * wsum[mi],
                     act_scale * wscale[mi], y + mi * ldy);
    }
    return;
  }
#endif
  for (int mi = 0; mi < m; ++mi) {
    igemm_row_avx2(qw + mi * w_stride, n, quads, qb, 128 * wsum[mi],
                   act_scale * wscale[mi], y + mi * ldy, 0, n);
  }
#else
  igemm_u8s8_dequant_scalar(m, n, k4, qw, w_stride, qb, wsum, wscale,
                            act_scale, y, ldy);
#endif
}

}  // namespace antidote::nn
