#include "nn/init.h"

#include <cmath>

#include "base/error.h"

namespace antidote::nn {

namespace {
int64_t fan_in_of(const Tensor& weight) {
  AD_CHECK_GE(weight.ndim(), 2);
  int64_t fan = 1;
  for (int i = 1; i < weight.ndim(); ++i) fan *= weight.dim(i);
  return fan;
}
}  // namespace

void kaiming_normal(Tensor& weight, Rng& rng) {
  const double std = std::sqrt(2.0 / static_cast<double>(fan_in_of(weight)));
  float* p = weight.data();
  for (int64_t i = 0; i < weight.size(); ++i) {
    p[i] = static_cast<float>(rng.normal(0.0, std));
  }
}

void xavier_uniform(Tensor& weight, Rng& rng) {
  const int64_t fan_in = fan_in_of(weight);
  const int64_t fan_out = weight.dim(0);
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  float* p = weight.data();
  for (int64_t i = 0; i < weight.size(); ++i) {
    p[i] = rng.uniform_float(static_cast<float>(-a), static_cast<float>(a));
  }
}

void init_module(Module& m, Rng& rng) {
  for (Parameter* p : m.parameters()) {
    if (p->name == "weight" && p->value.ndim() >= 2) {
      kaiming_normal(p->value, rng);
    } else if (p->name == "bias" || p->name == "beta") {
      p->value.zero();
    } else if (p->name == "gamma") {
      p->value.fill(1.f);
    }
  }
}

}  // namespace antidote::nn
