#include "nn/pooling.h"

#include <limits>

#include "base/error.h"
#include "tensor/ops.h"

namespace antidote::nn {

void max_pool_forward_into(const float* x, int n, int c, int h, int w, int k,
                           int stride, float* y) {
  const int oh = (h - k) / stride + 1;
  const int ow = (w - k) / stride + 1;
  int64_t out_idx = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane = x + (static_cast<int64_t>(b) * c + ch) * h * w;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          for (int ky = 0; ky < k; ++ky) {
            const int iy = oy * stride + ky;
            for (int kx = 0; kx < k; ++kx) {
              const int ix = ox * stride + kx;
              const float v = plane[static_cast<int64_t>(iy) * w + ix];
              if (v > best) best = v;
            }
          }
          y[out_idx] = best;
        }
      }
    }
  }
}

MaxPool2d::MaxPool2d(int kernel_size, int stride)
    : k_(kernel_size), stride_(stride > 0 ? stride : kernel_size) {
  AD_CHECK_GT(k_, 0);
}

Tensor MaxPool2d::forward(const Tensor& x) {
  AD_CHECK_EQ(x.ndim(), 4);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  // h < k would truncate (h - k) / stride toward zero and "pass" the
  // emptiness check below while the window reads out of bounds.
  AD_CHECK(h >= k_ && w >= k_) << " MaxPool2d window larger than input "
                               << x.shape_str();
  const int oh = (h - k_) / stride_ + 1;
  const int ow = (w - k_) / stride_ + 1;
  AD_CHECK(oh > 0 && ow > 0) << " MaxPool2d output empty for input "
                             << x.shape_str();
  in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  argmax_.assign(static_cast<size_t>(y.size()), 0);

  const float* px = x.data();
  float* py = y.data();
  int64_t out_idx = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          px + (static_cast<int64_t>(b) * c + ch) * h * w;
      const int64_t plane_off = (static_cast<int64_t>(b) * c + ch) * h * w;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int ky = 0; ky < k_; ++ky) {
            const int iy = oy * stride_ + ky;
            for (int kx = 0; kx < k_; ++kx) {
              const int ix = ox * stride_ + kx;
              const float v = plane[static_cast<int64_t>(iy) * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_off + static_cast<int64_t>(iy) * w + ix;
              }
            }
          }
          py[out_idx] = best;
          argmax_[static_cast<size_t>(out_idx)] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::forward(const Tensor& x, ExecutionContext& ctx) {
  if (is_training()) return forward(x);
  AD_CHECK_EQ(x.ndim(), 4);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  // h < k would truncate (h - k) / stride toward zero and "pass" the
  // emptiness check below while the window reads out of bounds.
  AD_CHECK(h >= k_ && w >= k_) << " MaxPool2d window larger than input "
                               << x.shape_str();
  const int oh = (h - k_) / stride_ + 1;
  const int ow = (w - k_) / stride_ + 1;
  AD_CHECK(oh > 0 && ow > 0) << " MaxPool2d output empty for input "
                             << x.shape_str();
  // Inference path: no argmax bookkeeping, output in the arena. Clear the
  // backward caches so backward() after a ctx forward fails loudly.
  argmax_.clear();
  in_shape_.clear();
  Tensor y = ctx.alloc({n, c, oh, ow});
  max_pool_forward_into(x.data(), n, c, h, w, k_, stride_, y.data());
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  AD_CHECK(!in_shape_.empty()) << " MaxPool2d backward before forward";
  AD_CHECK_EQ(static_cast<size_t>(grad_out.size()), argmax_.size());
  Tensor dx(in_shape_);
  const float* pdy = grad_out.data();
  float* pdx = dx.data();
  for (int64_t i = 0; i < grad_out.size(); ++i) {
    pdx[argmax_[static_cast<size_t>(i)]] += pdy[i];
  }
  return dx;
}

AvgPool2d::AvgPool2d(int kernel_size, int stride)
    : k_(kernel_size), stride_(stride > 0 ? stride : kernel_size) {
  AD_CHECK_GT(k_, 0);
}

Tensor AvgPool2d::forward(const Tensor& x) {
  AD_CHECK_EQ(x.ndim(), 4);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = (h - k_) / stride_ + 1;
  const int ow = (w - k_) / stride_ + 1;
  AD_CHECK(oh > 0 && ow > 0);
  in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  const float inv = 1.f / static_cast<float>(k_ * k_);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          double acc = 0.0;
          for (int ky = 0; ky < k_; ++ky) {
            for (int kx = 0; kx < k_; ++kx) {
              acc += x.at4(b, ch, oy * stride_ + ky, ox * stride_ + kx);
            }
          }
          y.at4(b, ch, oy, ox) = static_cast<float>(acc) * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  AD_CHECK(!in_shape_.empty()) << " AvgPool2d backward before forward";
  Tensor dx(in_shape_);
  const int n = grad_out.dim(0), c = grad_out.dim(1), oh = grad_out.dim(2),
            ow = grad_out.dim(3);
  const float inv = 1.f / static_cast<float>(k_ * k_);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const float g = grad_out.at4(b, ch, oy, ox) * inv;
          for (int ky = 0; ky < k_; ++ky) {
            for (int kx = 0; kx < k_; ++kx) {
              dx.at4(b, ch, oy * stride_ + ky, ox * stride_ + kx) += g;
            }
          }
        }
      }
    }
  }
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  AD_CHECK_EQ(x.ndim(), 4);
  in_shape_ = x.shape();
  return ops::channel_mean_nchw(x);
}

Tensor GlobalAvgPool::forward(const Tensor& x, ExecutionContext& ctx) {
  if (is_training()) return forward(x);
  AD_CHECK_EQ(x.ndim(), 4);
  in_shape_.clear();  // backward after a ctx forward must fail loudly
  Tensor y = ctx.alloc({x.dim(0), x.dim(1)});
  ops::channel_mean_nchw_into(x, y.data());
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  AD_CHECK(!in_shape_.empty()) << " GlobalAvgPool backward before forward";
  AD_CHECK_EQ(grad_out.ndim(), 2);
  const int n = in_shape_[0], c = in_shape_[1], h = in_shape_[2],
            w = in_shape_[3];
  const int64_t hw = static_cast<int64_t>(h) * w;
  Tensor dx(in_shape_);
  const float inv = 1.f / static_cast<float>(hw);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float g = grad_out.at({b, ch}) * inv;
      float* plane = dx.data() + (static_cast<int64_t>(b) * c + ch) * hw;
      for (int64_t j = 0; j < hw; ++j) plane[j] = g;
    }
  }
  return dx;
}

}  // namespace antidote::nn
