// Small stateless / lightly-stateful layers: ReLU, Flatten, Dropout.
#pragma once

#include "base/rng.h"
#include "nn/module.h"

namespace antidote::nn {

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

// [N, C, H, W] (or any >=2-d) -> [N, rest].
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "Flatten"; }

 private:
  Shape cached_shape_;
};

// Classical inverted dropout: each element is zeroed with probability p
// during training and survivors are scaled by 1/(1-p); identity in eval.
// Included as the *random* counterpart to AntiDote's targeted dropout.
class Dropout : public Module {
 public:
  explicit Dropout(float p, uint64_t seed = 0x5eedULL);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "Dropout"; }

  float p() const { return p_; }
  void set_p(float p);

 private:
  float p_;
  Rng rng_;
  Tensor cached_mask_;  // scaled keep mask from last training forward
};

}  // namespace antidote::nn
