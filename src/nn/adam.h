// Adam optimizer (Kingma & Ba). The paper's experiments use SGD with
// momentum (nn/optimizer.h); Adam is provided for substrate completeness —
// e.g. for quickly fitting auxiliary components such as the FBS saliency
// predictors — and follows the standard bias-corrected formulation with
// decoupled L2 (classic Adam, not AdamW: decay is added to the gradient).
#pragma once

#include <vector>

#include "nn/module.h"

namespace antidote::nn {

struct AdamOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamOptions options);

  // Applies one update using accumulated gradients; does not zero them.
  void step();
  void zero_grad();

  double lr() const { return options_.lr; }
  void set_lr(double lr) { options_.lr = lr; }
  int64_t steps_taken() const { return t_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> m_;  // first-moment estimates
  std::vector<Tensor> v_;  // second-moment estimates
  AdamOptions options_;
  int64_t t_ = 0;
};

}  // namespace antidote::nn
