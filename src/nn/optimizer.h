// SGD with momentum, weight decay and optional Nesterov correction —
// the optimizer used for all trainings in the paper.
#pragma once

#include <vector>

#include "nn/module.h"

namespace antidote::nn {

struct SgdOptions {
  double lr = 0.1;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  bool nesterov = false;
};

class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdOptions options);

  // Applies one update using accumulated gradients; does not zero them.
  void step();
  void zero_grad();

  double lr() const { return options_.lr; }
  void set_lr(double lr) { options_.lr = lr; }
  const SgdOptions& options() const { return options_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  SgdOptions options_;
};

}  // namespace antidote::nn
