#include "nn/adam.h"

#include <cmath>

#include "base/error.h"

namespace antidote::nn {

Adam::Adam(std::vector<Parameter*> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  AD_CHECK(options_.beta1 >= 0.0 && options_.beta1 < 1.0);
  AD_CHECK(options_.beta2 >= 0.0 && options_.beta2 < 1.0);
  AD_CHECK_GT(options_.eps, 0.0);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    AD_CHECK(p != nullptr);
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float b1 = static_cast<float>(options_.beta1);
  const float b2 = static_cast<float>(options_.beta2);
  const float correction1 =
      1.f - std::pow(b1, static_cast<float>(t_));
  const float correction2 =
      1.f - std::pow(b2, static_cast<float>(t_));
  const float lr = static_cast<float>(options_.lr);
  const float eps = static_cast<float>(options_.eps);

  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    const float wd =
        p.decay ? static_cast<float>(options_.weight_decay) : 0.f;
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.value.size();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + wd * w[j];
      m[j] = b1 * m[j] + (1.f - b1) * grad;
      v[j] = b2 * v[j] + (1.f - b2) * grad * grad;
      const float m_hat = m[j] / correction1;
      const float v_hat = v[j] / correction2;
      w[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->grad.zero();
}

}  // namespace antidote::nn
