#include "nn/conv_kernels.h"

#include <algorithm>
#include <cstring>

#include "base/error.h"
#include "tensor/gemm.h"

namespace antidote::nn {

int64_t conv_sample_dense(const float* xb, const ConvGeom& g, const float* w,
                          int out_c, const float* bias, float* cols, float* yb,
                          Workspace& ws) {
  const int64_t patch = g.patch_rows();
  const int64_t pos = g.out_positions();
  im2col(xb, g, cols);
  gemm_nn(out_c, static_cast<int>(pos), static_cast<int>(patch), 1.f, w, cols,
          0.f, yb, &ws);
  if (bias != nullptr) {
    for (int oc = 0; oc < out_c; ++oc) {
      float* row = yb + static_cast<int64_t>(oc) * pos;
      for (int64_t j = 0; j < pos; ++j) row[j] += bias[oc];
    }
  }
  return static_cast<int64_t>(out_c) * pos * patch;
}

int64_t conv_sample_masked(const float* xb, const ConvGeom& g, const float* w,
                           int out_c, const float* bias,
                           const ConvRuntimeMask& m,
                           const ConvIdentityIndices& ids, float* yb,
                           Workspace& ws) {
  const int in_c = g.in_c, h = g.in_h, wd = g.in_w;
  const int oh = g.out_h(), ow = g.out_w();
  const int64_t pos = g.out_positions();
  const int64_t kk = static_cast<int64_t>(g.k_h) * g.k_w;

  const std::span<const int> ch =
      m.channels.empty()
          ? std::span<const int>(ids.channels, static_cast<size_t>(in_c))
          : std::span<const int>(m.channels);
  const std::span<const int> oc_set =
      m.out_channels.empty()
          ? std::span<const int>(ids.out, static_cast<size_t>(out_c))
          : std::span<const int>(m.out_channels);
  const int ck = static_cast<int>(ch.size());
  const int ok = static_cast<int>(oc_set.size());
  int64_t macs = 0;

  const Workspace::Mark per_sample = ws.mark();
  if (m.positions.empty()) {
    // Channel / filter skipping only: gather kept-channel patch rows and
    // kept-filter weight rows into one GEMM.
    const int patch_k = ck * g.k_h * g.k_w;
    float* w_packed = ws.alloc_floats(static_cast<int64_t>(ok) * patch_k);
    for (int oi = 0; oi < ok; ++oi) {
      const float* src =
          w + static_cast<int64_t>(oc_set[static_cast<size_t>(oi)]) * in_c * kk;
      float* dst = w_packed + static_cast<int64_t>(oi) * patch_k;
      for (int ci = 0; ci < ck; ++ci) {
        const float* block =
            src + static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * kk;
        std::copy(block, block + kk, dst + static_cast<int64_t>(ci) * kk);
      }
    }
    float* cols = ws.alloc_floats(static_cast<int64_t>(patch_k) * pos);
    im2col_gather(
        xb, g, ch,
        std::span<const int>(ids.positions, static_cast<size_t>(pos)), cols);
    float* y_sub = ws.alloc_floats(static_cast<int64_t>(ok) * pos);
    gemm_nn(ok, static_cast<int>(pos), patch_k, 1.f, w_packed, cols, 0.f,
            y_sub, &ws);
    for (int oi = 0; oi < ok; ++oi) {
      const int oc = oc_set[static_cast<size_t>(oi)];
      std::copy(y_sub + static_cast<int64_t>(oi) * pos,
                y_sub + static_cast<int64_t>(oi + 1) * pos,
                yb + static_cast<int64_t>(oc) * pos);
    }
    macs = static_cast<int64_t>(ok) * pos * patch_k;
  } else {
    // Spatial (column) skipping: input-stationary "shift-GEMM". Only the
    // kept input columns contribute; for each kernel offset (ky, kx) one
    // [ok x ck] x [ck x pk] GEMM produces their contribution, which is
    // scatter-added at the offset output position. The result equals the
    // dense convolution over the column-masked input *exactly* (pruned
    // columns are zero and contribute nothing), while executing only
    // ok * pk * ck * k^2 MACs — dense x keep ratios. This avoids any
    // train/test mismatch: targeted dropout during TTD training computes
    // the same function densely.
    AD_CHECK(g.stride == 1 && oh == h && ow == wd)
        << " spatial runtime mask requires a grid-preserving Conv2d";
    AD_CHECK_LE(m.positions.back(), static_cast<int>(pos) - 1);
    const int pk = static_cast<int>(m.positions.size());

    // Gather kept input values: B[ci][j] = x[ch[ci], positions[j]].
    float* cols = ws.alloc_floats(static_cast<int64_t>(ck) * pk);
    for (int ci = 0; ci < ck; ++ci) {
      const float* plane =
          xb + static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * h * wd;
      float* row = cols + static_cast<int64_t>(ci) * pk;
      for (int j = 0; j < pk; ++j) {
        row[j] = plane[m.positions[static_cast<size_t>(j)]];
      }
    }

    // All k^2 kernel-offset weight slices stack into one [k^2*ok x ck]
    // matrix, so the whole shift-GEMM runs as a single (blocked) GEMM
    // against the shared gathered-input matrix instead of k^2 tiny ones
    // — each output row is an independent dot product, so the values
    // (and the scatter order below) are unchanged.
    float* w_packed = ws.alloc_floats(kk * ok * ck);
    float* y_sub = ws.alloc_floats(kk * static_cast<int64_t>(ok) * pk);
    for (int ky = 0; ky < g.k_h; ++ky) {
      for (int kx = 0; kx < g.k_w; ++kx) {
        // W_k[oi][ci] = weight[oc_set[oi], ch[ci], ky, kx].
        const int64_t off = static_cast<int64_t>(ky) * g.k_w + kx;
        for (int oi = 0; oi < ok; ++oi) {
          const float* src =
              w +
              (static_cast<int64_t>(oc_set[static_cast<size_t>(oi)]) * in_c) *
                  kk +
              off;
          float* dst = w_packed + (off * ok + oi) * ck;
          for (int ci = 0; ci < ck; ++ci) {
            dst[ci] =
                src[static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * kk];
          }
        }
      }
    }
    gemm_nn(static_cast<int>(kk) * ok, pk, ck, 1.f, w_packed, cols, 0.f,
            y_sub, &ws);
    for (int ky = 0; ky < g.k_h; ++ky) {
      for (int kx = 0; kx < g.k_w; ++kx) {
        const float* y_off =
            y_sub + (static_cast<int64_t>(ky) * g.k_w + kx) * ok * pk;
        // Input column (iy, ix) feeds output (iy + pad - ky, ix + pad - kx).
        const int dy = g.pad - ky, dx = g.pad - kx;
        for (int j = 0; j < pk; ++j) {
          const int p = m.positions[static_cast<size_t>(j)];
          const int oy = p / wd + dy;
          const int ox = p % wd + dx;
          if (oy < 0 || oy >= oh || ox < 0 || ox >= ow) continue;
          const int64_t out_idx = static_cast<int64_t>(oy) * ow + ox;
          for (int oi = 0; oi < ok; ++oi) {
            yb[static_cast<int64_t>(oc_set[static_cast<size_t>(oi)]) * pos +
               out_idx] += y_off[static_cast<int64_t>(oi) * pk + j];
          }
        }
      }
    }
    macs = static_cast<int64_t>(ok) * pk * ck * kk;
  }

  if (bias != nullptr) {
    for (int oi = 0; oi < ok; ++oi) {
      const int oc = oc_set[static_cast<size_t>(oi)];
      float* drow = yb + static_cast<int64_t>(oc) * pos;
      const float bias_v = bias[oc];
      for (int64_t j = 0; j < pos; ++j) drow[j] += bias_v;
    }
  }
  ws.rewind(per_sample);
  return macs;
}

void shortcut_subsample_into(const float* x, int n, int in_c, int h, int w,
                             int out_c, int stride, float* y) {
  AD_CHECK_GE(out_c, in_c);
  const int oh = (h + stride - 1) / stride;
  const int ow = (w + stride - 1) / stride;
  std::memset(y, 0,
              static_cast<size_t>(n) * out_c * oh * ow * sizeof(float));
  for (int b = 0; b < n; ++b) {
    for (int c = 0; c < in_c; ++c) {
      const float* src = x + (static_cast<int64_t>(b) * in_c + c) * h * w;
      float* dst = y + (static_cast<int64_t>(b) * out_c + c) * oh * ow;
      for (int yy = 0; yy < oh; ++yy) {
        for (int xx = 0; xx < ow; ++xx) {
          dst[static_cast<int64_t>(yy) * ow + xx] =
              src[static_cast<int64_t>(yy) * stride * w + xx * stride];
        }
      }
    }
  }
}

size_t conv_sample_dense_scratch_bytes(const ConvGeom& g, int out_c) {
  return gemm_nn_scratch_bytes(out_c, static_cast<int>(g.out_positions()),
                               static_cast<int>(g.patch_rows()));
}

size_t conv_sample_masked_scratch_bytes(const ConvGeom& g, int out_c) {
  const int64_t patch = g.patch_rows();
  const int64_t pos = g.out_positions();
  const int64_t kk = static_cast<int64_t>(g.k_h) * g.k_w;
  // Channel/filter path with full index sets.
  const size_t channel_path =
      Workspace::align_up(static_cast<size_t>(out_c) * patch * sizeof(float)) +
      Workspace::align_up(static_cast<size_t>(patch) * pos * sizeof(float)) +
      Workspace::align_up(static_cast<size_t>(out_c) * pos * sizeof(float)) +
      gemm_nn_scratch_bytes(out_c, static_cast<int>(pos),
                            static_cast<int>(patch));
  size_t worst = channel_path;
  if (g.stride == 1 && g.out_h() == g.in_h && g.out_w() == g.in_w) {
    // Spatial shift-GEMM path with every position kept.
    const size_t spatial_path =
        Workspace::align_up(static_cast<size_t>(g.in_c) * pos * sizeof(float)) +
        Workspace::align_up(static_cast<size_t>(kk) * out_c * g.in_c * sizeof(float)) +
        Workspace::align_up(static_cast<size_t>(kk) * out_c * pos * sizeof(float)) +
        gemm_nn_scratch_bytes(static_cast<int>(kk) * out_c,
                              static_cast<int>(pos), g.in_c);
    worst = std::max(worst, spatial_path);
  }
  return worst;
}

}  // namespace antidote::nn
